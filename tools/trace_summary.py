#!/usr/bin/env python3
"""Summarize a Chrome trace written by the eardec observability layer.

Usage: trace_summary.py <trace.json|stats.json> [--by-thread] [--pmu]

Prints one row per span name: call count, total/mean/max duration, and the
share of the trace's busiest lane the name accounts for. With --by-thread,
adds a per-lane breakdown (lane label from the thread_name metadata).
Counter ("C") events — the tracks the background sampler records (rss_mb,
pmu.* totals, registry counters) — get a per-track min/mean/max digest.
With --pmu, spans that carry PMU args (EARDEC_TRACE_SCOPE_PMU /
ScopedPhase with the engine armed) get a per-span rollup of cycles,
instructions, IPC and cache-miss rate.
Works on any Chrome trace-event file that uses "X" complete events.

Also accepts a metrics dump (`eardec_cli --metrics x.json`, EARDEC_METRICS,
or a saved `/stats.json` scrape from the live stats endpoint): renders the
counters/gauges and a histogram table with count, sum, mean and the
p50/p90/p99 latency quantiles the registry derives from its log2 buckets.
"""
import json
import sys
from collections import defaultdict


def summarize(events):
    spans = defaultdict(lambda: {"count": 0, "total_us": 0.0, "max_us": 0.0})
    threads = {}  # tid -> label
    lane_busy = defaultdict(float)
    for e in events:
        ph = e.get("ph")
        if ph == "M" and e.get("name") == "thread_name":
            threads[e.get("tid")] = e["args"]["name"]
        elif ph == "X":
            dur = float(e.get("dur", 0.0))
            s = spans[e["name"]]
            s["count"] += 1
            s["total_us"] += dur
            s["max_us"] = max(s["max_us"], dur)
            lane_busy[e.get("tid")] += dur
    return spans, threads, lane_busy


def by_thread(events, threads):
    lanes = defaultdict(lambda: defaultdict(lambda: {"count": 0,
                                                     "total_us": 0.0}))
    for e in events:
        if e.get("ph") != "X":
            continue
        label = threads.get(e.get("tid"), f"tid-{e.get('tid')}")
        s = lanes[label][e["name"]]
        s["count"] += 1
        s["total_us"] += float(e.get("dur", 0.0))
    return lanes


def counter_tracks(events):
    """Per-track stats over the "C" counter events: (count, min, mean, max,
    last), keyed by track name."""
    tracks = defaultdict(list)
    for e in events:
        if e.get("ph") != "C":
            continue
        args = e.get("args", {})
        if "value" in args:
            tracks[e["name"]].append(float(args["value"]))
    out = {}
    for name, values in tracks.items():
        out[name] = {
            "count": len(values),
            "min": min(values),
            "mean": sum(values) / len(values),
            "max": max(values),
            "last": values[-1],
        }
    return out


PMU_ARGS = ("cycles", "instructions", "cache_references", "cache_misses",
            "branch_misses", "task_clock_ns")


def pmu_rollup(events):
    """Sums each span name's PMU args and derives aggregate IPC and
    cache-miss rate. Spans without PMU args are skipped."""
    rollup = defaultdict(lambda: {k: 0 for k in PMU_ARGS} | {"count": 0})
    for e in events:
        if e.get("ph") != "X":
            continue
        args = e.get("args", {})
        if not any(k in args for k in PMU_ARGS):
            continue
        s = rollup[e["name"]]
        s["count"] += 1
        for k in PMU_ARGS:
            s[k] += int(args.get(k, 0))
    return rollup


def fmt_count(v):
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if v >= scale:
            return f"{v / scale:.2f}{suffix}"
    return f"{v:.0f}"


def fmt_us(us):
    if us >= 1e6:
        return f"{us / 1e6:.3f}s"
    if us >= 1e3:
        return f"{us / 1e3:.3f}ms"
    return f"{us:.1f}us"


def summarize_metrics(doc):
    """Renders a metrics-registry dump (the /stats.json route or
    --metrics/EARDEC_METRICS output): histogram quantile table first —
    that is what you scraped the endpoint for — then non-zero counters
    and gauges."""
    hists = doc.get("histograms", {})
    populated = {k: v for k, v in hists.items() if v.get("count", 0) > 0}
    if populated:
        print(f"{'histogram':<36}{'count':>8}{'mean':>10}"
              f"{'p50':>10}{'p90':>10}{'p99':>10}")
        print("-" * 84)
        for name, h in sorted(populated.items()):
            mean = h["sum"] / h["count"]
            print(f"{name:<36}{h['count']:>8}{fmt_count(mean):>10}"
                  f"{fmt_count(h['p50']):>10}{fmt_count(h['p90']):>10}"
                  f"{fmt_count(h['p99']):>10}")
    counters = {k: v for k, v in doc.get("counters", {}).items() if v}
    if counters:
        print()
        print(f"{'counter':<48}{'value':>12}")
        print("-" * 60)
        for name, v in sorted(counters.items()):
            print(f"{name:<48}{fmt_count(v):>12}")
    gauges = {k: v for k, v in doc.get("gauges", {}).items() if v}
    if gauges:
        print()
        print(f"{'gauge':<48}{'value':>12}")
        print("-" * 60)
        for name, v in sorted(gauges.items()):
            print(f"{name:<48}{v:>12.4f}")
    if not (populated or counters or gauges):
        print("metrics dump holds no populated instruments")
        return 1
    return 0


def main(argv):
    if len(argv) < 2 or argv[1].startswith("-"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, dict) and "traceEvents" not in doc and (
            "histograms" in doc or "counters" in doc):
        return summarize_metrics(doc)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    spans, threads, lane_busy = summarize(events)
    tracks = counter_tracks(events)
    if not spans and not tracks:
        print("no complete ('X') or counter ('C') events in trace")
        return 1

    # A counter-only trace (e.g. the background sampler running with no
    # instrumented spans in scope) is still a valid summary: skip the span
    # table, print the counter digest below, exit 0.
    if spans:
        print(f"{'span':<28}{'count':>8}{'total':>12}{'mean':>12}{'max':>12}")
        print("-" * 72)
        for name, s in sorted(spans.items(),
                              key=lambda kv: -kv[1]["total_us"]):
            mean = s["total_us"] / s["count"]
            print(f"{name:<28}{s['count']:>8}{fmt_us(s['total_us']):>12}"
                  f"{fmt_us(mean):>12}{fmt_us(s['max_us']):>12}")
    else:
        print("no complete ('X') events in trace; counter tracks only")

    if spans and "--by-thread" in argv[2:]:
        print()
        for label, names in sorted(by_thread(events, threads).items()):
            busy = sum(s["total_us"] for s in names.values())
            print(f"[{label}] busy {fmt_us(busy)}")
            for name, s in sorted(names.items(),
                                  key=lambda kv: -kv[1]["total_us"]):
                print(f"  {name:<26}{s['count']:>8}"
                      f"{fmt_us(s['total_us']):>12}")

    if tracks:
        print()
        print(f"{'counter track':<28}{'samples':>8}{'min':>12}"
              f"{'mean':>12}{'max':>12}")
        print("-" * 72)
        for name, t in sorted(tracks.items()):
            print(f"{name:<28}{t['count']:>8}{t['min']:>12.2f}"
                  f"{t['mean']:>12.2f}{t['max']:>12.2f}")

    if "--pmu" in argv[2:]:
        rollup = pmu_rollup(events)
        print()
        if not rollup:
            print("no spans with PMU args in trace (run with --pmu / "
                  "EARDEC_PMU=1 and hardware counters available)")
        else:
            print(f"{'span (pmu)':<28}{'spans':>8}{'cycles':>10}"
                  f"{'instrs':>10}{'ipc':>8}{'miss%':>8}")
            print("-" * 72)
            for name, s in sorted(rollup.items(),
                                  key=lambda kv: -kv[1]["cycles"]):
                ipc = (s["instructions"] / s["cycles"]
                       if s["cycles"] else 0.0)
                missr = (100.0 * s["cache_misses"] / s["cache_references"]
                         if s["cache_references"] else 0.0)
                print(f"{name:<28}{s['count']:>8}"
                      f"{fmt_count(s['cycles']):>10}"
                      f"{fmt_count(s['instructions']):>10}"
                      f"{ipc:>8.2f}{missr:>8.2f}")
    return 0


if __name__ == "__main__":
    # Piping the summary into head/less must not traceback on SIGPIPE.
    import contextlib
    import signal
    with contextlib.suppress(AttributeError, ValueError):
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    sys.exit(main(sys.argv))
