#!/usr/bin/env python3
"""Unit tests for compare_bench.py: the regression sentinel must flag a
synthetic 2x slowdown (exit 1), pass identical snapshots (exit 0), respect
the direction of rate metrics, honor the noise floor, and reject malformed
inputs (exit 2). Run directly or via ctest (compare_bench_test)."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_bench.py")


def snapshot(cells):
    return {
        "schema_version": 2,
        "git_sha": "deadbeef",
        "pmu": {"available": 0, "status": "disabled"},
        "smoke": True,
        "cells": cells,
    }


def run(args, *docs):
    """Writes each doc to a temp file and runs compare_bench.py on them."""
    with tempfile.TemporaryDirectory() as d:
        paths = []
        for i, doc in enumerate(docs):
            path = os.path.join(d, f"snap{i}.json")
            with open(path, "w") as f:
                json.dump(doc, f)
            paths.append(path)
        return subprocess.run(
            [sys.executable, SCRIPT, *paths, *args],
            capture_output=True, text=True)


class CompareBenchTest(unittest.TestCase):
    def test_identical_snapshots_pass(self):
        doc = snapshot([{"method": "compact", "seconds": 0.1, "qps": 1000.0,
                         "p99_ns": 500.0}])
        r = run(["--threshold", "25%"], doc, doc)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("compare_bench: OK", r.stdout)

    def test_2x_slowdown_fails(self):
        base = snapshot([{"method": "compact", "seconds": 0.1,
                          "qps": 1000.0}])
        slow = snapshot([{"method": "compact", "seconds": 0.2,
                          "qps": 500.0}])
        r = run(["--threshold", "25%"], base, slow)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("REGRESSION", r.stdout)
        # Both the time metric and the rate metric went the bad way.
        self.assertIn("seconds", r.stderr)
        self.assertIn("qps", r.stderr)

    def test_speedup_passes(self):
        base = snapshot([{"method": "compact", "seconds": 0.2,
                          "qps": 500.0}])
        fast = snapshot([{"method": "compact", "seconds": 0.1,
                          "qps": 1000.0}])
        r = run(["--threshold", "25%"], base, fast)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_qps_drop_is_direction_aware(self):
        # seconds steady, throughput halved: must still be a regression.
        base = snapshot([{"method": "compact", "seconds": 0.1,
                          "qps": 1000.0}])
        slow = snapshot([{"method": "compact", "seconds": 0.1,
                          "qps": 400.0}])
        r = run(["--threshold", "25%"], base, slow)
        self.assertEqual(r.returncode, 1)
        self.assertIn("qps", r.stderr)

    def test_per_s_suffix_is_a_rate_not_a_time(self):
        # "nodes_per_s" ends with "_s" too; it must classify as a rate, so
        # a throughput drop is a regression (not an inverted "improvement").
        base = snapshot([{"method": "a", "seconds": 0.1,
                          "nodes_per_s": 1000.0}])
        slow = snapshot([{"method": "a", "seconds": 0.1,
                          "nodes_per_s": 400.0}])
        r = run(["--threshold", "25%"], base, slow)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("nodes_per_s", r.stderr)

    def test_rate_over_subfloor_duration_is_not_gated(self):
        # The sibling "seconds" sits under the floor on both sides: the
        # rate computed from it is noise and must be reported, not gated.
        base = snapshot([{"method": "a", "seconds": 0.0002,
                          "nodes_per_s": 1000.0}])
        slow = snapshot([{"method": "a", "seconds": 0.0004,
                          "nodes_per_s": 400.0}])
        r = run(["--threshold", "25%", "--min-seconds", "0.002"], base, slow)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("below noise floor", r.stdout)

    def test_noise_floor_suppresses_tiny_timings(self):
        base = snapshot([{"method": "compact", "seconds": 0.0001}])
        slow = snapshot([{"method": "compact", "seconds": 0.0005}])
        r = run(["--threshold", "25%", "--min-seconds", "0.002"], base, slow)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("below noise floor", r.stdout)

    def test_noise_floor_normalizes_ns_metrics(self):
        base = snapshot([{"method": "compact", "p99_ns": 100.0}])
        slow = snapshot([{"method": "compact", "p99_ns": 900.0}])
        r = run(["--threshold", "25%", "--min-seconds", "0.002"], base, slow)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_cells_match_by_identity_not_position(self):
        base = snapshot([{"method": "a", "seconds": 0.1},
                         {"method": "b", "seconds": 1.0}])
        # Same numbers, reversed order: no diff.
        cand = snapshot([{"method": "b", "seconds": 1.0},
                         {"method": "a", "seconds": 0.1}])
        r = run(["--threshold", "1%"], base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_identity_counts_are_not_gated(self):
        # "queries" and "rounds" are workload shape, not performance.
        base = snapshot([{"method": "a", "queries": 100, "seconds": 0.1}])
        cand = snapshot([{"method": "a", "queries": 500, "seconds": 0.1}])
        r = run(["--threshold", "25%"], base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_rejects_wrong_schema(self):
        bad = {"schema_version": 1, "cells": []}
        good = snapshot([{"method": "a", "seconds": 0.1}])
        r = run([], bad, good)
        self.assertEqual(r.returncode, 2)

    def test_rejects_disjoint_snapshots(self):
        a = snapshot([{"method": "a", "seconds": 0.1}])
        b = snapshot([{"kernel": "k", "other_s": 0.1}])
        r = run([], a, b)
        self.assertEqual(r.returncode, 2)

    def test_markdown_report_written(self):
        doc = snapshot([{"method": "a", "seconds": 0.1}])
        with tempfile.TemporaryDirectory() as d:
            out = os.path.join(d, "delta.md")
            paths = []
            for i in range(2):
                path = os.path.join(d, f"s{i}.json")
                with open(path, "w") as f:
                    json.dump(doc, f)
                paths.append(path)
            r = subprocess.run(
                [sys.executable, SCRIPT, *paths, "--out", out],
                capture_output=True, text=True)
            self.assertEqual(r.returncode, 0, r.stderr)
            with open(out) as f:
                report = f.read()
            self.assertIn("| metric |", report)
            self.assertIn("seconds", report)

    def test_threshold_fraction_form(self):
        base = snapshot([{"method": "a", "seconds": 0.1}])
        slow = snapshot([{"method": "a", "seconds": 0.15}])
        self.assertEqual(run(["--threshold", "0.6"], base, slow).returncode, 0)
        self.assertEqual(run(["--threshold", "0.2"], base, slow).returncode, 1)


if __name__ == "__main__":
    unittest.main()
