#!/usr/bin/env python3
"""Per-query critical-path attribution over a linked Chrome trace.

Usage: critical_path.py <trace.json> [--serve-json <oracle_serve.json>]
                        [--min-queries N]

The serving layer stitches every span it emits into a per-query tree: each
"X" event carries `args.qid` (the 64-bit query id), `args.span` (the span's
id within that query) and `args.parent` (0 = tree root) — see
docs/observability.md. This tool groups events by qid, rebuilds each tree,
and walks its critical path: starting at the root, repeatedly descend into
the child that finishes last; the step from a node to that child charges
the node its duration minus the child's (self time on the path), and the
final leaf is charged in full. Summing over queries gives "where the
answer's wall-clock actually went" — through scheduler work units
(oracle.leg_unit spans run on worker lanes but still parent under the
query's root), not just through phases.

Trees whose parent links dangle (the trace ring wrapped mid-query) are
counted and skipped, not guessed at.

With --serve-json, the mean per-query root-span duration per tree kind is
validated against the matching cells of a bench_results/oracle_serve.json
snapshot (oracle.batch vs path=batch mean_ns, oracle.scalar vs
path=scalar): the two measure the same interval through different
plumbing, so a ratio outside [0.5, 2.0] means the span links or the
snapshot are lying; exit 1. Batch roots carry the batch size in
`args.queries` and are amortized by it, matching the snapshot's per-query
mean_ns convention.
"""
import json
import sys
from collections import defaultdict

RATIO_LOW, RATIO_HIGH = 0.5, 2.0
ROOT_TO_CELL_PATH = {"oracle.batch": "batch", "oracle.scalar": "scalar"}


def load_linked_events(path):
    """qid -> list of {name, ts_us, dur_us, span, parent} for every "X"
    event that carries span-link args."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    queries = defaultdict(list)
    for e in events:
        if e.get("ph") != "X":
            continue
        args = e.get("args", {})
        if "qid" not in args or "span" not in args:
            continue
        queries[int(args["qid"])].append({
            "name": e["name"],
            "ts": float(e.get("ts", 0.0)),
            "dur": float(e.get("dur", 0.0)),
            "span": int(args["span"]),
            "parent": int(args.get("parent", 0)),
            "queries": int(args.get("queries", 1)),
        })
    return queries


def build_tree(spans):
    """Returns (root, children) or None when the tree is incomplete:
    not exactly one root, a dangling parent link, or a duplicate span id
    (all symptoms of the ring wrapping mid-query)."""
    by_id = {}
    for s in spans:
        if s["span"] in by_id:
            return None
        by_id[s["span"]] = s
    children = defaultdict(list)
    roots = []
    for s in spans:
        if s["parent"] == 0:
            roots.append(s)
        elif s["parent"] in by_id:
            children[s["parent"]].append(s)
        else:
            return None
    if len(roots) != 1:
        return None
    return roots[0], children


def critical_path(root, children):
    """name -> microseconds charged along the path from root to the
    latest-finishing leaf."""
    charged = defaultdict(float)
    node = root
    while True:
        kids = children.get(node["span"])
        if not kids:
            charged[node["name"]] += node["dur"]
            return charged
        last = max(kids, key=lambda k: k["ts"] + k["dur"])
        charged[node["name"]] += max(0.0, node["dur"] - last["dur"])
        node = last


def fmt_us(us):
    if us >= 1e6:
        return f"{us / 1e6:.3f}s"
    if us >= 1e3:
        return f"{us / 1e3:.3f}ms"
    return f"{us:.1f}us"


def validate_against_serve(kinds, serve_path):
    """Mean root duration per tree kind vs the snapshot's matching cells;
    returns the number of violations."""
    with open(serve_path, encoding="utf-8") as f:
        doc = json.load(f)
    cells = doc.get("cells", [])
    violations = 0
    for root_name, stats in sorted(kinds.items()):
        cell_path = ROOT_TO_CELL_PATH.get(root_name)
        if cell_path is None:
            continue
        means = [c["mean_ns"] for c in cells
                 if c.get("path") == cell_path and c.get("mean_ns", 0) > 0]
        if not means:
            print(f"validate: no {cell_path} cells in {serve_path}; "
                  f"{root_name} skipped")
            continue
        cell_mean_ns = sum(means) / len(means)
        trace_mean_ns = 1e3 * stats["root_us"] / stats["queries"]
        ratio = trace_mean_ns / cell_mean_ns
        ok = RATIO_LOW <= ratio <= RATIO_HIGH
        print(f"validate: {root_name} mean {trace_mean_ns:.0f}ns/query over "
              f"{stats['count']} trees ({stats['queries']} queries) vs "
              f"{cell_path} cells {cell_mean_ns:.0f}ns (ratio {ratio:.2f}) "
              f"{'OK' if ok else 'OUT OF RANGE'}")
        if not ok:
            violations += 1
    return violations


def main(argv):
    if len(argv) < 2 or argv[1].startswith("-"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    serve_json = None
    min_queries = 1
    rest = argv[2:]
    i = 0
    while i < len(rest):
        if rest[i] == "--serve-json" and i + 1 < len(rest):
            serve_json = rest[i + 1]
            i += 2
        elif rest[i].startswith("--serve-json="):
            serve_json = rest[i].split("=", 1)[1]
            i += 1
        elif rest[i] == "--min-queries" and i + 1 < len(rest):
            min_queries = int(rest[i + 1])
            i += 2
        elif rest[i].startswith("--min-queries="):
            min_queries = int(rest[i].split("=", 1)[1])
            i += 1
        else:
            print(f"unknown option {rest[i]}", file=sys.stderr)
            return 2

    queries = load_linked_events(argv[1])
    if not queries:
        print("no span-linked ('args.qid') events in trace")
        return 1

    # kind = root span name; per kind: tree count, summed root duration,
    # and summed per-name critical-path charges.
    kinds = defaultdict(lambda: {"count": 0, "queries": 0, "root_us": 0.0,
                                 "charged": defaultdict(float)})
    incomplete = 0
    for _qid, spans in sorted(queries.items()):
        tree = build_tree(spans)
        if tree is None:
            incomplete += 1
            continue
        root, children = tree
        k = kinds[root["name"]]
        k["count"] += 1
        k["queries"] += root["queries"]
        k["root_us"] += root["dur"]
        for name, us in critical_path(root, children).items():
            k["charged"][name] += us

    complete = sum(k["count"] for k in kinds.values())
    print(f"{len(queries)} queries in trace, {complete} complete trees, "
          f"{incomplete} incomplete (ring wrap)")
    if complete < min_queries:
        print(f"FAIL: fewer than --min-queries={min_queries} complete trees")
        return 1

    for root_name, k in sorted(kinds.items()):
        mean_root = k["root_us"] / k["count"]
        print(f"\n[{root_name}] {k['count']} trees, "
              f"mean {fmt_us(mean_root)}")
        print(f"  {'critical-path component':<28}{'mean':>12}{'share':>8}")
        print("  " + "-" * 48)
        for name, us in sorted(k["charged"].items(), key=lambda kv: -kv[1]):
            mean = us / k["count"]
            share = us / k["root_us"] if k["root_us"] > 0 else 0.0
            print(f"  {name:<28}{fmt_us(mean):>12}{100 * share:>7.1f}%")

    if serve_json is not None:
        if validate_against_serve(kinds, serve_json) > 0:
            return 1
    return 0


if __name__ == "__main__":
    import contextlib
    import signal
    with contextlib.suppress(AttributeError, ValueError):
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    sys.exit(main(sys.argv))
