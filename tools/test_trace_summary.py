#!/usr/bin/env python3
"""Unit tests for trace_summary.py: span traces, counter-only traces
(which must summarize and exit 0, not crash — sampler-only runs produce
them), metrics dumps, and genuinely empty traces (exit 1). Run directly
or via ctest (trace_summary_test)."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "trace_summary.py")


def run(doc, *args):
    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "trace.json")
        with open(path, "w") as f:
            json.dump(doc, f)
        return subprocess.run([sys.executable, SCRIPT, path, *args],
                              capture_output=True, text=True)


def span(name, ts, dur, tid=1, args=None):
    e = {"ph": "X", "name": name, "ts": ts, "dur": dur, "pid": 1, "tid": tid}
    if args:
        e["args"] = args
    return e


def counter(track, ts, value):
    return {"ph": "C", "name": track, "ts": ts, "pid": 1, "tid": 1,
            "args": {"value": value}}


class TraceSummaryTest(unittest.TestCase):
    def test_span_trace(self):
        doc = {"traceEvents": [span("apsp.process", 0, 100),
                               span("apsp.process", 200, 300)]}
        r = run(doc)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("apsp.process", r.stdout)
        self.assertIn("2", r.stdout)

    def test_counter_only_trace_exits_zero(self):
        # A sampler-only run records "C" events and no spans; the summary
        # must print the counter digest and succeed.
        doc = {"traceEvents": [counter("rss_mb", 0, 10.0),
                               counter("rss_mb", 1000, 12.0),
                               counter("rss_mb", 2000, 11.0)]}
        r = run(doc)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("counter tracks only", r.stdout)
        self.assertIn("rss_mb", r.stdout)
        self.assertIn("11.00", r.stdout)  # mean of 10/12/11

    def test_counter_only_with_by_thread_flag(self):
        # --by-thread has nothing to break down without spans; it must not
        # traceback on the counter-only path either.
        doc = {"traceEvents": [counter("pmu.cycles", 0, 5.0)]}
        r = run(doc, "--by-thread")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("pmu.cycles", r.stdout)

    def test_empty_trace_exits_one(self):
        r = run({"traceEvents": []})
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_metrics_dump(self):
        doc = {"histograms": {"oracle.query.scalar.latency_ns": {
            "count": 4, "sum": 4000, "p50": 900, "p90": 1100, "p99": 1300}},
            "counters": {"oracle.serve.queries": 4}, "gauges": {}}
        r = run(doc)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("oracle.query.scalar.latency_ns", r.stdout)
        self.assertIn("oracle.serve.queries", r.stdout)


if __name__ == "__main__":
    unittest.main()
