// eardec_cli — run the library's algorithms on a Matrix Market or edge-list
// file from the command line.
//
//   eardec_cli stats     <graph>           structural profile
//   eardec_cli decompose <graph>           BCC / chain / ear summary
//   eardec_cli apsp      <graph> [s t]     build the oracle; optional query
//   eardec_cli path      <graph> <s> <t>   print one shortest path
//   eardec_cli mcb       <graph>           minimum cycle basis summary
//   eardec_cli analytics <graph>           eccentricity / diameter / centers
//   eardec_cli gen       <name> <out>      write a Table-1 dataset to a file
//                                          (name `scale:N` generates the
//                                          N-vertex scaling graph via the
//                                          parallel CSR builder)
//   eardec_cli convert   <in> <out>        convert between formats
//                                          (--reorder=bfs|degree relabels
//                                          for locality on the way)
//   eardec_cli summarize <graph>           header-only summary for .edg2
//                                          (no payload load); counts for
//                                          other formats
//   eardec_cli bc        <graph> [k]       top-k betweenness-central vertices
//   eardec_cli query     <graph> <s> <t>   one oracle distance (%.17g / inf)
//   eardec_cli query     <graph> -         stdin "s t" pairs, one per line
//   eardec_cli serve     <graph>           online serving: build the oracle,
//                                          register /query + /query/batch on
//                                          the stats endpoint, run until
//                                          SIGINT/SIGTERM or --serve-seconds
//   eardec_cli version                     build provenance + feature flags
//
// Graphs by extension: *.mtx (Matrix Market), *.edg (binary EDG1), *.edg2
// (packed CSR, zero-copy mmap load — see docs/scaling.md), anything else as
// whitespace edge list.
// Options:
//   --mode=seq|mc|gpu|hetero   execution mode (default mc)
//   --threads=N                CPU worker threads (default 4)
//   --deep                     deep-validate .edg2 loads (payload checksum
//                              + range scan; touches every page)
//   --reorder=bfs|degree       convert: relabel vertices for locality
//   --rss-gate[=factor]        decompose: after the phases, compare peak
//                              RSS against the Phase 0–I memory model and
//                              exit 1 if it exceeds model × factor
//                              (default 1.25) — the CI scaling gate
//   --trace <file>             record a Chrome trace (load in Perfetto /
//                              chrome://tracing); also --trace=<file>
//   --metrics <file>           dump the metrics registry (.json or .csv)
//   --json-stats               print phase timings + scheduler counters as
//                              one JSON object instead of the human summary
//   --pmu                      arm the perf_event counter engine and the
//                              background sampler (see docs/profiling.md);
//                              EARDEC_PMU=off still wins
//   --stats-port <p>           serve live stats over HTTP on 127.0.0.1:<p>
//                              (/metrics Prometheus text, /healthz,
//                              /stats.json; 0 picks an ephemeral port, the
//                              chosen one is printed to stderr); also
//                              honored from EARDEC_STATS_PORT
//   --stats-linger <sec>       keep the stats endpoint alive <sec> seconds
//                              after the command finishes, so scrapers can
//                              read the final state
//   --serve-seconds <sec>      serve: exit after <sec> seconds (0 = until a
//                              signal arrives; the default)
//   --batch-engine=tables|recompute
//                              serve: how /query/batch evaluates its
//                              within-block legs (see docs/serving.md)
//   --slow-log <file>          serve: on shutdown, dump the slow-query
//                              exemplar ring (tail-sampled span trees, the
//                              same JSON as GET /debug/slow) to <file>.
//                              The exemplar store is armed for the whole
//                              serve run whether or not this is set.
//
// serve also arms the flight recorder (crash-safe trace-ring snapshot to
// eardec-flight-<pid>.json on SIGSEGV/SIGABRT or a stalled serve loop;
// EARDEC_FLIGHT=off opts out, any other value overrides the path) — see
// docs/observability.md.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "connectivity/bcc.hpp"
#include "connectivity/ear_decomposition.hpp"
#include "core/analytics.hpp"
#include "core/distance_oracle.hpp"
#include "core/memory_model.hpp"
#include "core/path.hpp"
#include "graph/binary_io.hpp"
#include "graph/datasets.hpp"
#include "graph/edg2.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"
#include "bench_common.hpp"
#include "mcb/ear_mcb.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/pmu.hpp"
#include "obs/sampler.hpp"
#include "obs/slow_log.hpp"
#include "obs/stats_server.hpp"
#include "obs/trace.hpp"
#include "serve/http_routes.hpp"
#include "serve/oracle_server.hpp"
#include "sssp/brandes.hpp"
#include "reduce/chains.hpp"

namespace {

using namespace eardec;

graph::Graph load(const std::string& path, bool deep = false) {
  if (path.ends_with(".mtx")) {
    return graph::io::read_matrix_market_file(path);
  }
  if (path.ends_with(".edg")) {
    return graph::io::read_binary_file(path);
  }
  if (path.ends_with(".edg2")) {
    return graph::io::read_edg2_file(path, deep ? graph::io::Edg2Validate::Deep
                                                : graph::io::Edg2Validate::Shallow);
  }
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return graph::io::read_edge_list(in);
}

void save(const std::string& path, const graph::Graph& g,
          hetero::ThreadPool* pool = nullptr) {
  if (path.ends_with(".mtx")) {
    graph::io::write_matrix_market_file(path, g);
  } else if (path.ends_with(".edg2")) {
    graph::io::write_edg2_file(path, g, pool);
  } else if (path.ends_with(".edg")) {
    graph::io::write_binary_file(path, g);
  } else {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    graph::io::write_edge_list(out, g);
  }
}

struct CliOptions {
  core::ApspOptions apsp{.mode = core::ExecutionMode::Multicore,
                         .cpu_threads = 4};
  std::string trace_path;    ///< --trace: Chrome trace JSON destination
  std::string metrics_path;  ///< --metrics: registry dump (.json / .csv)
  bool json_stats = false;   ///< --json-stats: machine-readable summary
  bool pmu = false;          ///< --pmu: arm counters + background sampler
  int stats_port = -1;       ///< --stats-port: live HTTP endpoint (-1 = off)
  unsigned stats_linger = 0; ///< --stats-linger: seconds to serve after done
  unsigned serve_seconds = 0;  ///< serve: run time limit (0 = until signal)
  std::string slow_log_path;   ///< --slow-log: exemplar-ring dump on shutdown
  serve::BatchEngine batch_engine = serve::BatchEngine::Tables;
  bool deep = false;           ///< --deep: deep-validate .edg2 loads
  std::string reorder;         ///< --reorder: convert relabeling (bfs|degree)
  double rss_gate = 0.0;       ///< --rss-gate: decompose RSS/model factor (0 = off)
};

/// Splits argv into flags (into `cli`) and positional operands (returned in
/// order). Value flags accept both `--flag=value` and `--flag value`.
std::vector<std::string> parse_args(int argc, char** argv, CliOptions& cli) {
  std::vector<std::string> pos;
  const auto value_of = [&](const std::string& arg, const char* name,
                            int& i) -> std::string {
    const std::string eq = std::string(name) + "=";
    if (arg.starts_with(eq)) return arg.substr(eq.size());
    if (i + 1 >= argc) {
      throw std::runtime_error(std::string(name) + " needs a value");
    }
    return argv[++i];
  };
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.starts_with("--mode")) {
      const std::string mode = value_of(arg, "--mode", i);
      if (mode == "seq") cli.apsp.mode = core::ExecutionMode::Sequential;
      else if (mode == "mc") cli.apsp.mode = core::ExecutionMode::Multicore;
      else if (mode == "gpu") cli.apsp.mode = core::ExecutionMode::DeviceOnly;
      else if (mode == "hetero") {
        cli.apsp.mode = core::ExecutionMode::Heterogeneous;
      } else {
        throw std::runtime_error("unknown --mode " + mode);
      }
    } else if (arg.starts_with("--threads")) {
      cli.apsp.cpu_threads =
          static_cast<unsigned>(std::stoul(value_of(arg, "--threads", i)));
    } else if (arg.starts_with("--trace")) {
      cli.trace_path = value_of(arg, "--trace", i);
    } else if (arg.starts_with("--metrics")) {
      cli.metrics_path = value_of(arg, "--metrics", i);
    } else if (arg == "--json-stats") {
      cli.json_stats = true;
    } else if (arg == "--pmu") {
      cli.pmu = true;
    } else if (arg.starts_with("--stats-port")) {
      const unsigned long port =
          std::stoul(value_of(arg, "--stats-port", i));
      if (port > 65535) throw std::runtime_error("--stats-port out of range");
      cli.stats_port = static_cast<int>(port);
    } else if (arg.starts_with("--stats-linger")) {
      cli.stats_linger =
          static_cast<unsigned>(std::stoul(value_of(arg, "--stats-linger", i)));
    } else if (arg.starts_with("--serve-seconds")) {
      cli.serve_seconds =
          static_cast<unsigned>(std::stoul(value_of(arg, "--serve-seconds", i)));
    } else if (arg.starts_with("--slow-log")) {
      cli.slow_log_path = value_of(arg, "--slow-log", i);
    } else if (arg == "--deep") {
      cli.deep = true;
    } else if (arg.starts_with("--reorder")) {
      cli.reorder = value_of(arg, "--reorder", i);
      if (cli.reorder != "bfs" && cli.reorder != "degree") {
        throw std::runtime_error("unknown --reorder " + cli.reorder);
      }
    } else if (arg == "--rss-gate") {
      cli.rss_gate = 1.25;
    } else if (arg.starts_with("--rss-gate=")) {
      cli.rss_gate = std::stod(arg.substr(std::strlen("--rss-gate=")));
      if (cli.rss_gate <= 0) throw std::runtime_error("--rss-gate must be > 0");
    } else if (arg.starts_with("--batch-engine")) {
      const std::string engine = value_of(arg, "--batch-engine", i);
      if (engine == "tables") {
        cli.batch_engine = serve::BatchEngine::Tables;
      } else if (engine == "recompute") {
        cli.batch_engine = serve::BatchEngine::Recompute;
      } else {
        throw std::runtime_error("unknown --batch-engine " + engine);
      }
    } else if (arg.starts_with("--")) {
      throw std::runtime_error("unknown option " + arg);
    } else {
      pos.push_back(arg);
    }
  }
  return pos;
}

/// Writes the pending --trace / --metrics exports on scope exit, so every
/// `return` path in the command dispatch flushes them.
struct ObsExports {
  const CliOptions& cli;
  ~ObsExports() {
    // Short commands finish before a scraper gets a look in; the linger
    // window keeps the endpoint (and its final numbers) up before we stop
    // the serving thread.
    auto& stats = obs::StatsServer::instance();
    if (stats.running() && cli.stats_linger > 0) {
      std::fprintf(stderr, "stats: lingering %u s on port %u\n",
                   cli.stats_linger, static_cast<unsigned>(stats.port()));
      std::this_thread::sleep_for(std::chrono::seconds(cli.stats_linger));
    }
    stats.stop();
    // The export path would quiesce a still-running sampler on its own;
    // stopping first also captures the sampler's final sample.
    obs::Sampler::instance().stop();
    if (!cli.trace_path.empty() &&
        !obs::Tracer::instance().write_chrome_trace_file(cli.trace_path)) {
      std::fprintf(stderr, "error: cannot write %s\n", cli.trace_path.c_str());
    }
    if (!cli.metrics_path.empty() &&
        !obs::MetricsRegistry::instance().write_file(cli.metrics_path)) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   cli.metrics_path.c_str());
    }
  }
};

void print_scheduler_json(const hetero::SchedulerStats& s) {
  std::printf("  \"scheduler\": {\n");
  std::printf("    \"cpu_units\": %llu,\n",
              static_cast<unsigned long long>(s.cpu_units));
  std::printf("    \"device_units\": %llu,\n",
              static_cast<unsigned long long>(s.device_units));
  std::printf("    \"cpu_claims\": %llu,\n",
              static_cast<unsigned long long>(s.cpu_claims));
  std::printf("    \"device_claims\": %llu,\n",
              static_cast<unsigned long long>(s.device_claims));
  std::printf("    \"queue_contention\": %llu,\n",
              static_cast<unsigned long long>(s.queue_contention));
  std::printf("    \"elapsed_seconds\": %.6f,\n", s.elapsed_seconds);
  std::printf("    \"utilization\": %.4f,\n", s.utilization());
  std::printf("    \"cpu_workers\": [");
  for (std::size_t i = 0; i < s.cpu_workers.size(); ++i) {
    const auto& w = s.cpu_workers[i];
    std::printf("%s{\"units\": %llu, \"claims\": %llu, "
                "\"busy_seconds\": %.6f}",
                i == 0 ? "" : ", ",
                static_cast<unsigned long long>(w.units),
                static_cast<unsigned long long>(w.claims), w.busy_seconds);
  }
  std::printf("],\n");
  std::printf("    \"device_worker\": {\"units\": %llu, \"claims\": %llu, "
              "\"busy_seconds\": %.6f}\n",
              static_cast<unsigned long long>(s.device_worker.units),
              static_cast<unsigned long long>(s.device_worker.claims),
              s.device_worker.busy_seconds);
  std::printf("  }\n");
}

/// The --json-stats object for apsp/path/analytics: PhaseTimings and
/// SchedulerStats of the oracle build, as one JSON document on stdout.
void print_apsp_json(const char* command, const core::DistanceOracle& oracle) {
  const core::PhaseTimings& t = oracle.timings();
  std::printf("{\n  \"command\": \"%s\",\n", command);
  std::printf("  \"phases\": {\n");
  std::printf("    \"decompose\": %.6f,\n", t.decompose);
  std::printf("    \"reduce\": %.6f,\n", t.reduce);
  std::printf("    \"process\": %.6f,\n", t.process);
  std::printf("    \"postprocess\": %.6f,\n", t.postprocess);
  std::printf("    \"ap_table\": %.6f,\n", t.ap_table);
  std::printf("    \"total\": %.6f\n", t.total());
  std::printf("  },\n");
  print_scheduler_json(oracle.engine().scheduler_stats());
  std::printf("}\n");
}

void print_mcb_json(const mcb::McbResult& r, bool valid) {
  const mcb::McbStats& s = r.stats;
  std::printf("{\n  \"command\": \"mcb\",\n");
  std::printf("  \"basis_size\": %zu,\n", r.basis.size());
  std::printf("  \"total_weight\": %g,\n", r.total_weight);
  std::printf("  \"valid\": %s,\n", valid ? "true" : "false");
  std::printf("  \"phases\": {\n");
  std::printf("    \"reduce\": %.6f,\n", s.reduce_seconds);
  std::printf("    \"preprocess\": %.6f,\n", s.preprocess_seconds);
  std::printf("    \"labels\": %.6f,\n", s.labels_seconds);
  std::printf("    \"search\": %.6f,\n", s.search_seconds);
  std::printf("    \"update\": %.6f,\n", s.update_seconds);
  std::printf("    \"total\": %.6f\n", s.total_seconds());
  std::printf("  },\n");
  std::printf("  \"dimension\": %zu,\n", s.dimension);
  std::printf("  \"candidates\": %zu,\n", s.candidates);
  std::printf("  \"fallback_searches\": %zu,\n", s.fallback_searches);
  std::printf("  \"fvs_size\": %zu\n", s.fvs_size);
  std::printf("}\n");
}

/// `eardec_cli version`: build provenance — the same fields
/// bench::json_stamp() bakes into bench_results/*.json snapshots, plus the
/// compiled feature flags, so a snapshot can always be matched back to a
/// binary.
int print_version() {
  std::printf("eardec_cli\n");
  std::printf("git_sha: %s\n", bench::build_git_sha());
  std::printf("bench_schema_version: %d\n", bench::kBenchSchemaVersion);
  std::printf("graph_formats: mtx(rw) edgelist(rw) edg1(rw) edg2(v%u rw, "
              "mmap)\n",
              graph::io::kEdg2Version);
  std::printf("tracing: %s\n", obs::kTracingEnabled ? "on" : "off");
#if defined(EARDEC_SANITIZE_BUILD)
  std::printf("sanitize: on\n");
#else
  std::printf("sanitize: off\n");
#endif
#if defined(EARDEC_NATIVE_BUILD)
  std::printf("native: on\n");
#else
  std::printf("native: off\n");
#endif
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: eardec_cli {stats|decompose|apsp|path|mcb|analytics|"
               "gen|convert|summarize|bc|query|serve|version} <args> "
               "[--mode=seq|mc|gpu|hetero] "
               "[--threads=N] [--trace <file>] [--metrics <file>] "
               "[--json-stats] [--pmu] [--stats-port <p>] "
               "[--stats-linger <sec>] [--serve-seconds <sec>] "
               "[--slow-log <file>] "
               "[--batch-engine=tables|recompute] [--deep] "
               "[--reorder=bfs|degree] [--rss-gate[=factor]]\n");
  return 2;
}

volatile std::sig_atomic_t g_serve_stop = 0;
void serve_signal_handler(int) { g_serve_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "version") == 0 ||
                    std::strcmp(argv[1], "--version") == 0)) {
    return print_version();
  }
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    CliOptions cli;
    const std::vector<std::string> pos = parse_args(argc - 2, argv + 2, cli);
    if (pos.empty()) return usage();
    if (!cli.trace_path.empty()) obs::Tracer::instance().set_enabled(true);
    if (cli.pmu) {
      // enable() still defers to EARDEC_PMU=off, so CI can pin the
      // fallback path; the status line says which tier we actually got.
      const obs::PmuStatus st = obs::PmuEngine::instance().enable(true);
      std::fprintf(stderr, "pmu: %s\n", obs::to_string(st));
      if (!obs::Sampler::instance().configure_from_env()) {
        obs::Sampler::instance().start();
      }
    } else {
      obs::PmuEngine::instance().configure_from_env();
      obs::Sampler::instance().configure_from_env();
    }
    if (cli.stats_port >= 0) {
      obs::StatsServer::instance().start(
          static_cast<std::uint16_t>(cli.stats_port));
    } else {
      obs::StatsServer::instance().configure_from_env();
    }
    const ObsExports exports{cli};  // flushes --trace/--metrics on return
    const core::ApspOptions& opts = cli.apsp;

    if (cmd == "gen") {
      if (pos.size() < 2) return usage();
      // `scale:N` is the million-node scaling generator: raw edge list plus
      // the parallel CSR builder, then whatever format the extension picks.
      if (pos[0].starts_with("scale:")) {
        const auto n = static_cast<graph::VertexId>(
            std::stoul(pos[0].substr(std::strlen("scale:"))));
        hetero::ThreadPool pool(opts.cpu_threads);
        auto se = graph::generators::table1_scale_edges(n, /*seed=*/42);
        const graph::Graph scale = graph::io::build_csr_parallel(
            se.num_vertices, std::move(se.edges), std::move(se.weights),
            &pool);
        save(pos[1], scale, &pool);
        std::printf("wrote %s (scale graph, %u vertices, %u edges)\n",
                    pos[1].c_str(), scale.num_vertices(), scale.num_edges());
        return 0;
      }
      const auto& d = graph::datasets::by_name(pos[0]);
      save(pos[1], d.make());
      std::printf("wrote %s (dataset %s)\n", pos[1].c_str(), d.name.c_str());
      return 0;
    }
    if (cmd == "summarize" && pos[0].ends_with(".edg2")) {
      // Header-only: never faults the payload pages in. --deep additionally
      // loads + fully validates (checksum, ranges).
      const auto info = graph::io::inspect_edg2_file(pos[0]);
      std::printf("format:    EDG2 v%u\n", info.version);
      std::printf("vertices:  %llu\n",
                  static_cast<unsigned long long>(info.num_vertices));
      std::printf("edges:     %llu (self-loops: %llu, parallels: %s)\n",
                  static_cast<unsigned long long>(info.num_edges),
                  static_cast<unsigned long long>(info.num_self_loops),
                  info.has_parallel_edges ? "yes" : "no");
      std::printf("file:      %.2f MB (payload %.2f MB)\n",
                  static_cast<double>(info.file_bytes) / (1024.0 * 1024.0),
                  static_cast<double>(info.payload_bytes) / (1024.0 * 1024.0));
      std::printf("provenance: %s\n", info.provenance.c_str());
      if (cli.deep) {
        const graph::Graph g = load(pos[0], /*deep=*/true);
        std::printf("deep validation: ok (%u vertices loaded)\n",
                    g.num_vertices());
      }
      return 0;
    }

    const graph::Graph g = load(pos[0], cli.deep);

    if (cmd == "summarize") {
      std::printf("vertices:  %u\nedges:     %u (self-loops: %llu, "
                  "parallels: %s)\n",
                  g.num_vertices(), g.num_edges(),
                  static_cast<unsigned long long>(g.num_self_loops()),
                  g.has_parallel_edges() ? "yes" : "no");
      return 0;
    }
    if (cmd == "convert") {
      if (pos.size() < 2) return usage();
      hetero::ThreadPool pool(opts.cpu_threads);
      if (!cli.reorder.empty()) {
        const graph::Reordered r = cli.reorder == "bfs"
                                       ? graph::reorder_bfs(g)
                                       : graph::reorder_by_degree(g);
        save(pos[1], r.graph, &pool);
        std::printf("wrote %s (%u vertices, %u edges, reorder=%s)\n",
                    pos[1].c_str(), r.graph.num_vertices(),
                    r.graph.num_edges(), cli.reorder.c_str());
      } else {
        save(pos[1], g, &pool);
        std::printf("wrote %s (%u vertices, %u edges)\n", pos[1].c_str(),
                    g.num_vertices(), g.num_edges());
      }
      return 0;
    }
    if (cmd == "bc") {
      const auto k = static_cast<std::size_t>(
          pos.size() >= 2 ? std::stoul(pos[1]) : 5);
      hetero::ThreadPool pool(opts.cpu_threads);
      const auto bc = sssp::betweenness_centrality(g, &pool);
      std::vector<graph::VertexId> order(g.num_vertices());
      for (graph::VertexId v = 0; v < g.num_vertices(); ++v) order[v] = v;
      std::sort(order.begin(), order.end(),
                [&bc](graph::VertexId a, graph::VertexId b) {
                  return bc[a] > bc[b];
                });
      for (std::size_t i = 0; i < std::min(k, order.size()); ++i) {
        std::printf("%2zu. vertex %u: %.1f\n", i + 1, order[i], bc[order[i]]);
      }
      return 0;
    }

    if (cmd == "stats") {
      std::printf("%s\n", graph::to_string(graph::compute_stats(g)).c_str());
      return 0;
    }
    if (cmd == "decompose") {
      const auto bcc = connectivity::biconnected_components(g);
      const auto chains = reduce::find_chains(g);
      std::size_t removable = 0;
      for (const auto& c : chains.chains) removable += c.interior.size();
      std::printf("biconnected components: %u\n", bcc.num_components);
      std::printf("articulation points:    %zu\n",
                  bcc.num_articulation_points());
      std::printf("degree-2 chains:        %zu (removing %zu of %u vertices)\n",
                  chains.chains.size(), removable, g.num_vertices());
      if (connectivity::is_biconnected(g) && g.num_edges() > 0) {
        const auto ed = connectivity::ear_decomposition(g);
        std::printf("ear decomposition:      %zu ears (open: %s)\n",
                    ed.ears.size(), ed.open ? "yes" : "no");
      } else if (bcc.num_components > 0) {
        // Phase I on the dominant block: extract it and ear-decompose.
        std::uint32_t largest = 0;
        for (std::uint32_t c = 1; c < bcc.num_components; ++c) {
          if (bcc.component_edges(c).size() >
              bcc.component_edges(largest).size()) {
            largest = c;
          }
        }
        if (bcc.component_edges(largest).size() > 1) {
          const auto view = connectivity::extract_component(g, bcc, largest);
          const auto ed = connectivity::ear_decomposition(view.graph);
          std::printf("largest block:          %u vertices, %u edges, "
                      "%zu ears (open: %s)\n",
                      view.graph.num_vertices(), view.graph.num_edges(),
                      ed.ears.size(), ed.open ? "yes" : "no");
        }
      }
      if (cli.rss_gate > 0) {
        const auto model =
            core::phase01_memory_model(g.num_vertices(), g.num_edges());
        const double peak = obs::read_peak_rss_mb();
        std::printf("rss-gate: peak %.1f MB, model %.1f MB "
                    "(csr %.1f MB), allowed %.1f MB\n",
                    peak, model.total_mb(), model.csr_mb(),
                    model.total_mb() * cli.rss_gate);
        if (peak < 0) {
          std::fprintf(stderr, "rss-gate: peak RSS unavailable\n");
          return 1;
        }
        if (peak > model.total_mb() * cli.rss_gate) {
          std::fprintf(stderr,
                       "rss-gate: FAILED (peak %.1f MB > %.1f MB)\n", peak,
                       model.total_mb() * cli.rss_gate);
          return 1;
        }
      }
      return 0;
    }
    if (cmd == "apsp") {
      const core::DistanceOracle oracle(g, opts);
      if (cli.json_stats) {
        print_apsp_json("apsp", oracle);
      } else {
        std::printf("oracle ready: %u components, %llu SSSP runs, "
                    "%.2f MB (vs %.2f MB dense)\n",
                    oracle.engine().num_components(),
                    static_cast<unsigned long long>(
                        oracle.engine().sssp_runs()),
                    oracle.memory().compact_mb(), oracle.memory().full_mb());
      }
      if (pos.size() >= 3) {
        const auto s = static_cast<graph::VertexId>(std::stoul(pos[1]));
        const auto t = static_cast<graph::VertexId>(std::stoul(pos[2]));
        if (!cli.json_stats) {
          std::printf("d(%u, %u) = %g\n", s, t, oracle.distance(s, t));
        }
      }
      return 0;
    }
    if (cmd == "path") {
      if (pos.size() < 3) return usage();
      const auto s = static_cast<graph::VertexId>(std::stoul(pos[1]));
      const auto t = static_cast<graph::VertexId>(std::stoul(pos[2]));
      const core::DistanceOracle oracle(g, opts);
      const core::Path p = core::reconstruct_path(oracle, s, t);
      if (!p.found()) {
        std::printf("%u and %u are not connected\n", s, t);
        return 1;
      }
      if (cli.json_stats) {
        print_apsp_json("path", oracle);
      } else {
        std::printf("weight %g, %zu hops:", p.weight, p.edges.size());
        for (const auto v : p.vertices) std::printf(" %u", v);
        std::printf("\n");
      }
      return 0;
    }
    if (cmd == "mcb") {
      mcb::McbOptions mopts{.mode = opts.mode, .cpu_threads = opts.cpu_threads};
      const auto r = mcb::minimum_cycle_basis(g, mopts);
      const bool valid = mcb::validate_basis(g, r);
      if (cli.json_stats) {
        print_mcb_json(r, valid);
      } else {
        std::printf("basis: %zu cycles, total weight %g, valid: %s\n",
                    r.basis.size(), r.total_weight, valid ? "yes" : "NO");
        std::printf("profile: labels %.0f%%, search %.0f%%, update %.0f%%\n",
                    100 * r.stats.labels_seconds / r.stats.total_seconds(),
                    100 * r.stats.search_seconds / r.stats.total_seconds(),
                    100 * r.stats.update_seconds / r.stats.total_seconds());
      }
      return 0;
    }
    if (cmd == "query") {
      // Reference answers for the serving layer: the same compact closed
      // form the server evaluates, printed with format_distance so the CI
      // smoke diff against /query responses is textual and exact.
      const core::DistanceOracle oracle(g, opts);
      if (pos.size() >= 3) {
        const auto s = static_cast<graph::VertexId>(std::stoul(pos[1]));
        const auto t = static_cast<graph::VertexId>(std::stoul(pos[2]));
        std::printf("%s\n", serve::format_distance(oracle.distance(s, t)).c_str());
        return 0;
      }
      if (pos.size() == 2 && pos[1] == "-") {
        unsigned s = 0, t = 0;
        while (std::scanf("%u %u", &s, &t) == 2) {
          std::printf("%s\n",
                      serve::format_distance(oracle.distance(s, t)).c_str());
        }
        return 0;
      }
      return usage();
    }
    if (cmd == "serve") {
      if (!obs::StatsServer::kCompiledIn) {
        std::fprintf(stderr,
                     "error: serve needs the stats server; rebuild with "
                     "-DEARDEC_ENABLE_TRACING=ON\n");
        return 1;
      }
      serve::ServeOptions sopts;
      sopts.build = opts;
      sopts.batch_engine = cli.batch_engine;
      serve::OracleServer server(g, sopts);
      serve::register_query_routes(server);
      // Tail-sampled exemplar store (GET /debug/slow, --slow-log) and the
      // always-on flight recorder with a stalled-loop watchdog: a serve
      // process that crashes or wedges leaves its newest spans behind.
      obs::SlowLog::instance().arm();
      obs::FlightRecorder::instance().configure_from_env();
      obs::FlightRecorder::instance().start_watchdog(/*stall_ms=*/5000);
      auto& stats = obs::StatsServer::instance();
      if (!stats.running() &&
          !stats.start(cli.stats_port >= 0
                           ? static_cast<std::uint16_t>(cli.stats_port)
                           : 0)) {
        serve::unregister_query_routes();
        std::fprintf(stderr, "error: cannot start the stats endpoint\n");
        return 1;
      }
      // The harness (tools/serve_smoke.sh, tests) parses this line for the
      // bound port; keep the format stable.
      std::printf("serve: ready port=%u epoch=%llu vertices=%u\n",
                  static_cast<unsigned>(stats.port()),
                  static_cast<unsigned long long>(server.epoch()),
                  g.num_vertices());
      std::fflush(stdout);
      std::signal(SIGINT, serve_signal_handler);
      std::signal(SIGTERM, serve_signal_handler);
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::seconds(cli.serve_seconds);
      while (g_serve_stop == 0 &&
             (cli.serve_seconds == 0 ||
              std::chrono::steady_clock::now() < deadline)) {
        obs::FlightRecorder::instance().heartbeat();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      obs::FlightRecorder::instance().stop_watchdog();
      // Join the serving thread before the handler's OracleServer target
      // goes out of scope; only then drop the routes.
      stats.stop();
      serve::unregister_query_routes();
      if (!cli.slow_log_path.empty()) {
        std::ofstream slow(cli.slow_log_path);
        if (slow) {
          slow << obs::SlowLog::instance().dump_json() << '\n';
          std::printf("serve: slow-query exemplars -> %s\n",
                      cli.slow_log_path.c_str());
        } else {
          std::fprintf(stderr, "error: cannot write %s\n",
                       cli.slow_log_path.c_str());
        }
      }
      std::printf("serve: shutdown epoch=%llu\n",
                  static_cast<unsigned long long>(server.epoch()));
      return 0;
    }
    if (cmd == "analytics") {
      const core::DistanceOracle oracle(g, opts);
      const auto a = core::compute_analytics(oracle);
      if (cli.json_stats) {
        print_apsp_json("analytics", oracle);
        return 0;
      }
      std::printf("diameter: %g, radius: %g, centers:", a.diameter, a.radius);
      for (std::size_t i = 0; i < std::min<std::size_t>(8, a.centers.size());
           ++i) {
        std::printf(" %u", a.centers[i]);
      }
      if (a.centers.size() > 8) std::printf(" ...");
      std::printf("\n");
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
