// eardec_cli — run the library's algorithms on a Matrix Market or edge-list
// file from the command line.
//
//   eardec_cli stats     <graph>           structural profile
//   eardec_cli decompose <graph>           BCC / chain / ear summary
//   eardec_cli apsp      <graph> [s t]     build the oracle; optional query
//   eardec_cli path      <graph> <s> <t>   print one shortest path
//   eardec_cli mcb       <graph>           minimum cycle basis summary
//   eardec_cli analytics <graph>           eccentricity / diameter / centers
//   eardec_cli gen       <name> <out.mtx>  write a Table-1 dataset to a file
//   eardec_cli convert   <in> <out>        convert between formats
//   eardec_cli bc        <graph> [k]       top-k betweenness-central vertices
//   eardec_cli query     <graph> <s> <t>   one oracle distance (%.17g / inf)
//   eardec_cli query     <graph> -         stdin "s t" pairs, one per line
//   eardec_cli serve     <graph>           online serving: build the oracle,
//                                          register /query + /query/batch on
//                                          the stats endpoint, run until
//                                          SIGINT/SIGTERM or --serve-seconds
//   eardec_cli version                     build provenance + feature flags
//
// Graphs by extension: *.mtx (Matrix Market), *.edg (binary EDG1), anything
// else as whitespace edge list.
// Options:
//   --mode=seq|mc|gpu|hetero   execution mode (default mc)
//   --threads=N                CPU worker threads (default 4)
//   --trace <file>             record a Chrome trace (load in Perfetto /
//                              chrome://tracing); also --trace=<file>
//   --metrics <file>           dump the metrics registry (.json or .csv)
//   --json-stats               print phase timings + scheduler counters as
//                              one JSON object instead of the human summary
//   --pmu                      arm the perf_event counter engine and the
//                              background sampler (see docs/profiling.md);
//                              EARDEC_PMU=off still wins
//   --stats-port <p>           serve live stats over HTTP on 127.0.0.1:<p>
//                              (/metrics Prometheus text, /healthz,
//                              /stats.json; 0 picks an ephemeral port, the
//                              chosen one is printed to stderr); also
//                              honored from EARDEC_STATS_PORT
//   --stats-linger <sec>       keep the stats endpoint alive <sec> seconds
//                              after the command finishes, so scrapers can
//                              read the final state
//   --serve-seconds <sec>      serve: exit after <sec> seconds (0 = until a
//                              signal arrives; the default)
//   --batch-engine=tables|recompute
//                              serve: how /query/batch evaluates its
//                              within-block legs (see docs/serving.md)
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "connectivity/bcc.hpp"
#include "connectivity/ear_decomposition.hpp"
#include "core/analytics.hpp"
#include "core/distance_oracle.hpp"
#include "core/path.hpp"
#include "graph/binary_io.hpp"
#include "graph/datasets.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "bench_common.hpp"
#include "mcb/ear_mcb.hpp"
#include "obs/metrics.hpp"
#include "obs/pmu.hpp"
#include "obs/sampler.hpp"
#include "obs/stats_server.hpp"
#include "obs/trace.hpp"
#include "serve/http_routes.hpp"
#include "serve/oracle_server.hpp"
#include "sssp/brandes.hpp"
#include "reduce/chains.hpp"

namespace {

using namespace eardec;

graph::Graph load(const std::string& path) {
  if (path.ends_with(".mtx")) {
    return graph::io::read_matrix_market_file(path);
  }
  if (path.ends_with(".edg")) {
    return graph::io::read_binary_file(path);
  }
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return graph::io::read_edge_list(in);
}

void save(const std::string& path, const graph::Graph& g) {
  if (path.ends_with(".mtx")) {
    graph::io::write_matrix_market_file(path, g);
  } else if (path.ends_with(".edg")) {
    graph::io::write_binary_file(path, g);
  } else {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    graph::io::write_edge_list(out, g);
  }
}

struct CliOptions {
  core::ApspOptions apsp{.mode = core::ExecutionMode::Multicore,
                         .cpu_threads = 4};
  std::string trace_path;    ///< --trace: Chrome trace JSON destination
  std::string metrics_path;  ///< --metrics: registry dump (.json / .csv)
  bool json_stats = false;   ///< --json-stats: machine-readable summary
  bool pmu = false;          ///< --pmu: arm counters + background sampler
  int stats_port = -1;       ///< --stats-port: live HTTP endpoint (-1 = off)
  unsigned stats_linger = 0; ///< --stats-linger: seconds to serve after done
  unsigned serve_seconds = 0;  ///< serve: run time limit (0 = until signal)
  serve::BatchEngine batch_engine = serve::BatchEngine::Tables;
};

/// Splits argv into flags (into `cli`) and positional operands (returned in
/// order). Value flags accept both `--flag=value` and `--flag value`.
std::vector<std::string> parse_args(int argc, char** argv, CliOptions& cli) {
  std::vector<std::string> pos;
  const auto value_of = [&](const std::string& arg, const char* name,
                            int& i) -> std::string {
    const std::string eq = std::string(name) + "=";
    if (arg.starts_with(eq)) return arg.substr(eq.size());
    if (i + 1 >= argc) {
      throw std::runtime_error(std::string(name) + " needs a value");
    }
    return argv[++i];
  };
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.starts_with("--mode")) {
      const std::string mode = value_of(arg, "--mode", i);
      if (mode == "seq") cli.apsp.mode = core::ExecutionMode::Sequential;
      else if (mode == "mc") cli.apsp.mode = core::ExecutionMode::Multicore;
      else if (mode == "gpu") cli.apsp.mode = core::ExecutionMode::DeviceOnly;
      else if (mode == "hetero") {
        cli.apsp.mode = core::ExecutionMode::Heterogeneous;
      } else {
        throw std::runtime_error("unknown --mode " + mode);
      }
    } else if (arg.starts_with("--threads")) {
      cli.apsp.cpu_threads =
          static_cast<unsigned>(std::stoul(value_of(arg, "--threads", i)));
    } else if (arg.starts_with("--trace")) {
      cli.trace_path = value_of(arg, "--trace", i);
    } else if (arg.starts_with("--metrics")) {
      cli.metrics_path = value_of(arg, "--metrics", i);
    } else if (arg == "--json-stats") {
      cli.json_stats = true;
    } else if (arg == "--pmu") {
      cli.pmu = true;
    } else if (arg.starts_with("--stats-port")) {
      const unsigned long port =
          std::stoul(value_of(arg, "--stats-port", i));
      if (port > 65535) throw std::runtime_error("--stats-port out of range");
      cli.stats_port = static_cast<int>(port);
    } else if (arg.starts_with("--stats-linger")) {
      cli.stats_linger =
          static_cast<unsigned>(std::stoul(value_of(arg, "--stats-linger", i)));
    } else if (arg.starts_with("--serve-seconds")) {
      cli.serve_seconds =
          static_cast<unsigned>(std::stoul(value_of(arg, "--serve-seconds", i)));
    } else if (arg.starts_with("--batch-engine")) {
      const std::string engine = value_of(arg, "--batch-engine", i);
      if (engine == "tables") {
        cli.batch_engine = serve::BatchEngine::Tables;
      } else if (engine == "recompute") {
        cli.batch_engine = serve::BatchEngine::Recompute;
      } else {
        throw std::runtime_error("unknown --batch-engine " + engine);
      }
    } else if (arg.starts_with("--")) {
      throw std::runtime_error("unknown option " + arg);
    } else {
      pos.push_back(arg);
    }
  }
  return pos;
}

/// Writes the pending --trace / --metrics exports on scope exit, so every
/// `return` path in the command dispatch flushes them.
struct ObsExports {
  const CliOptions& cli;
  ~ObsExports() {
    // Short commands finish before a scraper gets a look in; the linger
    // window keeps the endpoint (and its final numbers) up before we stop
    // the serving thread.
    auto& stats = obs::StatsServer::instance();
    if (stats.running() && cli.stats_linger > 0) {
      std::fprintf(stderr, "stats: lingering %u s on port %u\n",
                   cli.stats_linger, static_cast<unsigned>(stats.port()));
      std::this_thread::sleep_for(std::chrono::seconds(cli.stats_linger));
    }
    stats.stop();
    // The export path would quiesce a still-running sampler on its own;
    // stopping first also captures the sampler's final sample.
    obs::Sampler::instance().stop();
    if (!cli.trace_path.empty() &&
        !obs::Tracer::instance().write_chrome_trace_file(cli.trace_path)) {
      std::fprintf(stderr, "error: cannot write %s\n", cli.trace_path.c_str());
    }
    if (!cli.metrics_path.empty() &&
        !obs::MetricsRegistry::instance().write_file(cli.metrics_path)) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   cli.metrics_path.c_str());
    }
  }
};

void print_scheduler_json(const hetero::SchedulerStats& s) {
  std::printf("  \"scheduler\": {\n");
  std::printf("    \"cpu_units\": %llu,\n",
              static_cast<unsigned long long>(s.cpu_units));
  std::printf("    \"device_units\": %llu,\n",
              static_cast<unsigned long long>(s.device_units));
  std::printf("    \"cpu_claims\": %llu,\n",
              static_cast<unsigned long long>(s.cpu_claims));
  std::printf("    \"device_claims\": %llu,\n",
              static_cast<unsigned long long>(s.device_claims));
  std::printf("    \"queue_contention\": %llu,\n",
              static_cast<unsigned long long>(s.queue_contention));
  std::printf("    \"elapsed_seconds\": %.6f,\n", s.elapsed_seconds);
  std::printf("    \"utilization\": %.4f,\n", s.utilization());
  std::printf("    \"cpu_workers\": [");
  for (std::size_t i = 0; i < s.cpu_workers.size(); ++i) {
    const auto& w = s.cpu_workers[i];
    std::printf("%s{\"units\": %llu, \"claims\": %llu, "
                "\"busy_seconds\": %.6f}",
                i == 0 ? "" : ", ",
                static_cast<unsigned long long>(w.units),
                static_cast<unsigned long long>(w.claims), w.busy_seconds);
  }
  std::printf("],\n");
  std::printf("    \"device_worker\": {\"units\": %llu, \"claims\": %llu, "
              "\"busy_seconds\": %.6f}\n",
              static_cast<unsigned long long>(s.device_worker.units),
              static_cast<unsigned long long>(s.device_worker.claims),
              s.device_worker.busy_seconds);
  std::printf("  }\n");
}

/// The --json-stats object for apsp/path/analytics: PhaseTimings and
/// SchedulerStats of the oracle build, as one JSON document on stdout.
void print_apsp_json(const char* command, const core::DistanceOracle& oracle) {
  const core::PhaseTimings& t = oracle.timings();
  std::printf("{\n  \"command\": \"%s\",\n", command);
  std::printf("  \"phases\": {\n");
  std::printf("    \"decompose\": %.6f,\n", t.decompose);
  std::printf("    \"reduce\": %.6f,\n", t.reduce);
  std::printf("    \"process\": %.6f,\n", t.process);
  std::printf("    \"postprocess\": %.6f,\n", t.postprocess);
  std::printf("    \"ap_table\": %.6f,\n", t.ap_table);
  std::printf("    \"total\": %.6f\n", t.total());
  std::printf("  },\n");
  print_scheduler_json(oracle.engine().scheduler_stats());
  std::printf("}\n");
}

void print_mcb_json(const mcb::McbResult& r, bool valid) {
  const mcb::McbStats& s = r.stats;
  std::printf("{\n  \"command\": \"mcb\",\n");
  std::printf("  \"basis_size\": %zu,\n", r.basis.size());
  std::printf("  \"total_weight\": %g,\n", r.total_weight);
  std::printf("  \"valid\": %s,\n", valid ? "true" : "false");
  std::printf("  \"phases\": {\n");
  std::printf("    \"reduce\": %.6f,\n", s.reduce_seconds);
  std::printf("    \"preprocess\": %.6f,\n", s.preprocess_seconds);
  std::printf("    \"labels\": %.6f,\n", s.labels_seconds);
  std::printf("    \"search\": %.6f,\n", s.search_seconds);
  std::printf("    \"update\": %.6f,\n", s.update_seconds);
  std::printf("    \"total\": %.6f\n", s.total_seconds());
  std::printf("  },\n");
  std::printf("  \"dimension\": %zu,\n", s.dimension);
  std::printf("  \"candidates\": %zu,\n", s.candidates);
  std::printf("  \"fallback_searches\": %zu,\n", s.fallback_searches);
  std::printf("  \"fvs_size\": %zu\n", s.fvs_size);
  std::printf("}\n");
}

/// `eardec_cli version`: build provenance — the same fields
/// bench::json_stamp() bakes into bench_results/*.json snapshots, plus the
/// compiled feature flags, so a snapshot can always be matched back to a
/// binary.
int print_version() {
  std::printf("eardec_cli\n");
  std::printf("git_sha: %s\n", bench::build_git_sha());
  std::printf("bench_schema_version: %d\n", bench::kBenchSchemaVersion);
  std::printf("tracing: %s\n", obs::kTracingEnabled ? "on" : "off");
#if defined(EARDEC_SANITIZE_BUILD)
  std::printf("sanitize: on\n");
#else
  std::printf("sanitize: off\n");
#endif
#if defined(EARDEC_NATIVE_BUILD)
  std::printf("native: on\n");
#else
  std::printf("native: off\n");
#endif
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: eardec_cli {stats|decompose|apsp|path|mcb|analytics|"
               "gen|convert|bc|query|serve|version} <args> "
               "[--mode=seq|mc|gpu|hetero] "
               "[--threads=N] [--trace <file>] [--metrics <file>] "
               "[--json-stats] [--pmu] [--stats-port <p>] "
               "[--stats-linger <sec>] [--serve-seconds <sec>] "
               "[--batch-engine=tables|recompute]\n");
  return 2;
}

volatile std::sig_atomic_t g_serve_stop = 0;
void serve_signal_handler(int) { g_serve_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "version") == 0 ||
                    std::strcmp(argv[1], "--version") == 0)) {
    return print_version();
  }
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    CliOptions cli;
    const std::vector<std::string> pos = parse_args(argc - 2, argv + 2, cli);
    if (pos.empty()) return usage();
    if (!cli.trace_path.empty()) obs::Tracer::instance().set_enabled(true);
    if (cli.pmu) {
      // enable() still defers to EARDEC_PMU=off, so CI can pin the
      // fallback path; the status line says which tier we actually got.
      const obs::PmuStatus st = obs::PmuEngine::instance().enable(true);
      std::fprintf(stderr, "pmu: %s\n", obs::to_string(st));
      if (!obs::Sampler::instance().configure_from_env()) {
        obs::Sampler::instance().start();
      }
    } else {
      obs::PmuEngine::instance().configure_from_env();
      obs::Sampler::instance().configure_from_env();
    }
    if (cli.stats_port >= 0) {
      obs::StatsServer::instance().start(
          static_cast<std::uint16_t>(cli.stats_port));
    } else {
      obs::StatsServer::instance().configure_from_env();
    }
    const ObsExports exports{cli};  // flushes --trace/--metrics on return
    const core::ApspOptions& opts = cli.apsp;

    if (cmd == "gen") {
      if (pos.size() < 2) return usage();
      const auto& d = graph::datasets::by_name(pos[0]);
      graph::io::write_matrix_market_file(pos[1], d.make());
      std::printf("wrote %s (dataset %s)\n", pos[1].c_str(), d.name.c_str());
      return 0;
    }

    const graph::Graph g = load(pos[0]);

    if (cmd == "convert") {
      if (pos.size() < 2) return usage();
      save(pos[1], g);
      std::printf("wrote %s (%u vertices, %u edges)\n", pos[1].c_str(),
                  g.num_vertices(), g.num_edges());
      return 0;
    }
    if (cmd == "bc") {
      const auto k = static_cast<std::size_t>(
          pos.size() >= 2 ? std::stoul(pos[1]) : 5);
      hetero::ThreadPool pool(opts.cpu_threads);
      const auto bc = sssp::betweenness_centrality(g, &pool);
      std::vector<graph::VertexId> order(g.num_vertices());
      for (graph::VertexId v = 0; v < g.num_vertices(); ++v) order[v] = v;
      std::sort(order.begin(), order.end(),
                [&bc](graph::VertexId a, graph::VertexId b) {
                  return bc[a] > bc[b];
                });
      for (std::size_t i = 0; i < std::min(k, order.size()); ++i) {
        std::printf("%2zu. vertex %u: %.1f\n", i + 1, order[i], bc[order[i]]);
      }
      return 0;
    }

    if (cmd == "stats") {
      std::printf("%s\n", graph::to_string(graph::compute_stats(g)).c_str());
      return 0;
    }
    if (cmd == "decompose") {
      const auto bcc = connectivity::biconnected_components(g);
      const auto chains = reduce::find_chains(g);
      std::size_t removable = 0;
      for (const auto& c : chains.chains) removable += c.interior.size();
      std::printf("biconnected components: %u\n", bcc.num_components);
      std::printf("articulation points:    %zu\n",
                  bcc.num_articulation_points());
      std::printf("degree-2 chains:        %zu (removing %zu of %u vertices)\n",
                  chains.chains.size(), removable, g.num_vertices());
      if (connectivity::is_biconnected(g) && g.num_edges() > 0) {
        const auto ed = connectivity::ear_decomposition(g);
        std::printf("ear decomposition:      %zu ears (open: %s)\n",
                    ed.ears.size(), ed.open ? "yes" : "no");
      }
      return 0;
    }
    if (cmd == "apsp") {
      const core::DistanceOracle oracle(g, opts);
      if (cli.json_stats) {
        print_apsp_json("apsp", oracle);
      } else {
        std::printf("oracle ready: %u components, %llu SSSP runs, "
                    "%.2f MB (vs %.2f MB dense)\n",
                    oracle.engine().num_components(),
                    static_cast<unsigned long long>(
                        oracle.engine().sssp_runs()),
                    oracle.memory().compact_mb(), oracle.memory().full_mb());
      }
      if (pos.size() >= 3) {
        const auto s = static_cast<graph::VertexId>(std::stoul(pos[1]));
        const auto t = static_cast<graph::VertexId>(std::stoul(pos[2]));
        if (!cli.json_stats) {
          std::printf("d(%u, %u) = %g\n", s, t, oracle.distance(s, t));
        }
      }
      return 0;
    }
    if (cmd == "path") {
      if (pos.size() < 3) return usage();
      const auto s = static_cast<graph::VertexId>(std::stoul(pos[1]));
      const auto t = static_cast<graph::VertexId>(std::stoul(pos[2]));
      const core::DistanceOracle oracle(g, opts);
      const core::Path p = core::reconstruct_path(oracle, s, t);
      if (!p.found()) {
        std::printf("%u and %u are not connected\n", s, t);
        return 1;
      }
      if (cli.json_stats) {
        print_apsp_json("path", oracle);
      } else {
        std::printf("weight %g, %zu hops:", p.weight, p.edges.size());
        for (const auto v : p.vertices) std::printf(" %u", v);
        std::printf("\n");
      }
      return 0;
    }
    if (cmd == "mcb") {
      mcb::McbOptions mopts{.mode = opts.mode, .cpu_threads = opts.cpu_threads};
      const auto r = mcb::minimum_cycle_basis(g, mopts);
      const bool valid = mcb::validate_basis(g, r);
      if (cli.json_stats) {
        print_mcb_json(r, valid);
      } else {
        std::printf("basis: %zu cycles, total weight %g, valid: %s\n",
                    r.basis.size(), r.total_weight, valid ? "yes" : "NO");
        std::printf("profile: labels %.0f%%, search %.0f%%, update %.0f%%\n",
                    100 * r.stats.labels_seconds / r.stats.total_seconds(),
                    100 * r.stats.search_seconds / r.stats.total_seconds(),
                    100 * r.stats.update_seconds / r.stats.total_seconds());
      }
      return 0;
    }
    if (cmd == "query") {
      // Reference answers for the serving layer: the same compact closed
      // form the server evaluates, printed with format_distance so the CI
      // smoke diff against /query responses is textual and exact.
      const core::DistanceOracle oracle(g, opts);
      if (pos.size() >= 3) {
        const auto s = static_cast<graph::VertexId>(std::stoul(pos[1]));
        const auto t = static_cast<graph::VertexId>(std::stoul(pos[2]));
        std::printf("%s\n", serve::format_distance(oracle.distance(s, t)).c_str());
        return 0;
      }
      if (pos.size() == 2 && pos[1] == "-") {
        unsigned s = 0, t = 0;
        while (std::scanf("%u %u", &s, &t) == 2) {
          std::printf("%s\n",
                      serve::format_distance(oracle.distance(s, t)).c_str());
        }
        return 0;
      }
      return usage();
    }
    if (cmd == "serve") {
      if (!obs::StatsServer::kCompiledIn) {
        std::fprintf(stderr,
                     "error: serve needs the stats server; rebuild with "
                     "-DEARDEC_ENABLE_TRACING=ON\n");
        return 1;
      }
      serve::ServeOptions sopts;
      sopts.build = opts;
      sopts.batch_engine = cli.batch_engine;
      serve::OracleServer server(g, sopts);
      serve::register_query_routes(server);
      auto& stats = obs::StatsServer::instance();
      if (!stats.running() &&
          !stats.start(cli.stats_port >= 0
                           ? static_cast<std::uint16_t>(cli.stats_port)
                           : 0)) {
        serve::unregister_query_routes();
        std::fprintf(stderr, "error: cannot start the stats endpoint\n");
        return 1;
      }
      // The harness (tools/serve_smoke.sh, tests) parses this line for the
      // bound port; keep the format stable.
      std::printf("serve: ready port=%u epoch=%llu vertices=%u\n",
                  static_cast<unsigned>(stats.port()),
                  static_cast<unsigned long long>(server.epoch()),
                  g.num_vertices());
      std::fflush(stdout);
      std::signal(SIGINT, serve_signal_handler);
      std::signal(SIGTERM, serve_signal_handler);
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::seconds(cli.serve_seconds);
      while (g_serve_stop == 0 &&
             (cli.serve_seconds == 0 ||
              std::chrono::steady_clock::now() < deadline)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      // Join the serving thread before the handler's OracleServer target
      // goes out of scope; only then drop the routes.
      stats.stop();
      serve::unregister_query_routes();
      std::printf("serve: shutdown epoch=%llu\n",
                  static_cast<unsigned long long>(server.epoch()));
      return 0;
    }
    if (cmd == "analytics") {
      const core::DistanceOracle oracle(g, opts);
      const auto a = core::compute_analytics(oracle);
      if (cli.json_stats) {
        print_apsp_json("analytics", oracle);
        return 0;
      }
      std::printf("diameter: %g, radius: %g, centers:", a.diameter, a.radius);
      for (std::size_t i = 0; i < std::min<std::size_t>(8, a.centers.size());
           ++i) {
        std::printf(" %u", a.centers[i]);
      }
      if (a.centers.size() > 8) std::printf(" ...");
      std::printf("\n");
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
