// eardec_cli — run the library's algorithms on a Matrix Market or edge-list
// file from the command line.
//
//   eardec_cli stats     <graph>           structural profile
//   eardec_cli decompose <graph>           BCC / chain / ear summary
//   eardec_cli apsp      <graph> [s t]     build the oracle; optional query
//   eardec_cli path      <graph> <s> <t>   print one shortest path
//   eardec_cli mcb       <graph>           minimum cycle basis summary
//   eardec_cli analytics <graph>           eccentricity / diameter / centers
//   eardec_cli gen       <name> <out.mtx>  write a Table-1 dataset to a file
//   eardec_cli convert   <in> <out>        convert between formats
//   eardec_cli bc        <graph> [k]       top-k betweenness-central vertices
//
// Graphs by extension: *.mtx (Matrix Market), *.edg (binary EDG1), anything
// else as whitespace edge list.
// Options: --mode=seq|mc|gpu|hetero (default mc), --threads=N (default 4).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "connectivity/bcc.hpp"
#include "connectivity/ear_decomposition.hpp"
#include "core/analytics.hpp"
#include "core/distance_oracle.hpp"
#include "core/path.hpp"
#include "graph/binary_io.hpp"
#include "graph/datasets.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "mcb/ear_mcb.hpp"
#include "sssp/brandes.hpp"
#include "reduce/chains.hpp"

namespace {

using namespace eardec;

graph::Graph load(const std::string& path) {
  if (path.ends_with(".mtx")) {
    return graph::io::read_matrix_market_file(path);
  }
  if (path.ends_with(".edg")) {
    return graph::io::read_binary_file(path);
  }
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return graph::io::read_edge_list(in);
}

void save(const std::string& path, const graph::Graph& g) {
  if (path.ends_with(".mtx")) {
    graph::io::write_matrix_market_file(path, g);
  } else if (path.ends_with(".edg")) {
    graph::io::write_binary_file(path, g);
  } else {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    graph::io::write_edge_list(out, g);
  }
}

core::ApspOptions parse_options(int argc, char** argv) {
  core::ApspOptions opts{.mode = core::ExecutionMode::Multicore,
                         .cpu_threads = 4};
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.starts_with("--mode=")) {
      const std::string mode = arg.substr(7);
      if (mode == "seq") opts.mode = core::ExecutionMode::Sequential;
      else if (mode == "mc") opts.mode = core::ExecutionMode::Multicore;
      else if (mode == "gpu") opts.mode = core::ExecutionMode::DeviceOnly;
      else if (mode == "hetero") opts.mode = core::ExecutionMode::Heterogeneous;
      else throw std::runtime_error("unknown --mode " + mode);
    } else if (arg.starts_with("--threads=")) {
      opts.cpu_threads = static_cast<unsigned>(std::stoul(arg.substr(10)));
    }
  }
  return opts;
}

int usage() {
  std::fprintf(stderr,
               "usage: eardec_cli {stats|decompose|apsp|path|mcb|analytics|"
               "gen} <args> [--mode=seq|mc|gpu|hetero] [--threads=N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") {
      if (argc < 4) return usage();
      const auto& d = graph::datasets::by_name(argv[2]);
      graph::io::write_matrix_market_file(argv[3], d.make());
      std::printf("wrote %s (dataset %s)\n", argv[3], d.name.c_str());
      return 0;
    }

    const graph::Graph g = load(argv[2]);
    const auto opts = parse_options(argc - 3, argv + 3);

    if (cmd == "convert") {
      if (argc < 4) return usage();
      save(argv[3], g);
      std::printf("wrote %s (%u vertices, %u edges)\n", argv[3],
                  g.num_vertices(), g.num_edges());
      return 0;
    }
    if (cmd == "bc") {
      const auto k = static_cast<std::size_t>(
          argc >= 4 && argv[3][0] != '-' ? std::stoul(argv[3]) : 5);
      hetero::ThreadPool pool(opts.cpu_threads);
      const auto bc = sssp::betweenness_centrality(g, &pool);
      std::vector<graph::VertexId> order(g.num_vertices());
      for (graph::VertexId v = 0; v < g.num_vertices(); ++v) order[v] = v;
      std::sort(order.begin(), order.end(),
                [&bc](graph::VertexId a, graph::VertexId b) {
                  return bc[a] > bc[b];
                });
      for (std::size_t i = 0; i < std::min(k, order.size()); ++i) {
        std::printf("%2zu. vertex %u: %.1f\n", i + 1, order[i], bc[order[i]]);
      }
      return 0;
    }

    if (cmd == "stats") {
      std::printf("%s\n", graph::to_string(graph::compute_stats(g)).c_str());
      return 0;
    }
    if (cmd == "decompose") {
      const auto bcc = connectivity::biconnected_components(g);
      const auto chains = reduce::find_chains(g);
      std::size_t removable = 0;
      for (const auto& c : chains.chains) removable += c.interior.size();
      std::printf("biconnected components: %u\n", bcc.num_components);
      std::printf("articulation points:    %zu\n",
                  bcc.num_articulation_points());
      std::printf("degree-2 chains:        %zu (removing %zu of %u vertices)\n",
                  chains.chains.size(), removable, g.num_vertices());
      if (connectivity::is_biconnected(g) && g.num_edges() > 0) {
        const auto ed = connectivity::ear_decomposition(g);
        std::printf("ear decomposition:      %zu ears (open: %s)\n",
                    ed.ears.size(), ed.open ? "yes" : "no");
      }
      return 0;
    }
    if (cmd == "apsp") {
      const core::DistanceOracle oracle(g, opts);
      std::printf("oracle ready: %u components, %llu SSSP runs, "
                  "%.2f MB (vs %.2f MB dense)\n",
                  oracle.engine().num_components(),
                  static_cast<unsigned long long>(oracle.engine().sssp_runs()),
                  oracle.memory().compact_mb(), oracle.memory().full_mb());
      if (argc >= 5 && argv[3][0] != '-') {
        const auto s = static_cast<graph::VertexId>(std::stoul(argv[3]));
        const auto t = static_cast<graph::VertexId>(std::stoul(argv[4]));
        std::printf("d(%u, %u) = %g\n", s, t, oracle.distance(s, t));
      }
      return 0;
    }
    if (cmd == "path") {
      if (argc < 5) return usage();
      const auto s = static_cast<graph::VertexId>(std::stoul(argv[3]));
      const auto t = static_cast<graph::VertexId>(std::stoul(argv[4]));
      const core::DistanceOracle oracle(g, opts);
      const core::Path p = core::reconstruct_path(oracle, s, t);
      if (!p.found()) {
        std::printf("%u and %u are not connected\n", s, t);
        return 1;
      }
      std::printf("weight %g, %zu hops:", p.weight, p.edges.size());
      for (const auto v : p.vertices) std::printf(" %u", v);
      std::printf("\n");
      return 0;
    }
    if (cmd == "mcb") {
      mcb::McbOptions mopts{.mode = opts.mode, .cpu_threads = opts.cpu_threads};
      const auto r = mcb::minimum_cycle_basis(g, mopts);
      std::printf("basis: %zu cycles, total weight %g, valid: %s\n",
                  r.basis.size(), r.total_weight,
                  mcb::validate_basis(g, r) ? "yes" : "NO");
      std::printf("profile: labels %.0f%%, search %.0f%%, update %.0f%%\n",
                  100 * r.stats.labels_seconds / r.stats.total_seconds(),
                  100 * r.stats.search_seconds / r.stats.total_seconds(),
                  100 * r.stats.update_seconds / r.stats.total_seconds());
      return 0;
    }
    if (cmd == "analytics") {
      const core::DistanceOracle oracle(g, opts);
      const auto a = core::compute_analytics(oracle);
      std::printf("diameter: %g, radius: %g, centers:", a.diameter, a.radius);
      for (std::size_t i = 0; i < std::min<std::size_t>(8, a.centers.size());
           ++i) {
        std::printf(" %u", a.centers[i]);
      }
      if (a.centers.size() > 8) std::printf(" ...");
      std::printf("\n");
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
