#!/usr/bin/env bash
# End-to-end smoke test for the online serving layer (`eardec_cli serve`):
#
#   1. generate a Table-1 dataset,
#   2. start `eardec_cli serve` on an ephemeral port and parse the
#      `serve: ready port=...` line,
#   3. answer a singleton GET /query and a POST /query/batch,
#   4. diff every served distance against the offline `eardec_cli query`
#      batch mode (bit-identical decimal strings, including "inf"),
#   5. scrape /metrics for the oracle serve counters,
#   6. SIGINT the server and require the clean `serve: shutdown` line and
#      exit status 0.
#
# Usage: tools/serve_smoke.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/tools/eardec_cli"
DATASET="${SERVE_SMOKE_DATASET:-cond_mat_2003}"
WORK="$(mktemp -d)"
SERVER_PID=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2> /dev/null; then
    kill -9 "$SERVER_PID" 2> /dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  exit 1
}

[[ -x "$CLI" ]] || fail "$CLI not built (pass the build dir as \$1)"

echo "serve_smoke: generating $DATASET"
"$CLI" gen "$DATASET" "$WORK/g.mtx" > /dev/null

echo "serve_smoke: starting server"
"$CLI" serve "$WORK/g.mtx" --stats-port 0 --serve-seconds 120 \
  > "$WORK/serve.log" 2> "$WORK/serve.err" &
SERVER_PID=$!

# The ready line is printed (and flushed) once the routes are live:
#   serve: ready port=NNNNN epoch=1 vertices=NNN
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^serve: ready port=\([0-9]*\).*/\1/p' "$WORK/serve.log")"
  [[ -n "$PORT" ]] && break
  kill -0 "$SERVER_PID" 2> /dev/null || {
    cat "$WORK/serve.err" >&2
    fail "server exited before becoming ready"
  }
  sleep 0.1
done
[[ -n "$PORT" ]] || fail "no 'serve: ready' line within 10s"
echo "serve_smoke: serving on port $PORT"

BASE="http://127.0.0.1:$PORT"

# --- singleton query ------------------------------------------------------
curl -sf "$BASE/query?s=0&t=17" > "$WORK/one.json"
grep -q '"distance": "' "$WORK/one.json" \
  || fail "GET /query missing distance: $(cat "$WORK/one.json")"
grep -q '"epoch": 1' "$WORK/one.json" \
  || fail "GET /query missing epoch: $(cat "$WORK/one.json")"

# Malformed queries must answer 400, not 404 or a crash.
code="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/query?s=0")"
[[ "$code" == "400" ]] || fail "GET /query?s=0 answered $code, want 400"

# --- batch query vs offline oracle ---------------------------------------
# A deterministic mix of pairs, including s == t and repeated vertices.
cat > "$WORK/pairs.txt" << 'EOF'
0 17
5 423
100 200
42 42
0 0
17 0
311 7
EOF

curl -sf -X POST --data-binary "@$WORK/pairs.txt" "$BASE/query/batch" \
  > "$WORK/batch.json"
grep -q '"count": 7' "$WORK/batch.json" \
  || fail "batch count wrong: $(cat "$WORK/batch.json")"

# Served answers, one per line (the JSON array of quoted decimal strings).
python3 - "$WORK/batch.json" > "$WORK/served.txt" << 'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
print("\n".join(doc["distances"]))
EOF

# Offline reference: the same pairs through `eardec_cli query - ` (stdin
# batch mode), which prints the same decimal formatting per line.
"$CLI" query "$WORK/g.mtx" - < "$WORK/pairs.txt" > "$WORK/offline.txt"

diff -u "$WORK/offline.txt" "$WORK/served.txt" \
  || fail "served batch answers differ from offline oracle"
echo "serve_smoke: 7/7 batch answers bit-identical to offline oracle"

# --- metrics --------------------------------------------------------------
curl -sf "$BASE/metrics" > "$WORK/metrics.txt"
for metric in eardec_oracle_serve_queries eardec_oracle_serve_epoch \
  eardec_oracle_query_scalar_latency_ns eardec_oracle_query_batch_latency_ns; do
  grep -q "^$metric" "$WORK/metrics.txt" \
    || fail "/metrics missing $metric"
done
echo "serve_smoke: /metrics exposes the oracle serve instruments"

# --- clean shutdown -------------------------------------------------------
kill -INT "$SERVER_PID"
status=0
wait "$SERVER_PID" || status=$?
[[ "$status" -eq 0 ]] || fail "server exited with status $status on SIGINT"
grep -q '^serve: shutdown' "$WORK/serve.log" \
  || fail "no 'serve: shutdown' line after SIGINT"
SERVER_PID=""

echo "serve_smoke: PASS"
