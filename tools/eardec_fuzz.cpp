// eardec_fuzz — property-based differential fuzzer for the ear-decomposition
// pipeline. Crosses seeded graph families with differential / metamorphic /
// fault-injection checks, shrinks failures to minimal counterexamples, and
// prints a deterministic report. The same command line always produces
// bit-identical output; every failure line includes the exact replay command.
//
// Usage:
//   eardec_fuzz [--seed N] [--runs N] [--size N]
//               [--family NAME]... [--check NAME]...
//               [--fault-injection] [--no-shrink] [--max-shrink-attempts N]
//               [--out FILE] [--metrics FILE] [--list]
//
// Exit status: 0 when every run passed, 1 when a counterexample was found,
// 2 on usage errors.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "testing/families.hpp"
#include "testing/runner.hpp"

namespace {

using eardec::testing::CheckKind;
using eardec::testing::RunnerOptions;

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "eardec_fuzz: %s\n", message.c_str());
  std::fprintf(
      stderr,
      "usage: eardec_fuzz [--seed N] [--runs N] [--size N]\n"
      "                   [--family NAME]... [--check NAME]...\n"
      "                   [--fault-injection] [--no-shrink]\n"
      "                   [--max-shrink-attempts N] [--out FILE]\n"
      "                   [--metrics FILE] [--list]\n");
  std::exit(2);
}

/// Value of "--flag=v" or "--flag v"; advances i in the latter form.
std::string value_of(std::string_view arg, std::string_view flag, int& i,
                     int argc, char** argv) {
  if (arg.size() > flag.size() && arg[flag.size()] == '=')
    return std::string(arg.substr(flag.size() + 1));
  if (++i >= argc) usage_error(std::string(flag) + " needs a value");
  return argv[i];
}

std::uint64_t parse_u64(const std::string& text, std::string_view flag) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    usage_error(std::string(flag) + ": not a number: " + text);
  }
}

const char* kind_name(CheckKind kind) {
  switch (kind) {
    case CheckKind::Differential: return "differential";
    case CheckKind::Metamorphic: return "metamorphic";
    case CheckKind::Fault: return "fault";
    case CheckKind::Injected: return "injected";
  }
  return "?";
}

void list_registry(std::ostream& out) {
  out << "graph families:\n";
  for (const auto& f : eardec::testing::families()) {
    out << "  " << f.name;
    if (f.tags.multigraph) out << " [multigraph]";
    if (f.tags.degenerate_weights) out << " [degenerate-weights]";
    if (f.tags.disconnected) out << " [disconnected]";
    out << "\n      " << f.description << '\n';
  }
  out << "property checks:\n";
  for (const auto& c : eardec::testing::property_checks()) {
    out << "  " << c.name << " [" << kind_name(c.kind) << ']';
    if (!c.default_enabled) out << " [off by default]";
    out << "\n      " << c.description << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  RunnerOptions options;
  std::string out_path;
  std::string metrics_path;
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--seed")) {
      options.seed = parse_u64(value_of(arg, "--seed", i, argc, argv), arg);
    } else if (arg.starts_with("--runs")) {
      options.runs = static_cast<std::uint32_t>(
          parse_u64(value_of(arg, "--runs", i, argc, argv), arg));
    } else if (arg.starts_with("--size")) {
      options.size = static_cast<std::uint32_t>(
          parse_u64(value_of(arg, "--size", i, argc, argv), arg));
    } else if (arg.starts_with("--family")) {
      options.families.push_back(value_of(arg, "--family", i, argc, argv));
    } else if (arg.starts_with("--check")) {
      options.checks.push_back(value_of(arg, "--check", i, argc, argv));
    } else if (arg == "--fault-injection") {
      options.fault_injection = true;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg.starts_with("--max-shrink-attempts")) {
      options.max_shrink_attempts = static_cast<std::size_t>(parse_u64(
          value_of(arg, "--max-shrink-attempts", i, argc, argv), arg));
    } else if (arg.starts_with("--out")) {
      out_path = value_of(arg, "--out", i, argc, argv);
    } else if (arg.starts_with("--metrics")) {
      metrics_path = value_of(arg, "--metrics", i, argc, argv);
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--help" || arg == "-h") {
      usage_error("property-based fuzzer for the ear-decomposition pipeline");
    } else {
      usage_error("unknown argument: " + std::string(arg));
    }
  }

  if (list_only) {
    list_registry(std::cout);
    return 0;
  }
  if (options.runs == 0) usage_error("--runs must be at least 1");

  // Progress goes to stderr so --out / stdout stay a clean report.
  options.out = &std::cerr;

  int status = 0;
  try {
    const auto report = eardec::testing::run_properties(options);

    std::ostringstream text;
    eardec::testing::write_report(text, options, report);
    std::cout << text.str();
    if (!out_path.empty()) {
      std::ofstream file(out_path, std::ios::binary);
      if (!file) {
        std::fprintf(stderr, "eardec_fuzz: cannot open %s\n",
                     out_path.c_str());
        return 2;
      }
      file << text.str();
    }
    status = report.ok() ? 0 : 1;
  } catch (const std::invalid_argument& e) {
    usage_error(e.what());  // unknown family/check names list valid ones
  }

  if (!metrics_path.empty() &&
      !eardec::obs::MetricsRegistry::instance().write_file(metrics_path)) {
    std::fprintf(stderr, "eardec_fuzz: cannot write metrics to %s\n",
                 metrics_path.c_str());
    return 2;
  }
  return status;
}
