#!/usr/bin/env python3
"""Perf-regression sentinel: diffs two bench_results/*.json snapshots.

Usage: compare_bench.py <baseline.json> <candidate.json>
                        [--threshold 25%] [--min-seconds 0.002]
                        [--out delta.md]

Both files must be schema-v2 snapshots of the *same* bench binary (the
flattened metric keys must overlap). Every shared numeric metric is
compared direction-aware:

  * time-like metrics ("seconds", "*_s", "*_ns", "mean_ns", quantiles)
    regress when the candidate is *higher* than baseline;
  * rate-like metrics ("qps", "*_per_s") regress when the candidate is
    *lower*.

A metric whose relative change exceeds the threshold in the bad direction
is a regression -> exit 1 (improvements and small wobbles exit 0). Tiny
timings are noise, not signal: time-like metrics where both sides sit
below --min-seconds (after ns->s normalisation) are reported but never
gated, and likewise rate-like metrics whose sibling "seconds" metric sits
below the floor on both sides. Identity fields (graph/kernel/method/impl/...) key the cells, so
reordering cells between runs does not produce false diffs. Exit codes:
0 ok, 1 regression, 2 usage/shape error.

The markdown delta table (stdout, or --out for PR comments) lists every
compared metric with baseline, candidate, and relative change, worst
offenders first.
"""

import json
import sys

PROVENANCE_KEYS = {"schema_version", "git_sha", "pmu", "smoke",
                   "hardware_concurrency"}
IDENTITY_KEYS = ("graph", "kernel", "method", "impl", "name", "mode",
                 "dataset", "mix", "path", "k", "witnesses", "density",
                 "device_threshold")


def fail(msg):
    print(f"compare_bench: ERROR: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if doc.get("schema_version") != 2:
        fail(f"{path}: not a schema-v2 bench snapshot "
             f"(schema_version={doc.get('schema_version')})")
    return doc


def cell_identity(cell):
    """Stable key for a list element: its identity fields, in order."""
    parts = [f"{k}={cell[k]}" for k in IDENTITY_KEYS if k in cell]
    return ",".join(parts)


def flatten(node, prefix, out):
    """Recursively flattens a snapshot into {metric_key: number}, skipping
    provenance. List-of-dict elements are keyed by identity fields rather
    than position, so cell reordering between runs diffs cleanly."""
    if isinstance(node, dict):
        for key, value in node.items():
            if not prefix and key in PROVENANCE_KEYS:
                continue
            flatten(value, f"{prefix}.{key}" if prefix else key, out)
    elif isinstance(node, list):
        for i, item in enumerate(node):
            if isinstance(item, dict):
                ident = cell_identity(item) or f"[{i}]"
                flatten(item, f"{prefix}[{ident}]", out)
            else:
                flatten(item, f"{prefix}[{i}]", out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = float(node)


def metric_kind(key):
    """'time' (higher is worse), 'rate' (lower is worse), or None (not a
    performance metric -- identity counts, rounds, sizes -- never gated)."""
    leaf = key.rsplit(".", 1)[-1].rsplit("]", 1)[-1].lstrip(".")
    # Rate suffixes first: "nodes_per_s" also ends with "_s", and the time
    # branch would invert its direction.
    if leaf == "qps" or leaf.endswith("_per_s"):
        return "rate"
    if leaf == "seconds" or leaf.endswith("_s") or leaf.endswith("_ns"):
        return "time"
    return None


def to_seconds(key, value):
    return value / 1e9 if key.rsplit(".", 1)[-1].endswith("_ns") else value


def parse_threshold(text):
    try:
        if text.endswith("%"):
            return float(text[:-1]) / 100.0
        return float(text)
    except ValueError:
        fail(f"bad --threshold {text!r} (want e.g. '25%' or '0.25')")


def main(argv):
    paths = []
    threshold = 0.25
    min_seconds = 0.0
    out_path = None
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--threshold":
            i += 1
            threshold = parse_threshold(argv[i])
        elif arg.startswith("--threshold="):
            threshold = parse_threshold(arg.split("=", 1)[1])
        elif arg == "--min-seconds":
            i += 1
            min_seconds = float(argv[i])
        elif arg.startswith("--min-seconds="):
            min_seconds = float(arg.split("=", 1)[1])
        elif arg == "--out":
            i += 1
            out_path = argv[i]
        elif arg.startswith("--out="):
            out_path = arg.split("=", 1)[1]
        elif arg.startswith("--"):
            fail(f"unknown option {arg}")
        else:
            paths.append(arg)
        i += 1
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    base_doc, cand_doc = load(paths[0]), load(paths[1])
    base, cand = {}, {}
    flatten(base_doc, "", base)
    flatten(cand_doc, "", cand)

    shared = [k for k in base if k in cand and metric_kind(k) is not None]
    if not shared:
        fail(f"no shared performance metrics between {paths[0]} and "
             f"{paths[1]} -- are these snapshots of the same bench?")

    rows = []       # (signed badness, key, base, cand, change, gated, kind)
    regressions = []
    for key in shared:
        kind = metric_kind(key)
        b, c = base[key], cand[key]
        if b <= 0:
            continue  # nothing to express a relative change against
        # Positive change = worse, in both directions.
        change = (c - b) / b if kind == "time" else (b - c) / b
        gated = True
        if kind == "time" and min_seconds > 0:
            if to_seconds(key, b) < min_seconds and \
               to_seconds(key, c) < min_seconds:
                gated = False
        if kind == "rate" and min_seconds > 0:
            # A rate computed over a sub-noise-floor duration is noise too:
            # when the cell carries a sibling "seconds" metric and both
            # sides sit below the floor, report but never gate.
            sibling = key.rsplit(".", 1)[0] + ".seconds"
            if sibling in base and sibling in cand and \
               base[sibling] < min_seconds and cand[sibling] < min_seconds:
                gated = False
        rows.append((change, key, b, c, gated, kind))
        if gated and change > threshold:
            regressions.append(key)

    rows.sort(key=lambda r: -r[0])
    lines = []
    verdict = "REGRESSION" if regressions else "ok"
    lines.append(f"### Bench delta: {paths[0]} -> {paths[1]} ({verdict})")
    lines.append("")
    lines.append(f"threshold {threshold * 100:.0f}%, "
                 f"{len(rows)} metrics compared, "
                 f"{len(regressions)} regression(s)")
    lines.append("")
    lines.append("| metric | baseline | candidate | change | |")
    lines.append("|---|---:|---:|---:|---|")
    for change, key, b, c, gated, kind in rows:
        arrow = "worse" if change > 0 else ("better" if change < 0 else "=")
        flag = ""
        if not gated:
            flag = "below noise floor"
        elif change > threshold:
            flag = "**REGRESSION**"
        lines.append(f"| `{key}` | {b:g} | {c:g} | "
                     f"{change * 100:+.1f}% {arrow} | {flag} |")
    report = "\n".join(lines) + "\n"

    if out_path:
        with open(out_path, "w") as f:
            f.write(report)
    print(report, end="")
    if regressions:
        print(f"compare_bench: FAIL: {len(regressions)} metric(s) regressed "
              f"beyond {threshold * 100:.0f}%:", file=sys.stderr)
        for key in regressions:
            print(f"  {key}", file=sys.stderr)
        return 1
    print("compare_bench: OK")
    return 0


if __name__ == "__main__":
    # Piping the report into head/less must not traceback on SIGPIPE.
    import contextlib
    import signal
    with contextlib.suppress(AttributeError, ValueError):
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    sys.exit(main(sys.argv))
