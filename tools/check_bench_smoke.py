#!/usr/bin/env python3
"""Validates the bench-smoke JSON snapshots (CI gate).

Usage: check_bench_smoke.py <table2_mcb.json> <mcb_gf2.json>
                            [<sssp_kernels.json>] [<oracle_query.json>]
                            [<oracle_serve.json>] [<scaling.json>]
                            [--tolerance X]

Two layers of checking:

1. Schema: both files must carry the provenance header
   (schema_version/git_sha) and every record must have the full key set
   with positive timings — a bench refactor that silently drops a field
   fails here, not in a downstream plotting script.

2. Performance tripwire: on the chain-rich smoke datasets the
   heterogeneous MCB must not fall behind sequential by more than the
   jitter tolerance. Only enforced when the runner exposes >= 4 hardware
   threads — below that the heterogeneous driver legitimately degrades to
   the sequential schedule (see hetero::host_has_parallelism), so the
   comparison measures nothing; we warn instead.
"""

import json
import sys

TABLE2_MODE_KEYS = ("sequential", "multicore", "device", "heterogeneous")
TABLE2_TIMING_KEYS = ("with_ears_s", "without_ears_s")
GF2_CELL_KEYS = (
    "witnesses", "density", "impl", "device_threshold", "seconds",
    "dots", "sparse_dots", "words_xored", "range_skips", "promotions",
    "device_rows",
)
CHAIN_RICH = ("as-22july06", "c-50")


def fail(msg):
    print(f"check_bench_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


PMU_STATUSES = ("unsupported-platform", "no-counters", "permission-denied",
                "disabled", "hardware", "software-only")
PMU_COUNTER_KEYS = ("cycles", "instructions", "cache_references",
                    "cache_misses", "branch_misses", "task_clock_ns")


def check_pmu_block(doc, path):
    """Sanity-checks the schema-v2 "pmu" provenance block: a coherent
    availability flag/status pair, non-negative counters, and a positive
    IPC whenever cycles were actually measured."""
    pmu = doc.get("pmu")
    require(isinstance(pmu, dict), f"{path}: pmu block missing (schema v2)")
    require(pmu.get("available") in (0, 1),
            f"{path}: pmu.available must be 0 or 1")
    require(pmu.get("status") in PMU_STATUSES,
            f"{path}: pmu.status unknown: {pmu.get('status')}")
    available = pmu["available"] == 1
    require(available == (pmu["status"] in ("hardware", "software-only")),
            f"{path}: pmu.available={pmu['available']} contradicts "
            f"pmu.status={pmu['status']}")
    for key in PMU_COUNTER_KEYS:
        v = pmu.get(key)
        require(isinstance(v, int) and v >= 0,
                f"{path}: pmu.{key} missing or negative")
        require(available or v == 0,
                f"{path}: pmu.{key} nonzero while pmu unavailable")
    for key in ("ipc", "cache_miss_rate"):
        v = pmu.get(key)
        require(isinstance(v, (int, float)) and v >= 0,
                f"{path}: pmu.{key} missing or negative")
    if pmu["cycles"] > 0 and pmu["instructions"] > 0:
        require(pmu["ipc"] > 0, f"{path}: cycles and instructions measured "
                "but pmu.ipc == 0")


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    require(doc.get("schema_version") in (1, 2),
            f"{path}: schema_version missing or not in (1, 2)")
    require(isinstance(doc.get("git_sha"), str) and doc["git_sha"],
            f"{path}: git_sha missing")
    require("smoke" in doc, f"{path}: smoke flag missing")
    if doc["schema_version"] >= 2:
        check_pmu_block(doc, path)
    return doc


def check_table2(path):
    doc = load(path)
    require(isinstance(doc.get("hardware_concurrency"), int),
            f"{path}: hardware_concurrency missing")
    datasets = doc.get("datasets")
    require(isinstance(datasets, dict) and datasets,
            f"{path}: datasets missing or empty")
    for name, d in datasets.items():
        for key in ("n", "m"):
            require(isinstance(d.get(key), int) and d[key] > 0,
                    f"{path}: {name}.{key} missing or non-positive")
        modes = d.get("modes")
        require(isinstance(modes, dict), f"{path}: {name}.modes missing")
        for mode in TABLE2_MODE_KEYS:
            require(mode in modes, f"{path}: {name}.modes.{mode} missing")
            for timing in TABLE2_TIMING_KEYS:
                v = modes[mode].get(timing)
                require(isinstance(v, (int, float)) and v > 0,
                        f"{path}: {name}.{mode}.{timing} missing or <= 0")
    return doc


def check_gf2(path):
    doc = load(path)
    cells = doc.get("cells")
    require(isinstance(cells, list) and cells,
            f"{path}: cells missing or empty")
    for i, cell in enumerate(cells):
        for key in GF2_CELL_KEYS:
            require(key in cell, f"{path}: cells[{i}].{key} missing")
        require(cell["seconds"] > 0, f"{path}: cells[{i}].seconds <= 0")
        require(cell["impl"] in ("naive", "matrix_cpu", "matrix_device"),
                f"{path}: cells[{i}].impl unknown: {cell['impl']}")


SSSP_CELL_KEYS = ("graph", "n", "m", "kernel", "k", "seconds",
                  "sources_per_s", "rounds")
SSSP_KERNELS = ("dijkstra", "delta", "multi_source")


def check_sssp_kernels(path):
    """Shape check for the phase-II kernel ablation: every cell carries the
    full axis set, the kernel axis covers all three kernels, and the
    multi-source batch-width axis has at least two widths (the selector's
    k >= 4 claim is meaningless from a single-point sweep)."""
    doc = load(path)
    cells = doc.get("cells")
    require(isinstance(cells, list) and cells,
            f"{path}: cells missing or empty")
    kernels_seen = set()
    widths = set()
    for i, cell in enumerate(cells):
        for key in SSSP_CELL_KEYS:
            require(key in cell, f"{path}: cells[{i}].{key} missing")
        require(cell["kernel"] in SSSP_KERNELS,
                f"{path}: cells[{i}].kernel unknown: {cell['kernel']}")
        require(isinstance(cell["seconds"], (int, float))
                and cell["seconds"] > 0,
                f"{path}: cells[{i}].seconds missing or <= 0")
        require(isinstance(cell["k"], int) and cell["k"] >= 1,
                f"{path}: cells[{i}].k missing or < 1")
        require(cell["n"] > 0 and cell["m"] > 0,
                f"{path}: cells[{i}] n/m non-positive")
        kernels_seen.add(cell["kernel"])
        if cell["kernel"] == "multi_source":
            widths.add(cell["k"])
    for kernel in SSSP_KERNELS:
        require(kernel in kernels_seen, f"{path}: no {kernel} cells")
    require(len(widths) >= 2,
            f"{path}: multi_source k axis needs >= 2 widths, got {widths}")


ORACLE_CELL_KEYS = ("method", "mix", "queries", "seconds", "qps", "mean_ns",
                    "p50_ns", "p90_ns", "p99_ns")
ORACLE_METHODS = ("compact", "full_table", "dijkstra")
ORACLE_MIXES = ("same_block", "cross_block", "uniform")


def check_quantiles(cell, path, i):
    require(cell["p50_ns"] <= cell["p90_ns"] <= cell["p99_ns"],
            f"{path}: cells[{i}] quantiles not monotone: "
            f"p50={cell['p50_ns']} p90={cell['p90_ns']} "
            f"p99={cell['p99_ns']}")


def check_oracle_query(path):
    """Shape check for the query-latency snapshot: the full method x mix
    grid present (stratified same-block / cross-block / uniform pairs),
    positive throughput, and internally consistent quantiles
    (p50 <= p90 <= p99 — a broken quantile estimator fails here)."""
    doc = load(path)
    cells = doc.get("cells")
    require(isinstance(cells, list) and cells,
            f"{path}: cells missing or empty")
    grid_seen = set()
    for i, cell in enumerate(cells):
        for key in ORACLE_CELL_KEYS:
            require(key in cell, f"{path}: cells[{i}].{key} missing")
        require(cell["method"] in ORACLE_METHODS,
                f"{path}: cells[{i}].method unknown: {cell['method']}")
        require(cell["mix"] in ORACLE_MIXES,
                f"{path}: cells[{i}].mix unknown: {cell['mix']}")
        require(cell["seconds"] > 0, f"{path}: cells[{i}].seconds <= 0")
        require(cell["qps"] > 0, f"{path}: cells[{i}].qps <= 0")
        require(cell["queries"] > 0, f"{path}: cells[{i}].queries <= 0")
        check_quantiles(cell, path, i)
        require(cell["mean_ns"] > 0, f"{path}: cells[{i}].mean_ns <= 0")
        grid_seen.add((cell["method"], cell["mix"]))
    for method in ORACLE_METHODS:
        for mix in ORACLE_MIXES:
            require((method, mix) in grid_seen,
                    f"{path}: no ({method}, {mix}) cell")


SERVE_CELL_KEYS = ("mix", "path", "queries", "batch", "target_qps",
                   "seconds", "qps", "mean_ns", "p50_ns", "p90_ns",
                   "p99_ns", "open_mean_ns", "open_p50_ns", "open_p90_ns",
                   "open_p99_ns", "sampled", "mismatches", "attr")
SERVE_PATHS = ("scalar", "batch")
ATTR_COMPONENTS = ("queue_wait", "schedule", "kernel", "recompose", "write")
ATTR_STAT_KEYS = ("mean_ns", "p50_ns", "p90_ns", "p99_ns")
ATTR_SUM_TOLERANCE = 0.10


def check_attr_block(cell, path, i):
    """The latency-attribution contract: every component histogram present
    with internally monotone quantiles, and the component means chaining
    gaplessly — their sum must reproduce the open-loop mean within 10% on
    every cell (arrival -> entry -> schedule -> kernel -> recompose ->
    write is a partition of the open-loop interval, not a sampling of
    it)."""
    attr = cell["attr"]
    require(isinstance(attr, dict), f"{path}: cells[{i}].attr not a dict")
    component_sum = 0.0
    for comp in ATTR_COMPONENTS:
        stats = attr.get(comp)
        require(isinstance(stats, dict),
                f"{path}: cells[{i}].attr.{comp} missing")
        for key in ATTR_STAT_KEYS:
            v = stats.get(key)
            require(isinstance(v, (int, float)) and v >= 0,
                    f"{path}: cells[{i}].attr.{comp}.{key} missing or "
                    "negative")
        require(stats["p50_ns"] <= stats["p90_ns"] <= stats["p99_ns"],
                f"{path}: cells[{i}].attr.{comp} quantiles not monotone: "
                f"p50={stats['p50_ns']} p90={stats['p90_ns']} "
                f"p99={stats['p99_ns']}")
        component_sum += stats["mean_ns"]
    open_mean = cell["open_mean_ns"]
    require(open_mean > 0, f"{path}: cells[{i}].open_mean_ns <= 0")
    require(abs(component_sum - open_mean) <= ATTR_SUM_TOLERANCE * open_mean,
            f"{path}: cells[{i}] attribution components sum to "
            f"{component_sum:.0f}ns but open-loop mean is {open_mean:.0f}ns "
            f"(> {100 * ATTR_SUM_TOLERANCE:.0f}% apart) — the chain has a "
            "gap or an overlap")


def check_oracle_serve(path):
    """Shape + correctness gate for the sustained-load serving snapshot:
    the full mix x path grid, monotone service and open-loop quantiles,
    a nonzero verification sample in every cell, and zero mismatches vs
    Dijkstra anywhere (the load harness asserts this too — here it is
    re-checked from the snapshot so a stale or hand-edited file fails)."""
    doc = load(path)
    cells = doc.get("cells")
    require(isinstance(cells, list) and cells,
            f"{path}: cells missing or empty")
    grid_seen = set()
    for i, cell in enumerate(cells):
        for key in SERVE_CELL_KEYS:
            require(key in cell, f"{path}: cells[{i}].{key} missing")
        require(cell["mix"] in ORACLE_MIXES,
                f"{path}: cells[{i}].mix unknown: {cell['mix']}")
        require(cell["path"] in SERVE_PATHS,
                f"{path}: cells[{i}].path unknown: {cell['path']}")
        require(cell["seconds"] > 0, f"{path}: cells[{i}].seconds <= 0")
        require(cell["qps"] > 0, f"{path}: cells[{i}].qps <= 0")
        require(cell["queries"] > 0, f"{path}: cells[{i}].queries <= 0")
        require(cell["target_qps"] > 0,
                f"{path}: cells[{i}].target_qps <= 0")
        check_quantiles(cell, path, i)
        require(cell["open_p50_ns"] <= cell["open_p90_ns"]
                <= cell["open_p99_ns"],
                f"{path}: cells[{i}] open-loop quantiles not monotone")
        require(cell["sampled"] > 0,
                f"{path}: cells[{i}].sampled == 0 (no verification ran)")
        require(cell["mismatches"] == 0,
                f"{path}: cells[{i}] served {cell['mismatches']} answers "
                "that differ from Dijkstra")
        check_attr_block(cell, path, i)
        grid_seen.add((cell["mix"], cell["path"]))
    for mix in ORACLE_MIXES:
        for p in SERVE_PATHS:
            require((mix, p) in grid_seen, f"{path}: no ({mix}, {p}) cell")


SCALING_PHASE_KEYS = ("generate", "build_csr", "write_edg2", "load_mmap",
                      "phase0_bcc", "phase1_chains", "phase1_ears")
SCALING_RSS_KEYS = ("before_load_mb", "load_delta_mb", "peak_mb",
                    "model_mb", "model_csr_mb")
SCALING_RSS_FACTOR = 1.25


def check_scaling(path):
    """Shape + envelope gate for the ingestion-scaling snapshot: every size
    carries the full seven-phase pipeline with positive throughput, sizes
    are strictly ascending (the VmHWM methodology depends on it), peak RSS
    sits inside the linear phase01 memory-model bound x 1.25, and the
    load-phase RSS delta stays below the CSR payload size — the zero-copy
    claim, re-checked from the snapshot."""
    doc = load(path)
    sizes = doc.get("sizes")
    require(isinstance(sizes, list) and sizes,
            f"{path}: sizes missing or empty")
    prev_n = 0
    for i, s in enumerate(sizes):
        for key in ("n", "m"):
            require(isinstance(s.get(key), int) and s[key] > 0,
                    f"{path}: sizes[{i}].{key} missing or non-positive")
        require(s["n"] > prev_n,
                f"{path}: sizes[{i}].n={s['n']} not ascending "
                "(peak-RSS methodology requires ascending sizes)")
        prev_n = s["n"]
        phases = s.get("phases")
        require(isinstance(phases, dict), f"{path}: sizes[{i}].phases missing")
        for key in SCALING_PHASE_KEYS:
            p = phases.get(key)
            require(isinstance(p, dict), f"{path}: sizes[{i}].phases.{key} "
                    "missing")
            require(isinstance(p.get("seconds"), (int, float))
                    and p["seconds"] > 0,
                    f"{path}: sizes[{i}].{key}.seconds missing or <= 0")
            require(isinstance(p.get("nodes_per_s"), (int, float))
                    and p["nodes_per_s"] > 0,
                    f"{path}: sizes[{i}].{key}.nodes_per_s missing or <= 0")
        rss = s.get("rss")
        require(isinstance(rss, dict), f"{path}: sizes[{i}].rss missing")
        for key in SCALING_RSS_KEYS:
            require(isinstance(rss.get(key), (int, float)),
                    f"{path}: sizes[{i}].rss.{key} missing")
        if rss["peak_mb"] < 0:
            print(f"check_bench_smoke: WARN: {path}: sizes[{i}] has no "
                  "peak-RSS reading (non-Linux runner?); envelope skipped")
            continue
        bound = rss["model_mb"] * SCALING_RSS_FACTOR
        require(rss["peak_mb"] <= bound,
                f"{path}: sizes[{i}] peak RSS {rss['peak_mb']:.1f} MB "
                f"exceeds model bound {rss['model_mb']:.1f} MB x "
                f"{SCALING_RSS_FACTOR} = {bound:.1f} MB")
        require(rss["load_delta_mb"] <= rss["model_csr_mb"],
                f"{path}: sizes[{i}] load RSS delta "
                f"{rss['load_delta_mb']:.1f} MB reaches the CSR payload "
                f"size {rss['model_csr_mb']:.1f} MB — mmap load is no "
                "longer zero-copy")


def check_hetero_not_slower(doc, path, tolerance):
    hw = doc["hardware_concurrency"]
    if hw < 4:
        print(f"check_bench_smoke: WARN: only {hw} hardware thread(s); "
              "the heterogeneous driver degrades to sequential there, so "
              "the hetero-vs-sequential gate is skipped")
        return
    for name in CHAIN_RICH:
        if name not in doc["datasets"]:
            continue
        modes = doc["datasets"][name]["modes"]
        seq = modes["sequential"]["with_ears_s"]
        het = modes["heterogeneous"]["with_ears_s"]
        require(het <= seq * tolerance,
                f"{path}: heterogeneous MCB on {name} ({het:.6f}s) is more "
                f"than {tolerance:.2f}x slower than sequential ({seq:.6f}s)")
        print(f"check_bench_smoke: {name}: hetero {het:.6f}s vs "
              f"sequential {seq:.6f}s (ratio {het / seq:.2f})")


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    tolerance = 1.2
    for a in argv[1:]:
        if a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])
    if len(args) not in (2, 3, 4, 5, 6):
        print(__doc__, file=sys.stderr)
        return 2
    table2 = check_table2(args[0])
    check_gf2(args[1])
    if len(args) >= 3:
        check_sssp_kernels(args[2])
    if len(args) >= 4:
        check_oracle_query(args[3])
    if len(args) >= 5:
        check_oracle_serve(args[4])
    if len(args) >= 6:
        check_scaling(args[5])
    check_hetero_not_slower(table2, args[0], tolerance)
    print("check_bench_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
