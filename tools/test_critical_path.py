#!/usr/bin/env python3
"""Unit tests for critical_path.py: tree stitching from qid/span/parent
args, critical-path attribution (descend into the latest-finishing child,
charge self time along the way), incomplete-tree skipping, and the
--serve-json cross-validation gate. Run directly or via ctest
(critical_path_test)."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "critical_path.py")


def linked(name, ts, dur, qid, span, parent, tid=1):
    return {"ph": "X", "name": name, "ts": ts, "dur": dur, "pid": 1,
            "tid": tid, "args": {"qid": qid, "span": span, "parent": parent}}


def batch_tree(qid, ts=0, dur=1000):
    """One stitched oracle.batch query: root with classify/drain/recompose
    phases and two leg units on another lane, drain finishing last."""
    return [
        linked("oracle.batch", ts, dur, qid, 1, 0),
        linked("oracle.classify", ts + 10, 100, qid, 2, 1),
        linked("oracle.drain", ts + 120, 700, qid, 3, 1),
        linked("oracle.recompose", ts + 830, 100, qid, 4, 1),
        linked("oracle.leg_unit", ts + 150, 300, qid, 5, 1, tid=2),
        linked("oracle.leg_unit", ts + 460, 200, qid, 6, 1, tid=2),
    ]


def run(events, *args):
    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "trace.json")
        with open(path, "w") as f:
            json.dump({"traceEvents": events}, f)
        extra = []
        for a in args:
            if isinstance(a, dict):
                spath = os.path.join(d, "serve.json")
                with open(spath, "w") as f:
                    json.dump(a, f)
                extra += ["--serve-json", spath]
            else:
                extra.append(a)
        return subprocess.run([sys.executable, SCRIPT, path, *extra],
                              capture_output=True, text=True)


class CriticalPathTest(unittest.TestCase):
    def test_attribution(self):
        r = run(batch_tree(qid=7))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("1 complete trees", r.stdout)
        self.assertIn("[oracle.batch]", r.stdout)
        # The path root -> recompose (latest-finishing child, ends at 930):
        # recompose is a leaf so it is charged in full (100us), the root
        # keeps dur - child dur = 900us.
        self.assertIn("oracle.recompose", r.stdout)
        self.assertIn("900.0us", r.stdout)
        self.assertIn("100.0us", r.stdout)

    def test_multiple_queries_grouped_by_kind(self):
        events = batch_tree(qid=1) + batch_tree(qid=2, ts=5000)
        events.append(linked("oracle.scalar", 9000, 50, 3, 1, 0))
        r = run(events)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("3 complete trees", r.stdout)
        self.assertIn("[oracle.batch] 2 trees", r.stdout)
        self.assertIn("[oracle.scalar] 1 trees", r.stdout)

    def test_dangling_parent_skipped(self):
        # qid 9's root was overwritten by a ring wrap: its children point
        # at a span id that is not in the trace. Must be skipped, and with
        # no complete trees left the tool fails.
        events = [linked("oracle.classify", 10, 100, 9, 2, 1)]
        r = run(events)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("1 incomplete", r.stdout)

    def test_no_linked_events(self):
        r = run([{"ph": "X", "name": "plain", "ts": 0, "dur": 5,
                  "pid": 1, "tid": 1}])
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("no span-linked", r.stdout)

    def test_serve_json_validation_passes(self):
        serve = {"cells": [
            {"path": "batch", "mix": "uniform", "mean_ns": 1_000_000.0}]}
        r = run(batch_tree(qid=1), serve)  # root dur 1000us = 1e6 ns
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("ratio 1.00", r.stdout)
        self.assertIn("OK", r.stdout)

    def test_serve_json_batch_amortized_by_queries_arg(self):
        # The snapshot's mean_ns is per query while a batch root span covers
        # the whole batch; the root's args.queries amortizes it.
        events = batch_tree(qid=1)
        events[0]["args"]["queries"] = 10
        serve = {"cells": [
            {"path": "batch", "mix": "uniform", "mean_ns": 100_000.0}]}
        r = run(events, serve)  # 1000us root / 10 queries = 1e5 ns each
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("(10 queries)", r.stdout)
        self.assertIn("ratio 1.00", r.stdout)

    def test_serve_json_validation_fails_on_mismatch(self):
        serve = {"cells": [
            {"path": "batch", "mix": "uniform", "mean_ns": 10_000_000.0}]}
        r = run(batch_tree(qid=1), serve)  # ratio 0.1, outside [0.5, 2.0]
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("OUT OF RANGE", r.stdout)

    def test_min_queries_gate(self):
        r = run(batch_tree(qid=1), "--min-queries=2")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("fewer than", r.stdout)


if __name__ == "__main__":
    unittest.main()
