// Network analysis with the extension layer: distance analytics
// (diameter, radius, centers, closeness) from the ear-decomposition
// oracle, betweenness centrality from the Brandes kernel, and explicit
// route extraction — the downstream workflow for a transit or
// infrastructure network.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/analytics.hpp"
#include "core/path.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "sssp/brandes.hpp"

int main() {
  using namespace eardec;

  // A regional transit network: planar backbone, station chains on lines.
  graph::Graph net = graph::generators::subdivide(
      graph::generators::random_planar(9, 11, 0.5, 0.2, 17), 120, 18);
  std::printf("network: %s\n",
              graph::to_string(graph::compute_stats(net)).c_str());

  const core::DistanceOracle oracle(
      net, {.mode = core::ExecutionMode::Multicore, .cpu_threads = 3});
  const core::DistanceAnalytics a = core::compute_analytics(oracle);
  std::printf("diameter %.1f, radius %.1f, %zu center(s), first center: %u\n",
              a.diameter, a.radius, a.centers.size(),
              a.centers.empty() ? 0 : a.centers.front());

  // Most-central stations by closeness and by betweenness.
  hetero::ThreadPool pool(3);
  const std::vector<double> bc = sssp::betweenness_centrality(net, &pool);
  const auto top_of = [&](const std::vector<double>& score) {
    graph::VertexId best = 0;
    for (graph::VertexId v = 1; v < net.num_vertices(); ++v) {
      if (score[v] > score[best]) best = v;
    }
    return best;
  };
  const graph::VertexId hub_c = top_of(a.closeness);
  const graph::VertexId hub_b = top_of(bc);
  std::printf("closeness hub: %u (%.4f); betweenness hub: %u (%.0f)\n", hub_c,
              a.closeness[hub_c], hub_b, bc[hub_b]);

  // An end-to-end route across the diameter.
  graph::VertexId far_a = 0, far_b = 0;
  for (graph::VertexId v = 0; v < net.num_vertices(); ++v) {
    if (a.eccentricity[v] == a.diameter) {
      far_a = v;
      break;
    }
  }
  for (graph::VertexId v = 0; v < net.num_vertices(); ++v) {
    if (oracle.distance(far_a, v) == a.diameter) {
      far_b = v;
      break;
    }
  }
  const core::Path route = core::reconstruct_path(oracle, far_a, far_b);
  std::printf("diameter route %u -> %u: weight %.1f over %zu hops (through "
              "the betweenness hub: %s)\n",
              far_a, far_b, route.weight, route.edges.size(),
              std::find(route.vertices.begin(), route.vertices.end(), hub_b) !=
                      route.vertices.end()
                  ? "yes"
                  : "no");
  return 0;
}
