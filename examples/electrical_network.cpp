// Mesh/loop analysis of an electrical network (de Pina's original
// motivation [11]): the independent Kirchhoff voltage loops of a circuit
// are exactly a cycle basis of its graph, and picking the minimum-weight
// basis (weights = component counts along each wire) minimizes the loop
// equations' total size. Degree-two nodes — series components — abound in
// real circuits, which is why the ear contraction pays off.
#include <cstdio>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "mcb/ear_mcb.hpp"

int main() {
  using namespace eardec;

  // A ladder-style power distribution mesh: two rails with rungs, then
  // every wire subdivided by series components (degree-two nodes).
  constexpr graph::VertexId kRungs = 12;
  graph::Builder b(2 * kRungs);
  for (graph::VertexId i = 0; i < kRungs; ++i) {
    if (i + 1 < kRungs) {
      b.add_edge(i, i + 1, 1.0);                    // top rail
      b.add_edge(kRungs + i, kRungs + i + 1, 1.0);  // bottom rail
    }
    b.add_edge(i, kRungs + i, 2.0);  // rung
  }
  graph::Graph mesh = std::move(b).build();
  // Series components: each subdivision models one resistor on a wire.
  mesh = graph::generators::subdivide(mesh, 80, /*seed=*/5);

  std::printf("circuit: %s\n",
              graph::to_string(graph::compute_stats(mesh)).c_str());

  const mcb::McbResult loops = mcb::minimum_cycle_basis(
      mesh, {.mode = core::ExecutionMode::Multicore, .cpu_threads = 3});
  std::printf("independent Kirchhoff loops: %zu (dimension m - n + 1 = %u)\n",
              loops.basis.size(),
              mesh.num_edges() - mesh.num_vertices() + 1);
  std::printf("total loop size: %.0f components; largest loop: ",
              loops.total_weight);
  std::size_t largest = 0;
  for (const auto& c : loops.basis) largest = std::max(largest, c.edges.size());
  std::printf("%zu wires\n", largest);

  std::printf("solver profile: labels %.1f%%, search %.1f%%, update %.1f%% "
              "of %.3fs\n",
              100.0 * loops.stats.labels_seconds / loops.stats.total_seconds(),
              100.0 * loops.stats.search_seconds / loops.stats.total_seconds(),
              100.0 * loops.stats.update_seconds / loops.stats.total_seconds(),
              loops.stats.total_seconds());
  std::printf("basis valid: %s\n",
              mcb::validate_basis(mesh, loops) ? "yes" : "NO");
  return 0;
}
