// Ring perception in chemistry: the minimum cycle basis of a molecular
// graph is the standard "smallest set of smallest rings" used to describe
// ring systems (Gleiss [14] in the paper). This example encodes two fused
// ring systems — a steroid-like skeleton and a caffeine-like bicycle —
// and extracts their rings with the ear-decomposition MCB.
#include <cstdio>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "mcb/ear_mcb.hpp"

namespace {

using eardec::graph::Builder;
using eardec::graph::Graph;

/// Steroid (gonane) skeleton: four fused rings (three 6-rings + one
/// 5-ring) over 17 carbons. Bonds carry unit weight.
Graph steroid() {
  Builder b(17);
  const auto ring = [&b](std::initializer_list<eardec::graph::VertexId> vs) {
    auto it = vs.begin();
    auto prev = *it++;
    for (; it != vs.end(); ++it) {
      b.add_edge(prev, *it, 1.0);
      prev = *it;
    }
  };
  // Ring A: 0-1-2-3-4-5-0; fused with B at 4-5, etc. (standard numbering).
  ring({0, 1, 2, 3, 4, 5});
  b.add_edge(5, 0, 1.0);
  ring({4, 6, 7, 8, 9});       // ring B shares edge 4-5 via 5-9
  b.add_edge(9, 5, 1.0);
  ring({8, 10, 11, 12, 13});   // ring C shares edge 8-9 via 13-9
  b.add_edge(13, 9, 1.0);
  ring({12, 14, 15, 16});      // ring D (cyclopentane) shares 12-13
  b.add_edge(16, 13, 1.0);
  return std::move(b).build();
}

/// Caffeine core (purine): fused 6-ring + 5-ring sharing one bond.
Graph purine() {
  Builder b(9);
  for (eardec::graph::VertexId i = 0; i < 6; ++i) {
    b.add_edge(i, (i + 1) % 6, 1.0);  // pyrimidine ring
  }
  b.add_edge(4, 6, 1.0);  // imidazole ring fused on bond 4-5
  b.add_edge(6, 7, 1.0);
  b.add_edge(7, 8, 1.0);
  b.add_edge(8, 5, 1.0);
  return std::move(b).build();
}

void report(const std::string& name, const Graph& g) {
  const auto mcb = eardec::mcb::minimum_cycle_basis(
      g, {.mode = eardec::core::ExecutionMode::Sequential});
  std::printf("%s: %u atoms, %u bonds -> %zu rings (total ring size %.0f)\n",
              name.c_str(), g.num_vertices(), g.num_edges(),
              mcb.basis.size(), mcb.total_weight);
  for (std::size_t i = 0; i < mcb.basis.size(); ++i) {
    std::printf("  ring %zu: %zu-membered\n", i, mcb.basis[i].edges.size());
  }
  if (!eardec::mcb::validate_basis(g, mcb)) {
    std::printf("  (validation FAILED)\n");
  }
}

}  // namespace

int main() {
  report("gonane (steroid skeleton)", steroid());
  report("purine (caffeine core)", purine());
  return 0;
}
