// Road-network routing: planar graphs are full of degree-two vertices
// (road polylines between junctions), exactly the structure ear
// decomposition contracts. This example builds a synthetic road network
// (planar grid backbone + subdivided "roads"), preprocesses a distance
// oracle, answers routing queries, and reports how much smaller the
// reduced problem was.
//
// Usage: road_network [rows cols subdivisions]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/distance_oracle.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "sssp/dijkstra.hpp"

int main(int argc, char** argv) {
  using namespace eardec;
  using Clock = std::chrono::steady_clock;

  const auto rows = static_cast<graph::VertexId>(argc > 1 ? std::atoi(argv[1]) : 14);
  const auto cols = static_cast<graph::VertexId>(argc > 2 ? std::atoi(argv[2]) : 16);
  const auto extra = static_cast<graph::VertexId>(argc > 3 ? std::atoi(argv[3]) : 400);

  // Junction backbone: a planar grid with diagonals and some dropped roads;
  // then every road gains intermediate waypoints (degree-two vertices).
  graph::Graph backbone =
      graph::generators::random_planar(rows, cols, 0.5, 0.15, /*seed=*/7);
  const graph::Graph roads = graph::generators::subdivide(backbone, extra, 8);

  const graph::GraphStats stats = graph::compute_stats(roads);
  std::printf("road network: %s\n", graph::to_string(stats).c_str());

  const auto t0 = Clock::now();
  const core::DistanceOracle oracle(
      roads,
      {.mode = core::ExecutionMode::Multicore, .cpu_threads = 4});
  const double build_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  const auto& eng = oracle.engine();
  std::printf("preprocessing: %.3fs; reduced SSSP runs %llu / %u vertices "
              "(%.1f%% of the work removed by ear contraction)\n",
              build_s, static_cast<unsigned long long>(eng.sssp_runs()),
              roads.num_vertices(),
              100.0 * (1.0 - static_cast<double>(eng.sssp_runs()) /
                                 roads.num_vertices()));
  std::printf("oracle memory: %.2f MB (paper layout %.2f MB, dense n^2 "
              "table %.2f MB)\n",
              oracle.memory().compact_mb(), oracle.memory().ours_mb(),
              oracle.memory().full_mb());

  // Routing queries, spot-validated against on-line Dijkstra.
  const graph::VertexId n = roads.num_vertices();
  for (const auto& [s, t] : {std::pair<graph::VertexId, graph::VertexId>{0, n - 1},
                            {n / 3, 2 * n / 3},
                            {1, n / 2}}) {
    const graph::Weight fast = oracle.distance(s, t);
    const graph::Weight ref = sssp::dijkstra(roads, s).dist[t];
    std::printf("route %u -> %u: %.1f (check: %.1f)\n", s, t, fast, ref);
  }
  return 0;
}
