// Quickstart: the two flagship APIs in ~60 lines.
//
//   1. core::DistanceOracle — exact all-pairs shortest-path queries after
//      an ear-decomposition preprocessing pass.
//   2. mcb::minimum_cycle_basis — minimum-weight cycle basis through the
//      same reduction.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/distance_oracle.hpp"
#include "graph/builder.hpp"
#include "mcb/ear_mcb.hpp"

int main() {
  using namespace eardec;

  // A small weighted graph: two cycles sharing an articulation point (3),
  // with degree-two chain vertices (1, 2 and 5) the library contracts away.
  //
  //   0 --1-- 1 --1-- 2 --1-- 3 --2-- 4 --2-- 5 --2-- 3,  0 --5-- 3
  graph::Builder b(6);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(2, 3, 1.0);
  b.add_edge(0, 3, 5.0);
  b.add_edge(3, 4, 2.0);
  b.add_edge(4, 5, 2.0);
  b.add_edge(5, 3, 2.0);
  const graph::Graph g = std::move(b).build();

  // --- All-pairs shortest paths ------------------------------------------
  const core::DistanceOracle oracle(
      g, {.mode = core::ExecutionMode::Sequential});
  std::printf("distance(0, 4) = %.1f  (0-1-2-3-4)\n", oracle.distance(0, 4));
  std::printf("distance(1, 5) = %.1f\n", oracle.distance(1, 5));

  const auto& eng = oracle.engine();
  std::printf("biconnected components: %u, SSSP runs after reduction: %llu "
              "(of %u vertices)\n",
              eng.num_components(),
              static_cast<unsigned long long>(eng.sssp_runs()),
              g.num_vertices());

  // --- Minimum cycle basis ------------------------------------------------
  const mcb::McbResult basis = mcb::minimum_cycle_basis(
      g, {.mode = core::ExecutionMode::Sequential});
  std::printf("cycle basis: %zu cycles, total weight %.1f\n",
              basis.basis.size(), basis.total_weight);
  for (std::size_t i = 0; i < basis.basis.size(); ++i) {
    std::printf("  cycle %zu: %zu edges, weight %.1f\n", i,
                basis.basis[i].edges.size(), basis.basis[i].weight);
  }
  return 0;
}
