// Social/collaboration networks: many biconnected communities glued at
// articulation members, a pendant fringe, and long chains — the structure
// of the paper's ca-AstroPh / cond-mat datasets. This example runs the
// full heterogeneous APSP pipeline, prints the decomposition profile and
// the memory the block layout saves over a dense n x n table, and compares
// against the Banerjee-style baseline.
#include <chrono>
#include <cstdio>

#include "baselines/banerjee_apsp.hpp"
#include "core/distance_oracle.hpp"
#include "graph/datasets.hpp"
#include "graph/stats.hpp"
#include "sssp/dijkstra.hpp"

int main() {
  using namespace eardec;
  using Clock = std::chrono::steady_clock;

  const graph::Graph g = graph::datasets::by_name("cond_mat_2003").make();
  std::printf("collaboration network: %s\n",
              graph::to_string(graph::compute_stats(g)).c_str());

  const core::ApspOptions opts{.mode = core::ExecutionMode::Heterogeneous,
                               .cpu_threads = 3,
                               .device = {.workers = 2}};

  auto t0 = Clock::now();
  const core::DistanceOracle ours(g, opts);
  const double ours_s = std::chrono::duration<double>(Clock::now() - t0).count();

  t0 = Clock::now();
  const baselines::BanerjeeApsp baseline(g, opts);
  const double base_s = std::chrono::duration<double>(Clock::now() - t0).count();

  const auto& eng = ours.engine();
  std::printf("decomposition: %u biconnected components, %zu articulation "
              "points\n",
              eng.num_components(), eng.bcc().num_articulation_points());
  std::printf("SSSP runs: ours %llu vs baseline %llu (ear contraction "
              "removed %.1f%% of the sources)\n",
              static_cast<unsigned long long>(eng.sssp_runs()),
              static_cast<unsigned long long>(baseline.sssp_runs()),
              100.0 * (1.0 - static_cast<double>(eng.sssp_runs()) /
                                 static_cast<double>(baseline.sssp_runs())));
  std::printf("preprocess: ours %.3fs, baseline %.3fs (%.2fx)\n", ours_s,
              base_s, base_s / ours_s);
  std::printf("memory: block tables %.2f MB, compact %.2f MB, dense %.2f MB\n",
              ours.memory().ours_mb(), ours.memory().compact_mb(),
              ours.memory().full_mb());
  std::printf("hetero split: %llu units on CPU, %llu on device\n",
              static_cast<unsigned long long>(eng.scheduler_stats().cpu_units),
              static_cast<unsigned long long>(
                  eng.scheduler_stats().device_units));

  // Cross-community queries (routing through articulation members),
  // validated against Dijkstra.
  const graph::VertexId n = g.num_vertices();
  for (const auto& [s, t] : {std::pair<graph::VertexId, graph::VertexId>{0, n - 1},
                            {n / 5, 4 * n / 5}}) {
    const auto ref = sssp::dijkstra(g, s);
    std::printf("separation(%u, %u) = %.1f (check %.1f, baseline %.1f)\n", s,
                t, ours.distance(s, t), ref.dist[t], baseline.distance(s, t));
  }
  return 0;
}
