#include "serve/http_routes.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/query_trace.hpp"
#include "obs/stats_server.hpp"
#include "obs/trace.hpp"
#include "serve/oracle_server.hpp"

namespace eardec::serve {

namespace {

/// The `write` attribution component for HTTP-served queries: reply
/// serialization time, from the server handing the answer back
/// (QueryTrace::server_end_ns) to the response body being ready. The other
/// four components are recorded inside OracleServer.
obs::Histogram& attr_write() {
  static obs::Histogram& h = obs::MetricsRegistry::instance().histogram(
      "oracle.serve.attr.write_ns");
  return h;
}

/// Records serialization as the write component (once per answered query)
/// and closes the request's span tree.
void finish_request(obs::QueryTrace& qt, std::uint64_t queries) {
  const std::uint64_t done_ns = obs::Tracer::now_ns();
  const std::uint64_t write_ns =
      qt.server_end_ns != 0 && qt.server_end_ns <= done_ns
          ? done_ns - qt.server_end_ns
          : 0;
  qt.attr_ns[std::size_t(obs::AttrComponent::kWrite)] = write_ns;
  attr_write().record_n(write_ns, queries);
  if (qt.server_end_ns != 0) {
    qt.emit(qt.allocate_span(), obs::current_parent_span(), "serve.write",
            qt.server_end_ns, write_ns);
  }
}

/// Parses one vertex id; rejects trailing junk and overflow.
std::optional<graph::VertexId> parse_vertex(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > 0xffffffffull) return std::nullopt;
  }
  return static_cast<graph::VertexId>(value);
}

/// Value of `key` in an application/x-www-form-urlencoded query string
/// (no %-decoding: vertex ids never need it).
std::optional<std::string_view> query_param(std::string_view query,
                                            std::string_view key) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair = query.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return std::nullopt;
}

void fail(obs::HttpResponse& response, const std::string& message) {
  response.status = 400;
  response.content_type = "application/json";
  response.body = "{\"error\": \"" + message + "\"}\n";
}

bool handle_single(OracleServer& server, const obs::HttpRequest& request,
                   obs::HttpResponse& response) {
  // Request context: arrival is request receipt, and every span below —
  // including the oracle's, across worker lanes — joins this query's tree.
  obs::QueryTrace qt(obs::Tracer::now_ns());
  const obs::QueryTraceScope qscope(&qt);
  const obs::QuerySpan request_span("serve.request");
  const auto s = query_param(request.query, "s");
  const auto t = query_param(request.query, "t");
  if (!s || !t) {
    fail(response, "missing s or t parameter");
    return true;
  }
  const auto sv = parse_vertex(*s);
  const auto tv = parse_vertex(*t);
  if (!sv || !tv) {
    fail(response, "s and t must be decimal vertex ids");
    return true;
  }
  const auto snap = server.snapshot();
  graph::Weight d = 0;
  try {
    d = server.query(*sv, *tv);
  } catch (const std::out_of_range&) {
    fail(response, "vertex id out of range");
    return true;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"epoch\": %llu, \"s\": %u, \"t\": %u, \"distance\": "
                "\"%s\"}\n",
                static_cast<unsigned long long>(snap->epoch()), *sv, *tv,
                format_distance(d).c_str());
  response.content_type = "application/json";
  response.body = buf;
  finish_request(qt, 1);
  return true;
}

bool handle_batch(OracleServer& server, const obs::HttpRequest& request,
                  obs::HttpResponse& response) {
  if (request.method != "POST") {
    fail(response, "POST a body of whitespace-separated s t pairs");
    return true;
  }
  obs::QueryTrace qt(obs::Tracer::now_ns());
  const obs::QueryTraceScope qscope(&qt);
  const obs::QuerySpan request_span("serve.request");
  std::vector<Query> queries;
  std::string_view body = request.body;
  const auto next_token = [&body]() -> std::optional<std::string_view> {
    while (!body.empty() &&
           (body.front() == ' ' || body.front() == '\t' ||
            body.front() == '\n' || body.front() == '\r')) {
      body.remove_prefix(1);
    }
    if (body.empty()) return std::nullopt;
    std::size_t len = 0;
    while (len < body.size() && body[len] != ' ' && body[len] != '\t' &&
           body[len] != '\n' && body[len] != '\r') {
      ++len;
    }
    const std::string_view token = body.substr(0, len);
    body.remove_prefix(len);
    return token;
  };
  while (true) {
    const auto s = next_token();
    if (!s) break;
    const auto t = next_token();
    if (!t) {
      fail(response, "odd number of vertex ids in batch body");
      return true;
    }
    const auto sv = parse_vertex(*s);
    const auto tv = parse_vertex(*t);
    if (!sv || !tv) {
      fail(response, "batch body must contain decimal vertex ids");
      return true;
    }
    queries.push_back({*sv, *tv});
  }

  const auto snap = server.snapshot();
  std::vector<graph::Weight> distances;
  try {
    distances = server.query_batch_on(*snap, queries);
  } catch (const std::out_of_range&) {
    fail(response, "vertex id out of range");
    return true;
  }
  std::string body_out = "{\"epoch\": ";
  body_out += std::to_string(snap->epoch());
  body_out += ", \"count\": ";
  body_out += std::to_string(distances.size());
  body_out += ", \"distances\": [";
  for (std::size_t i = 0; i < distances.size(); ++i) {
    if (i > 0) body_out += ", ";
    body_out += '"';
    body_out += format_distance(distances[i]);
    body_out += '"';
  }
  body_out += "]}\n";
  response.content_type = "application/json";
  response.body = std::move(body_out);
  finish_request(qt, distances.size());
  return true;
}

}  // namespace

std::string format_distance(graph::Weight w) {
  if (w >= graph::kInfWeight) return "inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", static_cast<double>(w));
  return buf;
}

void register_query_routes(OracleServer& server) {
  OracleServer* target = &server;
  obs::StatsServer::instance().set_route_handler(
      [target](const obs::HttpRequest& request, obs::HttpResponse& response) {
        if (request.path == "/query") {
          return handle_single(*target, request, response);
        }
        if (request.path == "/query/batch") {
          return handle_batch(*target, request, response);
        }
        return false;
      });
}

void unregister_query_routes() {
  obs::StatsServer::instance().set_route_handler(nullptr);
}

}  // namespace eardec::serve
