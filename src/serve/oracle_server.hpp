// Online distance-oracle serving — the read-mostly query layer on top of
// the compact DistanceOracle (see docs/serving.md).
//
// OracleServer owns an immutable OracleSnapshot behind a shared_ptr: every
// reader pins the snapshot it resolves (snapshot() or implicitly per
// query), rebuild() publishes a freshly built snapshot under the next
// epoch, and readers still holding the old one finish on it — the old
// build is freed when its last reader drops the reference. Nothing in a
// published snapshot is ever mutated, so queries need no locks beyond the
// one pointer copy.
//
// Three query paths:
//   * scalar    — query(s, t): resolve snapshot, closed-form compact query
//                 (EarApspEngine::query), one latency histogram record.
//                 The singleton fast path: no batching, no scheduler.
//   * batched   — query_batch(queries): classify every query with
//                 EarApspEngine::route, group the within-block legs by
//                 block into work units, drain them through the hetero
//                 scheduler (run_cpu_only / run_heterogeneous per the
//                 build mode), then recompose leg + AP-table answers.
//                 Bit-identical to the scalar path query for query.
//   * compact   — same-block pairs short-circuit to a single
//                 block-distance evaluation (the route's SameBlock kind);
//                 in a batch they are exactly the one-leg work items.
//
// The batched path offers two leg engines:
//   * Tables    — evaluate legs against the snapshot's reduced tables
//                 (EarApspEngine::block_distance); pure reads.
//   * Recompute — re-derive the needed reduced-graph rows per work unit
//                 with fresh SSSP runs, using phase II's kernel selection
//                 (multi-source lanes when the unit is wide and the
//                 reduced component large, Dijkstra otherwise; the device
//                 side runs DeltaSteppingWorkspace). Proves the serving
//                 answers do not depend on the stored tables — the
//                 table-free mode a future incremental rebuild would use —
//                 and stays bit-identical because every kernel is
//                 bit-identical to Dijkstra and BlockQueryPlan::evaluate
//                 preserves the engine's candidate shapes.
//
// Metrics (obs registry): oracle.query.scalar.latency_ns and
// oracle.query.batch.latency_ns histograms (the batch one records the
// amortized per-query cost), oracle.serve.batch.latency_ns for whole
// batches, oracle.serve.queries / .batches counters, per-path counters
// oracle.serve.path.{trivial,disconnected,same_block,cross_block}, and the
// oracle.serve.epoch gauge. All visible on a live /metrics scrape.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/distance_oracle.hpp"
#include "graph/graph.hpp"

namespace eardec::serve {

using graph::VertexId;
using graph::Weight;

/// One s-t distance request.
struct Query {
  VertexId s = 0;
  VertexId t = 0;
};

/// How the batched path evaluates within-block legs (see file comment).
enum class BatchEngine {
  Tables,     ///< read the snapshot's reduced tables
  Recompute,  ///< fresh SSSP rows on the reduced graph per work unit
};

struct ServeOptions {
  /// How snapshots are built; `build.mode` also selects the batched-path
  /// drain: Sequential runs units inline, Multicore drains through
  /// run_cpu_only, DeviceOnly/Heterogeneous through run_heterogeneous
  /// (CPU workers + the software device driver).
  core::ApspOptions build{.mode = core::ExecutionMode::Multicore,
                          .cpu_threads = 4};
  BatchEngine batch_engine = BatchEngine::Tables;
  /// Scheduler claim minimums for the batched drain.
  std::size_t cpu_batch = 1;
  std::size_t device_batch = 2;
  /// Target within-block legs per work unit. Small units keep the drain
  /// balanced; large ones amortize the per-unit plan/SSSP setup.
  std::uint32_t legs_per_unit = 64;
};

/// One immutable published build: the input graph plus the compact oracle
/// over it, stamped with its epoch. Everything here is read-only after
/// construction, so any number of threads may query a pinned snapshot
/// concurrently (EarApspEngine's const queries are thread-safe).
class OracleSnapshot {
 public:
  OracleSnapshot(graph::Graph g, const core::ApspOptions& build,
                 std::uint64_t epoch)
      : epoch_(epoch), graph_(std::move(g)), oracle_(graph_, build) {}

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const graph::Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const core::DistanceOracle& oracle() const noexcept {
    return oracle_;
  }
  [[nodiscard]] const core::EarApspEngine& engine() const noexcept {
    return oracle_.engine();
  }
  /// Closed-form compact query on this snapshot (no metrics, no epoch
  /// resolution — the raw building block readers pin and hammer).
  [[nodiscard]] Weight query(VertexId s, VertexId t) const {
    return oracle_.distance(s, t);
  }

 private:
  std::uint64_t epoch_;
  graph::Graph graph_;
  core::DistanceOracle oracle_;
};

class OracleServer {
 public:
  /// Builds epoch 1 synchronously from `g`.
  explicit OracleServer(graph::Graph g, ServeOptions options = {});
  ~OracleServer();
  OracleServer(const OracleServer&) = delete;
  OracleServer& operator=(const OracleServer&) = delete;

  /// Pins the current snapshot. The returned pointer stays valid (and its
  /// answers stay self-consistent) across any number of later rebuilds.
  [[nodiscard]] std::shared_ptr<const OracleSnapshot> snapshot() const;

  /// Epoch of the currently published snapshot (monotonically increasing).
  [[nodiscard]] std::uint64_t epoch() const noexcept;

  /// Builds a snapshot from `g` off to the side, then publishes it under
  /// the next epoch. Readers that pinned the old snapshot drain on it;
  /// new resolutions see the new one. Safe against concurrent queries;
  /// concurrent rebuilds serialize.
  void rebuild(graph::Graph g);

  [[nodiscard]] const ServeOptions& options() const noexcept;

  /// Scalar fast path: resolve the current snapshot, answer s-t through
  /// the compact closed form. Throws std::out_of_range on bad vertices.
  [[nodiscard]] Weight query(VertexId s, VertexId t) const;

  /// Batched path against the current snapshot (see query_batch_on).
  [[nodiscard]] std::vector<Weight> query_batch(
      std::span<const Query> queries) const;

  /// Batched path against a caller-pinned snapshot: classify, group legs
  /// by block, drain through the scheduler, recompose. Returns one
  /// distance per query, in order, bit-identical to calling
  /// snap.query(s, t) per query. Deterministic: the same batch on the
  /// same snapshot always returns bitwise-identical results regardless of
  /// scheduling, because every leg lands in a fixed slot and every
  /// evaluation is order-independent.
  [[nodiscard]] std::vector<Weight> query_batch_on(
      const OracleSnapshot& snap, std::span<const Query> queries) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace eardec::serve
