// HTTP face of the serving layer: /query routes registered on the obs
// StatsServer's pluggable route handler, so one loopback endpoint serves
// scrapes (/metrics, /stats.json) and distance queries side by side.
//
// Routes (see docs/serving.md for the wire contract):
//   * GET  /query?s=<u>&t=<v>  — one distance:
//         {"epoch": E, "s": S, "t": T, "distance": "<d>"}
//   * POST /query/batch        — body is whitespace-separated "s t" pairs;
//         answers through the batched path:
//         {"epoch": E, "count": N, "distances": ["<d>", ...]}
// Distances are JSON strings formatted with %.17g ("inf" for unreachable)
// so round-tripping them preserves every bit — the CI smoke diff compares
// them textually against `eardec_cli query`.
//
// Malformed input (missing/non-numeric parameters, out-of-range vertices)
// answers 400 with {"error": "..."}. Unknown paths fall through to the
// stats server's built-in routes.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace eardec::serve {

class OracleServer;

/// %.17g rendering of a distance; "inf" for kInfWeight. The textual form
/// used by the HTTP routes and `eardec_cli query`, chosen to round-trip
/// doubles exactly.
[[nodiscard]] std::string format_distance(graph::Weight w);

/// Registers the /query routes against the process StatsServer, serving
/// from `server`. The handler holds a pointer to `server`: call
/// unregister_query_routes() before the OracleServer is destroyed.
void register_query_routes(OracleServer& server);

/// Clears the route handler (idempotent).
void unregister_query_routes();

}  // namespace eardec::serve
