#include "serve/oracle_server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "hetero/device.hpp"
#include "hetero/scheduler.hpp"
#include "hetero/work_queue.hpp"
#include "obs/metrics.hpp"
#include "obs/query_trace.hpp"
#include "obs/slow_log.hpp"
#include "obs/trace.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/multi_source.hpp"

namespace eardec::serve {

namespace {

// Mirror of phase II's CpuSsspKernel::Auto thresholds: batch into
// multi-source lanes only when the unit is wide enough and the reduced
// component large enough to amortize the lane block.
constexpr std::uint32_t kMultiSourceMinLanes = 4;
constexpr VertexId kMultiSourceMinVertices = 24;

/// One within-block leg of one query: evaluate
/// d_block(block; local_from, local_to) into leg slot `slot`
/// (slot = 2 * query + {0 leg_u, 1 leg_v}). Slots are disjoint across all
/// tasks of a batch, so any drain order — and any worker interleaving —
/// writes the same values: the batch is deterministic by construction.
struct LegTask {
  std::uint32_t block = 0;
  VertexId local_from = 0;
  VertexId local_to = 0;
  std::uint32_t slot = 0;
};

/// A contiguous run of same-block tasks, the unit the scheduler drains.
struct LegUnit {
  std::uint32_t block = 0;
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

/// Per-worker scratch of the Recompute engine: reduced-graph SSSP rows plus
/// every kernel workspace, all grow-only so a drain reuses them across
/// units.
struct RecomputeScratch {
  sssp::DistanceMatrix rows;
  sssp::DijkstraWorkspace dijkstra;
  sssp::MultiSourceWorkspace multi_source;
  sssp::DeltaSteppingWorkspace delta;
  std::vector<core::BlockQueryPlan> plans;
  std::vector<VertexId> sources;
};

}  // namespace

struct OracleServer::Impl {
  ServeOptions options;

  /// Guards the published-snapshot pointer: readers copy it, rebuild()
  /// swaps it. A plain mutex around one shared_ptr copy keeps the epoch
  /// swap trivially data-race-free (and TSan-obvious); the pinned snapshot
  /// itself is immutable, so everything after the copy is lock-free.
  mutable std::mutex snapshot_mutex;
  std::shared_ptr<const OracleSnapshot> snapshot;

  /// Serializes rebuilds; also owns the epoch sequence.
  std::mutex rebuild_mutex;
  std::uint64_t last_epoch = 0;

  /// The device driver of the batched drain (DeviceOnly / Heterogeneous).
  std::optional<hetero::Device> device;

  // Metric instruments are leaked-singleton references: resolve them once.
  obs::Histogram& scalar_latency;
  obs::Histogram& batch_query_latency;
  obs::Histogram& batch_latency;
  obs::Counter& queries_total;
  obs::Counter& batches_total;
  obs::Counter& path_trivial;
  obs::Counter& path_disconnected;
  obs::Counter& path_same_block;
  obs::Counter& path_cross_block;
  obs::Gauge& epoch_gauge;
  // Latency attribution components (docs/observability.md): every answered
  // query decomposes into queue_wait / schedule / kernel / recompose /
  // write. The first four are recorded here (at full batch values, once
  // per query in the batch, so component means stay per-query comparable
  // and sum to the open-loop mean); `write` belongs to whoever serializes
  // the reply (http_routes / the bench) via QueryTrace::server_end_ns.
  obs::Histogram& attr_queue_wait;
  obs::Histogram& attr_schedule;
  obs::Histogram& attr_kernel;
  obs::Histogram& attr_recompose;

  explicit Impl(ServeOptions opts)
      : options(opts),
        scalar_latency(obs::MetricsRegistry::instance().histogram(
            "oracle.query.scalar.latency_ns")),
        batch_query_latency(obs::MetricsRegistry::instance().histogram(
            "oracle.query.batch.latency_ns")),
        batch_latency(obs::MetricsRegistry::instance().histogram(
            "oracle.serve.batch.latency_ns")),
        queries_total(
            obs::MetricsRegistry::instance().counter("oracle.serve.queries")),
        batches_total(
            obs::MetricsRegistry::instance().counter("oracle.serve.batches")),
        path_trivial(obs::MetricsRegistry::instance().counter(
            "oracle.serve.path.trivial")),
        path_disconnected(obs::MetricsRegistry::instance().counter(
            "oracle.serve.path.disconnected")),
        path_same_block(obs::MetricsRegistry::instance().counter(
            "oracle.serve.path.same_block")),
        path_cross_block(obs::MetricsRegistry::instance().counter(
            "oracle.serve.path.cross_block")),
        epoch_gauge(
            obs::MetricsRegistry::instance().gauge("oracle.serve.epoch")),
        attr_queue_wait(obs::MetricsRegistry::instance().histogram(
            "oracle.serve.attr.queue_wait_ns")),
        attr_schedule(obs::MetricsRegistry::instance().histogram(
            "oracle.serve.attr.schedule_ns")),
        attr_kernel(obs::MetricsRegistry::instance().histogram(
            "oracle.serve.attr.kernel_ns")),
        attr_recompose(obs::MetricsRegistry::instance().histogram(
            "oracle.serve.attr.recompose_ns")) {
    if (options.legs_per_unit == 0) options.legs_per_unit = 1;
    if (options.build.mode == core::ExecutionMode::DeviceOnly ||
        options.build.mode == core::ExecutionMode::Heterogeneous) {
      device.emplace(options.build.device);
    }
  }

  void publish(std::shared_ptr<const OracleSnapshot> next) {
    {
      std::lock_guard<std::mutex> lock(snapshot_mutex);
      snapshot = std::move(next);
    }
    epoch_gauge.set(static_cast<double>(last_epoch));
  }

  [[nodiscard]] std::shared_ptr<const OracleSnapshot> pin() const {
    std::lock_guard<std::mutex> lock(snapshot_mutex);
    return snapshot;
  }

  /// Evaluates one unit's tasks with the Recompute engine: derive the
  /// needed reduced-graph rows with a fresh SSSP per distinct anchor, then
  /// evaluate every task's plan against them. `on_device` routes the rows
  /// through the delta-stepping device kernel instead of the CPU kernels;
  /// all of them are bit-identical to Dijkstra, so the engine choice never
  /// changes an answer.
  void recompute_unit(const core::EarApspEngine& eng, const LegUnit& unit,
                      std::span<const LegTask> tasks,
                      std::span<Weight> leg_values, RecomputeScratch& ws,
                      bool on_device) {
    const graph::Graph& rg = eng.reduced(unit.block).graph();
    const VertexId nr = rg.num_vertices();
    ws.plans.clear();
    ws.sources.clear();
    for (std::uint32_t i = 0; i < unit.count; ++i) {
      const LegTask& t = tasks[unit.first + i];
      ws.plans.push_back(
          eng.block_query_plan(unit.block, t.local_from, t.local_to));
      const core::BlockQueryPlan& plan = ws.plans.back();
      for (std::uint32_t e = 0; e < plan.count_u; ++e) {
        ws.sources.push_back(plan.exits_u[e].first);
      }
    }
    std::sort(ws.sources.begin(), ws.sources.end());
    ws.sources.erase(std::unique(ws.sources.begin(), ws.sources.end()),
                     ws.sources.end());

    if (ws.rows.size() != nr) ws.rows = sssp::DistanceMatrix(nr);
    const auto k = static_cast<std::uint32_t>(ws.sources.size());
    if (on_device) {
      ws.delta.ensure(nr);
      for (const VertexId s : ws.sources) {
        ws.delta.distances(rg, s, ws.rows.row(s), 0, nullptr,
                           device ? &*device : nullptr);
      }
    } else if (k >= kMultiSourceMinLanes && nr >= kMultiSourceMinVertices) {
      const std::uint32_t lanes = std::min(k, sssp::kMaxSourceLanes);
      ws.multi_source.ensure(nr, lanes);
      for (std::uint32_t at = 0; at < k; at += lanes) {
        const std::uint32_t width = std::min(lanes, k - at);
        ws.multi_source.distances(
            rg, std::span<const VertexId>(ws.sources.data() + at, width),
            ws.rows);
      }
    } else {
      ws.dijkstra.ensure(nr);
      for (const VertexId s : ws.sources) {
        ws.dijkstra.distances(rg, s, ws.rows.row(s));
      }
    }

    for (std::uint32_t i = 0; i < unit.count; ++i) {
      leg_values[tasks[unit.first + i].slot] = ws.plans[i].evaluate(
          [&ws](VertexId r) { return ws.rows.row(r); });
    }
  }

  [[nodiscard]] std::vector<Weight> run_batch(
      const OracleSnapshot& snap, std::span<const Query> queries) {
    // Request context (obs/query_trace.hpp): when the caller installed a
    // QueryTrace, every span below joins its per-query tree and the
    // attribution components chain gaplessly from the scheduled arrival.
    // Timing uses the tracer's steady clock so span and attribution
    // timestamps share one timeline.
    const std::uint64_t entry_ns = obs::Tracer::now_ns();
    obs::QueryTrace* const qt = obs::current_query_trace();
    const std::uint32_t caller_parent = obs::current_parent_span();
    const std::uint32_t root_id = qt != nullptr ? qt->allocate_span() : 0;
    const std::uint64_t qid = qt != nullptr ? qt->query_id() : 0;
    const core::EarApspEngine& eng = snap.engine();
    const std::size_t q = queries.size();

    // Classify. Legs land in fixed slots (2 * query + side); recomposition
    // later adds leg_u + ap + leg_v left-associated with absent legs a
    // literal 0, exactly as EarApspEngine::query composes them.
    std::vector<core::QueryRoute::Kind> kinds(q);
    std::vector<Weight> ap_values(q, 0);
    std::vector<Weight> leg_values(2 * q, 0);
    std::vector<LegTask> tasks;
    tasks.reserve(q);
    std::uint64_t n_trivial = 0, n_disconnected = 0, n_same = 0, n_cross = 0;
    for (std::size_t i = 0; i < q; ++i) {
      const core::QueryRoute route = eng.route(queries[i].s, queries[i].t);
      kinds[i] = route.kind;
      switch (route.kind) {
        case core::QueryRoute::Kind::Trivial:
          ++n_trivial;
          break;
        case core::QueryRoute::Kind::Disconnected:
          ++n_disconnected;
          break;
        case core::QueryRoute::Kind::SameBlock:
          ++n_same;
          tasks.push_back({route.leg_u.block, route.leg_u.local_from,
                           route.leg_u.local_to,
                           static_cast<std::uint32_t>(2 * i)});
          break;
        case core::QueryRoute::Kind::CrossBlock:
          ++n_cross;
          ap_values[i] = eng.ap_distance(route.ap_u, route.ap_v);
          if (route.leg_u.present) {
            tasks.push_back({route.leg_u.block, route.leg_u.local_from,
                             route.leg_u.local_to,
                             static_cast<std::uint32_t>(2 * i)});
          }
          if (route.leg_v.present) {
            tasks.push_back({route.leg_v.block, route.leg_v.local_from,
                             route.leg_v.local_to,
                             static_cast<std::uint32_t>(2 * i + 1)});
          }
          break;
      }
    }

    // Group by block into scheduler units. stable_sort keeps same-block
    // legs in batch order, which matters only for cache locality — the
    // evaluation itself is order-independent.
    std::stable_sort(tasks.begin(), tasks.end(),
                     [](const LegTask& a, const LegTask& b) {
                       return a.block < b.block;
                     });
    std::vector<LegUnit> units;
    std::vector<hetero::WorkUnit> queue_units;
    for (std::uint32_t at = 0; at < tasks.size();) {
      const std::uint32_t block = tasks[at].block;
      std::uint32_t end = at;
      while (end < tasks.size() && tasks[end].block == block) ++end;
      const std::uint64_t nr = eng.reduced(block).graph().num_vertices();
      for (std::uint32_t first = at; first < end;
           first += options.legs_per_unit) {
        const auto id = static_cast<std::uint32_t>(units.size());
        const std::uint32_t count =
            std::min<std::uint32_t>(options.legs_per_unit, end - first);
        units.push_back({block, first, count});
        // Heaviest-first queue order: weight by legs times reduced size
        // (the Recompute cost shape; harmless for Tables). The tag carries
        // the query id so worker-side spans stitch into the query tree.
        queue_units.push_back({id, count * (nr + 1), qid});
      }
      at = end;
    }

    const bool recompute = options.batch_engine == BatchEngine::Recompute;
    const unsigned cpu_workers = std::max(1u, options.build.cpu_threads);
    std::vector<RecomputeScratch> cpu_ws(recompute ? cpu_workers : 0);
    RecomputeScratch device_ws;

    // Both unit callbacks re-install the request context: drains are
    // synchronous within this call, so `qt` outlives every worker lane
    // touching it, and the QueryTraceScope makes the per-unit spans attach
    // under this batch's root from whichever thread runs the unit.
    const hetero::UnitFn cpu_fn = [&](const hetero::WorkUnit& wu,
                                      unsigned worker) {
      const obs::QueryTraceScope qscope(qt, root_id);
      const obs::QuerySpan unit_span("oracle.leg_unit", "block",
                                     units[wu.id].block);
      const LegUnit& u = units[wu.id];
      if (recompute) {
        recompute_unit(eng, u, tasks, leg_values, cpu_ws[worker], false);
      } else {
        for (std::uint32_t i = 0; i < u.count; ++i) {
          const LegTask& t = tasks[u.first + i];
          leg_values[t.slot] =
              eng.block_distance(u.block, t.local_from, t.local_to);
        }
      }
    };
    const hetero::UnitFn device_fn = [&](const hetero::WorkUnit& wu,
                                         unsigned) {
      const obs::QueryTraceScope qscope(qt, root_id);
      const obs::QuerySpan unit_span("oracle.leg_unit", "block",
                                     units[wu.id].block);
      const LegUnit& u = units[wu.id];
      if (recompute) {
        recompute_unit(eng, u, tasks, leg_values, device_ws, true);
      } else {
        for (std::uint32_t i = 0; i < u.count; ++i) {
          const LegTask& t = tasks[u.first + i];
          leg_values[t.slot] =
              eng.block_distance(u.block, t.local_from, t.local_to);
        }
      }
    };

    // Attribution brackets: schedule = entry..t1 (classification, leg
    // grouping, unit build), kernel = t1..t2 (the drain), recompose =
    // t2..end (recomposition; the trailing metric bookkeeping lands in the
    // caller's `write` component via server_end_ns, keeping the chain
    // arrival -> entry -> t1 -> t2 -> end -> done gapless).
    const std::uint64_t t1 = obs::Tracer::now_ns();
    switch (options.build.mode) {
      case core::ExecutionMode::Sequential:
        for (const auto& wu : queue_units) cpu_fn(wu, 0);
        break;
      case core::ExecutionMode::Multicore: {
        hetero::WorkQueue queue(std::move(queue_units));
        hetero::run_cpu_only(queue, options.build.cpu_threads, cpu_fn,
                             options.cpu_batch);
        break;
      }
      case core::ExecutionMode::DeviceOnly: {
        hetero::WorkQueue queue(std::move(queue_units));
        while (true) {
          const auto batch = queue.take_heavy(options.device_batch);
          if (batch.empty()) break;
          for (const auto& wu : batch) device_fn(wu, 0);
        }
        break;
      }
      case core::ExecutionMode::Heterogeneous: {
        hetero::WorkQueue queue(std::move(queue_units));
        hetero::run_heterogeneous(queue,
                                  {.cpu_threads = options.build.cpu_threads,
                                   .cpu_batch = options.cpu_batch,
                                   .device_batch = options.device_batch},
                                  cpu_fn, device_fn);
        break;
      }
    }

    const std::uint64_t t2 = obs::Tracer::now_ns();

    // Recompose: same shapes, same association as the scalar closed form.
    std::vector<Weight> out(q);
    for (std::size_t i = 0; i < q; ++i) {
      switch (kinds[i]) {
        case core::QueryRoute::Kind::Trivial:
          out[i] = 0;
          break;
        case core::QueryRoute::Kind::Disconnected:
          out[i] = graph::kInfWeight;
          break;
        case core::QueryRoute::Kind::SameBlock:
          out[i] = leg_values[2 * i];
          break;
        case core::QueryRoute::Kind::CrossBlock:
          out[i] = (leg_values[2 * i] + ap_values[i]) + leg_values[2 * i + 1];
          break;
      }
    }

    const std::uint64_t end_ns = obs::Tracer::now_ns();
    const std::uint64_t ns = end_ns - entry_ns;
    batch_latency.record(ns);
    batches_total.add(1);
    queries_total.add(q);
    path_trivial.add(n_trivial);
    path_disconnected.add(n_disconnected);
    path_same_block.add(n_same);
    path_cross_block.add(n_cross);
    batch_query_latency.record_n(q > 0 ? ns / q : 0, q);

    // Attribution: components are recorded at full batch values once per
    // query in the batch — the same convention the open-loop bench uses for
    // its latency histogram — so per-component means sum to the open-loop
    // mean (check_bench_smoke.py enforces the 10% bound).
    const std::uint64_t arrival =
        qt != nullptr && qt->arrival_ns != 0 && qt->arrival_ns <= entry_ns
            ? qt->arrival_ns
            : entry_ns;
    attr_queue_wait.record_n(entry_ns - arrival, q);
    attr_schedule.record_n(t1 - entry_ns, q);
    attr_kernel.record_n(t2 - t1, q);
    attr_recompose.record_n(end_ns - t2, q);

    if (qt != nullptr) {
      qt->attr_ns[std::size_t(obs::AttrComponent::kQueueWait)] =
          entry_ns - arrival;
      qt->attr_ns[std::size_t(obs::AttrComponent::kSchedule)] = t1 - entry_ns;
      qt->attr_ns[std::size_t(obs::AttrComponent::kKernel)] = t2 - t1;
      qt->attr_ns[std::size_t(obs::AttrComponent::kRecompose)] = end_ns - t2;
      qt->server_end_ns = end_ns;
      qt->emit(qt->allocate_span(), root_id, "oracle.classify", entry_ns,
               t1 - entry_ns, "legs", tasks.size());
      qt->emit(qt->allocate_span(), root_id, "oracle.drain", t1, t2 - t1,
               "units", units.size());
      qt->emit(qt->allocate_span(), root_id, "oracle.recompose", t2,
               end_ns - t2);
      qt->emit(root_id, caller_parent, "oracle.batch", entry_ns, ns,
               "queries", q);
      // Tail-sampled exemplars: feed the p99 tracker with the query's
      // server-visible latency (arrival to recompose end) and retain the
      // span tree + attribution on a Keep verdict.
      obs::SlowLog& slow = obs::SlowLog::instance();
      if (slow.armed()) {
        const std::uint64_t total = end_ns - arrival;
        const obs::SlowLog::Keep keep = slow.observe(total);
        if (keep != obs::SlowLog::Keep::kNo) {
          slow.retain(*qt, total, keep, q > 0 ? queries[0].s : 0,
                      q > 0 ? queries[0].t : 0,
                      static_cast<std::uint32_t>(q), snap.epoch());
        }
      }
    }
    return out;
  }
};

OracleServer::OracleServer(graph::Graph g, ServeOptions options)
    : impl_(std::make_unique<Impl>(options)) {
  std::lock_guard<std::mutex> rebuild(impl_->rebuild_mutex);
  const std::uint64_t epoch = ++impl_->last_epoch;
  impl_->publish(std::make_shared<const OracleSnapshot>(
      std::move(g), impl_->options.build, epoch));
}

OracleServer::~OracleServer() = default;

std::shared_ptr<const OracleSnapshot> OracleServer::snapshot() const {
  return impl_->pin();
}

std::uint64_t OracleServer::epoch() const noexcept {
  return impl_->pin()->epoch();
}

void OracleServer::rebuild(graph::Graph g) {
  std::lock_guard<std::mutex> rebuild(impl_->rebuild_mutex);
  const std::uint64_t epoch = impl_->last_epoch + 1;
  // Build off to the side — readers keep answering on the old snapshot
  // for the whole (expensive) construction.
  auto next = std::make_shared<const OracleSnapshot>(
      std::move(g), impl_->options.build, epoch);
  impl_->last_epoch = epoch;
  impl_->publish(std::move(next));
}

const ServeOptions& OracleServer::options() const noexcept {
  return impl_->options;
}

Weight OracleServer::query(VertexId s, VertexId t) const {
  // The kernel bracket starts before pin() so the snapshot copy has no
  // unattributed gap; server_end_ns is the bracket end, so the metric
  // bookkeeping below lands in the caller's `write` component and the
  // attribution chain arrival -> entry -> end -> done stays gapless.
  const std::uint64_t entry_ns = obs::Tracer::now_ns();
  obs::QueryTrace* const qt = obs::current_query_trace();
  const auto snap = impl_->pin();
  const Weight d = snap->query(s, t);
  const std::uint64_t end_ns = obs::Tracer::now_ns();
  const std::uint64_t arrival =
      qt != nullptr && qt->arrival_ns != 0 && qt->arrival_ns <= entry_ns
          ? qt->arrival_ns
          : entry_ns;
  impl_->scalar_latency.record(end_ns - entry_ns);
  impl_->queries_total.add(1);
  impl_->attr_queue_wait.record(entry_ns - arrival);
  impl_->attr_schedule.record(0);
  impl_->attr_kernel.record(end_ns - entry_ns);
  impl_->attr_recompose.record(0);
  if (qt != nullptr) {
    qt->attr_ns[std::size_t(obs::AttrComponent::kQueueWait)] =
        entry_ns - arrival;
    qt->attr_ns[std::size_t(obs::AttrComponent::kKernel)] = end_ns - entry_ns;
    qt->server_end_ns = end_ns;
    qt->emit(qt->allocate_span(), obs::current_parent_span(), "oracle.scalar",
             entry_ns, end_ns - entry_ns);
    obs::SlowLog& slow = obs::SlowLog::instance();
    if (slow.armed()) {
      const std::uint64_t total = end_ns - arrival;
      const obs::SlowLog::Keep keep = slow.observe(total);
      if (keep != obs::SlowLog::Keep::kNo) {
        slow.retain(*qt, total, keep, s, t, 1, snap->epoch());
      }
    }
  }
  return d;
}

std::vector<Weight> OracleServer::query_batch(
    std::span<const Query> queries) const {
  const auto snap = impl_->pin();
  return impl_->run_batch(*snap, queries);
}

std::vector<Weight> OracleServer::query_batch_on(
    const OracleSnapshot& snap, std::span<const Query> queries) const {
  return impl_->run_batch(snap, queries);
}

}  // namespace eardec::serve
