// The parallel Mehlhorn–Michail MCB solver (paper Section 3.3.2): per
// phase, (1) relabel every FVS tree against the current witness, (2) scan
// the weight-sorted candidate store in batches for the first cycle
// non-orthogonal to the witness, (3) update the remaining witnesses. All
// three steps run under the selected execution mode (sequential, CPU pool,
// software device, or the heterogeneous work queue).
#pragma once

#include <cstdint>
#include <vector>

#include "core/ear_apsp.hpp"  // ExecutionMode
#include "hetero/device.hpp"
#include "hetero/thread_pool.hpp"
#include "mcb/cycle.hpp"

namespace eardec::mcb {

using core::ExecutionMode;

/// Which feedback-vertex-set algorithm roots the shortest-path trees.
enum class FvsAlgorithm {
  GreedyPeel,         ///< classic peel-and-pick heuristic (fast, default)
  BafnaBermanFujito,  ///< the 2-approximation the paper cites [3]
};

struct McbOptions {
  ExecutionMode mode = ExecutionMode::Multicore;
  unsigned cpu_threads = 4;
  hetero::DeviceConfig device{};
  /// Candidates checked per scan batch (paper: "logical batches").
  std::uint32_t batch_size = 256;
  /// Remaining-witness count at which the orthogonalization sweep is
  /// shipped to the device's block-XOR kernel (DeviceOnly and
  /// Heterogeneous modes). Below it, launch overhead dominates and the
  /// sweep stays on the CPU. In Heterogeneous mode the device tail runs
  /// asynchronously, overlapped with the next phase's candidate search.
  std::uint32_t device_witness_rows = 64;
  /// Contract degree-two chains first (Lemma 3.1). Off = the paper's
  /// "w/o ear-decomposition" columns in Table 2.
  bool use_ear_decomposition = true;
  FvsAlgorithm fvs = FvsAlgorithm::GreedyPeel;
};

struct McbStats {
  double reduce_seconds = 0;      ///< ear decomposition + contraction
  double preprocess_seconds = 0;  ///< spanning tree, FVS, trees, candidates
  double labels_seconds = 0;      ///< Algorithm 3 across all phases
  double search_seconds = 0;      ///< batched candidate scans
  double update_seconds = 0;      ///< witness updates
  std::size_t dimension = 0;      ///< f = total cycles in the basis
  std::size_t candidates = 0;     ///< |A| across components
  std::size_t fallback_searches = 0;  ///< signed-graph fallbacks (safety)
  std::size_t fvs_size = 0;

  [[nodiscard]] double total_seconds() const {
    return reduce_seconds + preprocess_seconds + labels_seconds +
           search_seconds + update_seconds;
  }
  void accumulate(const McbStats& o);
};

struct McbResult {
  std::vector<Cycle> basis;  ///< cycles as edge sets of the input graph
  Weight total_weight = 0;
  McbStats stats;
};

/// MCB of a single (multi)graph via the labelled-tree algorithm. Cycles
/// are reported in g's edge ids. `pool`/`device` may be null when the mode
/// does not need them.
[[nodiscard]] McbResult mm_mcb(const Graph& g, const McbOptions& options,
                               hetero::ThreadPool* pool,
                               hetero::Device* device);

}  // namespace eardec::mcb
