// De Pina's witness algorithm [11] (paper Algorithm 2), sequential
// reference implementation. Each of the f phases finds the minimum-weight
// cycle non-orthogonal to the current witness via the signed-graph search,
// then restores orthogonality of the remaining witnesses. Exact for any
// non-negative weighting; used to validate the faster Mehlhorn–Michail
// pipeline and as the "Sequential" column of Table 2.
//
// Two drivers share the phase structure:
//   * depina_mcb           — the bit-sliced WitnessMatrix path (blocked
//     orthogonalization, word-range early-exit, sparse supports);
//   * depina_mcb_reference — the pre-overhaul one-BitVector-at-a-time
//     scalar loop, kept verbatim as the differential-fuzz oracle for the
//     optimized kernels (testing/oracles.cpp).
// Both are exact and must produce bit-for-bit identical bases.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "mcb/cycle.hpp"

namespace eardec::mcb {

struct DePinaResult {
  std::vector<Cycle> basis;
  Weight total_weight = 0;
};

/// Exact MCB by De Pina's method. Throws std::logic_error if a phase finds
/// no odd cycle (impossible for a well-formed input; guards corruption).
[[nodiscard]] DePinaResult depina_mcb(const Graph& g);

/// The pre-overhaul scalar loop (std::vector<BitVector> witnesses,
/// per-vector dot/xor). Slow; exists only as the differential oracle.
[[nodiscard]] DePinaResult depina_mcb_reference(const Graph& g);

}  // namespace eardec::mcb
