// Bit-sliced GF(2) witness storage for De Pina-style MCB solvers.
//
// The f witnesses live as rows of one contiguous row-major arena of packed
// uint64_t words (f rows x ceil(f/64) words), so the post-selection
// orthogonalization — "make every later witness orthogonal to C_i" — runs
// as one blocked pass over adjacent rows instead of f-i pointer-chasing
// BitVector calls: batched AND+popcount-parity inner products, then a
// masked conditional-XOR row sweep, unrolled four words at a time on the
// CPU or shipped to the hetero::Device block-XOR kernel for large tails.
//
// On top of the dense arena each row carries a hybrid sparse-support
// representation: witnesses start as unit vectors and stay near-sparse for
// many phases (the same front-biased pattern Ablation C measured for
// CycleStore), so below a crossover cardinality a row also keeps a sorted
// support list and the kernels iterate it instead of scanning zero words.
// Promotion to dense-only is automatic and one-way. Rows additionally track
// a conservative [lo, hi) live word range, which gives the cheap
// disjointness early-exit of the orthogonalization sweep.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hetero/device.hpp"
#include "mcb/gf2.hpp"

namespace eardec::mcb {

/// Work counters of the GF(2) kernels, accumulated per solve and exported
/// to the obs metrics registry as the mcb.gf2.* counters.
struct Gf2KernelStats {
  std::uint64_t dots = 0;          ///< inner products evaluated (batched)
  std::uint64_t sparse_dots = 0;   ///< of which via a support list
  std::uint64_t rows_updated = 0;  ///< conditional XORs applied
  std::uint64_t words_xored = 0;   ///< 64-bit words written by XOR sweeps
  std::uint64_t range_skips = 0;   ///< rows skipped by the word-range check
  std::uint64_t promotions = 0;    ///< sparse -> dense densifications
  std::uint64_t cpu_rows = 0;      ///< rows swept on the CPU path
  std::uint64_t device_rows = 0;   ///< rows swept by the device kernel

  void accumulate(const Gf2KernelStats& o);
  /// Adds every non-zero counter into the process-wide metrics registry.
  void export_to_metrics() const;
};

/// Read-only view of one witness row (or of a standalone BitVector, so the
/// signed-graph search and labelled trees take one vector type).
class WitnessView {
 public:
  WitnessView() = default;
  WitnessView(std::span<const std::uint64_t> words, std::size_t bits,
              const std::vector<std::uint32_t>* support)
      : words_(words), bits_(bits), support_(support) {}
  explicit WitnessView(const BitVector& v)
      : words_(v.words()), bits_(v.size()) {}

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }
  [[nodiscard]] bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }
  /// When true, support() is the exact sorted list of set bit positions.
  [[nodiscard]] bool has_support() const noexcept {
    return support_ != nullptr;
  }
  [[nodiscard]] std::span<const std::uint32_t> support() const {
    return *support_;
  }

 private:
  std::span<const std::uint64_t> words_;
  std::size_t bits_ = 0;
  const std::vector<std::uint32_t>* support_ = nullptr;
};

class WitnessMatrix {
 public:
  /// Ceiling on the support cardinality at or below which a row keeps its
  /// sorted support list. 32 keeps the list within one cache line while
  /// covering the front-biased early phases where most rows hold a handful
  /// of bits.
  static constexpr std::size_t kDefaultSparseCrossover = 32;
  /// Sentinel: pick the crossover from the row width —
  /// min(kDefaultSparseCrossover, 2 * words_per_row). A support list only
  /// beats the dense unrolled sweep while it is shorter than the words it
  /// replaces, so narrow matrices (few witnesses) densify almost
  /// immediately instead of churning through list merges.
  static constexpr std::size_t kAutoCrossover = static_cast<std::size_t>(-1);

  /// f x f identity over GF(2): row i = unit vector e_i (every row sparse).
  /// crossover == 0 disables the sparse representation entirely.
  explicit WitnessMatrix(std::size_t bits,
                         std::size_t crossover = kAutoCrossover);

  [[nodiscard]] std::size_t rows() const noexcept { return bits_; }
  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }
  [[nodiscard]] std::size_t words_per_row() const noexcept { return wpr_; }

  [[nodiscard]] WitnessView view(std::size_t j) const;
  [[nodiscard]] bool get(std::size_t j, std::size_t i) const;
  [[nodiscard]] bool row_sparse(std::size_t j) const {
    return meta_[j].sparse;
  }
  [[nodiscard]] std::size_t support_size(std::size_t j) const {
    return support_[j].size();
  }
  [[nodiscard]] std::size_t popcount(std::size_t j) const;
  /// GF(2) inner product <row j, v> (tests and sanitize-build invariants).
  [[nodiscard]] bool dot(std::size_t j, const BitVector& v) const;

  /// The blocked orthogonalization pass of De Pina's update step: for every
  /// row j in [begin, end), if <C_i, w_j> = 1 then w_j ^= w_pivot. Rows
  /// whose live word range is disjoint from ci's are skipped without
  /// touching their words; j == pivot is skipped (the self-pair would zero
  /// the pivot). Returns the work counters of this call.
  Gf2KernelStats orthogonalize(std::size_t pivot, const BitVector& ci,
                               std::size_t begin, std::size_t end);

  /// In-flight asynchronous device sweep; join() blocks until the kernel
  /// retired, then applies the host-side row-metadata merge and returns the
  /// kernel's work counters. Joining is mandatory before the matrix is
  /// read, mutated, or destroyed.
  class PendingDeviceUpdate {
   public:
    Gf2KernelStats join();

   private:
    friend class WitnessMatrix;
    WitnessMatrix* matrix_ = nullptr;
    std::size_t pivot_ = 0;
    std::size_t begin_ = 0;
    std::size_t end_ = 0;
    BitVector ci_;
    std::vector<std::uint8_t> updated_;
    hetero::Device::Async async_;
    bool joined_ = false;
  };

  /// Same pass as orthogonalize(), but swept by the device's block-wide
  /// AND + tree-XOR-reduction kernel (DESIGN.md §2 / paper Section 3.3.2):
  /// one cooperative block per row, conditional XOR on odd parity. Returns
  /// without blocking; the caller owns the join. `ci` is copied into the
  /// pending handle, so it may die before the join.
  PendingDeviceUpdate orthogonalize_device_async(std::size_t pivot,
                                                 const BitVector& ci,
                                                 std::size_t begin,
                                                 std::size_t end,
                                                 hetero::Device& device);

  /// Bulk-synchronous convenience wrapper: launch + join.
  Gf2KernelStats orthogonalize_device(std::size_t pivot, const BitVector& ci,
                                      std::size_t begin, std::size_t end,
                                      hetero::Device& device);

 private:
  /// Conservative superset [lo, hi) of the row's non-zero words; lo == hi
  /// encodes an all-zero row. `sparse` iff support_[row] is the exact
  /// sorted set-bit list.
  struct RowMeta {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    bool sparse = true;
  };

  [[nodiscard]] const std::uint64_t* row_ptr(std::size_t j) const {
    return words_.data() + j * wpr_;
  }
  [[nodiscard]] std::uint64_t* row_ptr(std::size_t j) {
    return words_.data() + j * wpr_;
  }

  /// w_j ^= w_pivot plus all metadata maintenance (range union, support
  /// symmetric difference or promotion). `merge_scratch` is a caller-owned
  /// reuse buffer for the sparse-sparse merge — per sweep, not a member, so
  /// concurrent sweeps over disjoint row ranges stay race-free.
  void xor_pivot_into(std::size_t pivot, std::size_t j, Gf2KernelStats& st,
                      std::vector<std::uint32_t>& merge_scratch);
  /// Metadata half of a device sweep (the kernel only touches words).
  Gf2KernelStats finish_device_update(std::size_t pivot, std::size_t begin,
                                      std::size_t end,
                                      const std::vector<std::uint8_t>& updated);

  std::size_t bits_ = 0;
  std::size_t wpr_ = 0;  ///< words per row
  std::size_t crossover_;
  std::vector<std::uint64_t> words_;  ///< the arena: rows() * wpr_ words
  std::vector<RowMeta> meta_;
  std::vector<std::vector<std::uint32_t>> support_;
};

}  // namespace eardec::mcb
