#include "mcb/cycle.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <stdexcept>

namespace eardec::mcb {

Cycle fundamental_cycle(const Graph& g, const SpanningTree& t, EdgeId e) {
  if (t.in_tree[e]) {
    throw std::invalid_argument("fundamental_cycle: e is a tree edge");
  }
  Cycle c;
  c.edges.push_back(e);
  c.weight = g.weight(e);
  auto [u, v] = g.endpoints(e);
  // Climb to the common ancestor, collecting tree edges.
  while (u != v) {
    if (t.depth[u] < t.depth[v]) std::swap(u, v);
    c.edges.push_back(t.parent_edge[u]);
    c.weight += g.weight(t.parent_edge[u]);
    u = t.parent[u];
  }
  return c;
}

BitVector restricted_vector(const Cycle& c, const SpanningTree& t) {
  BitVector v(t.dimension());
  for (const EdgeId e : c.edges) {
    const std::uint32_t idx = t.non_tree_index[e];
    if (idx != kNotNonTree) v.set(idx, !v.get(idx));
  }
  return v;
}

bool is_cycle_space_element(const Graph& g, const std::vector<EdgeId>& edges) {
  if (edges.empty()) return false;
  std::map<VertexId, std::uint32_t> deg;
  for (const EdgeId e : edges) {
    const auto [u, v] = g.endpoints(e);
    deg[u] += 1;
    deg[v] += 1;  // self-loop contributes 2 to its endpoint
  }
  return std::all_of(deg.begin(), deg.end(),
                     [](const auto& kv) { return kv.second % 2 == 0; });
}

bool is_simple_cycle(const Graph& g, const std::vector<EdgeId>& edges) {
  if (edges.empty()) return false;
  // No repeated edges.
  std::vector<EdgeId> sorted(edges);
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return false;
  }
  std::map<VertexId, std::uint32_t> deg;
  for (const EdgeId e : edges) {
    const auto [u, v] = g.endpoints(e);
    deg[u] += 1;
    deg[v] += 1;
  }
  for (const auto& [v, d] : deg) {
    if (d != 2) return false;
  }
  // Connectivity over the touched vertices via union-find on edges.
  std::map<VertexId, VertexId> parent;
  for (const auto& [v, d] : deg) parent[v] = v;
  const std::function<VertexId(VertexId)> find = [&](VertexId x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const EdgeId e : edges) {
    const auto [u, v] = g.endpoints(e);
    parent[find(u)] = find(v);
  }
  const VertexId root = find(deg.begin()->first);
  return std::all_of(deg.begin(), deg.end(), [&](const auto& kv) {
    return find(kv.first) == root;
  });
}

Weight cycle_weight(const Graph& g, const std::vector<EdgeId>& edges) {
  Weight w = 0;
  for (const EdgeId e : edges) w += g.weight(e);
  return w;
}

}  // namespace eardec::mcb
