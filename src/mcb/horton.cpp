#include "mcb/horton.hpp"

#include <algorithm>
#include <numeric>

#include "connectivity/dfs.hpp"
#include "sssp/dijkstra.hpp"

namespace eardec::mcb {
namespace {

/// Edge set of the shortest path from the tree root to u (tree parents).
void append_path_edges(const sssp::ShortestPathTree& t, VertexId u,
                       std::vector<EdgeId>& out) {
  while (t.parent[u] != graph::kNullVertex) {
    out.push_back(t.parent_edge[u]);
    u = t.parent[u];
  }
}

/// XOR-reduces an edge multiset: edges appearing an odd number of times.
std::vector<EdgeId> xor_support(std::vector<EdgeId> edges) {
  std::sort(edges.begin(), edges.end());
  std::vector<EdgeId> out;
  for (std::size_t i = 0; i < edges.size();) {
    std::size_t j = i;
    while (j < edges.size() && edges[j] == edges[i]) ++j;
    if ((j - i) % 2 == 1) out.push_back(edges[i]);
    i = j;
  }
  return out;
}

}  // namespace

HortonResult horton_mcb(const Graph& g) {
  HortonResult result;
  const SpanningTree tree = build_spanning_tree(g);
  const std::size_t f = tree.dimension();
  if (f == 0) return result;

  // Enumerate candidates.
  struct Candidate {
    Weight weight;
    std::vector<EdgeId> edges;
  };
  std::vector<Candidate> cands;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto sp = sssp::dijkstra(g, v);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [x, y] = g.endpoints(e);
      if (sp.dist[x] == graph::kInfWeight || sp.dist[y] == graph::kInfWeight) {
        continue;
      }
      if (sp.parent_edge[x] == e || sp.parent_edge[y] == e) continue;
      ++result.candidates;
      std::vector<EdgeId> edges{e};
      append_path_edges(sp, x, edges);
      append_path_edges(sp, y, edges);
      auto support = xor_support(std::move(edges));
      if (support.empty()) continue;
      if (!is_simple_cycle(g, support)) continue;  // degenerate overlap
      const Weight w = cycle_weight(g, support);
      cands.push_back({w, std::move(support)});
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.weight < b.weight;
            });

  // Greedy independence via incremental Gaussian elimination: keep reduced
  // basis rows; a candidate is independent iff it reduces to non-zero.
  std::vector<BitVector> reduced_rows;
  std::vector<std::size_t> pivot_of;  // pivot bit of each reduced row
  for (const Candidate& cand : cands) {
    if (result.basis.size() == f) break;
    Cycle c{cand.edges, cand.weight};
    BitVector v = restricted_vector(c, tree);
    for (std::size_t r = 0; r < reduced_rows.size(); ++r) {
      if (v.get(pivot_of[r])) v.xor_assign(reduced_rows[r]);
    }
    if (!v.any()) continue;  // dependent
    std::size_t pivot = 0;
    while (!v.get(pivot)) ++pivot;
    reduced_rows.push_back(v);
    pivot_of.push_back(pivot);
    result.total_weight += cand.weight;
    result.basis.push_back(std::move(c));
  }
  return result;
}

}  // namespace eardec::mcb
