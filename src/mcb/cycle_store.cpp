#include "mcb/cycle_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace eardec::mcb {

CycleStore::CycleStore(std::uint32_t count) : live_(count) {
  node_of_.resize(count);
  nodes_.reserve((count + kNodeCapacity - 1) / kNodeCapacity);
  for (std::uint32_t begin = 0; begin < count; begin += kNodeCapacity) {
    Node node;
    const std::uint32_t end = std::min(begin + kNodeCapacity, count);
    node.slots.reserve(end - begin);
    for (std::uint32_t id = begin; id < end; ++id) {
      node.slots.push_back(id);
      node_of_[id] = static_cast<std::uint32_t>(nodes_.size());
    }
    nodes_.push_back(std::move(node));
  }
}

std::size_t CycleStore::next_batch(Cursor& cursor,
                                   std::span<std::uint32_t> out) const {
  std::size_t produced = 0;
  while (produced < out.size() && cursor.node < nodes_.size()) {
    const Node& node = nodes_[cursor.node];
    if (cursor.slot >= node.slots.size()) {
      ++cursor.node;
      cursor.slot = 0;
      continue;
    }
    const std::uint32_t raw = node.slots[cursor.slot++];
    if (raw & kDeadBit) continue;
    out[produced++] = raw;
  }
  return produced;
}

void CycleStore::remove(std::uint32_t id) {
  Node& node = nodes_.at(node_of_.at(id));
  const auto it = std::find(node.slots.begin(), node.slots.end(), id);
  if (it == node.slots.end()) {
    throw std::invalid_argument("CycleStore::remove: id not live");
  }
  *it |= kDeadBit;
  --live_;
  ++stats_.removals;
  // Registry instruments are resolved once per process (function-local
  // statics); remove() runs once per MCB phase, so the relaxed adds are
  // noise even in the ablation's 18K-removal replay.
  auto& reg = obs::MetricsRegistry::instance();
  static obs::Counter& removals_c = reg.counter("mcb.cycle_store.removals");
  static obs::Counter& compactions_c =
      reg.counter("mcb.cycle_store.compactions");
  static obs::Counter& dropped_c =
      reg.counter("mcb.cycle_store.slots_dropped");
  removals_c.add();
  if (++node.dead * 2 >= kNodeCapacity) {
    // Compact: drop dead slots, keeping live order.
    std::vector<std::uint32_t> keep;
    keep.reserve(node.slots.size() - node.dead);
    for (const std::uint32_t raw : node.slots) {
      if (!(raw & kDeadBit)) keep.push_back(raw);
    }
    ++stats_.compactions;
    stats_.slots_dropped += node.dead;
    compactions_c.add();
    dropped_c.add(node.dead);
    node.slots = std::move(keep);
    node.dead = 0;
  }
}

}  // namespace eardec::mcb
