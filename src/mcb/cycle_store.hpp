// Sorted candidate-cycle container with lazy removal — the hybrid
// "linked list of constant-sized arrays" of the paper (Section 3.3.2):
// plain arrays scan fast but can't delete; linked lists delete fast but
// scan slowly. Each node holds a fixed block of candidate ids in weight
// order; removal sets the slot's MSB; a node compacts itself once half its
// slots are dead, so scans stay dense.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace eardec::mcb {

class CycleStore {
 public:
  static constexpr std::uint32_t kNodeCapacity = 64;
  static constexpr std::uint32_t kDeadBit = 0x80000000u;

  /// Builds the store over ids 0..count-1 in that order (callers pre-sort
  /// candidates by weight and pass ranks).
  explicit CycleStore(std::uint32_t count);

  /// Scan cursor; invalidated by remove() only at the removed position.
  struct Cursor {
    std::uint32_t node = 0;
    std::uint32_t slot = 0;
  };

  [[nodiscard]] Cursor begin() const { return {}; }

  /// Copies up to out.size() live ids in stored order into `out`,
  /// advancing the cursor. Returns how many were produced (0 = exhausted).
  std::size_t next_batch(Cursor& cursor, std::span<std::uint32_t> out) const;

  /// Marks `id` dead. Compacts its node when at least half its slots died.
  void remove(std::uint32_t id);

  [[nodiscard]] std::size_t live() const { return live_; }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }

  /// Structural maintenance counters. Mirrored into the obs metrics
  /// registry (mcb.cycle_store.*) as they happen, so `--metrics` exports
  /// carry them next to the GF(2) kernel counters.
  struct Stats {
    std::uint64_t removals = 0;       ///< remove() calls
    std::uint64_t compactions = 0;    ///< half-dead node rebuilds
    std::uint64_t slots_dropped = 0;  ///< dead slots freed by compaction
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Node {
    std::vector<std::uint32_t> slots;  // ids, MSB = dead
    std::uint32_t dead = 0;
  };
  std::vector<Node> nodes_;
  /// Per id: node index (slot found by scan during remove-compaction).
  std::vector<std::uint32_t> node_of_;
  std::size_t live_ = 0;
  Stats stats_;
};

}  // namespace eardec::mcb
