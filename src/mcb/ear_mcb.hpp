// The complete MCB pipeline of the paper (Section 3.3): split into
// biconnected components (no MCB cycle spans two), contract degree-two
// chains into single edges of the same weight (Lemma 3.1 — the reduced
// multigraph keeps parallel edges and self-loops, and its MCB has the same
// dimension and weight), solve each reduced component with the parallel
// Mehlhorn–Michail algorithm, and expand every contracted edge e_P back
// into its chain P in the reported cycles.
#pragma once

#include "mcb/mm_mcb.hpp"

namespace eardec::mcb {

/// Minimum cycle basis of an arbitrary weighted undirected (multi)graph.
/// Cycles are reported as edge sets of g. Options select execution
/// resources and whether the ear-decomposition contraction runs at all
/// (Table 2's "w" vs "w/o" columns).
[[nodiscard]] McbResult minimum_cycle_basis(const Graph& g,
                                            const McbOptions& options = {});

/// Validation helper: true iff `result` is a basis of g's cycle space with
/// independent restricted vectors and each member a cycle-space element.
[[nodiscard]] bool validate_basis(const Graph& g, const McbResult& result);

}  // namespace eardec::mcb
