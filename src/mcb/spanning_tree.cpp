#include "mcb/spanning_tree.hpp"

#include <deque>

namespace eardec::mcb {

SpanningTree build_spanning_tree(const Graph& g) {
  const VertexId n = g.num_vertices();
  const EdgeId m = g.num_edges();
  SpanningTree t;
  t.in_tree.assign(m, false);
  t.non_tree_index.assign(m, kNotNonTree);
  t.parent.assign(n, graph::kNullVertex);
  t.parent_edge.assign(n, graph::kNullEdge);
  t.depth.assign(n, 0);

  std::vector<bool> visited(n, false);
  std::deque<VertexId> queue;
  for (VertexId r = 0; r < n; ++r) {
    if (visited[r]) continue;
    visited[r] = true;
    queue.push_back(r);
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      for (const graph::HalfEdge& he : g.neighbors(v)) {
        if (visited[he.to]) continue;
        visited[he.to] = true;
        t.in_tree[he.edge] = true;
        t.parent[he.to] = v;
        t.parent_edge[he.to] = he.edge;
        t.depth[he.to] = t.depth[v] + 1;
        queue.push_back(he.to);
      }
    }
  }
  for (EdgeId e = 0; e < m; ++e) {
    if (!t.in_tree[e]) {
      t.non_tree_index[e] = static_cast<std::uint32_t>(t.non_tree_edges.size());
      t.non_tree_edges.push_back(e);
    }
  }
  return t;
}

}  // namespace eardec::mcb
