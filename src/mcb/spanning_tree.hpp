// Spanning tree/forest of the underlying unweighted graph, with the
// non-tree edge ordering E' = {e_1, ..., e_f} that indexes the GF(2)
// cycle space (paper Section 3.2). Self-loops and all-but-one of each
// parallel bundle are necessarily non-tree.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace eardec::mcb {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;
using graph::Weight;

inline constexpr std::uint32_t kNotNonTree = UINT32_MAX;

struct SpanningTree {
  /// Per edge: true iff it belongs to the tree/forest.
  std::vector<bool> in_tree;
  /// The non-tree edges in their fixed order e_1..e_f (0-based here).
  std::vector<EdgeId> non_tree_edges;
  /// Per edge: its index in non_tree_edges, or kNotNonTree.
  std::vector<std::uint32_t> non_tree_index;
  /// Rooted forest structure: parent vertex/edge, kNull* at roots.
  std::vector<VertexId> parent;
  std::vector<EdgeId> parent_edge;
  std::vector<std::uint32_t> depth;

  /// Cycle-space dimension f = |E'| = m - n + #components.
  [[nodiscard]] std::size_t dimension() const { return non_tree_edges.size(); }
};

/// BFS spanning forest. O(n + m).
[[nodiscard]] SpanningTree build_spanning_tree(const Graph& g);

}  // namespace eardec::mcb
