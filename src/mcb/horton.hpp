// Horton's O(m^3 n)-style baseline [18]: enumerate candidate cycles
// C(v, e) = SP(v,u) + e + SP(v,w) over vertices v and edges e = (u, w),
// sort them by weight, and greedily keep the independent ones (Gaussian
// elimination over GF(2)) until the basis is complete. The first
// polynomial-time MCB algorithm, kept here as the reference the faster
// implementations are validated and benchmarked against.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "mcb/cycle.hpp"

namespace eardec::mcb {

struct HortonResult {
  std::vector<Cycle> basis;
  Weight total_weight = 0;
  /// Candidates enumerated before filtering (the n*(m-n+1) of the paper).
  std::size_t candidates = 0;
};

/// Exact MCB by Horton's method. Intended for modest graphs (tests and the
/// baseline columns of the benches); superquadratic time and memory.
[[nodiscard]] HortonResult horton_mcb(const Graph& g);

}  // namespace eardec::mcb
