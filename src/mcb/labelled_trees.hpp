// Labelled shortest-path trees — the Mehlhorn–Michail machinery [29] the
// paper parallelizes (Algorithm 3). For each FVS vertex z we keep the
// Dijkstra tree T_z. Given the current witness S, two passes per tree
// compute l_z(u) = <path_z(u), S>; then any candidate cycle C_ze can be
// tested for non-orthogonality to S in O(1):
//   <C_ze, S> = l_z(u) ⊕ l_z(v) ⊕ (e ∈ E' ? S(e) : 0).
//
// The relabel pass consumes the witness through its sparse support list
// when one is available: each tree pre-extracts its "crossing slots" (the
// parent edges that are non-tree edges of the global spanning tree, keyed
// by non-tree index), so a witness with k set bits relabels a tree in
// O(k log |slots|) instead of O(n) — and a tree no witness bit touches is
// skipped outright (its labels are identically zero).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "mcb/cycle.hpp"
#include "mcb/gf2.hpp"
#include "mcb/spanning_tree.hpp"
#include "mcb/witness_matrix.hpp"

namespace eardec::mcb {

/// One rooted shortest-path tree.
struct LabelledTree {
  VertexId root = 0;
  std::vector<VertexId> parent;
  std::vector<EdgeId> parent_edge;
  std::vector<Weight> dist;
  /// Vertices in parent-before-child order (root first; unreachable
  /// vertices excluded).
  std::vector<VertexId> order;
  /// Parent edges that are non-tree edges of the global spanning tree:
  /// (non-tree index, child vertex), sorted by index. Pass 1 of Algorithm 3
  /// only ever sets c_z at these vertices.
  std::vector<std::pair<std::uint32_t, VertexId>> crossing_slots;
};

/// A candidate cycle C_ze: non-tree edge e of T_z, with z the LCA of e's
/// endpoints in T_z (the Mehlhorn–Michail pruning). Endpoints and the
/// global non-tree index are cached so the batched scan reads one
/// contiguous candidate stream instead of chasing the edge arrays.
struct McbCandidate {
  std::uint32_t tree = 0;  ///< index into LabelledTrees::trees
  EdgeId edge = graph::kNullEdge;
  Weight weight = 0;
  VertexId u = 0;  ///< endpoints of `edge` (cached from the graph)
  VertexId v = 0;
  std::uint32_t sign_index = kNotNonTree;  ///< non-tree index, or sentinel
};

class LabelledTrees {
 public:
  /// Builds the Dijkstra trees from every vertex of `fvs` and enumerates
  /// the candidate set A, sorted by weight.
  LabelledTrees(const Graph& g, const SpanningTree& tree,
                std::vector<VertexId> fvs);

  [[nodiscard]] std::size_t num_trees() const { return trees_.size(); }
  [[nodiscard]] const std::vector<McbCandidate>& candidates() const {
    return candidates_;
  }

  /// Recomputes the labels of tree `t` for witness S (Algorithm 3's two
  /// passes). Each tree is independent — callers parallelize over trees.
  void relabel_tree(std::size_t t, const WitnessView& s);

  /// O(1) orthogonality test of candidate `c` against the witness used in
  /// the last relabel of c's tree.
  [[nodiscard]] bool is_odd(const McbCandidate& c, const WitnessView& s) const;

  /// Batched serial scan: the position in `ids` of the first candidate that
  /// is odd against S, or `count` when none is. One tight loop with the
  /// label base and witness words hoisted out — the fast path of the search
  /// phase, which exits mid-batch on the first hit instead of evaluating
  /// the whole batch.
  [[nodiscard]] std::size_t first_odd(const std::uint32_t* ids,
                                      std::size_t count,
                                      const WitnessView& s) const;

  /// Materializes the cycle of a candidate: e plus the two tree paths.
  [[nodiscard]] Cycle materialize(const McbCandidate& c) const;

 private:
  const Graph& g_;
  const SpanningTree& tree_;
  std::vector<LabelledTree> trees_;
  std::vector<McbCandidate> candidates_;
  /// l_z(u) for all trees, flattened: labels_[t * n + u]. One allocation,
  /// and per-phase relabels stay in the same hot pages.
  std::vector<std::uint8_t> labels_;
  /// all_zero_[t]: the current witness sets no bit on tree t's crossing
  /// slots, so every label of t is 0 and pass 2 was skipped.
  std::vector<std::uint8_t> all_zero_;
};

}  // namespace eardec::mcb
