// Labelled shortest-path trees — the Mehlhorn–Michail machinery [29] the
// paper parallelizes (Algorithm 3). For each FVS vertex z we keep the
// Dijkstra tree T_z. Given the current witness S, two passes per tree
// compute l_z(u) = <path_z(u), S>; then any candidate cycle C_ze can be
// tested for non-orthogonality to S in O(1):
//   <C_ze, S> = l_z(u) ⊕ l_z(v) ⊕ (e ∈ E' ? S(e) : 0).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "mcb/cycle.hpp"
#include "mcb/gf2.hpp"
#include "mcb/spanning_tree.hpp"

namespace eardec::mcb {

/// One rooted shortest-path tree plus the scratch label array.
struct LabelledTree {
  VertexId root = 0;
  std::vector<VertexId> parent;
  std::vector<EdgeId> parent_edge;
  std::vector<Weight> dist;
  /// Vertices in parent-before-child order (root first; unreachable
  /// vertices excluded).
  std::vector<VertexId> order;
  /// l_z(u) with respect to the witness of the last relabel() call.
  std::vector<std::uint8_t> label;
};

/// A candidate cycle C_ze: non-tree edge e of T_z, with z the LCA of e's
/// endpoints in T_z (the Mehlhorn–Michail pruning).
struct McbCandidate {
  std::uint32_t tree = 0;  ///< index into LabelledTrees::trees
  EdgeId edge = graph::kNullEdge;
  Weight weight = 0;
};

class LabelledTrees {
 public:
  /// Builds the Dijkstra trees from every vertex of `fvs` and enumerates
  /// the candidate set A, sorted by weight.
  LabelledTrees(const Graph& g, const SpanningTree& tree,
                std::vector<VertexId> fvs);

  [[nodiscard]] std::size_t num_trees() const { return trees_.size(); }
  [[nodiscard]] const std::vector<McbCandidate>& candidates() const {
    return candidates_;
  }

  /// Recomputes the labels of tree `t` for witness S (Algorithm 3's two
  /// passes). Each tree is independent — callers parallelize over trees.
  void relabel_tree(std::size_t t, const BitVector& s);

  /// O(1) orthogonality test of candidate `c` against the witness used in
  /// the last relabel of c's tree.
  [[nodiscard]] bool is_odd(const McbCandidate& c, const BitVector& s) const;

  /// Materializes the cycle of a candidate: e plus the two tree paths.
  [[nodiscard]] Cycle materialize(const McbCandidate& c) const;

 private:
  const Graph& g_;
  const SpanningTree& tree_;
  std::vector<LabelledTree> trees_;
  std::vector<McbCandidate> candidates_;
};

}  // namespace eardec::mcb
