#include "mcb/labelled_trees.hpp"

#include <algorithm>
#include <stdexcept>

#include "sssp/dijkstra.hpp"

namespace eardec::mcb {

LabelledTrees::LabelledTrees(const Graph& g, const SpanningTree& tree,
                             std::vector<VertexId> fvs)
    : g_(g), tree_(tree) {
  const VertexId n = g.num_vertices();
  trees_.reserve(fvs.size());
  std::vector<std::uint32_t> depth(n);

  for (const VertexId z : fvs) {
    auto sp = sssp::dijkstra(g, z);
    LabelledTree lt;
    lt.root = z;
    lt.parent = std::move(sp.parent);
    lt.parent_edge = std::move(sp.parent_edge);
    lt.dist = std::move(sp.dist);

    // Parent-before-child order via BFS over the tree's children lists.
    std::vector<std::vector<VertexId>> children(n);
    for (VertexId v = 0; v < n; ++v) {
      if (lt.parent[v] != graph::kNullVertex) {
        children[lt.parent[v]].push_back(v);
      }
    }
    lt.order.reserve(n);
    lt.order.push_back(z);
    depth[z] = 0;
    for (std::size_t i = 0; i < lt.order.size(); ++i) {
      const VertexId v = lt.order[i];
      for (const VertexId c : children[v]) {
        depth[c] = depth[v] + 1;
        lt.order.push_back(c);
      }
    }

    // Crossing slots: the only vertices pass 1 can ever mark. Sorted by
    // non-tree index so a sparse witness can binary-search its support.
    for (const VertexId u : lt.order) {
      const EdgeId pe = lt.parent_edge[u];
      if (pe == graph::kNullEdge) continue;
      const std::uint32_t idx = tree.non_tree_index[pe];
      if (idx != kNotNonTree) lt.crossing_slots.emplace_back(idx, u);
    }
    std::sort(lt.crossing_slots.begin(), lt.crossing_slots.end());

    // Candidates rooted at z: non-tree edges of T_z whose endpoints have z
    // as their least common ancestor in T_z.
    const auto tree_index = static_cast<std::uint32_t>(trees_.size());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      auto [u, v] = g.endpoints(e);
      if (lt.dist[u] == graph::kInfWeight || lt.dist[v] == graph::kInfWeight) {
        continue;
      }
      if (lt.parent_edge[u] == e || lt.parent_edge[v] == e) continue;
      // LCA by depth climbing.
      VertexId a = u, b = v;
      while (a != b) {
        if (depth[a] < depth[b]) std::swap(a, b);
        a = lt.parent[a];
      }
      if (a != z) continue;
      candidates_.push_back({tree_index, e,
                             lt.dist[u] + g.weight(e) + lt.dist[v], u, v,
                             tree.non_tree_index[e]});
    }
    trees_.push_back(std::move(lt));
  }

  std::stable_sort(candidates_.begin(), candidates_.end(),
                   [](const McbCandidate& a, const McbCandidate& b) {
                     return a.weight < b.weight;
                   });

  labels_.assign(trees_.size() * static_cast<std::size_t>(n), 0);
  all_zero_.assign(trees_.size(), 1);  // every label starts at 0
}

void LabelledTrees::relabel_tree(std::size_t t, const WitnessView& s) {
  LabelledTree& lt = trees_[t];
  const std::size_t n = static_cast<std::size_t>(g_.num_vertices());
  std::uint8_t* label = labels_.data() + t * n;

  // Pass 1 (Algorithm 3, lines 4-8): c_z(u) = S(parent edge) for crossing
  // slots, 0 elsewhere. The scratch is thread_local and cleared via the
  // touched list, so skipped trees pay nothing proportional to n.
  thread_local std::vector<std::uint8_t> c;
  thread_local std::vector<VertexId> touched;
  if (c.size() < n) c.resize(n, 0);
  touched.clear();

  if (s.has_support() && s.support().size() * 8 < lt.crossing_slots.size()) {
    // Sparse witness, big tree: walk the support and binary-search the
    // slots instead of testing every crossing slot against S.
    for (const std::uint32_t idx : s.support()) {
      auto it = std::lower_bound(
          lt.crossing_slots.begin(), lt.crossing_slots.end(), idx,
          [](const auto& slot, std::uint32_t key) { return slot.first < key; });
      for (; it != lt.crossing_slots.end() && it->first == idx; ++it) {
        c[it->second] = 1;
        touched.push_back(it->second);
      }
    }
  } else {
    for (const auto& [idx, u] : lt.crossing_slots) {
      if (s.get(idx)) {
        c[u] = 1;
        touched.push_back(u);
      }
    }
  }

  if (touched.empty()) {
    // No crossing slot is set: every l_z is 0. Skip pass 2; is_odd reads
    // the flag instead of the (stale) label array.
    all_zero_[t] = 1;
    return;
  }
  all_zero_[t] = 0;

  // Pass 2 (lines 9-11): level-order accumulate l_z(u) = l_z(parent) ⊕ c(u).
  for (const VertexId u : lt.order) {
    const VertexId p = lt.parent[u];
    label[u] = p == graph::kNullVertex
                   ? std::uint8_t{0}
                   : static_cast<std::uint8_t>(label[p] ^ c[u]);
  }
  for (const VertexId u : touched) c[u] = 0;
}

bool LabelledTrees::is_odd(const McbCandidate& cand,
                           const WitnessView& s) const {
  unsigned parity = 0;
  if (!all_zero_[cand.tree]) {
    const std::uint8_t* label =
        labels_.data() +
        cand.tree * static_cast<std::size_t>(g_.num_vertices());
    parity = static_cast<unsigned>(label[cand.u] ^ label[cand.v]);
  }
  if (cand.sign_index != kNotNonTree) {
    parity ^= static_cast<unsigned>(s.get(cand.sign_index));
  }
  return (parity & 1u) != 0;
}

std::size_t LabelledTrees::first_odd(const std::uint32_t* ids,
                                     std::size_t count,
                                     const WitnessView& s) const {
  const std::size_t n = static_cast<std::size_t>(g_.num_vertices());
  const std::uint8_t* labels = labels_.data();
  const std::uint8_t* az = all_zero_.data();
  const std::uint64_t* sw = s.words().data();
  for (std::size_t k = 0; k < count; ++k) {
    const McbCandidate& cand = candidates_[ids[k]];
    unsigned parity = 0;
    if (!az[cand.tree]) {
      const std::uint8_t* label = labels + cand.tree * n;
      parity = static_cast<unsigned>(label[cand.u] ^ label[cand.v]);
    }
    if (cand.sign_index != kNotNonTree) {
      parity ^= static_cast<unsigned>(
          (sw[cand.sign_index >> 6] >> (cand.sign_index & 63)) & 1u);
    }
    if ((parity & 1u) != 0) return k;
  }
  return count;
}

Cycle LabelledTrees::materialize(const McbCandidate& cand) const {
  const LabelledTree& lt = trees_[cand.tree];
  Cycle c;
  c.edges.push_back(cand.edge);
  const auto climb = [&](VertexId x) {
    while (x != lt.root) {
      c.edges.push_back(lt.parent_edge[x]);
      x = lt.parent[x];
    }
  };
  climb(cand.u);
  climb(cand.v);
  c.weight = cycle_weight(g_, c.edges);
  return c;
}

}  // namespace eardec::mcb
