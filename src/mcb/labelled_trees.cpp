#include "mcb/labelled_trees.hpp"

#include <algorithm>
#include <stdexcept>

#include "sssp/dijkstra.hpp"

namespace eardec::mcb {

LabelledTrees::LabelledTrees(const Graph& g, const SpanningTree& tree,
                             std::vector<VertexId> fvs)
    : g_(g), tree_(tree) {
  const VertexId n = g.num_vertices();
  trees_.reserve(fvs.size());
  std::vector<std::uint32_t> depth(n);

  for (const VertexId z : fvs) {
    auto sp = sssp::dijkstra(g, z);
    LabelledTree lt;
    lt.root = z;
    lt.parent = std::move(sp.parent);
    lt.parent_edge = std::move(sp.parent_edge);
    lt.dist = std::move(sp.dist);
    lt.label.assign(n, 0);

    // Parent-before-child order via BFS over the tree's children lists.
    std::vector<std::vector<VertexId>> children(n);
    for (VertexId v = 0; v < n; ++v) {
      if (lt.parent[v] != graph::kNullVertex) {
        children[lt.parent[v]].push_back(v);
      }
    }
    lt.order.reserve(n);
    lt.order.push_back(z);
    depth[z] = 0;
    for (std::size_t i = 0; i < lt.order.size(); ++i) {
      const VertexId v = lt.order[i];
      for (const VertexId c : children[v]) {
        depth[c] = depth[v] + 1;
        lt.order.push_back(c);
      }
    }

    // Candidates rooted at z: non-tree edges of T_z whose endpoints have z
    // as their least common ancestor in T_z.
    const auto tree_index = static_cast<std::uint32_t>(trees_.size());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      auto [u, v] = g.endpoints(e);
      if (lt.dist[u] == graph::kInfWeight || lt.dist[v] == graph::kInfWeight) {
        continue;
      }
      if (lt.parent_edge[u] == e || lt.parent_edge[v] == e) continue;
      // LCA by depth climbing.
      VertexId a = u, b = v;
      while (a != b) {
        if (depth[a] < depth[b]) std::swap(a, b);
        a = lt.parent[a];
      }
      if (a != z) continue;
      candidates_.push_back(
          {tree_index, e, lt.dist[u] + g.weight(e) + lt.dist[v]});
    }
    trees_.push_back(std::move(lt));
  }

  std::stable_sort(candidates_.begin(), candidates_.end(),
                   [](const McbCandidate& a, const McbCandidate& b) {
                     return a.weight < b.weight;
                   });
}

void LabelledTrees::relabel_tree(std::size_t t, const BitVector& s) {
  LabelledTree& lt = trees_[t];
  // Pass 1 (Algorithm 3, lines 4-8): c_z(u) = S(parent edge) if that edge
  // is a non-tree edge of the global spanning tree, else 0.
  thread_local std::vector<std::uint8_t> c;
  c.assign(lt.label.size(), 0);
  for (const VertexId u : lt.order) {
    const EdgeId pe = lt.parent_edge[u];
    if (pe == graph::kNullEdge) continue;
    const std::uint32_t idx = tree_.non_tree_index[pe];
    if (idx != kNotNonTree) c[u] = s.get(idx);
  }
  // Pass 2 (lines 9-11): level-order accumulate l_z(u) = l_z(parent) ⊕ c(u).
  for (const VertexId u : lt.order) {
    const VertexId p = lt.parent[u];
    lt.label[u] = p == graph::kNullVertex ? 0 : (lt.label[p] ^ c[u]);
  }
}

bool LabelledTrees::is_odd(const McbCandidate& cand,
                           const BitVector& s) const {
  const LabelledTree& lt = trees_[cand.tree];
  const auto [u, v] = g_.endpoints(cand.edge);
  std::uint8_t parity = lt.label[u] ^ lt.label[v];
  const std::uint32_t idx = tree_.non_tree_index[cand.edge];
  if (idx != kNotNonTree) parity ^= s.get(idx);
  return parity & 1u;
}

Cycle LabelledTrees::materialize(const McbCandidate& cand) const {
  const LabelledTree& lt = trees_[cand.tree];
  Cycle c;
  c.edges.push_back(cand.edge);
  const auto climb = [&](VertexId x) {
    while (x != lt.root) {
      c.edges.push_back(lt.parent_edge[x]);
      x = lt.parent[x];
    }
  };
  const auto [u, v] = g_.endpoints(cand.edge);
  climb(u);
  climb(v);
  c.weight = cycle_weight(g_, c.edges);
  return c;
}

}  // namespace eardec::mcb
