#include "mcb/ear_mcb.hpp"

#include <cmath>
#include <mutex>
#include <optional>

#include "connectivity/bcc.hpp"
#include "hetero/scheduler.hpp"
#include "hetero/work_queue.hpp"
#include "obs/phase.hpp"
#include "reduce/reduced_graph.hpp"

namespace eardec::mcb {
namespace {

/// Solves one biconnected component end to end (contract, solve, expand),
/// returning cycles already remapped to the parent graph's edge ids.
McbResult solve_component(const Graph& g,
                          const connectivity::SubgraphView& view,
                          const McbOptions& options, hetero::ThreadPool* pool,
                          hetero::Device* device) {
  EARDEC_TRACE_SCOPE("mcb.component", "edges", view.graph.num_edges());
  double reduce_s = 0;
  std::optional<reduce::ReducedGraph> reduced;
  const Graph* solve_graph = &view.graph;
  {
    obs::ScopedPhase phase(reduce_s, "mcb.reduce", "mcb.phase.reduce_s");
    if (options.use_ear_decomposition) {
      reduced.emplace(view.graph, reduce::ReduceMode::ForMcb);
      solve_graph = &reduced->graph();
    }
  }

  McbResult comp = mm_mcb(*solve_graph, options, pool, device);
  comp.stats.reduce_seconds = reduce_s;

  // Expand every contracted edge back into its chain (Lemma 3.1's
  // post-processing) and remap component-local edges to ids in g.
  comp.total_weight = 0;
  for (Cycle& cycle : comp.basis) {
    std::vector<EdgeId> expanded;
    for (const EdgeId e : cycle.edges) {
      if (reduced) {
        for (const EdgeId ve : reduced->expand_edge(e)) {
          expanded.push_back(view.edge_to_parent[ve]);
        }
      } else {
        expanded.push_back(view.edge_to_parent[e]);
      }
    }
    cycle.edges = std::move(expanded);
    cycle.weight = cycle_weight(g, cycle.edges);
    comp.total_weight += cycle.weight;
  }
  return comp;
}

}  // namespace

McbResult minimum_cycle_basis(const Graph& g, const McbOptions& options_in) {
  McbResult result;

  // The heterogeneous schedule is dynamic: whichever side is faster takes
  // the work. On a host with a single hardware thread the software device
  // only time-slices against the CPU, so the optimal dynamic schedule IS
  // the sequential one — degrade instead of oversubscribing.
  McbOptions options = options_in;
  if (options.mode == ExecutionMode::Heterogeneous &&
      !hetero::host_has_parallelism()) {
    options.mode = ExecutionMode::Sequential;
  }

  std::optional<hetero::ThreadPool> pool;
  std::optional<hetero::Device> device;
  if (options.mode == ExecutionMode::Multicore ||
      options.mode == ExecutionMode::Heterogeneous) {
    pool.emplace(options.cpu_threads);
  }
  if (options.mode == ExecutionMode::DeviceOnly ||
      options.mode == ExecutionMode::Heterogeneous) {
    device.emplace(options.device);
  }

  // Pre-processing: per-component split (no MCB cycle spans two biconnected
  // components). Bridges contribute nothing to the cycle space; self-loop
  // components contribute themselves.
  const auto bcc = connectivity::biconnected_components(g);
  std::vector<std::uint32_t> cyclic;  // components with at least one cycle
  std::vector<connectivity::SubgraphView> views;
  for (std::uint32_t c = 0; c < bcc.num_components; ++c) {
    auto view = connectivity::extract_component(g, bcc, c);
    if (view.graph.num_edges() + 1 <= view.graph.num_vertices()) continue;
    cyclic.push_back(c);
    views.push_back(std::move(view));
  }

  std::vector<McbResult> per_component(views.size());
  if (views.size() <= 1 || options.mode == ExecutionMode::Sequential) {
    // Single (or no) cyclic component: all parallelism lives inside the
    // solver's phases.
    for (std::size_t i = 0; i < views.size(); ++i) {
      per_component[i] = solve_component(g, views[i], options,
                                         pool ? &*pool : nullptr,
                                         device ? &*device : nullptr);
    }
  } else {
    // Many components: the paper's outer work units — one per biconnected
    // component, sorted by size, CPU threads and the device draining the
    // queue from opposite ends (Section 2.3 applied to MCB). Inner solver
    // runs stay single-resource to avoid nested pools.
    std::vector<hetero::WorkUnit> units;
    units.reserve(views.size());
    for (std::size_t i = 0; i < views.size(); ++i) {
      units.push_back({static_cast<std::uint32_t>(i),
                       views[i].graph.num_edges()});
    }
    McbOptions cpu_opts = options;
    cpu_opts.mode = ExecutionMode::Sequential;
    McbOptions dev_opts = options;
    dev_opts.mode = ExecutionMode::DeviceOnly;
    const auto cpu_fn = [&](const hetero::WorkUnit& wu, unsigned) {
      per_component[wu.id] =
          solve_component(g, views[wu.id], cpu_opts, nullptr, nullptr);
    };
    const auto device_fn = [&](const hetero::WorkUnit& wu, unsigned) {
      per_component[wu.id] =
          solve_component(g, views[wu.id], dev_opts, nullptr, &*device);
    };
    hetero::WorkQueue queue(std::move(units));
    switch (options.mode) {
      case ExecutionMode::Multicore:
        hetero::run_cpu_only(queue, options.cpu_threads, cpu_fn);
        break;
      case ExecutionMode::DeviceOnly:
        while (true) {
          const auto batch = queue.take_heavy(1);
          if (batch.empty()) break;
          device_fn(batch.front(), 0);
        }
        break;
      case ExecutionMode::Heterogeneous:
        hetero::run_heterogeneous(queue,
                                  {.cpu_threads = options.cpu_threads,
                                   .cpu_batch = 1,
                                   .device_batch = 1},
                                  cpu_fn, device_fn);
        break;
      case ExecutionMode::Sequential:
        break;  // handled above
    }
  }

  // Deterministic merge in component order, regardless of scheduling.
  for (McbResult& comp : per_component) {
    result.total_weight += comp.total_weight;
    result.stats.accumulate(comp.stats);
    for (Cycle& cycle : comp.basis) {
      result.basis.push_back(std::move(cycle));
    }
  }
  return result;
}

bool validate_basis(const Graph& g, const McbResult& result) {
  // Dimension must equal m - n + #components.
  const auto cc = connectivity::connected_components(g);
  const auto expected = static_cast<std::int64_t>(g.num_edges()) -
                        g.num_vertices() + cc.count;
  if (static_cast<std::int64_t>(result.basis.size()) != expected) return false;

  const SpanningTree tree = build_spanning_tree(g);
  std::vector<BitVector> vectors;
  vectors.reserve(result.basis.size());
  Weight total = 0;
  for (const Cycle& c : result.basis) {
    if (!is_cycle_space_element(g, c.edges)) return false;
    if (std::abs(cycle_weight(g, c.edges) - c.weight) > 1e-6) return false;
    total += c.weight;
    vectors.push_back(restricted_vector(c, tree));
  }
  if (std::abs(total - result.total_weight) > 1e-6) return false;
  return gf2_independent(vectors);
}

}  // namespace eardec::mcb
