#include "mcb/fvs.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <limits>

namespace eardec::mcb {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

std::vector<VertexId> feedback_vertex_set(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> fvs;
  std::vector<bool> removed(n, false);
  std::vector<std::size_t> deg(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.degree(v);

  // Self-loop endpoints must be in any FVS.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.is_self_loop(e)) {
      const VertexId v = g.endpoints(e).first;
      if (!removed[v]) {
        removed[v] = true;
        fvs.push_back(v);
      }
    }
  }

  const auto strip = [&](std::deque<VertexId> queue) {
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      if (removed[v] || deg[v] > 1) continue;
      removed[v] = true;
      for (const graph::HalfEdge& he : g.neighbors(v)) {
        if (removed[he.to]) continue;
        if (--deg[he.to] <= 1) queue.push_back(he.to);
      }
    }
  };

  // Recompute degrees after the self-loop removals, then peel.
  const auto recount = [&] {
    std::deque<VertexId> low;
    for (VertexId v = 0; v < n; ++v) {
      if (removed[v]) continue;
      std::size_t d = 0;
      for (const graph::HalfEdge& he : g.neighbors(v)) {
        if (!removed[he.to]) ++d;
      }
      deg[v] = d;
      if (d <= 1) low.push_back(v);
    }
    strip(std::move(low));
  };
  recount();

  while (true) {
    // Any remaining edge implies a cycle (min residual degree >= 2).
    VertexId pick = graph::kNullVertex;
    std::size_t best = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (!removed[v] && deg[v] > best) {
        best = deg[v];
        pick = v;
      }
    }
    if (pick == graph::kNullVertex || best == 0) break;
    removed[pick] = true;
    fvs.push_back(pick);
    std::deque<VertexId> low;
    for (const graph::HalfEdge& he : g.neighbors(pick)) {
      if (removed[he.to]) continue;
      if (--deg[he.to] <= 1) low.push_back(he.to);
    }
    strip(std::move(low));
  }
  std::sort(fvs.begin(), fvs.end());
  return fvs;
}

bool is_feedback_vertex_set(const Graph& g,
                            const std::vector<VertexId>& fvs) {
  std::vector<bool> in_fvs(g.num_vertices(), false);
  for (const VertexId v : fvs) in_fvs[v] = true;
  // The residual graph is a forest iff a union-find insertion of its edges
  // never closes a cycle (self-loops and parallel duplicates close one).
  std::vector<VertexId> parent(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) parent[v] = v;
  const auto find = [&parent](VertexId x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (in_fvs[u] || in_fvs[v]) continue;
    const VertexId ru = find(u), rv = find(v);
    if (ru == rv) return false;  // closes a cycle
    parent[ru] = rv;
  }
  return true;
}

namespace {

/// Mutable residual view for the Bafna–Berman–Fujito elimination loop.
struct Residual {
  const Graph* g;
  std::vector<bool> alive;
  std::vector<std::size_t> deg;

  explicit Residual(const Graph& graph)
      : g(&graph), alive(graph.num_vertices(), true),
        deg(graph.num_vertices()) {
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      deg[v] = graph.degree(v);
    }
  }

  void remove(VertexId v) {
    alive[v] = false;
    for (const graph::HalfEdge& he : g->neighbors(v)) {
      if (he.to == v) continue;  // the self-loop dies with v
      if (alive[he.to]) --deg[he.to];
    }
    deg[v] = 0;
  }

  /// Strips degree <= 1 vertices ("cleanup" in the BBF paper).
  void cleanup() {
    std::deque<VertexId> low;
    for (VertexId v = 0; v < g->num_vertices(); ++v) {
      if (alive[v] && deg[v] <= 1) low.push_back(v);
    }
    while (!low.empty()) {
      const VertexId v = low.front();
      low.pop_front();
      if (!alive[v] || deg[v] > 1) continue;
      alive[v] = false;
      for (const graph::HalfEdge& he : g->neighbors(v)) {
        if (he.to == v || !alive[he.to]) continue;
        if (--deg[he.to] <= 1) low.push_back(he.to);
      }
      deg[v] = 0;
    }
  }

  [[nodiscard]] bool has_edges() const {
    for (VertexId v = 0; v < g->num_vertices(); ++v) {
      if (alive[v] && deg[v] > 0) return true;
    }
    return false;
  }

  /// Looks for a semidisjoint cycle: after cleanup (min residual degree
  /// >= 2), walk from any degree-2 vertex along its chain; if the walk
  /// closes on its start or on a single higher-degree vertex reached from
  /// both ends, those vertices form one. Returns the cycle's vertices, or
  /// an empty vector if none exists.
  [[nodiscard]] std::vector<VertexId> find_semidisjoint_cycle() const {
    std::vector<bool> visited(g->num_vertices(), false);
    for (VertexId start = 0; start < g->num_vertices(); ++start) {
      if (!alive[start] || deg[start] != 2 || visited[start]) continue;
      // Walk both directions until a non-degree-2 vertex (or loop closure).
      std::vector<VertexId> cycle{start};
      visited[start] = true;
      std::array<VertexId, 2> ends{};
      std::size_t end_count = 0;
      bool closed = false;
      // Collect the two residual neighbours of a degree-2 vertex.
      const auto neighbours = [this](VertexId v) {
        std::array<std::pair<VertexId, graph::EdgeId>, 2> out{};
        std::size_t k = 0;
        for (const graph::HalfEdge& he : g->neighbors(v)) {
          if (alive[he.to] && k < 2) out[k++] = {he.to, he.edge};
        }
        return out;
      };
      for (std::size_t dir = 0; dir < 2 && !closed; ++dir) {
        VertexId prev = start;
        graph::EdgeId prev_edge = neighbours(start)[dir].second;
        VertexId cur = neighbours(start)[dir].first;
        while (true) {
          if (cur == start) {  // pure cycle
            closed = true;
            break;
          }
          if (deg[cur] != 2) {
            ends[end_count++] = cur;
            break;
          }
          if (visited[cur]) break;  // met the other direction's walk
          visited[cur] = true;
          cycle.push_back(cur);
          const auto nb = neighbours(cur);
          const auto [next, next_edge] =
              nb[0].second == prev_edge ? nb[1] : nb[0];
          prev = cur;
          prev_edge = next_edge;
          cur = next;
          (void)prev;
        }
      }
      if (closed) return cycle;  // all degree-2: semidisjoint
      if (end_count == 2 && ends[0] == ends[1]) {
        cycle.push_back(ends[0]);  // one higher-degree vertex: semidisjoint
        return cycle;
      }
    }
    return {};
  }
};

}  // namespace

std::vector<VertexId> feedback_vertex_set_2approx(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<double> w(n, 1.0);
  std::vector<VertexId> stack;  // elimination order for reverse delete
  Residual r(g);

  // Self-loop endpoints are unconditionally in every FVS.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.is_self_loop(e)) {
      const VertexId v = g.endpoints(e).first;
      if (r.alive[v]) {
        r.remove(v);
        stack.push_back(v);
      }
    }
  }
  r.cleanup();

  while (r.has_edges()) {
    const auto sd = r.find_semidisjoint_cycle();
    if (!sd.empty()) {
      double gamma = std::numeric_limits<double>::infinity();
      for (const VertexId v : sd) gamma = std::min(gamma, w[v]);
      for (const VertexId v : sd) w[v] -= gamma;
    } else {
      double gamma = std::numeric_limits<double>::infinity();
      for (VertexId v = 0; v < n; ++v) {
        if (r.alive[v] && r.deg[v] >= 2) {
          gamma = std::min(gamma, w[v] / (static_cast<double>(r.deg[v]) - 1));
        }
      }
      for (VertexId v = 0; v < n; ++v) {
        if (r.alive[v] && r.deg[v] >= 2) {
          w[v] -= gamma * (static_cast<double>(r.deg[v]) - 1);
        }
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (r.alive[v] && r.deg[v] >= 2 && w[v] <= 1e-12) {
        r.remove(v);
        stack.push_back(v);
      }
    }
    r.cleanup();
  }

  // Reverse delete: drop vertices whose removal keeps the set an FVS.
  std::vector<bool> in_set(n, false);
  for (const VertexId v : stack) in_set[v] = true;
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    in_set[*it] = false;
    std::vector<VertexId> candidate;
    for (VertexId v = 0; v < n; ++v) {
      if (in_set[v]) candidate.push_back(v);
    }
    if (!is_feedback_vertex_set(g, candidate)) in_set[*it] = true;
  }
  std::vector<VertexId> fvs;
  for (VertexId v = 0; v < n; ++v) {
    if (in_set[v]) fvs.push_back(v);
  }
  return fvs;
}

}  // namespace eardec::mcb
