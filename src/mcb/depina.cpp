#include "mcb/depina.hpp"

#include <stdexcept>

#include "mcb/signed_graph.hpp"
#include "mcb/witness_matrix.hpp"

namespace eardec::mcb {

DePinaResult depina_mcb(const Graph& g) {
  DePinaResult result;
  const SpanningTree tree = build_spanning_tree(g);
  const std::size_t f = tree.dimension();
  if (f == 0) return result;

  WitnessMatrix witness(f);
  Gf2KernelStats gf2;

  for (std::size_t i = 0; i < f; ++i) {
    auto cycle = min_odd_cycle(g, tree, witness.view(i));
    if (!cycle) {
      throw std::logic_error("depina_mcb: no odd cycle found for a witness");
    }
    const BitVector ci = restricted_vector(*cycle, tree);
    // Independence test: make later witnesses orthogonal to C_i. The
    // blocked pass skips the self-pair and early-exits when C_i's word
    // range misses every remaining witness.
    gf2.accumulate(witness.orthogonalize(i, ci, i + 1, f));
#ifdef EARDEC_SANITIZE_BUILD
    // Post-loop invariant: every remaining witness is orthogonal to C_i.
    for (std::size_t j = i + 1; j < f; ++j) {
      if (witness.dot(j, ci)) {
        throw std::logic_error(
            "depina_mcb: witness orthogonality invariant violated");
      }
    }
#endif
    result.total_weight += cycle->weight;
    result.basis.push_back(std::move(*cycle));
  }
  gf2.export_to_metrics();
  return result;
}

DePinaResult depina_mcb_reference(const Graph& g) {
  DePinaResult result;
  const SpanningTree tree = build_spanning_tree(g);
  const std::size_t f = tree.dimension();
  if (f == 0) return result;

  std::vector<BitVector> witness;
  witness.reserve(f);
  for (std::size_t i = 0; i < f; ++i) witness.push_back(BitVector::unit(f, i));

  for (std::size_t i = 0; i < f; ++i) {
    auto cycle = min_odd_cycle(g, tree, witness[i]);
    if (!cycle) {
      throw std::logic_error(
          "depina_mcb_reference: no odd cycle found for a witness");
    }
    const BitVector ci = restricted_vector(*cycle, tree);
    // Independence test: make later witnesses orthogonal to C_i.
    for (std::size_t j = i + 1; j < f; ++j) {
      if (ci.dot(witness[j])) witness[j].xor_assign(witness[i]);
    }
    result.total_weight += cycle->weight;
    result.basis.push_back(std::move(*cycle));
  }
  return result;
}

}  // namespace eardec::mcb
