#include "mcb/gf2.hpp"

#include <bit>
#include <stdexcept>

namespace eardec::mcb {

void BitVector::xor_assign(const BitVector& other) {
  if (other.bits_ != bits_) {
    throw std::invalid_argument("BitVector::xor_assign: size mismatch");
  }
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] ^= other.words_[w];
  }
}

bool BitVector::dot(const BitVector& other) const {
  if (other.bits_ != bits_) {
    throw std::invalid_argument("BitVector::dot: size mismatch");
  }
  std::uint64_t acc = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    acc ^= words_[w] & other.words_[w];
  }
  return (std::popcount(acc) & 1) != 0;
}

std::size_t BitVector::popcount() const {
  std::size_t c = 0;
  for (const std::uint64_t w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool BitVector::any() const {
  for (const std::uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

std::size_t gf2_rank(std::vector<BitVector> vectors) {
  std::size_t rank = 0;
  if (vectors.empty()) return 0;
  const std::size_t bits = vectors.front().size();
  for (std::size_t col = 0; col < bits && rank < vectors.size(); ++col) {
    // Find a pivot row with a 1 in this column.
    std::size_t pivot = rank;
    while (pivot < vectors.size() && !vectors[pivot].get(col)) ++pivot;
    if (pivot == vectors.size()) continue;
    std::swap(vectors[rank], vectors[pivot]);
    for (std::size_t r = 0; r < vectors.size(); ++r) {
      if (r != rank && vectors[r].get(col)) {
        vectors[r].xor_assign(vectors[rank]);
      }
    }
    ++rank;
  }
  return rank;
}

bool gf2_independent(const std::vector<BitVector>& vectors) {
  return gf2_rank(vectors) == vectors.size();
}

}  // namespace eardec::mcb
