// Packed GF(2) vectors — witnesses and restricted cycle vectors live in
// {0,1}^f with f = |E'| (non-tree edges). Inner products and symmetric
// differences are the inner loops of De Pina's algorithm, so they are
// word-parallel; the device witness-update kernel works on the same words.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace eardec::mcb {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  /// Unit vector e_i in {0,1}^bits.
  static BitVector unit(std::size_t bits, std::size_t i) {
    BitVector v(bits);
    v.set(i, true);
    return v;
  }

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }

  void set(std::size_t i, bool value) {
    const std::uint64_t mask = 1ull << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }
  [[nodiscard]] bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// this ^= other (symmetric difference; De Pina's witness update).
  void xor_assign(const BitVector& other);

  /// GF(2) inner product: parity of the AND of the two vectors.
  [[nodiscard]] bool dot(const BitVector& other) const;

  [[nodiscard]] std::size_t popcount() const;
  [[nodiscard]] bool any() const;

  /// Raw 64-bit words (for device kernels and tests).
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::span<std::uint64_t> words() noexcept { return words_; }

  bool operator==(const BitVector&) const = default;

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Rank of a set of vectors over GF(2) (destructive Gaussian elimination on
/// a copy). Used to validate basis independence.
[[nodiscard]] std::size_t gf2_rank(std::vector<BitVector> vectors);

/// True iff the vectors are linearly independent over GF(2).
[[nodiscard]] bool gf2_independent(const std::vector<BitVector>& vectors);

}  // namespace eardec::mcb
