// Signed (±) auxiliary graph search for the minimum-weight cycle that is
// non-orthogonal to a witness S (paper Section 3.2.1): duplicate every
// vertex into x+ and x-; an edge e keeps the sign iff S(e) = 0 and crosses
// signs iff S(e) = 1. A shortest x+ -> x- path then projects to a minimum
// cycle through x whose S-parity is odd. Minimizing over starting vertices
// gives De Pina's step-3 cycle exactly.
#pragma once

#include <optional>

#include "graph/graph.hpp"
#include "mcb/cycle.hpp"
#include "mcb/gf2.hpp"
#include "mcb/spanning_tree.hpp"
#include "mcb/witness_matrix.hpp"

namespace eardec::mcb {

/// Minimum-weight cycle C with <C, S> = 1, where S is indexed by the
/// non-tree order of `tree` (bits for tree edges are implicitly 0).
/// Returns nullopt iff no such cycle exists (S = 0 or graph is a forest).
/// When the view carries a sparse support list the crossing edges are read
/// straight off it — no scan over the zero words of S.
[[nodiscard]] std::optional<Cycle> min_odd_cycle(const Graph& g,
                                                 const SpanningTree& tree,
                                                 const WitnessView& s);

/// BitVector convenience overload (dense view, no support list).
[[nodiscard]] std::optional<Cycle> min_odd_cycle(const Graph& g,
                                                 const SpanningTree& tree,
                                                 const BitVector& s);

}  // namespace eardec::mcb
