// Feedback vertex set: a vertex set hitting every cycle. The MCB search
// only needs *validity* (Horton cycles rooted at an FVS are a superset of
// an MCB); a smaller set merely means fewer shortest-path trees. We use the
// classic peel-and-pick greedy (iteratively strip degree <= 1 vertices,
// then move a maximum-degree vertex into the set), the practical stand-in
// for the 2-approximation of Bafna–Berman–Fujito the paper cites.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace eardec::mcb {

/// Computes a feedback vertex set of g. Self-loop endpoints are always
/// included (a self-loop is a cycle through its endpoint alone).
[[nodiscard]] std::vector<graph::VertexId> feedback_vertex_set(
    const graph::Graph& g);

/// The 2-approximation of Bafna, Berman, and Fujito the paper cites [3]:
/// local-ratio weight decomposition with special handling of semidisjoint
/// cycles (cycles whose vertices all have degree two except at most one),
/// followed by a reverse-delete minimality pass. Unit vertex weights here
/// (the MCB use only needs the set small, not weighted).
[[nodiscard]] std::vector<graph::VertexId> feedback_vertex_set_2approx(
    const graph::Graph& g);

/// Validity check: g minus `fvs` is a forest (no cycles, incl. parallels).
[[nodiscard]] bool is_feedback_vertex_set(
    const graph::Graph& g, const std::vector<graph::VertexId>& fvs);

}  // namespace eardec::mcb
