#include "mcb/signed_graph.hpp"

#include <algorithm>

#include "graph/builder.hpp"
#include "sssp/dijkstra.hpp"

namespace eardec::mcb {
namespace {

/// XOR-support of an edge multiset (edges used an odd number of times).
std::vector<EdgeId> xor_support(std::vector<EdgeId> edges) {
  std::sort(edges.begin(), edges.end());
  std::vector<EdgeId> out;
  for (std::size_t i = 0; i < edges.size();) {
    std::size_t j = i;
    while (j < edges.size() && edges[j] == edges[i]) ++j;
    if ((j - i) % 2 == 1) out.push_back(edges[i]);
    i = j;
  }
  return out;
}

}  // namespace

std::optional<Cycle> min_odd_cycle(const Graph& g, const SpanningTree& tree,
                                   const WitnessView& s) {
  const VertexId n = g.num_vertices();

  // The crossing edges (S(e) = 1). A sparse witness hands them over
  // directly — its support indexes the non-tree order — so nothing scans
  // the m edges (or the zero words of S) to find them.
  std::vector<std::uint8_t> crossing(g.num_edges(), 0);
  bool any_crossing = false;
  if (s.has_support()) {
    for (const std::uint32_t idx : s.support()) {
      crossing[tree.non_tree_edges[idx]] = 1;
      any_crossing = true;
    }
  } else {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const std::uint32_t idx = tree.non_tree_index[e];
      if (idx != kNotNonTree && s.get(idx)) {
        crossing[e] = 1;
        any_crossing = true;
      }
    }
  }
  if (!any_crossing) return std::nullopt;  // S = 0: no odd cycle exists

  // Build the +/- auxiliary graph: vertex x maps to x (plus) and x + n
  // (minus). Edge weights carry over; the aux edge remembers its origin.
  graph::Builder b(2 * n);
  std::vector<EdgeId> origin;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (g.is_self_loop(e)) {
      if (crossing[e]) {
        // A sign-crossing self-loop connects u+ and u-.
        b.add_edge(u, u + n, g.weight(e));
        origin.push_back(e);
      }
      // An even self-loop is useless for odd-parity cycles; skip it.
      continue;
    }
    if (crossing[e]) {
      b.add_edge(u, v + n, g.weight(e));
      origin.push_back(e);
      b.add_edge(u + n, v, g.weight(e));
      origin.push_back(e);
    } else {
      b.add_edge(u, v, g.weight(e));
      origin.push_back(e);
      b.add_edge(u + n, v + n, g.weight(e));
      origin.push_back(e);
    }
  }
  const Graph aux = std::move(b).build();

  // Only vertices incident to a crossing edge can lie on an odd cycle.
  std::vector<VertexId> starts;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (crossing[e]) {
      const auto [u, v] = g.endpoints(e);
      starts.push_back(u);
      starts.push_back(v);
    }
  }
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());

  std::optional<Cycle> best;
  for (const VertexId x : starts) {
    const auto sp = sssp::dijkstra(aux, x);
    if (sp.dist[x + n] == graph::kInfWeight) continue;
    if (best && best->weight <= sp.dist[x + n]) continue;
    // Walk the aux path and project to original edges.
    std::vector<EdgeId> walk;
    for (VertexId cur = x + n; cur != x;) {
      walk.push_back(origin[sp.parent_edge[cur]]);
      cur = sp.parent[cur];
    }
    auto support = xor_support(std::move(walk));
    if (support.empty()) continue;
    Cycle c{support, cycle_weight(g, support)};
    if (!best || c.weight < best->weight) best = std::move(c);
  }
  return best;
}

std::optional<Cycle> min_odd_cycle(const Graph& g, const SpanningTree& tree,
                                   const BitVector& s) {
  return min_odd_cycle(g, tree, WitnessView(s));
}

}  // namespace eardec::mcb
