#include "mcb/witness_matrix.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/pmu.hpp"
#include "obs/trace.hpp"

namespace eardec::mcb {
namespace {

/// Live word range [lo, hi) of a packed vector; (0, 0) when all-zero.
std::pair<std::uint32_t, std::uint32_t> word_range(
    std::span<const std::uint64_t> words) {
  std::uint32_t lo = 0;
  std::uint32_t hi = static_cast<std::uint32_t>(words.size());
  while (lo < hi && words[lo] == 0) ++lo;
  while (hi > lo && words[hi - 1] == 0) --hi;
  if (lo >= hi) return {0, 0};
  return {lo, hi};
}

/// Sorted symmetric difference of two sorted index lists, into `out`.
void symmetric_difference(std::span<const std::uint32_t> a,
                          std::span<const std::uint32_t> b,
                          std::vector<std::uint32_t>& out) {
  out.clear();
  out.reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      out.push_back(a[i++]);
    } else if (b[j] < a[i]) {
      out.push_back(b[j++]);
    } else {
      ++i;
      ++j;
    }
  }
  out.insert(out.end(), a.begin() + static_cast<std::ptrdiff_t>(i), a.end());
  out.insert(out.end(), b.begin() + static_cast<std::ptrdiff_t>(j), b.end());
}

}  // namespace

void Gf2KernelStats::accumulate(const Gf2KernelStats& o) {
  dots += o.dots;
  sparse_dots += o.sparse_dots;
  rows_updated += o.rows_updated;
  words_xored += o.words_xored;
  range_skips += o.range_skips;
  promotions += o.promotions;
  cpu_rows += o.cpu_rows;
  device_rows += o.device_rows;
}

void Gf2KernelStats::export_to_metrics() const {
  // One registry hit per solve, not per kernel call: callers accumulate a
  // local Gf2KernelStats and export once.
  auto& reg = obs::MetricsRegistry::instance();
  static obs::Counter& dots_c = reg.counter("mcb.gf2.dots");
  static obs::Counter& sparse_dots_c = reg.counter("mcb.gf2.sparse_dots");
  static obs::Counter& rows_updated_c = reg.counter("mcb.gf2.rows_updated");
  static obs::Counter& words_xored_c = reg.counter("mcb.gf2.words_xored");
  static obs::Counter& range_skips_c = reg.counter("mcb.gf2.range_skips");
  static obs::Counter& promotions_c = reg.counter("mcb.gf2.sparse_promotions");
  static obs::Counter& cpu_rows_c = reg.counter("mcb.gf2.cpu_rows");
  static obs::Counter& device_rows_c = reg.counter("mcb.gf2.device_rows");
  if (dots != 0) dots_c.add(dots);
  if (sparse_dots != 0) sparse_dots_c.add(sparse_dots);
  if (rows_updated != 0) rows_updated_c.add(rows_updated);
  if (words_xored != 0) words_xored_c.add(words_xored);
  if (range_skips != 0) range_skips_c.add(range_skips);
  if (promotions != 0) promotions_c.add(promotions);
  if (cpu_rows != 0) cpu_rows_c.add(cpu_rows);
  if (device_rows != 0) device_rows_c.add(device_rows);
}

WitnessMatrix::WitnessMatrix(std::size_t bits, std::size_t crossover)
    : bits_(bits),
      wpr_((bits + 63) / 64),
      crossover_(crossover == kAutoCrossover
                     ? std::min(kDefaultSparseCrossover, 2 * ((bits + 63) / 64))
                     : crossover),
      words_(bits * ((bits + 63) / 64), 0),
      meta_(bits),
      support_(bits) {
  for (std::size_t i = 0; i < bits_; ++i) {
    row_ptr(i)[i >> 6] = 1ull << (i & 63);
    meta_[i].lo = static_cast<std::uint32_t>(i >> 6);
    meta_[i].hi = meta_[i].lo + 1;
    meta_[i].sparse = crossover_ > 0;
    if (meta_[i].sparse) support_[i] = {static_cast<std::uint32_t>(i)};
  }
}

WitnessView WitnessMatrix::view(std::size_t j) const {
  return WitnessView({row_ptr(j), wpr_}, bits_,
                     meta_[j].sparse ? &support_[j] : nullptr);
}

bool WitnessMatrix::get(std::size_t j, std::size_t i) const {
  return (row_ptr(j)[i >> 6] >> (i & 63)) & 1u;
}

std::size_t WitnessMatrix::popcount(std::size_t j) const {
  std::size_t n = 0;
  const std::uint64_t* r = row_ptr(j);
  for (std::size_t w = meta_[j].lo; w < meta_[j].hi; ++w) {
    n += static_cast<std::size_t>(std::popcount(r[w]));
  }
  return n;
}

bool WitnessMatrix::dot(std::size_t j, const BitVector& v) const {
  const auto vw = v.words();
  const std::uint64_t* r = row_ptr(j);
  const std::size_t words = std::min<std::size_t>(wpr_, vw.size());
  std::uint64_t acc = 0;
  for (std::size_t w = 0; w < words; ++w) acc ^= r[w] & vw[w];
  return (std::popcount(acc) & 1) != 0;
}

void WitnessMatrix::xor_pivot_into(std::size_t pivot, std::size_t j,
                                   Gf2KernelStats& st,
                                   std::vector<std::uint32_t>& merge_scratch) {
  const RowMeta pm = meta_[pivot];  // copy: meta_[j] updates must not alias
  RowMeta& m = meta_[j];
  std::uint64_t* rj = row_ptr(j);

  if (pm.sparse) {
    // A handful of bit flips beats streaming the pivot's word range.
    for (const std::uint32_t b : support_[pivot]) {
      rj[b >> 6] ^= 1ull << (b & 63);
    }
    st.words_xored += support_[pivot].size();
  } else {
    const std::uint64_t* rp = row_ptr(pivot);
    std::size_t w = pm.lo;
    // Four independent streams per step keep the XOR sweep ahead of the
    // load latency (the same unroll the device kernel gets from its warps).
    for (; w + 4 <= pm.hi; w += 4) {
      rj[w] ^= rp[w];
      rj[w + 1] ^= rp[w + 1];
      rj[w + 2] ^= rp[w + 2];
      rj[w + 3] ^= rp[w + 3];
    }
    for (; w < pm.hi; ++w) rj[w] ^= rp[w];
    st.words_xored += pm.hi - pm.lo;
  }

  if (m.sparse) {
    if (pm.sparse) {
      symmetric_difference(support_[j], support_[pivot], merge_scratch);
      if (merge_scratch.size() <= crossover_) {
        if (merge_scratch.empty()) {
          m.lo = 0;
          m.hi = 0;
        } else {
          m.lo = merge_scratch.front() >> 6;
          m.hi = (merge_scratch.back() >> 6) + 1;
        }
        support_[j].swap(merge_scratch);
        ++st.rows_updated;
        return;
      }
    }
    // Densify: the list either crossed the threshold or the pivot has no
    // list to merge. One-way — once dense, a row stays dense.
    m.sparse = false;
    support_[j].clear();
    support_[j].shrink_to_fit();
    ++st.promotions;
  }
  if (m.lo >= m.hi) {
    m.lo = pm.lo;
    m.hi = pm.hi;
  } else if (pm.lo < pm.hi) {
    m.lo = std::min(m.lo, pm.lo);
    m.hi = std::max(m.hi, pm.hi);
  }
  ++st.rows_updated;
}

Gf2KernelStats WitnessMatrix::orthogonalize(std::size_t pivot,
                                            const BitVector& ci,
                                            std::size_t begin,
                                            std::size_t end) {
  Gf2KernelStats st;
  if (begin >= end) return st;
  EARDEC_TRACE_SCOPE_PMU("mcb.gf2.orthogonalize", "rows", end - begin);
  st.cpu_rows += end - begin;

  const auto cw = ci.words();
  const auto [clo, chi] = word_range(cw);
  if (clo >= chi) {
    // C_i restricted to E' is empty: every inner product is 0.
    st.range_skips += end - begin;
    return st;
  }

  // Early-exit: if C_i's word range misses every remaining row's live
  // range, the whole sweep is a no-op and no row words are touched.
  bool any_overlap = false;
  for (std::size_t j = begin; j < end; ++j) {
    if (j == pivot) continue;
    if (meta_[j].lo < chi && meta_[j].hi > clo) {
      any_overlap = true;
      break;
    }
  }
  if (!any_overlap) {
    st.range_skips += end - begin;
    return st;
  }

  // One merge buffer per sweep (not per matrix): concurrent sweeps over
  // disjoint row chunks each get their own, so they never race.
  std::vector<std::uint32_t> merge_scratch;
  for (std::size_t j = begin; j < end; ++j) {
    if (j == pivot) continue;  // the self-pair would zero the pivot
    const RowMeta& m = meta_[j];
    if (m.lo >= chi || m.hi <= clo) {
      ++st.range_skips;
      continue;
    }
    ++st.dots;
    bool odd = false;
    if (m.sparse) {
      ++st.sparse_dots;
      unsigned parity = 0;
      for (const std::uint32_t b : support_[j]) {
        parity ^= static_cast<unsigned>((cw[b >> 6] >> (b & 63)) & 1u);
      }
      odd = parity != 0;
    } else {
      const std::uint32_t lo = std::max(m.lo, clo);
      const std::uint32_t hi = std::min(m.hi, chi);
      const std::uint64_t* r = row_ptr(j);
      std::uint64_t a0 = 0;
      std::uint64_t a1 = 0;
      std::uint64_t a2 = 0;
      std::uint64_t a3 = 0;
      std::size_t w = lo;
      for (; w + 4 <= hi; w += 4) {
        a0 ^= r[w] & cw[w];
        a1 ^= r[w + 1] & cw[w + 1];
        a2 ^= r[w + 2] & cw[w + 2];
        a3 ^= r[w + 3] & cw[w + 3];
      }
      for (; w < hi; ++w) a0 ^= r[w] & cw[w];
      odd = (std::popcount(a0 ^ a1 ^ a2 ^ a3) & 1) != 0;
    }
    if (odd) xor_pivot_into(pivot, j, st, merge_scratch);
  }
  return st;
}

WitnessMatrix::PendingDeviceUpdate WitnessMatrix::orthogonalize_device_async(
    std::size_t pivot, const BitVector& ci, std::size_t begin, std::size_t end,
    hetero::Device& device) {
  PendingDeviceUpdate pending;
  pending.matrix_ = this;
  pending.pivot_ = pivot;
  pending.begin_ = begin;
  pending.end_ = end < begin ? begin : end;
  pending.ci_ = ci;  // the kernel reads the copy, so the caller's may die
  if (pending.begin_ >= pending.end_) return pending;

  pending.updated_.assign(pending.end_ - pending.begin_, 0);
  const std::uint64_t* cw = pending.ci_.words().data();
  const std::size_t cw_words = pending.ci_.words().size();
  const std::uint64_t* pivot_row = row_ptr(pivot);
  std::uint64_t* arena = words_.data();
  std::uint8_t* updated = pending.updated_.data();
  const std::size_t wpr = wpr_;
  const std::size_t words = std::min(wpr, cw_words);
  // The paper's block-per-witness kernel (Section 3.3.2): lanes AND the row
  // with C_i into shared memory, a tree reduction XORs the partial words
  // (XOR preserves popcount parity), and odd blocks apply the symmetric
  // difference with the pivot row in a final cooperative pass.
  pending.async_ = device.launch_blocks_async(
      pending.end_ - pending.begin_, words,
      [arena, updated, cw, pivot_row, words, wpr,
       begin](hetero::Device::Block& blk) {
        std::uint64_t* rj = arena + (begin + blk.id()) * wpr;
        auto shared = blk.shared();
        blk.for_each_lane(words,
                          [&](std::size_t w) { shared[w] = rj[w] & cw[w]; });
        for (std::size_t stride = 1; stride < words; stride *= 2) {
          blk.for_each_lane(words / (2 * stride) + 1, [&](std::size_t k) {
            const std::size_t lo = 2 * stride * k;
            if (lo + stride < words) shared[lo] ^= shared[lo + stride];
          });
        }
        if (std::popcount(shared[0]) % 2 == 1) {
          blk.for_each_lane(words,
                            [&](std::size_t w) { rj[w] ^= pivot_row[w]; });
          updated[blk.id()] = 1;
        }
      });
  return pending;
}

Gf2KernelStats WitnessMatrix::finish_device_update(
    std::size_t pivot, std::size_t begin, std::size_t end,
    const std::vector<std::uint8_t>& updated) {
  Gf2KernelStats st;
  st.device_rows += end - begin;
  st.dots += end - begin;
  const RowMeta pm = meta_[pivot];
  for (std::size_t j = begin; j < end; ++j) {
    if (!updated[j - begin]) continue;
    ++st.rows_updated;
    st.words_xored += wpr_;  // the block kernel sweeps full rows
    RowMeta& m = meta_[j];
    if (m.sparse) {
      // The kernel bypasses support lists; densify unconditionally.
      m.sparse = false;
      support_[j].clear();
      support_[j].shrink_to_fit();
      ++st.promotions;
    }
    if (m.lo >= m.hi) {
      m.lo = pm.lo;
      m.hi = pm.hi;
    } else if (pm.lo < pm.hi) {
      m.lo = std::min(m.lo, pm.lo);
      m.hi = std::max(m.hi, pm.hi);
    }
  }
  return st;
}

Gf2KernelStats WitnessMatrix::PendingDeviceUpdate::join() {
  Gf2KernelStats st;
  if (joined_ || matrix_ == nullptr || begin_ >= end_) {
    joined_ = true;
    return st;
  }
  async_.wait();
  joined_ = true;
  return matrix_->finish_device_update(pivot_, begin_, end_, updated_);
}

Gf2KernelStats WitnessMatrix::orthogonalize_device(std::size_t pivot,
                                                   const BitVector& ci,
                                                   std::size_t begin,
                                                   std::size_t end,
                                                   hetero::Device& device) {
  auto pending = orthogonalize_device_async(pivot, ci, begin, end, device);
  return pending.join();
}

}  // namespace eardec::mcb
