// Cycle representation and cycle-space helpers. A cycle is kept as an edge
// set (every vertex it touches has even degree; a *simple* cycle has all
// degrees exactly two and is connected). The restricted vector of a cycle
// is its incidence on the non-tree edges E' — the unique GF(2) coordinate
// system the witnesses live in (paper Section 3.2).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "mcb/gf2.hpp"
#include "mcb/spanning_tree.hpp"

namespace eardec::mcb {

struct Cycle {
  std::vector<EdgeId> edges;
  Weight weight = 0;
};

/// The fundamental cycle of non-tree edge e: e plus the tree path between
/// its endpoints. For a self-loop, the cycle is {e} alone.
[[nodiscard]] Cycle fundamental_cycle(const Graph& g, const SpanningTree& t,
                                      EdgeId e);

/// Incidence of the cycle on E' (size = t.dimension()).
[[nodiscard]] BitVector restricted_vector(const Cycle& c,
                                          const SpanningTree& t);

/// True iff `edges` is a non-empty element of the cycle space: every vertex
/// has even degree in the sub-multigraph.
[[nodiscard]] bool is_cycle_space_element(const Graph& g,
                                          const std::vector<EdgeId>& edges);

/// True iff `edges` forms one simple cycle: connected, every touched vertex
/// has degree exactly 2 (a self-loop alone and a parallel pair both count).
[[nodiscard]] bool is_simple_cycle(const Graph& g,
                                   const std::vector<EdgeId>& edges);

/// Sum of edge weights.
[[nodiscard]] Weight cycle_weight(const Graph& g,
                                  const std::vector<EdgeId>& edges);

}  // namespace eardec::mcb
