#include "mcb/mm_mcb.hpp"

#include <atomic>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "hetero/scheduler.hpp"
#include "hetero/work_queue.hpp"
#include "mcb/cycle_store.hpp"
#include "mcb/fvs.hpp"
#include "mcb/labelled_trees.hpp"
#include "mcb/signed_graph.hpp"
#include "mcb/witness_matrix.hpp"
#include "obs/phase.hpp"

namespace eardec::mcb {
namespace {

/// Dispatches fn(i) for i in [0, count) under the execution mode.
/// `serial_below`: run inline when the step is smaller than this — the
/// paper's phases amortize fork/join at its 10K-130K vertex scale, while at
/// this repository's reduced scale the guard keeps the parallel
/// implementations from drowning microsecond steps in thread wakeups.
/// For the heterogeneous mode, CPU pool threads and a device driver (itself
/// a pool task, so no thread spawn per step) pull chunks dynamically off one
/// shared counter — the both-ends-compete discipline of the work queue.
void dispatch(ExecutionMode mode, hetero::ThreadPool* pool,
              hetero::Device* device, std::size_t count,
              const std::function<void(std::size_t)>& fn,
              std::size_t serial_below = 0) {
  if (count == 0) return;
  if (mode == ExecutionMode::Sequential || count < serial_below) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  switch (mode) {
    case ExecutionMode::Sequential:  // handled above
      return;
    case ExecutionMode::Multicore:
      pool->parallel_for(0, count, fn);
      return;
    case ExecutionMode::DeviceOnly:
      device->launch(count, fn);
      return;
    case ExecutionMode::Heterogeneous: {
      auto next = std::make_shared<std::atomic<std::size_t>>(0);
      const std::size_t chunk =
          std::max<std::size_t>(1, count / (4 * (pool->size() + 1)));
      pool->submit([next, chunk, count, device, &fn] {
        while (true) {
          const std::size_t begin = next->fetch_add(chunk);
          if (begin >= count) return;
          const std::size_t end = std::min(begin + chunk, count);
          device->launch(end - begin,
                         [&](std::size_t lane) { fn(begin + lane); });
        }
      });
      pool->parallel_for(0, pool->size(), [&, next, chunk](std::size_t) {
        while (true) {
          const std::size_t begin = next->fetch_add(chunk);
          if (begin >= count) return;
          const std::size_t end = std::min(begin + chunk, count);
          for (std::size_t i = begin; i < end; ++i) fn(i);
        }
      });
      pool->wait_idle();  // the device-driver task must also finish
      return;
    }
  }
}

}  // namespace

void McbStats::accumulate(const McbStats& o) {
  reduce_seconds += o.reduce_seconds;
  preprocess_seconds += o.preprocess_seconds;
  labels_seconds += o.labels_seconds;
  search_seconds += o.search_seconds;
  update_seconds += o.update_seconds;
  dimension += o.dimension;
  candidates += o.candidates;
  fallback_searches += o.fallback_searches;
  fvs_size += o.fvs_size;
}

McbResult mm_mcb(const Graph& g, const McbOptions& options,
                 hetero::ThreadPool* pool, hetero::Device* device) {
  McbResult result;
  // Same degradation as minimum_cycle_basis (for direct callers): with no
  // host parallelism the CPU/device overlap cannot exist, so the
  // heterogeneous driver's dynamic schedule collapses to all-CPU.
  const ExecutionMode mode =
      options.mode == ExecutionMode::Heterogeneous &&
              !hetero::host_has_parallelism()
          ? ExecutionMode::Sequential
          : options.mode;
  // Every McbStats field below is filled by obs::ScopedPhase: one clock
  // shared with the "mcb.phase.*" registry gauges and the trace timeline.
  std::optional<SpanningTree> tree;
  std::optional<CycleStore> store;
  std::optional<LabelledTrees> lt;
  std::optional<WitnessMatrix> witness;
  std::size_t f = 0;
  {
    obs::ScopedPhase phase(result.stats.preprocess_seconds, "mcb.preprocess",
                           "mcb.phase.preprocess_s");
    tree.emplace(build_spanning_tree(g));
    f = tree->dimension();
    result.stats.dimension = f;
    if (f == 0) return result;

    const std::vector<VertexId> fvs =
        options.fvs == FvsAlgorithm::BafnaBermanFujito
            ? feedback_vertex_set_2approx(g)
            : feedback_vertex_set(g);
    lt.emplace(g, *tree, fvs);
    result.stats.fvs_size = fvs.size();
    result.stats.candidates = lt->candidates().size();
    store.emplace(static_cast<std::uint32_t>(lt->candidates().size()));

    // The f witnesses live as rows of one bit-sliced arena; row i starts
    // as the unit vector e_i (and as a one-entry sparse support list).
    witness.emplace(f);
  }

  std::vector<std::uint32_t> batch(options.batch_size == 0
                                       ? 256
                                       : options.batch_size);
  std::vector<std::uint8_t> odd(batch.size());

  Gf2KernelStats gf2;
  // In-flight device sweep of witness rows [i+2, f), launched by the
  // previous update step. While it runs, the CPU side relabels trees and
  // scans candidates against row i+1 (which was updated inline before the
  // launch) — the genuine CPU/device overlap of the heterogeneous driver.
  std::optional<WitnessMatrix::PendingDeviceUpdate> pending;

  for (std::size_t i = 0; i < f; ++i) {
    EARDEC_TRACE_SCOPE("mcb.iteration", "phase", i);
    const WitnessView s = witness->view(i);
    // While a device sweep is in flight, the CPU steps must not route
    // through the heterogeneous dispatch: its device-driver task would
    // contend with the kernel and its wait_idle() would serialize on it.
    // The pool-only path IS the overlap.
    const ExecutionMode step_mode =
        pending ? ExecutionMode::Multicore : mode;

    // (1) Labels: one unit of work per FVS tree.
    {
      obs::ScopedPhase phase(result.stats.labels_seconds, "mcb.labels",
                             "mcb.phase.labels_s");
      // Trees are coarse units (O(n) each); parallelize from a handful up.
      dispatch(step_mode, pool, device, lt->num_trees(),
               [&](std::size_t t) { lt->relabel_tree(t, s); },
               /*serial_below=*/4);
    }

    // (2) Search: batched scan in weight order, first odd candidate wins.
    std::optional<Cycle> cycle;
    {
      obs::ScopedPhase phase(result.stats.search_seconds, "mcb.search",
                             "mcb.phase.search_s");
      std::uint32_t found_id = 0;
      CycleStore::Cursor cursor = store->begin();
      while (!cycle) {
        const std::size_t got = store->next_batch(cursor, batch);
        if (got == 0) break;
        // Each orthogonality check is O(1); only very large batches are
        // worth fanning out (the regime of the paper's full-size runs).
        // Below that, the hoisted-pointer serial scan with its mid-batch
        // early exit beats any dispatch indirection.
        if (step_mode == ExecutionMode::Sequential || got < 512) {
          const std::size_t hit = lt->first_odd(batch.data(), got, s);
          if (hit < got) {
            found_id = batch[hit];
            cycle = lt->materialize(lt->candidates()[found_id]);
          }
          continue;
        }
        dispatch(step_mode, pool, device, got, [&](std::size_t k) {
          odd[k] = lt->is_odd(lt->candidates()[batch[k]], s);
        });
        for (std::size_t k = 0; k < got; ++k) {
          if (odd[k]) {
            found_id = batch[k];
            cycle = lt->materialize(lt->candidates()[found_id]);
            break;
          }
        }
      }
      if (cycle) {
        store->remove(found_id);
      } else {
        // Safety net: the pruned candidate set should always contain an odd
        // cycle per Mehlhorn–Michail; fall back to the exact signed-graph
        // search if a pathological input defeats the pruning.
        cycle = min_odd_cycle(g, *tree, s);
        ++result.stats.fallback_searches;
        if (!cycle) {
          throw std::logic_error("mm_mcb: no odd cycle exists for a witness");
        }
      }
    }

    // (3) Independence test / witness update: one blocked pass over the
    // witness arena (batched dots + masked conditional XOR).
    {
      obs::ScopedPhase phase(result.stats.update_seconds, "mcb.update",
                             "mcb.phase.update_s");
      // Any in-flight device sweep must retire before this phase mutates
      // the rows it covers.
      if (pending) {
        gf2.accumulate(pending->join());
        pending.reset();
      }
      const BitVector ci = restricted_vector(*cycle, *tree);
      const std::size_t remaining = f - i - 1;
      // Each row update touches f/64 words; fan out once the remaining
      // tail carries enough total work.
      const std::size_t update_threshold = std::max<std::size_t>(
          64, (1u << 16) / std::max<std::size_t>(1, f / 64));
      const bool device_worthwhile =
          device != nullptr && remaining >= options.device_witness_rows;
      if (mode == ExecutionMode::Heterogeneous && device_worthwhile) {
        // Row i+1 (the next phase's witness) updates inline; the tail ships
        // to the device and retires during the next labels/search steps.
        gf2.accumulate(witness->orthogonalize(i, ci, i + 1, i + 2));
        pending = witness->orthogonalize_device_async(i, ci, i + 2, f,
                                                      *device);
      } else if (mode == ExecutionMode::DeviceOnly && device_worthwhile) {
        gf2.accumulate(witness->orthogonalize_device(i, ci, i + 1, f,
                                                     *device));
      } else if (mode == ExecutionMode::Multicore && pool != nullptr &&
                 remaining >= update_threshold) {
        // Disjoint row chunks; each chunk is an independent blocked pass.
        const std::size_t chunk = std::max<std::size_t>(
            64, remaining / (4 * (pool->size() + 1)));
        const std::size_t chunks = (remaining + chunk - 1) / chunk;
        std::mutex stats_mutex;
        pool->parallel_for(0, chunks, [&](std::size_t c) {
          const std::size_t begin = i + 1 + c * chunk;
          const std::size_t end = std::min(begin + chunk, f);
          const auto st = witness->orthogonalize(i, ci, begin, end);
          const std::lock_guard lock(stats_mutex);
          gf2.accumulate(st);
        });
      } else {
        gf2.accumulate(witness->orthogonalize(i, ci, i + 1, f));
      }
    }

    result.total_weight += cycle->weight;
    result.basis.push_back(std::move(*cycle));
  }
  if (pending) {
    gf2.accumulate(pending->join());
    pending.reset();
  }

  // Mirror the run's scalar outcomes into the registry so `--metrics`
  // exports carry them next to the phase gauges.
  gf2.export_to_metrics();
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("mcb.fallback_searches").add(result.stats.fallback_searches);
  reg.gauge("mcb.dimension").set(static_cast<double>(result.stats.dimension));
  reg.gauge("mcb.candidates").set(static_cast<double>(result.stats.candidates));
  const std::uint64_t swept_rows = gf2.cpu_rows + gf2.device_rows;
  if (swept_rows != 0) {
    reg.gauge("mcb.gf2.device_offload_fraction")
        .set(static_cast<double>(gf2.device_rows) /
             static_cast<double>(swept_rows));
  }
  return result;
}

}  // namespace eardec::mcb
