#include "mcb/mm_mcb.hpp"

#include <atomic>
#include <bit>
#include <functional>
#include <optional>
#include <stdexcept>
#include <thread>

#include "hetero/scheduler.hpp"
#include "hetero/work_queue.hpp"
#include "mcb/cycle_store.hpp"
#include "mcb/fvs.hpp"
#include "mcb/labelled_trees.hpp"
#include "mcb/signed_graph.hpp"
#include "obs/phase.hpp"

namespace eardec::mcb {
namespace {

/// Dispatches fn(i) for i in [0, count) under the execution mode.
/// `serial_below`: run inline when the step is smaller than this — the
/// paper's phases amortize fork/join at its 10K-130K vertex scale, while at
/// this repository's reduced scale the guard keeps the parallel
/// implementations from drowning microsecond steps in thread wakeups.
/// For the heterogeneous mode, CPU pool threads and a device driver (itself
/// a pool task, so no thread spawn per step) pull chunks dynamically off one
/// shared counter — the both-ends-compete discipline of the work queue.
void dispatch(ExecutionMode mode, hetero::ThreadPool* pool,
              hetero::Device* device, std::size_t count,
              const std::function<void(std::size_t)>& fn,
              std::size_t serial_below = 0) {
  if (count == 0) return;
  if (mode == ExecutionMode::Sequential || count < serial_below) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  switch (mode) {
    case ExecutionMode::Sequential:  // handled above
      return;
    case ExecutionMode::Multicore:
      pool->parallel_for(0, count, fn);
      return;
    case ExecutionMode::DeviceOnly:
      device->launch(count, fn);
      return;
    case ExecutionMode::Heterogeneous: {
      auto next = std::make_shared<std::atomic<std::size_t>>(0);
      const std::size_t chunk =
          std::max<std::size_t>(1, count / (4 * (pool->size() + 1)));
      pool->submit([next, chunk, count, device, &fn] {
        while (true) {
          const std::size_t begin = next->fetch_add(chunk);
          if (begin >= count) return;
          const std::size_t end = std::min(begin + chunk, count);
          device->launch(end - begin,
                         [&](std::size_t lane) { fn(begin + lane); });
        }
      });
      pool->parallel_for(0, pool->size(), [&, next, chunk](std::size_t) {
        while (true) {
          const std::size_t begin = next->fetch_add(chunk);
          if (begin >= count) return;
          const std::size_t end = std::min(begin + chunk, count);
          for (std::size_t i = begin; i < end; ++i) fn(i);
        }
      });
      pool->wait_idle();  // the device-driver task must also finish
      return;
    }
  }
}

/// The paper's GPU witness update (Section 3.3.2): one block per witness;
/// the block's lanes compute the pairwise AND of the witness with the new
/// cycle vector into shared memory, a tree reduction XORs the partials
/// (popcount parity of XOR-combined words equals the GF(2) inner product),
/// and on a hit the block applies the symmetric difference in parallel.
void device_block_witness_update(hetero::Device& device,
                                 std::vector<BitVector>& witness,
                                 const BitVector& ci, std::size_t phase) {
  const std::size_t remaining = witness.size() - phase - 1;
  const auto ci_words = ci.words();
  const std::size_t words = ci_words.size();
  const auto si_words = witness[phase].words();
  device.launch_blocks(remaining, words, [&](hetero::Device::Block& blk) {
    const std::size_t j = phase + 1 + blk.id();
    auto sj = witness[j].words();
    auto shared = blk.shared();
    // Pass 1: pairwise component product.
    blk.for_each_lane(words, [&](std::size_t w) {
      shared[w] = sj[w] & ci_words[w];
    });
    // Passes 2..log: tree XOR reduction.
    for (std::size_t stride = 1; stride < words; stride *= 2) {
      blk.for_each_lane(words / (2 * stride) + 1, [&](std::size_t k) {
        const std::size_t lo = 2 * stride * k;
        if (lo + stride < words) shared[lo] ^= shared[lo + stride];
      });
    }
    if (std::popcount(shared[0]) % 2 == 1) {
      // Final pass: symmetric difference with S_i across the block's lanes.
      blk.for_each_lane(words, [&](std::size_t w) { sj[w] ^= si_words[w]; });
    }
  });
}

}  // namespace

void McbStats::accumulate(const McbStats& o) {
  reduce_seconds += o.reduce_seconds;
  preprocess_seconds += o.preprocess_seconds;
  labels_seconds += o.labels_seconds;
  search_seconds += o.search_seconds;
  update_seconds += o.update_seconds;
  dimension += o.dimension;
  candidates += o.candidates;
  fallback_searches += o.fallback_searches;
  fvs_size += o.fvs_size;
}

McbResult mm_mcb(const Graph& g, const McbOptions& options,
                 hetero::ThreadPool* pool, hetero::Device* device) {
  McbResult result;
  // Every McbStats field below is filled by obs::ScopedPhase: one clock
  // shared with the "mcb.phase.*" registry gauges and the trace timeline.
  std::optional<SpanningTree> tree;
  std::optional<CycleStore> store;
  std::optional<LabelledTrees> lt;
  std::vector<BitVector> witness;
  std::size_t f = 0;
  {
    obs::ScopedPhase phase(result.stats.preprocess_seconds, "mcb.preprocess",
                           "mcb.phase.preprocess_s");
    tree.emplace(build_spanning_tree(g));
    f = tree->dimension();
    result.stats.dimension = f;
    if (f == 0) return result;

    const std::vector<VertexId> fvs =
        options.fvs == FvsAlgorithm::BafnaBermanFujito
            ? feedback_vertex_set_2approx(g)
            : feedback_vertex_set(g);
    lt.emplace(g, *tree, fvs);
    result.stats.fvs_size = fvs.size();
    result.stats.candidates = lt->candidates().size();
    store.emplace(static_cast<std::uint32_t>(lt->candidates().size()));

    witness.reserve(f);
    for (std::size_t i = 0; i < f; ++i) {
      witness.push_back(BitVector::unit(f, i));
    }
  }

  std::vector<std::uint32_t> batch(options.batch_size == 0
                                       ? 256
                                       : options.batch_size);
  std::vector<std::uint8_t> odd(batch.size());

  for (std::size_t i = 0; i < f; ++i) {
    EARDEC_TRACE_SCOPE("mcb.iteration", "phase", i);
    const BitVector& s = witness[i];

    // (1) Labels: one unit of work per FVS tree.
    {
      obs::ScopedPhase phase(result.stats.labels_seconds, "mcb.labels",
                             "mcb.phase.labels_s");
      // Trees are coarse units (O(n) each); parallelize from a handful up.
      dispatch(options.mode, pool, device, lt->num_trees(),
               [&](std::size_t t) { lt->relabel_tree(t, s); },
               /*serial_below=*/4);
    }

    // (2) Search: batched scan in weight order, first odd candidate wins.
    std::optional<Cycle> cycle;
    {
      obs::ScopedPhase phase(result.stats.search_seconds, "mcb.search",
                             "mcb.phase.search_s");
      std::uint32_t found_id = 0;
      CycleStore::Cursor cursor = store->begin();
      while (!cycle) {
        const std::size_t got = store->next_batch(cursor, batch);
        if (got == 0) break;
        // Each orthogonality check is O(1); only very large batches are
        // worth fanning out (the regime of the paper's full-size runs).
        dispatch(
            options.mode, pool, device, got,
            [&](std::size_t k) {
              odd[k] = lt->is_odd(lt->candidates()[batch[k]], s);
            },
            /*serial_below=*/512);
        for (std::size_t k = 0; k < got; ++k) {
          if (odd[k]) {
            found_id = batch[k];
            cycle = lt->materialize(lt->candidates()[found_id]);
            break;
          }
        }
      }
      if (cycle) {
        store->remove(found_id);
      } else {
        // Safety net: the pruned candidate set should always contain an odd
        // cycle per Mehlhorn–Michail; fall back to the exact signed-graph
        // search if a pathological input defeats the pruning.
        cycle = min_odd_cycle(g, *tree, s);
        ++result.stats.fallback_searches;
        if (!cycle) {
          throw std::logic_error("mm_mcb: no odd cycle exists for a witness");
        }
      }
    }

    // (3) Independence test / witness update.
    {
      obs::ScopedPhase phase(result.stats.update_seconds, "mcb.update",
                             "mcb.phase.update_s");
      const BitVector ci = restricted_vector(*cycle, *tree);
      // Each witness update touches f/64 words; fan out once the remaining
      // tail carries enough total work.
      const std::size_t update_threshold = std::max<std::size_t>(
          64, (1u << 16) / std::max<std::size_t>(1, f / 64));
      if (options.mode == ExecutionMode::DeviceOnly && f - i - 1 >= 64) {
        device_block_witness_update(*device, witness, ci, i);
      } else {
        dispatch(
            options.mode, pool, device, f - i - 1,
            [&](std::size_t k) {
              const std::size_t j = i + 1 + k;
              if (ci.dot(witness[j])) witness[j].xor_assign(witness[i]);
            },
            update_threshold);
      }
    }

    result.total_weight += cycle->weight;
    result.basis.push_back(std::move(*cycle));
  }

  // Mirror the run's scalar outcomes into the registry so `--metrics`
  // exports carry them next to the phase gauges.
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("mcb.fallback_searches").add(result.stats.fallback_searches);
  reg.gauge("mcb.dimension").set(static_cast<double>(result.stats.dimension));
  reg.gauge("mcb.candidates").set(static_cast<double>(result.stats.candidates));
  return result;
}

}  // namespace eardec::mcb
