// Balanced k-way graph partitioning by multi-seed BFS region growing with
// a boundary-smoothing refinement pass — the METIS stand-in used by the
// Djidjev et al. baseline (see DESIGN.md §2). On planar/mesh-like graphs
// (the only family Djidjev's method targets) breadth-first regions are
// compact, which is exactly the small-boundary property that baseline needs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace eardec::partition {

using graph::Graph;
using graph::VertexId;

struct Partition {
  std::uint32_t num_parts = 0;
  /// Per vertex: its part in [0, num_parts).
  std::vector<std::uint32_t> part;
  /// Vertices incident to at least one cross-part edge, ascending.
  std::vector<VertexId> boundary;
  /// Number of edges whose endpoints lie in different parts.
  graph::EdgeId cut_edges = 0;
};

/// Partitions g into (at most) k parts. Seeds are spread breadth-first;
/// regions grow level-synchronously so parts stay balanced; one refinement
/// sweep moves boundary vertices to the majority part of their neighbours
/// when that strictly reduces the cut without emptying a part.
[[nodiscard]] Partition bfs_grow(const Graph& g, std::uint32_t k,
                                 std::uint64_t seed);

}  // namespace eardec::partition
