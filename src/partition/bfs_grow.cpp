#include "partition/bfs_grow.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <random>
#include <stdexcept>

namespace eardec::partition {
namespace {

constexpr std::uint32_t kUnassigned = UINT32_MAX;

void collect_boundary(const Graph& g, Partition& p) {
  p.boundary.clear();
  p.cut_edges = 0;
  std::vector<bool> is_boundary(g.num_vertices(), false);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (p.part[u] != p.part[v]) {
      ++p.cut_edges;
      is_boundary[u] = is_boundary[v] = true;
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (is_boundary[v]) p.boundary.push_back(v);
  }
}

}  // namespace

Partition bfs_grow(const Graph& g, std::uint32_t k, std::uint64_t seed) {
  const VertexId n = g.num_vertices();
  if (k == 0) throw std::invalid_argument("bfs_grow: k must be >= 1");
  k = std::min<std::uint32_t>(k, std::max<VertexId>(1, n));

  Partition p;
  p.num_parts = k;
  p.part.assign(n, kUnassigned);
  if (n == 0) return p;

  // Spread seeds: first seed random, each next seed is the unassigned
  // vertex farthest (in hops) from all current seeds.
  std::mt19937_64 rng(seed);
  std::vector<VertexId> seeds;
  std::vector<std::uint32_t> hops(n, UINT32_MAX);
  {
    std::uniform_int_distribution<VertexId> pick(0, n - 1);
    seeds.push_back(pick(rng));
    std::deque<VertexId> queue;
    const auto bfs_from = [&](VertexId s) {
      hops[s] = 0;
      queue.push_back(s);
      while (!queue.empty()) {
        const VertexId v = queue.front();
        queue.pop_front();
        for (const graph::HalfEdge& he : g.neighbors(v)) {
          if (hops[he.to] > hops[v] + 1) {
            hops[he.to] = hops[v] + 1;
            queue.push_back(he.to);
          }
        }
      }
    };
    bfs_from(seeds[0]);
    while (seeds.size() < k) {
      VertexId far = seeds[0];
      std::uint32_t best = 0;
      for (VertexId v = 0; v < n; ++v) {
        // Unreached vertices (other components) are the farthest of all.
        if (hops[v] == UINT32_MAX) {
          far = v;
          best = UINT32_MAX;
          break;
        }
        if (hops[v] > best) {
          best = hops[v];
          far = v;
        }
      }
      if (best == 0) break;  // every vertex is a seed already
      seeds.push_back(far);
      bfs_from(far);
    }
  }
  p.num_parts = static_cast<std::uint32_t>(seeds.size());

  // Level-synchronous region growing: parts claim frontier vertices in
  // round-robin so sizes stay balanced.
  std::vector<std::deque<VertexId>> frontier(p.num_parts);
  for (std::uint32_t i = 0; i < p.num_parts; ++i) {
    p.part[seeds[i]] = i;
    frontier[i].push_back(seeds[i]);
  }
  bool grew = true;
  while (grew) {
    grew = false;
    for (std::uint32_t i = 0; i < p.num_parts; ++i) {
      // Claim one layer's worth for part i (bounded sweep for balance).
      std::size_t budget = frontier[i].size();
      while (budget-- > 0 && !frontier[i].empty()) {
        const VertexId v = frontier[i].front();
        frontier[i].pop_front();
        for (const graph::HalfEdge& he : g.neighbors(v)) {
          if (p.part[he.to] == kUnassigned) {
            p.part[he.to] = i;
            frontier[i].push_back(he.to);
            grew = true;
          }
        }
      }
    }
  }
  // Other connected components with no seed: sweep them into part 0
  // component-wise (they don't affect boundaries).
  for (VertexId v = 0; v < n; ++v) {
    if (p.part[v] == kUnassigned) p.part[v] = 0;
  }

  // One refinement sweep: move a vertex to the strict majority part among
  // its neighbours (reduces the cut; never applied to a seed).
  std::vector<std::uint32_t> tally(p.num_parts, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (std::find(seeds.begin(), seeds.end(), v) != seeds.end()) continue;
    std::fill(tally.begin(), tally.end(), 0);
    for (const graph::HalfEdge& he : g.neighbors(v)) {
      if (he.to != v) ++tally[p.part[he.to]];
    }
    const auto best =
        static_cast<std::uint32_t>(std::distance(
            tally.begin(), std::max_element(tally.begin(), tally.end())));
    if (best != p.part[v] && tally[best] > tally[p.part[v]]) {
      p.part[v] = best;
    }
  }

  collect_boundary(g, p);
  return p;
}

}  // namespace eardec::partition
