#include "graph/stats.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace eardec::graph {

GraphStats compute_stats(const Graph& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  s.self_loops = g.num_self_loops();
  s.has_parallel_edges = g.has_parallel_edges();
  s.total_weight = g.total_weight();
  if (g.num_vertices() == 0) return s;

  s.min_degree = std::numeric_limits<std::size_t>::max();
  std::size_t degree_sum = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::size_t d = g.degree(v);
    degree_sum += d;
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    if (d == 1) ++s.degree_one_vertices;
    if (d == 2) ++s.degree_two_vertices;
  }
  s.avg_degree = static_cast<double>(degree_sum) / g.num_vertices();
  return s;
}

std::string to_string(const GraphStats& s) {
  std::ostringstream os;
  os << "n=" << s.num_vertices << " m=" << s.num_edges
     << " deg[min=" << s.min_degree << " avg=" << s.avg_degree
     << " max=" << s.max_degree << "]"
     << " deg1=" << s.degree_one_vertices << " deg2=" << s.degree_two_vertices;
  if (s.self_loops > 0) os << " loops=" << s.self_loops;
  if (s.has_parallel_edges) os << " multi";
  return os.str();
}

}  // namespace eardec::graph
