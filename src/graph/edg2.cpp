#include "graph/edg2.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define EARDEC_HAVE_MMAP 1
#endif

namespace eardec::graph::io {
namespace {

static_assert(sizeof(std::size_t) == 8,
              "EDG2 stores CSR offsets as u64 and maps them as std::size_t");

constexpr std::array<char, 4> kMagic = {'E', 'D', 'G', '2'};
constexpr std::size_t kChecksumChunk = 4 << 20;  // 4 MiB
constexpr std::size_t kNumSections = 4;

struct Edg2Section {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

/// The first 160 bytes of the 4096-byte header page; the rest is zero.
struct Edg2Header {
  char magic[4];
  std::uint32_t version;
  std::uint64_t num_vertices;
  std::uint64_t num_edges;
  std::uint64_t num_self_loops;
  std::uint32_t flags;         // bit 0: has_parallel_edges
  std::uint32_t header_bytes;  // == kEdg2Align
  Edg2Section sections[kNumSections];  // offsets, adjacency, endpoints, weights
  std::uint64_t payload_checksum;
  std::uint64_t header_checksum;
  char provenance[40];
};
static_assert(std::is_trivially_copyable_v<Edg2Header> &&
              sizeof(Edg2Header) == 160);
static_assert(sizeof(Edg2Header) <= kEdg2Align);

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(const unsigned char* p, std::size_t len,
                    std::uint64_t h = kFnvOffset) {
  for (std::size_t i = 0; i < len; ++i) {
    h = (h ^ p[i]) * kFnvPrime;
  }
  return h;
}

struct ByteSpan {
  const unsigned char* data = nullptr;
  std::size_t len = 0;
};

/// Chunked payload digest: each 4 MiB chunk (chunks never straddle a
/// section) is FNV-hashed independently — in parallel when a pool is given
/// — and the final digest hashes the ordered chunk digests. Deterministic
/// for any thread count.
std::uint64_t chunked_checksum(const std::vector<ByteSpan>& sections,
                               hetero::ThreadPool* pool) {
  std::vector<ByteSpan> chunks;
  for (const ByteSpan& s : sections) {
    for (std::size_t off = 0; off < s.len; off += kChecksumChunk) {
      chunks.push_back({s.data + off, std::min(kChecksumChunk, s.len - off)});
    }
  }
  std::vector<std::uint64_t> digests(chunks.size());
  const auto digest_one = [&](std::size_t i) {
    digests[i] = fnv1a(chunks[i].data, chunks[i].len);
  };
  if (pool != nullptr && chunks.size() > 1) {
    pool->parallel_for(0, chunks.size(), digest_one);
  } else {
    for (std::size_t i = 0; i < chunks.size(); ++i) digest_one(i);
  }
  return fnv1a(reinterpret_cast<const unsigned char*>(digests.data()),
               digests.size() * sizeof(std::uint64_t));
}

std::size_t align_up(std::size_t x) {
  return (x + kEdg2Align - 1) / kEdg2Align * kEdg2Align;
}

/// Section lengths implied by the counts, in file order.
std::array<std::uint64_t, kNumSections> section_bytes(std::uint64_t n,
                                                      std::uint64_t m) {
  return {(n + 1) * sizeof(std::uint64_t), 2 * m * sizeof(HalfEdge),
          m * sizeof(std::pair<VertexId, VertexId>), m * sizeof(Weight)};
}

[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("edg2: " + what);
}

/// Header checks shared by the mmap and stream readers: magic, version,
/// header checksum, representable counts, and page-aligned, in-order,
/// size-consistent sections. `file_bytes` of 0 skips the bounds check
/// (stream readers that cannot stat their source).
void validate_header(const unsigned char* page, std::size_t page_len,
                     Edg2Header& h, std::uint64_t file_bytes) {
  if (page_len < kEdg2Align) bad("file shorter than the header page");
  std::memcpy(&h, page, sizeof(Edg2Header));
  if (std::memcmp(h.magic, kMagic.data(), kMagic.size()) != 0) {
    bad("bad magic (not an EDG2 file)");
  }
  if (h.version != kEdg2Version) {
    bad("unsupported format version " + std::to_string(h.version));
  }
  if (h.header_bytes != kEdg2Align) bad("bad header size field");

  // The header checksum covers the whole page with its own field zeroed.
  std::array<unsigned char, kEdg2Align> scratch;
  std::memcpy(scratch.data(), page, kEdg2Align);
  const std::size_t cks_off = offsetof(Edg2Header, header_checksum);
  std::memset(scratch.data() + cks_off, 0, sizeof(std::uint64_t));
  if (fnv1a(scratch.data(), kEdg2Align) != h.header_checksum) {
    bad("header checksum mismatch (corrupted header)");
  }

  if (h.num_vertices > std::numeric_limits<VertexId>::max() ||
      h.num_edges > std::numeric_limits<EdgeId>::max() ||
      h.num_self_loops > h.num_edges) {
    bad("counts out of range");
  }
  const auto expect = section_bytes(h.num_vertices, h.num_edges);
  std::uint64_t prev_end = kEdg2Align;
  for (std::size_t s = 0; s < kNumSections; ++s) {
    const Edg2Section& sec = h.sections[s];
    if (sec.offset % kEdg2Align != 0 || sec.offset < prev_end) {
      bad("section " + std::to_string(s) + " misaligned or overlapping");
    }
    if (sec.bytes != expect[s]) {
      bad("section " + std::to_string(s) + " size does not match counts");
    }
    if (file_bytes != 0 && sec.offset + sec.bytes > file_bytes) {
      bad("section " + std::to_string(s) + " extends past end of file");
    }
    prev_end = sec.offset + sec.bytes;
  }
}

/// Deep content checks shared by Deep mmap loads and the stream reader:
/// monotone offsets closing at 2m, in-range normalized endpoints,
/// non-negative weights, and in-range adjacency entries.
void validate_payload(const Edg2Header& h, const std::size_t* offsets,
                      const HalfEdge* adjacency,
                      const std::pair<VertexId, VertexId>* endpoints,
                      const Weight* weights) {
  const auto n = static_cast<VertexId>(h.num_vertices);
  const auto m = static_cast<EdgeId>(h.num_edges);
  if (offsets[0] != 0 || offsets[n] != 2 * static_cast<std::size_t>(m)) {
    bad("offsets do not close at 2m");
  }
  for (VertexId v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) bad("offsets not monotone");
  }
  EdgeId self_loops = 0;
  for (EdgeId e = 0; e < m; ++e) {
    const auto [u, v] = endpoints[e];
    if (u > v || v >= n) bad("endpoint out of range or not normalized");
    if (u == v) ++self_loops;
    if (!(weights[e] >= 0)) bad("negative or NaN weight");
  }
  if (self_loops != h.num_self_loops) bad("self-loop count mismatch");
  for (std::size_t i = 0; i < 2 * static_cast<std::size_t>(m); ++i) {
    if (adjacency[i].to >= n || adjacency[i].edge >= m) {
      bad("adjacency entry out of range");
    }
  }
}

/// Deep-only geometry: sections are packed (each starts at the previous
/// end rounded up to a page), every padding byte is zero, and the file ends
/// exactly at the last section's page boundary — so between the header
/// checksum, the payload checksum and this check, every byte of a
/// Deep-validated file is accounted for and any single-byte corruption is
/// caught.
void validate_padding(const unsigned char* base, const Edg2Header& h,
                      std::uint64_t file_bytes) {
  std::uint64_t prev_end = kEdg2Align;
  for (std::size_t s = 0; s < kNumSections; ++s) {
    const std::uint64_t start = h.sections[s].offset;
    if (start != align_up(prev_end)) {
      bad("unexpected gap before section " + std::to_string(s));
    }
    for (std::uint64_t b = prev_end; b < start; ++b) {
      if (base[b] != 0) bad("nonzero padding byte");
    }
    prev_end = start + h.sections[s].bytes;
  }
  if (file_bytes != align_up(prev_end)) {
    bad("file does not end at the last section's page boundary");
  }
  for (std::uint64_t b = prev_end; b < file_bytes; ++b) {
    if (base[b] != 0) bad("nonzero padding byte");
  }
}

#if defined(EARDEC_HAVE_MMAP)
/// Keepalive for borrowed graphs: unmaps on destruction of the last copy.
struct MappedFile {
  void* data = MAP_FAILED;
  std::size_t len = 0;
  ~MappedFile() {
    if (data != MAP_FAILED) ::munmap(data, len);
  }
};
#endif

/// Keepalive for stream-loaded graphs: the same section arrays on the heap.
struct StreamArrays {
  std::vector<std::size_t> offsets;
  std::vector<HalfEdge> adjacency;
  std::vector<std::pair<VertexId, VertexId>> endpoints;
  std::vector<Weight> weights;
};

Graph make_borrowed(const Edg2Header& h, const std::size_t* offsets,
                    const HalfEdge* adjacency,
                    const std::pair<VertexId, VertexId>* endpoints,
                    const Weight* weights,
                    std::shared_ptr<const void> keepalive,
                    bool external_storage) {
  Graph::BorrowedCsr csr;
  csr.num_vertices = static_cast<VertexId>(h.num_vertices);
  csr.num_self_loops = static_cast<EdgeId>(h.num_self_loops);
  csr.has_parallel_edges = (h.flags & 1u) != 0;
  csr.external_storage = external_storage;
  const auto m = static_cast<std::size_t>(h.num_edges);
  csr.offsets = {offsets, static_cast<std::size_t>(h.num_vertices) + 1};
  csr.adjacency = {adjacency, 2 * m};
  csr.endpoints = {endpoints, m};
  csr.weights = {weights, m};
  csr.keepalive = std::move(keepalive);
  return Graph(std::move(csr));
}

}  // namespace

void write_edg2_file(const std::filesystem::path& path, const Graph& g,
                     hetero::ThreadPool* pool, const std::string& provenance) {
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  // A default-constructed graph has no offsets array; synthesize the
  // canonical one-element {0} so even the empty graph round-trips.
  static constexpr std::size_t kZeroOffset = 0;
  const std::size_t* offsets_data =
      g.csr_offsets().empty() ? &kZeroOffset : g.csr_offsets().data();

  Edg2Header h{};
  std::memcpy(h.magic, kMagic.data(), kMagic.size());
  h.version = kEdg2Version;
  h.num_vertices = n;
  h.num_edges = m;
  h.num_self_loops = g.num_self_loops();
  h.flags = g.has_parallel_edges() ? 1u : 0u;
  h.header_bytes = kEdg2Align;
  const auto bytes = section_bytes(n, m);
  std::uint64_t off = kEdg2Align;
  for (std::size_t s = 0; s < kNumSections; ++s) {
    h.sections[s] = {off, bytes[s]};
    off = align_up(off + bytes[s]);
  }
  std::strncpy(h.provenance, provenance.c_str(), sizeof(h.provenance) - 1);

  const std::vector<ByteSpan> payload = {
      {reinterpret_cast<const unsigned char*>(offsets_data),
       static_cast<std::size_t>(bytes[0])},
      {reinterpret_cast<const unsigned char*>(g.csr_adjacency().data()),
       static_cast<std::size_t>(bytes[1])},
      {reinterpret_cast<const unsigned char*>(g.edge_list().data()),
       static_cast<std::size_t>(bytes[2])},
      {reinterpret_cast<const unsigned char*>(g.edge_weights().data()),
       static_cast<std::size_t>(bytes[3])},
  };
  h.payload_checksum = chunked_checksum(payload, pool);

  std::array<unsigned char, kEdg2Align> page{};
  std::memcpy(page.data(), &h, sizeof(Edg2Header));
  const std::uint64_t header_cks = fnv1a(page.data(), kEdg2Align);
  h.header_checksum = header_cks;
  std::memcpy(page.data(), &h, sizeof(Edg2Header));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) bad("cannot open " + path.string() + " for writing");
  out.write(reinterpret_cast<const char*>(page.data()), kEdg2Align);
  const std::array<char, kEdg2Align> zeros{};
  for (std::size_t s = 0; s < kNumSections; ++s) {
    out.write(reinterpret_cast<const char*>(payload[s].data),
              static_cast<std::streamsize>(payload[s].len));
    const std::size_t pad = align_up(payload[s].len) - payload[s].len;
    if (pad > 0) out.write(zeros.data(), static_cast<std::streamsize>(pad));
  }
  if (!out) bad("short write to " + path.string());
}

Graph read_edg2_file(const std::filesystem::path& path,
                     Edg2Validate validate) {
#if defined(EARDEC_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) bad("cannot open " + path.string());
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    bad("cannot stat " + path.string());
  }
  const auto file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < kEdg2Align) {
    ::close(fd);
    bad(path.string() + ": file shorter than the header page");
  }
  auto mapped = std::make_shared<MappedFile>();
  mapped->len = file_bytes;
  mapped->data =
      ::mmap(nullptr, mapped->len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapped->data == MAP_FAILED) bad("mmap failed for " + path.string());

  const auto* base = static_cast<const unsigned char*>(mapped->data);
  Edg2Header h;
  validate_header(base, mapped->len, h, file_bytes);
  const auto* offsets =
      reinterpret_cast<const std::size_t*>(base + h.sections[0].offset);
  const auto* adjacency =
      reinterpret_cast<const HalfEdge*>(base + h.sections[1].offset);
  const auto* endpoints =
      reinterpret_cast<const std::pair<VertexId, VertexId>*>(
          base + h.sections[2].offset);
  const auto* weights =
      reinterpret_cast<const Weight*>(base + h.sections[3].offset);
  if (validate == Edg2Validate::Deep) {
    const std::vector<ByteSpan> payload = {
        {base + h.sections[0].offset, h.sections[0].bytes},
        {base + h.sections[1].offset, h.sections[1].bytes},
        {base + h.sections[2].offset, h.sections[2].bytes},
        {base + h.sections[3].offset, h.sections[3].bytes},
    };
    if (chunked_checksum(payload, nullptr) != h.payload_checksum) {
      bad(path.string() + ": payload checksum mismatch");
    }
    validate_padding(base, h, file_bytes);
    validate_payload(h, offsets, adjacency, endpoints, weights);
  }
  return make_borrowed(h, offsets, adjacency, endpoints, weights,
                       std::move(mapped), /*external_storage=*/true);
#else
  (void)validate;
  std::ifstream in(path, std::ios::binary);
  if (!in) bad("cannot open " + path.string());
  return read_edg2_stream(in);
#endif
}

Graph read_edg2_stream(std::istream& in) {
  std::array<unsigned char, kEdg2Align> page{};
  in.read(reinterpret_cast<char*>(page.data()), kEdg2Align);
  if (in.gcount() != static_cast<std::streamsize>(kEdg2Align)) {
    bad("truncated header");
  }
  Edg2Header h;
  validate_header(page.data(), page.size(), h, 0);

  auto arrays = std::make_shared<StreamArrays>();
  arrays->offsets.resize(h.num_vertices + 1);
  arrays->adjacency.resize(2 * h.num_edges);
  arrays->endpoints.resize(h.num_edges);
  arrays->weights.resize(h.num_edges);
  const auto read_section = [&](std::size_t s, void* dst) {
    in.seekg(static_cast<std::streamoff>(h.sections[s].offset));
    in.read(static_cast<char*>(dst),
            static_cast<std::streamsize>(h.sections[s].bytes));
    if (!in) bad("truncated section " + std::to_string(s));
  };
  read_section(0, arrays->offsets.data());
  read_section(1, arrays->adjacency.data());
  read_section(2, arrays->endpoints.data());
  read_section(3, arrays->weights.data());

  const std::vector<ByteSpan> payload = {
      {reinterpret_cast<const unsigned char*>(arrays->offsets.data()),
       static_cast<std::size_t>(h.sections[0].bytes)},
      {reinterpret_cast<const unsigned char*>(arrays->adjacency.data()),
       static_cast<std::size_t>(h.sections[1].bytes)},
      {reinterpret_cast<const unsigned char*>(arrays->endpoints.data()),
       static_cast<std::size_t>(h.sections[2].bytes)},
      {reinterpret_cast<const unsigned char*>(arrays->weights.data()),
       static_cast<std::size_t>(h.sections[3].bytes)},
  };
  if (chunked_checksum(payload, nullptr) != h.payload_checksum) {
    bad("payload checksum mismatch");
  }
  validate_payload(h, arrays->offsets.data(), arrays->adjacency.data(),
                   arrays->endpoints.data(), arrays->weights.data());
  const StreamArrays& a = *arrays;
  return make_borrowed(h, a.offsets.data(), a.adjacency.data(),
                       a.endpoints.data(), a.weights.data(), std::move(arrays),
                       /*external_storage=*/false);
}

Edg2Info inspect_edg2_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) bad("cannot open " + path.string());
  std::array<unsigned char, kEdg2Align> page{};
  in.read(reinterpret_cast<char*>(page.data()), kEdg2Align);
  if (in.gcount() != static_cast<std::streamsize>(kEdg2Align)) {
    bad("truncated header");
  }
  Edg2Header h;
  validate_header(page.data(), page.size(), h, 0);
  Edg2Info info;
  info.version = h.version;
  info.num_vertices = h.num_vertices;
  info.num_edges = h.num_edges;
  info.num_self_loops = h.num_self_loops;
  info.has_parallel_edges = (h.flags & 1u) != 0;
  info.file_bytes = std::filesystem::file_size(path);
  for (const Edg2Section& s : h.sections) info.payload_bytes += s.bytes;
  info.provenance.assign(
      h.provenance,
      std::find(h.provenance, h.provenance + sizeof(h.provenance), '\0'));
  return info;
}

Graph build_csr_parallel(VertexId num_vertices,
                         std::vector<std::pair<VertexId, VertexId>> edges,
                         std::vector<Weight> weights,
                         hetero::ThreadPool* pool) {
  if (edges.size() != weights.size()) {
    throw std::invalid_argument(
        "build_csr_parallel: edges and weights size mismatch");
  }
  const VertexId n = num_vertices;
  const auto m = static_cast<EdgeId>(edges.size());
  auto arrays = std::make_shared<StreamArrays>();
  arrays->endpoints = std::move(edges);
  arrays->weights = std::move(weights);
  for (auto& [u, v] : arrays->endpoints) {
    if (u >= n || v >= n) {
      throw std::invalid_argument("build_csr_parallel: endpoint out of range");
    }
    if (u > v) std::swap(u, v);
  }
  for (const Weight w : arrays->weights) {
    if (!(w >= 0)) {
      throw std::invalid_argument(
          "build_csr_parallel: edge weights must be non-negative");
    }
  }

  arrays->offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  EdgeId self_loops = 0;
  for (const auto& [u, v] : arrays->endpoints) {
    ++arrays->offsets[u + 1];
    ++arrays->offsets[v + 1];
    if (u == v) ++self_loops;
  }
  std::partial_sum(arrays->offsets.begin(), arrays->offsets.end(),
                   arrays->offsets.begin());

  // Serial rank pass: each half-edge's slot within its vertex bucket is its
  // counting-sort rank, so the (expensive, cache-missing) adjacency fill
  // below writes disjoint slots and can run chunked over the pool while
  // producing the exact layout of the serial constructor.
  std::vector<std::size_t> slot_u(m), slot_v(m);
  {
    std::vector<std::size_t> cursor(arrays->offsets.begin(),
                                    arrays->offsets.end() - 1);
    for (EdgeId e = 0; e < m; ++e) {
      const auto [u, v] = arrays->endpoints[e];
      slot_u[e] = cursor[u]++;
      slot_v[e] = cursor[v]++;
    }
  }
  arrays->adjacency.resize(2 * static_cast<std::size_t>(m));
  const auto fill = [&](std::size_t e) {
    const auto [u, v] = arrays->endpoints[e];
    const Weight w = arrays->weights[e];
    arrays->adjacency[slot_u[e]] =
        HalfEdge{v, static_cast<EdgeId>(e), w};
    arrays->adjacency[slot_v[e]] =
        HalfEdge{u, static_cast<EdgeId>(e), w};
  };
  if (pool != nullptr && m > 0) {
    pool->parallel_for(0, m, fill, 8192);
  } else {
    for (EdgeId e = 0; e < m; ++e) fill(e);
  }

  std::vector<std::uint64_t> keys;
  keys.reserve(m);
  for (const auto& [u, v] : arrays->endpoints) {
    keys.push_back((static_cast<std::uint64_t>(u) << 32) | v);
  }
  std::sort(keys.begin(), keys.end());
  const bool has_parallel =
      std::adjacent_find(keys.begin(), keys.end()) != keys.end();

  Graph::BorrowedCsr csr;
  csr.num_vertices = n;
  csr.num_self_loops = self_loops;
  csr.has_parallel_edges = has_parallel;
  csr.external_storage = false;  // the keepalive owns these heap arrays
  csr.offsets = arrays->offsets;
  csr.adjacency = arrays->adjacency;
  csr.endpoints = arrays->endpoints;
  csr.weights = arrays->weights;
  csr.keepalive = arrays;
  return Graph(std::move(csr));
}

}  // namespace eardec::graph::io
