#include "graph/reorder.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>

namespace eardec::graph {

Reordered reorder_with(const Graph& g, std::vector<VertexId> to_new) {
  const VertexId n = g.num_vertices();
  if (to_new.size() != n) {
    throw std::invalid_argument("reorder_with: permutation size mismatch");
  }
  std::vector<VertexId> to_old(n, kNullVertex);
  for (VertexId v = 0; v < n; ++v) {
    if (to_new[v] >= n || to_old[to_new[v]] != kNullVertex) {
      throw std::invalid_argument("reorder_with: not a permutation");
    }
    to_old[to_new[v]] = v;
  }
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::vector<Weight> weights;
  edges.reserve(g.num_edges());
  weights.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    edges.emplace_back(to_new[u], to_new[v]);
    weights.push_back(g.weight(e));
  }
  return {Graph(n, std::move(edges), std::move(weights)), std::move(to_new),
          std::move(to_old)};
}

Reordered reorder_bfs(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> to_new(n, kNullVertex);
  VertexId next = 0;

  // Component seeds by ascending degree (the Cuthill–McKee heuristic).
  std::vector<VertexId> seeds(n);
  std::iota(seeds.begin(), seeds.end(), 0u);
  std::stable_sort(seeds.begin(), seeds.end(), [&g](VertexId a, VertexId b) {
    return g.degree(a) < g.degree(b);
  });

  std::deque<VertexId> queue;
  std::vector<VertexId> nbrs;
  for (const VertexId seed : seeds) {
    if (to_new[seed] != kNullVertex) continue;
    to_new[seed] = next++;
    queue.push_back(seed);
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      nbrs.clear();
      for (const HalfEdge& he : g.neighbors(v)) {
        if (to_new[he.to] == kNullVertex) {
          to_new[he.to] = 0;  // claim to avoid duplicates below
          nbrs.push_back(he.to);
        }
      }
      std::stable_sort(nbrs.begin(), nbrs.end(),
                       [&g](VertexId a, VertexId b) {
                         return g.degree(a) < g.degree(b);
                       });
      for (const VertexId w : nbrs) {
        to_new[w] = next++;
        queue.push_back(w);
      }
    }
  }
  return reorder_with(g, std::move(to_new));
}

Reordered reorder_by_degree(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&g](VertexId a, VertexId b) {
    return g.degree(a) > g.degree(b);
  });
  std::vector<VertexId> to_new(n);
  for (VertexId rank = 0; rank < n; ++rank) to_new[order[rank]] = rank;
  return reorder_with(g, std::move(to_new));
}

}  // namespace eardec::graph
