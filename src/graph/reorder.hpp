// Vertex reordering for memory locality — the "novel data structures and
// memory layout optimizations" direction of the paper's related work
// (Chhugani et al. [7], Gharaibeh et al. [13]). A BFS (Cuthill–McKee-like)
// order places neighbours at nearby ids so the CSR adjacency walks of
// Dijkstra/frontier kernels hit warmer cache lines; a degree-descending
// order groups the hubs the frontier touches most often.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace eardec::graph {

/// A relabeled copy of g plus the maps between old and new vertex ids.
struct Reordered {
  Graph graph;
  std::vector<VertexId> to_new;  ///< old id -> new id
  std::vector<VertexId> to_old;  ///< new id -> old id
};

/// Breadth-first (Cuthill–McKee style) relabeling: components in order,
/// each traversed from its minimum-degree vertex, neighbours by ascending
/// degree.
[[nodiscard]] Reordered reorder_bfs(const Graph& g);

/// Degree-descending relabeling (hubs first).
[[nodiscard]] Reordered reorder_by_degree(const Graph& g);

/// Applies an arbitrary permutation (`to_new[v]` = new id of v; must be a
/// bijection — throws otherwise).
[[nodiscard]] Reordered reorder_with(const Graph& g,
                                     std::vector<VertexId> to_new);

}  // namespace eardec::graph
