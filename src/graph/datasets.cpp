#include "graph/datasets.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace eardec::graph::datasets {
namespace {

using generators::BlockTreeParams;

/// Subdivides `g` so that roughly `deg2_pct` percent of the *final* vertex
/// count are inserted degree-two vertices: extra / (core + extra) = pct.
Graph with_degree2_fraction(Graph g, double deg2_pct, std::uint64_t seed) {
  if (deg2_pct <= 0.0) return g;
  const double core = g.num_vertices();
  const auto extra = static_cast<VertexId>(
      std::llround(core * deg2_pct / (100.0 - deg2_pct)));
  if (extra == 0) return g;
  return generators::subdivide(g, extra, seed);
}

Graph uf_like(const BlockTreeParams& p, double deg2_pct, std::uint64_t seed) {
  return with_degree2_fraction(generators::block_tree(p, seed), deg2_pct,
                               seed ^ 0x9e3779b97f4a7c15ULL);
}

Graph bicc_like(VertexId n, EdgeId m, double deg2_pct, std::uint64_t seed) {
  return with_degree2_fraction(generators::random_biconnected(n, m, seed),
                               deg2_pct, seed ^ 0x9e3779b97f4a7c15ULL);
}

Graph planar_like(VertexId rows, VertexId cols, double drop, double deg2_pct,
                  VertexId pendants, std::uint64_t seed) {
  Graph base =
      generators::random_planar(rows, cols, /*diag_prob=*/0.6, drop, seed);
  if (pendants > 0) {
    // A short pendant fringe models the cut-vertex structure the paper's
    // OGDF planar graphs show (their #BCC column); stays planar.
    generators::Rng rng(seed * 31 + 7);
    const VertexId n = base.num_vertices();
    Builder b(n + pendants);
    for (EdgeId e = 0; e < base.num_edges(); ++e) {
      const auto [u, v] = base.endpoints(e);
      b.add_edge(u, v, base.weight(e));
    }
    std::uniform_int_distribution<VertexId> pick(0, n - 1);
    std::uniform_int_distribution<std::uint32_t> w(1, 100);
    for (VertexId i = 0; i < pendants; ++i) {
      b.add_edge(pick(rng), n + i, static_cast<Weight>(w(rng)));
    }
    base = std::move(b).build();
  }
  return with_degree2_fraction(std::move(base), deg2_pct,
                               seed ^ 0x9e3779b97f4a7c15ULL);
}

std::vector<Dataset> build_registry() {
  std::vector<Dataset> ds;
  const auto add = [&ds](Dataset d) { ds.push_back(std::move(d)); };

  // -------- General graphs (UF Sparse Matrix Collection stand-ins) --------
  add({.name = "nopoly",
       .planar = false,
       .paper = {10e3, 30e3, 1, 100.0, 0.018, 443, 443},
       .make = [] { return bicc_like(320, 960, 0.0, 101); },
       .make_small = [] { return bicc_like(120, 360, 0.0, 102); }});

  add({.name = "OPF_3754",
       .planar = false,
       .paper = {15e3, 86e3, 1, 100.0, 1.98, 873, 909},
       .make = [] { return bicc_like(460, 2640, 1.98, 103); },
       .make_small = [] { return bicc_like(150, 860, 1.98, 104); }});

  add({.name = "ca-AstroPh",
       .planar = false,
       .paper = {18e3, 198e3, 647, 98.43, 15.85, 970, 1344},
       .make =
           [] {
             return uf_like({.num_blocks = 20,
                             .largest_block = 470,
                             .small_block_min = 3,
                             .small_block_max = 6,
                             .intra_degree = 20,
                             .small_intra_degree = 2.4,
                             .pendants = 15},
                            8.0, 105);
           },
       .make_small =
           [] {
             return uf_like({.num_blocks = 8,
                             .largest_block = 150,
                             .small_block_min = 3,
                             .small_block_max = 5,
                             .intra_degree = 16,
                             .small_intra_degree = 2.4,
                             .pendants = 6},
                            15.85, 106);
           }});

  add({.name = "as-22july06",
       .planar = false,
       .paper = {22e3, 48e3, 13, 99.9, 77.60, 851, 2012},
       .make =
           [] {
             return uf_like({.num_blocks = 13,
                             .largest_block = 120,
                             .small_block_min = 3,
                             .small_block_max = 4,
                             .intra_degree = 12,
                             .small_intra_degree = 2.2,
                             .pendants = 10},
                            77.60, 107);
           },
       .make_small =
           [] {
             return uf_like({.num_blocks = 6,
                             .largest_block = 56,
                             .small_block_min = 3,
                             .small_block_max = 4,
                             .intra_degree = 9,
                             .small_intra_degree = 2.2,
                             .pendants = 5},
                            77.60, 108);
           }});

  add({.name = "c-50",
       .planar = false,
       .paper = {22e3, 90e3, 1, 100.0, 52.04, 651, 1914},
       .make = [] { return bicc_like(330, 2440, 52.04, 109); },
       .make_small = [] { return bicc_like(110, 810, 52.04, 110); }});

  add({.name = "cond_mat_2003",
       .planar = false,
       .paper = {31e3, 120e3, 2157, 80.52, 26.88, 1826, 3705},
       .make =
           [] {
             return uf_like({.num_blocks = 67,
                             .largest_block = 260,
                             .small_block_min = 3,
                             .small_block_max = 8,
                             .intra_degree = 10,
                             .small_intra_degree = 2.6,
                             .pendants = 60},
                            0.0, 111);
           },
       .make_small =
           [] {
             return uf_like({.num_blocks = 20,
                             .largest_block = 90,
                             .small_block_min = 3,
                             .small_block_max = 6,
                             .intra_degree = 8,
                             .small_intra_degree = 2.6,
                             .pendants = 18},
                            0.0, 112);
           }});

  add({.name = "delaunay_n15",
       .planar = true,
       .paper = {32e3, 98e3, 1, 100.0, 0.0, 4096, 4096},
       .make =
           [] {
             return generators::random_planar(32, 32, /*diag_prob=*/1.0,
                                              /*drop_prob=*/0.0, 113);
           },
       .make_small =
           [] {
             return generators::random_planar(12, 12, /*diag_prob=*/1.0,
                                              /*drop_prob=*/0.0, 114);
           }});

  add({.name = "Rajat26",
       .planar = false,
       .paper = {51e3, 247e3, 5053, 95.17, 32.92, 7176, 9934},
       .make =
           [] {
             return uf_like({.num_blocks = 158,
                             .largest_block = 520,
                             .small_block_min = 3,
                             .small_block_max = 6,
                             .intra_degree = 12,
                             .small_intra_degree = 2.6,
                             .pendants = 100},
                            0.0, 115);
           },
       .make_small =
           [] {
             return uf_like({.num_blocks = 30,
                             .largest_block = 110,
                             .small_block_min = 3,
                             .small_block_max = 5,
                             .intra_degree = 9,
                             .small_intra_degree = 2.6,
                             .pendants = 20},
                            0.0, 116);
           }});

  add({.name = "Wordnet3",
       .planar = false,
       .paper = {82e3, 132e3, 156, 98.92, 77.24, 4663, 26071},
       .make =
           [] {
             return uf_like({.num_blocks = 30,
                             .largest_block = 400,
                             .small_block_min = 3,
                             .small_block_max = 5,
                             .intra_degree = 3.6,
                             .small_intra_degree = 2.2,
                             .pendants = 120},
                            80.0, 117);
           },
       .make_small =
           [] {
             return uf_like({.num_blocks = 10,
                             .largest_block = 90,
                             .small_block_min = 3,
                             .small_block_max = 5,
                             .intra_degree = 3.4,
                             .small_intra_degree = 2.2,
                             .pendants = 25},
                            77.24, 118);
           }});

  add({.name = "soc-sign-epinions",
       .planar = false,
       .paper = {131e3, 841e3, 609, 99.7, 67.86, 12932, 66294},
       .make =
           [] {
             return uf_like({.num_blocks = 40,
                             .largest_block = 900,
                             .small_block_min = 3,
                             .small_block_max = 6,
                             .intra_degree = 18,
                             .small_intra_degree = 2.4,
                             .pendants = 200},
                            67.86, 119);
           },
       .make_small =
           [] {
             return uf_like({.num_blocks = 12,
                             .largest_block = 160,
                             .small_block_min = 3,
                             .small_block_max = 5,
                             .intra_degree = 12,
                             .small_intra_degree = 2.4,
                             .pendants = 40},
                            67.86, 120);
           }});

  // -------- Planar graphs (OGDF stand-ins) --------
  const struct {
    const char* name;
    VertexId rows, cols;
    double drop, deg2;
    VertexId pendants;
    PaperStats paper;
  } planar_specs[] = {
      {"Planar_1", 21, 28, 0.10, 12.42, 2, {19e3, 54e3, 46, 99.55, 12.42, 1278, 1296}},
      {"Planar_2", 25, 31, 0.15, 5.63, 5, {25e3, 64e3, 164, 93.65, 5.63, 1627, 1881}},
      {"Planar_3", 29, 32, 0.20, 19.72, 9, {30e3, 70e3, 298, 96.53, 19.72, 2068, 2275}},
      {"Planar_4", 32, 35, 0.12, 18.56, 5, {36e3, 94e3, 175, 98.37, 18.56, 3890, 4074}},
      {"Planar_5", 34, 38, 0.08, 16.34, 7, {41e3, 128e3, 223, 95.63, 16.34, 4350, 4942}},
  };
  std::uint64_t seed = 121;
  for (const auto& ps : planar_specs) {
    const auto rows = ps.rows;
    const auto cols = ps.cols;
    const auto drop = ps.drop;
    const auto deg2 = ps.deg2;
    const auto pendants = ps.pendants;
    const auto s1 = seed++, s2 = seed++;
    add({.name = ps.name,
         .planar = true,
         .paper = ps.paper,
         .make =
             [=] { return planar_like(rows, cols, drop, deg2, pendants, s1); },
         .make_small =
             [=] {
               return planar_like(rows / 2 + 2, cols / 2 + 2, drop, deg2,
                                  pendants / 2, s2);
             }});
  }

  return ds;
}

}  // namespace

const std::vector<Dataset>& table1() {
  static const std::vector<Dataset> registry = build_registry();
  return registry;
}

std::vector<Dataset> mcb_seven() {
  const auto& all = table1();
  return {all.begin(), all.begin() + 7};
}

const Dataset& by_name(const std::string& name) {
  for (const auto& d : table1()) {
    if (d.name == name) return d;
  }
  throw std::out_of_range("datasets::by_name: unknown dataset " + name);
}

}  // namespace eardec::graph::datasets
