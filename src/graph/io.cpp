#include "graph/io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "graph/builder.hpp"

namespace eardec::graph::io {
namespace {

std::string next_content_line(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '%' || line[first] == '#') continue;
    return line;
  }
  return {};
}

Weight sanitize_weight(double w) {
  w = std::abs(w);
  return w == 0.0 ? 1.0 : w;
}

}  // namespace

Graph read_matrix_market(std::istream& in) {
  std::string header;
  if (!std::getline(in, header) || !header.starts_with("%%MatrixMarket")) {
    throw std::runtime_error("read_matrix_market: missing %%MatrixMarket header");
  }
  std::istringstream hs(header);
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  if (object != "matrix" || format != "coordinate") {
    throw std::runtime_error("read_matrix_market: only coordinate matrices supported");
  }
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer") {
    throw std::runtime_error("read_matrix_market: unsupported field type " + field);
  }
  if (symmetry != "general" && symmetry != "symmetric") {
    throw std::runtime_error("read_matrix_market: unsupported symmetry " + symmetry);
  }

  const std::string sizes = next_content_line(in);
  std::istringstream ss(sizes);
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  if (!(ss >> rows >> cols >> nnz) || rows != cols) {
    throw std::runtime_error("read_matrix_market: bad size line (need square matrix)");
  }

  Builder b(static_cast<VertexId>(rows));
  for (std::uint64_t k = 0; k < nnz; ++k) {
    const std::string line = next_content_line(in);
    if (line.empty()) {
      throw std::runtime_error("read_matrix_market: truncated entry list");
    }
    std::istringstream ls(line);
    std::uint64_t i = 0, j = 0;
    double w = 1.0;
    if (!(ls >> i >> j)) {
      throw std::runtime_error("read_matrix_market: malformed entry");
    }
    // real/integer files must carry a parseable value per entry; silently
    // defaulting a garbled weight to 1.0 would corrupt the graph.
    if (!pattern && !(ls >> w)) {
      throw std::runtime_error("read_matrix_market: bad weight in entry: " +
                               line);
    }
    if (i == 0 || j == 0 || i > rows || j > cols) {
      throw std::runtime_error("read_matrix_market: index out of range");
    }
    b.add_edge(static_cast<VertexId>(i - 1), static_cast<VertexId>(j - 1),
               sanitize_weight(w));
  }
  return std::move(b).build(ParallelEdgePolicy::KeepMinWeight);
}

Graph read_matrix_market_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Graph& g) {
  // max_digits10 makes the text round-trip exact: read(write(g)) returns
  // bitwise-equal weights, which the format property tests rely on.
  const auto old_precision =
      out.precision(std::numeric_limits<double>::max_digits10);
  out << "%%MatrixMarket matrix coordinate real symmetric\n";
  out << g.num_vertices() << ' ' << g.num_vertices() << ' ' << g.num_edges()
      << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    // Matrix Market symmetric files store the lower triangle: row >= col.
    out << (std::max(u, v) + 1) << ' ' << (std::min(u, v) + 1) << ' '
        << g.weight(e) << '\n';
  }
  out.precision(old_precision);
}

void write_matrix_market_file(const std::filesystem::path& path,
                              const Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path.string());
  write_matrix_market(out, g);
}

Graph read_edge_list(std::istream& in) {
  Builder b(0);
  std::string line;
  while (true) {
    line = next_content_line(in);
    if (line.empty()) break;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    double w = 1.0;
    if (!(ls >> u >> v)) {
      throw std::runtime_error("read_edge_list: malformed line: " + line);
    }
    // The third column is optional, but if present it must be numeric.
    ls >> w;
    if (ls.fail() && !ls.eof()) {
      throw std::runtime_error("read_edge_list: bad weight in line: " + line);
    }
    b.ensure_vertex(static_cast<VertexId>(u));
    b.ensure_vertex(static_cast<VertexId>(v));
    b.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v), w);
  }
  return std::move(b).build();
}

void write_edge_list(std::ostream& out, const Graph& g) {
  const auto old_precision =
      out.precision(std::numeric_limits<double>::max_digits10);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    out << u << ' ' << v << ' ' << g.weight(e) << '\n';
  }
  out.precision(old_precision);
}

}  // namespace eardec::graph::io
