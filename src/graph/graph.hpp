// Immutable CSR (compressed sparse row) representation of a weighted
// undirected multigraph. This is the substrate every algorithm in the
// library operates on.
//
// Representation notes:
//  * Each undirected edge {u, v} is stored as two half-edges, one in the
//    adjacency list of u and one in that of v. Both half-edges carry the
//    same EdgeId, so an algorithm walking the adjacency of u can recover
//    the undirected edge (and its "other" endpoint) in O(1).
//  * Self-loops {v, v} are stored as two half-edges in the adjacency of v,
//    consistent with the handshake lemma: a self-loop contributes 2 to
//    degree(v). MCB treats a self-loop as a cycle of length 1.
//  * Parallel edges are allowed: the reduced graphs produced by ear
//    contraction for MCB are genuine multigraphs (Lemma 3.1 of the paper).
//
// Storage model: a Graph reads its four CSR arrays through spans. The spans
// either point into heap arrays built by the edge-list constructor ("owned"
// storage) or into externally managed memory such as an mmap'd EDG2 file
// ("borrowed" storage — see graph/edg2.hpp). In both cases a shared_ptr
// keepalive pins the backing storage, so copies of a Graph are O(1) and
// share the immutable arrays.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/types.hpp"

namespace eardec::graph {

/// A single adjacency entry: the far endpoint of a half-edge plus the id and
/// weight of the undirected edge it belongs to.
struct HalfEdge {
  VertexId to;
  EdgeId edge;
  Weight weight;
};

// The EDG2 zero-copy loader maps these arrays straight off disk; the layout
// must stay raw-byte serializable.
static_assert(std::is_trivially_copyable_v<HalfEdge> &&
              sizeof(HalfEdge) == 16);
// std::pair is not trivially copyable (its assignment operator is
// user-provided), but trivial copy-construction + standard layout is what
// byte-level serialization of the endpoint array actually relies on.
static_assert(
    std::is_trivially_copy_constructible_v<std::pair<VertexId, VertexId>> &&
    std::is_standard_layout_v<std::pair<VertexId, VertexId>> &&
    sizeof(std::pair<VertexId, VertexId>) == 8);

/// Immutable weighted undirected multigraph in CSR layout.
///
/// Construction goes through graph::Builder (builder.hpp); the constructor
/// taking raw arrays is public so tests and IO can build directly.
class Graph {
 public:
  /// Empty graph (0 vertices, 0 edges).
  Graph() = default;

  /// Builds a graph over `num_vertices` vertices from an edge list.
  /// `edges[e]` is the endpoint pair of edge id `e`; `weights[e]` its weight.
  /// Endpoints must be < num_vertices. Weights must be non-negative.
  Graph(VertexId num_vertices, std::vector<std::pair<VertexId, VertexId>> edges,
        std::vector<Weight> weights);

  /// Pre-built CSR arrays borrowed from external storage. The spans must
  /// describe a consistent CSR image (the EDG2 reader validates on load);
  /// `keepalive` pins the backing memory for the life of every Graph copy.
  struct BorrowedCsr {
    VertexId num_vertices = 0;
    EdgeId num_self_loops = 0;
    bool has_parallel_edges = false;
    /// What borrowed_storage() reports. True for genuinely external memory
    /// (an mmap'd file); adopters that hand over heap arrays they own via
    /// `keepalive` (the EDG2 stream reader, the parallel CSR builder) set
    /// it false — the Graph's lifetime story is then the same as the
    /// edge-list constructor's.
    bool external_storage = true;
    std::span<const std::size_t> offsets;                    ///< size n+1
    std::span<const HalfEdge> adjacency;                     ///< size 2m
    std::span<const std::pair<VertexId, VertexId>> endpoints;///< size m
    std::span<const Weight> weights;                         ///< size m
    std::shared_ptr<const void> keepalive;
  };

  /// Adopts borrowed CSR storage (zero-copy). Validates only the array
  /// *shapes* (span sizes vs the counts) — content validation is the
  /// loader's job. Throws std::invalid_argument on a shape mismatch.
  explicit Graph(BorrowedCsr csr);

  /// True iff the CSR arrays live in external storage (e.g. an mmap'd EDG2
  /// section) rather than heap arrays built by the edge-list constructor.
  [[nodiscard]] bool borrowed_storage() const noexcept { return borrowed_; }

  /// Number of vertices n.
  [[nodiscard]] VertexId num_vertices() const noexcept { return n_; }

  /// Number of undirected edges m (self-loops and parallels each count once).
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(endpoints_.size());
  }

  /// Degree of v, counting a self-loop twice (handshake convention).
  [[nodiscard]] std::size_t degree(VertexId v) const noexcept {
    assert(v < n_);
    return offsets_[v + 1] - offsets_[v];
  }

  /// Adjacency list of v as a contiguous span of half-edges.
  [[nodiscard]] std::span<const HalfEdge> neighbors(VertexId v) const noexcept {
    assert(v < n_);
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }

  /// Endpoints (u, v) of edge id e, with u <= v.
  [[nodiscard]] std::pair<VertexId, VertexId> endpoints(EdgeId e) const noexcept {
    assert(e < num_edges());
    return endpoints_[e];
  }

  /// Weight of edge id e.
  [[nodiscard]] Weight weight(EdgeId e) const noexcept {
    assert(e < num_edges());
    return weights_[e];
  }

  /// Given edge e and one endpoint v, returns the other endpoint.
  /// For a self-loop returns v itself.
  [[nodiscard]] VertexId other_endpoint(EdgeId e, VertexId v) const noexcept {
    const auto [a, b] = endpoints(e);
    assert(v == a || v == b);
    return v == a ? b : a;
  }

  /// True iff edge e is a self-loop.
  [[nodiscard]] bool is_self_loop(EdgeId e) const noexcept {
    const auto [a, b] = endpoints(e);
    return a == b;
  }

  /// Sum of all edge weights.
  [[nodiscard]] Weight total_weight() const noexcept;

  /// Number of self-loop edges.
  [[nodiscard]] EdgeId num_self_loops() const noexcept { return num_self_loops_; }

  /// True iff the graph contains at least one pair of parallel edges.
  [[nodiscard]] bool has_parallel_edges() const noexcept { return has_parallel_; }

  /// All edges as (endpoints, weight), indexed by EdgeId. Handy for
  /// algorithms that iterate edges rather than adjacencies.
  [[nodiscard]] std::span<const std::pair<VertexId, VertexId>> edge_list()
      const noexcept {
    return endpoints_;
  }

  /// Per-edge weights, indexed by EdgeId.
  [[nodiscard]] std::span<const Weight> edge_weights() const noexcept {
    return weights_;
  }

  /// The raw CSR offset array (size n+1): adjacency entries of v occupy
  /// [offsets[v], offsets[v+1]). Exposed for serializers (EDG2) and for
  /// algorithms that stream the whole adjacency array flat.
  [[nodiscard]] std::span<const std::size_t> csr_offsets() const noexcept {
    return offsets_;
  }

  /// The raw flat adjacency array (size 2m), concatenated per-vertex lists.
  [[nodiscard]] std::span<const HalfEdge> csr_adjacency() const noexcept {
    return adjacency_;
  }

 private:
  VertexId n_ = 0;
  EdgeId num_self_loops_ = 0;
  bool has_parallel_ = false;
  bool borrowed_ = false;
  std::span<const std::size_t> offsets_;                     // size n+1
  std::span<const HalfEdge> adjacency_;                      // size 2m
  std::span<const std::pair<VertexId, VertexId>> endpoints_; // size m, u<=v
  std::span<const Weight> weights_;                          // size m
  /// Pins the arrays the spans point into: the OwnedArrays built by the
  /// edge-list constructor, or external storage (mmap) for borrowed mode.
  std::shared_ptr<const void> storage_;
};

}  // namespace eardec::graph
