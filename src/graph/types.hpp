// Fundamental identifier and weight types shared by every eardec subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace eardec::graph {

/// Vertex identifier. Vertices of a graph with n vertices are 0..n-1.
using VertexId = std::uint32_t;

/// Undirected edge identifier. Edges of a graph with m edges are 0..m-1.
/// Both half-edges (u->v and v->u) of an undirected edge carry the same id.
using EdgeId = std::uint32_t;

/// Edge weight. The algorithms in this library require non-negative weights
/// (Dijkstra-based); generators produce weights in [1, 100] by default.
using Weight = double;

/// Sentinel for "no vertex".
inline constexpr VertexId kNullVertex = std::numeric_limits<VertexId>::max();

/// Sentinel for "no edge".
inline constexpr EdgeId kNullEdge = std::numeric_limits<EdgeId>::max();

/// Distance value for unreachable pairs.
inline constexpr Weight kInfWeight = std::numeric_limits<Weight>::infinity();

}  // namespace eardec::graph
