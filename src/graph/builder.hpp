// Mutable edge-list accumulator that finalizes into an immutable CSR Graph.
#pragma once

#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace eardec::graph {

/// Policy applied to parallel edges when a Builder finalizes.
enum class ParallelEdgePolicy {
  /// Keep every edge as given (multigraph). Required for MCB reduced graphs.
  Keep,
  /// Of each parallel bundle keep only the minimum-weight edge. This is the
  /// right policy for shortest-path computations (paper, Section 2.1.1).
  KeepMinWeight,
};

/// Accumulates edges and produces a Graph.
///
/// Usage:
///   Builder b(5);
///   b.add_edge(0, 1, 2.0);
///   Graph g = std::move(b).build();
class Builder {
 public:
  explicit Builder(VertexId num_vertices) : n_(num_vertices) {}

  /// Adds an undirected edge {u, v} with weight w; returns its EdgeId under
  /// ParallelEdgePolicy::Keep (ids shift if KeepMinWeight drops edges).
  EdgeId add_edge(VertexId u, VertexId v, Weight w = 1.0);

  /// Grows the vertex set so that `v` is a valid vertex.
  void ensure_vertex(VertexId v);

  [[nodiscard]] VertexId num_vertices() const noexcept { return n_; }
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(edges_.size());
  }

  /// Finalizes into a CSR graph. Consumes the builder.
  [[nodiscard]] Graph build(
      ParallelEdgePolicy policy = ParallelEdgePolicy::Keep) &&;

 private:
  VertexId n_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::vector<Weight> weights_;
};

}  // namespace eardec::graph
