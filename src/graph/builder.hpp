// Mutable edge-list accumulator that finalizes into an immutable CSR Graph.
#pragma once

#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace eardec::graph {

/// Policy applied to parallel edges when a Builder finalizes.
///
/// Duplicate edges — several edges over the same unordered endpoint pair,
/// possibly with identical weights — and zero-weight edges are both legal
/// inputs; the two policies give them different, documented treatments:
///
///  * Keep            — the multigraph is preserved exactly as accumulated:
///                      every duplicate keeps its own EdgeId (in insertion
///                      order) and its own weight, and self-loops survive.
///                      This is the policy MCB construction requires: each
///                      parallel edge and self-loop adds one dimension to the
///                      cycle space (Lemma 3.1 contracts chains into exactly
///                      such multi-edges).
///  * KeepMinWeight   — each parallel bundle (including a bundle of
///                      self-loops at one vertex) collapses to its single
///                      minimum-weight member; on ties the edge added first
///                      wins, so the result is deterministic and independent
///                      of weight perturbations. Surviving edges are
///                      renumbered by the first occurrence of their bundle.
///                      Self-loops are kept (collapsed per vertex) — they are
///                      inert for shortest paths (a non-negative loop never
///                      shortens a walk) but IO round-trips rely on them.
///                      This is the right policy for shortest-path
///                      computations (paper, Section 2.1.1: "retain the edge
///                      with the shortest weight").
///
/// Zero-weight edges are valid under both policies (Dijkstra only requires
/// non-negative weights); they participate in bundles like any other edge.
enum class ParallelEdgePolicy {
  /// Keep every edge as given (multigraph). Required for MCB reduced graphs.
  Keep,
  /// Of each parallel bundle keep only the minimum-weight edge (first-added
  /// wins ties). This is the right policy for shortest-path computations.
  KeepMinWeight,
};

/// Accumulates edges and produces a Graph.
///
/// Usage:
///   Builder b(5);
///   b.add_edge(0, 1, 2.0);
///   Graph g = std::move(b).build();
class Builder {
 public:
  explicit Builder(VertexId num_vertices) : n_(num_vertices) {}

  /// Adds an undirected edge {u, v} with weight w; returns its EdgeId under
  /// ParallelEdgePolicy::Keep (ids shift if KeepMinWeight drops edges).
  /// Throws std::out_of_range for endpoints >= num_vertices() and
  /// std::invalid_argument for negative, NaN, or infinite weights — the
  /// whole library requires finite non-negative weights, and rejecting them
  /// here (rather than at Graph construction) points at the offending
  /// add_edge call. Zero weights are accepted.
  EdgeId add_edge(VertexId u, VertexId v, Weight w = 1.0);

  /// Grows the vertex set so that `v` is a valid vertex.
  void ensure_vertex(VertexId v);

  [[nodiscard]] VertexId num_vertices() const noexcept { return n_; }
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(edges_.size());
  }

  /// Finalizes into a CSR graph. Consumes the builder.
  [[nodiscard]] Graph build(
      ParallelEdgePolicy policy = ParallelEdgePolicy::Keep) &&;

 private:
  VertexId n_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::vector<Weight> weights_;
};

}  // namespace eardec::graph
