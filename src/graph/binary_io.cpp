#include "graph/binary_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace eardec::graph::io {
namespace {

constexpr std::array<char, 4> kMagic = {'E', 'D', 'G', '1'};

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("read_binary: truncated stream");
  return value;
}

}  // namespace

void write_binary(std::ostream& out, const Graph& g) {
  out.write(kMagic.data(), kMagic.size());
  write_pod<std::uint64_t>(out, g.num_vertices());
  write_pod<std::uint64_t>(out, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    write_pod<std::uint32_t>(out, u);
    write_pod<std::uint32_t>(out, v);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    write_pod<double>(out, g.weight(e));
  }
}

void write_binary_file(const std::filesystem::path& path, const Graph& g) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path.string());
  write_binary(out, g);
}

Graph read_binary(std::istream& in) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("read_binary: bad magic (not an EDG1 file)");
  }
  const auto n64 = read_pod<std::uint64_t>(in);
  const auto m64 = read_pod<std::uint64_t>(in);
  if (n64 > std::numeric_limits<VertexId>::max() ||
      m64 > std::numeric_limits<EdgeId>::max()) {
    throw std::runtime_error("read_binary: counts out of range");
  }
  const auto n = static_cast<VertexId>(n64);
  const auto m = static_cast<EdgeId>(m64);
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(m);
  for (EdgeId e = 0; e < m; ++e) {
    const auto u = read_pod<std::uint32_t>(in);
    const auto v = read_pod<std::uint32_t>(in);
    if (u >= n || v >= n) {
      throw std::runtime_error("read_binary: endpoint out of range");
    }
    edges.emplace_back(u, v);
  }
  std::vector<Weight> weights;
  weights.reserve(m);
  for (EdgeId e = 0; e < m; ++e) {
    const double w = read_pod<double>(in);
    if (!(w >= 0)) throw std::runtime_error("read_binary: negative weight");
    weights.push_back(w);
  }
  return Graph(n, std::move(edges), std::move(weights));
}

Graph read_binary_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  return read_binary(in);
}

}  // namespace eardec::graph::io
