#include "graph/builder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace eardec::graph {

EdgeId Builder::add_edge(VertexId u, VertexId v, Weight w) {
  if (u >= n_ || v >= n_) {
    throw std::out_of_range("Builder::add_edge: endpoint out of range");
  }
  // Finite non-negative weights only (zero is fine). Catching NaN here also
  // keeps the KeepMinWeight bundle comparison below well-defined.
  if (!(w >= 0) || !std::isfinite(w)) {
    throw std::invalid_argument(
        "Builder::add_edge: weight must be finite and non-negative");
  }
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.emplace_back(u, v);
  weights_.push_back(w);
  return id;
}

void Builder::ensure_vertex(VertexId v) {
  if (v >= n_) n_ = v + 1;
}

Graph Builder::build(ParallelEdgePolicy policy) && {
  if (policy == ParallelEdgePolicy::KeepMinWeight) {
    // One surviving edge per unordered endpoint pair (self-loop bundles
    // collapse per vertex), renumbered by first occurrence of the bundle.
    std::unordered_map<std::uint64_t, std::size_t> best;  // pair key -> index
    best.reserve(edges_.size() * 2);
    std::vector<std::pair<VertexId, VertexId>> edges;
    std::vector<Weight> weights;
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      auto [u, v] = edges_[i];
      if (u > v) std::swap(u, v);
      const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
      auto [it, inserted] = best.emplace(key, edges.size());
      if (inserted) {
        edges.emplace_back(u, v);
        weights.push_back(weights_[i]);
      } else if (weights_[i] < weights[it->second]) {
        // Strict < : equal-weight duplicates keep the first-added edge.
        weights[it->second] = weights_[i];
      }
    }
    return Graph(n_, std::move(edges), std::move(weights));
  }
  return Graph(n_, std::move(edges_), std::move(weights_));
}

}  // namespace eardec::graph
