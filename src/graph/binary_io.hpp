// Compact binary graph format ("EDG1"): magic, counts, then the raw edge
// arrays. Orders of magnitude faster to load than Matrix Market text for
// the benchmark-scale graphs, with integrity checks on read.
//
// Layout (little-endian, as written by the host):
//   char[4]  magic "EDG1"
//   u64      num_vertices
//   u64      num_edges
//   u32[2m]  endpoint pairs (u, v) per edge
//   f64[m]   weights
#pragma once

#include <filesystem>
#include <iosfwd>

#include "graph/graph.hpp"

namespace eardec::graph::io {

void write_binary(std::ostream& out, const Graph& g);
void write_binary_file(const std::filesystem::path& path, const Graph& g);

/// Throws std::runtime_error on bad magic, truncation, or invalid counts.
[[nodiscard]] Graph read_binary(std::istream& in);
[[nodiscard]] Graph read_binary_file(const std::filesystem::path& path);

}  // namespace eardec::graph::io
