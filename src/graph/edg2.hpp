// EDG2 — the packed binary graph format behind the million-node ingestion
// path. Unlike EDG1 (binary_io.hpp), which stores an *edge list* and pays a
// full CSR rebuild on every load, an EDG2 file stores the final CSR arrays
// themselves in page-aligned sections, so loading is an mmap plus pointer
// fixup: the returned Graph borrows the mapped sections directly (see
// Graph::BorrowedCsr) and no edge array is ever copied.
//
// Layout (host-endian, page-aligned):
//   [0, 4096)       header: magic "EDG2", format version, counts
//                   (n, m, self-loops), flags, a 4-entry section table,
//                   a chunked-FNV payload checksum, an FNV header checksum
//                   and a provenance string.
//   section 1       csr offsets    (n+1) x u64
//   section 2       adjacency      2m x HalfEdge {u32 to, u32 edge, f64 w}
//   section 3       endpoints      m x {u32 u, u32 v}, normalized u <= v
//   section 4       weights        m x f64
// Every section starts on a 4096-byte boundary and is zero-padded to one.
//
// Validation tiers: Shallow (the default for mmap loads) verifies the
// header checksum, counts and section geometry only — O(1) pages touched,
// which is what keeps the load zero-copy in practice (RSS grows only as
// algorithms fault pages in). Deep additionally verifies the payload
// checksum and endpoint ranges, touching every page; the test suite and
// `eardec_cli summarize --deep` use it.
//
// docs/scaling.md describes the format, the borrowed-storage lifetime
// rules, and the conversion workflow.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "hetero/thread_pool.hpp"

namespace eardec::graph::io {

/// Format revision written by this library. Bump on any layout change.
inline constexpr std::uint32_t kEdg2Version = 1;

/// Header size == section alignment. Sections are mmap'd directly, so they
/// must start page-aligned for any plausible page size up to 4 KiB.
inline constexpr std::size_t kEdg2Align = 4096;

/// How much of the file read_edg2_file() verifies before trusting it.
enum class Edg2Validate {
  /// Header checksum + counts + section geometry. O(1) pages touched —
  /// preserves the zero-copy load (default).
  Shallow,
  /// Shallow plus the payload checksum, endpoint-range scan, and
  /// zero-padding check (every byte of the file accounted for). Touches
  /// every page; use for ingest gates and tests.
  Deep,
};

/// Writes g as an EDG2 file. Deterministic: the same graph (and provenance
/// string) always produces a byte-identical file. `pool` parallelizes the
/// payload checksum over 4 MiB chunks; pass nullptr for serial.
void write_edg2_file(const std::filesystem::path& path, const Graph& g,
                     hetero::ThreadPool* pool = nullptr,
                     const std::string& provenance = "eardec");

/// Maps an EDG2 file and returns a Graph borrowing the mapped sections
/// (Graph::borrowed_storage() == true). The mapping lives as long as any
/// copy of the returned Graph. Throws std::runtime_error on open/mmap
/// failure or validation failure at the requested tier.
[[nodiscard]] Graph read_edg2_file(
    const std::filesystem::path& path,
    Edg2Validate validate = Edg2Validate::Shallow);

/// Stream reader producing owned heap storage with bitwise-identical
/// arrays — the fallback (and differential check) for the mmap path.
/// Always deep-validates (it reads every byte anyway).
[[nodiscard]] Graph read_edg2_stream(std::istream& in);

/// Header fields without loading the payload, for `eardec_cli summarize`
/// and format tooling.
struct Edg2Info {
  std::uint32_t version = 0;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t num_self_loops = 0;
  bool has_parallel_edges = false;
  std::uint64_t file_bytes = 0;
  std::uint64_t payload_bytes = 0;  ///< sum of the four section lengths
  std::string provenance;
};
[[nodiscard]] Edg2Info inspect_edg2_file(const std::filesystem::path& path);

/// Builds a CSR Graph from an edge list with the fill chunked over `pool`
/// — bit-identical to the serial Graph edge-list constructor (each
/// half-edge's slot is a deterministic rank, so the parallel fill writes
/// disjoint slots in any order). The converter and the scale generators use
/// this; at million-edge scale the adjacency fill dominates construction.
[[nodiscard]] Graph build_csr_parallel(VertexId num_vertices,
                                       std::vector<std::pair<VertexId, VertexId>> edges,
                                       std::vector<Weight> weights,
                                       hetero::ThreadPool* pool);

}  // namespace eardec::graph::io
