#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "graph/builder.hpp"

namespace eardec::graph::generators {
namespace {

Weight rand_weight(Rng& rng, WeightRange wr) {
  std::uniform_int_distribution<std::uint32_t> dist(wr.lo, wr.hi);
  return static_cast<Weight>(dist(rng));
}

std::uint64_t pair_key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// Adds a random biconnected (for size >= 3) subgraph over the given vertex
/// ids: a Hamiltonian cycle through a random permutation plus chords until
/// `target_edges` simple edges exist. size == 2 degenerates to a single edge.
void add_random_biconnected_block(Builder& b, std::span<const VertexId> ids,
                                  EdgeId target_edges, Rng& rng,
                                  WeightRange wr) {
  const auto size = static_cast<VertexId>(ids.size());
  if (size < 2) return;
  if (size == 2) {
    b.add_edge(ids[0], ids[1], rand_weight(rng, wr));
    return;
  }
  std::vector<VertexId> perm(ids.begin(), ids.end());
  std::shuffle(perm.begin(), perm.end(), rng);
  std::unordered_set<std::uint64_t> used;
  for (VertexId i = 0; i < size; ++i) {
    const VertexId u = perm[i], v = perm[(i + 1) % size];
    used.insert(pair_key(u, v));
    b.add_edge(u, v, rand_weight(rng, wr));
  }
  const EdgeId max_edges =
      static_cast<EdgeId>(static_cast<std::uint64_t>(size) * (size - 1) / 2);
  target_edges = std::min(target_edges, max_edges);
  std::uniform_int_distribution<VertexId> pick(0, size - 1);
  EdgeId added = size;
  while (added < target_edges) {
    const VertexId u = ids[pick(rng)], v = ids[pick(rng)];
    if (u == v) continue;
    if (!used.insert(pair_key(u, v)).second) continue;
    b.add_edge(u, v, rand_weight(rng, wr));
    ++added;
  }
}

}  // namespace

Graph path(VertexId n, WeightRange wr, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("path: n must be >= 1");
  Rng rng(seed);
  Builder b(n);
  for (VertexId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1, rand_weight(rng, wr));
  return std::move(b).build();
}

Graph cycle(VertexId n, WeightRange wr, std::uint64_t seed) {
  if (n < 3) throw std::invalid_argument("cycle: n must be >= 3");
  Rng rng(seed);
  Builder b(n);
  for (VertexId i = 0; i < n; ++i)
    b.add_edge(i, (i + 1) % n, rand_weight(rng, wr));
  return std::move(b).build();
}

Graph complete(VertexId n, WeightRange wr, std::uint64_t seed) {
  Rng rng(seed);
  Builder b(n);
  for (VertexId i = 0; i < n; ++i)
    for (VertexId j = i + 1; j < n; ++j) b.add_edge(i, j, rand_weight(rng, wr));
  return std::move(b).build();
}

Graph grid(VertexId rows, VertexId cols, WeightRange wr, std::uint64_t seed) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("grid: empty");
  Rng rng(seed);
  Builder b(rows * cols);
  const auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1), rand_weight(rng, wr));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c), rand_weight(rng, wr));
    }
  }
  return std::move(b).build();
}

Graph wheel(VertexId n, WeightRange wr, std::uint64_t seed) {
  if (n < 4) throw std::invalid_argument("wheel: n must be >= 4");
  Rng rng(seed);
  Builder b(n);
  const VertexId hub = n - 1;
  for (VertexId i = 0; i + 1 < n; ++i) {
    b.add_edge(i, (i + 1) % (n - 1), rand_weight(rng, wr));
    b.add_edge(i, hub, rand_weight(rng, wr));
  }
  return std::move(b).build();
}

Graph petersen(WeightRange wr, std::uint64_t seed) {
  Rng rng(seed);
  Builder b(10);
  for (VertexId i = 0; i < 5; ++i) {
    b.add_edge(i, (i + 1) % 5, rand_weight(rng, wr));          // outer C5
    b.add_edge(5 + i, 5 + (i + 2) % 5, rand_weight(rng, wr));  // inner star
    b.add_edge(i, 5 + i, rand_weight(rng, wr));                // spokes
  }
  return std::move(b).build();
}

Graph random_connected(VertexId n, EdgeId m, std::uint64_t seed,
                       WeightRange wr) {
  if (n == 0) throw std::invalid_argument("random_connected: n must be >= 1");
  if (m + 1 < n) throw std::invalid_argument("random_connected: m < n-1");
  Rng rng(seed);
  Builder b(n);
  std::unordered_set<std::uint64_t> used;
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::shuffle(order.begin(), order.end(), rng);
  for (VertexId i = 1; i < n; ++i) {
    std::uniform_int_distribution<VertexId> pick(0, i - 1);
    const VertexId u = order[i], v = order[pick(rng)];
    used.insert(pair_key(u, v));
    b.add_edge(u, v, rand_weight(rng, wr));
  }
  const auto max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  const EdgeId target = static_cast<EdgeId>(
      std::min<std::uint64_t>(m, max_edges));
  std::uniform_int_distribution<VertexId> pick(0, n - 1);
  EdgeId added = n - 1;
  while (added < target) {
    const VertexId u = pick(rng), v = pick(rng);
    if (u == v) continue;
    if (!used.insert(pair_key(u, v)).second) continue;
    b.add_edge(u, v, rand_weight(rng, wr));
    ++added;
  }
  return std::move(b).build();
}

Graph random_biconnected(VertexId n, EdgeId m, std::uint64_t seed,
                         WeightRange wr) {
  if (n < 3) throw std::invalid_argument("random_biconnected: n must be >= 3");
  if (m < n) throw std::invalid_argument("random_biconnected: m must be >= n");
  Rng rng(seed);
  Builder b(n);
  std::vector<VertexId> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  add_random_biconnected_block(b, ids, m, rng, wr);
  return std::move(b).build();
}

Graph random_planar(VertexId rows, VertexId cols, double diag_prob,
                    double drop_prob, std::uint64_t seed, WeightRange wr) {
  if (rows < 2 || cols < 2)
    throw std::invalid_argument("random_planar: rows, cols must be >= 2");
  Rng rng(seed);
  std::bernoulli_distribution add_diag(diag_prob);
  std::bernoulli_distribution drop(drop_prob);
  std::bernoulli_distribution coin(0.5);
  const auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };

  // Candidate planar edge set: grid edges plus at most one diagonal per cell.
  std::vector<std::pair<VertexId, VertexId>> cand;
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) cand.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) cand.emplace_back(id(r, c), id(r + 1, c));
      if (r + 1 < rows && c + 1 < cols && add_diag(rng)) {
        if (coin(rng)) {
          cand.emplace_back(id(r, c), id(r + 1, c + 1));
        } else {
          cand.emplace_back(id(r, c + 1), id(r + 1, c));
        }
      }
    }
  }

  // Keep a random spanning tree unconditionally; drop other edges with
  // probability drop_prob. Union-find gives the tree.
  std::shuffle(cand.begin(), cand.end(), rng);
  const VertexId n = rows * cols;
  std::vector<VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);
  const auto find = [&parent](VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  Builder b(n);
  for (const auto& [u, v] : cand) {
    const VertexId ru = find(u), rv = find(v);
    if (ru != rv) {
      parent[ru] = rv;
      b.add_edge(u, v, rand_weight(rng, wr));
    } else if (!drop(rng)) {
      b.add_edge(u, v, rand_weight(rng, wr));
    }
  }
  return std::move(b).build();
}

Graph subdivide(const Graph& g, VertexId extra, std::uint64_t seed) {
  Rng rng(seed);
  struct E {
    VertexId u, v;
    Weight w;
  };
  std::vector<E> edges;
  edges.reserve(g.num_edges() + extra);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    edges.push_back({u, v, g.weight(e)});
  }
  if (edges.empty() && extra > 0)
    throw std::invalid_argument("subdivide: graph has no edges");
  VertexId next = g.num_vertices();
  std::uniform_real_distribution<double> frac(0.25, 0.75);
  for (VertexId k = 0; k < extra; ++k) {
    std::uniform_int_distribution<std::size_t> pick(0, edges.size() - 1);
    E& e = edges[pick(rng)];
    const VertexId x = next++;
    // Split w exactly into w1 + w2 so distances between original vertices
    // are preserved to the bit.
    const Weight w1 = e.w * static_cast<Weight>(frac(rng));
    const Weight w2 = e.w - w1;
    const VertexId old_v = e.v;
    e.v = x;
    e.w = w1;
    edges.push_back({x, old_v, w2});
  }
  Builder b(next);
  for (const E& e : edges) b.add_edge(e.u, e.v, e.w);
  return std::move(b).build();
}

Graph block_tree(const BlockTreeParams& p, std::uint64_t seed) {
  if (p.num_blocks == 0)
    throw std::invalid_argument("block_tree: need at least one block");
  if (p.largest_block < 3)
    throw std::invalid_argument("block_tree: largest_block must be >= 3");
  if (p.small_block_min < 2 || p.small_block_max < p.small_block_min)
    throw std::invalid_argument("block_tree: bad small block range");
  Rng rng(seed);
  Builder b(0);

  std::vector<VertexId> all;  // every vertex created so far
  const auto new_vertices = [&](VertexId count) {
    std::vector<VertexId> ids;
    ids.reserve(count);
    for (VertexId i = 0; i < count; ++i) {
      const auto v = static_cast<VertexId>(all.size());
      b.ensure_vertex(v);
      all.push_back(v);
      ids.push_back(v);
    }
    return ids;
  };

  // Largest block first.
  {
    auto ids = new_vertices(p.largest_block);
    const auto target = static_cast<EdgeId>(
        std::max(static_cast<double>(ids.size()), p.intra_degree * static_cast<double>(ids.size()) / 2.0));
    add_random_biconnected_block(b, ids, target, rng, p.weights);
  }

  // Remaining blocks share one articulation vertex with an existing vertex.
  const double small_deg =
      p.small_intra_degree > 0 ? p.small_intra_degree : p.intra_degree;
  std::uniform_int_distribution<VertexId> size_dist(p.small_block_min,
                                                    p.small_block_max);
  for (std::uint32_t blk = 1; blk < p.num_blocks; ++blk) {
    const VertexId size = size_dist(rng);
    std::uniform_int_distribution<std::size_t> pick(0, all.size() - 1);
    const VertexId shared = all[pick(rng)];
    auto ids = new_vertices(size - 1);
    ids.push_back(shared);
    const auto target = static_cast<EdgeId>(
        std::max(static_cast<double>(ids.size()), small_deg * static_cast<double>(ids.size()) / 2.0));
    add_random_biconnected_block(b, ids, target, rng, p.weights);
  }

  // Pendant fringe.
  for (VertexId i = 0; i < p.pendants; ++i) {
    std::uniform_int_distribution<std::size_t> pick(0, all.size() - 1);
    const VertexId anchor = all[pick(rng)];
    auto ids = new_vertices(1);
    b.add_edge(anchor, ids[0], rand_weight(rng, p.weights));
  }

  return std::move(b).build();
}

ScaleEdges table1_scale_edges(VertexId n, std::uint64_t seed) {
  if (n < 64) {
    throw std::invalid_argument("table1_scale_edges: n must be >= 64");
  }
  Rng rng(seed);
  constexpr WeightRange wr{};
  ScaleEdges out;
  out.num_vertices = n;

  // Vertex budget: dominant block 30%, degree-two chains 40%, small blocks
  // 25%, pendant fringe the rest (~5%).
  const VertexId n_large = n * 3 / 10;
  const VertexId n_chain = n * 4 / 10;
  const VertexId n_small = n / 4;
  VertexId next = 0;  // fresh-id allocator
  const auto emit = [&](VertexId u, VertexId v) {
    out.edges.emplace_back(u, v);
    out.weights.push_back(rand_weight(rng, wr));
  };
  out.edges.reserve(static_cast<std::size_t>(n) * 2);
  out.weights.reserve(static_cast<std::size_t>(n) * 2);

  // Dominant biconnected block: Hamiltonian cycle plus nL/2 chords, so the
  // average intra-block degree lands near 3.
  for (VertexId i = 0; i < n_large; ++i) emit(i, (i + 1) % n_large);
  next = n_large;
  {
    std::uniform_int_distribution<VertexId> pick(0, n_large - 1);
    for (VertexId c = 0; c < n_large / 2; ++c) {
      const VertexId u = pick(rng);
      const VertexId v = pick(rng);
      if (u != v) emit(u, v);
    }
  }

  // Ear-like chains through the dominant block: fresh degree-two paths
  // between random block vertices, mean interior length 4. These are what
  // the Phase I reduction removes.
  {
    std::uniform_int_distribution<VertexId> pick(0, n_large - 1);
    std::uniform_int_distribution<VertexId> len(1, 7);
    const VertexId chain_end = next + n_chain;
    while (next < chain_end) {
      const VertexId interior =
          std::min<VertexId>(len(rng), chain_end - next);
      VertexId prev = pick(rng);
      for (VertexId i = 0; i < interior; ++i) {
        emit(prev, next);
        prev = next++;
      }
      emit(prev, pick(rng));
    }
  }

  // Small near-cycle blocks glued at an articulation vertex drawn from
  // everything placed so far.
  {
    std::uniform_int_distribution<VertexId> size_dist(3, 11);  // fresh ids
    const VertexId small_end = next + n_small;
    while (next < small_end) {
      const VertexId fresh = std::min<VertexId>(size_dist(rng), small_end - next);
      std::uniform_int_distribution<VertexId> anchor_pick(0, next - 1);
      const VertexId anchor = anchor_pick(rng);
      VertexId prev = anchor;
      for (VertexId i = 0; i < fresh; ++i) {
        emit(prev, next);
        prev = next++;
      }
      if (fresh >= 2) emit(prev, anchor);  // close the cycle
    }
  }

  // Pendant fringe on the remaining ids.
  while (next < n) {
    std::uniform_int_distribution<VertexId> anchor_pick(0, next - 1);
    emit(anchor_pick(rng), next);
    ++next;
  }
  return out;
}

Graph table1_scale(VertexId n, std::uint64_t seed) {
  ScaleEdges se = table1_scale_edges(n, seed);
  return Graph(se.num_vertices, std::move(se.edges), std::move(se.weights));
}

}  // namespace eardec::graph::generators
