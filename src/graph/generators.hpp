// Synthetic graph generators.
//
// The paper evaluates on University-of-Florida sparse matrices and
// OGDF-generated planar graphs. Neither is available offline, so these
// generators reproduce the *structural* knobs Table 1 reports — number of
// biconnected components, size of the largest component, and above all the
// fraction of degree-two vertices — which are precisely what drives the
// paper's speedups. See DESIGN.md §2 for the substitution argument.
#pragma once

#include <cstdint>
#include <random>

#include "graph/graph.hpp"

namespace eardec::graph::generators {

/// Deterministic RNG used by all generators (seed in, reproducible out).
using Rng = std::mt19937_64;

/// Uniform integer edge weight in [lo, hi] (stored as Weight).
struct WeightRange {
  std::uint32_t lo = 1;
  std::uint32_t hi = 100;
};

/// Simple path v0 - v1 - ... - v_{n-1}. n >= 1.
Graph path(VertexId n, WeightRange wr = {}, std::uint64_t seed = 1);

/// Simple cycle on n >= 3 vertices.
Graph cycle(VertexId n, WeightRange wr = {}, std::uint64_t seed = 1);

/// Complete graph K_n.
Graph complete(VertexId n, WeightRange wr = {}, std::uint64_t seed = 1);

/// rows x cols grid (4-neighbourhood). Planar, biconnected for rows,cols >= 2.
Graph grid(VertexId rows, VertexId cols, WeightRange wr = {},
           std::uint64_t seed = 1);

/// Wheel: cycle on n-1 vertices plus a hub adjacent to all. n >= 4.
Graph wheel(VertexId n, WeightRange wr = {}, std::uint64_t seed = 1);

/// The Petersen graph (3-regular, girth 5) with the given weight range.
Graph petersen(WeightRange wr = {}, std::uint64_t seed = 1);

/// Connected Erdős–Rényi G(n, m): a random spanning tree plus random extra
/// edges up to m total (no self-loops / parallels). Requires m >= n-1.
Graph random_connected(VertexId n, EdgeId m, std::uint64_t seed,
                       WeightRange wr = {});

/// Random biconnected graph: a Hamiltonian cycle over a random permutation
/// plus m - n random chords. Requires m >= n, n >= 3.
Graph random_biconnected(VertexId n, EdgeId m, std::uint64_t seed,
                         WeightRange wr = {});

/// Planar generator (OGDF substitute): a rows x cols grid where each cell
/// gains one random diagonal with probability diag_prob (keeps planarity),
/// then non-bridge edges are deleted with probability drop_prob while
/// preserving connectivity.
Graph random_planar(VertexId rows, VertexId cols, double diag_prob,
                    double drop_prob, std::uint64_t seed, WeightRange wr = {});

/// Inserts `extra` degree-two vertices by subdividing randomly chosen edges.
/// Each subdivision replaces edge {u,v} of weight w by {u,x},{x,v} whose
/// weights sum to w. Preserves (bi)connectivity and all shortest-path
/// distances between original vertices — the ideal workload for ear
/// contraction, and the knob behind the "Nodes Removed (%)" column.
Graph subdivide(const Graph& g, VertexId extra, std::uint64_t seed);

/// Parameters for the block-tree ("social") generator.
struct BlockTreeParams {
  /// Number of biconnected blocks.
  std::uint32_t num_blocks = 8;
  /// Vertices in the single largest block.
  VertexId largest_block = 64;
  /// Vertex count range for the remaining (small) blocks.
  VertexId small_block_min = 4;
  VertexId small_block_max = 12;
  /// Average degree inside the largest block (>= 2 keeps it biconnected).
  double intra_degree = 3.0;
  /// Average degree inside the small blocks; real sparse graphs have a dense
  /// giant BCC and near-cycle small BCCs. 0 means "same as intra_degree".
  double small_intra_degree = 0.0;
  /// Number of degree-1 pendant vertices hung off random vertices.
  VertexId pendants = 0;
  WeightRange weights = {};
};

/// Graph made of biconnected blocks glued in a random tree through shared
/// articulation vertices — the structure of the paper's social/collaboration
/// datasets (many BCCs, one dominant BCC, pendant fringe).
Graph block_tree(const BlockTreeParams& params, std::uint64_t seed);

/// Raw edge list from the million-node scale generator, so callers can pick
/// the CSR build path (the serial Graph constructor, or
/// io::build_csr_parallel over a thread pool at scale).
struct ScaleEdges {
  VertexId num_vertices = 0;
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::vector<Weight> weights;
};

/// Table-1-like structure calibrated for 10⁶–10⁷ vertices, built directly
/// as an edge list (no Builder, no post-hoc subdivision passes): one
/// dominant biconnected block (~30% of n, average degree ≈ 3), ear-like
/// degree-two chains threaded through it (~40% of n — the "Nodes Removed"
/// knob), near-cycle small blocks glued at articulation vertices (~25%),
/// and a pendant fringe (~5%). Deterministic in (n, seed).
ScaleEdges table1_scale_edges(VertexId n, std::uint64_t seed);

/// table1_scale_edges materialized through the serial Graph constructor.
Graph table1_scale(VertexId n, std::uint64_t seed);

}  // namespace eardec::graph::generators
