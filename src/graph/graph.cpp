#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace eardec::graph {
namespace {

/// Heap backing store for graphs built from an edge list. The Graph's spans
/// point into these vectors; the shared_ptr keepalive pins them across
/// copies.
struct OwnedArrays {
  std::vector<std::size_t> offsets;                     // size n+1
  std::vector<HalfEdge> adjacency;                      // size 2m
  std::vector<std::pair<VertexId, VertexId>> endpoints; // size m, u<=v
  std::vector<Weight> weights;                          // size m
};

}  // namespace

Graph::Graph(VertexId num_vertices,
             std::vector<std::pair<VertexId, VertexId>> edges,
             std::vector<Weight> weights)
    : n_(num_vertices) {
  if (edges.size() != weights.size()) {
    throw std::invalid_argument("Graph: edges and weights size mismatch");
  }
  auto arrays = std::make_shared<OwnedArrays>();
  arrays->endpoints = std::move(edges);
  arrays->weights = std::move(weights);
  for (auto& [u, v] : arrays->endpoints) {
    if (u >= n_ || v >= n_) {
      throw std::invalid_argument("Graph: edge endpoint out of range");
    }
    if (u > v) std::swap(u, v);
  }
  for (const Weight w : arrays->weights) {
    if (!(w >= 0)) {  // also rejects NaN
      throw std::invalid_argument("Graph: edge weights must be non-negative");
    }
  }

  // Counting sort into CSR. A self-loop contributes two entries at v.
  arrays->offsets.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& [u, v] : arrays->endpoints) {
    ++arrays->offsets[u + 1];
    ++arrays->offsets[v + 1];
    if (u == v) ++num_self_loops_;
  }
  std::partial_sum(arrays->offsets.begin(), arrays->offsets.end(),
                   arrays->offsets.begin());

  arrays->adjacency.resize(2 * arrays->endpoints.size());
  std::vector<std::size_t> cursor(arrays->offsets.begin(),
                                  arrays->offsets.end() - 1);
  for (EdgeId e = 0; e < arrays->endpoints.size(); ++e) {
    const auto [u, v] = arrays->endpoints[e];
    const Weight w = arrays->weights[e];
    arrays->adjacency[cursor[u]++] = HalfEdge{v, e, w};
    arrays->adjacency[cursor[v]++] = HalfEdge{u, e, w};
  }

  // Detect parallel edges (same unordered endpoint pair, distinct ids) by
  // sorting the packed endpoint keys — O(m log m) with a flat 8-byte array,
  // far lighter than a hash set at million-edge scale.
  std::vector<std::uint64_t> keys;
  keys.reserve(arrays->endpoints.size());
  for (const auto& [u, v] : arrays->endpoints) {
    keys.push_back((static_cast<std::uint64_t>(u) << 32) | v);
  }
  std::sort(keys.begin(), keys.end());
  has_parallel_ =
      std::adjacent_find(keys.begin(), keys.end()) != keys.end();

  offsets_ = arrays->offsets;
  adjacency_ = arrays->adjacency;
  endpoints_ = arrays->endpoints;
  weights_ = arrays->weights;
  storage_ = std::move(arrays);
}

Graph::Graph(BorrowedCsr csr)
    : n_(csr.num_vertices),
      num_self_loops_(csr.num_self_loops),
      has_parallel_(csr.has_parallel_edges),
      borrowed_(csr.external_storage),
      offsets_(csr.offsets),
      adjacency_(csr.adjacency),
      endpoints_(csr.endpoints),
      weights_(csr.weights),
      storage_(std::move(csr.keepalive)) {
  const std::size_t m = endpoints_.size();
  if (offsets_.size() != static_cast<std::size_t>(n_) + 1 ||
      adjacency_.size() != 2 * m || weights_.size() != m ||
      (!offsets_.empty() && offsets_.back() != 2 * m)) {
    throw std::invalid_argument("Graph: borrowed CSR arrays are inconsistent");
  }
}

Weight Graph::total_weight() const noexcept {
  return std::accumulate(weights_.begin(), weights_.end(), Weight{0});
}

}  // namespace eardec::graph
