#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace eardec::graph {

Graph::Graph(VertexId num_vertices,
             std::vector<std::pair<VertexId, VertexId>> edges,
             std::vector<Weight> weights)
    : n_(num_vertices), endpoints_(std::move(edges)), weights_(std::move(weights)) {
  if (endpoints_.size() != weights_.size()) {
    throw std::invalid_argument("Graph: edges and weights size mismatch");
  }
  for (auto& [u, v] : endpoints_) {
    if (u >= n_ || v >= n_) {
      throw std::invalid_argument("Graph: edge endpoint out of range");
    }
    if (u > v) std::swap(u, v);
  }
  for (const Weight w : weights_) {
    if (!(w >= 0)) {  // also rejects NaN
      throw std::invalid_argument("Graph: edge weights must be non-negative");
    }
  }

  // Counting sort into CSR. A self-loop contributes two entries at v.
  offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& [u, v] : endpoints_) {
    ++offsets_[u + 1];
    ++offsets_[v + 1];
    if (u == v) ++num_self_loops_;
  }
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());

  adjacency_.resize(2 * endpoints_.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId e = 0; e < endpoints_.size(); ++e) {
    const auto [u, v] = endpoints_[e];
    const Weight w = weights_[e];
    adjacency_[cursor[u]++] = HalfEdge{v, e, w};
    adjacency_[cursor[v]++] = HalfEdge{u, e, w};
  }

  // Detect parallel edges (same unordered endpoint pair, distinct ids).
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(endpoints_.size() * 2);
  for (const auto& [u, v] : endpoints_) {
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (!seen.insert(key).second) {
      has_parallel_ = true;
      break;
    }
  }
}

Weight Graph::total_weight() const noexcept {
  return std::accumulate(weights_.begin(), weights_.end(), Weight{0});
}

}  // namespace eardec::graph
