// Graph serialization: Matrix Market (the format of the University of
// Florida Sparse Matrix Collection the paper draws its datasets from) and a
// plain whitespace edge-list format.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "graph/graph.hpp"

namespace eardec::graph::io {

/// Reads a Matrix Market `coordinate` matrix as an undirected weighted graph.
/// Supported qualifiers: real / integer / pattern, general / symmetric.
/// General matrices are symmetrized; duplicate {u,v} entries keep the
/// minimum weight; zero/negative weights are mapped to |w| (or 1 if 0),
/// matching common practice when using UF matrices as graph benchmarks.
/// Diagonal entries become self-loops.
Graph read_matrix_market(std::istream& in);
Graph read_matrix_market_file(const std::filesystem::path& path);

/// Writes the graph as a symmetric real coordinate Matrix Market file.
void write_matrix_market(std::ostream& out, const Graph& g);
void write_matrix_market_file(const std::filesystem::path& path, const Graph& g);

/// Reads lines "u v [w]" (0-based vertex ids, default weight 1).
/// Lines starting with '#' or '%' are comments.
Graph read_edge_list(std::istream& in);

/// Writes lines "u v w", one per edge.
void write_edge_list(std::ostream& out, const Graph& g);

}  // namespace eardec::graph::io
