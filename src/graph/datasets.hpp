// Registry of the 15 benchmark datasets of Table 1, regenerated
// synthetically at reduced scale. Each entry records the paper's reported
// structural statistics so the bench harness (bench_table1) can print
// paper-vs-measured side by side, and a generator calibrated to match the
// *structure* columns (BCC count, largest-BCC dominance, degree-2 fraction).
//
// Scale: the paper runs 10K-131K vertices on a 20-core Xeon + Tesla K40c;
// this container exposes one core, so datasets are scaled down ~32x for the
// APSP experiments and further for the MCB experiments (the paper itself
// restricts MCB to the first seven graphs for resource reasons).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace eardec::graph::datasets {

/// Statistics Table 1 reports for the original dataset.
struct PaperStats {
  double vertices;          ///< |V| of the original graph
  double edges;             ///< |E| of the original graph
  int bccs;                 ///< number of biconnected components
  double largest_bcc_pct;   ///< edges in largest BCC, % of |E|
  double removed_pct;       ///< degree-2 vertices removed, % of |V|
  double ours_memory_mb;    ///< memory of the paper's method
  double max_memory_mb;     ///< memory of the full n x n table
};

struct Dataset {
  std::string name;
  bool planar = false;
  PaperStats paper{};
  /// Generator at APSP bench scale (hundreds to a few thousand vertices).
  std::function<Graph()> make;
  /// Generator at MCB bench scale (smaller; MCB is superquadratic).
  std::function<Graph()> make_small;
};

/// All 15 datasets in Table 1 order (10 general, then Planar_1..Planar_5).
const std::vector<Dataset>& table1();

/// The first seven general datasets — the subset the paper's MCB
/// experiments (Table 2, Figures 5-6) run on.
std::vector<Dataset> mcb_seven();

/// Lookup by name; throws std::out_of_range if absent.
const Dataset& by_name(const std::string& name);

}  // namespace eardec::graph::datasets
