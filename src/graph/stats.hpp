// Purely structural graph statistics (no connectivity analysis; those live
// in eardec::connectivity). Used by the Table 1 bench and the dataset tests.
#pragma once

#include <cstddef>
#include <string>

#include "graph/graph.hpp"

namespace eardec::graph {

struct GraphStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double avg_degree = 0.0;
  VertexId degree_one_vertices = 0;
  VertexId degree_two_vertices = 0;
  EdgeId self_loops = 0;
  bool has_parallel_edges = false;
  Weight total_weight = 0.0;
};

/// Computes degree statistics in a single pass.
[[nodiscard]] GraphStats compute_stats(const Graph& g);

/// One-line human-readable rendering, e.g. for bench headers.
[[nodiscard]] std::string to_string(const GraphStats& s);

}  // namespace eardec::graph
