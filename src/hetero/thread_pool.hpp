// Fixed-size worker pool used for the multicore ("OpenMP") side of the
// heterogeneous implementations. The paper uses OpenMP on a 2x10-core Xeon;
// this portable pool provides the same fork/join and dynamic-scheduling
// idioms in standard C++.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace eardec::hetero {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 → hardware_concurrency, min 1).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a task; returns immediately.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  /// Runs f(i) for every i in [begin, end) across the pool with dynamic
  /// self-scheduling (atomic chunk grabbing; chunk == 1 by default because
  /// the library's work items are coarse). Blocks until complete. The
  /// calling thread participates, so this is safe to call even on a pool
  /// briefly saturated by other work; at most chunks-1 helper tasks are
  /// woken, so tiny ranges don't pay a full pool wakeup.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& f,
                    std::size_t chunk = 1);

  /// parallel_for variant whose callback also receives a stable *slot*
  /// index: every participating execution stream (the calling thread plus
  /// each helper task) gets a distinct slot in [0, max_slots()), and all
  /// indices a stream claims are run under its slot. Callers use the slot
  /// to index per-worker scratch (request buffers, workspaces) without any
  /// synchronization — the lock-free alternative to funnelling results
  /// through a shared mutex.
  void parallel_for_slots(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t index, unsigned slot)>& f,
      std::size_t chunk = 1);

  /// Upper bound (inclusive of the calling thread) on the slot indices
  /// parallel_for_slots hands out: pool workers + 1.
  [[nodiscard]] unsigned max_slots() const noexcept { return size() + 1; }

 private:
  void worker_loop();

  std::vector<std::jthread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::queue<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace eardec::hetero
