// Heterogeneous scheduler: drains a WorkQueue concurrently from both ends —
// CPU threads take small units one (or a few) at a time, a device driver
// thread takes large units in device-sized batches. This is the paper's
// execution model for both APSP (one unit per biconnected component or per
// source vertex) and MCB (units per shortest-path tree / witness).
#pragma once

#include <cstdint>
#include <functional>

#include "hetero/device.hpp"
#include "hetero/thread_pool.hpp"
#include "hetero/work_queue.hpp"

namespace eardec::hetero {

/// How a hetero computation is split.
struct SchedulerConfig {
  /// CPU worker threads.
  unsigned cpu_threads = 4;
  /// Units per CPU grab. The paper removes units "in proportion to the
  /// number of threads supported"; small batches keep balance tight.
  std::size_t cpu_batch = 1;
  /// Units per device grab.
  std::size_t device_batch = 4;
};

/// Per-side execution counters, for tests and the ablation benches.
struct SchedulerStats {
  std::uint64_t cpu_units = 0;
  std::uint64_t device_units = 0;
};

/// Runs until the queue is empty. `cpu_fn(unit)` is invoked on CPU worker
/// threads; `device_fn(unit)` on the device driver thread (which typically
/// issues Device::launch internally). Either function may be empty-capable;
/// pass the same function twice for a homogeneous run.
SchedulerStats run_heterogeneous(
    WorkQueue& queue, const SchedulerConfig& config,
    const std::function<void(const WorkUnit&)>& cpu_fn,
    const std::function<void(const WorkUnit&)>& device_fn);

/// Convenience: CPU-only drain of the queue with `threads` workers.
SchedulerStats run_cpu_only(WorkQueue& queue, unsigned threads,
                            const std::function<void(const WorkUnit&)>& fn);

}  // namespace eardec::hetero
