// Heterogeneous scheduler: drains a WorkQueue concurrently from both ends —
// CPU threads claim small units from the light end, a device driver thread
// claims large units in device-sized batches from the heavy end. This is
// the paper's execution model for both APSP (one unit per biconnected
// component or per source vertex) and MCB (units per shortest-path tree /
// witness).
//
// Claim sizes adapt to queue depth (guided self-scheduling): while the
// queue is long, each side grows its batch so claims — and with them
// CAS contention on the queue word — stay rare; as the queue drains,
// batches shrink back to the configured minimum so the tail stays balanced
// between CPU and device, preserving the paper's dynamic proportions.
//
// Callbacks receive a stable worker index (0..cpu_threads-1 for CPU
// workers, 0 for the single device driver) so callers can thread pooled
// per-worker workspaces (SSSP heaps, frontier buffers) through the drain
// without any per-unit allocation.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "hetero/device.hpp"
#include "hetero/thread_pool.hpp"
#include "hetero/work_queue.hpp"

namespace eardec::hetero {

/// True when the host exposes more than one hardware thread. Heterogeneous
/// drivers consult this before fanning out: on a single core the software
/// device and the CPU threads time-slice the same execution unit, so every
/// "overlap" is pure scheduling overhead and the dynamic both-ends-compete
/// discipline degenerates to its all-CPU limit. (hardware_concurrency may
/// report 0 when unknown; treat that as no parallelism.)
[[nodiscard]] inline bool host_has_parallelism() noexcept {
  return std::thread::hardware_concurrency() > 1;
}

/// How a hetero computation is split.
struct SchedulerConfig {
  /// CPU worker threads.
  unsigned cpu_threads = 4;
  /// Minimum units per CPU claim. The paper removes units "in proportion to
  /// the number of threads supported"; small minimums keep balance tight
  /// while guided growth keeps contention low on long queues.
  std::size_t cpu_batch = 1;
  /// Minimum units per device claim.
  std::size_t device_batch = 4;
  /// Upper bound on a grown claim (guided self-scheduling cap).
  std::size_t max_batch = 64;
};

/// Per-worker execution counters (index 0..cpu_threads-1, or the device
/// driver), for utilization reporting in the ablation benches.
struct WorkerStats {
  std::uint64_t units = 0;   ///< work units executed by this worker
  std::uint64_t claims = 0;  ///< successful (non-empty) queue claims
  double busy_seconds = 0;   ///< wall clock spent inside unit callbacks
};

/// How two merged drains relate in time — decides what happens to their
/// wall clocks in SchedulerStats::accumulate.
enum class RunOverlap {
  Sequential,  ///< back-to-back runs (bench repetitions): wall clocks add
  Concurrent,  ///< overlapping drains: the merged wall clock is the max —
               ///< summing would double-count the shared interval and
               ///< deflate utilization (busy / (elapsed * workers))
};

/// Execution counters of one drain, for tests and the ablation benches.
struct SchedulerStats {
  std::uint64_t cpu_units = 0;
  std::uint64_t device_units = 0;
  std::uint64_t cpu_claims = 0;
  std::uint64_t device_claims = 0;
  /// CAS retries observed by the queue during the drain (claim contention).
  std::uint64_t queue_contention = 0;
  /// Wall clock of the whole drain (0 when not measured, e.g. sequential).
  double elapsed_seconds = 0;
  std::vector<WorkerStats> cpu_workers;  ///< one entry per CPU worker
  WorkerStats device_worker;

  /// Busy fraction across all participating workers: 1.0 means no worker
  /// ever waited on the queue or starved.
  [[nodiscard]] double utilization() const;

  /// Merges the counters of another drain. Counters always add; the wall
  /// clock adds for Sequential repetitions but takes the max for
  /// Concurrent (overlapping) drains, so merged utilization denominators
  /// reflect real elapsed time instead of double-counting the overlap.
  void accumulate(const SchedulerStats& other,
                  RunOverlap overlap = RunOverlap::Sequential);
};

/// A unit callback: `unit` to execute, `worker` the stable index of the
/// executing worker within its side (CPU workers 0..cpu_threads-1; the
/// device driver always passes 0).
using UnitFn = std::function<void(const WorkUnit& unit, unsigned worker)>;

/// Runs until the queue is empty. `cpu_fn` is invoked on CPU worker
/// threads; `device_fn` on the device driver thread (which typically
/// issues Device::launch internally). Pass the same function twice for a
/// homogeneous run.
SchedulerStats run_heterogeneous(WorkQueue& queue,
                                 const SchedulerConfig& config,
                                 const UnitFn& cpu_fn,
                                 const UnitFn& device_fn);

/// Convenience: CPU-only drain of the queue with `threads` workers, each
/// claiming at least `cpu_batch` units per grab (grown adaptively while the
/// queue is long).
SchedulerStats run_cpu_only(WorkQueue& queue, unsigned threads,
                            const UnitFn& fn, std::size_t cpu_batch = 1);

}  // namespace eardec::hetero
