#include "hetero/work_queue.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace eardec::hetero {
namespace {

/// Registry mirror of the queue's contention counter, aggregated across
/// every queue in the process (the per-queue atomic stays authoritative
/// for SchedulerStats deltas).
void count_retries(std::uint64_t retries) {
  static obs::Counter& cas_retries =
      obs::MetricsRegistry::instance().counter("hetero.queue.cas_retries");
  cas_retries.add(retries);
}

}  // namespace

WorkQueue::WorkQueue(std::vector<WorkUnit> units) : units_(std::move(units)) {
  std::stable_sort(units_.begin(), units_.end(),
                   [](const WorkUnit& a, const WorkUnit& b) {
                     return a.size > b.size;
                   });
}

std::span<const WorkUnit> WorkQueue::claim(std::size_t batch, bool heavy) {
  std::uint64_t s = state_.load(std::memory_order_relaxed);
  std::uint64_t retries = 0;
  for (;;) {
    const auto head = static_cast<std::size_t>(s & 0xffffffffu);
    const auto tail = static_cast<std::size_t>(s >> 32);
    const std::size_t avail = units_.size() - head - tail;
    const std::size_t k = std::min(batch, avail);
    if (k == 0) {
      if (retries != 0) {
        cas_retries_.fetch_add(retries, std::memory_order_relaxed);
        count_retries(retries);
      }
      return {};
    }
    const std::uint64_t next =
        heavy ? s + k : s + (static_cast<std::uint64_t>(k) << 32);
    if (state_.compare_exchange_weak(s, next, std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
      if (retries != 0) {
        cas_retries_.fetch_add(retries, std::memory_order_relaxed);
        count_retries(retries);
      }
      static obs::Histogram& heavy_sizes =
          obs::MetricsRegistry::instance().histogram(
              "hetero.queue.claim_heavy");
      static obs::Histogram& light_sizes =
          obs::MetricsRegistry::instance().histogram(
              "hetero.queue.claim_light");
      (heavy ? heavy_sizes : light_sizes).record(k);
      const std::size_t begin = heavy ? head : units_.size() - tail - k;
      return {units_.data() + begin, k};
    }
    ++retries;
  }
}

std::span<const WorkUnit> WorkQueue::take_heavy(std::size_t batch) {
  return claim(batch, /*heavy=*/true);
}

std::span<const WorkUnit> WorkQueue::take_light(std::size_t batch) {
  return claim(batch, /*heavy=*/false);
}

bool WorkQueue::empty() const { return remaining() == 0; }

std::size_t WorkQueue::remaining() const {
  const std::uint64_t s = state_.load(std::memory_order_acquire);
  const auto head = static_cast<std::size_t>(s & 0xffffffffu);
  const auto tail = static_cast<std::size_t>(s >> 32);
  return units_.size() - head - tail;
}

}  // namespace eardec::hetero
