#include "hetero/work_queue.hpp"

#include <algorithm>

namespace eardec::hetero {

WorkQueue::WorkQueue(std::vector<WorkUnit> units) : units_(std::move(units)) {
  std::stable_sort(units_.begin(), units_.end(),
                   [](const WorkUnit& a, const WorkUnit& b) {
                     return a.size > b.size;
                   });
}

std::vector<WorkUnit> WorkQueue::take_heavy(std::size_t batch) {
  const std::lock_guard lock(mutex_);
  std::vector<WorkUnit> out;
  while (batch-- > 0 && head_ + tail_ < units_.size()) {
    out.push_back(units_[head_++]);
  }
  return out;
}

std::vector<WorkUnit> WorkQueue::take_light(std::size_t batch) {
  const std::lock_guard lock(mutex_);
  std::vector<WorkUnit> out;
  while (batch-- > 0 && head_ + tail_ < units_.size()) {
    ++tail_;
    out.push_back(units_[units_.size() - tail_]);
  }
  return out;
}

bool WorkQueue::empty() const {
  const std::lock_guard lock(mutex_);
  return head_ + tail_ >= units_.size();
}

std::size_t WorkQueue::remaining() const {
  const std::lock_guard lock(mutex_);
  return units_.size() - head_ - tail_;
}

}  // namespace eardec::hetero
