#include "hetero/device.hpp"

#include <vector>

namespace eardec::hetero {

Device::Device(DeviceConfig config)
    : config_(std::move(config)),
      pool_(config_.workers == 0 ? 1 : config_.workers) {}

void Device::launch(std::size_t grid,
                    const std::function<void(std::size_t)>& kernel) {
  kernels_.fetch_add(1, std::memory_order_relaxed);
  if (grid == 0) return;
  // Warp-granular dynamic striping over the device workers.
  pool_.parallel_for(0, grid, kernel, config_.warp_size);
}

void Device::run_blocks(std::size_t num_blocks, std::size_t shared_words,
                        const std::function<void(Block&)>& kernel,
                        bool allow_parallel) {
  const auto run_one = [&](std::size_t b) {
    // Per-block shared memory lives on the executing worker's stack frame,
    // like the SM-local shared memory it stands in for.
    std::vector<std::uint64_t> shared(shared_words, 0);
    Block block(b, shared);
    kernel(block);
  };
  if (allow_parallel) {
    pool_.parallel_for(0, num_blocks, run_one);
  } else {
    for (std::size_t b = 0; b < num_blocks; ++b) run_one(b);
  }
}

void Device::launch_blocks(std::size_t num_blocks, std::size_t shared_words,
                           const std::function<void(Block&)>& kernel) {
  kernels_.fetch_add(1, std::memory_order_relaxed);
  if (num_blocks == 0) return;
  run_blocks(num_blocks, shared_words, kernel, /*allow_parallel=*/true);
}

void Device::Async::wait() {
  if (!state_) return;
  std::unique_lock lock(state_->mutex);
  state_->done_cv.wait(lock, [&] { return state_->done; });
}

Device::Async Device::launch_blocks_async(std::size_t num_blocks,
                                          std::size_t shared_words,
                                          std::function<void(Block&)> kernel) {
  kernels_.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_shared<Async::State>();
  if (num_blocks == 0) {
    state->done = true;
    return Async(std::move(state));
  }
  // One device worker drives the grid; on a multi-worker device it fans the
  // blocks back out via parallel_for (the driver participates). On a
  // one-worker device the driver IS the last worker, so it must run the
  // blocks serially — parallel_for would queue helpers no one can run.
  const bool fan_out = pool_.size() > 1;
  pool_.submit(
      [this, state, num_blocks, shared_words, kernel = std::move(kernel),
       fan_out] {
        run_blocks(num_blocks, shared_words, kernel, fan_out);
        {
          const std::lock_guard lock(state->mutex);
          state->done = true;
        }
        state->done_cv.notify_all();
      });
  return Async(std::move(state));
}

}  // namespace eardec::hetero
