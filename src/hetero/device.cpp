#include "hetero/device.hpp"

#include <vector>

namespace eardec::hetero {

Device::Device(DeviceConfig config)
    : config_(std::move(config)),
      pool_(config_.workers == 0 ? 1 : config_.workers) {}

void Device::launch(std::size_t grid,
                    const std::function<void(std::size_t)>& kernel) {
  kernels_.fetch_add(1, std::memory_order_relaxed);
  if (grid == 0) return;
  // Warp-granular dynamic striping over the device workers.
  pool_.parallel_for(0, grid, kernel, config_.warp_size);
}

void Device::launch_blocks(std::size_t num_blocks, std::size_t shared_words,
                           const std::function<void(Block&)>& kernel) {
  kernels_.fetch_add(1, std::memory_order_relaxed);
  if (num_blocks == 0) return;
  pool_.parallel_for(0, num_blocks, [&](std::size_t b) {
    // Per-block shared memory lives on the executing worker's stack frame,
    // like the SM-local shared memory it stands in for.
    std::vector<std::uint64_t> shared(shared_words, 0);
    Block block(b, shared);
    kernel(block);
  });
}

}  // namespace eardec::hetero
