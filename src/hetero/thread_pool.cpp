#include "hetero/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace eardec::hetero {

namespace {

/// Worker headcount across all live pools, visible on a /metrics scrape so
/// an operator can see pool churn without attaching a debugger. The gauge
/// is a leaked-singleton registry instrument, so updating it from pool
/// construction/teardown never races a concurrent scrape.
obs::Gauge& live_workers_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::instance().gauge("hetero.pool.live_workers");
  return g;
}

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  live_workers_gauge().add(static_cast<double>(num_threads));
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] {
      obs::Tracer& tracer = obs::Tracer::instance();
      if (tracer.enabled()) {
        char name[32];
        std::snprintf(name, sizeof name, "pool-worker-%u", i);
        tracer.set_current_thread_name(name);
      }
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  // Join here, not via the implicit jthread destructors: workers_ is the
  // first-declared member and would otherwise be destroyed *after* the
  // condition variables the workers still signal on their way out.
  const auto joined = workers_.size();
  workers_.clear();
  live_workers_gauge().add(-static_cast<double>(joined));
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      const std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

namespace {

/// Heap-held state so straggler helper tasks stay valid even while the
/// calling thread is already waiting on them.
struct ParallelForState {
  std::atomic<std::size_t> next;
  std::size_t end;
  std::size_t chunk;
  std::function<void(std::size_t, unsigned)> f;
  std::mutex mutex;
  std::condition_variable done;
  unsigned pending_helpers;

  void drain(unsigned slot) {
    while (true) {
      const std::size_t lo = next.fetch_add(chunk);
      if (lo >= end) break;
      const std::size_t hi = std::min(lo + chunk, end);
      for (std::size_t i = lo; i < hi; ++i) f(i, slot);
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& f,
                              std::size_t chunk) {
  parallel_for_slots(
      begin, end, [&f](std::size_t i, unsigned) { f(i); }, chunk);
}

void ThreadPool::parallel_for_slots(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, unsigned)>& f, std::size_t chunk) {
  if (begin >= end) return;
  if (chunk == 0) chunk = 1;
  EARDEC_TRACE_SCOPE("pool.parallel_for", "items", end - begin);
  static obs::Counter& calls =
      obs::MetricsRegistry::instance().counter("hetero.pool.parallel_for_calls");
  calls.add(1);
  // The calling thread participates, so at most chunks-1 helpers can ever
  // claim work: don't wake more tasks than that for small ranges.
  const std::size_t chunks = (end - begin + chunk - 1) / chunk;
  const auto helpers =
      static_cast<unsigned>(std::min<std::size_t>(size(), chunks - 1));
  auto st = std::make_shared<ParallelForState>();
  st->next = begin;
  st->end = end;
  st->chunk = chunk;
  st->f = f;
  st->pending_helpers = helpers;

  for (unsigned t = 0; t < helpers; ++t) {
    // Slot 0 belongs to the calling thread; helpers take 1..helpers.
    submit([st, slot = t + 1] {
      st->drain(slot);
      const std::lock_guard lock(st->mutex);
      if (--st->pending_helpers == 0) st->done.notify_all();
    });
  }
  st->drain(0);  // the caller participates
  std::unique_lock lock(st->mutex);
  st->done.wait(lock, [&] { return st->pending_helpers == 0; });
}

}  // namespace eardec::hetero
