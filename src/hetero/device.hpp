// Software throughput device — the stand-in for the paper's Tesla K40c.
//
// The paper's GPU usage reduces to three idioms:
//   1. bulk kernel launches over a 1D grid (one lane per vertex/edge),
//   2. level-synchronous frontier kernels (Harish–Narayanan SSSP),
//   3. block-wide XOR reductions (MCB witness inner products).
// `Device` reproduces those idioms faithfully in software: a launch executes
// `grid` lanes in warps of `kWarpSize`, striped over a private worker pool,
// and returns only when every lane finished (bulk-synchronous, like a CUDA
// kernel followed by cudaDeviceSynchronize). All algorithm code written
// against Device is phrased exactly as the CUDA kernels would be, so the
// heterogeneous work-partitioning logic of the paper is exercised unchanged;
// only absolute throughput differs (see DESIGN.md §2).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "hetero/thread_pool.hpp"

namespace eardec::hetero {

/// Configuration of the simulated device.
struct DeviceConfig {
  /// Host threads emulating the SMs. Defaults to 2 (the host CPU side of
  /// the hetero runs uses the remaining threads).
  unsigned workers = 2;
  /// Lanes per warp; kernels are chunked warp-by-warp.
  unsigned warp_size = 32;
  /// Relative throughput vs one CPU thread, used by schedulers to pick
  /// batch proportions (the K40c-to-core ratio in the paper's setup is
  /// roughly 6-8 for these memory-bound kernels).
  double relative_throughput = 6.0;
  std::string name = "eardec software SIMT device";
};

class Device {
 public:
  explicit Device(DeviceConfig config = {});

  [[nodiscard]] const DeviceConfig& config() const noexcept { return config_; }

  /// Launches `grid` lanes of `kernel`; blocks until every lane completed.
  /// Lanes are grouped into warps executed together on one worker, matching
  /// SIMT scheduling granularity.
  void launch(std::size_t grid, const std::function<void(std::size_t)>& kernel);

  /// Cooperative block context handed to launch_blocks kernels: per-block
  /// shared scratch plus lane iteration with an implicit barrier between
  /// consecutive for_each_lane passes — the software analogue of a CUDA
  /// thread block with __shared__ memory and __syncthreads().
  class Block {
   public:
    Block(std::size_t id, std::span<std::uint64_t> shared)
        : id_(id), shared_(shared) {}

    [[nodiscard]] std::size_t id() const noexcept { return id_; }
    /// Shared scratch, zeroed before the kernel body runs.
    [[nodiscard]] std::span<std::uint64_t> shared() noexcept { return shared_; }

    /// One cooperative pass: body(lane) for lane in [0, lanes). All lanes
    /// of a pass complete before the call returns (the barrier).
    void for_each_lane(std::size_t lanes,
                       const std::function<void(std::size_t)>& body) const {
      for (std::size_t lane = 0; lane < lanes; ++lane) body(lane);
    }

   private:
    std::size_t id_;
    std::span<std::uint64_t> shared_;
  };

  /// Launches `num_blocks` cooperative blocks, each with `shared_words` of
  /// zeroed shared scratch; blocks are distributed over the device workers
  /// and may run concurrently, while lanes within one block run on one
  /// worker in barrier-separated passes. Blocks until all blocks retire.
  void launch_blocks(std::size_t num_blocks, std::size_t shared_words,
                     const std::function<void(Block&)>& kernel);

  /// Completion handle of an asynchronous block launch. Default-constructed
  /// handles are valid and already complete; wait() is idempotent.
  class Async {
   public:
    Async() = default;
    /// Blocks until every block of the launch retired.
    void wait();

   private:
    friend class Device;
    struct State {
      std::mutex mutex;
      std::condition_variable done_cv;
      bool done = false;
    };
    explicit Async(std::shared_ptr<State> state) : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
  };

  /// launch_blocks without the final synchronize: the grid is driven by a
  /// device worker while the caller keeps running — the software analogue
  /// of an async CUDA launch on a side stream. The heterogeneous MCB
  /// driver uses this to overlap CPU candidate search with device witness
  /// maintenance. The returned handle must be waited on before any data
  /// the kernel touches is read or freed.
  Async launch_blocks_async(std::size_t num_blocks, std::size_t shared_words,
                            std::function<void(Block&)> kernel);

  /// Kernel-launch counter (diagnostics / tests).
  [[nodiscard]] std::uint64_t kernels_launched() const noexcept {
    return kernels_.load();
  }

 private:
  /// Shared body of launch_blocks / launch_blocks_async. `allow_parallel`
  /// is false when the caller already occupies the last device worker (the
  /// async driver on a one-worker device), where fanning out would
  /// deadlock the pool.
  void run_blocks(std::size_t num_blocks, std::size_t shared_words,
                  const std::function<void(Block&)>& kernel,
                  bool allow_parallel);

  DeviceConfig config_;
  ThreadPool pool_;
  std::atomic<std::uint64_t> kernels_{0};
};

}  // namespace eardec::hetero
