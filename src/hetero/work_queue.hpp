// The double-ended dynamic work queue of Indarapu et al. [19], as used by
// the paper (Sections 2.3 and 3.4): work units are sorted by size so the
// throughput device starts on the biggest units while CPU threads consume
// small ones from the other end; both sides remove units in batches whose
// size reflects their thread counts. The queue, not a static split, decides
// the final CPU/GPU proportion — that is the paper's "dynamic work
// balancing".
//
// Implementation: the sorted unit array is immutable after construction and
// both ends are claimed through one packed atomic word (head index in the
// low half, light-end count in the high half) with a CAS loop — a claim is
// a single successful compare-exchange, never a lock. Because claimed
// ranges are contiguous slices of the frozen array, take_heavy/take_light
// hand back zero-copy spans instead of freshly allocated vectors.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace eardec::hetero {

/// An opaque unit of work: caller-defined id plus a size estimate used for
/// the sorted ordering (e.g. |V| or |E| of a biconnected component).
struct WorkUnit {
  std::uint32_t id = 0;
  std::uint64_t size = 0;
  /// Opaque caller tag carried through scheduling untouched. The serving
  /// layer stores the query id here so worker-side spans can be stitched
  /// into per-query trees (obs/query_trace.hpp); 0 = untagged.
  std::uint64_t tag = 0;
};

class WorkQueue {
 public:
  /// Builds the queue; units are ordered heaviest-first internally.
  explicit WorkQueue(std::vector<WorkUnit> units);

  /// Claims up to `batch` units from the heavy end (device side). The span
  /// aliases the queue's internal storage and stays valid for the queue's
  /// lifetime; units within it are ordered heaviest-first.
  [[nodiscard]] std::span<const WorkUnit> take_heavy(std::size_t batch);

  /// Claims up to `batch` units from the light end (CPU side). Units within
  /// the span are ordered heaviest-first, i.e. the batch's lightest unit
  /// comes last.
  [[nodiscard]] std::span<const WorkUnit> take_light(std::size_t batch);

  /// True once every unit has been claimed.
  [[nodiscard]] bool empty() const;

  /// Units not yet claimed.
  [[nodiscard]] std::size_t remaining() const;

  [[nodiscard]] std::size_t total() const noexcept { return units_.size(); }

  /// Number of CAS retries across all claims so far — a direct measure of
  /// claim contention (0 in single-threaded drains; grows only when two
  /// claimants race on the same queue state).
  [[nodiscard]] std::uint64_t contention_events() const noexcept {
    return cas_retries_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::span<const WorkUnit> claim(std::size_t batch, bool heavy);

  std::vector<WorkUnit> units_;  // sorted heaviest-first, frozen after ctor
  /// Low 32 bits: units claimed off the heavy end (next heavy index).
  /// High 32 bits: units claimed off the light end.
  std::atomic<std::uint64_t> state_{0};
  std::atomic<std::uint64_t> cas_retries_{0};
};

}  // namespace eardec::hetero
