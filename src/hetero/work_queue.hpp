// The double-ended dynamic work queue of Indarapu et al. [19], as used by
// the paper (Sections 2.3 and 3.4): work units are sorted by size so the
// throughput device starts on the biggest units while CPU threads consume
// small ones from the other end; both sides remove units in batches whose
// size reflects their thread counts. The queue, not a static split, decides
// the final CPU/GPU proportion — that is the paper's "dynamic work
// balancing".
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace eardec::hetero {

/// An opaque unit of work: caller-defined id plus a size estimate used for
/// the sorted ordering (e.g. |V| or |E| of a biconnected component).
struct WorkUnit {
  std::uint32_t id = 0;
  std::uint64_t size = 0;
};

class WorkQueue {
 public:
  /// Builds the queue; units are ordered heaviest-first internally.
  explicit WorkQueue(std::vector<WorkUnit> units);

  /// Takes up to `batch` units from the heavy end (device side).
  [[nodiscard]] std::vector<WorkUnit> take_heavy(std::size_t batch);

  /// Takes up to `batch` units from the light end (CPU side).
  [[nodiscard]] std::vector<WorkUnit> take_light(std::size_t batch);

  /// True once every unit has been taken.
  [[nodiscard]] bool empty() const;

  /// Units not yet taken.
  [[nodiscard]] std::size_t remaining() const;

  [[nodiscard]] std::size_t total() const noexcept { return units_.size(); }

 private:
  std::vector<WorkUnit> units_;  // sorted heaviest-first
  std::size_t head_ = 0;         // next heavy index
  std::size_t tail_ = 0;         // units consumed from the light end
  mutable std::mutex mutex_;
};

}  // namespace eardec::hetero
