#include "hetero/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace eardec::hetero {
namespace {

using Clock = std::chrono::steady_clock;

/// Guided self-scheduling claim size: a fixed share of the remaining work
/// per participant, clamped to [min_batch, max_batch]. Long queue -> big
/// claims, few CAS rounds; short queue -> minimum claims, tight balance.
std::size_t guided_batch(std::size_t remaining, unsigned participants,
                         std::size_t min_batch, std::size_t max_batch) {
  const std::size_t share =
      remaining / (2 * std::max(1u, participants));
  return std::clamp(share, std::max<std::size_t>(1, min_batch),
                    std::max<std::size_t>(1, max_batch));
}

/// One worker's drain loop; returns its counters.
WorkerStats drain(WorkQueue& queue, bool heavy, unsigned participants,
                  std::size_t min_batch, std::size_t max_batch,
                  const UnitFn& fn, unsigned worker) {
  WorkerStats ws;
  for (;;) {
    const std::size_t batch =
        guided_batch(queue.remaining(), participants, min_batch, max_batch);
    const auto units = heavy ? queue.take_heavy(batch)
                             : queue.take_light(batch);
    if (units.empty()) return ws;
    const auto t0 = Clock::now();
    for (const WorkUnit& unit : units) fn(unit, worker);
    ws.busy_seconds += std::chrono::duration<double>(Clock::now() - t0).count();
    ws.units += units.size();
    ++ws.claims;
  }
}

}  // namespace

double SchedulerStats::utilization() const {
  if (elapsed_seconds <= 0) return 0;
  double busy = device_worker.busy_seconds;
  std::size_t workers = device_worker.units > 0 || device_worker.claims > 0
                            ? 1
                            : 0;
  for (const WorkerStats& w : cpu_workers) {
    busy += w.busy_seconds;
    ++workers;
  }
  if (workers == 0) return 0;
  return busy / (elapsed_seconds * static_cast<double>(workers));
}

void SchedulerStats::accumulate(const SchedulerStats& other) {
  cpu_units += other.cpu_units;
  device_units += other.device_units;
  cpu_claims += other.cpu_claims;
  device_claims += other.device_claims;
  queue_contention += other.queue_contention;
  elapsed_seconds += other.elapsed_seconds;
  if (cpu_workers.size() < other.cpu_workers.size()) {
    cpu_workers.resize(other.cpu_workers.size());
  }
  for (std::size_t i = 0; i < other.cpu_workers.size(); ++i) {
    cpu_workers[i].units += other.cpu_workers[i].units;
    cpu_workers[i].claims += other.cpu_workers[i].claims;
    cpu_workers[i].busy_seconds += other.cpu_workers[i].busy_seconds;
  }
  device_worker.units += other.device_worker.units;
  device_worker.claims += other.device_worker.claims;
  device_worker.busy_seconds += other.device_worker.busy_seconds;
}

SchedulerStats run_heterogeneous(WorkQueue& queue,
                                 const SchedulerConfig& config,
                                 const UnitFn& cpu_fn,
                                 const UnitFn& device_fn) {
  SchedulerStats stats;
  const unsigned cpu_threads = std::max(1u, config.cpu_threads);
  stats.cpu_workers.resize(cpu_threads);
  const std::uint64_t contention_before = queue.contention_events();
  const auto t0 = Clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(cpu_threads + 1);

    // Device driver: big units from the heavy end, claimed at exactly the
    // configured kernel-launch granularity. No guided growth on this side:
    // claims never migrate back, so letting the single heavy claimant
    // inflate its batch would pre-commit the heavy half of the queue before
    // the CPU/device throughput ratio is known — the static split the
    // dynamic queue exists to avoid.
    threads.emplace_back([&] {
      stats.device_worker = drain(queue, /*heavy=*/true, 1,
                                  config.device_batch, config.device_batch,
                                  device_fn, 0);
    });

    // CPU workers: small units from the light end.
    for (unsigned t = 0; t < cpu_threads; ++t) {
      threads.emplace_back([&, t] {
        stats.cpu_workers[t] = drain(queue, /*heavy=*/false, cpu_threads,
                                     config.cpu_batch, config.max_batch,
                                     cpu_fn, t);
      });
    }
  }  // jthreads join here

  stats.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  for (const WorkerStats& w : stats.cpu_workers) {
    stats.cpu_units += w.units;
    stats.cpu_claims += w.claims;
  }
  stats.device_units = stats.device_worker.units;
  stats.device_claims = stats.device_worker.claims;
  stats.queue_contention = queue.contention_events() - contention_before;
  return stats;
}

SchedulerStats run_cpu_only(WorkQueue& queue, unsigned threads,
                            const UnitFn& fn, std::size_t cpu_batch) {
  SchedulerStats stats;
  const unsigned count = std::max(1u, threads);
  stats.cpu_workers.resize(count);
  const std::uint64_t contention_before = queue.contention_events();
  const auto t0 = Clock::now();
  {
    std::vector<std::jthread> workers;
    workers.reserve(count);
    for (unsigned t = 0; t < count; ++t) {
      workers.emplace_back([&, t] {
        stats.cpu_workers[t] = drain(queue, /*heavy=*/false, count, cpu_batch,
                                     SchedulerConfig{}.max_batch, fn, t);
      });
    }
  }
  stats.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  for (const WorkerStats& w : stats.cpu_workers) {
    stats.cpu_units += w.units;
    stats.cpu_claims += w.claims;
  }
  stats.queue_contention = queue.contention_events() - contention_before;
  return stats;
}

}  // namespace eardec::hetero
