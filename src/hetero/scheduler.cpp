#include "hetero/scheduler.hpp"

#include <atomic>
#include <thread>
#include <vector>

namespace eardec::hetero {

SchedulerStats run_heterogeneous(
    WorkQueue& queue, const SchedulerConfig& config,
    const std::function<void(const WorkUnit&)>& cpu_fn,
    const std::function<void(const WorkUnit&)>& device_fn) {
  std::atomic<std::uint64_t> cpu_units{0};
  std::atomic<std::uint64_t> device_units{0};

  {
    std::vector<std::jthread> threads;
    threads.reserve(config.cpu_threads + 1);

    // Device driver: big units from the heavy end.
    threads.emplace_back([&] {
      while (true) {
        const auto batch = queue.take_heavy(config.device_batch);
        if (batch.empty()) return;
        for (const WorkUnit& unit : batch) device_fn(unit);
        device_units.fetch_add(batch.size(), std::memory_order_relaxed);
      }
    });

    // CPU workers: small units from the light end.
    const unsigned cpu_threads = std::max(1u, config.cpu_threads);
    for (unsigned t = 0; t < cpu_threads; ++t) {
      threads.emplace_back([&] {
        while (true) {
          const auto batch = queue.take_light(std::max<std::size_t>(
              1, config.cpu_batch));
          if (batch.empty()) return;
          for (const WorkUnit& unit : batch) cpu_fn(unit);
          cpu_units.fetch_add(batch.size(), std::memory_order_relaxed);
        }
      });
    }
  }  // jthreads join here

  return {cpu_units.load(), device_units.load()};
}

SchedulerStats run_cpu_only(WorkQueue& queue, unsigned threads,
                            const std::function<void(const WorkUnit&)>& fn) {
  std::atomic<std::uint64_t> cpu_units{0};
  {
    std::vector<std::jthread> workers;
    const unsigned count = std::max(1u, threads);
    workers.reserve(count);
    for (unsigned t = 0; t < count; ++t) {
      workers.emplace_back([&] {
        while (true) {
          const auto batch = queue.take_light(1);
          if (batch.empty()) return;
          fn(batch.front());
          cpu_units.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }
  return {cpu_units.load(), 0};
}

}  // namespace eardec::hetero
