#include "hetero/scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/pmu.hpp"
#include "obs/trace.hpp"

namespace eardec::hetero {
namespace {

/// Guided self-scheduling claim size: a fixed share of the remaining work
/// per participant, clamped to [min_batch, max_batch]. Long queue -> big
/// claims, few CAS rounds; short queue -> minimum claims, tight balance.
std::size_t guided_batch(std::size_t remaining, unsigned participants,
                         std::size_t min_batch, std::size_t max_batch) {
  const std::size_t share =
      remaining / (2 * std::max(1u, participants));
  return std::clamp(share, std::max<std::size_t>(1, min_batch),
                    std::max<std::size_t>(1, max_batch));
}

/// Labels the calling worker's trace lane ("cpu-worker-3", "device-driver").
void name_trace_lane(const char* side, unsigned worker, bool numbered) {
  obs::Tracer& tracer = obs::Tracer::instance();
  if (!tracer.enabled()) return;
  if (numbered) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%s-%u", side, worker);
    tracer.set_current_thread_name(buf);
  } else {
    tracer.set_current_thread_name(side);
  }
}

/// One worker's drain loop; returns its counters. Each executed batch is
/// one span on the worker's lane; busy time is read off the same obs clock
/// the spans use, so SchedulerStats and the trace always agree.
WorkerStats drain(WorkQueue& queue, bool heavy, unsigned participants,
                  std::size_t min_batch, std::size_t max_batch,
                  const UnitFn& fn, unsigned worker) {
  static obs::Histogram& batch_sizes =
      obs::MetricsRegistry::instance().histogram(
          "hetero.scheduler.batch_units");
  obs::Tracer& tracer = obs::Tracer::instance();
  const char* span_name = heavy ? "hetero.device_batch" : "hetero.cpu_batch";
  WorkerStats ws;
  for (;;) {
    const std::size_t batch =
        guided_batch(queue.remaining(), participants, min_batch, max_batch);
    const auto units = heavy ? queue.take_heavy(batch)
                             : queue.take_light(batch);
    if (units.empty()) return ws;
    batch_sizes.record(units.size());
    // Explicit PMU bracket (rather than PmuScopedSpan) so the span keeps
    // the exact t0/t1 the busy-seconds bookkeeping below uses.
    obs::PmuEngine& pmu = obs::PmuEngine::instance();
    obs::PmuSample pmu_begin;
    const bool pmu_live = pmu.active() && pmu.read(pmu_begin);
    const std::uint64_t t0 = obs::Tracer::now_ns();
    for (const WorkUnit& unit : units) fn(unit, worker);
    const std::uint64_t t1 = obs::Tracer::now_ns();
    if (pmu_live) {
      pmu.finish_scope(span_name, t0, t1 - t0, pmu_begin, "units",
                       units.size());
    } else {
      tracer.record_span(span_name, t0, t1 - t0, "units", units.size());
    }
    ws.busy_seconds += static_cast<double>(t1 - t0) * 1e-9;
    ws.units += units.size();
    ++ws.claims;
  }
}

/// Mirrors a finished drain into the process-wide metrics registry, so
/// `--metrics` dumps carry the scheduler counters without any caller
/// threading SchedulerStats around.
void publish_stats(const SchedulerStats& stats) {
  auto& reg = obs::MetricsRegistry::instance();
  static obs::Counter& cpu_units = reg.counter("hetero.scheduler.cpu_units");
  static obs::Counter& device_units =
      reg.counter("hetero.scheduler.device_units");
  static obs::Counter& cpu_claims = reg.counter("hetero.scheduler.cpu_claims");
  static obs::Counter& device_claims =
      reg.counter("hetero.scheduler.device_claims");
  static obs::Gauge& elapsed = reg.gauge("hetero.scheduler.elapsed_s");
  static obs::Gauge& utilization = reg.gauge("hetero.scheduler.utilization");
  cpu_units.add(stats.cpu_units);
  device_units.add(stats.device_units);
  cpu_claims.add(stats.cpu_claims);
  device_claims.add(stats.device_claims);
  elapsed.set(stats.elapsed_seconds);
  utilization.set(stats.utilization());
}

}  // namespace

double SchedulerStats::utilization() const {
  if (elapsed_seconds <= 0) return 0;
  double busy = device_worker.busy_seconds;
  std::size_t workers = device_worker.units > 0 || device_worker.claims > 0
                            ? 1
                            : 0;
  for (const WorkerStats& w : cpu_workers) {
    busy += w.busy_seconds;
    ++workers;
  }
  if (workers == 0) return 0;
  return busy / (elapsed_seconds * static_cast<double>(workers));
}

void SchedulerStats::accumulate(const SchedulerStats& other,
                                RunOverlap overlap) {
  cpu_units += other.cpu_units;
  device_units += other.device_units;
  cpu_claims += other.cpu_claims;
  device_claims += other.device_claims;
  queue_contention += other.queue_contention;
  if (overlap == RunOverlap::Sequential) {
    elapsed_seconds += other.elapsed_seconds;
  } else {
    elapsed_seconds = std::max(elapsed_seconds, other.elapsed_seconds);
  }
  if (cpu_workers.size() < other.cpu_workers.size()) {
    cpu_workers.resize(other.cpu_workers.size());
  }
  for (std::size_t i = 0; i < other.cpu_workers.size(); ++i) {
    cpu_workers[i].units += other.cpu_workers[i].units;
    cpu_workers[i].claims += other.cpu_workers[i].claims;
    cpu_workers[i].busy_seconds += other.cpu_workers[i].busy_seconds;
  }
  device_worker.units += other.device_worker.units;
  device_worker.claims += other.device_worker.claims;
  device_worker.busy_seconds += other.device_worker.busy_seconds;
}

SchedulerStats run_heterogeneous(WorkQueue& queue,
                                 const SchedulerConfig& config,
                                 const UnitFn& cpu_fn,
                                 const UnitFn& device_fn) {
  SchedulerStats stats;
  const unsigned cpu_threads = std::max(1u, config.cpu_threads);
  stats.cpu_workers.resize(cpu_threads);
  const std::uint64_t contention_before = queue.contention_events();
  const std::uint64_t t0 = obs::Tracer::now_ns();
  {
    EARDEC_TRACE_SCOPE("hetero.drain", "units", queue.remaining());
    std::vector<std::jthread> threads;
    threads.reserve(cpu_threads + 1);

    // Device driver: big units from the heavy end, claimed at exactly the
    // configured kernel-launch granularity. No guided growth on this side:
    // claims never migrate back, so letting the single heavy claimant
    // inflate its batch would pre-commit the heavy half of the queue before
    // the CPU/device throughput ratio is known — the static split the
    // dynamic queue exists to avoid.
    threads.emplace_back([&] {
      name_trace_lane("device-driver", 0, /*numbered=*/false);
      stats.device_worker = drain(queue, /*heavy=*/true, 1,
                                  config.device_batch, config.device_batch,
                                  device_fn, 0);
    });

    // CPU workers: small units from the light end.
    for (unsigned t = 0; t < cpu_threads; ++t) {
      threads.emplace_back([&, t] {
        name_trace_lane("cpu-worker", t, /*numbered=*/true);
        stats.cpu_workers[t] = drain(queue, /*heavy=*/false, cpu_threads,
                                     config.cpu_batch, config.max_batch,
                                     cpu_fn, t);
      });
    }
  }  // jthreads join here

  stats.elapsed_seconds =
      static_cast<double>(obs::Tracer::now_ns() - t0) * 1e-9;
  for (const WorkerStats& w : stats.cpu_workers) {
    stats.cpu_units += w.units;
    stats.cpu_claims += w.claims;
  }
  stats.device_units = stats.device_worker.units;
  stats.device_claims = stats.device_worker.claims;
  stats.queue_contention = queue.contention_events() - contention_before;
  publish_stats(stats);
  return stats;
}

SchedulerStats run_cpu_only(WorkQueue& queue, unsigned threads,
                            const UnitFn& fn, std::size_t cpu_batch) {
  SchedulerStats stats;
  const unsigned count = std::max(1u, threads);
  stats.cpu_workers.resize(count);
  const std::uint64_t contention_before = queue.contention_events();
  const std::uint64_t t0 = obs::Tracer::now_ns();
  {
    EARDEC_TRACE_SCOPE("hetero.drain", "units", queue.remaining());
    std::vector<std::jthread> workers;
    workers.reserve(count);
    for (unsigned t = 0; t < count; ++t) {
      workers.emplace_back([&, t] {
        name_trace_lane("cpu-worker", t, /*numbered=*/true);
        stats.cpu_workers[t] = drain(queue, /*heavy=*/false, count, cpu_batch,
                                     SchedulerConfig{}.max_batch, fn, t);
      });
    }
  }
  stats.elapsed_seconds =
      static_cast<double>(obs::Tracer::now_ns() - t0) * 1e-9;
  for (const WorkerStats& w : stats.cpu_workers) {
    stats.cpu_units += w.units;
    stats.cpu_claims += w.claims;
  }
  stats.queue_contention = queue.contention_events() - contention_before;
  publish_stats(stats);
  return stats;
}

}  // namespace eardec::hetero
