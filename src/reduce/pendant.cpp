#include "reduce/pendant.hpp"

#include <deque>

#include "graph/builder.hpp"

namespace eardec::reduce {

PendantPeel::PendantPeel(const Graph& g) {
  const VertexId n = g.num_vertices();
  to_core_.assign(n, graph::kNullVertex);
  attach_.resize(n);
  attach_dist_.assign(n, 0);
  parent_.assign(n, graph::kNullVertex);
  parent_dist_.assign(n, 0);
  depth_.assign(n, 0);

  std::vector<std::size_t> deg(n);
  std::vector<bool> alive(n, true);
  std::deque<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    if (deg[v] == 1) queue.push_back(v);
  }

  std::vector<VertexId> removal_order;
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    if (!alive[v] || deg[v] != 1) continue;  // degree may have dropped to 0
    alive[v] = false;
    removal_order.push_back(v);
    for (const graph::HalfEdge& he : g.neighbors(v)) {
      if (!alive[he.to]) continue;
      parent_[v] = he.to;
      parent_dist_[v] = he.weight;
      if (--deg[he.to] == 1) queue.push_back(he.to);
      break;
    }
  }

  // Core vertex numbering.
  for (VertexId v = 0; v < n; ++v) {
    if (alive[v]) {
      to_core_[v] = static_cast<VertexId>(to_original_.size());
      to_original_.push_back(v);
      attach_[v] = v;
    }
  }

  // Attachment info: parents are removed later (or kept), so walking the
  // removal order backwards sees each parent resolved first.
  for (auto it = removal_order.rbegin(); it != removal_order.rend(); ++it) {
    const VertexId v = *it;
    const VertexId p = parent_[v];
    attach_[v] = attach_[p];
    attach_dist_[v] = parent_dist_[v] + attach_dist_[p];
    depth_[v] = depth_[p] + 1;
  }

  // Core graph: edges with both endpoints alive.
  graph::Builder b(static_cast<VertexId>(to_original_.size()));
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (alive[u] && alive[v]) b.add_edge(to_core_[u], to_core_[v], g.weight(e));
  }
  core_ = std::move(b).build();
}

Weight PendantPeel::tree_distance(VertexId x, VertexId y) const {
  if (attach_[x] != attach_[y]) return graph::kInfWeight;
  Weight d = 0;
  while (x != y) {
    if (depth_[x] >= depth_[y]) {
      d += parent_dist_[x];
      x = parent_[x];
    } else {
      d += parent_dist_[y];
      y = parent_[y];
    }
  }
  return d;
}

}  // namespace eardec::reduce
