// Iterative pendant (degree-one) peeling, the preprocessing step of the
// Banerjee et al. baseline: repeatedly strip degree-1 vertices until none
// remain. Each stripped vertex hangs in a pendant tree rooted at a core
// vertex; the structure kept here suffices to answer exact distance queries
// involving stripped vertices.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace eardec::reduce {

using graph::Graph;
using graph::VertexId;
using graph::Weight;

class PendantPeel {
 public:
  explicit PendantPeel(const Graph& g);

  /// The core graph with all pendant trees removed (local ids).
  [[nodiscard]] const Graph& core() const noexcept { return core_; }

  [[nodiscard]] VertexId to_core(VertexId original) const {
    return to_core_[original];
  }
  [[nodiscard]] VertexId to_original(VertexId core_vertex) const {
    return to_original_[core_vertex];
  }
  [[nodiscard]] bool kept(VertexId original) const {
    return to_core_[original] != graph::kNullVertex;
  }
  [[nodiscard]] VertexId num_removed() const {
    return static_cast<VertexId>(to_core_.size() - to_original_.size());
  }

  /// For a removed vertex x: the core vertex its pendant tree attaches to
  /// (original id), and the tree distance from x to it. For kept vertices
  /// attach(x) == x with distance 0. Isolated trees (a connected component
  /// that is entirely a tree) keep one root vertex in the core.
  [[nodiscard]] VertexId attach(VertexId x) const { return attach_[x]; }
  [[nodiscard]] Weight attach_distance(VertexId x) const {
    return attach_dist_[x];
  }

  /// Exact distance between two vertices of the same pendant tree (or any
  /// two original vertices whose unique tree paths meet), via parent climbs.
  /// Returns kInfWeight if the two climbs do not meet below the core; the
  /// caller then routes through attach() and the core.
  [[nodiscard]] Weight tree_distance(VertexId x, VertexId y) const;

 private:
  Graph core_;
  std::vector<VertexId> to_core_;
  std::vector<VertexId> to_original_;
  std::vector<VertexId> attach_;
  std::vector<Weight> attach_dist_;
  /// Parent pointers for removed vertices (towards the core; original ids).
  std::vector<VertexId> parent_;
  std::vector<Weight> parent_dist_;
  std::vector<std::uint32_t> depth_;  ///< 0 for kept vertices
};

}  // namespace eardec::reduce
