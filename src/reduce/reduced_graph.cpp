#include "reduce/reduced_graph.hpp"

#include <unordered_map>

namespace eardec::reduce {

ReducedGraph::ReducedGraph(const Graph& g, ReduceMode mode,
                           const std::vector<bool>* force_keep)
    : chains_(find_chains(g, force_keep)) {
  const VertexId n = g.num_vertices();
  to_reduced_.assign(n, graph::kNullVertex);
  for (VertexId v = 0; v < n; ++v) {
    if (chains_.chain_of[v] == kNoChain) {
      to_reduced_[v] = static_cast<VertexId>(to_original_.size());
      to_original_.push_back(v);
    }
  }

  // Assemble candidate reduced edges with provenance.
  struct Candidate {
    VertexId u, v;  // reduced ids
    Weight w;
    std::uint32_t chain;
    graph::EdgeId original;
  };
  std::vector<Candidate> cand;
  cand.reserve(g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (chains_.edge_chain[e] != kNoChain) continue;  // folded into a chain
    const auto [u, v] = g.endpoints(e);
    cand.push_back({to_reduced_[u], to_reduced_[v], g.weight(e), kNoChain, e});
  }
  for (std::uint32_t c = 0; c < chains_.chains.size(); ++c) {
    const Chain& chain = chains_.chains[c];
    cand.push_back({to_reduced_[chain.left], to_reduced_[chain.right],
                    chain.total, c, graph::kNullEdge});
  }

  if (mode == ReduceMode::ForApsp) {
    // Drop self-loops; of each parallel bundle keep the lightest edge.
    std::unordered_map<std::uint64_t, std::size_t> best;
    std::vector<Candidate> filtered;
    for (const Candidate& cd : cand) {
      if (cd.u == cd.v) continue;
      const VertexId a = std::min(cd.u, cd.v), b = std::max(cd.u, cd.v);
      const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
      auto [it, inserted] = best.emplace(key, filtered.size());
      if (inserted) {
        filtered.push_back(cd);
      } else if (cd.w < filtered[it->second].w) {
        filtered[it->second] = cd;
      }
    }
    cand = std::move(filtered);
  }

  std::vector<std::pair<VertexId, VertexId>> endpoints;
  std::vector<Weight> weights;
  endpoints.reserve(cand.size());
  for (const Candidate& cd : cand) {
    endpoints.emplace_back(cd.u, cd.v);
    weights.push_back(cd.w);
    edge_chain_.push_back(cd.chain);
    original_edge_.push_back(cd.original);
  }
  reduced_ = Graph(static_cast<VertexId>(to_original_.size()),
                   std::move(endpoints), std::move(weights));
}

std::vector<graph::EdgeId> ReducedGraph::expand_edge(
    graph::EdgeId reduced_edge) const {
  const std::uint32_t c = edge_chain_[reduced_edge];
  if (c == kNoChain) return {original_edge_[reduced_edge]};
  return chains_.chains[c].edges;
}

}  // namespace eardec::reduce
