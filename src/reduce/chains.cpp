#include "reduce/chains.hpp"

#include <limits>

namespace eardec::reduce {
namespace {

/// True iff v is removable: degree exactly two, not force-kept, and not
/// incident to a self-loop (a self-looped vertex's loop is a cycle through
/// it, so the vertex can never be contracted away).
bool removable(const Graph& g, VertexId v, const std::vector<bool>* keep) {
  if (g.degree(v) != 2) return false;
  if (keep != nullptr && (*keep)[v]) return false;
  for (const graph::HalfEdge& he : g.neighbors(v)) {
    if (he.to == v) return false;
  }
  return true;
}

}  // namespace

ChainSet find_chains(const Graph& g, const std::vector<bool>* force_keep) {
  const VertexId n = g.num_vertices();
  const EdgeId m = g.num_edges();
  ChainSet cs;
  cs.chain_of.assign(n, kNoChain);
  cs.position.assign(n, std::numeric_limits<std::uint32_t>::max());
  cs.edge_chain.assign(m, kNoChain);

  std::vector<bool> consumed(m, false);

  // Walks one chain starting at anchor `a` along half-edge `first`.
  const auto walk = [&](VertexId a, const graph::HalfEdge& first) {
    const auto id = static_cast<std::uint32_t>(cs.chains.size());
    Chain c;
    c.left = a;
    c.edges.push_back(first.edge);
    cs.edge_chain[first.edge] = id;
    consumed[first.edge] = true;
    c.total = first.weight;
    VertexId cur = first.to;
    EdgeId in_edge = first.edge;
    while (removable(g, cur, force_keep) && cur != a) {
      cs.chain_of[cur] = id;
      cs.position[cur] = static_cast<std::uint32_t>(c.interior.size());
      c.interior.push_back(cur);
      c.prefix.push_back(c.total);
      // Exactly two incident half-edges; take the one we did not arrive by.
      const auto adj = g.neighbors(cur);
      const graph::HalfEdge& out =
          adj[0].edge == in_edge ? adj[1] : adj[0];
      c.edges.push_back(out.edge);
      cs.edge_chain[out.edge] = id;
      consumed[out.edge] = true;
      c.total += out.weight;
      in_edge = out.edge;
      cur = out.to;
    }
    c.right = cur;
    cs.chains.push_back(std::move(c));
  };

  // Pass 1: chains flanked by real anchors (degree != 2 or self-looped).
  for (VertexId a = 0; a < n; ++a) {
    if (removable(g, a, force_keep)) continue;
    for (const graph::HalfEdge& he : g.neighbors(a)) {
      if (consumed[he.edge]) continue;
      if (!removable(g, he.to, force_keep)) continue;  // anchor-anchor edge
      walk(a, he);
    }
  }

  // Pass 2: pure cycles — every vertex still unassigned and removable lies
  // on a cycle of degree-two vertices. Designate it as the anchor.
  for (VertexId v = 0; v < n; ++v) {
    if (!removable(g, v, force_keep) || cs.chain_of[v] != kNoChain) continue;
    const auto adj = g.neighbors(v);
    if (consumed[adj[0].edge]) continue;  // already walked from elsewhere
    walk(v, adj[0]);
  }
  return cs;
}

}  // namespace eardec::reduce
