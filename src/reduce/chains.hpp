// Maximal degree-two chains: the sequences of connected degree-two vertices
// the paper's preprocessing removes (Section 2.1.1).
//
// Inside one ear of an ear decomposition, each maximal run of degree-two
// vertices forms such a chain, and its two flanking vertices of degree >= 3
// are the paper's left(x)/right(x). We compute the chains by walking the
// graph directly (each chain is traversed once, O(n + m) total); the
// ear-based and walk-based definitions coincide, which the test suite
// verifies against ear_decomposition().
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace eardec::reduce {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;
using graph::Weight;

inline constexpr std::uint32_t kNoChain =
    std::numeric_limits<std::uint32_t>::max();

/// A maximal chain of degree-two vertices between two anchor vertices.
/// Anchors have degree != 2 — except for the *pure cycle* degenerate case
/// (every vertex of a cycle component has degree two), where one designated
/// anchor is picked on the cycle and left == right.
struct Chain {
  VertexId left = graph::kNullVertex;   ///< anchor at the start
  VertexId right = graph::kNullVertex;  ///< anchor at the end (may == left)
  std::vector<VertexId> interior;       ///< degree-2 vertices, left-to-right
  std::vector<EdgeId> edges;            ///< interior.size() + 1 edges in order
  /// prefix[i] = distance from `left` to interior[i] along the chain.
  std::vector<Weight> prefix;
  /// Total chain weight == distance from left to right along the chain.
  Weight total = 0;

  [[nodiscard]] bool is_cycle() const { return left == right; }
};

/// All maximal degree-two chains plus per-vertex membership.
struct ChainSet {
  std::vector<Chain> chains;
  /// Per vertex: index of the chain whose interior contains it, or kNoChain.
  std::vector<std::uint32_t> chain_of;
  /// Per interior vertex: its index within chain.interior (undefined
  /// for vertices with chain_of == kNoChain).
  std::vector<std::uint32_t> position;
  /// Per edge: index of the chain containing it, or kNoChain for edges
  /// between two anchors.
  std::vector<std::uint32_t> edge_chain;

  /// left(x)/right(x) and the chain distances to them, as in the paper.
  [[nodiscard]] VertexId left(VertexId x) const {
    return chains[chain_of[x]].left;
  }
  [[nodiscard]] VertexId right(VertexId x) const {
    return chains[chain_of[x]].right;
  }
  [[nodiscard]] Weight dist_left(VertexId x) const {
    const Chain& c = chains[chain_of[x]];
    return c.prefix[position[x]];
  }
  [[nodiscard]] Weight dist_right(VertexId x) const {
    const Chain& c = chains[chain_of[x]];
    return c.total - c.prefix[position[x]];
  }
};

/// Finds all maximal degree-two chains of g. Vertices incident to a
/// self-loop are treated as anchors (never removed). O(n + m).
///
/// `force_keep` (optional, size n) marks extra anchors: vertices that must
/// never be contracted even at degree two. The per-component APSP pipeline
/// uses it to pin articulation points and other vertices whose *global*
/// degree exceeds their degree inside the component subgraph.
[[nodiscard]] ChainSet find_chains(const Graph& g,
                                   const std::vector<bool>* force_keep = nullptr);

}  // namespace eardec::reduce
