// The reduced graph G^r of the paper (Section 2.1.1): contract every
// maximal degree-two chain into a single weighted edge between its anchors.
//
// Two modes, matching the two consumers:
//  * ForApsp  — shortest-path mode: of parallel reduced edges only the
//    lightest is kept and self-loop reduced edges (pure-cycle chains) are
//    dropped; neither can lie on a shortest path. This is exactly the
//    paper's "retain the edge with the shortest weight".
//  * ForMcb   — cycle-space mode: every parallel edge and self-loop is
//    kept; Lemma 3.1 needs the reduced multigraph's cycle space to have the
//    same dimension as the original's.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "reduce/chains.hpp"

namespace eardec::reduce {

enum class ReduceMode { ForApsp, ForMcb };

class ReducedGraph {
 public:
  /// Builds the reduced graph of g. Works for any graph (the contraction
  /// preserves pairwise distances between kept vertices unconditionally);
  /// the paper applies it per biconnected component. `force_keep`
  /// (optional, size n) pins extra vertices — see find_chains().
  ReducedGraph(const Graph& g, ReduceMode mode,
               const std::vector<bool>* force_keep = nullptr);

  /// The contracted graph. Vertex ids are local ("reduced") ids.
  [[nodiscard]] const Graph& graph() const noexcept { return reduced_; }

  /// The chain structure of the original graph.
  [[nodiscard]] const ChainSet& chains() const noexcept { return chains_; }

  /// Reduced id of an original vertex, or kNullVertex if it was removed.
  [[nodiscard]] VertexId to_reduced(VertexId original) const {
    return to_reduced_[original];
  }
  /// Original id of a reduced vertex.
  [[nodiscard]] VertexId to_original(VertexId reduced) const {
    return to_original_[reduced];
  }
  /// True iff the original vertex survives into the reduced graph.
  [[nodiscard]] bool kept(VertexId original) const {
    return to_reduced_[original] != graph::kNullVertex;
  }
  /// Number of removed (contracted) vertices.
  [[nodiscard]] VertexId num_removed() const {
    return static_cast<VertexId>(to_reduced_.size() - to_original_.size());
  }

  /// Provenance of reduced edge e: the chain it contracts, or kNoChain if
  /// it is an original anchor-to-anchor edge (then original_edge() applies).
  [[nodiscard]] std::uint32_t edge_chain(graph::EdgeId reduced_edge) const {
    return edge_chain_[reduced_edge];
  }
  /// For reduced edges with edge_chain == kNoChain: the original edge id.
  [[nodiscard]] graph::EdgeId original_edge(graph::EdgeId reduced_edge) const {
    return original_edge_[reduced_edge];
  }

  /// Expands a reduced edge into the ordered list of original edges it
  /// represents (the chain's edges, or the single original edge). The walk
  /// starts at the chain's `left` anchor.
  [[nodiscard]] std::vector<graph::EdgeId> expand_edge(
      graph::EdgeId reduced_edge) const;

 private:
  ChainSet chains_;
  Graph reduced_;
  std::vector<VertexId> to_reduced_;
  std::vector<VertexId> to_original_;
  std::vector<std::uint32_t> edge_chain_;
  std::vector<graph::EdgeId> original_edge_;
};

}  // namespace eardec::reduce
