#include "connectivity/dfs.hpp"

namespace eardec::connectivity {

DfsForest dfs_forest(const Graph& g) {
  const VertexId n = g.num_vertices();
  DfsForest f;
  f.parent.assign(n, graph::kNullVertex);
  f.parent_edge.assign(n, graph::kNullEdge);
  f.disc.assign(n, std::numeric_limits<std::uint32_t>::max());
  f.preorder.reserve(n);

  std::uint32_t time = 0;
  // Explicit stack of (vertex, index into its adjacency span).
  std::vector<std::pair<VertexId, std::size_t>> stack;
  std::vector<bool> visited(n, false);

  for (VertexId r = 0; r < n; ++r) {
    if (visited[r]) continue;
    f.roots.push_back(r);
    visited[r] = true;
    f.disc[r] = time++;
    f.preorder.push_back(r);
    stack.emplace_back(r, 0);
    while (!stack.empty()) {
      auto& [v, idx] = stack.back();
      const auto adj = g.neighbors(v);
      if (idx == adj.size()) {
        stack.pop_back();
        continue;
      }
      const graph::HalfEdge he = adj[idx++];
      if (!visited[he.to]) {
        visited[he.to] = true;
        f.parent[he.to] = v;
        f.parent_edge[he.to] = he.edge;
        f.disc[he.to] = time++;
        f.preorder.push_back(he.to);
        stack.emplace_back(he.to, 0);
      }
    }
  }
  return f;
}

ConnectedComponents connected_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  ConnectedComponents cc;
  cc.component.assign(n, kNoComponent);
  std::vector<VertexId> stack;
  for (VertexId r = 0; r < n; ++r) {
    if (cc.component[r] != kNoComponent) continue;
    const std::uint32_t id = cc.count++;
    cc.component[r] = id;
    stack.push_back(r);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const graph::HalfEdge& he : g.neighbors(v)) {
        if (cc.component[he.to] == kNoComponent) {
          cc.component[he.to] = id;
          stack.push_back(he.to);
        }
      }
    }
  }
  return cc;
}

bool is_connected(const Graph& g) {
  return connected_components(g).count <= 1;
}

}  // namespace eardec::connectivity
