#include "connectivity/block_cut_tree.hpp"

#include <algorithm>

namespace eardec::connectivity {

BlockCutTree::BlockCutTree(const Graph& g, const BiconnectedComponents& bcc)
    : num_blocks_(bcc.num_components) {
  const VertexId n = g.num_vertices();
  cut_index_.assign(n, kNoComponent);
  block_of_.assign(n, kNoComponent);
  for (VertexId v = 0; v < n; ++v) {
    if (bcc.is_articulation[v]) {
      cut_index_[v] = static_cast<std::uint32_t>(cut_vertices_.size());
      cut_vertices_.push_back(v);
    }
  }
  adj_.resize(num_nodes());
  for (std::uint32_t b = 0; b < num_blocks_; ++b) {
    // A self-loop forms a single-vertex pseudo-block. Its vertex need not be
    // an articulation point, so the pseudo-block can sit in a different tree
    // component than the vertex's real block; block_of must keep pointing at
    // the real block or cross-block routing walks off the tree.
    const bool loop_block = bcc.component_vertices(b).size() == 1;
    for (const VertexId v : bcc.component_vertices(b)) {
      if (block_of_[v] == kNoComponent || !loop_block) {
        block_of_[v] = b;  // overwrite is harmless for true cut vertices
      }
      const std::uint32_t a = cut_index_[v];
      if (a != kNoComponent) {
        adj_[block_node(b)].push_back(cut_node(a));
        adj_[cut_node(a)].push_back(block_node(b));
      }
    }
  }
}

std::vector<std::uint32_t> BlockCutTree::blocks_of(VertexId v) const {
  const std::uint32_t a = cut_index_[v];
  if (a == kNoComponent) {
    if (block_of_[v] == kNoComponent) return {};
    return {block_of_[v]};
  }
  std::vector<std::uint32_t> blocks;
  for (const std::uint32_t node : adj_[cut_node(a)]) {
    blocks.push_back(node);  // block nodes are numbered 0..num_blocks-1
  }
  return blocks;
}

}  // namespace eardec::connectivity
