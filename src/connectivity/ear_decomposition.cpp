#include "connectivity/ear_decomposition.hpp"

#include <limits>
#include <stdexcept>

#include "connectivity/dfs.hpp"

namespace eardec::connectivity {

EarDecomposition ear_decomposition(const Graph& g) {
  const VertexId n = g.num_vertices();
  const EdgeId m = g.num_edges();
  if (n == 0 || m == 0) {
    throw std::invalid_argument("ear_decomposition: graph has no edges");
  }
  const DfsForest forest = dfs_forest(g);
  if (forest.roots.size() != 1) {
    throw std::invalid_argument("ear_decomposition: graph is disconnected");
  }

  // Back edges bucketed at their ancestor endpoint. An edge (x, y) is a back
  // edge iff it is not a tree edge; its ancestor endpoint is the one with
  // the smaller discovery time (self-loop: both ends coincide).
  std::vector<bool> is_tree_edge(m, false);
  for (VertexId v = 0; v < n; ++v) {
    if (forest.parent_edge[v] != graph::kNullEdge) {
      is_tree_edge[forest.parent_edge[v]] = true;
    }
  }
  // Flat counting-sort buckets (offsets + two parallel arrays) instead of a
  // vector-of-vectors: one allocation each, and bucket order stays edge-id
  // order exactly as the old per-vertex push_back produced.
  const auto ancestor_of = [&](EdgeId e) {
    const auto [x, y] = g.endpoints(e);
    return forest.disc[x] <= forest.disc[y] ? x : y;
  };
  std::vector<std::size_t> back_off(static_cast<std::size_t>(n) + 1, 0);
  for (EdgeId e = 0; e < m; ++e) {
    if (!is_tree_edge[e]) ++back_off[ancestor_of(e) + 1];
  }
  for (VertexId v = 0; v < n; ++v) back_off[v + 1] += back_off[v];
  std::vector<EdgeId> back_edge(back_off[n]);
  std::vector<VertexId> back_desc(back_off[n]);
  {
    std::vector<std::size_t> cursor(back_off.begin(), back_off.end() - 1);
    for (EdgeId e = 0; e < m; ++e) {
      if (is_tree_edge[e]) continue;
      const auto [x, y] = g.endpoints(e);
      const VertexId anc = ancestor_of(e);
      const std::size_t slot = cursor[anc]++;
      back_edge[slot] = e;
      back_desc[slot] = anc == x ? y : x;
    }
  }

  EarDecomposition out;
  out.edge_ear.assign(m, std::numeric_limits<std::uint32_t>::max());
  std::vector<bool> marked(n, false);

  for (const VertexId v : forest.preorder) {
    for (std::size_t i = back_off[v]; i < back_off[v + 1]; ++i) {
      const EdgeId e = back_edge[i];
      const VertexId desc = back_desc[i];
      Ear ear;
      ear.vertices.push_back(v);
      ear.edges.push_back(e);
      out.edge_ear[e] = static_cast<std::uint32_t>(out.ears.size());
      marked[v] = true;
      VertexId cur = desc;
      while (true) {
        ear.vertices.push_back(cur);
        if (marked[cur]) break;  // reached an earlier ear (or v: cycle)
        marked[cur] = true;
        const EdgeId up = forest.parent_edge[cur];
        ear.edges.push_back(up);
        out.edge_ear[up] = static_cast<std::uint32_t>(out.ears.size());
        cur = forest.parent[cur];
      }
      if (!out.ears.empty() && ear.is_cycle() && ear.edges.size() > 1) {
        // A later closed ear witnesses a cut vertex: decomposition is not
        // open. (Single-edge cycles are self-loops and do not count.)
        out.open = false;
      }
      out.ears.push_back(std::move(ear));
    }
  }

  // 2-edge-connectivity check: every tree edge must have been absorbed into
  // a chain; a leftover tree edge is a bridge.
  for (EdgeId e = 0; e < m; ++e) {
    if (out.edge_ear[e] == std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument(
          "ear_decomposition: graph is not 2-edge-connected (bridge found)");
    }
  }
  if (out.ears.empty()) {
    throw std::invalid_argument("ear_decomposition: graph has no cycle");
  }
  return out;
}

}  // namespace eardec::connectivity
