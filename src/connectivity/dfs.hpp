// Iterative depth-first search primitives shared by the connectivity
// algorithms (recursion would overflow on the chain-heavy graphs this
// library is designed for, where DFS depth is Theta(n)).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace eardec::connectivity {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

inline constexpr std::uint32_t kNoComponent =
    std::numeric_limits<std::uint32_t>::max();

/// Rooted DFS forest over the whole graph (one tree per connected component).
struct DfsForest {
  /// parent[v] in the DFS tree; kNullVertex for roots.
  std::vector<VertexId> parent;
  /// The edge connecting v to parent[v]; kNullEdge for roots.
  std::vector<EdgeId> parent_edge;
  /// Discovery time of each vertex (0-based, unique).
  std::vector<std::uint32_t> disc;
  /// Vertices ordered by discovery time.
  std::vector<VertexId> preorder;
  /// Roots of the forest, one per connected component.
  std::vector<VertexId> roots;
};

/// Builds a DFS forest iteratively; O(n + m).
[[nodiscard]] DfsForest dfs_forest(const Graph& g);

/// Labels every vertex with a connected-component id in [0, count).
struct ConnectedComponents {
  std::uint32_t count = 0;
  std::vector<std::uint32_t> component;  // per vertex
};
[[nodiscard]] ConnectedComponents connected_components(const Graph& g);

/// True iff the graph is connected (vacuously true for the empty graph).
[[nodiscard]] bool is_connected(const Graph& g);

}  // namespace eardec::connectivity
