// Bridge (cut edge) detection and the 2-edge-connectivity predicate.
#pragma once

#include <vector>

#include "connectivity/bcc.hpp"
#include "graph/graph.hpp"

namespace eardec::connectivity {

/// Returns, per edge, whether it is a bridge. An edge is a bridge iff it is
/// the sole (non-self-loop) member of its biconnected component.
[[nodiscard]] std::vector<bool> bridges(const Graph& g);

/// Same, reusing an existing decomposition.
[[nodiscard]] std::vector<bool> bridges(const Graph& g,
                                        const BiconnectedComponents& bcc);

/// True iff g is connected and has no bridge — the necessary and sufficient
/// condition for an ear decomposition to exist (Whitney; paper Section 2.2).
[[nodiscard]] bool is_two_edge_connected(const Graph& g);

}  // namespace eardec::connectivity
