// Parallel ear decomposition in the style of Ramachandran [33] (also
// Maon–Schieber–Vishkin): every non-tree edge e = (u, v) of a spanning tree
// gets the ear label L(e) = (disc[lca(u, v)], e); every tree edge joins the
// ear of the minimum label among the non-tree edges covering it. Label
// computation per non-tree edge and the bottom-up minimum propagation are
// both data-parallel; this implementation fans them out over a thread pool
// (the PRAM algorithm's work-depth structure realized with shared-memory
// threads). Produces the same kind of decomposition as the sequential
// Schmidt-chain variant in ear_decomposition.hpp — open for biconnected
// inputs — and throws on graphs that are not 2-edge-connected.
#pragma once

#include "connectivity/ear_decomposition.hpp"
#include "hetero/thread_pool.hpp"

namespace eardec::connectivity {

/// Computes an ear decomposition with parallel label assignment.
/// `pool` optional: the per-edge phases fan out when provided.
[[nodiscard]] EarDecomposition parallel_ear_decomposition(
    const Graph& g, hetero::ThreadPool* pool = nullptr);

}  // namespace eardec::connectivity
