// Biconnected components and articulation points (iterative
// Hopcroft–Tarjan). Multigraph-aware: a pair of parallel edges forms a
// biconnected component of its own; a self-loop is its own single-edge
// component and never makes its endpoint an articulation point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "connectivity/dfs.hpp"
#include "graph/graph.hpp"

namespace eardec::connectivity {

/// Result of the biconnected-components decomposition. BCCs partition the
/// edge set; a vertex may belong to several components (iff it is an
/// articulation point or an endpoint of a self-loop next to other edges).
///
/// Per-component edge/vertex lists use flat CSR-style storage (two arrays
/// plus an offset table each) rather than vector-of-vectors: at 10⁶–10⁷
/// vertices the per-component heap allocations dominated Phase 0 both in
/// time and in allocator slack. Component c's lists are the spans returned
/// by component_edges(c) / component_vertices(c).
struct BiconnectedComponents {
  std::uint32_t num_components = 0;
  /// Per edge: the id of the component containing it.
  std::vector<std::uint32_t> edge_component;
  /// Per vertex: true iff removing it disconnects its component.
  std::vector<bool> is_articulation;
  /// Flat edge lists: component c's edges are
  /// edge_items[edge_offsets[c] .. edge_offsets[c+1]).
  std::vector<std::size_t> edge_offsets;
  std::vector<EdgeId> edge_items;
  /// Flat vertex lists (each vertex listed once per component), same layout.
  std::vector<std::size_t> vertex_offsets;
  std::vector<VertexId> vertex_items;

  /// Edges of component c.
  [[nodiscard]] std::span<const EdgeId> component_edges(
      std::uint32_t c) const noexcept {
    return {edge_items.data() + edge_offsets[c],
            edge_items.data() + edge_offsets[c + 1]};
  }
  /// Vertices of component c (each listed once).
  [[nodiscard]] std::span<const VertexId> component_vertices(
      std::uint32_t c) const noexcept {
    return {vertex_items.data() + vertex_offsets[c],
            vertex_items.data() + vertex_offsets[c + 1]};
  }

  [[nodiscard]] std::size_t num_articulation_points() const {
    std::size_t c = 0;
    for (const bool b : is_articulation) c += b;
    return c;
  }
};

/// Computes the biconnected components of g in O(n + m).
[[nodiscard]] BiconnectedComponents biconnected_components(const Graph& g);

/// True iff g is biconnected: connected, and no articulation point.
/// Follows the convention that K2 (a single edge) and K1 are biconnected.
[[nodiscard]] bool is_biconnected(const Graph& g);

/// Extracts a component as a standalone Graph plus the mapping from its
/// local vertex ids back to ids in g.
struct SubgraphView {
  Graph graph;
  std::vector<VertexId> to_parent;    ///< local id -> id in g
  std::vector<EdgeId> edge_to_parent; ///< local edge id -> edge id in g
};
[[nodiscard]] SubgraphView extract_component(const Graph& g,
                                             const BiconnectedComponents& bcc,
                                             std::uint32_t component);

}  // namespace eardec::connectivity
