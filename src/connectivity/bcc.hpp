// Biconnected components and articulation points (iterative
// Hopcroft–Tarjan). Multigraph-aware: a pair of parallel edges forms a
// biconnected component of its own; a self-loop is its own single-edge
// component and never makes its endpoint an articulation point.
#pragma once

#include <cstdint>
#include <vector>

#include "connectivity/dfs.hpp"
#include "graph/graph.hpp"

namespace eardec::connectivity {

/// Result of the biconnected-components decomposition. BCCs partition the
/// edge set; a vertex may belong to several components (iff it is an
/// articulation point or an endpoint of a self-loop next to other edges).
struct BiconnectedComponents {
  std::uint32_t num_components = 0;
  /// Per edge: the id of the component containing it.
  std::vector<std::uint32_t> edge_component;
  /// Per vertex: true iff removing it disconnects its component.
  std::vector<bool> is_articulation;
  /// Edges of each component.
  std::vector<std::vector<EdgeId>> component_edges;
  /// Vertices of each component (each listed once).
  std::vector<std::vector<VertexId>> component_vertices;

  [[nodiscard]] std::size_t num_articulation_points() const {
    std::size_t c = 0;
    for (const bool b : is_articulation) c += b;
    return c;
  }
};

/// Computes the biconnected components of g in O(n + m).
[[nodiscard]] BiconnectedComponents biconnected_components(const Graph& g);

/// True iff g is biconnected: connected, and no articulation point.
/// Follows the convention that K2 (a single edge) and K1 are biconnected.
[[nodiscard]] bool is_biconnected(const Graph& g);

/// Extracts a component as a standalone Graph plus the mapping from its
/// local vertex ids back to ids in g.
struct SubgraphView {
  Graph graph;
  std::vector<VertexId> to_parent;    ///< local id -> id in g
  std::vector<EdgeId> edge_to_parent; ///< local edge id -> edge id in g
};
[[nodiscard]] SubgraphView extract_component(const Graph& g,
                                             const BiconnectedComponents& bcc,
                                             std::uint32_t component);

}  // namespace eardec::connectivity
