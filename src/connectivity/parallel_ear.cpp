#include "connectivity/parallel_ear.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "connectivity/dfs.hpp"

namespace eardec::connectivity {
namespace {

/// Ear label: lexicographic (disc of the LCA, edge id). The non-tree edge
/// with the minimum label covering a tree edge owns it.
struct Label {
  std::uint32_t lca_disc = std::numeric_limits<std::uint32_t>::max();
  EdgeId edge = graph::kNullEdge;

  [[nodiscard]] bool valid() const { return edge != graph::kNullEdge; }
  [[nodiscard]] bool operator<(const Label& o) const {
    return lca_disc != o.lca_disc ? lca_disc < o.lca_disc : edge < o.edge;
  }
};

}  // namespace

EarDecomposition parallel_ear_decomposition(const Graph& g,
                                            hetero::ThreadPool* pool) {
  const VertexId n = g.num_vertices();
  const EdgeId m = g.num_edges();
  if (n == 0 || m == 0) {
    throw std::invalid_argument("parallel_ear_decomposition: no edges");
  }
  const DfsForest forest = dfs_forest(g);
  if (forest.roots.size() != 1) {
    throw std::invalid_argument("parallel_ear_decomposition: disconnected");
  }

  // Depths for LCA climbing.
  std::vector<std::uint32_t> depth(n, 0);
  for (const VertexId v : forest.preorder) {
    if (forest.parent[v] != graph::kNullVertex) {
      depth[v] = depth[forest.parent[v]] + 1;
    }
  }
  std::vector<bool> is_tree_edge(m, false);
  for (VertexId v = 0; v < n; ++v) {
    if (forest.parent_edge[v] != graph::kNullEdge) {
      is_tree_edge[forest.parent_edge[v]] = true;
    }
  }
  std::vector<EdgeId> non_tree;
  for (EdgeId e = 0; e < m; ++e) {
    if (!is_tree_edge[e]) non_tree.push_back(e);
  }

  // Phase 1 (parallel over non-tree edges): LCA of each edge's endpoints.
  std::vector<VertexId> lca_of(m, graph::kNullVertex);
  const auto compute_lca = [&](std::size_t i) {
    const EdgeId e = non_tree[i];
    auto [a, b] = g.endpoints(e);
    while (a != b) {
      if (depth[a] < depth[b]) std::swap(a, b);
      a = forest.parent[a];
    }
    lca_of[e] = a;
  };
  if (pool != nullptr) {
    pool->parallel_for(0, non_tree.size(), compute_lca, 32);
  } else {
    for (std::size_t i = 0; i < non_tree.size(); ++i) compute_lca(i);
  }

  // Phase 2: minimum covering label per tree edge, bottom-up. best[v]
  // covers the tree edge (v -> parent); a child's minimum propagates while
  // its LCA lies strictly above the current vertex.
  std::vector<Label> best(n);
  // Flat counting-sort incidence buckets (one allocation instead of n): a
  // non-tree edge contributes at each endpoint that is not the LCA.
  std::vector<std::size_t> inc_off(static_cast<std::size_t>(n) + 1, 0);
  for (const EdgeId e : non_tree) {
    const auto [a, b] = g.endpoints(e);
    const VertexId l = lca_of[e];
    if (a != l) ++inc_off[a + 1];
    if (b != l && b != a) ++inc_off[b + 1];
  }
  for (VertexId v = 0; v < n; ++v) inc_off[v + 1] += inc_off[v];
  std::vector<EdgeId> inc_edge(inc_off[n]);
  std::vector<VertexId> inc_lca(inc_off[n]);
  {
    std::vector<std::size_t> cursor(inc_off.begin(), inc_off.end() - 1);
    for (const EdgeId e : non_tree) {
      const auto [a, b] = g.endpoints(e);
      const VertexId l = lca_of[e];
      if (a != l) {
        const std::size_t s = cursor[a]++;
        inc_edge[s] = e;
        inc_lca[s] = l;
      }
      if (b != l && b != a) {
        const std::size_t s = cursor[b]++;
        inc_edge[s] = e;
        inc_lca[s] = l;
      }
    }
  }
  for (auto it = forest.preorder.rbegin(); it != forest.preorder.rend();
       ++it) {
    const VertexId v = *it;
    for (std::size_t i = inc_off[v]; i < inc_off[v + 1]; ++i) {
      best[v] = std::min(best[v], Label{forest.disc[inc_lca[i]], inc_edge[i]});
    }
    const VertexId p = forest.parent[v];
    if (p != graph::kNullVertex && best[v].valid() &&
        best[v].lca_disc < forest.disc[p]) {
      best[p] = std::min(best[p], best[v]);
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (forest.parent[v] != graph::kNullVertex && !best[v].valid()) {
      throw std::invalid_argument(
          "parallel_ear_decomposition: bridge found (not 2-edge-connected)");
    }
  }

  // Phase 3: ears in label order; each non-tree edge materializes its ear
  // by walking both endpoints upward while it still owns the tree edges
  // (parallel over ears).
  std::vector<EdgeId> order = non_tree;
  std::sort(order.begin(), order.end(), [&](EdgeId x, EdgeId y) {
    return Label{forest.disc[lca_of[x]], x} < Label{forest.disc[lca_of[y]], y};
  });
  EarDecomposition out;
  out.edge_ear.assign(m, std::numeric_limits<std::uint32_t>::max());
  out.ears.resize(order.size());
  const auto build_ear = [&](std::size_t i) {
    const EdgeId e = order[i];
    const auto [u, v] = g.endpoints(e);
    // A tree edge belongs to this ear iff e is its minimum covering label;
    // ownership along each endpoint's path to the LCA is contiguous, so a
    // simple upward walk collects exactly the ear.
    const auto climb = [&](VertexId x, std::vector<VertexId>& verts,
                           std::vector<EdgeId>& edges) {
      while (forest.parent[x] != graph::kNullVertex && best[x].edge == e) {
        edges.push_back(forest.parent_edge[x]);
        x = forest.parent[x];
        verts.push_back(x);
      }
    };
    Ear& ear = out.ears[i];
    // u-side walk (collected upward, then reversed so the ear reads
    // top_u ... u, e, v ... top_v).
    std::vector<VertexId> uv{u};
    std::vector<EdgeId> ue;
    climb(u, uv, ue);
    std::reverse(uv.begin(), uv.end());
    std::reverse(ue.begin(), ue.end());
    ear.vertices = std::move(uv);
    ear.edges = std::move(ue);
    ear.edges.push_back(e);
    ear.vertices.push_back(v);
    climb(v, ear.vertices, ear.edges);
  };
  if (pool != nullptr) {
    pool->parallel_for(0, order.size(), build_ear, 16);
  } else {
    for (std::size_t i = 0; i < order.size(); ++i) build_ear(i);
  }

  for (std::size_t i = 0; i < out.ears.size(); ++i) {
    for (const EdgeId e : out.ears[i].edges) {
      out.edge_ear[e] = static_cast<std::uint32_t>(i);
    }
    if (i > 0 && out.ears[i].is_cycle() && out.ears[i].edges.size() > 1) {
      out.open = false;
    }
  }
  for (EdgeId e = 0; e < m; ++e) {
    if (out.edge_ear[e] == std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument(
          "parallel_ear_decomposition: uncovered edge (internal error)");
    }
  }
  return out;
}

}  // namespace eardec::connectivity
