// Ear decomposition of a 2-edge-connected graph.
//
// An ear decomposition partitions E into simple paths/cycles P0, P1, ...
// where P0 ∪ P1 is a cycle and every later ear has only its two endpoints
// in common with earlier ears. It exists iff the graph is 2-edge-connected
// (Whitney / Ramachandran [33] in the paper); it is *open* (every ear after
// the first is a path) iff the graph is additionally 2-vertex-connected.
//
// We implement Schmidt's chain decomposition: DFS from an arbitrary root;
// visit vertices in discovery order; for each back edge (v, u) rooted at the
// ancestor v, emit the chain that starts with the back edge and climbs the
// tree from u until it reaches an already-marked vertex. For 2-edge-connected
// inputs the chains are exactly an ear decomposition with chain #0 the
// initial cycle (= P0 ∪ P1 in the paper's notation).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace eardec::connectivity {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

/// One ear: an ordered walk. vertices.size() == edges.size() + 1; for a
/// closed ear (cycle) vertices.front() == vertices.back().
struct Ear {
  std::vector<VertexId> vertices;
  std::vector<EdgeId> edges;
  [[nodiscard]] bool is_cycle() const {
    return vertices.front() == vertices.back();
  }
};

struct EarDecomposition {
  std::vector<Ear> ears;
  /// Per edge: index of the ear containing it.
  std::vector<std::uint32_t> edge_ear;
  /// True iff every ear but the first is an open path (graph biconnected).
  bool open = true;
};

/// Computes an ear decomposition. Throws std::invalid_argument if g is not
/// 2-edge-connected (including disconnected or empty graphs). Self-loops and
/// parallel edges are allowed; a self-loop becomes a closed one-edge ear.
[[nodiscard]] EarDecomposition ear_decomposition(const Graph& g);

}  // namespace eardec::connectivity
