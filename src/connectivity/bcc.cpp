#include "connectivity/bcc.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/builder.hpp"

namespace eardec::connectivity {
namespace {

constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();

}  // namespace

BiconnectedComponents biconnected_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  const EdgeId m = g.num_edges();

  BiconnectedComponents out;
  out.edge_component.assign(m, kNoComponent);
  out.is_articulation.assign(n, false);

  std::vector<std::uint32_t> disc(n, kUnvisited);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<VertexId> parent(n, graph::kNullVertex);
  std::vector<EdgeId> parent_edge(n, graph::kNullEdge);
  std::vector<EdgeId> edge_stack;

  // Iterative DFS frame: vertex + adjacency cursor.
  std::vector<std::pair<VertexId, std::size_t>> frames;
  std::uint32_t time = 0;

  // Components complete one at a time, so their edge lists land
  // contiguously in the flat edge_items array; each pop just seals the next
  // offset. No per-component allocation.
  out.edge_offsets.push_back(0);
  const auto pop_component = [&](EdgeId up_to_edge) {
    while (true) {
      const EdgeId e = edge_stack.back();
      edge_stack.pop_back();
      out.edge_component[e] = out.num_components;
      out.edge_items.push_back(e);
      if (e == up_to_edge) break;
    }
    out.edge_offsets.push_back(out.edge_items.size());
    ++out.num_components;
  };

  for (VertexId root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    std::uint32_t root_children = 0;
    disc[root] = low[root] = time++;
    frames.emplace_back(root, 0);

    while (!frames.empty()) {
      auto& [v, idx] = frames.back();
      const auto adj = g.neighbors(v);
      if (idx < adj.size()) {
        const graph::HalfEdge he = adj[idx++];
        if (he.edge == parent_edge[v]) continue;  // skip the tree edge upward
        if (g.is_self_loop(he.edge)) {
          // Each self-loop is its own component (visited twice in adjacency;
          // assign only once).
          if (out.edge_component[he.edge] == kNoComponent) {
            out.edge_component[he.edge] = out.num_components;
            out.edge_items.push_back(he.edge);
            out.edge_offsets.push_back(out.edge_items.size());
            ++out.num_components;
          }
          continue;
        }
        if (disc[he.to] == kUnvisited) {  // tree edge
          parent[he.to] = v;
          parent_edge[he.to] = he.edge;
          if (v == root) ++root_children;
          disc[he.to] = low[he.to] = time++;
          edge_stack.push_back(he.edge);
          frames.emplace_back(he.to, 0);
        } else if (disc[he.to] < disc[v]) {  // back edge (to an ancestor)
          edge_stack.push_back(he.edge);
          low[v] = std::min(low[v], disc[he.to]);
        }
        // Forward/descendant edges were already stacked when discovered from
        // the other side; ignore here.
        continue;
      }

      frames.pop_back();
      const VertexId p = parent[v];
      if (p != graph::kNullVertex) {
        low[p] = std::min(low[p], low[v]);
        if (low[v] >= disc[p]) {
          // p separates v's subtree: close off one biconnected component.
          if (p != root || root_children > 1) out.is_articulation[p] = true;
          pop_component(parent_edge[v]);
        }
      }
    }
  }

  // Derive unique vertex lists per component, appended flat in component
  // order (a vertex repeats across components only if it is an articulation
  // point or a lone self-loop endpoint, so the total stays O(n + #comps)).
  out.vertex_offsets.push_back(0);
  std::vector<std::uint32_t> stamp(n, kUnvisited);
  for (std::uint32_t c = 0; c < out.num_components; ++c) {
    for (const EdgeId e : out.component_edges(c)) {
      const auto [u, v] = g.endpoints(e);
      for (const VertexId x : {u, v}) {
        if (stamp[x] != c) {
          stamp[x] = c;
          out.vertex_items.push_back(x);
        }
      }
    }
    out.vertex_offsets.push_back(out.vertex_items.size());
  }
  return out;
}

bool is_biconnected(const Graph& g) {
  if (g.num_vertices() <= 2) return is_connected(g);
  if (!is_connected(g)) return false;
  const BiconnectedComponents bcc = biconnected_components(g);
  // Self-loops form their own component; ignore them when deciding.
  std::uint32_t non_loop_components = 0;
  for (std::uint32_t c = 0; c < bcc.num_components; ++c) {
    const auto edges = bcc.component_edges(c);
    if (edges.size() == 1 && g.is_self_loop(edges.front())) continue;
    ++non_loop_components;
  }
  return non_loop_components <= 1;
}

SubgraphView extract_component(const Graph& g,
                               const BiconnectedComponents& bcc,
                               std::uint32_t component) {
  if (component >= bcc.num_components) {
    throw std::out_of_range("extract_component: bad component id");
  }
  SubgraphView view;
  const auto verts = bcc.component_vertices(component);
  view.to_parent.assign(verts.begin(), verts.end());
  std::vector<VertexId> local(g.num_vertices(), graph::kNullVertex);
  for (VertexId i = 0; i < view.to_parent.size(); ++i) {
    local[view.to_parent[i]] = i;
  }
  graph::Builder b(static_cast<VertexId>(view.to_parent.size()));
  for (const EdgeId e : bcc.component_edges(component)) {
    const auto [u, v] = g.endpoints(e);
    b.add_edge(local[u], local[v], g.weight(e));
    view.edge_to_parent.push_back(e);
  }
  view.graph = std::move(b).build();
  return view;
}

}  // namespace eardec::connectivity
