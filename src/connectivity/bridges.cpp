#include "connectivity/bridges.hpp"

namespace eardec::connectivity {

std::vector<bool> bridges(const Graph& g, const BiconnectedComponents& bcc) {
  std::vector<bool> out(g.num_edges(), false);
  for (std::uint32_t c = 0; c < bcc.num_components; ++c) {
    const auto edges = bcc.component_edges(c);
    if (edges.size() == 1 && !g.is_self_loop(edges.front())) {
      out[edges.front()] = true;
    }
  }
  return out;
}

std::vector<bool> bridges(const Graph& g) {
  return bridges(g, biconnected_components(g));
}

bool is_two_edge_connected(const Graph& g) {
  if (!is_connected(g)) return false;
  const auto b = bridges(g);
  for (const bool is_bridge : b) {
    if (is_bridge) return false;
  }
  return true;
}

}  // namespace eardec::connectivity
