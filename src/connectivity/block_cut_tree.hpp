// Block-cut tree: the bipartite tree whose nodes are the biconnected
// components (blocks) and the articulation points (cuts) of a graph, with an
// edge between a cut node and every block containing that vertex. The
// paper's Stage-2 APSP post-processing routes cross-component shortest paths
// through this tree (Section 2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "connectivity/bcc.hpp"
#include "graph/graph.hpp"

namespace eardec::connectivity {

class BlockCutTree {
 public:
  /// Builds the tree (a forest if g is disconnected) from a decomposition.
  BlockCutTree(const Graph& g, const BiconnectedComponents& bcc);

  /// Number of block nodes (== bcc.num_components).
  [[nodiscard]] std::uint32_t num_blocks() const noexcept { return num_blocks_; }

  /// Articulation points of g, in ascending vertex order.
  [[nodiscard]] const std::vector<VertexId>& cut_vertices() const noexcept {
    return cut_vertices_;
  }

  /// Index of graph vertex v in cut_vertices(), or kNoComponent if v is not
  /// an articulation point.
  [[nodiscard]] std::uint32_t cut_index(VertexId v) const noexcept {
    return cut_index_[v];
  }

  /// Total tree nodes: blocks then cuts.
  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return num_blocks_ + static_cast<std::uint32_t>(cut_vertices_.size());
  }

  /// Tree-node id of block b / of the a-th articulation point.
  [[nodiscard]] std::uint32_t block_node(std::uint32_t b) const noexcept {
    return b;
  }
  [[nodiscard]] std::uint32_t cut_node(std::uint32_t a) const noexcept {
    return num_blocks_ + a;
  }

  /// Adjacency of a tree node (block nodes neighbour cut nodes and vice versa).
  [[nodiscard]] const std::vector<std::uint32_t>& neighbors(
      std::uint32_t node) const {
    return adj_[node];
  }

  /// Some block containing vertex v (the unique one when v is not a cut
  /// vertex; an arbitrary one otherwise). kNoComponent for isolated vertices.
  [[nodiscard]] std::uint32_t block_of(VertexId v) const noexcept {
    return block_of_[v];
  }

  /// Blocks containing graph vertex v (one entry unless v is a cut vertex).
  [[nodiscard]] std::vector<std::uint32_t> blocks_of(VertexId v) const;

 private:
  std::uint32_t num_blocks_ = 0;
  std::vector<VertexId> cut_vertices_;
  std::vector<std::uint32_t> cut_index_;
  std::vector<std::uint32_t> block_of_;
  std::vector<std::vector<std::uint32_t>> adj_;
};

}  // namespace eardec::connectivity
