#include "connectivity/tree_lca.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace eardec::connectivity {

TreeLca::TreeLca(const std::vector<std::vector<std::uint32_t>>& adjacency) {
  const auto n = static_cast<std::uint32_t>(adjacency.size());
  constexpr std::uint32_t kNone = UINT32_MAX;
  depth_.assign(n, 0);
  component_.assign(n, kNone);
  std::vector<std::uint32_t> parent(n, kNone);

  std::uint32_t num_components = 0;
  std::vector<std::uint32_t> stack;
  for (std::uint32_t r = 0; r < n; ++r) {
    if (component_[r] != kNone) continue;
    const std::uint32_t comp = num_components++;
    component_[r] = comp;
    stack.push_back(r);
    while (!stack.empty()) {
      const std::uint32_t v = stack.back();
      stack.pop_back();
      for (const std::uint32_t w : adjacency[v]) {
        if (component_[w] != kNone) continue;
        component_[w] = comp;
        parent[w] = v;
        depth_[w] = depth_[v] + 1;
        stack.push_back(w);
      }
    }
  }

  std::uint32_t max_depth = 0;
  for (const std::uint32_t d : depth_) max_depth = std::max(max_depth, d);
  const auto levels = std::max<std::uint32_t>(1, std::bit_width(max_depth));
  up_.assign(levels, std::vector<std::uint32_t>(n));
  for (std::uint32_t v = 0; v < n; ++v) {
    up_[0][v] = parent[v] == kNone ? v : parent[v];  // roots self-loop
  }
  for (std::uint32_t k = 1; k < levels; ++k) {
    for (std::uint32_t v = 0; v < n; ++v) {
      up_[k][v] = up_[k - 1][up_[k - 1][v]];
    }
  }
}

std::uint32_t TreeLca::ancestor_at_depth(std::uint32_t v,
                                         std::uint32_t target_depth) const {
  assert(target_depth <= depth_[v]);
  std::uint32_t delta = depth_[v] - target_depth;
  for (std::uint32_t k = 0; delta != 0; ++k, delta >>= 1) {
    if (delta & 1u) v = up_[k][v];
  }
  return v;
}

std::uint32_t TreeLca::lca(std::uint32_t u, std::uint32_t v) const {
  if (component_[u] != component_[v]) {
    throw std::invalid_argument("TreeLca::lca: nodes in different components");
  }
  if (depth_[u] > depth_[v]) std::swap(u, v);
  v = ancestor_at_depth(v, depth_[u]);
  if (u == v) return u;
  for (auto k = static_cast<std::int64_t>(up_.size()) - 1; k >= 0; --k) {
    const auto ku = static_cast<std::size_t>(k);
    if (up_[ku][u] != up_[ku][v]) {
      u = up_[ku][u];
      v = up_[ku][v];
    }
  }
  return up_[0][u];
}

std::uint32_t TreeLca::next_on_path(std::uint32_t u, std::uint32_t v) const {
  if (u == v) {
    throw std::invalid_argument("TreeLca::next_on_path: u == v");
  }
  const std::uint32_t a = lca(u, v);
  if (a == u) {
    // u is an ancestor of v: step down towards v.
    return ancestor_at_depth(v, depth_[u] + 1);
  }
  return up_[0][u];  // step towards the root
}

}  // namespace eardec::connectivity
