// Lowest-common-ancestor queries on a static forest via binary lifting.
// Used by the APSP oracle to find the first/last articulation point on the
// block-cut-tree path between two components (paper Section 2.2, Stage 2).
#pragma once

#include <cstdint>
#include <vector>

namespace eardec::connectivity {

class TreeLca {
 public:
  /// Builds lifting tables for the forest given by `adjacency` (node ids
  /// 0..n-1; symmetric edges). Each connected component is rooted at its
  /// smallest node id. O(n log n) preprocessing, O(log n) queries.
  explicit TreeLca(const std::vector<std::vector<std::uint32_t>>& adjacency);

  [[nodiscard]] std::uint32_t depth(std::uint32_t v) const { return depth_[v]; }

  /// Component id (nodes in different components have no LCA).
  [[nodiscard]] std::uint32_t component(std::uint32_t v) const {
    return component_[v];
  }

  /// Lowest common ancestor; u and v must be in the same component.
  [[nodiscard]] std::uint32_t lca(std::uint32_t u, std::uint32_t v) const;

  /// Ancestor of v at depth `target_depth` (<= depth(v)).
  [[nodiscard]] std::uint32_t ancestor_at_depth(std::uint32_t v,
                                                std::uint32_t target_depth) const;

  /// First node after u on the tree path u -> v (u != v, same component).
  [[nodiscard]] std::uint32_t next_on_path(std::uint32_t u,
                                           std::uint32_t v) const;

 private:
  std::vector<std::uint32_t> depth_;
  std::vector<std::uint32_t> component_;
  std::vector<std::vector<std::uint32_t>> up_;  // up_[k][v]: 2^k-th ancestor
};

}  // namespace eardec::connectivity
