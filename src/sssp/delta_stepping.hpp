// Delta-stepping SSSP (Meyer & Sanders): vertices are kept in distance
// buckets of width delta; each round settles one bucket by repeatedly
// relaxing its light edges (w <= delta), then relaxes the heavy ones once.
// The classic bridge between Dijkstra (delta -> 0) and Bellman–Ford
// (delta -> inf) and the standard CPU-parallel SSSP in the literature the
// paper builds on; here the intra-bucket relaxations optionally fan out
// over the thread pool.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "hetero/thread_pool.hpp"

namespace eardec::sssp {

/// Single-source distances. `delta` <= 0 picks a heuristic (average edge
/// weight). `pool` optional: bucket relaxations fan out when provided.
[[nodiscard]] std::vector<graph::Weight> delta_stepping(
    const graph::Graph& g, graph::VertexId source, graph::Weight delta = 0,
    hetero::ThreadPool* pool = nullptr);

}  // namespace eardec::sssp
