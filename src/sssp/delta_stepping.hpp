// Delta-stepping SSSP (Meyer & Sanders): vertices are kept in distance
// buckets of width delta; each round settles one bucket by repeatedly
// relaxing its light edges (w <= delta), then relaxes the heavy ones once.
// The classic bridge between Dijkstra (delta -> 0) and Bellman–Ford
// (delta -> inf) and the standard CPU-parallel SSSP in the literature the
// paper builds on.
//
// The workspace form is the bulk kernel of the Phase-II device path: each
// light-edge round slices the frontier and fans the slices out as one bulk
// launch (thread pool or software device), with one request buffer per
// slice — no shared mutex, no per-call atomics allocation.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "hetero/device.hpp"
#include "hetero/thread_pool.hpp"

namespace eardec::sssp {

/// Reusable buffers for APSP-style delta-stepping loops. One workspace may
/// serve graphs of different sizes (size it once to the largest via
/// ensure()); the Phase-II scheduler pools one per worker / device driver
/// so the drain performs no per-call allocation — in particular the
/// atomic distance array, whose element type makes std::vector construction
/// the dominant cost of the free-function form, is built once and reused.
class DeltaSteppingWorkspace {
 public:
  DeltaSteppingWorkspace() = default;
  explicit DeltaSteppingWorkspace(graph::VertexId num_vertices) {
    ensure(num_vertices);
  }

  /// Grows the internal buffers to cover graphs of up to `num_vertices`
  /// vertices; never shrinks.
  void ensure(graph::VertexId num_vertices);

  /// Computes distances from `source` into `dist_out` (size n).
  /// `delta` <= 0 picks a heuristic (average edge weight). Frontier
  /// relaxations fan out over `pool` (per-slot request buffers) or, when
  /// `device` is given instead, as bulk slice launches on the software
  /// device — pass at most one of the two. Results are bit-identical to
  /// sssp::dijkstra in every configuration.
  void distances(const graph::Graph& g, graph::VertexId source,
                 std::span<graph::Weight> dist_out, graph::Weight delta = 0,
                 hetero::ThreadPool* pool = nullptr,
                 hetero::Device* device = nullptr);

 private:
  /// Relaxation targets produced by one frontier slice.
  using RequestBuffer = std::vector<std::pair<graph::VertexId, graph::Weight>>;

  std::vector<std::atomic<graph::Weight>> dist_;  ///< capacity, reused
  std::vector<std::vector<graph::VertexId>> buckets_;
  std::vector<graph::VertexId> frontier_;
  std::vector<graph::VertexId> settled_;
  std::vector<RequestBuffer> slice_requests_;  ///< one per slot/slice
};

/// Single-source distances through a throwaway workspace. `delta` <= 0
/// picks the heuristic; `pool` optional (bucket relaxations fan out when
/// provided). Prefer the workspace in loops.
[[nodiscard]] std::vector<graph::Weight> delta_stepping(
    const graph::Graph& g, graph::VertexId source, graph::Weight delta = 0,
    hetero::ThreadPool* pool = nullptr);

}  // namespace eardec::sssp
