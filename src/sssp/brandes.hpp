// Brandes' betweenness-centrality algorithm (weighted variant), the
// substrate of the ear-decomposition betweenness work the paper cites as
// its companion result ([32], Pachorkar et al.). One Dijkstra-like pass
// per source with dependency accumulation; sources parallelize across a
// thread pool exactly like the APSP processing phase.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "hetero/thread_pool.hpp"

namespace eardec::sssp {

/// Exact betweenness centrality of every vertex (undirected convention:
/// each unordered pair counted once). O(n m + n^2 log n) total.
/// `pool` optional: sources fan out across it when provided.
[[nodiscard]] std::vector<double> betweenness_centrality(
    const graph::Graph& g, hetero::ThreadPool* pool = nullptr);

}  // namespace eardec::sssp

namespace eardec::sssp {

/// Pivot-sampled approximate betweenness (Brandes & Pich): `pivots` source
/// passes scaled by n / pivots. Unbiased estimator; error shrinks with the
/// sample. Exact when pivots >= n (then it just runs every source).
[[nodiscard]] std::vector<double> betweenness_centrality_sampled(
    const graph::Graph& g, graph::VertexId pivots, std::uint64_t seed,
    hetero::ThreadPool* pool = nullptr);

}  // namespace eardec::sssp
