// Level-synchronous frontier SSSP — the Harish–Narayanan [16] GPU kernel
// the paper runs on the device side. Each iteration launches two kernels:
//   K1: every masked vertex relaxes its neighbours into an "updating" cost
//       array (atomic min, one lane per vertex);
//   K2: every vertex whose updating cost improved adopts it and re-enters
//       the mask.
// Iterating until the mask empties yields exact shortest paths for
// non-negative weights. This is a Bellman-Ford-family method: more total
// work than Dijkstra but embarrassingly lane-parallel, which is why it fits
// the throughput device.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "hetero/device.hpp"

namespace eardec::sssp {

using graph::Graph;
using graph::VertexId;
using graph::Weight;

/// Single-source shortest path distances computed on `device`.
[[nodiscard]] std::vector<Weight> frontier_sssp(const Graph& g,
                                                VertexId source,
                                                hetero::Device& device);

/// Reusable buffers for APSP-style loops on the device. One workspace may
/// serve graphs of different sizes (size it once to the largest via
/// ensure()); the device driver keeps one pooled instance so phase II runs
/// allocation-free.
class FrontierWorkspace {
 public:
  FrontierWorkspace() = default;
  explicit FrontierWorkspace(VertexId num_vertices);

  /// Grows the mask / updating-cost buffers to cover graphs of up to
  /// `num_vertices` vertices; never shrinks.
  void ensure(VertexId num_vertices);

  /// Computes distances from `source` into `dist_out` (size n). The
  /// workspace must have capacity >= n (see ensure()).
  void distances(const Graph& g, VertexId source, hetero::Device& device,
                 std::span<Weight> dist_out);

  /// Kernel iterations used by the last run (diagnostics).
  [[nodiscard]] std::uint32_t last_iterations() const noexcept {
    return iterations_;
  }

 private:
  std::vector<std::uint8_t> mask_;
  std::vector<std::atomic<Weight>> updating_;
  std::atomic<std::uint32_t> active_{0};
  std::uint32_t iterations_ = 0;
};

}  // namespace eardec::sssp
