// Blocked Floyd–Warshall phrased as device kernels — the GPU APSP family
// of Katz & Kider and Matsumoto et al. from the paper's related work. Each
// round launches three kernels on the software device: the pivot tile, the
// pivot row/column tiles (one lane per tile), and the remainder (one lane
// per tile, warp-granular). Exercises the same tile dependency structure
// as the CUDA implementations.
#pragma once

#include "hetero/device.hpp"
#include "sssp/floyd_warshall.hpp"

namespace eardec::sssp {

/// Full APSP matrix of g via tiled Floyd–Warshall on `device`.
[[nodiscard]] DistanceMatrix device_floyd_warshall(const Graph& g,
                                                   hetero::Device& device,
                                                   VertexId block = 32);

}  // namespace eardec::sssp
