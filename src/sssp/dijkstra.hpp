// Binary-heap Dijkstra — the CPU-side single-source shortest path kernel.
// The paper prefers Dijkstra for the processing phase because each instance
// runs independently on one thread and its work is near-linear in the edge
// count of the (reduced) graph (Section 2.1.2).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace eardec::sssp {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;
using graph::Weight;

/// Distances plus the shortest-path tree (needed by the MCB algorithms).
struct ShortestPathTree {
  VertexId source = 0;
  std::vector<Weight> dist;        ///< kInfWeight where unreachable
  std::vector<VertexId> parent;    ///< kNullVertex for source/unreachable
  std::vector<EdgeId> parent_edge; ///< kNullEdge for source/unreachable
};

/// Full Dijkstra from `source`. Requires non-negative weights (enforced by
/// Graph). O((n + m) log n).
[[nodiscard]] ShortestPathTree dijkstra(const Graph& g, VertexId source);

/// Reusable workspace for APSP-style loops: runs Dijkstra repeatedly
/// without reallocating the heap or the distance array. One workspace may
/// serve graphs of different sizes (size it once to the largest via
/// ensure()); the scheduler pools one per worker thread so phase II runs
/// allocation-free.
class DijkstraWorkspace {
 public:
  DijkstraWorkspace() = default;
  explicit DijkstraWorkspace(VertexId num_vertices);

  /// Grows the internal heap reservation to cover graphs of up to
  /// `num_vertices` vertices; never shrinks.
  void ensure(VertexId num_vertices);

  /// Computes distances from `source` into `dist_out` (size n). Only
  /// distances — the tree is not tracked, saving a third of the writes.
  void distances(const Graph& g, VertexId source, std::span<Weight> dist_out);

 private:
  struct HeapItem {
    Weight dist;
    VertexId vertex;
    [[nodiscard]] bool operator>(const HeapItem& o) const {
      return dist > o.dist;
    }
  };
  std::vector<HeapItem> heap_;
};

}  // namespace eardec::sssp
