#include "sssp/floyd_warshall.hpp"

#include <algorithm>

namespace eardec::sssp {

DistanceMatrix adjacency_matrix(const Graph& g) {
  DistanceMatrix d(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) d.at(v, v) = 0;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    const Weight w = g.weight(e);
    if (w < d.at(u, v)) {
      d.at(u, v) = w;
      d.at(v, u) = w;
    }
  }
  return d;
}

DistanceMatrix floyd_warshall(const Graph& g) {
  DistanceMatrix d = adjacency_matrix(g);
  const VertexId n = d.size();
  for (VertexId k = 0; k < n; ++k) {
    for (VertexId i = 0; i < n; ++i) {
      const Weight dik = d.at(i, k);
      if (dik == graph::kInfWeight) continue;
      const auto row_k = d.row(k);
      const auto row_i = d.row(i);
      for (VertexId j = 0; j < n; ++j) {
        const Weight cand = dik + row_k[j];
        if (cand < row_i[j]) row_i[j] = cand;
      }
    }
  }
  return d;
}

namespace {

/// Relaxes tile (ib, jb) through pivot tiles (ib, kb) and (kb, jb).
void relax_tile(DistanceMatrix& d, VertexId n, VertexId block, VertexId ib,
                VertexId jb, VertexId kb) {
  const VertexId i_end = std::min<VertexId>(ib + block, n);
  const VertexId j_end = std::min<VertexId>(jb + block, n);
  const VertexId k_end = std::min<VertexId>(kb + block, n);
  for (VertexId k = kb; k < k_end; ++k) {
    for (VertexId i = ib; i < i_end; ++i) {
      const Weight dik = d.at(i, k);
      if (dik == graph::kInfWeight) continue;
      for (VertexId j = jb; j < j_end; ++j) {
        const Weight cand = dik + d.at(k, j);
        if (cand < d.at(i, j)) d.at(i, j) = cand;
      }
    }
  }
}

}  // namespace

DistanceMatrix blocked_floyd_warshall(const Graph& g, VertexId block,
                                      hetero::ThreadPool* pool) {
  DistanceMatrix d = adjacency_matrix(g);
  const VertexId n = d.size();
  if (n == 0) return d;
  block = std::max<VertexId>(1, std::min(block, n));
  const VertexId tiles = (n + block - 1) / block;

  for (VertexId round = 0; round < tiles; ++round) {
    const VertexId kb = round * block;
    // Phase 1: pivot tile.
    relax_tile(d, n, block, kb, kb, kb);
    // Phase 2: pivot row and column tiles.
    for (VertexId t = 0; t < tiles; ++t) {
      if (t == round) continue;
      relax_tile(d, n, block, kb, t * block, kb);  // pivot row
      relax_tile(d, n, block, t * block, kb, kb);  // pivot column
    }
    // Phase 3: the remaining tiles, independent of one another.
    if (pool != nullptr) {
      pool->parallel_for(0, static_cast<std::size_t>(tiles) * tiles,
                         [&](std::size_t idx) {
                           const auto ti = static_cast<VertexId>(idx / tiles);
                           const auto tj = static_cast<VertexId>(idx % tiles);
                           if (ti == round || tj == round) return;
                           relax_tile(d, n, block, ti * block, tj * block, kb);
                         });
    } else {
      for (VertexId ti = 0; ti < tiles; ++ti) {
        if (ti == round) continue;
        for (VertexId tj = 0; tj < tiles; ++tj) {
          if (tj == round) continue;
          relax_tile(d, n, block, ti * block, tj * block, kb);
        }
      }
    }
  }
  return d;
}

}  // namespace eardec::sssp
