#include "sssp/brandes.hpp"

#include <algorithm>
#include <mutex>
#include <queue>
#include <random>

namespace eardec::sssp {
namespace {

using graph::Graph;
using graph::VertexId;
using graph::Weight;

/// One Brandes pass from `s`: accumulates pair dependencies into `delta_out`
/// (caller-provided, zeroed scratch reused across sources on one thread).
void accumulate_from(const Graph& g, VertexId s, std::vector<double>& bc_local,
                     std::vector<Weight>& dist, std::vector<double>& sigma,
                     std::vector<double>& delta,
                     std::vector<std::vector<VertexId>>& preds,
                     std::vector<VertexId>& order) {
  const VertexId n = g.num_vertices();
  std::fill(dist.begin(), dist.end(), graph::kInfWeight);
  std::fill(sigma.begin(), sigma.end(), 0.0);
  std::fill(delta.begin(), delta.end(), 0.0);
  for (auto& p : preds) p.clear();
  order.clear();

  using Item = std::pair<Weight, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[s] = 0;
  sigma[s] = 1;
  pq.emplace(0, s);
  std::vector<bool> settled(n, false);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (settled[v]) continue;
    settled[v] = true;
    order.push_back(v);
    for (const graph::HalfEdge& he : g.neighbors(v)) {
      if (he.to == v) continue;  // self-loops carry no shortest paths
      const Weight nd = d + he.weight;
      if (nd < dist[he.to] - 1e-12) {
        dist[he.to] = nd;
        sigma[he.to] = sigma[v];
        preds[he.to].assign(1, v);
        pq.emplace(nd, he.to);
      } else if (std::abs(nd - dist[he.to]) <= 1e-12 && !settled[he.to]) {
        sigma[he.to] += sigma[v];
        preds[he.to].push_back(v);
      }
    }
  }
  // Dependency accumulation in reverse settle order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const VertexId w = *it;
    for (const VertexId v : preds[w]) {
      delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
    }
    if (w != s) bc_local[w] += delta[w];
  }
}

}  // namespace

namespace {

/// Shared driver: accumulates dependencies from the given sources (all of
/// them for the exact variant, a pivot sample otherwise).
std::vector<double> run_brandes(const Graph& g,
                                const std::vector<VertexId>& sources,
                                hetero::ThreadPool* pool) {
  const VertexId n = g.num_vertices();
  std::vector<double> bc(n, 0.0);
  if (n == 0 || sources.empty()) return bc;

  std::mutex merge_mutex;
  const auto run_range = [&](std::size_t begin, std::size_t end) {
    std::vector<double> bc_local(n, 0.0);
    std::vector<Weight> dist(n);
    std::vector<double> sigma(n), delta(n);
    std::vector<std::vector<VertexId>> preds(n);
    std::vector<VertexId> order;
    order.reserve(n);
    for (std::size_t i = begin; i < end; ++i) {
      accumulate_from(g, sources[i], bc_local, dist, sigma, delta, preds,
                      order);
    }
    const std::lock_guard lock(merge_mutex);
    for (VertexId v = 0; v < n; ++v) bc[v] += bc_local[v];
  };

  if (pool == nullptr) {
    run_range(0, sources.size());
  } else {
    const std::size_t chunk =
        std::max<std::size_t>(1, sources.size() / (4 * pool->size() + 4));
    pool->parallel_for(0, (sources.size() + chunk - 1) / chunk,
                       [&](std::size_t c) {
                         const std::size_t begin = c * chunk;
                         run_range(begin,
                                   std::min(begin + chunk, sources.size()));
                       });
  }
  return bc;
}

}  // namespace

std::vector<double> betweenness_centrality(const Graph& g,
                                           hetero::ThreadPool* pool) {
  std::vector<VertexId> sources(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) sources[v] = v;
  std::vector<double> bc = run_brandes(g, sources, pool);
  // Undirected: each pair was counted from both endpoints.
  for (double& v : bc) v /= 2.0;
  return bc;
}

std::vector<double> betweenness_centrality_sampled(const Graph& g,
                                                   VertexId pivots,
                                                   std::uint64_t seed,
                                                   hetero::ThreadPool* pool) {
  const VertexId n = g.num_vertices();
  if (pivots >= n) return betweenness_centrality(g, pool);
  std::vector<VertexId> sources(n);
  for (VertexId v = 0; v < n; ++v) sources[v] = v;
  std::mt19937_64 rng(seed);
  std::shuffle(sources.begin(), sources.end(), rng);
  sources.resize(std::max<VertexId>(1, pivots));
  std::vector<double> bc = run_brandes(g, sources, pool);
  // Scale the sample up to the full source population; halve for the
  // undirected double count.
  const double scale =
      static_cast<double>(n) / (2.0 * static_cast<double>(sources.size()));
  for (double& v : bc) v *= scale;
  return bc;
}

}  // namespace eardec::sssp
