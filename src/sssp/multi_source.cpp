#include "sssp/multi_source.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace eardec::sssp {

void MultiSourceWorkspace::ensure(VertexId num_vertices, std::uint32_t lanes) {
  if (lanes > kMaxSourceLanes) {
    throw std::invalid_argument("MultiSourceWorkspace: lanes > 64");
  }
  lane_capacity_ = std::max(lane_capacity_, lanes);
  const std::size_t want =
      static_cast<std::size_t>(num_vertices) * lane_capacity_;
  if (dist_.size() < want) dist_.resize(want);
  if (pending_.size() < num_vertices) pending_.resize(num_vertices);
  frontier_.reserve(num_vertices);
  next_.reserve(num_vertices);
}

void MultiSourceWorkspace::distances(const Graph& g, VertexId src_begin,
                                     VertexId src_end, DistanceMatrix& out) {
  if (src_begin >= src_end || src_end > g.num_vertices()) {
    throw std::out_of_range("MultiSourceWorkspace: bad source range");
  }
  // Delegate to the arbitrary-source kernel; a contiguous range is just the
  // identity lane mapping. The lane list is tiny (<= 64 entries).
  std::array<VertexId, kMaxSourceLanes> sources;
  const std::uint32_t k = src_end - src_begin;
  if (k > kMaxSourceLanes) {
    throw std::invalid_argument("MultiSourceWorkspace: range wider than 64");
  }
  for (std::uint32_t lane = 0; lane < k; ++lane) {
    sources[lane] = src_begin + lane;
  }
  distances(g, std::span<const VertexId>(sources.data(), k), out);
}

void MultiSourceWorkspace::distances(const Graph& g,
                                     std::span<const VertexId> sources,
                                     DistanceMatrix& out) {
  const VertexId n = g.num_vertices();
  const auto k = static_cast<std::uint32_t>(sources.size());
  if (k == 0) return;
  for (const VertexId s : sources) {
    if (s >= n) throw std::out_of_range("MultiSourceWorkspace: bad source");
  }
  if (k > lane_capacity_ ||
      dist_.size() < static_cast<std::size_t>(n) * lane_capacity_) {
    throw std::invalid_argument(
        "MultiSourceWorkspace: ensure() capacity too small for this batch");
  }
  if (out.size() != n) {
    throw std::invalid_argument("MultiSourceWorkspace: bad output matrix");
  }

  // Lane-strided init: lane L holds source sources[L]. The block is laid
  // out with stride k (not lane_capacity_) so one frontier round touches
  // the densest possible cache lines for this batch width.
  std::fill(dist_.begin(), dist_.begin() + static_cast<std::size_t>(n) * k,
            graph::kInfWeight);
  std::fill(pending_.begin(), pending_.begin() + n, 0);
  frontier_.clear();
  next_.clear();
  for (std::uint32_t lane = 0; lane < k; ++lane) {
    const VertexId s = sources[lane];
    dist_[static_cast<std::size_t>(s) * k + lane] = 0;
    if (pending_[s] == 0) frontier_.push_back(s);
    pending_[s] |= std::uint64_t{1} << lane;
  }

  rounds_ = 0;
  while (!frontier_.empty()) {
    ++rounds_;
    for (const VertexId v : frontier_) {
      pending_[v] = 0;
      const Weight* dv = dist_.data() + static_cast<std::size_t>(v) * k;
      for (const graph::HalfEdge& he : g.neighbors(v)) {
        const Weight w = he.weight;
        Weight* dt = dist_.data() + static_cast<std::size_t>(he.to) * k;
        // Relax every lane unconditionally: relaxation is idempotent, so
        // skipping clean lanes is only an optimization — doing them all
        // keeps the loop branch-light and lets the compiler vectorize the
        // add+compare+select over the lane block.
        std::uint64_t changed = 0;
        for (std::uint32_t lane = 0; lane < k; ++lane) {
          const Weight nd = dv[lane] + w;
          if (nd < dt[lane]) {
            dt[lane] = nd;
            changed |= std::uint64_t{1} << lane;
          }
        }
        if (changed != 0) {
          if (pending_[he.to] == 0) next_.push_back(he.to);
          pending_[he.to] |= changed;
        }
      }
    }
    frontier_.swap(next_);
    next_.clear();
  }

  // Transpose the lane block into the row-major output: lane-major so the
  // writes stream sequentially through each row.
  for (std::uint32_t lane = 0; lane < k; ++lane) {
    const std::span<Weight> row = out.row(sources[lane]);
    const Weight* col = dist_.data() + lane;
    for (VertexId v = 0; v < n; ++v) {
      row[v] = col[static_cast<std::size_t>(v) * k];
    }
  }
}

}  // namespace eardec::sssp
