// Floyd–Warshall APSP, plain and cache-blocked. Included as the classical
// dense baseline the APSP literature (Buluc, Matsumoto, Katz — see the
// paper's related work) builds on; practical here for the small reduced
// graphs the ear decomposition produces.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "hetero/thread_pool.hpp"

namespace eardec::sssp {

using graph::Graph;
using graph::VertexId;
using graph::Weight;

/// Dense n x n distance matrix with flat row-major storage.
class DistanceMatrix {
 public:
  DistanceMatrix() = default;
  explicit DistanceMatrix(VertexId n)
      : n_(n), data_(static_cast<std::size_t>(n) * n, graph::kInfWeight) {}

  [[nodiscard]] VertexId size() const noexcept { return n_; }
  [[nodiscard]] Weight& at(VertexId i, VertexId j) {
    return data_[static_cast<std::size_t>(i) * n_ + j];
  }
  [[nodiscard]] Weight at(VertexId i, VertexId j) const {
    return data_[static_cast<std::size_t>(i) * n_ + j];
  }
  /// Row i as a contiguous span.
  [[nodiscard]] std::span<Weight> row(VertexId i) {
    return {data_.data() + static_cast<std::size_t>(i) * n_, n_};
  }
  [[nodiscard]] std::span<const Weight> row(VertexId i) const {
    return {data_.data() + static_cast<std::size_t>(i) * n_, n_};
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return data_.size() * sizeof(Weight);
  }

 private:
  VertexId n_ = 0;
  std::vector<Weight> data_;
};

/// Adjacency-seeded matrix: 0 diagonal, min parallel-edge weight elsewhere.
[[nodiscard]] DistanceMatrix adjacency_matrix(const Graph& g);

/// Textbook O(n^3) Floyd–Warshall.
[[nodiscard]] DistanceMatrix floyd_warshall(const Graph& g);

/// Cache-blocked Floyd–Warshall with block size `block`; rounds process the
/// pivot tile, then its row/column tiles, then the remainder (optionally in
/// parallel over tiles).
[[nodiscard]] DistanceMatrix blocked_floyd_warshall(
    const Graph& g, VertexId block = 64, hetero::ThreadPool* pool = nullptr);

}  // namespace eardec::sssp
