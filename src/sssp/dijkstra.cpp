#include "sssp/dijkstra.hpp"

#include <algorithm>
#include <stdexcept>

namespace eardec::sssp {

ShortestPathTree dijkstra(const Graph& g, VertexId source) {
  const VertexId n = g.num_vertices();
  if (source >= n) throw std::out_of_range("dijkstra: bad source");
  ShortestPathTree t;
  t.source = source;
  t.dist.assign(n, graph::kInfWeight);
  t.parent.assign(n, graph::kNullVertex);
  t.parent_edge.assign(n, graph::kNullEdge);

  struct Item {
    Weight dist;
    VertexId v;
    bool operator>(const Item& o) const { return dist > o.dist; }
  };
  std::vector<Item> heap;
  const auto push = [&heap](Weight d, VertexId v) {
    heap.push_back({d, v});
    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
  };
  t.dist[source] = 0;
  push(0, source);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const auto [d, v] = heap.back();
    heap.pop_back();
    if (d > t.dist[v]) continue;  // stale entry
    for (const graph::HalfEdge& he : g.neighbors(v)) {
      const Weight nd = d + he.weight;
      if (nd < t.dist[he.to]) {
        t.dist[he.to] = nd;
        t.parent[he.to] = v;
        t.parent_edge[he.to] = he.edge;
        push(nd, he.to);
      }
    }
  }
  return t;
}

DijkstraWorkspace::DijkstraWorkspace(VertexId num_vertices) {
  heap_.reserve(num_vertices);
}

void DijkstraWorkspace::ensure(VertexId num_vertices) {
  heap_.reserve(num_vertices);
}

void DijkstraWorkspace::distances(const Graph& g, VertexId source,
                                  std::span<Weight> dist_out) {
  const VertexId n = g.num_vertices();
  if (dist_out.size() != n) {
    throw std::invalid_argument("DijkstraWorkspace: bad output span size");
  }
  std::fill(dist_out.begin(), dist_out.end(), graph::kInfWeight);
  heap_.clear();
  const auto push = [this](Weight d, VertexId v) {
    heap_.push_back({d, v});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  };
  dist_out[source] = 0;
  push(0, source);
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const auto [d, v] = heap_.back();
    heap_.pop_back();
    if (d > dist_out[v]) continue;
    for (const graph::HalfEdge& he : g.neighbors(v)) {
      const Weight nd = d + he.weight;
      if (nd < dist_out[he.to]) {
        dist_out[he.to] = nd;
        push(nd, he.to);
      }
    }
  }
}

}  // namespace eardec::sssp
