#include "sssp/frontier_sssp.hpp"

#include <algorithm>
#include <stdexcept>

namespace eardec::sssp {
namespace {

/// Atomic fetch-min for Weight via CAS, the software analogue of CUDA's
/// atomicMin on the updating-cost array.
void atomic_min(std::atomic<Weight>& cell, Weight value) {
  Weight cur = cell.load(std::memory_order_relaxed);
  while (value < cur &&
         !cell.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

FrontierWorkspace::FrontierWorkspace(VertexId num_vertices)
    : mask_(num_vertices, 0), updating_(num_vertices) {}

void FrontierWorkspace::ensure(VertexId num_vertices) {
  if (mask_.size() < num_vertices) {
    mask_.assign(num_vertices, 0);
    // vector<atomic> cannot resize in place; rebuild at the new capacity.
    std::vector<std::atomic<Weight>> fresh(num_vertices);
    updating_.swap(fresh);
  }
}

void FrontierWorkspace::distances(const Graph& g, VertexId source,
                                  hetero::Device& device,
                                  std::span<Weight> dist_out) {
  const VertexId n = g.num_vertices();
  if (dist_out.size() != n || mask_.size() < n) {
    throw std::invalid_argument("FrontierWorkspace: size mismatch");
  }
  if (source >= n) throw std::out_of_range("frontier_sssp: bad source");

  std::fill(dist_out.begin(), dist_out.end(), graph::kInfWeight);
  std::fill_n(mask_.begin(), n, 0);
  for (VertexId v = 0; v < n; ++v) {
    updating_[v].store(graph::kInfWeight, std::memory_order_relaxed);
  }
  dist_out[source] = 0;
  updating_[source].store(0, std::memory_order_relaxed);
  mask_[source] = 1;
  active_.store(1, std::memory_order_relaxed);
  iterations_ = 0;

  while (active_.load(std::memory_order_relaxed) > 0) {
    ++iterations_;
    // K1: relax out of every masked vertex.
    device.launch(n, [&](std::size_t lane) {
      const auto v = static_cast<VertexId>(lane);
      if (!mask_[v]) return;
      mask_[v] = 0;
      const Weight dv = dist_out[v];
      for (const graph::HalfEdge& he : g.neighbors(v)) {
        atomic_min(updating_[he.to], dv + he.weight);
      }
    });
    // K2: adopt improvements and rebuild the mask.
    active_.store(0, std::memory_order_relaxed);
    device.launch(n, [&](std::size_t lane) {
      const auto v = static_cast<VertexId>(lane);
      const Weight u = updating_[v].load(std::memory_order_relaxed);
      if (u < dist_out[v]) {
        dist_out[v] = u;
        mask_[v] = 1;
        active_.fetch_add(1, std::memory_order_relaxed);
      } else {
        updating_[v].store(dist_out[v], std::memory_order_relaxed);
      }
    });
  }
}

std::vector<Weight> frontier_sssp(const Graph& g, VertexId source,
                                  hetero::Device& device) {
  std::vector<Weight> dist(g.num_vertices());
  FrontierWorkspace ws(g.num_vertices());
  ws.distances(g, source, device, dist);
  return dist;
}

}  // namespace eardec::sssp
