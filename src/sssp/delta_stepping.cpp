#include "sssp/delta_stepping.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

namespace eardec::sssp {
namespace {

using graph::Graph;
using graph::VertexId;
using graph::Weight;

/// Atomic fetch-min on a Weight cell (relaxations may race across lanes).
void atomic_min(std::atomic<Weight>& cell, Weight value) {
  Weight cur = cell.load(std::memory_order_relaxed);
  while (value < cur &&
         !cell.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

/// Frontier size below which fanning a light-edge round out costs more
/// than the relaxations themselves.
constexpr std::size_t kParallelFrontierMin = 64;

}  // namespace

void DeltaSteppingWorkspace::ensure(VertexId num_vertices) {
  if (dist_.size() < num_vertices) {
    // std::atomic is neither movable nor resizable in place: rebuild the
    // array once here so the per-call hot path never allocates it again.
    dist_ = std::vector<std::atomic<Weight>>(num_vertices);
  }
  frontier_.reserve(num_vertices);
  settled_.reserve(num_vertices);
  if (buckets_.empty()) buckets_.resize(1);
}

void DeltaSteppingWorkspace::distances(const Graph& g, VertexId source,
                                       std::span<Weight> dist_out,
                                       Weight delta, hetero::ThreadPool* pool,
                                       hetero::Device* device) {
  const VertexId n = g.num_vertices();
  if (source >= n) throw std::out_of_range("delta_stepping: bad source");
  if (dist_out.size() != n) {
    throw std::invalid_argument("DeltaSteppingWorkspace: bad output span");
  }
  if (dist_.size() < n) ensure(n);
  if (delta <= 0) {
    // Heuristic: average edge weight (clamped away from zero). Distances
    // are bounded by the total weight, so bucket indices stay <= m.
    delta = g.num_edges() > 0
                ? std::max<Weight>(1e-9, g.total_weight() / g.num_edges())
                : 1.0;
  }

  for (VertexId v = 0; v < n; ++v) {
    dist_[v].store(graph::kInfWeight, std::memory_order_relaxed);
  }
  dist_[source].store(0, std::memory_order_relaxed);

  // Buckets hold candidate vertices; stale entries are filtered on pop.
  // Every bucket is fully drained before the round advances, so the pool
  // of inner vectors (and their capacity) carries over between calls.
  for (auto& bucket : buckets_) bucket.clear();
  buckets_[0].push_back(source);
  const auto bucket_of = [delta](Weight d) {
    return static_cast<std::size_t>(d / delta);
  };
  const auto push = [this, bucket_of](VertexId v, Weight d) {
    const std::size_t b = bucket_of(d);
    if (b >= buckets_.size()) buckets_.resize(b + 1);
    buckets_[b].push_back(v);
  };

  // One request buffer per execution slot (pool) or frontier slice
  // (device): relaxation targets are collected lock-free and merged on
  // the coordinating thread after each round.
  const std::size_t slots = std::max<std::size_t>(
      1, pool != nullptr
             ? pool->max_slots()
             : (device != nullptr ? device->config().workers * 4 : 1));
  if (slice_requests_.size() < slots) slice_requests_.resize(slots);

  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    settled_.clear();
    // Light-edge phase: re-relax until the bucket stops refilling.
    while (!buckets_[b].empty()) {
      frontier_.swap(buckets_[b]);
      buckets_[b].clear();
      for (auto& requests : slice_requests_) requests.clear();
      const auto relax_light = [&](std::size_t i, std::size_t slice) {
        const VertexId v = frontier_[i];
        const Weight dv = dist_[v].load(std::memory_order_relaxed);
        if (bucket_of(dv) != b) return;  // stale or promoted
        RequestBuffer& requests = slice_requests_[slice];
        for (const graph::HalfEdge& he : g.neighbors(v)) {
          if (he.weight > delta) continue;
          const Weight nd = dv + he.weight;
          if (nd < dist_[he.to].load(std::memory_order_relaxed)) {
            atomic_min(dist_[he.to], nd);
            requests.emplace_back(he.to, nd);
          }
        }
      };
      if (pool != nullptr && frontier_.size() >= kParallelFrontierMin) {
        pool->parallel_for_slots(
            0, frontier_.size(),
            [&](std::size_t i, unsigned slot) { relax_light(i, slot); }, 16);
      } else if (device != nullptr &&
                 frontier_.size() >= kParallelFrontierMin) {
        // Bulk launch: one lane per contiguous frontier slice, so each
        // level of the kernel does real per-level work on the device.
        const std::size_t slices =
            std::min<std::size_t>(slots, frontier_.size());
        const std::size_t per_slice =
            (frontier_.size() + slices - 1) / slices;
        device->launch(slices, [&](std::size_t s) {
          const std::size_t lo = s * per_slice;
          const std::size_t hi =
              std::min(lo + per_slice, frontier_.size());
          for (std::size_t i = lo; i < hi; ++i) relax_light(i, s);
        });
      } else {
        for (std::size_t i = 0; i < frontier_.size(); ++i) relax_light(i, 0);
      }
      settled_.insert(settled_.end(), frontier_.begin(), frontier_.end());
      for (const auto& requests : slice_requests_) {
        for (const auto& [v, d] : requests) {
          // Only re-queue what still belongs in some bucket at distance d.
          if (dist_[v].load(std::memory_order_relaxed) == d) push(v, d);
        }
      }
    }
    // Heavy-edge phase: one pass from everything settled in this bucket.
    for (const VertexId v : settled_) {
      const Weight dv = dist_[v].load(std::memory_order_relaxed);
      if (bucket_of(dv) != b) continue;
      for (const graph::HalfEdge& he : g.neighbors(v)) {
        if (he.weight <= delta) continue;
        const Weight nd = dv + he.weight;
        if (nd < dist_[he.to].load(std::memory_order_relaxed)) {
          atomic_min(dist_[he.to], nd);
          push(he.to, nd);
        }
      }
    }
  }

  for (VertexId v = 0; v < n; ++v) {
    dist_out[v] = dist_[v].load(std::memory_order_relaxed);
  }
}

std::vector<Weight> delta_stepping(const Graph& g, VertexId source,
                                   Weight delta, hetero::ThreadPool* pool) {
  DeltaSteppingWorkspace ws(g.num_vertices());
  std::vector<Weight> out(g.num_vertices());
  ws.distances(g, source, out, delta, pool);
  return out;
}

}  // namespace eardec::sssp
