#include "sssp/delta_stepping.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>

namespace eardec::sssp {
namespace {

using graph::Graph;
using graph::VertexId;
using graph::Weight;

/// Atomic fetch-min on a Weight cell (relaxations may race across lanes).
void atomic_min(std::atomic<Weight>& cell, Weight value) {
  Weight cur = cell.load(std::memory_order_relaxed);
  while (value < cur &&
         !cell.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::vector<Weight> delta_stepping(const Graph& g, VertexId source,
                                   Weight delta, hetero::ThreadPool* pool) {
  const VertexId n = g.num_vertices();
  if (source >= n) throw std::out_of_range("delta_stepping: bad source");
  if (delta <= 0) {
    // Heuristic: average edge weight (clamped away from zero).
    delta = g.num_edges() > 0
                ? std::max<Weight>(1e-9, g.total_weight() / g.num_edges())
                : 1.0;
  }

  std::vector<std::atomic<Weight>> dist(n);
  for (auto& d : dist) d.store(graph::kInfWeight, std::memory_order_relaxed);
  dist[source].store(0, std::memory_order_relaxed);

  // Buckets hold candidate vertices; stale entries are filtered on pop.
  std::vector<std::vector<VertexId>> buckets(1);
  buckets[0].push_back(source);
  const auto bucket_of = [delta](Weight d) {
    return static_cast<std::size_t>(d / delta);
  };
  const auto push = [&](VertexId v, Weight d) {
    const std::size_t b = bucket_of(d);
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(v);
  };

  std::mutex requests_mutex;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    std::vector<VertexId> settled_here;
    // Light-edge phase: re-relax until the bucket stops refilling.
    while (!buckets[b].empty()) {
      std::vector<VertexId> frontier = std::move(buckets[b]);
      buckets[b].clear();
      std::vector<std::pair<VertexId, Weight>> requests;
      const auto relax_light = [&](std::size_t i) {
        const VertexId v = frontier[i];
        const Weight dv = dist[v].load(std::memory_order_relaxed);
        if (bucket_of(dv) != b) return;  // stale or promoted
        std::vector<std::pair<VertexId, Weight>> local;
        for (const graph::HalfEdge& he : g.neighbors(v)) {
          if (he.weight > delta) continue;
          const Weight nd = dv + he.weight;
          if (nd < dist[he.to].load(std::memory_order_relaxed)) {
            atomic_min(dist[he.to], nd);
            local.emplace_back(he.to, nd);
          }
        }
        if (!local.empty()) {
          const std::lock_guard lock(requests_mutex);
          requests.insert(requests.end(), local.begin(), local.end());
        }
      };
      if (pool != nullptr && frontier.size() >= 64) {
        pool->parallel_for(0, frontier.size(), relax_light, 16);
      } else {
        for (std::size_t i = 0; i < frontier.size(); ++i) relax_light(i);
      }
      settled_here.insert(settled_here.end(), frontier.begin(),
                          frontier.end());
      for (const auto& [v, d] : requests) {
        // Only re-queue what still belongs in some bucket at distance d.
        if (dist[v].load(std::memory_order_relaxed) == d) push(v, d);
      }
    }
    // Heavy-edge phase: one pass from everything settled in this bucket.
    for (const VertexId v : settled_here) {
      const Weight dv = dist[v].load(std::memory_order_relaxed);
      if (bucket_of(dv) != b) continue;
      for (const graph::HalfEdge& he : g.neighbors(v)) {
        if (he.weight <= delta) continue;
        const Weight nd = dv + he.weight;
        if (nd < dist[he.to].load(std::memory_order_relaxed)) {
          atomic_min(dist[he.to], nd);
          push(he.to, nd);
        }
      }
    }
  }

  std::vector<Weight> out(n);
  for (VertexId v = 0; v < n; ++v) {
    out[v] = dist[v].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace eardec::sssp
