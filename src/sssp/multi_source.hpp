// Multi-source batched SSSP — the Phase-II CPU bulk kernel.
//
// The paper runs one binary-heap Dijkstra per reduced source because the
// instances are independent (Section 2.1.2); independence also means k
// sources can share a single adjacency traversal. This kernel runs k
// sources ("lanes") at once over one cache-resident workspace: distances
// are stored lane-strided (dist[v * k + lane], a structure-of-arrays block
// like the bit-sliced GF(2) witness matrix of the MCB overhaul), and every
// CSR edge scan relaxes all k lanes in one branch-free pass, so the graph
// is streamed once per frontier round instead of once per source.
//
// Algorithmically this is label-correcting (Bellman–Ford with a frontier
// and per-vertex dirty-lane masks) rather than label-setting: more raw
// relaxations than Dijkstra, but each one is a vectorizable fused
// add+min over the lane block, and the frontier mask keeps rounds sparse.
// For non-negative weights every label-correcting fixpoint equals the
// Dijkstra labels bit for bit (rounded addition is monotone, min is
// exact), which the differential suite asserts across every property
// family.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "sssp/floyd_warshall.hpp"  // DistanceMatrix

namespace eardec::sssp {

using graph::Graph;
using graph::VertexId;
using graph::Weight;

/// Upper bound on sources per batch: the dirty-lane mask is one uint64.
inline constexpr std::uint32_t kMaxSourceLanes = 64;

/// Reusable lane-strided workspace for APSP-style loops: runs batches of
/// sources repeatedly without reallocating the distance block or the
/// frontier queues. One workspace may serve graphs of different sizes
/// (size it once to the largest via ensure()); the Phase-II scheduler
/// pools one per worker thread so the drain performs no per-unit
/// allocation.
class MultiSourceWorkspace {
 public:
  MultiSourceWorkspace() = default;
  MultiSourceWorkspace(VertexId num_vertices, std::uint32_t lanes) {
    ensure(num_vertices, lanes);
  }

  /// Grows the distance block to cover graphs of up to `num_vertices`
  /// vertices and batches of up to `lanes` sources; never shrinks.
  void ensure(VertexId num_vertices, std::uint32_t lanes);

  /// Computes distances from every source in [src_begin, src_end) and
  /// writes them into the matching rows of `out` (row s = distances from
  /// s). The batch width src_end - src_begin must be <= the ensured lane
  /// count (and <= kMaxSourceLanes). Results are bit-identical to running
  /// sssp::dijkstra per source.
  void distances(const Graph& g, VertexId src_begin, VertexId src_end,
                 DistanceMatrix& out);

  /// Arbitrary-source form: one lane per sources[i] (duplicates allowed),
  /// writing row sources[i] of `out`. The phase-II drain feeds contiguous
  /// source ranges, but the serving batch path recomputes rows for the
  /// scattered exit anchors of a query batch — same kernel, same
  /// bit-identical-to-Dijkstra contract, only the lane -> source mapping
  /// generalizes. sources.size() must be <= the ensured lane count.
  void distances(const Graph& g, std::span<const VertexId> sources,
                 DistanceMatrix& out);

  /// Frontier rounds used by the last run (diagnostics / bench axes).
  [[nodiscard]] std::uint32_t last_rounds() const noexcept { return rounds_; }

 private:
  std::uint32_t lane_capacity_ = 0;
  std::uint32_t rounds_ = 0;
  std::vector<Weight> dist_;            ///< n * lanes, lane-strided
  std::vector<std::uint64_t> pending_;  ///< per-vertex dirty-lane mask
  std::vector<VertexId> frontier_;
  std::vector<VertexId> next_;
};

}  // namespace eardec::sssp
