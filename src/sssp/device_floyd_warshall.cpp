#include "sssp/device_floyd_warshall.hpp"

#include <algorithm>

namespace eardec::sssp {
namespace {

/// Relaxes tile (ib, jb) through pivot round kb (same math as the host
/// blocked variant; kept local so the kernel reads like the CUDA original).
void relax_tile(DistanceMatrix& d, VertexId n, VertexId block, VertexId ib,
                VertexId jb, VertexId kb) {
  const VertexId i_end = std::min<VertexId>(ib + block, n);
  const VertexId j_end = std::min<VertexId>(jb + block, n);
  const VertexId k_end = std::min<VertexId>(kb + block, n);
  for (VertexId k = kb; k < k_end; ++k) {
    for (VertexId i = ib; i < i_end; ++i) {
      const graph::Weight dik = d.at(i, k);
      if (dik == graph::kInfWeight) continue;
      for (VertexId j = jb; j < j_end; ++j) {
        const graph::Weight cand = dik + d.at(k, j);
        if (cand < d.at(i, j)) d.at(i, j) = cand;
      }
    }
  }
}

}  // namespace

DistanceMatrix device_floyd_warshall(const Graph& g, hetero::Device& device,
                                     VertexId block) {
  DistanceMatrix d = adjacency_matrix(g);
  const VertexId n = d.size();
  if (n == 0) return d;
  block = std::max<VertexId>(1, std::min(block, n));
  const VertexId tiles = (n + block - 1) / block;

  for (VertexId round = 0; round < tiles; ++round) {
    const VertexId kb = round * block;
    // Kernel 1: the pivot tile (single lane; internally sequential like the
    // shared-memory tile of the CUDA kernel).
    device.launch(1, [&](std::size_t) { relax_tile(d, n, block, kb, kb, kb); });
    // Kernel 2: pivot row and column, one lane per dependent tile.
    device.launch(2 * (tiles - 1), [&](std::size_t lane) {
      const auto t = static_cast<VertexId>(lane / 2);
      const VertexId other = (t >= round ? t + 1 : t) * block;
      if (lane % 2 == 0) {
        relax_tile(d, n, block, kb, other, kb);  // pivot row
      } else {
        relax_tile(d, n, block, other, kb, kb);  // pivot column
      }
    });
    // Kernel 3: the remaining (tiles-1)^2 independent tiles.
    const VertexId rest = tiles - 1;
    device.launch(static_cast<std::size_t>(rest) * rest, [&](std::size_t lane) {
      auto ti = static_cast<VertexId>(lane / rest);
      auto tj = static_cast<VertexId>(lane % rest);
      if (ti >= round) ++ti;
      if (tj >= round) ++tj;
      relax_tile(d, n, block, ti * block, tj * block, kb);
    });
  }
  return d;
}

}  // namespace eardec::sssp
