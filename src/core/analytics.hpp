// Distance-based graph analytics on top of the ear-decomposition APSP
// pipeline — the "other path-based computations on large sparse graphs"
// the paper's conclusion points to. Everything here costs O(n) or O(n^2)
// oracle queries, which the reduction makes cheap to precompute.
#pragma once

#include <vector>

#include "core/distance_oracle.hpp"

namespace eardec::core {

struct DistanceAnalytics {
  /// Per vertex: max finite distance to any reachable vertex
  /// (kInfWeight only for a vertex alone in its component... never; a
  /// single vertex has eccentricity 0).
  std::vector<Weight> eccentricity;
  /// max eccentricity over the largest set of mutually reachable vertices.
  Weight diameter = 0;
  /// min eccentricity.
  Weight radius = 0;
  /// Vertices attaining the radius.
  std::vector<VertexId> centers;
  /// Closeness centrality: (reachable - 1) / sum of distances to reachable
  /// vertices; 0 for isolated vertices.
  std::vector<double> closeness;
};

/// Computes all of the above with n^2 oracle queries (each O(1)–O(log n)).
[[nodiscard]] DistanceAnalytics compute_analytics(const DistanceOracle& oracle);

}  // namespace eardec::core
