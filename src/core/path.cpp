#include "core/path.hpp"

#include <cmath>
#include <stdexcept>

namespace eardec::core {

Path reconstruct_path(const DistanceOracle& oracle, VertexId u, VertexId v) {
  const graph::Graph& g = oracle.engine().original_graph();
  Path path;
  const Weight total = oracle.distance(u, v);
  if (total == graph::kInfWeight) return path;
  path.weight = total;
  path.vertices.push_back(u);

  VertexId cur = u;
  Weight remaining = total;
  // Relative slack tolerant of double accumulation over long chains.
  const auto tight = [](Weight lhs, Weight rhs) {
    return std::abs(lhs - rhs) <= 1e-9 * (1.0 + std::abs(rhs));
  };
  while (cur != v) {
    bool advanced = false;
    for (const graph::HalfEdge& he : g.neighbors(cur)) {
      if (he.to == cur) continue;  // self-loops never lie on shortest paths
      if (!(he.weight > 0)) {
        throw std::invalid_argument(
            "reconstruct_path: requires strictly positive weights");
      }
      if (tight(he.weight + oracle.distance(he.to, v), remaining)) {
        path.edges.push_back(he.edge);
        path.vertices.push_back(he.to);
        remaining -= he.weight;
        cur = he.to;
        advanced = true;
        break;
      }
    }
    if (!advanced) {
      throw std::logic_error(
          "reconstruct_path: greedy walk stalled (inconsistent oracle)");
    }
  }
  return path;
}

}  // namespace eardec::core
