#include "core/memory_model.hpp"

#include <stdexcept>

namespace eardec::core {

MemoryUsage compute_memory_usage(
    const graph::Graph& g, const connectivity::BiconnectedComponents& bcc,
    const std::vector<graph::VertexId>& reduced_sizes) {
  if (reduced_sizes.size() != bcc.num_components) {
    throw std::invalid_argument("compute_memory_usage: size mismatch");
  }
  constexpr std::uint64_t kEntry = sizeof(graph::Weight);
  MemoryUsage mu;
  for (std::uint32_t c = 0; c < bcc.num_components; ++c) {
    const std::uint64_t ni = bcc.component_vertices(c).size();
    const std::uint64_t nr = reduced_sizes[c];
    mu.block_tables_bytes += ni * ni * kEntry;
    mu.compact_tables_bytes += nr * nr * kEntry;
  }
  const auto a = static_cast<std::uint64_t>(bcc.num_articulation_points());
  mu.ap_table_bytes = a * a * kEntry;
  const std::uint64_t n = g.num_vertices();
  mu.full_table_bytes = n * n * kEntry;
  return mu;
}

Phase01Model phase01_memory_model(std::uint64_t n, std::uint64_t m) {
  Phase01Model p;
  // offsets (n+1)*8 + adjacency 2m*16 + endpoints m*8 + weights m*8.
  p.csr_bytes = 8 * (n + 1) + 48 * m;
  // Per-term budget for the flat working arrays: DFS forest ~20n, BCC flat
  // component arrays ~8n + 12m, chains ~16n + 8m, ear decomposition
  // ~24n + 16m, reduction ~16n + 16m. Rounded up to leave headroom for
  // allocator slack without ever going super-linear.
  p.phase_bytes = 96 * n + 64 * m;
  // Binary + runtime + thread stacks + heap metadata for a cold process.
  p.runtime_bytes = 48ULL << 20;
  return p;
}

}  // namespace eardec::core
