#include "core/memory_model.hpp"

#include <stdexcept>

namespace eardec::core {

MemoryUsage compute_memory_usage(
    const graph::Graph& g, const connectivity::BiconnectedComponents& bcc,
    const std::vector<graph::VertexId>& reduced_sizes) {
  if (reduced_sizes.size() != bcc.num_components) {
    throw std::invalid_argument("compute_memory_usage: size mismatch");
  }
  constexpr std::uint64_t kEntry = sizeof(graph::Weight);
  MemoryUsage mu;
  for (std::uint32_t c = 0; c < bcc.num_components; ++c) {
    const std::uint64_t ni = bcc.component_vertices[c].size();
    const std::uint64_t nr = reduced_sizes[c];
    mu.block_tables_bytes += ni * ni * kEntry;
    mu.compact_tables_bytes += nr * nr * kEntry;
  }
  const auto a = static_cast<std::uint64_t>(bcc.num_articulation_points());
  mu.ap_table_bytes = a * a * kEntry;
  const std::uint64_t n = g.num_vertices();
  mu.full_table_bytes = n * n * kEntry;
  return mu;
}

}  // namespace eardec::core
