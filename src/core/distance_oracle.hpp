// Compact distance oracle — the memory-optimized extension of the paper's
// APSP pipeline. Instead of materializing the per-component tables A_i
// (Σ n_i^2 entries), it stores only the reduced-graph tables S^r_i
// (Σ (n_i^r)^2 entries) plus the chain bookkeeping and evaluates the
// UPDATE_DISTANCE formulas lazily at query time: a constant number of table
// lookups per same-component query, O(log) tree hops per cross-component
// query. On degree-2-rich graphs (Table 1: up to 78% removable vertices)
// this shrinks the oracle by up to (n_i / n_i^r)^2 per component.
#pragma once

#include "core/ear_apsp.hpp"

namespace eardec::core {

class DistanceOracle {
 public:
  DistanceOracle(const Graph& g, const ApspOptions& options = {})
      : engine_(g, options) {}

  /// Exact shortest-path distance between any two vertices of g.
  [[nodiscard]] Weight distance(VertexId u, VertexId v) const {
    return engine_.query(u, v);
  }

  /// Memory of this oracle (compact) vs the paper's A_i tables vs n^2.
  [[nodiscard]] const MemoryUsage& memory() const { return engine_.memory(); }

  [[nodiscard]] const PhaseTimings& timings() const {
    return engine_.timings();
  }

  [[nodiscard]] const EarApspEngine& engine() const { return engine_; }

 private:
  EarApspEngine engine_;
};

}  // namespace eardec::core
