// Ear-decomposition APSP — the paper's primary contribution (Section 2).
//
// Pipeline (general graphs, Section 2.2):
//   Phase 0  split G into biconnected components; build the block-cut tree.
//   Phase I  per component: contract degree-two chains -> reduced graph G^r_i
//            (paper: "Reduce(G)", executed on the device).
//   Phase II per component: all-pairs shortest paths on G^r_i, one SSSP per
//            reduced vertex, scheduled heterogeneously through the work
//            queue (CPU threads run Dijkstra; the device runs the frontier
//            kernel).
//   Phase III Stage 1: extend S^r_i to the full per-component table A_i with
//            the closed-form left/right formulas (UPDATE_DISTANCE).
//            Stage 2: articulation-point table A over the block-cut tree;
//            cross-component queries route d(n1,a1) + A[a1][a2] + d(a2,n2).
//
// Two query products are offered:
//   * EarApsp          — paper-faithful: materializes every A_i (memory
//                        O(a^2 + Σ n_i^2), Table 1's "Our's Memory").
//   * DistanceOracle   — compact extension (distance_oracle.hpp): stores only
//                        the reduced tables and evaluates the left/right
//                        formulas per query (memory O(a^2 + Σ (n^r_i)^2)).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "connectivity/bcc.hpp"
#include "connectivity/block_cut_tree.hpp"
#include "connectivity/tree_lca.hpp"
#include "core/memory_model.hpp"
#include "graph/graph.hpp"
#include "hetero/device.hpp"
#include "hetero/scheduler.hpp"
#include "reduce/reduced_graph.hpp"
#include "sssp/floyd_warshall.hpp"

namespace eardec::core {

using graph::Graph;
using graph::VertexId;
using graph::Weight;
using sssp::DistanceMatrix;

/// Which resources execute phases II/III.
enum class ExecutionMode {
  Sequential,     ///< one thread, no device
  Multicore,      ///< CPU thread pool only
  DeviceOnly,     ///< frontier kernels on the software device only
  Heterogeneous,  ///< work queue drained by CPU threads + device (paper mode)
};

/// Which SSSP kernel the phase-II CPU workers run per work unit.
enum class CpuSsspKernel {
  /// Batched multi-source for wide units on large reduced components,
  /// per-source Dijkstra otherwise (small/irregular components where the
  /// lane block cannot amortize the traversal).
  Auto,
  Dijkstra,     ///< per-source binary heap (the paper's baseline)
  MultiSource,  ///< k-lane batched label-correcting kernel
};

/// Which bulk kernel the phase-II device driver runs.
enum class DeviceSsspKernel {
  /// Bucketed delta-stepping whose light-edge rounds launch frontier
  /// slices as bulk device work — real per-level parallelism.
  DeltaStepping,
  Frontier,  ///< Harish–Narayanan level-synchronous kernel
};

struct ApspOptions {
  ExecutionMode mode = ExecutionMode::Heterogeneous;
  unsigned cpu_threads = 4;
  hetero::DeviceConfig device{};
  /// When false, phase I keeps every vertex (no chain contraction): the
  /// pipeline degenerates to the BCC-only decomposition of Banerjee et
  /// al. [4]. Used by that baseline and the w/o-ear ablation.
  bool use_ear_reduction = true;
  /// Sources per work unit in phase II (units are sorted by component size).
  std::uint32_t sources_per_unit = 16;
  std::size_t cpu_batch = 1;
  std::size_t device_batch = 4;
  /// Phase-II kernel selection. Every kernel produces bit-identical
  /// distances (see docs/sssp_perf.md); these pick throughput per shape.
  CpuSsspKernel cpu_kernel = CpuSsspKernel::Auto;
  DeviceSsspKernel device_kernel = DeviceSsspKernel::DeltaStepping;
};

/// Wall-clock seconds per phase, for the benches.
struct PhaseTimings {
  double decompose = 0;    ///< BCC + block-cut tree
  double reduce = 0;       ///< Phase I
  double process = 0;      ///< Phase II
  double postprocess = 0;  ///< Phase III stage 1 (only for EarApsp)
  double ap_table = 0;     ///< Phase III stage 2
  [[nodiscard]] double total() const {
    return decompose + reduce + process + postprocess + ap_table;
  }
};

/// How one point-to-point query routes through the decomposition, computed
/// without evaluating any distance. The serving layer (src/serve) uses it
/// to classify queries into evaluation paths and to group the within-block
/// legs by block before dispatching them through the hetero scheduler.
struct QueryRoute {
  enum class Kind : std::uint8_t {
    Trivial,       ///< u == v: distance 0, nothing to evaluate
    Disconnected,  ///< different connected components: +infinity
    SameBlock,     ///< one within-block evaluation (leg_u)
    CrossBlock,    ///< leg_u + one AP-table hop + leg_v
  };
  /// One within-block evaluation d_block(block; local_from, local_to).
  /// Absent legs contribute exactly 0 (the endpoint *is* the articulation
  /// point it would route through).
  struct Leg {
    bool present = false;
    std::uint32_t block = 0;
    VertexId local_from = 0;
    VertexId local_to = 0;
  };
  Kind kind = Kind::Trivial;
  Leg leg_u;  ///< SameBlock: the whole query; CrossBlock: u -> first AP
  Leg leg_v;  ///< CrossBlock only: v -> last AP
  VertexId ap_u = 0;  ///< CrossBlock: first AP on the tree path (global id)
  VertexId ap_v = 0;  ///< CrossBlock: last AP on the tree path (global id)
};

/// The closed-form inputs of one within-block distance: the two endpoints'
/// reduced-graph exits plus the optional same-chain direct candidate.
/// Lets an external evaluator (the serving batch path) compute
/// block_distance from reduced-source rows it obtained elsewhere — e.g. a
/// fresh SSSP recomputation on the reduced graph — bit-identically to the
/// engine, because evaluate() preserves the engine's candidate shapes
/// ((d_exit + S) + d_entry, exact min; see block_distance).
struct BlockQueryPlan {
  std::array<std::pair<VertexId, Weight>, 2> exits_u{};  ///< (reduced id, d)
  std::array<std::pair<VertexId, Weight>, 2> exits_v{};
  std::uint32_t count_u = 0;
  std::uint32_t count_v = 0;
  /// |prefix_u - prefix_v| when both endpoints share a chain (0 when the
  /// endpoints coincide), +infinity otherwise.
  Weight chain_direct = graph::kInfWeight;

  /// Evaluates the plan; `row(r)` must yield the distances-from-r row of
  /// the block's reduced graph (span- or pointer-like, indexed by reduced
  /// vertex id) as produced by any of the bit-identical SSSP kernels.
  template <typename RowFn>
  [[nodiscard]] Weight evaluate(const RowFn& row) const {
    Weight best = graph::kInfWeight;
    for (std::uint32_t i = 0; i < count_u; ++i) {
      const auto [ru, du] = exits_u[i];
      const auto r = row(ru);
      for (std::uint32_t j = 0; j < count_v; ++j) {
        best = std::min(best, du + r[exits_v[j].first] + exits_v[j].second);
      }
    }
    return std::min(best, chain_direct);
  }
};

/// Shared engine: everything up to and including the reduced-graph APSP
/// tables and the articulation-point table. Both query products build on it.
class EarApspEngine {
 public:
  EarApspEngine(const Graph& g, const ApspOptions& options);
  ~EarApspEngine();
  EarApspEngine(EarApspEngine&&) noexcept;
  EarApspEngine& operator=(EarApspEngine&&) noexcept;

  [[nodiscard]] const Graph& original_graph() const;
  [[nodiscard]] std::uint32_t num_components() const;
  [[nodiscard]] const connectivity::BiconnectedComponents& bcc() const;
  [[nodiscard]] const connectivity::BlockCutTree& block_cut_tree() const;
  [[nodiscard]] const reduce::ReducedGraph& reduced(std::uint32_t comp) const;
  /// The component extracted as a standalone graph (local ids).
  [[nodiscard]] const connectivity::SubgraphView& component(
      std::uint32_t comp) const;
  /// S^r table of component `comp` (indexed by reduced-local vertex ids).
  [[nodiscard]] const DistanceMatrix& reduced_table(std::uint32_t comp) const;

  /// Distance between two vertices *inside* component `comp`, given by
  /// component-local ids, evaluated through the reduced table and the
  /// left/right chain formulas (no A_i materialization).
  [[nodiscard]] Weight block_distance(std::uint32_t comp, VertexId local_u,
                                      VertexId local_v) const;

  /// Distance between two articulation points (global vertex ids).
  [[nodiscard]] Weight ap_distance(VertexId ap_u, VertexId ap_v) const;

  /// Full compact query over the original graph: same-component pairs via
  /// block_distance, cross-component pairs via the block-cut tree route.
  [[nodiscard]] Weight query(VertexId u, VertexId v) const;

  /// Classifies the (u, v) query — same routing decisions as query(), but
  /// no distance evaluation. Throws std::out_of_range like query(). The
  /// route's legs compose as leg_u + ap_distance(ap_u, ap_v) + leg_v in
  /// exactly that association (absent legs are literal 0), matching
  /// query() bit for bit.
  [[nodiscard]] QueryRoute route(VertexId u, VertexId v) const;

  /// The closed-form inputs of block_distance(comp, lu, lv), for external
  /// evaluation against reduced-source rows (BlockQueryPlan::evaluate).
  [[nodiscard]] BlockQueryPlan block_query_plan(std::uint32_t comp,
                                                VertexId local_u,
                                                VertexId local_v) const;

  /// Component-local id of global vertex `u` inside block `comp`; throws
  /// std::out_of_range when u is not a vertex of that block.
  [[nodiscard]] VertexId component_local(std::uint32_t comp, VertexId u) const;

  /// Distances from u to every vertex, assembled from the per-component
  /// tables by one block-cut-tree traversal: O(Σ n_i + a) — an SSSP
  /// replacement that never touches the edge set again.
  [[nodiscard]] std::vector<Weight> distances_from(VertexId u) const;

  [[nodiscard]] const PhaseTimings& timings() const;
  [[nodiscard]] const MemoryUsage& memory() const;
  /// Aggregate SSSP statistics of phase II (for MTEPS-style reporting).
  [[nodiscard]] std::uint64_t sssp_runs() const;
  [[nodiscard]] hetero::SchedulerStats scheduler_stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  friend class EarApsp;
  friend DistanceMatrix ear_apsp_matrix(const Graph& g,
                                        const ApspOptions& options);
};

/// Paper-faithful product: fully materialized per-component tables A_i.
class EarApsp {
 public:
  EarApsp(const Graph& g, const ApspOptions& options);

  /// O(1) same-component lookups; O(log) cross-component (tree path).
  [[nodiscard]] Weight distance(VertexId u, VertexId v) const;

  /// The materialized table of one component (component-local ids).
  [[nodiscard]] const DistanceMatrix& block_table(std::uint32_t comp) const {
    return block_tables_[comp];
  }

  [[nodiscard]] const EarApspEngine& engine() const { return engine_; }
  [[nodiscard]] const PhaseTimings& timings() const {
    return timings_;
  }

 private:
  EarApspEngine engine_;
  std::vector<DistanceMatrix> block_tables_;
  PhaseTimings timings_;
};

/// Convenience for Algorithm 1 on a biconnected graph: the full n x n
/// distance matrix of g computed through the three-phase pipeline.
[[nodiscard]] DistanceMatrix ear_apsp_matrix(const Graph& g,
                                             const ApspOptions& options);

}  // namespace eardec::core
