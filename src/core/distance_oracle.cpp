// DistanceOracle is header-only over EarApspEngine; this translation unit
// exists to anchor the class's vtable-free ODR usage and keep the build
// layout one-cpp-per-header.
#include "core/distance_oracle.hpp"
