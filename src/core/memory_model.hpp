// Memory accounting for the APSP result storage — the paper's Table 1
// comparison: O(a^2 + Σ n_i^2) for the block-decomposed representation vs
// O(n^2) for the monolithic all-pairs table.
#pragma once

#include <cstdint>

#include "connectivity/bcc.hpp"
#include "graph/graph.hpp"

namespace eardec::core {

struct MemoryUsage {
  /// Bytes for the per-component tables: Σ n_i^2 entries.
  std::uint64_t block_tables_bytes = 0;
  /// Bytes for the articulation-point table: a^2 entries.
  std::uint64_t ap_table_bytes = 0;
  /// Bytes for the compact (reduced-graph) variant: Σ (n_i^r)^2 entries
  /// plus per-chain bookkeeping.
  std::uint64_t compact_tables_bytes = 0;
  /// Bytes a monolithic n x n table would need.
  std::uint64_t full_table_bytes = 0;

  /// The paper's "Our's Memory" column: block tables + AP table.
  [[nodiscard]] std::uint64_t ours_bytes() const {
    return block_tables_bytes + ap_table_bytes;
  }
  [[nodiscard]] double ours_mb() const {
    return static_cast<double>(ours_bytes()) / (1024.0 * 1024.0);
  }
  [[nodiscard]] double full_mb() const {
    return static_cast<double>(full_table_bytes) / (1024.0 * 1024.0);
  }
  [[nodiscard]] double compact_mb() const {
    return static_cast<double>(compact_tables_bytes + ap_table_bytes) /
           (1024.0 * 1024.0);
  }
};

/// Computes the model from a decomposition. `reduced_sizes[i]` is the
/// number of vertices of component i's reduced graph (pass the component
/// sizes themselves to model a reduction-free method).
[[nodiscard]] MemoryUsage compute_memory_usage(
    const graph::Graph& g, const connectivity::BiconnectedComponents& bcc,
    const std::vector<graph::VertexId>& reduced_sizes);

}  // namespace eardec::core
