// Memory accounting for the APSP result storage — the paper's Table 1
// comparison: O(a^2 + Σ n_i^2) for the block-decomposed representation vs
// O(n^2) for the monolithic all-pairs table.
#pragma once

#include <cstdint>

#include "connectivity/bcc.hpp"
#include "graph/graph.hpp"

namespace eardec::core {

struct MemoryUsage {
  /// Bytes for the per-component tables: Σ n_i^2 entries.
  std::uint64_t block_tables_bytes = 0;
  /// Bytes for the articulation-point table: a^2 entries.
  std::uint64_t ap_table_bytes = 0;
  /// Bytes for the compact (reduced-graph) variant: Σ (n_i^r)^2 entries
  /// plus per-chain bookkeeping.
  std::uint64_t compact_tables_bytes = 0;
  /// Bytes a monolithic n x n table would need.
  std::uint64_t full_table_bytes = 0;

  /// The paper's "Our's Memory" column: block tables + AP table.
  [[nodiscard]] std::uint64_t ours_bytes() const {
    return block_tables_bytes + ap_table_bytes;
  }
  [[nodiscard]] double ours_mb() const {
    return static_cast<double>(ours_bytes()) / (1024.0 * 1024.0);
  }
  [[nodiscard]] double full_mb() const {
    return static_cast<double>(full_table_bytes) / (1024.0 * 1024.0);
  }
  [[nodiscard]] double compact_mb() const {
    return static_cast<double>(compact_tables_bytes + ap_table_bytes) /
           (1024.0 * 1024.0);
  }
};

/// Computes the model from a decomposition. `reduced_sizes[i]` is the
/// number of vertices of component i's reduced graph (pass the component
/// sizes themselves to model a reduction-free method).
[[nodiscard]] MemoryUsage compute_memory_usage(
    const graph::Graph& g, const connectivity::BiconnectedComponents& bcc,
    const std::vector<graph::VertexId>& reduced_sizes);

/// Linear memory bound for the *ingestion* path — mmap load + Phase 0
/// (DFS/BCC) + Phase I (chains, ear decomposition, reduction) — as opposed
/// to the quadratic APSP table model above. The scaling bench and the CI
/// RSS gate compare sampled peak RSS against total_bytes(); constants are
/// calibrated in docs/scaling.md and deliberately generous per-term, never
/// super-linear.
struct Phase01Model {
  std::uint64_t csr_bytes = 0;     ///< the four CSR arrays (mmap'd or owned)
  std::uint64_t phase_bytes = 0;   ///< flat Phase 0–I working arrays, c1·n + c2·m
  std::uint64_t runtime_bytes = 0; ///< fixed process allowance (code, stacks, malloc slack)

  [[nodiscard]] std::uint64_t total_bytes() const {
    return csr_bytes + phase_bytes + runtime_bytes;
  }
  [[nodiscard]] double total_mb() const {
    return static_cast<double>(total_bytes()) / (1024.0 * 1024.0);
  }
  [[nodiscard]] double csr_mb() const {
    return static_cast<double>(csr_bytes) / (1024.0 * 1024.0);
  }
};

/// The Phase 0–I bound for a graph with n vertices and m edges.
[[nodiscard]] Phase01Model phase01_memory_model(std::uint64_t n,
                                                std::uint64_t m);

}  // namespace eardec::core
