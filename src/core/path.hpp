// Shortest-path reconstruction on top of a distance oracle. The oracle
// stores distances, not parent trees (that is what keeps its memory at
// O(a² + Σ (nᵣᵢ)²)); an explicit route is recovered greedily: from u, an
// edge (u, x) lies on a shortest u→v path iff w(u,x) + d(x,v) == d(u,v).
// With strictly positive weights the walk advances every step, so the cost
// is O(Σ deg(vertex on path)) oracle queries.
#pragma once

#include <vector>

#include "core/distance_oracle.hpp"

namespace eardec::core {

struct Path {
  std::vector<graph::EdgeId> edges;    ///< in travel order u -> v
  std::vector<VertexId> vertices;      ///< edges.size() + 1 entries
  Weight weight = 0;                   ///< == oracle.distance(u, v)
  [[nodiscard]] bool found() const { return !vertices.empty(); }
};

/// Reconstructs one shortest u→v path. Returns an empty Path when v is
/// unreachable. Requires strictly positive edge weights (zero-weight edges
/// could cycle the greedy walk); throws std::invalid_argument otherwise.
[[nodiscard]] Path reconstruct_path(const DistanceOracle& oracle, VertexId u,
                                    VertexId v);

}  // namespace eardec::core
