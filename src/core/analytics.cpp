#include "core/analytics.hpp"

#include <algorithm>

namespace eardec::core {

DistanceAnalytics compute_analytics(const DistanceOracle& oracle) {
  const graph::Graph& g = oracle.engine().original_graph();
  const VertexId n = g.num_vertices();
  DistanceAnalytics a;
  a.eccentricity.assign(n, 0);
  a.closeness.assign(n, 0.0);
  if (n == 0) return a;

  a.radius = graph::kInfWeight;
  for (VertexId u = 0; u < n; ++u) {
    Weight ecc = 0;
    Weight sum = 0;
    std::uint32_t reachable = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (v == u) continue;
      const Weight d = oracle.distance(u, v);
      if (d == graph::kInfWeight) continue;
      ecc = std::max(ecc, d);
      sum += d;
      ++reachable;
    }
    a.eccentricity[u] = ecc;
    a.closeness[u] = sum > 0 ? static_cast<double>(reachable) / sum : 0.0;
    a.diameter = std::max(a.diameter, ecc);
    a.radius = std::min(a.radius, ecc);
  }
  for (VertexId u = 0; u < n; ++u) {
    if (a.eccentricity[u] == a.radius) a.centers.push_back(u);
  }
  return a;
}

}  // namespace eardec::core
