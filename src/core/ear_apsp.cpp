#include "core/ear_apsp.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "connectivity/dfs.hpp"
#include "obs/phase.hpp"
#include "obs/pmu.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/frontier_sssp.hpp"
#include "sssp/multi_source.hpp"

namespace eardec::core {
namespace {

/// CpuSsspKernel::Auto thresholds: the lane block only amortizes the CSR
/// traversal when the unit is wide enough and the component large enough
/// for the extra label-correcting relaxations to be repaid; below these
/// the binary heap wins and Auto falls back to Dijkstra.
constexpr VertexId kAutoMultiSourceMinLanes = 4;
constexpr VertexId kAutoMultiSourceMinVertices = 24;

/// (anchor reduced-id, distance-to-anchor) pairs through which a component-
/// local vertex reaches the reduced graph: itself at 0 if kept, otherwise
/// its chain's left/right anchors.
struct Exits {
  std::array<std::pair<VertexId, Weight>, 2> e;
  std::size_t count;
};

Exits exits_of(const reduce::ReducedGraph& r, VertexId local) {
  const VertexId ru = r.to_reduced(local);
  if (ru != graph::kNullVertex) {
    return {{{{ru, 0.0}, {0, 0.0}}}, 1};
  }
  const reduce::ChainSet& cs = r.chains();
  return {{{{r.to_reduced(cs.left(local)), cs.dist_left(local)},
            {r.to_reduced(cs.right(local)), cs.dist_right(local)}}},
          2};
}

}  // namespace

struct EarApspEngine::Impl {
  Graph g;
  ApspOptions opts;
  connectivity::BiconnectedComponents bcc;
  connectivity::ConnectedComponents cc;
  std::optional<connectivity::BlockCutTree> bct;
  std::optional<connectivity::TreeLca> lca;
  std::vector<connectivity::SubgraphView> views;
  std::vector<reduce::ReducedGraph> reduced;
  std::vector<DistanceMatrix> rtables;
  std::vector<std::unordered_map<VertexId, VertexId>> local_of;
  /// Per component, per component-local vertex: its reduced-graph exits,
  /// precomputed once in phase I so block_distance never re-derives chain
  /// anchors in its inner loop.
  std::vector<std::vector<Exits>> exits;
  std::vector<Weight> ap_table;  // a x a, row-major by cut index
  std::optional<hetero::Device> device;
  /// One pool shared by every parallel phase (0, I, III) and reused by the
  /// EarApsp block-table materialization.
  std::optional<hetero::ThreadPool> pool;
  PhaseTimings timings;
  MemoryUsage memory;
  std::uint64_t sssp_runs = 0;
  hetero::SchedulerStats sched_stats{};

  explicit Impl(const Graph& graph, const ApspOptions& options)
      : g(graph), opts(options) {
    if (opts.mode == ExecutionMode::DeviceOnly ||
        opts.mode == ExecutionMode::Heterogeneous) {
      device.emplace(opts.device);
    }
    if (opts.mode == ExecutionMode::Multicore ||
        opts.mode == ExecutionMode::Heterogeneous) {
      pool.emplace(opts.cpu_threads);
    }
    decompose();
    reduce_components();
    process();
    build_ap_table();
    finalize_memory();
  }

  /// Runs fn(i) for i in [0, count) on whatever parallel resource the mode
  /// provides: the shared pool, the device grid, or the calling thread.
  void parallel_over(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (pool && count > 1) {
      pool->parallel_for(0, count, fn);
    } else if (device && opts.mode == ExecutionMode::DeviceOnly && count > 1) {
      device->launch(count, fn);
    } else {
      for (std::size_t i = 0; i < count; ++i) fn(i);
    }
  }

  // Phase 0: biconnected components, block-cut tree, LCA tables. The
  // component extraction and local-id maps are independent per component
  // and run across the pool. Timing (here and in every phase below) runs
  // through obs::ScopedPhase: one clock feeds the PhaseTimings field, the
  // "apsp.phase.*" registry gauge, and the trace span.
  void decompose() {
    obs::ScopedPhase phase(timings.decompose, "apsp.decompose",
                           "apsp.phase.decompose_s");
    bcc = connectivity::biconnected_components(g);
    cc = connectivity::connected_components(g);
    bct.emplace(g, bcc);
    std::vector<std::vector<std::uint32_t>> tree_adj(bct->num_nodes());
    for (std::uint32_t node = 0; node < bct->num_nodes(); ++node) {
      tree_adj[node] = bct->neighbors(node);
    }
    lca.emplace(tree_adj);
    views.resize(bcc.num_components);
    local_of.resize(bcc.num_components);
    parallel_over(bcc.num_components, [&](std::size_t c) {
      views[c] = connectivity::extract_component(
          g, bcc, static_cast<std::uint32_t>(c));
      auto& map = local_of[c];
      map.reserve(views[c].to_parent.size() * 2);
      for (VertexId l = 0; l < views[c].to_parent.size(); ++l) {
        map.emplace(views[c].to_parent[l], l);
      }
    });
  }

  // Phase I: per-component chain contraction, parallel across components.
  // Vertices whose *global* degree differs from their in-component degree
  // (articulation points, self-loop endpoints) are pinned so
  // cross-component routing stays exact. Also materializes the per-vertex
  // exit cache that phase III and every query read.
  void reduce_components() {
    obs::ScopedPhase phase(timings.reduce, "apsp.reduce",
                           "apsp.phase.reduce_s");
    std::vector<std::optional<reduce::ReducedGraph>> built(views.size());
    exits.resize(views.size());
    parallel_over(views.size(), [&](std::size_t c) {
      const auto& view = views[c];
      std::vector<bool> keep(view.graph.num_vertices(),
                             !opts.use_ear_reduction);
      if (opts.use_ear_reduction) {
        for (VertexId l = 0; l < view.graph.num_vertices(); ++l) {
          keep[l] = g.degree(view.to_parent[l]) != view.graph.degree(l);
        }
      }
      built[c].emplace(view.graph, reduce::ReduceMode::ForApsp, &keep);
      exits[c].resize(view.graph.num_vertices());
      for (VertexId l = 0; l < view.graph.num_vertices(); ++l) {
        exits[c][l] = exits_of(*built[c], l);
      }
    });
    reduced.reserve(built.size());
    for (auto& r : built) reduced.push_back(std::move(*r));
  }

  // Phase II: APSP over every reduced graph. Work units are blocks of
  // sources of one component, sized by component for the sorted queue.
  // Every worker thread owns one pre-sized workspace (largest reduced
  // component), so the drain performs no per-unit allocation.
  void process() {
    obs::ScopedPhase phase(timings.process, "apsp.process",
                           "apsp.phase.process_s");
    rtables.resize(reduced.size());
    struct Unit {
      std::uint32_t comp;
      VertexId src_begin, src_end;
    };
    std::vector<Unit> units;
    std::vector<hetero::WorkUnit> queue_units;
    VertexId max_nr = 0;
    for (std::uint32_t c = 0; c < reduced.size(); ++c) {
      const VertexId nr = reduced[c].graph().num_vertices();
      max_nr = std::max(max_nr, nr);
      rtables[c] = DistanceMatrix(nr);
      sssp_runs += nr;
      for (VertexId s = 0; s < nr; s += opts.sources_per_unit) {
        const auto id = static_cast<std::uint32_t>(units.size());
        units.push_back(
            {c, s, std::min<VertexId>(s + opts.sources_per_unit, nr)});
        queue_units.push_back({id, views[c].graph.num_vertices()});
      }
    }

    const unsigned cpu_workers =
        pool ? std::max(1u, opts.cpu_threads) : 1;
    std::vector<sssp::DijkstraWorkspace> cpu_ws(cpu_workers);
    for (auto& ws : cpu_ws) ws.ensure(max_nr);
    // The batched kernel processes at most kMaxSourceLanes sources per
    // sweep; wider units are split into lane-block passes inside cpu_fn.
    const std::uint32_t ms_lanes =
        std::min<std::uint32_t>(std::max<std::uint32_t>(
                                    opts.sources_per_unit, 1),
                                sssp::kMaxSourceLanes);
    std::vector<sssp::MultiSourceWorkspace> ms_ws;
    if (opts.cpu_kernel != CpuSsspKernel::Dijkstra) {
      ms_ws.resize(cpu_workers);
      for (auto& ws : ms_ws) ws.ensure(max_nr, ms_lanes);
    }
    sssp::FrontierWorkspace device_ws;  // single device driver thread
    sssp::DeltaSteppingWorkspace device_delta_ws;
    if (device) {
      if (opts.device_kernel == DeviceSsspKernel::Frontier) {
        device_ws.ensure(max_nr);
      } else {
        device_delta_ws.ensure(max_nr);
      }
    }

    const auto use_multi_source = [this](VertexId width, VertexId nr) {
      switch (opts.cpu_kernel) {
        case CpuSsspKernel::Dijkstra:
          return false;
        case CpuSsspKernel::MultiSource:
          return true;
        case CpuSsspKernel::Auto:
          return width >= kAutoMultiSourceMinLanes &&
                 nr >= kAutoMultiSourceMinVertices;
      }
      return false;
    };

    const auto cpu_fn = [&](const hetero::WorkUnit& wu, unsigned worker) {
      EARDEC_TRACE_SCOPE_PMU("apsp.sssp_block", "comp", units[wu.id].comp);
      const Unit& u = units[wu.id];
      const Graph& rg = reduced[u.comp].graph();
      if (use_multi_source(u.src_end - u.src_begin, rg.num_vertices())) {
        sssp::MultiSourceWorkspace& ws = ms_ws[worker];
        for (VertexId s = u.src_begin; s < u.src_end; s += ms_lanes) {
          ws.distances(rg, s, std::min<VertexId>(s + ms_lanes, u.src_end),
                       rtables[u.comp]);
        }
      } else {
        sssp::DijkstraWorkspace& ws = cpu_ws[worker];
        for (VertexId s = u.src_begin; s < u.src_end; ++s) {
          ws.distances(rg, s, rtables[u.comp].row(s));
        }
      }
    };
    const auto device_fn = [&](const hetero::WorkUnit& wu, unsigned) {
      EARDEC_TRACE_SCOPE_PMU("apsp.sssp_block", "comp", units[wu.id].comp);
      const Unit& u = units[wu.id];
      const Graph& rg = reduced[u.comp].graph();
      for (VertexId s = u.src_begin; s < u.src_end; ++s) {
        if (opts.device_kernel == DeviceSsspKernel::DeltaStepping) {
          device_delta_ws.distances(rg, s, rtables[u.comp].row(s), 0,
                                    nullptr, &*device);
        } else {
          device_ws.distances(rg, s, *device, rtables[u.comp].row(s));
        }
      }
    };

    switch (opts.mode) {
      case ExecutionMode::Sequential: {
        for (const auto& qu : queue_units) cpu_fn(qu, 0);
        sched_stats.cpu_units += queue_units.size();
        break;
      }
      case ExecutionMode::Multicore: {
        hetero::WorkQueue queue(std::move(queue_units));
        sched_stats = hetero::run_cpu_only(queue, opts.cpu_threads, cpu_fn,
                                           opts.cpu_batch);
        break;
      }
      case ExecutionMode::DeviceOnly: {
        hetero::WorkQueue queue(std::move(queue_units));
        while (true) {
          const auto batch = queue.take_heavy(opts.device_batch);
          if (batch.empty()) break;
          for (const auto& wu : batch) device_fn(wu, 0);
          sched_stats.device_units += batch.size();
        }
        break;
      }
      case ExecutionMode::Heterogeneous: {
        hetero::WorkQueue queue(std::move(queue_units));
        sched_stats = hetero::run_heterogeneous(
            queue,
            {.cpu_threads = opts.cpu_threads,
             .cpu_batch = opts.cpu_batch,
             .device_batch = opts.device_batch},
            cpu_fn, device_fn);
        break;
      }
    }
  }

  [[nodiscard]] Weight block_distance(std::uint32_t comp, VertexId lu,
                                      VertexId lv) const {
    if (lu == lv) return 0;
    const reduce::ReducedGraph& r = reduced[comp];
    const DistanceMatrix& s = rtables[comp];
    const Exits& eu = exits[comp][lu];
    const Exits& ev = exits[comp][lv];
    Weight best = graph::kInfWeight;
    for (std::size_t i = 0; i < eu.count; ++i) {
      for (std::size_t j = 0; j < ev.count; ++j) {
        const Weight cand = eu.e[i].second + s.at(eu.e[i].first, ev.e[j].first) +
                            ev.e[j].second;
        best = std::min(best, cand);
      }
    }
    // Same-chain pairs also have the direct in-chain path.
    const reduce::ChainSet& cs = r.chains();
    if (cs.chain_of[lu] != reduce::kNoChain &&
        cs.chain_of[lu] == cs.chain_of[lv]) {
      const reduce::Chain& chain = cs.chains[cs.chain_of[lu]];
      const Weight direct = std::abs(chain.prefix[cs.position[lu]] -
                                     chain.prefix[cs.position[lv]]);
      best = std::min(best, direct);
    }
    return best;
  }

  // Row form of block_distance: d(lu, lv) for every lv of the component in
  // one sweep. Instead of evaluating the 2x2 anchor formula per pair, the
  // row's exit distances are folded into a per-reduced-vertex array once
  // (anchor_row[rv] = min_i d(lu, exit_i) + S(exit_i, rv)), then every
  // chain contributes its interior by walking the prefix array linearly —
  // a branch-free two-term min per vertex — and lu's own chain adds the
  // direct in-chain candidate with one more prefix walk. Cache-linear and
  // vectorizable where the per-pair form was a gather per cell.
  //
  // Bit-identical to per-pair block_distance: the sweep preserves each
  // candidate's addition order ((d_exit + S) + d_entry), min is exact, and
  // rounded addition is monotone, so folding the min early cannot change
  // the final min.
  void block_distance_row(std::uint32_t comp, VertexId lu,
                          std::span<Weight> out,
                          std::vector<Weight>& anchor_row) const {
    const reduce::ReducedGraph& r = reduced[comp];
    const DistanceMatrix& s = rtables[comp];
    const VertexId nr = r.graph().num_vertices();
    const Exits& eu = exits[comp][lu];

    anchor_row.resize(nr);
    const std::span<const Weight> s0 = s.row(eu.e[0].first);
    const Weight d0 = eu.e[0].second;
    for (VertexId rv = 0; rv < nr; ++rv) anchor_row[rv] = d0 + s0[rv];
    if (eu.count == 2) {
      const std::span<const Weight> s1 = s.row(eu.e[1].first);
      const Weight d1 = eu.e[1].second;
      for (VertexId rv = 0; rv < nr; ++rv) {
        anchor_row[rv] = std::min(anchor_row[rv], d1 + s1[rv]);
      }
    }

    // Kept vertices read their reduced entry directly; chain interiors
    // enter through either anchor.
    for (VertexId rv = 0; rv < nr; ++rv) {
      out[r.to_original(rv)] = anchor_row[rv];
    }
    const reduce::ChainSet& cs = r.chains();
    for (const reduce::Chain& chain : cs.chains) {
      const Weight dl = anchor_row[r.to_reduced(chain.left)];
      const Weight dr = anchor_row[r.to_reduced(chain.right)];
      const Weight total = chain.total;
      const std::size_t len = chain.interior.size();
      for (std::size_t i = 0; i < len; ++i) {
        out[chain.interior[i]] = std::min(dl + chain.prefix[i],
                                          dr + (total - chain.prefix[i]));
      }
    }
    if (cs.chain_of[lu] != reduce::kNoChain) {
      const reduce::Chain& chain = cs.chains[cs.chain_of[lu]];
      const Weight pu = chain.prefix[cs.position[lu]];
      const std::size_t len = chain.interior.size();
      for (std::size_t i = 0; i < len; ++i) {
        out[chain.interior[i]] =
            std::min(out[chain.interior[i]], std::abs(pu - chain.prefix[i]));
      }
    }
    out[lu] = 0;
  }

  // Phase III stage 2: distances between all articulation points, by
  // accumulating within-block cut-to-cut distances along the (unique)
  // block-cut tree paths from each source articulation point.
  void build_ap_table() {
    obs::ScopedPhase phase(timings.ap_table, "apsp.ap_table",
                           "apsp.phase.ap_table_s");
    const auto& cuts = bct->cut_vertices();
    const auto a = static_cast<std::uint32_t>(cuts.size());
    ap_table.assign(static_cast<std::size_t>(a) * a, graph::kInfWeight);

    // One tree traversal per source AP; parallel across sources.
    const auto source_walk = [&](std::size_t ai) {
      EARDEC_TRACE_SCOPE("apsp.ap_source_walk", "source", ai);
      Weight* row = ap_table.data() + ai * a;
      row[ai] = 0;
      // DFS over tree nodes, carrying the distance at the entry cut.
      struct Frame {
        std::uint32_t node;
        std::uint32_t from;
        Weight dist;  // distance from source AP to this node's entry cut
      };
      constexpr std::uint32_t kNone = UINT32_MAX;
      std::vector<Frame> stack{{bct->cut_node(static_cast<std::uint32_t>(ai)),
                                kNone, 0.0}};
      while (!stack.empty()) {
        const Frame f = stack.back();
        stack.pop_back();
        if (f.node < bct->num_blocks()) {
          // Block node entered through cut `from` (always a cut node id).
          const std::uint32_t b = f.node;
          const VertexId entry_cut = cuts[f.from - bct->num_blocks()];
          const VertexId entry_local = local_of[b].at(entry_cut);
          for (const std::uint32_t nb : bct->neighbors(f.node)) {
            if (nb == f.from) continue;
            const std::uint32_t ci = nb - bct->num_blocks();
            const VertexId cut_local = local_of[b].at(cuts[ci]);
            const Weight d =
                f.dist + block_distance(b, entry_local, cut_local);
            if (d < row[ci]) row[ci] = d;
            stack.push_back({nb, f.node, d});
          }
        } else {
          // Cut node: continue into every adjacent block.
          for (const std::uint32_t nb : bct->neighbors(f.node)) {
            if (nb == f.from) continue;
            stack.push_back({nb, f.node, f.dist});
          }
        }
      }
    };

    parallel_over(a, source_walk);
  }

  void finalize_memory() {
    std::vector<VertexId> reduced_sizes;
    reduced_sizes.reserve(reduced.size());
    for (const auto& r : reduced) {
      reduced_sizes.push_back(r.graph().num_vertices());
    }
    memory = compute_memory_usage(g, bcc, reduced_sizes);
  }

  [[nodiscard]] std::vector<Weight> distances_from(VertexId u) const {
    if (u >= g.num_vertices()) {
      throw std::out_of_range("distances_from: vertex out of range");
    }
    std::vector<Weight> out(g.num_vertices(), graph::kInfWeight);
    out[u] = 0;
    if (g.num_vertices() == 0 || bct->block_of(u) == connectivity::kNoComponent) {
      return out;  // isolated vertex
    }

    // Fill a whole block given the distance to one of its vertices: one
    // chain-prefix row sweep, then merge the offsets into the output.
    const auto fill_block = [&](std::uint32_t b, VertexId entry_local,
                                Weight entry_dist) {
      const auto& verts = views[b].to_parent;
      static thread_local std::vector<Weight> row, anchor_row;
      row.resize(verts.size());
      block_distance_row(b, entry_local, row, anchor_row);
      for (VertexId lv = 0; lv < verts.size(); ++lv) {
        const Weight d = entry_dist + row[lv];
        if (d < out[verts[lv]]) out[verts[lv]] = d;
      }
    };

    // Start node: u's cut node if u is an articulation point, else its
    // unique block. DFS over the block-cut tree carrying the distance at
    // each entry cut, exactly as in build_ap_table but from one vertex.
    const std::uint32_t cu = bct->cut_index(u);
    struct Frame {
      std::uint32_t node;
      std::uint32_t from;
      Weight dist;  // distance from u to this node's entry cut
    };
    constexpr std::uint32_t kNone = UINT32_MAX;
    std::vector<Frame> stack;
    if (cu != connectivity::kNoComponent) {
      stack.push_back({bct->cut_node(cu), kNone, 0.0});
    } else {
      const std::uint32_t b = bct->block_of(u);
      fill_block(b, local_of[b].at(u), 0.0);
      for (const std::uint32_t nb : bct->neighbors(b)) {
        const VertexId cut = bct->cut_vertices()[nb - bct->num_blocks()];
        stack.push_back({nb, b, out[cut]});
      }
    }
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      if (f.node < bct->num_blocks()) {
        const std::uint32_t b = f.node;
        const VertexId entry =
            bct->cut_vertices()[f.from - bct->num_blocks()];
        fill_block(b, local_of[b].at(entry), f.dist);
        for (const std::uint32_t nb : bct->neighbors(f.node)) {
          if (nb == f.from) continue;
          const VertexId cut = bct->cut_vertices()[nb - bct->num_blocks()];
          stack.push_back({nb, f.node, out[cut]});
        }
      } else {
        for (const std::uint32_t nb : bct->neighbors(f.node)) {
          if (nb == f.from) continue;
          stack.push_back({nb, f.node, f.dist});
        }
      }
    }
    return out;
  }

  [[nodiscard]] Weight ap_distance(VertexId u, VertexId v) const {
    const std::uint32_t iu = bct->cut_index(u);
    const std::uint32_t iv = bct->cut_index(v);
    const auto a = bct->cut_vertices().size();
    return ap_table[static_cast<std::size_t>(iu) * a + iv];
  }

  /// The one copy of the closed-form point-to-point routing. Same-block
  /// pairs go straight to `bd`; cross-block pairs route through the first
  /// and last articulation points of the block-cut tree path (c_first /
  /// c_last) and the AP table. `bd(block, lu, lv)` supplies the
  /// within-block metric — formula evaluation for the compact engine,
  /// materialized-table lookup for EarApsp.
  template <typename BlockDist>
  [[nodiscard]] Weight routed_distance(VertexId u, VertexId v,
                                       const BlockDist& bd) const {
    if (u >= g.num_vertices() || v >= g.num_vertices()) {
      throw std::out_of_range("EarApsp: vertex out of range");
    }
    if (u == v) return 0;
    if (cc.component[u] != cc.component[v]) return graph::kInfWeight;

    const std::uint32_t cu = bct->cut_index(u);
    const std::uint32_t cv = bct->cut_index(v);
    const std::uint32_t nu =
        cu != connectivity::kNoComponent ? bct->cut_node(cu) : bct->block_of(u);
    const std::uint32_t nv =
        cv != connectivity::kNoComponent ? bct->cut_node(cv) : bct->block_of(v);
    if (nu == nv) {  // both plain vertices of the same block
      return bd(nu, local_of[nu].at(u), local_of[nv].at(v));
    }
    // First / last articulation points on the block-cut tree path.
    const VertexId c_first =
        cu != connectivity::kNoComponent
            ? u
            : bct->cut_vertices()[lca->next_on_path(nu, nv) -
                                  bct->num_blocks()];
    const VertexId c_last =
        cv != connectivity::kNoComponent
            ? v
            : bct->cut_vertices()[lca->next_on_path(nv, nu) -
                                  bct->num_blocks()];
    const Weight du = cu != connectivity::kNoComponent
                          ? 0
                          : bd(nu, local_of[nu].at(u),
                               local_of[nu].at(c_first));
    const Weight dv = cv != connectivity::kNoComponent
                          ? 0
                          : bd(nv, local_of[nv].at(v),
                               local_of[nv].at(c_last));
    return du + ap_distance(c_first, c_last) + dv;
  }

  [[nodiscard]] Weight query(VertexId u, VertexId v) const {
    return routed_distance(
        u, v, [this](std::uint32_t b, VertexId lu, VertexId lv) {
          return block_distance(b, lu, lv);
        });
  }

  // The classification half of routed_distance, with the same node/AP
  // derivation but no distance evaluation: everything the serving layer
  // needs to batch the block legs and recompose the answer bit-identically.
  [[nodiscard]] QueryRoute route(VertexId u, VertexId v) const {
    if (u >= g.num_vertices() || v >= g.num_vertices()) {
      throw std::out_of_range("EarApsp: vertex out of range");
    }
    QueryRoute rt;
    if (u == v) return rt;  // Trivial
    if (cc.component[u] != cc.component[v]) {
      rt.kind = QueryRoute::Kind::Disconnected;
      return rt;
    }
    const std::uint32_t cu = bct->cut_index(u);
    const std::uint32_t cv = bct->cut_index(v);
    const std::uint32_t nu =
        cu != connectivity::kNoComponent ? bct->cut_node(cu) : bct->block_of(u);
    const std::uint32_t nv =
        cv != connectivity::kNoComponent ? bct->cut_node(cv) : bct->block_of(v);
    if (nu == nv) {  // both plain vertices of the same block
      rt.kind = QueryRoute::Kind::SameBlock;
      rt.leg_u = {true, nu, local_of[nu].at(u), local_of[nv].at(v)};
      return rt;
    }
    rt.kind = QueryRoute::Kind::CrossBlock;
    rt.ap_u = cu != connectivity::kNoComponent
                  ? u
                  : bct->cut_vertices()[lca->next_on_path(nu, nv) -
                                        bct->num_blocks()];
    rt.ap_v = cv != connectivity::kNoComponent
                  ? v
                  : bct->cut_vertices()[lca->next_on_path(nv, nu) -
                                        bct->num_blocks()];
    if (cu == connectivity::kNoComponent) {
      rt.leg_u = {true, nu, local_of[nu].at(u), local_of[nu].at(rt.ap_u)};
    }
    if (cv == connectivity::kNoComponent) {
      rt.leg_v = {true, nv, local_of[nv].at(v), local_of[nv].at(rt.ap_v)};
    }
    return rt;
  }

  [[nodiscard]] BlockQueryPlan block_query_plan(std::uint32_t comp,
                                                VertexId lu,
                                                VertexId lv) const {
    BlockQueryPlan plan;
    if (lu == lv) {
      plan.chain_direct = 0;  // evaluate() then yields exactly 0
      return plan;
    }
    const Exits& eu = exits.at(comp).at(lu);
    const Exits& ev = exits.at(comp).at(lv);
    plan.exits_u = eu.e;
    plan.exits_v = ev.e;
    plan.count_u = static_cast<std::uint32_t>(eu.count);
    plan.count_v = static_cast<std::uint32_t>(ev.count);
    const reduce::ChainSet& cs = reduced[comp].chains();
    if (cs.chain_of[lu] != reduce::kNoChain &&
        cs.chain_of[lu] == cs.chain_of[lv]) {
      const reduce::Chain& chain = cs.chains[cs.chain_of[lu]];
      plan.chain_direct = std::abs(chain.prefix[cs.position[lu]] -
                                   chain.prefix[cs.position[lv]]);
    }
    return plan;
  }
};

EarApspEngine::EarApspEngine(const Graph& g, const ApspOptions& options)
    : impl_(std::make_unique<Impl>(g, options)) {}
EarApspEngine::~EarApspEngine() = default;
EarApspEngine::EarApspEngine(EarApspEngine&&) noexcept = default;
EarApspEngine& EarApspEngine::operator=(EarApspEngine&&) noexcept = default;

const Graph& EarApspEngine::original_graph() const { return impl_->g; }
std::uint32_t EarApspEngine::num_components() const {
  return impl_->bcc.num_components;
}
const connectivity::BiconnectedComponents& EarApspEngine::bcc() const {
  return impl_->bcc;
}
const connectivity::BlockCutTree& EarApspEngine::block_cut_tree() const {
  return *impl_->bct;
}
const reduce::ReducedGraph& EarApspEngine::reduced(std::uint32_t comp) const {
  return impl_->reduced.at(comp);
}
const connectivity::SubgraphView& EarApspEngine::component(
    std::uint32_t comp) const {
  return impl_->views.at(comp);
}
const DistanceMatrix& EarApspEngine::reduced_table(std::uint32_t comp) const {
  return impl_->rtables.at(comp);
}
Weight EarApspEngine::block_distance(std::uint32_t comp, VertexId local_u,
                                     VertexId local_v) const {
  return impl_->block_distance(comp, local_u, local_v);
}
Weight EarApspEngine::ap_distance(VertexId ap_u, VertexId ap_v) const {
  return impl_->ap_distance(ap_u, ap_v);
}
Weight EarApspEngine::query(VertexId u, VertexId v) const {
  return impl_->query(u, v);
}
QueryRoute EarApspEngine::route(VertexId u, VertexId v) const {
  return impl_->route(u, v);
}
BlockQueryPlan EarApspEngine::block_query_plan(std::uint32_t comp,
                                               VertexId local_u,
                                               VertexId local_v) const {
  return impl_->block_query_plan(comp, local_u, local_v);
}
VertexId EarApspEngine::component_local(std::uint32_t comp, VertexId u) const {
  return impl_->local_of.at(comp).at(u);
}
std::vector<Weight> EarApspEngine::distances_from(VertexId u) const {
  return impl_->distances_from(u);
}
const PhaseTimings& EarApspEngine::timings() const { return impl_->timings; }
const MemoryUsage& EarApspEngine::memory() const { return impl_->memory; }
std::uint64_t EarApspEngine::sssp_runs() const { return impl_->sssp_runs; }
hetero::SchedulerStats EarApspEngine::scheduler_stats() const {
  return impl_->sched_stats;
}

EarApsp::EarApsp(const Graph& g, const ApspOptions& options)
    : engine_(g, options) {
  // Phase III stage 1: materialize every per-component table A_i by
  // evaluating the UPDATE_DISTANCE formulas row by row. Rows of *all*
  // components are flattened into one index space and spread over the
  // engine's shared pool, so many small components don't serialize behind
  // per-component fork/join barriers.
  auto& impl = *engine_.impl_;
  timings_ = impl.timings;
  obs::ScopedPhase phase(timings_.postprocess, "apsp.postprocess",
                         "apsp.phase.postprocess_s");
  block_tables_.resize(impl.views.size());
  std::vector<std::pair<std::uint32_t, VertexId>> jobs;  // (component, row)
  for (std::uint32_t c = 0; c < impl.views.size(); ++c) {
    const VertexId n = impl.views[c].graph.num_vertices();
    block_tables_[c] = DistanceMatrix(n);
    for (VertexId lu = 0; lu < n; ++lu) jobs.emplace_back(c, lu);
  }
  impl.parallel_over(jobs.size(), [&](std::size_t j) {
    const auto [c, lu] = jobs[j];
    static thread_local std::vector<Weight> anchor_row;
    impl.block_distance_row(c, lu, block_tables_[c].row(lu), anchor_row);
  });
}

Weight EarApsp::distance(VertexId u, VertexId v) const {
  // Same route as the engine's compact query; the within-block metric is
  // an O(1) lookup into the materialized A_i tables.
  return engine_.impl_->routed_distance(
      u, v, [this](std::uint32_t b, VertexId lu, VertexId lv) {
        return block_tables_[b].at(lu, lv);
      });
}

DistanceMatrix ear_apsp_matrix(const Graph& g, const ApspOptions& options) {
  // The engine alone suffices: each row is one distances_from() block-cut
  // tree sweep (O(Σ n_i + a)), instead of n per-pair queries that redo the
  // LCA and cut-index routing for every cell — and the A_i tables of
  // EarApsp never need materializing. Rows are independent and run across
  // the engine's shared pool.
  const EarApspEngine engine(g, options);
  EARDEC_TRACE_SCOPE("apsp.matrix", "n", g.num_vertices());
  DistanceMatrix d(g.num_vertices());
  engine.impl_->parallel_over(g.num_vertices(), [&](std::size_t u) {
    const auto row = d.row(static_cast<VertexId>(u));
    const std::vector<Weight> dist =
        engine.distances_from(static_cast<VertexId>(u));
    std::copy(dist.begin(), dist.end(), row.begin());
  });
  return d;
}

}  // namespace eardec::core
