#include "baselines/djidjev_apsp.hpp"

#include <limits>
#include <optional>

#include "graph/builder.hpp"
#include "hetero/scheduler.hpp"
#include "hetero/work_queue.hpp"
#include "obs/trace.hpp"
#include "sssp/dijkstra.hpp"

namespace eardec::baselines {
namespace {

constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();

}  // namespace

DjidjevApsp::DjidjevApsp(const graph::Graph& g, std::uint32_t num_parts,
                         const core::ApspOptions& options, std::uint64_t seed)
    : g_(g), partition_(partition::bfs_grow(g, num_parts, seed)) {
  const graph::VertexId n = g.num_vertices();
  EARDEC_TRACE_SCOPE("baseline.djidjev_build", "n", n);
  const auto nb = static_cast<std::uint32_t>(partition_.boundary.size());
  local_id_.assign(n, graph::kNullVertex);
  boundary_idx_.assign(n, kNone);
  for (std::uint32_t b = 0; b < nb; ++b) {
    boundary_idx_[partition_.boundary[b]] = b;
  }

  // Induced subgraph per part.
  parts_.resize(partition_.num_parts);
  for (graph::VertexId v = 0; v < n; ++v) {
    auto& part = parts_[partition_.part[v]];
    local_id_[v] = static_cast<graph::VertexId>(part.vertices.size());
    part.vertices.push_back(v);
  }
  std::vector<graph::Builder> builders;
  builders.reserve(parts_.size());
  for (const auto& part : parts_) {
    builders.emplace_back(static_cast<graph::VertexId>(part.vertices.size()));
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (partition_.part[u] == partition_.part[v]) {
      builders[partition_.part[u]].add_edge(local_id_[u], local_id_[v],
                                            g.weight(e));
    }
  }

  // Phase 2: within-part APSP, parallel over parts.
  std::vector<graph::Graph> part_graphs;
  part_graphs.reserve(parts_.size());
  for (auto& b : builders) part_graphs.push_back(std::move(b).build());
  for (std::uint32_t p = 0; p < parts_.size(); ++p) {
    parts_[p].dist = sssp::DistanceMatrix(
        static_cast<graph::VertexId>(parts_[p].vertices.size()));
    for (const graph::VertexId bv : partition_.boundary) {
      if (partition_.part[bv] == p) {
        parts_[p].boundary_local.push_back(local_id_[bv]);
      }
    }
  }
  {
    graph::VertexId max_part = 0;
    for (const auto& pg : part_graphs) {
      max_part = std::max(max_part, pg.num_vertices());
    }
    const unsigned cpu_workers =
        options.mode == core::ExecutionMode::Sequential
            ? 1
            : std::max(1u, options.cpu_threads);
    std::vector<sssp::DijkstraWorkspace> cpu_ws(cpu_workers);
    for (auto& ws : cpu_ws) ws.ensure(max_part);
    const auto part_apsp = [&](std::uint32_t p, unsigned worker) {
      const graph::Graph& pg = part_graphs[p];
      sssp::DijkstraWorkspace& ws = cpu_ws[worker];
      for (graph::VertexId s = 0; s < pg.num_vertices(); ++s) {
        ws.distances(pg, s, parts_[p].dist.row(s));
      }
    };
    std::vector<hetero::WorkUnit> units;
    for (std::uint32_t p = 0; p < parts_.size(); ++p) {
      units.push_back({p, parts_[p].vertices.size()});
    }
    hetero::WorkQueue queue(std::move(units));
    if (options.mode == core::ExecutionMode::Sequential) {
      while (true) {
        const auto batch = queue.take_light(1);
        if (batch.empty()) break;
        part_apsp(batch.front().id, 0);
      }
    } else {
      hetero::run_cpu_only(queue, options.cpu_threads,
                           [&](const hetero::WorkUnit& wu, unsigned worker) {
                             part_apsp(wu.id, worker);
                           });
    }
  }

  // Phase 3: the boundary graph. Vertices = boundary vertices; edges =
  // original cross edges plus within-part shortcut edges.
  graph::Builder bb(nb);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (partition_.part[u] != partition_.part[v]) {
      bb.add_edge(boundary_idx_[u], boundary_idx_[v], g.weight(e));
    }
  }
  for (std::uint32_t p = 0; p < parts_.size(); ++p) {
    const auto& bl = parts_[p].boundary_local;
    for (std::size_t i = 0; i < bl.size(); ++i) {
      for (std::size_t j = i + 1; j < bl.size(); ++j) {
        const graph::Weight w = parts_[p].dist.at(bl[i], bl[j]);
        if (w != graph::kInfWeight) {
          bb.add_edge(boundary_idx_[parts_[p].vertices[bl[i]]],
                      boundary_idx_[parts_[p].vertices[bl[j]]], w);
        }
      }
    }
  }
  const graph::Graph boundary_graph =
      std::move(bb).build(graph::ParallelEdgePolicy::KeepMinWeight);

  // Phase 4: APSP on the boundary graph.
  boundary_dist_ = sssp::DistanceMatrix(nb);
  {
    sssp::DijkstraWorkspace ws(nb);
    for (std::uint32_t b = 0; b < nb; ++b) {
      ws.distances(boundary_graph, b, boundary_dist_.row(b));
    }
  }

  // Phase 5: exit tables — global distance from every vertex to every
  // boundary vertex via its own part's boundary.
  exit_.assign(static_cast<std::size_t>(n) * nb, graph::kInfWeight);
  for (graph::VertexId u = 0; u < n; ++u) {
    const auto& part = parts_[partition_.part[u]];
    const graph::VertexId lu = local_id_[u];
    for (std::uint32_t b = 0; b < nb; ++b) {
      graph::Weight best = graph::kInfWeight;
      for (const graph::VertexId bl : part.boundary_local) {
        const graph::Weight d1 = part.dist.at(lu, bl);
        if (d1 == graph::kInfWeight) continue;
        const std::uint32_t b1 = boundary_idx_[part.vertices[bl]];
        const graph::Weight d2 = boundary_dist_.at(b1, b);
        if (d2 == graph::kInfWeight) continue;
        best = std::min(best, d1 + d2);
      }
      exit_[static_cast<std::size_t>(u) * nb + b] = best;
    }
  }
}

sssp::DistanceMatrix DjidjevApsp::materialize() const {
  const graph::VertexId n = g_.num_vertices();
  sssp::DistanceMatrix d(n);
  for (graph::VertexId u = 0; u < n; ++u) {
    auto row = d.row(u);
    row[u] = 0;
    // Per part: seed each target with the boundary route, then overlay the
    // same-part direct distances.
    for (std::uint32_t p = 0; p < parts_.size(); ++p) {
      const Part& part = parts_[p];
      for (const graph::VertexId bl : part.boundary_local) {
        const std::uint32_t b = boundary_idx_[part.vertices[bl]];
        const graph::Weight d1 = exit_at(u, b);
        if (d1 == graph::kInfWeight) continue;
        const auto brow = part.dist.row(bl);
        for (graph::VertexId lv = 0; lv < part.vertices.size(); ++lv) {
          const graph::Weight cand = d1 + brow[lv];
          graph::Weight& cell = row[part.vertices[lv]];
          if (cand < cell) cell = cand;
        }
      }
    }
    const Part& pu = parts_[partition_.part[u]];
    const auto urow = pu.dist.row(local_id_[u]);
    for (graph::VertexId lv = 0; lv < pu.vertices.size(); ++lv) {
      graph::Weight& cell = row[pu.vertices[lv]];
      if (urow[lv] < cell) cell = urow[lv];
    }
    row[u] = 0;
  }
  return d;
}

graph::Weight DjidjevApsp::distance(graph::VertexId u,
                                    graph::VertexId v) const {
  if (u == v) return 0;
  const std::uint32_t pu = partition_.part[u];
  const std::uint32_t pv = partition_.part[v];
  graph::Weight best = graph::kInfWeight;
  if (pu == pv) {
    best = parts_[pu].dist.at(local_id_[u], local_id_[v]);
  }
  // Through the boundary: exit table of u + within-part approach to v.
  const auto& part_v = parts_[pv];
  for (const graph::VertexId bl : part_v.boundary_local) {
    const std::uint32_t b = boundary_idx_[part_v.vertices[bl]];
    const graph::Weight d1 = exit_at(u, b);
    if (d1 == graph::kInfWeight) continue;
    const graph::Weight d2 = part_v.dist.at(bl, local_id_[v]);
    if (d2 == graph::kInfWeight) continue;
    best = std::min(best, d1 + d2);
  }
  return best;
}

}  // namespace eardec::baselines
