#include "baselines/plain_apsp.hpp"

#include <optional>

#include "hetero/scheduler.hpp"
#include "hetero/work_queue.hpp"
#include "obs/trace.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/frontier_sssp.hpp"

namespace eardec::baselines {

DistanceMatrix plain_apsp(const Graph& g, const ApspOptions& options) {
  const graph::VertexId n = g.num_vertices();
  EARDEC_TRACE_SCOPE("baseline.plain_apsp", "n", n);
  DistanceMatrix dist(n);
  if (n == 0) return dist;

  std::optional<hetero::Device> device;
  if (options.mode == core::ExecutionMode::DeviceOnly ||
      options.mode == core::ExecutionMode::Heterogeneous) {
    device.emplace(options.device);
  }

  std::vector<hetero::WorkUnit> units;
  const graph::VertexId step = std::max<graph::VertexId>(1, options.sources_per_unit);
  for (graph::VertexId s = 0; s < n; s += step) {
    units.push_back({static_cast<std::uint32_t>(s / step), step});
  }
  const auto sources_of = [&](const hetero::WorkUnit& wu) {
    const graph::VertexId begin = wu.id * step;
    return std::pair{begin, std::min<graph::VertexId>(begin + step, n)};
  };

  // Pooled per-worker workspaces: one Dijkstra heap per CPU worker and one
  // frontier buffer for the single device driver, allocated once up front.
  const unsigned cpu_workers =
      options.mode == core::ExecutionMode::Sequential
          ? 1
          : std::max(1u, options.cpu_threads);
  std::vector<sssp::DijkstraWorkspace> cpu_ws(cpu_workers);
  for (auto& ws : cpu_ws) ws.ensure(n);
  sssp::FrontierWorkspace device_ws;
  if (device) device_ws.ensure(n);

  const auto cpu_fn = [&](const hetero::WorkUnit& wu, unsigned worker) {
    const auto [begin, end] = sources_of(wu);
    sssp::DijkstraWorkspace& ws = cpu_ws[worker];
    for (graph::VertexId s = begin; s < end; ++s) {
      ws.distances(g, s, dist.row(s));
    }
  };
  const auto device_fn = [&](const hetero::WorkUnit& wu, unsigned) {
    const auto [begin, end] = sources_of(wu);
    for (graph::VertexId s = begin; s < end; ++s) {
      device_ws.distances(g, s, *device, dist.row(s));
    }
  };

  switch (options.mode) {
    case core::ExecutionMode::Sequential:
      for (const auto& wu : units) cpu_fn(wu, 0);
      break;
    case core::ExecutionMode::Multicore: {
      hetero::WorkQueue queue(std::move(units));
      hetero::run_cpu_only(queue, options.cpu_threads, cpu_fn,
                           options.cpu_batch);
      break;
    }
    case core::ExecutionMode::DeviceOnly: {
      for (const auto& wu : units) device_fn(wu, 0);
      break;
    }
    case core::ExecutionMode::Heterogeneous: {
      hetero::WorkQueue queue(std::move(units));
      hetero::run_heterogeneous(queue,
                                {.cpu_threads = options.cpu_threads,
                                 .cpu_batch = options.cpu_batch,
                                 .device_batch = options.device_batch},
                                cpu_fn, device_fn);
      break;
    }
  }
  return dist;
}

}  // namespace eardec::baselines
