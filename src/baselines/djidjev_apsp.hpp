// Djidjev et al. [12] baseline: partition-based APSP for planar graphs.
//
//   1. Partition G into k parts (BFS region growing — METIS stand-in).
//   2. APSP inside each part's induced subgraph (parallel over parts).
//   3. Build the boundary graph: boundary vertices, cross-partition edges,
//      plus intra-part shortcuts weighted by the within-part distances.
//   4. APSP on the boundary graph (global boundary-to-boundary distances).
//   5. Per-vertex exit tables T[u][b] = min over own-part boundary b1 of
//      D_part(u, b1) + D_boundary(b1, b): global distance from u to every
//      boundary vertex.
// Query: d(u,v) = min( same-part D_part(u,v),
//                      min over b in v's part boundary  T[u][b] + D_part(b, v) ).
//
// Efficient only when the boundary is small relative to n — the planar
// case, which is why the paper (like Djidjev et al. themselves) evaluates
// this baseline on planar inputs only.
#pragma once

#include <vector>

#include "core/ear_apsp.hpp"
#include "partition/bfs_grow.hpp"
#include "sssp/floyd_warshall.hpp"

namespace eardec::baselines {

class DjidjevApsp {
 public:
  DjidjevApsp(const graph::Graph& g, std::uint32_t num_parts,
              const core::ApspOptions& options, std::uint64_t seed = 1);

  [[nodiscard]] graph::Weight distance(graph::VertexId u,
                                       graph::VertexId v) const;

  /// Materializes the full n x n distance table — the "extend shortest
  /// paths across partitions" step of the published algorithm, whose cost
  /// (n^2 x per-part boundary size) is part of any fair APSP timing.
  [[nodiscard]] sssp::DistanceMatrix materialize() const;

  [[nodiscard]] const partition::Partition& partition() const {
    return partition_;
  }
  [[nodiscard]] std::size_t boundary_size() const {
    return partition_.boundary.size();
  }

 private:
  graph::Graph g_;
  partition::Partition partition_;
  /// Per part: induced subgraph's vertex list, local ids, distance table.
  struct Part {
    std::vector<graph::VertexId> vertices;        // local -> global
    std::vector<graph::VertexId> boundary_local;  // local ids of boundary
    sssp::DistanceMatrix dist;                    // within induced subgraph
  };
  std::vector<Part> parts_;
  std::vector<graph::VertexId> local_id_;    // global -> local within part
  std::vector<std::uint32_t> boundary_idx_;  // global -> index in boundary, or npos
  sssp::DistanceMatrix boundary_dist_;       // |B| x |B| global distances
  /// n x |B| exit table: global distance from every vertex to every
  /// boundary vertex.
  std::vector<graph::Weight> exit_;

  [[nodiscard]] graph::Weight exit_at(graph::VertexId u,
                                      std::uint32_t b) const {
    return exit_[static_cast<std::size_t>(u) * partition_.boundary.size() + b];
  }
};

}  // namespace eardec::baselines
