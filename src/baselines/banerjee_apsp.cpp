#include "baselines/banerjee_apsp.hpp"

#include "obs/trace.hpp"

namespace eardec::baselines {

BanerjeeApsp::BanerjeeApsp(const graph::Graph& g,
                           const core::ApspOptions& options)
    : peel_(g) {
  EARDEC_TRACE_SCOPE("baseline.banerjee_build", "n", g.num_vertices());
  core::ApspOptions opts = options;
  opts.use_ear_reduction = false;  // BCC decomposition only, per the paper
  engine_ = std::make_unique<core::EarApspEngine>(peel_.core(), opts);
}

graph::Weight BanerjeeApsp::distance(graph::VertexId u,
                                     graph::VertexId v) const {
  if (u == v) return 0;
  if (!peel_.kept(u) && !peel_.kept(v)) {
    // Same pendant tree: the unique tree path is the answer.
    const graph::Weight td = peel_.tree_distance(u, v);
    if (td != graph::kInfWeight) return td;
  }
  // Route through the attachment points and the core.
  const graph::VertexId au = peel_.attach(u);
  const graph::VertexId av = peel_.attach(v);
  if (au == av) {
    // Distinct pendant trees (or a tree vertex and its own attach point)
    // hanging off the same core vertex.
    return peel_.attach_distance(u) + peel_.attach_distance(v);
  }
  const graph::Weight core_d =
      engine_->query(peel_.to_core(au), peel_.to_core(av));
  if (core_d == graph::kInfWeight) return graph::kInfWeight;
  return peel_.attach_distance(u) + core_d + peel_.attach_distance(v);
}

}  // namespace eardec::baselines
