// Banerjee et al. [4] baseline: APSP through (a) iterative pendant
// (degree-1) removal and (b) biconnected-component decomposition with a
// block-cut tree — but *no* degree-two chain contraction. Re-implemented
// from the published description on top of this library's shared kernels
// and runtime so the comparison in Figures 2-3 isolates exactly the ear
// decomposition (see DESIGN.md §2).
#pragma once

#include <memory>

#include "core/ear_apsp.hpp"
#include "reduce/pendant.hpp"

namespace eardec::baselines {

class BanerjeeApsp {
 public:
  BanerjeeApsp(const graph::Graph& g, const core::ApspOptions& options);

  /// Exact distance between any two vertices of the original graph.
  [[nodiscard]] graph::Weight distance(graph::VertexId u,
                                       graph::VertexId v) const;

  [[nodiscard]] const core::PhaseTimings& timings() const {
    return engine_->timings();
  }
  [[nodiscard]] const core::MemoryUsage& memory() const {
    return engine_->memory();
  }
  [[nodiscard]] std::uint64_t sssp_runs() const { return engine_->sssp_runs(); }
  [[nodiscard]] const reduce::PendantPeel& peel() const { return peel_; }

 private:
  reduce::PendantPeel peel_;
  /// BCC pipeline over the peeled core with ear reduction disabled.
  std::unique_ptr<core::EarApspEngine> engine_;
};

}  // namespace eardec::baselines
