// Plain APSP baseline: one SSSP per vertex over the whole graph, scheduled
// through the same heterogeneous runtime as the ear pipeline (CPU Dijkstra
// + device frontier kernel) but with no decomposition or reduction. This
// isolates the contribution of the graph-structural ideas from the runtime.
#pragma once

#include "core/ear_apsp.hpp"
#include "sssp/floyd_warshall.hpp"

namespace eardec::baselines {

using core::ApspOptions;
using graph::Graph;
using sssp::DistanceMatrix;

/// Computes the full n x n distance matrix with Dijkstra/frontier per
/// source under the execution mode in `options`.
[[nodiscard]] DistanceMatrix plain_apsp(const Graph& g,
                                        const ApspOptions& options);

}  // namespace eardec::baselines
