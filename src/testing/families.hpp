// Seeded graph-family registry for the property-testing harness.
//
// Each family is a deterministic generator (same seed -> bit-identical
// graph) tuned to stress one layer of the pipeline: chain-heavy biconnected
// graphs exercise the degree-two contraction, block-cut families the
// articulation routing, multigraph families the parallel-edge/self-loop
// handling of MCB, degenerate-weight families the zero/huge-weight corner
// of the comparators, and so on. The fuzz runner (runner.hpp) crosses every
// family with every property check; the `tags` let checks opt out of
// families whose structure they cannot judge (e.g. Horton's candidate-set
// argument assumes generic weights).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace eardec::testing {

using graph::Graph;

/// Structural traits a check may use to skip a family.
struct FamilyTags {
  bool multigraph = false;         ///< produces parallel edges / self-loops
  bool degenerate_weights = false; ///< zero / near-zero / huge weight mix
  bool disconnected = false;       ///< may produce several components
};

struct GraphFamily {
  std::string name;
  std::string description;
  FamilyTags tags;
  /// Deterministic generator. `size` is a vertex-count hint: the graph has
  /// Theta(size) vertices (families may over/undershoot by small factors).
  std::function<Graph(std::uint64_t seed, std::uint32_t size)> make;
};

/// All registered families, in a fixed order (the runner's iteration and
/// report order). The registry is immutable after first use.
[[nodiscard]] const std::vector<GraphFamily>& families();

/// Lookup by name; throws std::invalid_argument with the list of valid
/// names when `name` is unknown.
[[nodiscard]] const GraphFamily& family(std::string_view name);

}  // namespace eardec::testing
