// Metamorphic invariants: relations between the outputs on an input graph
// and on a structure-preserving transformation of it. Unlike the
// differential oracles these need no reference implementation — the
// pipeline is compared against itself across vertex relabeling, uniform
// weight scaling, and edge subdivision, so they stay cheap enough to run
// on every family at every seed.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "testing/oracles.hpp"  // CheckResult

namespace eardec::testing {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;
using graph::Weight;

// ------------------------------------------------------------- transforms

/// Relabels vertices by a seed-derived random permutation.
[[nodiscard]] Graph relabel_vertices(const Graph& g, std::uint64_t seed);

/// Multiplies every edge weight by `factor` (factor > 0).
[[nodiscard]] Graph scale_weights(const Graph& g, Weight factor);

/// Replaces edge e = {u, v} of weight w by {u, x} and {x, v} with weights
/// w * t and w * (1 - t) through a fresh vertex x = n. Subdividing a
/// self-loop yields a parallel pair, which is the correct cycle-space
/// picture. `t` in [0, 1].
[[nodiscard]] Graph subdivide_edge(const Graph& g, EdgeId e, double t);

// ------------------------------------------------------------- invariants

/// Relabeling invariance: distances map through the permutation; MCB
/// weight and dimension are unchanged. The MCB half is skipped when the
/// cycle space dimension exceeds `mcb_dim_limit` (0 = never skip).
[[nodiscard]] CheckResult check_relabel_invariance(const Graph& g,
                                                   std::uint64_t seed,
                                                   std::size_t mcb_dim_limit);

/// Uniform scaling: every distance and the MCB total weight scale by the
/// same factor; MCB dimension is unchanged. The factor is seed-derived
/// from {0.5, 2, 3.25, 10}.
[[nodiscard]] CheckResult check_scale_linearity(const Graph& g,
                                                std::uint64_t seed,
                                                std::size_t mcb_dim_limit);

/// Edge subdivision: all original-pair distances and the MCB total weight
/// and dimension are unchanged (the subdivided edge's cycle gains length
/// but not weight). The edge and split fraction are seed-derived.
[[nodiscard]] CheckResult check_subdivision_invariance(
    const Graph& g, std::uint64_t seed, std::size_t mcb_dim_limit);

}  // namespace eardec::testing
