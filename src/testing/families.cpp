#include "testing/families.hpp"

#include <algorithm>
#include <random>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace eardec::testing {
namespace {

namespace gen = graph::generators;
using graph::Builder;
using graph::EdgeId;
using graph::VertexId;
using graph::Weight;

VertexId at_least(std::uint32_t size, VertexId lo) {
  return std::max<VertexId>(size, lo);
}

/// Chain-heavy 2-edge-connected graph: a random biconnected core with two
/// thirds of the final vertices inserted as degree-two subdivisions — the
/// paper's sweet spot (Table 1's high "Nodes Removed %" rows).
Graph make_chain_heavy(std::uint64_t seed, std::uint32_t size) {
  const VertexId core = at_least(size / 3, 6);
  const auto m = static_cast<EdgeId>(core + core / 2 + 2);
  const Graph g = gen::random_biconnected(core, m, seed);
  return gen::subdivide(g, size - core, seed ^ 0x9e3779b97f4a7c15ULL);
}

/// Pure ring: one maximal degree-two chain that is a cycle (left == right
/// at the designated anchor) — the degenerate case of the chain walker.
Graph make_ring(std::uint64_t seed, std::uint32_t size) {
  return gen::cycle(at_least(size, 3), {}, seed);
}

/// Theta graph: two hubs joined by several internally disjoint chains of
/// random lengths. Reduction produces parallel edges between the hubs.
Graph make_theta(std::uint64_t seed, std::uint32_t size) {
  gen::Rng rng(seed);
  std::uniform_int_distribution<std::uint32_t> strand_count(3, 5);
  std::uniform_int_distribution<std::uint32_t> wdist(1, 20);
  const std::uint32_t interior = std::max<std::uint32_t>(size, 7) - 2;
  // At most interior+1 strands keep the graph simple (no two bare edges).
  const std::uint32_t strands =
      std::min<std::uint32_t>(strand_count(rng), interior + 1);
  Builder b(2 + interior);
  VertexId next = 2;
  for (std::uint32_t s = 0; s < strands; ++s) {
    // Strand s gets a roughly even share of the interior vertices; the
    // first strand may be a bare hub-to-hub edge (length-0 chain).
    std::uint32_t len = interior / strands + (s < interior % strands ? 1 : 0);
    if (s == 0 && len > 0 && interior >= strands) len = 0;
    VertexId prev = 0;
    for (std::uint32_t i = 0; i < len; ++i, ++next) {
      b.add_edge(prev, next, static_cast<Weight>(wdist(rng)));
      prev = next;
    }
    b.add_edge(prev, 1, static_cast<Weight>(wdist(rng)));
  }
  // Unused interior budget (when strands got length 0): hang a path off
  // hub 0 so every vertex id is used and degree-1 fringes are covered.
  VertexId prev = 0;
  for (; next < 2 + interior; ++next) {
    b.add_edge(prev, next, static_cast<Weight>(wdist(rng)));
    prev = next;
  }
  return std::move(b).build();
}

/// Lollipop: a cycle welded to an anchor that also carries spokes, so the
/// cycle's chain has left(x) == right(x) at a vertex of degree > 2.
Graph make_lollipop(std::uint64_t seed, std::uint32_t size) {
  gen::Rng rng(seed);
  std::uniform_int_distribution<std::uint32_t> wdist(1, 15);
  const VertexId n = at_least(size, 6);
  const VertexId ring = std::max<VertexId>(n / 2, 3);
  Builder b(n);
  // Cycle 0..ring-1; vertex 0 is the anchor.
  for (VertexId i = 0; i < ring; ++i) {
    b.add_edge(i, (i + 1) % ring, static_cast<Weight>(wdist(rng)));
  }
  // A path of spokes hanging off the anchor uses the remaining vertices.
  VertexId prev = 0;
  for (VertexId v = ring; v < n; ++v) {
    b.add_edge(prev, v, static_cast<Weight>(wdist(rng)));
    prev = v;
  }
  return std::move(b).build();
}

/// Articulation-rich block-cut tree with a pendant fringe.
Graph make_block_cut(std::uint64_t seed, std::uint32_t size) {
  const std::uint32_t blocks = 3 + size / 12;
  return gen::block_tree({.num_blocks = blocks,
                          .largest_block = at_least(size / 3, 5),
                          .small_block_min = 3,
                          .small_block_max = 6,
                          .intra_degree = 2.8,
                          .pendants = size / 6},
                         seed);
}

/// Bridge-only graph: a random spanning tree, i.e. every edge is a bridge
/// and every internal vertex an articulation point. The block-cut tree is
/// as deep as it gets and the cycle space is empty.
Graph make_bridge_tree(std::uint64_t seed, std::uint32_t size) {
  const VertexId n = at_least(size, 2);
  return gen::random_connected(n, n - 1, seed);
}

/// Planar grid-with-diagonals, edges randomly thinned (OGDF substitute).
Graph make_grid_planar(std::uint64_t seed, std::uint32_t size) {
  const VertexId rows = std::clamp<VertexId>(1 + size / 5, 2, 8);
  const VertexId cols = std::max<VertexId>(at_least(size, 4) / rows, 2);
  return gen::random_planar(rows, cols, 0.4, 0.15, seed);
}

/// Multigraph: biconnected base plus duplicated edges (some lighter, some
/// equal-weight) and a few self-loops — the parallel-edge weight classes
/// the Keep/KeepMinWeight builder policies distinguish.
Graph make_parallel_multi(std::uint64_t seed, std::uint32_t size) {
  gen::Rng rng(seed);
  const VertexId n = at_least(size / 2, 4);
  const auto m = static_cast<EdgeId>(n + n / 2);
  const Graph base = gen::random_biconnected(n, m, seed, {1, 30});
  Builder b(base.num_vertices());
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    const auto [u, v] = base.endpoints(e);
    b.add_edge(u, v, base.weight(e));
  }
  std::uniform_int_distribution<EdgeId> pick_edge(0, base.num_edges() - 1);
  std::uniform_int_distribution<VertexId> pick_vertex(0, n - 1);
  std::uniform_real_distribution<double> frac(0.0, 1.0);
  const EdgeId dups = std::max<EdgeId>(2, base.num_edges() / 4);
  for (EdgeId k = 0; k < dups; ++k) {
    const EdgeId e = pick_edge(rng);
    const auto [u, v] = base.endpoints(e);
    const double r = frac(rng);
    // One third lighter than the original, one third equal (exact
    // duplicate), one third heavier.
    const Weight w = r < 1.0 / 3 ? base.weight(e) * 0.5
                     : r < 2.0 / 3 ? base.weight(e)
                                   : base.weight(e) * 2;
    b.add_edge(u, v, w);
  }
  const VertexId extra = 1 + n / 8;
  for (VertexId k = 0; k < extra; ++k) {
    b.add_edge(pick_vertex(rng), pick_vertex(rng), 0);  // may self-loop
  }
  const VertexId lv = pick_vertex(rng);
  b.add_edge(lv, lv, static_cast<Weight>(1 + frac(rng) * 9));
  return std::move(b).build();
}

/// Near-degenerate weights: a connected graph whose weights mix exact
/// zeros, tiny, moderate, and huge values — stresses comparator and
/// accumulation order assumptions (zero-weight chains, 1e12 spans).
Graph make_degenerate_weights(std::uint64_t seed, std::uint32_t size) {
  gen::Rng rng(seed);
  const VertexId n = at_least(size, 5);
  const auto m = static_cast<EdgeId>(n + n / 3 + 1);
  const Graph base = gen::random_connected(n, m, seed);
  std::uniform_int_distribution<int> cls(0, 4);
  Builder b(n);
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    const auto [u, v] = base.endpoints(e);
    Weight w = 0;
    switch (cls(rng)) {
      case 0: w = 0.0; break;
      case 1: w = 1e-9; break;
      case 2: w = 1.0; break;
      case 3: w = 7.5; break;
      default: w = 1e12; break;
    }
    b.add_edge(u, v, w);
  }
  return std::move(b).build();
}

/// Sparse connected graph with a mix of bridges and small blocks.
Graph make_sparse_connected(std::uint64_t seed, std::uint32_t size) {
  const VertexId n = at_least(size, 4);
  return gen::random_connected(n, static_cast<EdgeId>(n + n / 4), seed);
}

/// Small complete graph: zero degree-two vertices, reduction is a no-op.
Graph make_complete_dense(std::uint64_t seed, std::uint32_t size) {
  return gen::complete(std::clamp<VertexId>(size / 3, 4, 11), {1, 50}, seed);
}

/// Subdivided Petersen graph: fixed 3-regular girth-5 topology, seed
/// drives weights and subdivision placement.
Graph make_petersen_sub(std::uint64_t seed, std::uint32_t size) {
  const Graph p = gen::petersen({1, 40}, seed);
  return gen::subdivide(p, std::max<VertexId>(size, 10) - 10, seed + 1);
}

/// Two components plus an isolated vertex: cross-component queries must
/// report infinity and per-component answers must be unaffected.
Graph make_disconnected(std::uint64_t seed, std::uint32_t size) {
  const VertexId half = at_least(size / 2, 4);
  const Graph a = gen::random_biconnected(
      half, static_cast<EdgeId>(half + 2), seed);
  const Graph c = gen::cycle(std::max<VertexId>(half / 2, 3), {}, seed + 7);
  Builder b(a.num_vertices() + c.num_vertices() + 1);
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    const auto [u, v] = a.endpoints(e);
    b.add_edge(u, v, a.weight(e));
  }
  const VertexId off = a.num_vertices();
  for (EdgeId e = 0; e < c.num_edges(); ++e) {
    const auto [u, v] = c.endpoints(e);
    b.add_edge(off + u, off + v, c.weight(e));
  }
  return std::move(b).build();
}

std::vector<GraphFamily> build_registry() {
  std::vector<GraphFamily> r;
  r.push_back({"chain_heavy",
               "biconnected core, ~2/3 of vertices on degree-two chains",
               {},
               make_chain_heavy});
  r.push_back({"ring", "pure cycle: one chain with left == right", {},
               make_ring});
  r.push_back({"theta",
               "two hubs joined by 3-5 chains; reduces to parallel edges",
               {},
               make_theta});
  r.push_back({"lollipop",
               "cycle welded to a spoked anchor (left == right, degree > 2)",
               {},
               make_lollipop});
  r.push_back({"block_cut",
               "many biconnected blocks glued in a tree, pendant fringe",
               {},
               make_block_cut});
  r.push_back({"bridge_tree", "random tree: every edge a bridge", {},
               make_bridge_tree});
  r.push_back({"grid_planar", "thinned grid with diagonals (planar)", {},
               make_grid_planar});
  r.push_back({"parallel_multi",
               "multigraph: duplicated edges (lighter/equal/heavier) and "
               "self-loops",
               {.multigraph = true, .degenerate_weights = true},
               make_parallel_multi});
  r.push_back({"degenerate_weights",
               "weights mixing exact zeros, 1e-9, and 1e12",
               {.degenerate_weights = true},
               make_degenerate_weights});
  r.push_back({"sparse_connected", "n + n/4 edges: bridges + small blocks",
               {},
               make_sparse_connected});
  r.push_back({"complete_dense", "complete graph, no degree-two vertices",
               {},
               make_complete_dense});
  r.push_back({"petersen_sub", "subdivided Petersen graph", {},
               make_petersen_sub});
  r.push_back({"disconnected",
               "two components plus an isolated vertex",
               {.disconnected = true},
               make_disconnected});
  return r;
}

}  // namespace

const std::vector<GraphFamily>& families() {
  static const std::vector<GraphFamily> registry = build_registry();
  return registry;
}

const GraphFamily& family(std::string_view name) {
  for (const GraphFamily& f : families()) {
    if (f.name == name) return f;
  }
  std::ostringstream msg;
  msg << "unknown graph family '" << name << "'; valid families:";
  for (const GraphFamily& f : families()) msg << ' ' << f.name;
  throw std::invalid_argument(msg.str());
}

}  // namespace eardec::testing
