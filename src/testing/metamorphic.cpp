#include "testing/metamorphic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <sstream>
#include <vector>

#include "core/distance_oracle.hpp"
#include "graph/builder.hpp"
#include "graph/reorder.hpp"
#include "mcb/ear_mcb.hpp"

namespace eardec::testing {
namespace {

/// Both sides of every metamorphic comparison go through the pipeline, so
/// each contributes up to distance_tolerance worth of cancellation error.
Weight pair_tolerance(const Graph& g, const Graph& h) {
  return distance_tolerance(g) + distance_tolerance(h);
}

/// Exact cycle-space dimension m - n + (#components).
std::size_t cycle_dimension(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<bool> visited(n, false);
  std::size_t components = 0;
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if (visited[s]) continue;
    ++components;
    visited[s] = true;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const graph::HalfEdge& he : g.neighbors(v)) {
        if (!visited[he.to]) {
          visited[he.to] = true;
          stack.push_back(he.to);
        }
      }
    }
  }
  return g.num_edges() + components - n;
}

mcb::McbResult sequential_mcb(const Graph& g) {
  return mcb::minimum_cycle_basis(g,
                                  {.mode = core::ExecutionMode::Sequential});
}

core::ApspOptions sequential_apsp() {
  return {.mode = core::ExecutionMode::Sequential};
}

}  // namespace

Graph relabel_vertices(const Graph& g, std::uint64_t seed) {
  std::vector<VertexId> to_new(g.num_vertices());
  std::iota(to_new.begin(), to_new.end(), 0u);
  std::mt19937_64 rng(seed);
  std::shuffle(to_new.begin(), to_new.end(), rng);
  return graph::reorder_with(g, std::move(to_new)).graph;
}

Graph scale_weights(const Graph& g, Weight factor) {
  graph::Builder b(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    b.add_edge(u, v, g.weight(e) * factor);
  }
  return std::move(b).build();
}

Graph subdivide_edge(const Graph& g, EdgeId e, double t) {
  const auto [u, v] = g.endpoints(e);
  const Weight w = g.weight(e);
  const VertexId x = g.num_vertices();
  graph::Builder b(x + 1);
  for (EdgeId other = 0; other < g.num_edges(); ++other) {
    if (other == e) continue;
    const auto [a, c] = g.endpoints(other);
    b.add_edge(a, c, g.weight(other));
  }
  b.add_edge(u, x, w * t);
  b.add_edge(x, v, w * (1 - t));
  return std::move(b).build();
}

CheckResult check_relabel_invariance(const Graph& g, std::uint64_t seed,
                                     std::size_t mcb_dim_limit) {
  if (g.num_vertices() == 0) return std::nullopt;
  std::vector<VertexId> to_new(g.num_vertices());
  std::iota(to_new.begin(), to_new.end(), 0u);
  std::mt19937_64 rng(seed);
  std::shuffle(to_new.begin(), to_new.end(), rng);
  const Graph h = graph::reorder_with(g, to_new).graph;
  const auto close = [tol = pair_tolerance(g, h)](Weight a, Weight b) {
    return weights_close(a, b, tol);
  };

  const core::DistanceOracle og(g, sequential_apsp());
  const core::DistanceOracle oh(h, sequential_apsp());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const Weight dg = og.distance(u, v);
      const Weight dh = oh.distance(to_new[u], to_new[v]);
      if (!close(dg, dh)) {
        std::ostringstream msg;
        msg.precision(17);
        msg << "relabeling changed distance of pair (" << u << ", " << v
            << "): " << dg << " -> " << dh;
        return msg.str();
      }
    }
  }

  if (mcb_dim_limit == 0 || cycle_dimension(g) <= mcb_dim_limit) {
    const auto rg = sequential_mcb(g);
    const auto rh = sequential_mcb(h);
    if (rg.basis.size() != rh.basis.size() ||
        !close(rg.total_weight, rh.total_weight)) {
      std::ostringstream msg;
      msg.precision(17);
      msg << "relabeling changed the MCB: dim " << rg.basis.size() << " -> "
          << rh.basis.size() << ", weight " << rg.total_weight << " -> "
          << rh.total_weight;
      return msg.str();
    }
  }
  return std::nullopt;
}

CheckResult check_scale_linearity(const Graph& g, std::uint64_t seed,
                                  std::size_t mcb_dim_limit) {
  if (g.num_vertices() == 0) return std::nullopt;
  constexpr Weight kFactors[] = {0.5, 2.0, 3.25, 10.0};
  const Weight factor = kFactors[seed % 4];
  const Graph h = scale_weights(g, factor);
  // The g side's error is scaled by the factor too, and that scaled error
  // equals distance_tolerance(h) because the weight sum scales linearly.
  const auto close = [tol = 2 * distance_tolerance(h) +
                            distance_tolerance(g)](Weight a, Weight b) {
    return weights_close(a, b, tol);
  };

  const core::DistanceOracle og(g, sequential_apsp());
  const core::DistanceOracle oh(h, sequential_apsp());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const Weight want = og.distance(u, v) * factor;
      const Weight got = oh.distance(u, v);
      if (!close(got, want)) {
        std::ostringstream msg;
        msg.precision(17);
        msg << "scaling by " << factor << " broke linearity at pair (" << u
            << ", " << v << "): got " << got << ", want " << want;
        return msg.str();
      }
    }
  }

  if (mcb_dim_limit == 0 || cycle_dimension(g) <= mcb_dim_limit) {
    const auto rg = sequential_mcb(g);
    const auto rh = sequential_mcb(h);
    if (rg.basis.size() != rh.basis.size() ||
        !close(rh.total_weight, rg.total_weight * factor)) {
      std::ostringstream msg;
      msg.precision(17);
      msg << "scaling by " << factor << " broke the MCB: dim "
          << rg.basis.size() << " -> " << rh.basis.size() << ", weight "
          << rg.total_weight << " -> " << rh.total_weight;
      return msg.str();
    }
  }
  return std::nullopt;
}

CheckResult check_subdivision_invariance(const Graph& g, std::uint64_t seed,
                                         std::size_t mcb_dim_limit) {
  if (g.num_edges() == 0) return std::nullopt;
  const EdgeId e = static_cast<EdgeId>(seed % g.num_edges());
  const double t = static_cast<double>((seed >> 8) % 101) / 100.0;
  const Graph h = subdivide_edge(g, e, t);
  const auto close = [tol = pair_tolerance(g, h)](Weight a, Weight b) {
    return weights_close(a, b, tol);
  };

  const core::DistanceOracle og(g, sequential_apsp());
  const core::DistanceOracle oh(h, sequential_apsp());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const Weight before = og.distance(u, v);
      const Weight after = oh.distance(u, v);
      if (!close(before, after)) {
        std::ostringstream msg;
        msg.precision(17);
        msg << "subdividing edge " << e << " (t=" << t
            << ") changed distance of original pair (" << u << ", " << v
            << "): " << before << " -> " << after;
        return msg.str();
      }
    }
  }

  if (mcb_dim_limit == 0 || cycle_dimension(g) <= mcb_dim_limit) {
    const auto rg = sequential_mcb(g);
    const auto rh = sequential_mcb(h);
    if (rg.basis.size() != rh.basis.size() ||
        !close(rg.total_weight, rh.total_weight)) {
      std::ostringstream msg;
      msg.precision(17);
      msg << "subdividing edge " << e << " changed the MCB: dim "
          << rg.basis.size() << " -> " << rh.basis.size() << ", weight "
          << rg.total_weight << " -> " << rh.total_weight;
      return msg.str();
    }
  }
  return std::nullopt;
}

}  // namespace eardec::testing
