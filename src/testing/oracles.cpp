#include "testing/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <sstream>
#include <vector>

#include <cstring>
#include <random>

#include "core/distance_oracle.hpp"
#include "mcb/depina.hpp"
#include "serve/oracle_server.hpp"
#include "mcb/ear_mcb.hpp"
#include "mcb/horton.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/floyd_warshall.hpp"

namespace eardec::testing {

using graph::EdgeId;
using graph::VertexId;
using graph::Weight;

Weight distance_tolerance(const Graph& g) {
  Weight sum = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (std::isfinite(g.weight(e))) sum += g.weight(e);
  }
  return (64.0 + static_cast<Weight>(g.num_edges())) *
         std::numeric_limits<Weight>::epsilon() * sum;
}

bool weights_close(Weight a, Weight b, Weight abs_tol) {
  if (a == b) return true;  // covers the +inf / +inf unreachable case
  if (std::isinf(a) || std::isinf(b)) return false;
  const Weight scale = std::max<Weight>({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= 1e-9 * scale + abs_tol;
}

namespace {

std::string describe_mismatch(std::string_view what, VertexId u, VertexId v,
                              Weight got, Weight want) {
  std::ostringstream msg;
  msg.precision(17);
  msg << what << " mismatch at pair (" << u << ", " << v << "): got " << got
      << ", reference " << want;
  return msg.str();
}

}  // namespace

CheckResult check_apsp_vs_dijkstra(const Graph& g,
                                   const core::ApspOptions& options) {
  if (g.num_vertices() == 0) return std::nullopt;
  const auto close = [tol = distance_tolerance(g)](Weight a, Weight b) {
    return weights_close(a, b, tol);
  };
  const core::DistanceOracle oracle(g, options);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    const auto ref = sssp::dijkstra(g, s);
    const auto row = oracle.engine().distances_from(s);
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      if (!close(oracle.distance(s, t), ref.dist[t])) {
        return describe_mismatch("DistanceOracle::distance", s, t,
                                 oracle.distance(s, t), ref.dist[t]);
      }
      if (!close(row[t], ref.dist[t])) {
        return describe_mismatch("distances_from", s, t, row[t], ref.dist[t]);
      }
    }
  }
  return std::nullopt;
}

CheckResult check_apsp_vs_floyd_warshall(const Graph& g) {
  if (g.num_vertices() == 0) return std::nullopt;
  const auto close = [tol = distance_tolerance(g)](Weight a, Weight b) {
    return weights_close(a, b, tol);
  };
  const auto ours = core::ear_apsp_matrix(
      g, {.mode = core::ExecutionMode::Sequential});
  const auto ref = sssp::floyd_warshall(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (!close(ours.at(u, v), ref.at(u, v))) {
        return describe_mismatch("ear_apsp_matrix", u, v, ours.at(u, v),
                                 ref.at(u, v));
      }
    }
  }
  return std::nullopt;
}

namespace {

CheckResult compare_mcb(const Graph& g, const mcb::McbResult& ours,
                        std::size_t ref_dim, Weight ref_weight,
                        std::string_view ref_name) {
  const auto close = [tol = distance_tolerance(g)](Weight a, Weight b) {
    return weights_close(a, b, tol);
  };
  if (ours.basis.size() != ref_dim) {
    std::ostringstream msg;
    msg << "MCB dimension mismatch vs " << ref_name << ": got "
        << ours.basis.size() << ", reference " << ref_dim;
    return msg.str();
  }
  if (!close(ours.total_weight, ref_weight)) {
    std::ostringstream msg;
    msg.precision(17);
    msg << "MCB weight mismatch vs " << ref_name << ": got "
        << ours.total_weight << ", reference " << ref_weight;
    return msg.str();
  }
  if (!mcb::validate_basis(g, ours)) {
    return std::string("MCB result is not a valid cycle basis (vs ") +
           std::string(ref_name) + ")";
  }
  return std::nullopt;
}

}  // namespace

CheckResult check_mcb_vs_horton(const Graph& g) {
  const auto ours = mcb::minimum_cycle_basis(
      g, {.mode = core::ExecutionMode::Sequential});
  const auto ref = mcb::horton_mcb(g);
  return compare_mcb(g, ours, ref.basis.size(), ref.total_weight, "Horton");
}

CheckResult check_mcb_vs_depina(const Graph& g) {
  const auto with_ears = mcb::minimum_cycle_basis(
      g, {.mode = core::ExecutionMode::Sequential,
          .use_ear_decomposition = true});
  const auto ref = mcb::depina_mcb(g);
  if (auto fail = compare_mcb(g, with_ears, ref.basis.size(),
                              ref.total_weight, "DePina")) {
    return fail;
  }
  // Lemma 3.1: contraction must not change dimension or weight.
  const auto without = mcb::minimum_cycle_basis(
      g, {.mode = core::ExecutionMode::Sequential,
          .use_ear_decomposition = false});
  if (with_ears.basis.size() != without.basis.size() ||
      !weights_close(with_ears.total_weight, without.total_weight,
                     distance_tolerance(g))) {
    std::ostringstream msg;
    msg.precision(17);
    msg << "ear contraction changed the MCB: with ears dim="
        << with_ears.basis.size() << " weight=" << with_ears.total_weight
        << ", without dim=" << without.basis.size()
        << " weight=" << without.total_weight;
    return msg.str();
  }
  return std::nullopt;
}

CheckResult check_depina_vs_scalar_reference(const Graph& g) {
  const auto ref = mcb::depina_mcb_reference(g);
  const auto opt = mcb::depina_mcb(g);
  if (opt.basis.size() != ref.basis.size()) {
    std::ostringstream msg;
    msg << "optimized De Pina dimension " << opt.basis.size()
        << " != scalar reference " << ref.basis.size();
    return msg.str();
  }
  if (opt.total_weight != ref.total_weight) {  // bit-for-bit, no tolerance
    std::ostringstream msg;
    msg.precision(17);
    msg << "optimized De Pina weight " << opt.total_weight
        << " != scalar reference " << ref.total_weight;
    return msg.str();
  }
  // Phase order and the signed-graph search are deterministic, so the two
  // drivers must select the very same cycles, not just equal totals.
  for (std::size_t i = 0; i < ref.basis.size(); ++i) {
    if (opt.basis[i].edges != ref.basis[i].edges) {
      std::ostringstream msg;
      msg << "optimized De Pina picked a different cycle at phase " << i
          << " (" << opt.basis[i].edges.size() << " vs "
          << ref.basis[i].edges.size() << " edges)";
      return msg.str();
    }
  }
  // The Mehlhorn–Michail driver shares the new GF(2) kernels; its basis
  // selection differs (candidate store vs signed graph) but dimension and
  // minimum weight are unique.
  const auto mm = mcb::minimum_cycle_basis(
      g, {.mode = core::ExecutionMode::Sequential,
          .use_ear_decomposition = false});
  return compare_mcb(g, mm, ref.basis.size(), ref.total_weight,
                     "scalar DePina");
}

CheckResult check_served_queries_vs_dijkstra(const Graph& g,
                                             std::uint64_t seed) {
  if (g.num_vertices() == 0) return std::nullopt;
  const auto close = [tol = distance_tolerance(g)](Weight a, Weight b) {
    return weights_close(a, b, tol);
  };

  serve::ServeOptions tables_opts;
  tables_opts.build = {.mode = core::ExecutionMode::Sequential};
  tables_opts.batch_engine = serve::BatchEngine::Tables;
  tables_opts.legs_per_unit = 7;  // odd size: force multi-unit batches
  const serve::OracleServer tables(g, tables_opts);

  serve::ServeOptions recompute_opts;
  recompute_opts.build = {.mode = core::ExecutionMode::Multicore,
                          .cpu_threads = 3};
  recompute_opts.batch_engine = serve::BatchEngine::Recompute;
  recompute_opts.legs_per_unit = 5;
  const serve::OracleServer recompute(g, recompute_opts);

  // Every pair once, in seed-shuffled order: batch composition (which legs
  // share a unit, which worker drains them) must not affect any answer.
  std::vector<serve::Query> batch;
  batch.reserve(static_cast<std::size_t>(g.num_vertices()) *
                g.num_vertices());
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      batch.push_back({s, t});
    }
  }
  std::shuffle(batch.begin(), batch.end(), std::mt19937_64(seed));

  const std::vector<Weight> via_tables = tables.query_batch(batch);
  const std::vector<Weight> via_recompute = recompute.query_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const serve::Query q = batch[i];
    const Weight scalar = tables.query(q.s, q.t);
    // Serving determinism: every serve path bitwise-identical.
    if (std::memcmp(&via_tables[i], &scalar, sizeof(Weight)) != 0) {
      return describe_mismatch("served batch (Tables) vs scalar", q.s, q.t,
                               via_tables[i], scalar);
    }
    if (std::memcmp(&via_recompute[i], &scalar, sizeof(Weight)) != 0) {
      return describe_mismatch("served batch (Recompute) vs scalar", q.s,
                               q.t, via_recompute[i], scalar);
    }
  }
  // Correctness: scalar answers vs an independent Dijkstra per source.
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    const auto ref = sssp::dijkstra(g, s);
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      const Weight got = tables.query(s, t);
      if (!close(got, ref.dist[t])) {
        return describe_mismatch("served scalar vs Dijkstra", s, t, got,
                                 ref.dist[t]);
      }
    }
  }
  return std::nullopt;
}

namespace {

/// The deliberately broken SSSP: per vertex, only the first half-edge to
/// each distinct neighbour is relaxed, so later-added parallel edges are
/// invisible. Self-loops are skipped (they never relax anything anyway).
std::vector<Weight> buggy_first_edge_dijkstra(const Graph& g, VertexId s) {
  std::vector<Weight> dist(g.num_vertices(), graph::kInfWeight);
  using Item = std::pair<Weight, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[s] = 0;
  pq.emplace(0, s);
  std::vector<bool> seen(g.num_vertices(), false);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    std::fill(seen.begin(), seen.end(), false);
    for (const graph::HalfEdge& he : g.neighbors(v)) {
      if (he.to == v) continue;
      if (seen[he.to]) continue;  // THE BUG: later parallels never relax
      seen[he.to] = true;
      if (d + he.weight < dist[he.to]) {
        dist[he.to] = d + he.weight;
        pq.emplace(dist[he.to], he.to);
      }
    }
  }
  return dist;
}

}  // namespace

CheckResult check_injected_parallel_bug(const Graph& g) {
  const auto close = [tol = distance_tolerance(g)](Weight a, Weight b) {
    return weights_close(a, b, tol);
  };
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    const auto ref = sssp::dijkstra(g, s);
    const auto buggy = buggy_first_edge_dijkstra(g, s);
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      if (!close(buggy[t], ref.dist[t])) {
        return describe_mismatch("injected first-parallel-edge bug", s, t,
                                 buggy[t], ref.dist[t]);
      }
    }
  }
  return std::nullopt;
}

}  // namespace eardec::testing
