// The property-test runner: crosses every selected graph family with every
// selected property check over a deterministic seed schedule, shrinks any
// failure to a minimal counterexample, and reports coverage through both
// the returned report and the process-wide obs metrics registry
// (fuzz.runs, fuzz.failures, fuzz.shrink.steps, fuzz.family.<name>.runs,
// fuzz.check.<name>.runs). Every run is reproducible from its printed
// seed: `eardec_fuzz --seed S --family F --check C --runs 1` replays one
// failing instance bit-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "testing/families.hpp"
#include "testing/oracles.hpp"  // CheckResult

namespace eardec::testing {

/// What a check validates; selects default size hints and family skips.
enum class CheckKind {
  Differential,  ///< pipeline vs independent reference implementation
  Metamorphic,   ///< pipeline vs itself across a transformation
  Fault,         ///< adversarial scheduler configurations (hetero runtime)
  Injected,      ///< deliberately broken; validates the harness itself
};

struct PropertyCheck {
  std::string name;
  std::string description;
  CheckKind kind = CheckKind::Differential;
  /// Included when no explicit --check selection is given. Fault checks
  /// join the default set only under --fault-injection; injected checks
  /// must always be selected explicitly.
  bool default_enabled = true;
  bool skip_multigraph = false;
  bool skip_degenerate_weights = false;
  /// Vertex-count hint handed to the family generator (MCB-heavy checks
  /// use smaller graphs than pure APSP checks).
  std::uint32_t size_hint = 24;
  std::function<CheckResult(const Graph&, std::uint64_t seed)> run;
};

/// All registered checks in fixed (iteration/report) order.
[[nodiscard]] const std::vector<PropertyCheck>& property_checks();

/// Lookup by name; throws std::invalid_argument listing valid names.
[[nodiscard]] const PropertyCheck& property_check(std::string_view name);

struct RunnerOptions {
  std::uint64_t seed = 1;
  /// Seeds per (family, check) pair.
  std::uint32_t runs = 10;
  /// Overrides every check's size hint when non-zero.
  std::uint32_t size = 0;
  /// Family / check name selections; empty = defaults.
  std::vector<std::string> families;
  std::vector<std::string> checks;
  /// Adds the Fault-kind checks to the default selection.
  bool fault_injection = false;
  /// Shrink failing inputs before reporting.
  bool shrink = true;
  std::size_t max_shrink_attempts = 4000;
  /// Progress / failure stream (null = silent).
  std::ostream* out = nullptr;
};

struct Counterexample {
  std::string family;
  std::string check;
  std::uint64_t seed = 0;       ///< replay seed of the failing run
  std::string message;          ///< failure message on the original input
  std::string minimal_message;  ///< failure message on the shrunken input
  graph::Graph minimal;         ///< shrunken witness (== input if !shrink)
  std::size_t shrink_steps = 0;
  std::size_t shrink_attempts = 0;
};

struct RunnerReport {
  std::uint64_t runs_executed = 0;
  std::vector<Counterexample> failures;
  /// Coverage: runs per family name / per check name (every generated
  /// graph counts once per check executed on it).
  std::map<std::string, std::uint64_t> family_runs;
  std::map<std::string, std::uint64_t> check_runs;
  /// Families that exercised each check at least once.
  std::map<std::string, std::uint64_t> families_per_check;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Executes the schedule. Deterministic end to end: the same options
/// produce bit-identical reports (and bit-identical `out` text).
[[nodiscard]] RunnerReport run_properties(const RunnerOptions& options);

/// The graph/check seed of run index i under master seed s. Defined so
/// that index 0 IS the master seed: a failure printed with seed S replays
/// exactly via `--seed S --runs 1 --family F --check C`.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master,
                                        std::uint32_t run_index);

/// Writes the deterministic textual report (the eardec_fuzz output).
void write_report(std::ostream& out, const RunnerOptions& options,
                  const RunnerReport& report);

}  // namespace eardec::testing
