#include "testing/shrink.hpp"

#include <sstream>
#include <utility>
#include <vector>

#include "graph/builder.hpp"

namespace eardec::testing {
namespace {

using graph::Builder;
using graph::Weight;

/// Rebuilds g with a per-edge keep/rewrite filter and an optional vertex
/// drop (ids above the dropped vertex shift down by one).
Graph rebuild_without_vertex(const Graph& g, VertexId drop) {
  Builder b(g.num_vertices() - 1);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (u == drop || v == drop) continue;
    b.add_edge(u > drop ? u - 1 : u, v > drop ? v - 1 : v, g.weight(e));
  }
  return std::move(b).build();
}

}  // namespace

std::optional<Graph> delete_vertex(const Graph& g, VertexId v) {
  if (g.num_vertices() <= 1 || v >= g.num_vertices()) return std::nullopt;
  return rebuild_without_vertex(g, v);
}

std::optional<Graph> delete_edge(const Graph& g, EdgeId e) {
  if (e >= g.num_edges()) return std::nullopt;
  Builder b(g.num_vertices());
  for (EdgeId other = 0; other < g.num_edges(); ++other) {
    if (other == e) continue;
    const auto [u, v] = g.endpoints(other);
    b.add_edge(u, v, g.weight(other));
  }
  return std::move(b).build();
}

std::optional<Graph> smooth_vertex(const Graph& g, VertexId v) {
  if (v >= g.num_vertices() || g.degree(v) != 2) return std::nullopt;
  const auto nb = g.neighbors(v);
  if (nb[0].to == v || nb[1].to == v) return std::nullopt;  // self-loop
  const VertexId a = nb[0].to, c = nb[1].to;
  const Weight w = nb[0].weight + nb[1].weight;
  Builder b(g.num_vertices() - 1);
  const auto map = [v](VertexId x) { return x > v ? x - 1 : x; };
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [x, y] = g.endpoints(e);
    if (x == v || y == v) continue;
    b.add_edge(map(x), map(y), g.weight(e));
  }
  b.add_edge(map(a), map(c), w);  // may be a self-loop when a == c
  return std::move(b).build();
}

std::optional<Graph> normalize_weight(const Graph& g, EdgeId e) {
  if (e >= g.num_edges() || g.weight(e) == 1.0) return std::nullopt;
  Builder b(g.num_vertices());
  for (EdgeId other = 0; other < g.num_edges(); ++other) {
    const auto [u, v] = g.endpoints(other);
    b.add_edge(u, v, other == e ? Weight{1} : g.weight(other));
  }
  return std::move(b).build();
}

ShrinkResult shrink(const Graph& g, const FailurePredicate& pred,
                    const ShrinkOptions& options) {
  ShrinkResult result;
  result.minimal = g;

  const auto reproduces = [&](const Graph& candidate) {
    ++result.attempts;
    try {
      return pred(candidate);
    } catch (...) {
      return true;  // a crash on the candidate is a failure too
    }
  };
  const auto budget_left = [&] {
    if (result.attempts < options.max_attempts) return true;
    result.attempt_budget_hit = true;
    return false;
  };

  bool changed = true;
  while (changed && budget_left()) {
    changed = false;

    // Pass 1: vertex deletions — the biggest structural wins first.
    for (VertexId v = 0; v < result.minimal.num_vertices() && budget_left();) {
      auto candidate = delete_vertex(result.minimal, v);
      if (candidate && reproduces(*candidate)) {
        result.minimal = std::move(*candidate);
        ++result.steps;
        changed = true;  // ids shifted: retry the same index
      } else {
        ++v;
      }
    }

    // Pass 2: edge deletions.
    for (EdgeId e = 0; e < result.minimal.num_edges() && budget_left();) {
      auto candidate = delete_edge(result.minimal, e);
      if (candidate && reproduces(*candidate)) {
        result.minimal = std::move(*candidate);
        ++result.steps;
        changed = true;
      } else {
        ++e;
      }
    }

    // Pass 3: smooth degree-two vertices (undo ear subdivisions).
    for (VertexId v = 0; v < result.minimal.num_vertices() && budget_left();) {
      auto candidate = smooth_vertex(result.minimal, v);
      if (candidate && reproduces(*candidate)) {
        result.minimal = std::move(*candidate);
        ++result.steps;
        changed = true;
      } else {
        ++v;
      }
    }

    // Pass 4: weight normalization (only once the structure is minimal,
    // so counterexamples print with the simplest weights that still fail).
    if (!changed) {
      for (EdgeId e = 0; e < result.minimal.num_edges() && budget_left();
           ++e) {
        auto candidate = normalize_weight(result.minimal, e);
        if (candidate && reproduces(*candidate)) {
          result.minimal = std::move(*candidate);
          ++result.steps;
          changed = true;
        }
      }
    }
  }
  return result;
}

std::string format_graph(const Graph& g) {
  std::ostringstream out;
  out.precision(17);
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    out << u << ' ' << v << ' ' << g.weight(e) << '\n';
  }
  return out.str();
}

}  // namespace eardec::testing
