// Differential oracles: run the ear-decomposition pipeline against an
// independent reference implementation on the same input and report the
// first discrepancy. A check returns std::nullopt on success or a
// human-readable failure message; messages carry the offending pair /
// quantity so shrunken counterexamples stay diagnosable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/ear_apsp.hpp"
#include "graph/graph.hpp"

namespace eardec::testing {

using graph::Graph;

/// std::nullopt = property holds; otherwise the failure description.
using CheckResult = std::optional<std::string>;

/// Absolute comparison slack for distances computed on g. The pipeline's
/// chain bookkeeping derives one chain direction by subtracting prefix sums
/// from the chain total, so on graphs mixing weight magnitudes (1e-9 next
/// to 1e12) a distance can lose up to ~m ulps of the heaviest path weight
/// to catastrophic cancellation. (64 + m) * eps * sum(w) bounds that while
/// staying far below any genuine algorithmic error, which is at least the
/// weight of some mis-handled edge.
[[nodiscard]] graph::Weight distance_tolerance(const Graph& g);

/// a ~ b under a 1e-9 relative band plus the abs_tol absolute band.
/// Exact equality short-circuits, covering +inf == +inf (both unreachable).
[[nodiscard]] bool weights_close(graph::Weight a, graph::Weight b,
                                 graph::Weight abs_tol);

/// DistanceOracle (compact queries) and EarApspEngine::distances_from rows
/// against a per-source reference Dijkstra, every source. Uses the options'
/// execution mode (Sequential unless fault injection overrides it).
[[nodiscard]] CheckResult check_apsp_vs_dijkstra(
    const Graph& g, const core::ApspOptions& options);

/// ear_apsp_matrix (the paper-faithful materialized product) against plain
/// Floyd-Warshall, all n^2 entries.
[[nodiscard]] CheckResult check_apsp_vs_floyd_warshall(const Graph& g);

/// Ear-contracted MCB (weight, dimension, basis validity) against Horton's
/// baseline. Horton's candidate-set argument assumes generic weights, so
/// the runner skips degenerate-weight families for this check.
[[nodiscard]] CheckResult check_mcb_vs_horton(const Graph& g);

/// Ear-contracted MCB against De Pina's witness algorithm, plus the
/// Lemma 3.1 invariance: with/without ear contraction must agree.
[[nodiscard]] CheckResult check_mcb_vs_depina(const Graph& g);

/// The GF(2)-overhaul differential: the optimized bit-sliced De Pina
/// (WitnessMatrix, sparse supports, range early-exit) must be bit-for-bit
/// identical — dimension, total weight, and every cycle's edge set — to
/// the preserved pre-overhaul scalar loop (depina_mcb_reference). Also
/// pins the Mehlhorn–Michail driver's dimension and weight to the same
/// reference. Runs on every family, multigraph and degenerate weights
/// included (the kernels are weight-agnostic).
[[nodiscard]] CheckResult check_depina_vs_scalar_reference(const Graph& g);

/// The serving layer's differential: every (s, t) pair answered through
/// OracleServer's scalar path, the batched Tables engine (Sequential
/// drain) and the batched Recompute engine (Multicore drain, fresh SSSP
/// rows per work unit). Scalar answers are compared against per-source
/// Dijkstra under the tolerance; the three serve paths are compared
/// against *each other* bit for bit — the serving determinism contract.
/// `seed` shuffles the batch order, so unit grouping and drain order are
/// exercised as irrelevant.
[[nodiscard]] CheckResult check_served_queries_vs_dijkstra(const Graph& g,
                                                           std::uint64_t seed);

/// Intentionally broken differential check used to validate the harness
/// end-to-end (acceptance: the bug must be caught and shrunk to <= 10
/// vertices). The "implementation under test" is a Dijkstra variant that
/// relaxes only the first adjacency entry per distinct neighbour — i.e. it
/// ignores all but the first-added parallel edge, the classic bug the
/// Builder KeepMinWeight policy exists to prevent. It disagrees with the
/// real Dijkstra exactly when a later-added parallel edge is lighter and
/// lies on some shortest path.
[[nodiscard]] CheckResult check_injected_parallel_bug(const Graph& g);

}  // namespace eardec::testing
