#include "testing/runner.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/distance_oracle.hpp"
#include "mcb/depina.hpp"
#include "mcb/ear_mcb.hpp"
#include "obs/metrics.hpp"
#include "testing/metamorphic.hpp"
#include "testing/shrink.hpp"

namespace eardec::testing {
namespace {

using graph::VertexId;
using graph::Weight;

constexpr std::size_t kMcbDimLimit = 40;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// ------------------------------------------------- fault-injection checks

/// One adversarial scheduler configuration, derived from the run seed.
core::ApspOptions adversarial_apsp_options(std::uint64_t seed, int which) {
  core::ApspOptions o;
  switch (which) {
    case 0:
      o.mode = core::ExecutionMode::Sequential;
      break;
    case 1:  // forced CPU-only with the most contended settings
      o.mode = core::ExecutionMode::Multicore;
      o.cpu_threads = static_cast<unsigned>(1 + seed % 4);
      o.cpu_batch = 1;
      o.sources_per_unit = 1;
      break;
    case 2:  // forced device-only, tiny warps
      o.mode = core::ExecutionMode::DeviceOnly;
      o.device.workers = static_cast<unsigned>(1 + (seed >> 2) % 3);
      o.device.warp_size = 1u << ((seed >> 4) % 4);  // 1, 2, 4, or 8
      o.sources_per_unit = static_cast<std::uint32_t>(1 + (seed >> 6) % 5);
      break;
    default:  // heterogeneous with adversarial batch geometry
      o.mode = core::ExecutionMode::Heterogeneous;
      o.cpu_threads = static_cast<unsigned>(1 + (seed >> 8) % 3);
      o.device.workers = static_cast<unsigned>(1 + (seed >> 10) % 2);
      o.device.warp_size = static_cast<unsigned>(1 + (seed >> 12) % 7);
      o.cpu_batch = static_cast<std::size_t>(1 + (seed >> 14) % 7);
      o.device_batch = static_cast<std::size_t>(1 + (seed >> 17) % 5);
      o.sources_per_unit = static_cast<std::uint32_t>(1 + (seed >> 20) % 9);
      break;
  }
  return o;
}

std::string describe(const core::ApspOptions& o) {
  std::ostringstream s;
  const char* mode = o.mode == core::ExecutionMode::Sequential ? "seq"
                     : o.mode == core::ExecutionMode::Multicore ? "mc"
                     : o.mode == core::ExecutionMode::DeviceOnly ? "dev"
                                                                 : "hetero";
  s << "mode=" << mode << " threads=" << o.cpu_threads
    << " dev.workers=" << o.device.workers << " warp=" << o.device.warp_size
    << " cpu_batch=" << o.cpu_batch << " device_batch=" << o.device_batch
    << " sources_per_unit=" << o.sources_per_unit;
  return s.str();
}

/// Drives the hetero scheduler through adversarial configurations and
/// checks every one against Dijkstra, plus a bitwise same-config
/// determinism run for the heterogeneous configuration.
CheckResult check_scheduler_apsp(const Graph& g, std::uint64_t seed) {
  for (int which = 0; which < 4; ++which) {
    const auto options = adversarial_apsp_options(seed, which);
    if (auto fail = check_apsp_vs_dijkstra(g, options)) {
      return *fail + " [" + describe(options) + "]";
    }
  }
  const auto options = adversarial_apsp_options(seed, 3);
  const core::DistanceOracle a(g, options);
  const core::DistanceOracle b(g, options);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (a.distance(u, v) != b.distance(u, v)) {  // bitwise, intentionally
        std::ostringstream msg;
        msg.precision(17);
        msg << "scheduler nondeterminism at pair (" << u << ", " << v
            << "): " << a.distance(u, v) << " vs " << b.distance(u, v)
            << " [" << describe(options) << "]";
        return msg.str();
      }
    }
  }
  return std::nullopt;
}

mcb::McbOptions adversarial_mcb_options(std::uint64_t seed, int which) {
  mcb::McbOptions o;
  o.cpu_threads = static_cast<unsigned>(1 + (seed >> 3) % 3);
  o.device.workers = static_cast<unsigned>(1 + (seed >> 5) % 2);
  o.device.warp_size = 1u << ((seed >> 7) % 4);
  // Degenerate logical batches.
  o.batch_size = static_cast<std::uint32_t>(1 + (seed >> 9) % 5);
  switch (which) {
    case 0: o.mode = core::ExecutionMode::Sequential; break;
    case 1: o.mode = core::ExecutionMode::Multicore; break;
    case 2: o.mode = core::ExecutionMode::DeviceOnly; break;
    default: o.mode = core::ExecutionMode::Heterogeneous; break;
  }
  return o;
}

CheckResult check_scheduler_mcb(const Graph& g, std::uint64_t seed) {
  const auto ref = mcb::depina_mcb(g);
  for (int which = 0; which < 4; ++which) {
    const auto options = adversarial_mcb_options(seed, which);
    const auto r = mcb::minimum_cycle_basis(g, options);
    if (r.basis.size() != ref.basis.size()) {
      std::ostringstream msg;
      msg << "MCB dimension " << r.basis.size() << " != DePina "
          << ref.basis.size() << " under adversarial config " << which;
      return msg.str();
    }
    if (!weights_close(r.total_weight, ref.total_weight,
                       distance_tolerance(g))) {
      std::ostringstream msg;
      msg.precision(17);
      msg << "MCB weight " << r.total_weight << " != DePina "
          << ref.total_weight << " under adversarial config " << which;
      return msg.str();
    }
  }
  // Same-config determinism, including the cycle edge sets.
  const auto options = adversarial_mcb_options(seed, 3);
  const auto r1 = mcb::minimum_cycle_basis(g, options);
  const auto r2 = mcb::minimum_cycle_basis(g, options);
  if (r1.basis.size() != r2.basis.size()) {
    return std::string("MCB scheduler nondeterminism: basis sizes differ");
  }
  for (std::size_t i = 0; i < r1.basis.size(); ++i) {
    if (r1.basis[i].edges != r2.basis[i].edges) {
      std::ostringstream msg;
      msg << "MCB scheduler nondeterminism: cycle " << i
          << " differs between identical runs";
      return msg.str();
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------- registry

std::vector<PropertyCheck> build_checks() {
  std::vector<PropertyCheck> r;
  r.push_back({.name = "apsp_dijkstra",
               .description = "DistanceOracle + distances_from vs Dijkstra",
               .kind = CheckKind::Differential,
               .size_hint = 28,
               .run = [](const Graph& g, std::uint64_t) {
                 return check_apsp_vs_dijkstra(
                     g, {.mode = core::ExecutionMode::Sequential});
               }});
  r.push_back({.name = "apsp_floyd",
               .description = "ear_apsp_matrix vs Floyd-Warshall",
               .kind = CheckKind::Differential,
               .size_hint = 20,
               .run = [](const Graph& g, std::uint64_t) {
                 return check_apsp_vs_floyd_warshall(g);
               }});
  r.push_back({.name = "mcb_horton",
               .description = "ear MCB weight+dimension vs Horton",
               .kind = CheckKind::Differential,
               .skip_degenerate_weights = true,
               .size_hint = 18,
               .run = [](const Graph& g, std::uint64_t) {
                 return check_mcb_vs_horton(g);
               }});
  r.push_back({.name = "mcb_depina",
               .description =
                   "ear MCB weight+dimension vs DePina (+ Lemma 3.1)",
               .kind = CheckKind::Differential,
               .size_hint = 16,
               .run = [](const Graph& g, std::uint64_t) {
                 return check_mcb_vs_depina(g);
               }});
  r.push_back({.name = "mcb_depina_scalar",
               .description =
                   "bit-sliced De Pina bit-for-bit vs pre-overhaul scalar loop",
               .kind = CheckKind::Differential,
               .size_hint = 14,
               .run = [](const Graph& g, std::uint64_t) {
                 return check_depina_vs_scalar_reference(g);
               }});
  r.push_back({.name = "serve_mix",
               .description =
                   "OracleServer scalar/batched(Tables)/batched(Recompute) "
                   "vs Dijkstra; serve paths bitwise-identical",
               .kind = CheckKind::Differential,
               .size_hint = 22,
               .run = [](const Graph& g, std::uint64_t seed) {
                 return check_served_queries_vs_dijkstra(g, seed);
               }});
  r.push_back({.name = "relabel",
               .description = "vertex-relabeling invariance (APSP + MCB)",
               .kind = CheckKind::Metamorphic,
               .size_hint = 18,
               .run = [](const Graph& g, std::uint64_t seed) {
                 return check_relabel_invariance(g, seed, kMcbDimLimit);
               }});
  r.push_back({.name = "scale",
               .description = "uniform weight-scaling linearity (APSP + MCB)",
               .kind = CheckKind::Metamorphic,
               .size_hint = 18,
               .run = [](const Graph& g, std::uint64_t seed) {
                 return check_scale_linearity(g, seed, kMcbDimLimit);
               }});
  r.push_back({.name = "subdivide",
               .description =
                   "edge-subdivision invariance of distances and MCB",
               .kind = CheckKind::Metamorphic,
               .size_hint = 18,
               .run = [](const Graph& g, std::uint64_t seed) {
                 return check_subdivision_invariance(g, seed, kMcbDimLimit);
               }});
  r.push_back({.name = "sched_apsp",
               .description =
                   "hetero scheduler fault injection: adversarial batch "
                   "sizes, thread counts, CPU-only/device-only splits",
               .kind = CheckKind::Fault,
               .default_enabled = false,
               .size_hint = 24,
               .run = check_scheduler_apsp});
  r.push_back({.name = "sched_mcb",
               .description =
                   "MCB scheduler fault injection across execution modes",
               .kind = CheckKind::Fault,
               .default_enabled = false,
               .size_hint = 14,
               .run = check_scheduler_mcb});
  r.push_back({.name = "injected_parallel_bug",
               .description =
                   "deliberately broken Dijkstra (first parallel edge "
                   "only) - validates catch + shrink",
               .kind = CheckKind::Injected,
               .default_enabled = false,
               .size_hint = 20,
               .run = [](const Graph& g, std::uint64_t) {
                 return check_injected_parallel_bug(g);
               }});
  return r;
}

obs::Counter& fuzz_counter(const std::string& name) {
  return obs::MetricsRegistry::instance().counter(name);
}

}  // namespace

const std::vector<PropertyCheck>& property_checks() {
  static const std::vector<PropertyCheck> registry = build_checks();
  return registry;
}

const PropertyCheck& property_check(std::string_view name) {
  for (const PropertyCheck& c : property_checks()) {
    if (c.name == name) return c;
  }
  std::ostringstream msg;
  msg << "unknown property check '" << name << "'; valid checks:";
  for (const PropertyCheck& c : property_checks()) msg << ' ' << c.name;
  throw std::invalid_argument(msg.str());
}

std::uint64_t derive_seed(std::uint64_t master, std::uint32_t run_index) {
  return run_index == 0 ? master : splitmix64(master + run_index);
}

RunnerReport run_properties(const RunnerOptions& options) {
  // Resolve selections up front (throws on unknown names).
  std::vector<const GraphFamily*> fams;
  if (options.families.empty()) {
    for (const GraphFamily& f : families()) fams.push_back(&f);
  } else {
    for (const std::string& name : options.families)
      fams.push_back(&family(name));
  }
  std::vector<const PropertyCheck*> checks;
  if (options.checks.empty()) {
    for (const PropertyCheck& c : property_checks()) {
      if (c.default_enabled ||
          (options.fault_injection && c.kind == CheckKind::Fault)) {
        checks.push_back(&c);
      }
    }
  } else {
    for (const std::string& name : options.checks)
      checks.push_back(&property_check(name));
  }

  RunnerReport report;
  std::map<std::string, std::set<std::string>> families_seen;

  for (const PropertyCheck* chk : checks) {
    for (const GraphFamily* fam : fams) {
      if ((chk->skip_multigraph && fam->tags.multigraph) ||
          (chk->skip_degenerate_weights && fam->tags.degenerate_weights)) {
        continue;
      }
      const std::uint32_t size =
          options.size != 0 ? options.size : chk->size_hint;
      std::uint64_t pair_failures = 0;
      for (std::uint32_t i = 0; i < options.runs; ++i) {
        const std::uint64_t seed = derive_seed(options.seed, i);
        const Graph g = fam->make(seed, size);
        CheckResult result;
        try {
          result = chk->run(g, seed);
        } catch (const std::exception& e) {
          result = std::string("exception: ") + e.what();
        }
        ++report.runs_executed;
        ++report.family_runs[fam->name];
        ++report.check_runs[chk->name];
        families_seen[chk->name].insert(fam->name);
        fuzz_counter("fuzz.runs").add();
        fuzz_counter("fuzz.family." + fam->name + ".runs").add();
        fuzz_counter("fuzz.check." + chk->name + ".runs").add();
        if (!result) continue;

        ++pair_failures;
        fuzz_counter("fuzz.failures").add();
        Counterexample cex;
        cex.family = fam->name;
        cex.check = chk->name;
        cex.seed = seed;
        cex.message = *result;
        cex.minimal = g;
        if (options.shrink) {
          const auto sr =
              shrink(g,
                     [&](const Graph& candidate) {
                       return chk->run(candidate, seed).has_value();
                     },
                     {.max_attempts = options.max_shrink_attempts});
          cex.minimal = sr.minimal;
          cex.shrink_steps = sr.steps;
          cex.shrink_attempts = sr.attempts;
          fuzz_counter("fuzz.shrink.total_steps").add(sr.steps);
          obs::MetricsRegistry::instance()
              .histogram("fuzz.shrink.steps")
              .record(sr.steps);
        }
        try {
          if (auto minimal_result = chk->run(cex.minimal, seed)) {
            cex.minimal_message = *minimal_result;
          }
        } catch (const std::exception& e) {
          cex.minimal_message = std::string("exception: ") + e.what();
        }
        report.failures.push_back(std::move(cex));
      }
      if (options.out) {
        *options.out << "[" << fam->name << " x " << chk->name
                     << "] runs=" << options.runs
                     << " failures=" << pair_failures << '\n';
      }
    }
  }
  for (const auto& [check, seen] : families_seen) {
    report.families_per_check[check] = seen.size();
  }
  return report;
}

void write_report(std::ostream& out, const RunnerOptions& options,
                  const RunnerReport& report) {
  out << "eardec property fuzz: seed=" << options.seed
      << " runs=" << options.runs << " size="
      << (options.size != 0 ? std::to_string(options.size)
                            : std::string("per-check"))
      << " fault_injection=" << (options.fault_injection ? 1 : 0)
      << " shrink=" << (options.shrink ? 1 : 0) << '\n';
  out << "coverage:\n";
  for (const auto& [check, runs] : report.check_runs) {
    out << "  check " << check << ": runs=" << runs
        << " families=" << report.families_per_check.at(check) << '\n';
  }
  for (const auto& [fam, runs] : report.family_runs) {
    out << "  family " << fam << ": runs=" << runs << '\n';
  }
  for (const Counterexample& cex : report.failures) {
    out << "FAILURE family=" << cex.family << " check=" << cex.check
        << " seed=" << cex.seed << '\n';
    out << "  message: " << cex.message << '\n';
    if (!cex.minimal_message.empty() && cex.minimal_message != cex.message) {
      out << "  shrunken message: " << cex.minimal_message << '\n';
    }
    out << "  shrunk to n=" << cex.minimal.num_vertices()
        << " m=" << cex.minimal.num_edges() << " in " << cex.shrink_steps
        << " steps (" << cex.shrink_attempts << " attempts)\n";
    out << "  counterexample (n m, then u v w per edge):\n";
    std::istringstream lines(format_graph(cex.minimal));
    for (std::string line; std::getline(lines, line);) {
      out << "    " << line << '\n';
    }
    out << "  replay: eardec_fuzz --seed " << cex.seed
        << " --runs 1 --family " << cex.family << " --check " << cex.check
        << " --size "
        << (options.size != 0 ? options.size
                              : property_check(cex.check).size_hint)
        << '\n';
  }
  out << "total: runs=" << report.runs_executed
      << " failures=" << report.failures.size() << '\n';
  out << (report.ok() ? "PROPERTIES OK" : "PROPERTIES FAILED") << '\n';
}

}  // namespace eardec::testing
