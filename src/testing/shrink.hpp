// Greedy counterexample shrinking: given a failing graph and the predicate
// that reproduces the failure, repeatedly apply structure-removing edits —
// delete a vertex (with its star), delete an edge, smooth a degree-two
// vertex into a single edge (an inverse ear step), normalize a weight to 1
// — keeping any edit after which the failure still reproduces, until no
// single edit reproduces it. Deterministic: fixed edit order, no RNG, so
// the same (graph, predicate) always shrinks to the same minimal witness.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>

#include "graph/graph.hpp"

namespace eardec::testing {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

/// True iff the failure reproduces on the candidate graph. Predicates are
/// run on partially demolished graphs, so the shrinker treats a thrown
/// exception as "reproduces" (a crash is at least as interesting a bug).
using FailurePredicate = std::function<bool(const Graph&)>;

struct ShrinkOptions {
  /// Cap on predicate evaluations (the expensive part).
  std::size_t max_attempts = 4000;
};

struct ShrinkResult {
  Graph minimal;             ///< smallest graph still failing the predicate
  std::size_t steps = 0;     ///< edits that were kept
  std::size_t attempts = 0;  ///< predicate evaluations performed
  bool attempt_budget_hit = false;
};

/// Requires pred(g) == true (the caller observed the failure); returns the
/// greedy 1-minimal witness. Never returns a graph on which pred is false.
[[nodiscard]] ShrinkResult shrink(const Graph& g, const FailurePredicate& pred,
                                  const ShrinkOptions& options = {});

// Edit primitives, exposed for direct testing. Each returns std::nullopt
// when the edit does not apply.

/// Deletes vertex v and every incident edge; higher ids shift down by one.
[[nodiscard]] std::optional<Graph> delete_vertex(const Graph& g, VertexId v);

/// Deletes edge e (ids above it shift down).
[[nodiscard]] std::optional<Graph> delete_edge(const Graph& g, EdgeId e);

/// Smooths a degree-two vertex: replaces its two incident edges by one
/// edge of summed weight between its neighbours (which may coincide,
/// producing a self-loop). Not applicable to self-loop vertices.
[[nodiscard]] std::optional<Graph> smooth_vertex(const Graph& g, VertexId v);

/// Sets the weight of edge e to 1 (not applicable if it already is 1).
[[nodiscard]] std::optional<Graph> normalize_weight(const Graph& g, EdgeId e);

/// Printable form of a counterexample: "n m" header then one "u v w" line
/// per edge with round-trip float precision — paste-able into a test.
[[nodiscard]] std::string format_graph(const Graph& g);

}  // namespace eardec::testing
