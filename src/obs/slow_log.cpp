#include "obs/slow_log.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <sstream>

#if defined(__GNUC__) && !defined(__clang__) && defined(__SANITIZE_THREAD__)
// GCC's TSan pass has no fence instrumentation and rejects
// std::atomic_thread_fence under -Werror (-Wtsan). The per-slot seqlock is
// deliberately fence-based — readers must stay lock-free against the
// serving path — so under TSan the fences compile uninstrumented; the
// labeled tests quiesce writers before dumping, which is the coverage that
// configuration is after.
#pragma GCC diagnostic ignored "-Wtsan"
#endif

namespace eardec::obs {
namespace {

/// Log2 bucketing, same scheme as obs::Histogram: bucket 0 = {0}, bucket i
/// covers [2^(i-1), 2^i - 1].
constexpr std::size_t kLatBuckets = 65;

std::size_t bucket_index(std::uint64_t v) noexcept {
  return static_cast<std::size_t>(std::bit_width(v));
}

std::uint64_t bucket_lower_bound(std::size_t i) noexcept {
  return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

const char* keep_name(SlowLog::Keep reason) noexcept {
  switch (reason) {
    case SlowLog::Keep::kSlowTail: return "p99";
    case SlowLog::Keep::kUniform: return "sample";
    default: return "none";
  }
}

}  // namespace

struct SlowLog::Impl {
  struct Exemplar {
    std::uint64_t query_id = 0;
    std::uint64_t arrival_ns = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t epoch = 0;
    std::uint64_t attr_ns[kNumAttrComponents] = {};
    std::uint32_t s = 0;
    std::uint32_t t = 0;
    std::uint32_t batch = 0;
    Keep reason = Keep::kNo;
    std::uint32_t span_count = 0;
    QuerySpanRecord spans[QueryTrace::kMaxSpans];
  };

  struct Slot {
    std::atomic<std::uint32_t> seq{0};  ///< seqlock: odd while writing
    Exemplar exemplar;
  };

  std::atomic<bool> armed{false};
  std::atomic<std::uint64_t> uniform_stride{0};
  std::atomic<std::uint64_t> observed{0};
  std::atomic<std::uint64_t> threshold_ns{~std::uint64_t{0}};
  std::atomic<std::uint64_t> lat_buckets[kLatBuckets] = {};
  std::atomic<std::uint64_t> cursor{0};
  Slot ring[kRingSlots];

  /// Recomputes the cached p99 threshold from the log2 histogram. Called
  /// every 256 observations by whichever serving thread lands on the
  /// stride; racing recomputes are harmless (same data, same answer).
  void recompute_threshold() noexcept {
    std::uint64_t counts[kLatBuckets];
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kLatBuckets; ++i) {
      counts[i] = lat_buckets[i].load(std::memory_order_relaxed);
      total += counts[i];
    }
    if (total == 0) return;
    const std::uint64_t target =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                       0.99 * static_cast<double>(total)));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kLatBuckets; ++i) {
      cum += counts[i];
      if (cum >= target) {
        threshold_ns.store(bucket_lower_bound(i), std::memory_order_relaxed);
        return;
      }
    }
  }
};

SlowLog::SlowLog() : impl_(new Impl) {}

SlowLog& SlowLog::instance() {
  // Leaked like the Tracer: serving threads may observe() arbitrarily late.
  static SlowLog* store = new SlowLog();
  return *store;
}

void SlowLog::arm(std::uint64_t uniform_stride) noexcept {
  if constexpr (!kTracingEnabled) return;
  impl_->uniform_stride.store(uniform_stride, std::memory_order_relaxed);
  impl_->armed.store(true, std::memory_order_relaxed);
}

void SlowLog::disarm() noexcept {
  impl_->armed.store(false, std::memory_order_relaxed);
}

bool SlowLog::armed() const noexcept {
  if constexpr (!kTracingEnabled) return false;
  return impl_->armed.load(std::memory_order_relaxed);
}

SlowLog::Keep SlowLog::observe(std::uint64_t total_ns) noexcept {
  if (!armed()) return Keep::kNo;
  impl_->lat_buckets[bucket_index(total_ns)].fetch_add(
      1, std::memory_order_relaxed);
  const std::uint64_t n =
      impl_->observed.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n >= kWarmupObservations && n % 256 == 0) impl_->recompute_threshold();
  if (n >= kWarmupObservations &&
      total_ns >= impl_->threshold_ns.load(std::memory_order_relaxed)) {
    return Keep::kSlowTail;
  }
  const std::uint64_t stride =
      impl_->uniform_stride.load(std::memory_order_relaxed);
  if (stride != 0 && n % stride == 0) return Keep::kUniform;
  return Keep::kNo;
}

void SlowLog::retain(const QueryTrace& trace, std::uint64_t total_ns,
                     Keep reason, std::uint32_t s, std::uint32_t t,
                     std::uint32_t batch, std::uint64_t epoch) noexcept {
  if (!armed() || reason == Keep::kNo) return;
  const std::uint64_t cur =
      impl_->cursor.fetch_add(1, std::memory_order_relaxed);
  Impl::Slot& slot = impl_->ring[cur % kRingSlots];
  slot.seq.fetch_add(1, std::memory_order_relaxed);  // odd: write in flight
  std::atomic_thread_fence(std::memory_order_release);
  Impl::Exemplar& ex = slot.exemplar;
  ex.query_id = trace.query_id();
  ex.arrival_ns = trace.arrival_ns;
  ex.total_ns = total_ns;
  ex.epoch = epoch;
  for (std::size_t i = 0; i < kNumAttrComponents; ++i) {
    ex.attr_ns[i] = trace.attr_ns[i];
  }
  ex.s = s;
  ex.t = t;
  ex.batch = batch;
  ex.reason = reason;
  ex.span_count = trace.span_count();
  for (std::uint32_t i = 0; i < ex.span_count; ++i) {
    ex.spans[i] = trace.spans()[i];
  }
  slot.seq.fetch_add(1, std::memory_order_release);  // even: stable
}

std::string SlowLog::dump_json() const {
  std::ostringstream out;
  const std::uint64_t cur = impl_->cursor.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(cur, kRingSlots);
  out << "{\"armed\":" << (armed() ? "true" : "false")
      << ",\"observed\":" << observed()
      << ",\"threshold_ns\":";
  const std::uint64_t thr = threshold_ns();
  if (thr == ~std::uint64_t{0}) {
    out << "null";
  } else {
    out << thr;
  }
  out << ",\"retained\":" << n << ",\"exemplars\":[";
  bool first = true;
  for (std::uint64_t i = cur - n; i < cur; ++i) {
    const Impl::Slot& slot = impl_->ring[i % kRingSlots];
    const std::uint32_t seq1 = slot.seq.load(std::memory_order_acquire);
    if ((seq1 & 1u) != 0) continue;  // mid-write: skip
    Impl::Exemplar ex = slot.exemplar;  // copy, then validate
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq1) continue;
    if (!first) out << ",";
    first = false;
    out << "{\"query_id\":" << ex.query_id << ",\"reason\":\""
        << keep_name(ex.reason) << "\",\"total_ns\":" << ex.total_ns
        << ",\"arrival_ns\":" << ex.arrival_ns << ",\"epoch\":" << ex.epoch
        << ",\"s\":" << ex.s << ",\"t\":" << ex.t
        << ",\"batch\":" << ex.batch << ",\"attr_ns\":{";
    for (std::size_t c = 0; c < kNumAttrComponents; ++c) {
      if (c != 0) out << ",";
      out << "\"" << kAttrComponentNames[c] << "\":" << ex.attr_ns[c];
    }
    out << "},\"spans\":[";
    const std::uint32_t spans =
        std::min<std::uint32_t>(ex.span_count, QueryTrace::kMaxSpans);
    for (std::uint32_t sp = 0; sp < spans; ++sp) {
      const QuerySpanRecord& rec = ex.spans[sp];
      if (sp != 0) out << ",";
      out << "{\"name\":\"" << (rec.name != nullptr ? rec.name : "")
          << "\",\"start_ns\":" << rec.start_ns
          << ",\"dur_ns\":" << rec.dur_ns << ",\"span\":" << rec.span_id
          << ",\"parent\":" << rec.parent_id << "}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

std::size_t SlowLog::retained() const noexcept {
  return static_cast<std::size_t>(std::min<std::uint64_t>(
      impl_->cursor.load(std::memory_order_relaxed), kRingSlots));
}

std::uint64_t SlowLog::observed() const noexcept {
  return impl_->observed.load(std::memory_order_relaxed);
}

std::uint64_t SlowLog::threshold_ns() const noexcept {
  return impl_->threshold_ns.load(std::memory_order_relaxed);
}

void SlowLog::clear() noexcept {
  for (auto& bucket : impl_->lat_buckets) {
    bucket.store(0, std::memory_order_relaxed);
  }
  impl_->observed.store(0, std::memory_order_relaxed);
  impl_->threshold_ns.store(~std::uint64_t{0}, std::memory_order_relaxed);
  impl_->cursor.store(0, std::memory_order_relaxed);
  for (auto& slot : impl_->ring) {
    slot.seq.fetch_add(2, std::memory_order_release);
    slot.exemplar = {};
  }
}

}  // namespace eardec::obs
