// Request-context propagation for the serving layer — the glue between the
// scoped-span tracer (obs/trace.hpp) and per-query observability
// (docs/observability.md, "Per-query tracing & flight recorder").
//
// A QueryTrace is the per-request trace context: a process-unique 64-bit
// query id plus a span-id allocator and a small fixed collector of the
// spans emitted on the query's behalf. The request owner (http_routes,
// bench_oracle_serve) stack-allocates one, installs it with a
// QueryTraceScope, and every span emitted below — across the oracle
// server, and via scope re-installation inside hetero worker callbacks,
// across thread lanes — is recorded through Tracer::record_span_linked
// with (qid, span_id, parent_id) links. tools/critical_path.py stitches
// the exported links back into per-query trees; obs/slow_log.hpp retains
// the collected spans for queries sampled into the exemplar ring.
//
// Contract:
//   * the QueryTrace must outlive every scope/span referring to it — the
//     serving layer guarantees this because batch drains are synchronous
//     within OracleServer::query_batch;
//   * span-id allocation and collection are thread-safe (atomic claims),
//     so concurrent worker lanes may emit under one query;
//   * the thread-local context itself is per-thread: cross-thread
//     propagation is explicit, by constructing a QueryTraceScope inside
//     the worker callback with the parent span id to attach under.
//
// Everything here is cheap enough to stay compiled in all builds (one TLS
// pointer, a few atomics); the tracer half of emit() is still double-gated
// by obs::Tracer, and span *collection* only happens while the slow-query
// exemplar store (obs/slow_log.hpp) is armed.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/trace.hpp"

namespace eardec::obs {

/// Latency attribution components every answered query decomposes into
/// (exported as oracle.serve.attr.<name>_ns histograms; the components are
/// contiguous, so their per-query sum equals the open-loop latency).
inline constexpr std::size_t kNumAttrComponents = 5;
inline constexpr const char* kAttrComponentNames[kNumAttrComponents] = {
    "queue_wait", "schedule", "kernel", "recompose", "write",
};
enum class AttrComponent : std::size_t {
  kQueueWait = 0,  ///< scheduled arrival -> server entry
  kSchedule = 1,   ///< classification + leg grouping + unit build
  kKernel = 2,     ///< hetero drain / oracle lookup
  kRecompose = 3,  ///< leg recomposition into distances
  kWrite = 4,      ///< reply serialization / result handoff
};

/// One collected span (a TraceEvent reduced to what the exemplar store
/// keeps). `name` must be a string literal, like TraceEvent::name.
struct QuerySpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_id = 0;
};

/// Allocates the next process-unique query id (never 0).
[[nodiscard]] std::uint64_t next_query_id() noexcept;

/// Per-request trace context. Stack-allocated by the request owner; see the
/// file comment for the lifetime/threading contract.
class QueryTrace {
 public:
  /// Collector capacity: enough for root + phase spans + every leg unit of
  /// a full batch; later spans are counted but not retained.
  static constexpr std::size_t kMaxSpans = 48;

  /// `arrival_ns` is the query's scheduled arrival on the Tracer::now_ns
  /// timeline (0 = unknown): the serving layer derives the queue_wait
  /// attribution component from it. Span collection is enabled iff the
  /// slow-query exemplar store is armed at construction time.
  explicit QueryTrace(std::uint64_t arrival_ns_in = 0);

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  [[nodiscard]] std::uint64_t query_id() const noexcept { return query_id_; }

  /// Claims the next span id within this query's tree (thread-safe).
  [[nodiscard]] std::uint32_t allocate_span() noexcept {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one completed span: forwards to Tracer::record_span_linked
  /// (subject to the tracer's gates) and appends to the collector when
  /// collection is on. Thread-safe.
  void emit(std::uint32_t span_id, std::uint32_t parent_id, const char* name,
            std::uint64_t start_ns, std::uint64_t dur_ns,
            const char* arg_name = nullptr, std::uint64_t arg = 0) noexcept;

  /// Collected spans (quiescent read: after the request completed).
  [[nodiscard]] std::uint32_t span_count() const noexcept;
  [[nodiscard]] const QuerySpanRecord* spans() const noexcept {
    return spans_;
  }

  std::uint64_t arrival_ns = 0;
  /// Set by the serving layer immediately before handing the answer back;
  /// the caller derives the `write` component as done - server_end_ns.
  std::uint64_t server_end_ns = 0;
  /// Attribution components (ns), filled by the serving layer; retained in
  /// slow-query exemplars.
  std::uint64_t attr_ns[kNumAttrComponents] = {};

 private:
  std::uint64_t query_id_;
  std::atomic<std::uint32_t> next_span_{1};
  std::atomic<std::uint32_t> collected_{0};
  bool collect_spans_;
  QuerySpanRecord spans_[kMaxSpans];
};

/// The calling thread's current trace context (nullptr outside a scope).
[[nodiscard]] QueryTrace* current_query_trace() noexcept;

/// The span id new spans on this thread should attach under (0 = root).
[[nodiscard]] std::uint32_t current_parent_span() noexcept;

/// Installs a QueryTrace (and the parent span id to attach under) as the
/// calling thread's context for the scope's duration; restores the previous
/// context on exit. Pass nullptr to run a scope context-free. Used at
/// request entry and re-constructed inside hetero worker callbacks for
/// cross-thread propagation.
class QueryTraceScope {
 public:
  explicit QueryTraceScope(QueryTrace* trace,
                           std::uint32_t parent_span = 0) noexcept;
  ~QueryTraceScope();

  QueryTraceScope(const QueryTraceScope&) = delete;
  QueryTraceScope& operator=(const QueryTraceScope&) = delete;

 private:
  QueryTrace* prev_trace_;
  std::uint32_t prev_parent_;
};

/// RAII linked span: when a trace context is installed, allocates a span id,
/// becomes the thread's parent span for nested QuerySpans, and emits the
/// span (tracer + collector) on scope exit. A no-op costing one TLS load
/// when no context is installed.
class QuerySpan {
 public:
  explicit QuerySpan(const char* name, const char* arg_name = nullptr,
                     std::uint64_t arg = 0) noexcept;
  ~QuerySpan();

  QuerySpan(const QuerySpan&) = delete;
  QuerySpan& operator=(const QuerySpan&) = delete;

  /// This span's id (0 when no context was installed).
  [[nodiscard]] std::uint32_t span_id() const noexcept { return span_id_; }

 private:
  QueryTrace* trace_;
  const char* name_;
  const char* arg_name_;
  std::uint64_t arg_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t span_id_ = 0;
  std::uint32_t parent_id_ = 0;
};

}  // namespace eardec::obs
