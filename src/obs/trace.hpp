// Scoped-span tracer — the tracing half of the observability layer
// (metrics.hpp is the other half; see docs/observability.md).
//
// Spans are recorded through the EARDEC_TRACE_SCOPE RAII macro into
// per-thread lock-free ring buffers: the recording thread is the only
// writer of its buffer, a push is one slot store plus one release store of
// the event count, and no claim path ever takes a lock. Timestamps come
// from one process-wide steady-clock epoch so spans from different threads
// line up on a shared timeline. Buffers of exited threads are recycled
// through a free list, so repeated scheduler drains (which spawn fresh
// jthreads per drain) reuse the same worker lanes instead of growing the
// registry without bound.
//
// Recording is double-gated:
//   * compile time — building with -DEARDEC_ENABLE_TRACING=OFF defines
//     EARDEC_TRACING_ENABLED=0 and EARDEC_TRACE_SCOPE expands to an empty
//     NullSpan (statically checked to be an empty type);
//   * run time — even when compiled in, spans cost one relaxed atomic load
//     until Tracer::set_enabled(true) (what `eardec_cli --trace` and the
//     EARDEC_TRACE env var of the benches flip).
//
// Exports use the Chrome trace-event JSON format, loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Exporting and clear() are
// meant for quiescent moments (after worker threads joined); *span*
// recording and exporting concurrently is not a data-race-free
// combination. The one sanctioned concurrent recorder is the background
// obs::Sampler: its counter samples go through the tracer mutex, and the
// export path additionally acquires sampler_gate() first, so an export
// never observes a sampling tick mid-flight (see obs/sampler.hpp).
//
// Besides "X" spans, the tracer stores counter samples ("ph":"C" events):
// timestamped (track, value) pairs that Perfetto renders as time-series
// counter tracks (RSS, PMU totals, registry counters) above the worker
// lanes. Spans can also carry a fixed block of PMU counter deltas
// (obs/pmu.hpp fills it); the exporter emits them as span args together
// with derived IPC / cache-miss-rate ratios.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#ifndef EARDEC_TRACING_ENABLED
#define EARDEC_TRACING_ENABLED 1
#endif

namespace eardec::obs {

/// Compile-time tracing switch (CMake option EARDEC_ENABLE_TRACING).
inline constexpr bool kTracingEnabled = EARDEC_TRACING_ENABLED != 0;

/// One completed span. `name`/`arg_name` must be static-lifetime strings
/// (string literals): the ring buffer stores only the pointers.
struct TraceEvent {
  /// Fixed PMU payload slots a span may carry (obs/pmu.hpp owns the
  /// semantics; the order here must match obs::PmuSlot).
  static constexpr std::size_t kNumPmuSlots = 6;

  const char* name = nullptr;
  const char* arg_name = nullptr;  ///< optional argument label (may be null)
  std::uint64_t start_ns = 0;      ///< steady-clock ns since tracer epoch
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = 0;  ///< argument value (meaningful iff arg_name set)
  std::uint64_t pmu[kNumPmuSlots] = {};  ///< counter deltas over the span
  /// Span links (obs/query_trace.hpp fills them): qid stitches spans of one
  /// request into a per-query tree across thread lanes, span_id/parent_id
  /// give the tree edges. qid == 0 means "not linked to a query"; the
  /// exporter then omits the link args entirely.
  std::uint64_t qid = 0;
  std::uint32_t span_id = 0;   ///< id within the query's span tree (0 = none)
  std::uint32_t parent_id = 0; ///< parent span id (0 = tree root)
  std::uint8_t pmu_mask = 0;  ///< bit i set => pmu[i] is meaningful
};

/// Exported arg names of the TraceEvent::pmu slots, in slot order
/// (obs::PmuSlot). Defined here so the exporter has no pmu.hpp dependency.
inline constexpr const char* kPmuSlotNames[TraceEvent::kNumPmuSlots] = {
    "cycles",        "instructions",  "cache_references",
    "cache_misses",  "branch_misses", "task_clock_ns",
};

/// One counter-track sample ("ph":"C" in the Chrome export): a named
/// time-series point. Recorded by the background obs::Sampler; rendered by
/// Perfetto as a counter track above the span lanes.
struct CounterSample {
  std::string track;        ///< counter-track name ("rss_mb", "pmu.cycles")
  std::uint64_t ts_ns = 0;  ///< steady-clock ns since tracer epoch
  double value = 0.0;
};

/// A span paired with the lane it was recorded on, for snapshot()/tests.
struct SnapshotEvent {
  TraceEvent event;
  std::uint32_t tid = 0;    ///< stable lane id (registration order)
  std::string thread_name;  ///< last name set on that lane ("" if unnamed)
};

class Tracer {
 public:
  /// Events retained per thread lane; older events are overwritten
  /// (counted by dropped_events()).
  static constexpr std::size_t kRingCapacity = std::size_t{1} << 13;

  /// The process-wide tracer. Never destroyed (safe to use from
  /// static/thread-local destructors).
  static Tracer& instance();

  void set_enabled(bool enabled) noexcept;
  [[nodiscard]] bool enabled() const noexcept;

  /// Nanoseconds since the tracer epoch (process start, steady clock).
  /// Available regardless of the compile-time tracing switch — the obs
  /// layer's one clock, also used for phase timings and worker busy time.
  [[nodiscard]] static std::uint64_t now_ns() noexcept;

  /// Records one completed span on the calling thread's lane. No-op when
  /// disabled (either gate).
  void record_span(const char* name, std::uint64_t start_ns,
                   std::uint64_t dur_ns, const char* arg_name = nullptr,
                   std::uint64_t arg = 0);

  /// record_span plus a PMU payload: `pmu` holds one delta per
  /// TraceEvent::kNumPmuSlots slot, `pmu_mask` flags the meaningful ones.
  /// The exporter emits flagged slots (and derived IPC / miss-rate ratios)
  /// as span args.
  void record_span_pmu(const char* name, std::uint64_t start_ns,
                       std::uint64_t dur_ns,
                       const std::uint64_t pmu[TraceEvent::kNumPmuSlots],
                       std::uint8_t pmu_mask, const char* arg_name = nullptr,
                       std::uint64_t arg = 0);

  /// record_span plus span links: the span joins query `qid`'s tree as node
  /// `span_id` under `parent_id` (0 = root). The exporter emits the links
  /// as "qid"/"span"/"parent" args, which tools/critical_path.py stitches
  /// back into per-query trees. qid must be non-zero (use record_span for
  /// unlinked spans). Same cost and thread-safety as record_span.
  void record_span_linked(const char* name, std::uint64_t start_ns,
                          std::uint64_t dur_ns, std::uint64_t qid,
                          std::uint32_t span_id, std::uint32_t parent_id,
                          const char* arg_name = nullptr, std::uint64_t arg = 0);

  /// Async-signal-safe best-effort dump of the newest ring contents (spans
  /// with links + mirrored counter samples) as JSON to an already-open file
  /// descriptor. Uses only write(2) and hand-rolled formatting — no locks,
  /// no allocation — so the flight recorder (obs/flight_recorder.hpp) can
  /// call it from SIGSEGV/SIGABRT handlers. Events being written
  /// concurrently are skipped or sanitized, never blocked on. `reason` must
  /// be a short NUL-terminated ASCII string. Returns false when tracing is
  /// compiled out or fd is invalid.
  bool write_flight_dump(int fd, const char* reason) const noexcept;

  /// Retention cap on counter samples: once it is reached further appends
  /// are refused (the *newest* samples are dropped and counted in
  /// dropped_counter_samples()), bounding the sampler's memory on very
  /// long runs.
  static constexpr std::size_t kMaxCounterSamples = std::size_t{1} << 20;

  /// Appends one counter-track sample at an explicit timestamp. Thread-safe
  /// (tracer mutex); no-op while disabled, like record_span.
  void record_counter_at(const std::string& track, std::uint64_t ts_ns,
                         double value);
  /// Convenience: record_counter_at(track, now_ns(), value).
  void record_counter(const std::string& track, double value);

  /// All retained counter samples, in recording order.
  [[nodiscard]] std::vector<CounterSample> counter_samples() const;

  /// Counter samples lost to the kMaxCounterSamples cap since last clear().
  [[nodiscard]] std::uint64_t dropped_counter_samples() const;

  /// Mutex the background sampler holds for the duration of each sampling
  /// tick. snapshot()/write_chrome_trace()/clear() acquire it before the
  /// tracer mutex, so exports quiesce a still-running sampler instead of
  /// relying on callers stopping it first. Lock order: sampler_gate() then
  /// the tracer mutex — never the reverse.
  [[nodiscard]] std::mutex& sampler_gate() noexcept;

  /// Labels the calling thread's lane in exports ("cpu-worker-3"). No-op
  /// while disabled.
  void set_current_thread_name(std::string name);

  /// Drops every recorded span and counter sample (lane labels survive).
  /// Quiescent use only (a running obs::Sampler is quiesced internally).
  void clear();

  /// Events currently held across all lanes.
  [[nodiscard]] std::size_t recorded_events() const;

  /// Events lost to ring wraparound since the last clear().
  [[nodiscard]] std::uint64_t dropped_events() const;

  /// All retained events, sorted by start time. Quiescent use only.
  [[nodiscard]] std::vector<SnapshotEvent> snapshot() const;

  /// Chrome trace-event JSON ("X" spans + thread_name metadata).
  void write_chrome_trace(std::ostream& out) const;

  /// Convenience file variant; returns false if the file cannot be opened.
  bool write_chrome_trace_file(const std::string& path) const;

  struct Impl;  ///< opaque; defined in trace.cpp

 private:
  Tracer();
  ~Tracer() = delete;  // leaked singleton

  Impl* impl_;
};

/// RAII span: captures the start time at construction and records the span
/// when the scope exits. Prefer the EARDEC_TRACE_SCOPE macro, which
/// compiles out entirely under EARDEC_ENABLE_TRACING=OFF.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, nullptr, 0) {}
  ScopedSpan(const char* name, const char* arg_name, std::uint64_t arg)
      : name_(Tracer::instance().enabled() ? name : nullptr),
        arg_name_(arg_name),
        arg_(arg),
        start_ns_(name_ != nullptr ? Tracer::now_ns() : 0) {}
  ~ScopedSpan() {
    if (name_ != nullptr) {
      Tracer::instance().record_span(name_, start_ns_,
                                     Tracer::now_ns() - start_ns_, arg_name_,
                                     arg_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;      // null while the tracer is disabled
  const char* arg_name_;
  std::uint64_t arg_;
  std::uint64_t start_ns_;
};

/// What EARDEC_TRACE_SCOPE degrades to when tracing is compiled out: an
/// empty type whose construction evaluates nothing. The static_assert is
/// the contract the disabled-build test relies on.
struct NullSpan {
  constexpr NullSpan() noexcept = default;
};
static_assert(std::is_empty_v<NullSpan>,
              "NullSpan must compile to a no-op object");

}  // namespace eardec::obs

#define EARDEC_OBS_CONCAT_INNER(a, b) a##b
#define EARDEC_OBS_CONCAT(a, b) EARDEC_OBS_CONCAT_INNER(a, b)

/// EARDEC_TRACE_SCOPE("name") or EARDEC_TRACE_SCOPE("name", "arg", value):
/// traces the enclosing scope. Arguments are not evaluated when tracing is
/// compiled out.
#if EARDEC_TRACING_ENABLED
#define EARDEC_TRACE_SCOPE(...)                               \
  const ::eardec::obs::ScopedSpan EARDEC_OBS_CONCAT(          \
      eardec_obs_span_, __LINE__) {                           \
    __VA_ARGS__                                               \
  }
#else
#define EARDEC_TRACE_SCOPE(...)                   \
  [[maybe_unused]] const ::eardec::obs::NullSpan  \
      EARDEC_OBS_CONCAT(eardec_obs_span_, __LINE__) {}
#endif
