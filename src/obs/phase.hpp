// ScopedPhase — the one clock behind every phase timing in the library.
//
// PhaseTimings (core), SchedulerStats (hetero) and McbStats (mcb) used to
// each hand-roll steady_clock arithmetic; they now all route through this
// RAII helper, which on scope exit does three things at once:
//   1. accumulates the elapsed seconds into the caller's stats field
//      (so repeated phases — MCB iterations — sum naturally),
//   2. publishes the accumulated total to a named registry gauge,
//   3. records a span on the tracer timeline (when tracing is on) —
//      through a PmuScopedSpan, so when the PMU engine is armed the span
//      carries counter deltas and the phase gets derived
//      `pmu.<span>.{ipc,cache_miss_rate}` gauges for free.
// One measurement, three consumers — the struct fields, `--metrics`, and
// `--trace` can never disagree about a phase again.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/pmu.hpp"
#include "obs/trace.hpp"

namespace eardec::obs {

class ScopedPhase {
 public:
  /// `accumulate_into` += elapsed on destruction; `span_name` labels the
  /// trace span; `gauge_name` is the registry gauge that receives the
  /// accumulated total. Both names must be static-lifetime strings.
  ScopedPhase(double& accumulate_into, const char* span_name,
              const char* gauge_name)
      : out_(accumulate_into),
        gauge_name_(gauge_name),
        start_ns_(Tracer::now_ns()),
        span_(span_name) {}

  ~ScopedPhase() {
    const std::uint64_t end_ns = Tracer::now_ns();
    out_ += static_cast<double>(end_ns - start_ns_) * 1e-9;
    MetricsRegistry::instance().gauge(gauge_name_).set(out_);
    // span_ records itself (with PMU deltas when armed) right after this
    // body: it is the last member, so it is destroyed first.
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  double& out_;
  const char* gauge_name_;
  std::uint64_t start_ns_;
  PmuScopedSpan span_;  // keep last: must destruct before the fields above
};

}  // namespace eardec::obs
