// ScopedPhase — the one clock behind every phase timing in the library.
//
// PhaseTimings (core), SchedulerStats (hetero) and McbStats (mcb) used to
// each hand-roll steady_clock arithmetic; they now all route through this
// RAII helper, which on scope exit does three things at once:
//   1. accumulates the elapsed seconds into the caller's stats field
//      (so repeated phases — MCB iterations — sum naturally),
//   2. publishes the accumulated total to a named registry gauge,
//   3. records a span on the tracer timeline (when tracing is on).
// One measurement, three consumers — the struct fields, `--metrics`, and
// `--trace` can never disagree about a phase again.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace eardec::obs {

class ScopedPhase {
 public:
  /// `accumulate_into` += elapsed on destruction; `span_name` labels the
  /// trace span; `gauge_name` is the registry gauge that receives the
  /// accumulated total. Both names must be static-lifetime strings.
  ScopedPhase(double& accumulate_into, const char* span_name,
              const char* gauge_name)
      : out_(accumulate_into),
        span_name_(span_name),
        gauge_name_(gauge_name),
        start_ns_(Tracer::now_ns()) {}

  ~ScopedPhase() {
    const std::uint64_t end_ns = Tracer::now_ns();
    out_ += static_cast<double>(end_ns - start_ns_) * 1e-9;
    MetricsRegistry::instance().gauge(gauge_name_).set(out_);
    Tracer::instance().record_span(span_name_, start_ns_, end_ns - start_ns_);
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  double& out_;
  const char* span_name_;
  const char* gauge_name_;
  std::uint64_t start_ns_;
};

}  // namespace eardec::obs
