#include "obs/pmu.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace eardec::obs {
namespace {

/// True when EARDEC_PMU explicitly forces the layer off. Checked on every
/// enable() so `EARDEC_PMU=off eardec_cli ... --pmu` stays a no-op.
bool env_forces_off() {
  const char* v = std::getenv("EARDEC_PMU");
  if (v == nullptr) return false;
  std::string s(v);
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s == "off" || s == "0" || s == "false";
}

#if defined(__linux__)

/// perf_event type/config per PmuSlot, in slot order.
struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};
constexpr EventSpec kSpecs[kNumPmuSlots] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
};

int perf_open(const EventSpec& spec, bool leader, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = leader ? 1 : 0;  // members follow the leader's gate
  attr.exclude_kernel = 1;         // works under perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, PERF_FLAG_FD_CLOEXEC));
}

PmuStatus classify_errno(int err) {
  if (err == EPERM || err == EACCES) return PmuStatus::kPermissionDenied;
  return PmuStatus::kNoCounters;  // ENOENT/ENODEV/EOPNOTSUPP/ENOSYS/EINVAL
}

/// One thread's counter group: the leader fd plus the slot each group read
/// value maps back to (open order == read order under PERF_FORMAT_GROUP).
struct ThreadGroup {
  int leader = -1;
  // Member fds must stay open for the group's lifetime: closing one
  // releases its event and the leader's PERF_FORMAT_GROUP read shrinks to
  // the surviving members.
  int member_fds[kNumPmuSlots] = {};
  std::size_t num_members = 0;
  std::size_t num_values = 0;
  std::size_t slot_of_value[kNumPmuSlots] = {};
  bool attempted = false;
  bool ok = false;
  std::uint32_t generation = 0;
  int leader_errno = 0;

  bool open(PmuStatus tier) {
    const std::size_t first =
        tier == PmuStatus::kSoftwareOnly ? kPmuTaskClockNs : kPmuCycles;
    leader = perf_open(kSpecs[first], /*leader=*/true, /*group_fd=*/-1);
    if (leader < 0) {
      leader_errno = errno;
      return false;
    }
    slot_of_value[num_values++] = first;
    if (tier != PmuStatus::kSoftwareOnly) {
      // Members that fail to open (counter pressure, missing events) are
      // skipped: their slots simply stay out of the sample mask.
      for (std::size_t s = 1; s < kNumPmuSlots; ++s) {
        const int fd = perf_open(kSpecs[s], /*leader=*/false, leader);
        if (fd < 0) continue;
        slot_of_value[num_values++] = s;
        member_fds[num_members++] = fd;
      }
    }
    ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    ok = true;
    return true;
  }

  bool read_sample(PmuSample& out) const {
    struct {
      std::uint64_t nr;
      std::uint64_t time_enabled;
      std::uint64_t time_running;
      std::uint64_t values[kNumPmuSlots];
    } buf;
    const ssize_t n = ::read(leader, &buf, sizeof buf);
    if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return false;
    // Multiplex scaling: when the kernel rotated the group off the PMU for
    // part of the window, extrapolate to the enabled time.
    double scale = 1.0;
    if (buf.time_running > 0 && buf.time_running < buf.time_enabled) {
      scale = static_cast<double>(buf.time_enabled) /
              static_cast<double>(buf.time_running);
    }
    const std::size_t nr =
        std::min(static_cast<std::size_t>(buf.nr), num_values);
    for (std::size_t i = 0; i < nr; ++i) {
      const std::size_t slot = slot_of_value[i];
      // Software events (task-clock) are never rotated off the PMU, so
      // only hardware slots get the multiplex extrapolation.
      out.v[slot] =
          slot == kPmuTaskClockNs
              ? buf.values[i]
              : static_cast<std::uint64_t>(static_cast<double>(buf.values[i]) *
                                           scale);
      out.mask = static_cast<std::uint8_t>(out.mask | (1u << slot));
    }
    return true;
  }

  void close_group() {
    for (std::size_t i = 0; i < num_members; ++i) ::close(member_fds[i]);
    if (leader >= 0) ::close(leader);
    leader = -1;
    num_members = 0;
    num_values = 0;
    attempted = false;
    ok = false;
    leader_errno = 0;
  }
};

/// Closes the group when the thread exits (mirrors the tracer's lane
/// handle).
struct ThreadGroupHandle {
  ThreadGroup group;
  ~ThreadGroupHandle() { group.close_group(); }
};

thread_local ThreadGroupHandle t_pmu;

#endif  // defined(__linux__)

}  // namespace

const char* to_string(PmuStatus status) noexcept {
  switch (status) {
    case PmuStatus::kUnsupported: return "unsupported-platform";
    case PmuStatus::kNoCounters: return "no-counters";
    case PmuStatus::kPermissionDenied: return "permission-denied";
    case PmuStatus::kDisabled: return "disabled";
    case PmuStatus::kHardware: return "hardware";
    case PmuStatus::kSoftwareOnly: return "software-only";
  }
  return "unknown";
}

struct PmuEngine::Impl {
  std::mutex mutex;  ///< guards probing / status transitions
  std::atomic<int> status{static_cast<int>(PmuStatus::kDisabled)};
  std::atomic<bool> active{false};
  bool probed = false;
  std::atomic<std::uint32_t> generation{0};
  std::atomic<std::uint64_t> totals[kNumPmuSlots]{};
  std::atomic<unsigned> totals_mask{0};

  /// Publishes the availability gauges; the one place status changes.
  void set_status(PmuStatus s) {
    status.store(static_cast<int>(s), std::memory_order_relaxed);
    active.store(static_cast<int>(s) > 0, std::memory_order_relaxed);
    auto& reg = MetricsRegistry::instance();
    reg.gauge("obs.pmu.available").set(static_cast<int>(s) > 0 ? 1.0 : 0.0);
    reg.gauge("obs.pmu.status").set(static_cast<double>(static_cast<int>(s)));
  }
};

PmuEngine::PmuEngine() : impl_(new Impl) {}

PmuEngine& PmuEngine::instance() {
  // Intentionally leaked, like the tracer: scopes may finish during static
  // destruction.
  static PmuEngine* engine = new PmuEngine();
  return *engine;
}

PmuStatus PmuEngine::enable(bool on) {
  const std::lock_guard lock(impl_->mutex);
  if (env_forces_off() || !on) {
    impl_->set_status(PmuStatus::kDisabled);
    // Invalidate open per-thread groups so they are re-opened (not reused)
    // if the engine is later re-armed; threads that read() while disabled
    // close their group immediately.
    impl_->generation.fetch_add(1, std::memory_order_relaxed);
    return PmuStatus::kDisabled;
  }
  if (impl_->probed) {
    // Re-arming after a plain disable (status was pinned to kDisabled but
    // the probe result is sticky) re-runs the probe below.
    if (impl_->status.load(std::memory_order_relaxed) != 0) {
      return status();
    }
  }
  impl_->probed = true;
#if defined(__linux__)
  // Probe with a throwaway group on this thread: per-thread groups open
  // lazily at first read() with whatever tier the probe lands on.
  ThreadGroup probe;
  if (probe.open(PmuStatus::kHardware)) {
    probe.close_group();
    impl_->set_status(PmuStatus::kHardware);
  } else if (classify_errno(probe.leader_errno) ==
             PmuStatus::kPermissionDenied) {
    impl_->set_status(PmuStatus::kPermissionDenied);
  } else {
    ThreadGroup sw;
    if (sw.open(PmuStatus::kSoftwareOnly)) {
      sw.close_group();
      impl_->set_status(PmuStatus::kSoftwareOnly);
    } else {
      impl_->set_status(classify_errno(sw.leader_errno));
    }
  }
#else
  impl_->set_status(PmuStatus::kUnsupported);
#endif
  impl_->generation.fetch_add(1, std::memory_order_relaxed);
  return status();
}

PmuStatus PmuEngine::configure_from_env() {
  const char* v = std::getenv("EARDEC_PMU");
  if (v == nullptr) {
    // Publish the current (likely kDisabled) status so metrics dumps
    // always carry the availability gauges.
    const std::lock_guard lock(impl_->mutex);
    impl_->set_status(status());
    return status();
  }
  if (env_forces_off()) return enable(false);
  return enable(true);  // "1" / "on" / "true" / "auto"
}

PmuStatus PmuEngine::status() const noexcept {
  return static_cast<PmuStatus>(impl_->status.load(std::memory_order_relaxed));
}

bool PmuEngine::active() const noexcept {
  return impl_->active.load(std::memory_order_relaxed);
}

bool PmuEngine::read(PmuSample& out) noexcept {
  if (!active()) {
#if defined(__linux__)
    // Drop this thread's counter group as soon as the disable is observed
    // instead of letting the fds count until thread exit or re-enable.
    if (t_pmu.group.attempted) t_pmu.group.close_group();
#endif
    return false;
  }
#if defined(__linux__)
  ThreadGroup& g = t_pmu.group;
  const std::uint32_t gen = impl_->generation.load(std::memory_order_relaxed);
  if (g.attempted && g.generation != gen) g.close_group();
  if (!g.attempted) {
    g.attempted = true;
    g.generation = gen;
    g.open(status());
  }
  if (!g.ok) return false;
  return g.read_sample(out);
#else
  (void)out;
  return false;
#endif
}

PmuSample PmuEngine::totals() const noexcept {
  PmuSample s;
  for (std::size_t i = 0; i < kNumPmuSlots; ++i) {
    s.v[i] = impl_->totals[i].load(std::memory_order_relaxed);
  }
  s.mask = static_cast<std::uint8_t>(
      impl_->totals_mask.load(std::memory_order_relaxed));
  return s;
}

void PmuEngine::finish_scope(const char* span_name, std::uint64_t start_ns,
                             std::uint64_t dur_ns, const PmuSample& begin,
                             const char* arg_name, std::uint64_t arg) {
  PmuSample end;
  if (!read(end)) {
    Tracer::instance().record_span(span_name, start_ns, dur_ns, arg_name, arg);
    return;
  }
  PmuSample delta;
  delta.mask = static_cast<std::uint8_t>(begin.mask & end.mask);
  for (std::size_t i = 0; i < kNumPmuSlots; ++i) {
    if ((delta.mask & (1u << i)) == 0) continue;
    // Multiplex scaling can make a counter appear to step backwards by a
    // little; clamp instead of wrapping to ~2^64.
    delta.v[i] = end.v[i] >= begin.v[i] ? end.v[i] - begin.v[i] : 0;
  }
  Tracer::instance().record_span_pmu(span_name, start_ns, dur_ns, delta.v,
                                     delta.mask, arg_name, arg);

  auto& reg = MetricsRegistry::instance();
  static Counter* const slot_totals[kNumPmuSlots] = {
      &reg.counter("obs.pmu.cycles"),
      &reg.counter("obs.pmu.instructions"),
      &reg.counter("obs.pmu.cache_references"),
      &reg.counter("obs.pmu.cache_misses"),
      &reg.counter("obs.pmu.branch_misses"),
      &reg.counter("obs.pmu.task_clock_ns"),
  };
  for (std::size_t i = 0; i < kNumPmuSlots; ++i) {
    if ((delta.mask & (1u << i)) == 0) continue;
    impl_->totals[i].fetch_add(delta.v[i], std::memory_order_relaxed);
    slot_totals[i]->add(delta.v[i]);
  }
  impl_->totals_mask.fetch_or(delta.mask, std::memory_order_relaxed);

  // Per-phase derived gauges. The lookup builds two short strings — noise
  // next to the perf read() syscalls this scope just issued, and only paid
  // while PMU profiling is switched on.
  constexpr std::uint8_t kIpcSlots = (1u << kPmuCycles) |
                                     (1u << kPmuInstructions);
  constexpr std::uint8_t kMissSlots = (1u << kPmuCacheReferences) |
                                      (1u << kPmuCacheMisses);
  std::string base = "pmu.";
  base += span_name;
  if ((delta.mask & kIpcSlots) == kIpcSlots && delta.v[kPmuCycles] > 0) {
    reg.gauge(base + ".ipc")
        .set(static_cast<double>(delta.v[kPmuInstructions]) /
             static_cast<double>(delta.v[kPmuCycles]));
  }
  if ((delta.mask & kMissSlots) == kMissSlots &&
      delta.v[kPmuCacheReferences] > 0) {
    reg.gauge(base + ".cache_miss_rate")
        .set(static_cast<double>(delta.v[kPmuCacheMisses]) /
             static_cast<double>(delta.v[kPmuCacheReferences]));
  }
}

void PmuEngine::force_status_for_test(PmuStatus status) {
  const std::lock_guard lock(impl_->mutex);
  impl_->probed = true;
  impl_->set_status(status);
  impl_->generation.fetch_add(1, std::memory_order_relaxed);
}

void PmuEngine::reset_for_test() {
  const std::lock_guard lock(impl_->mutex);
  impl_->probed = false;
  impl_->set_status(PmuStatus::kDisabled);
  impl_->generation.fetch_add(1, std::memory_order_relaxed);
}

PmuScopedSpan::PmuScopedSpan(const char* name, const char* arg_name,
                             std::uint64_t arg)
    : name_(name), arg_name_(arg_name), arg_(arg) {
  PmuEngine& engine = PmuEngine::instance();
  pmu_ = engine.active() && engine.read(begin_);
  if (pmu_ || Tracer::instance().enabled()) {
    start_ns_ = Tracer::now_ns();
  } else {
    name_ = nullptr;
  }
}

PmuScopedSpan::~PmuScopedSpan() {
  if (name_ == nullptr) return;
  const std::uint64_t end_ns = Tracer::now_ns();
  if (pmu_) {
    PmuEngine::instance().finish_scope(name_, start_ns_, end_ns - start_ns_,
                                       begin_, arg_name_, arg_);
  } else {
    Tracer::instance().record_span(name_, start_ns_, end_ns - start_ns_,
                                   arg_name_, arg_);
  }
}

}  // namespace eardec::obs
