#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <mutex>
#include <ostream>

#ifdef __unix__
#include <unistd.h>
#endif

#if defined(__GNUC__) && !defined(__clang__) && defined(__SANITIZE_THREAD__)
// GCC's TSan pass has no fence instrumentation and rejects
// std::atomic_thread_fence under -Werror (-Wtsan). The flight-mirror
// seqlock is deliberately fence-based — its reader runs inside a signal
// handler and must not touch locks — so under TSan the fences compile
// uninstrumented; the labeled tests quiesce writers before dumping.
#pragma GCC diagnostic ignored "-Wtsan"
#endif

namespace eardec::obs {
namespace {

using Clock = std::chrono::steady_clock;

/// One thread lane. The owning thread is the only writer; `count` is the
/// publication point (slot store first, then a release store of count+1).
struct ThreadBuffer {
  std::array<TraceEvent, Tracer::kRingCapacity> events;
  std::atomic<std::uint64_t> count{0};  ///< total events ever pushed
  std::uint32_t tid = 0;                ///< registration order, stable
  std::string name;                     ///< guarded by the tracer mutex
};

/// Escapes a string for embedding in a JSON string literal. Only names we
/// control flow through here (span literals, lane labels), but keep the
/// output well-formed for anything.
void write_json_escaped(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
}

/// One slot of the flight recorder's counter mirror: a fixed-size POD copy
/// of the newest counter samples, readable from a signal handler. Each slot
/// carries a seqlock (odd while the writer is inside) so a dump can detect
/// and skip a slot caught mid-write instead of emitting torn data.
struct FlightCounterSlot {
  std::atomic<std::uint32_t> seq{0};
  char track[32] = {};
  std::uint64_t ts_ns = 0;
  double value = 0.0;
};

}  // namespace

struct Tracer::Impl {
  Clock::time_point epoch = Clock::now();
  std::atomic<bool> enabled{false};
  mutable std::mutex mutex;  ///< guards buffers/free_list/lane names
  /// Held by the sampler across each tick and by export paths first (lock
  /// order: sampler_gate before mutex), so exports quiesce the sampler.
  mutable std::mutex sampler_gate;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::vector<ThreadBuffer*> free_list;  ///< lanes of exited threads
  std::vector<CounterSample> counter_samples;  ///< guarded by mutex
  std::uint64_t dropped_counter_samples = 0;   ///< guarded by mutex

  /// Lock-free lane registry for the flight recorder: ThreadBuffer
  /// allocations are stable (owned by `buffers`, never freed — exited
  /// threads only return lanes to the free list), so publishing the raw
  /// pointers into a fixed atomic array lets a signal handler walk every
  /// lane without touching the mutex. Slot i mirrors buffers[i]; the count
  /// is release-published after the slot store.
  static constexpr std::size_t kMaxFlightLanes = 64;
  std::atomic<ThreadBuffer*> flight_lanes[kMaxFlightLanes] = {};
  std::atomic<std::uint32_t> flight_lane_count{0};

  /// Counter mirror ring (newest kFlightCounterSlots samples), written
  /// under the mutex in record_counter_at, read lock-free via the per-slot
  /// seqlocks by write_flight_dump.
  static constexpr std::size_t kFlightCounterSlots = 256;
  FlightCounterSlot flight_counters[kFlightCounterSlots];
  std::atomic<std::uint64_t> flight_counter_cursor{0};

  ThreadBuffer* acquire() {
    const std::lock_guard lock(mutex);
    if (!free_list.empty()) {
      ThreadBuffer* buf = free_list.back();
      free_list.pop_back();
      return buf;
    }
    buffers.push_back(std::make_unique<ThreadBuffer>());
    buffers.back()->tid = static_cast<std::uint32_t>(buffers.size() - 1);
    ThreadBuffer* buf = buffers.back().get();
    if (buf->tid < kMaxFlightLanes) {
      flight_lanes[buf->tid].store(buf, std::memory_order_release);
      flight_lane_count.store(static_cast<std::uint32_t>(
                                  std::min(buffers.size(), kMaxFlightLanes)),
                              std::memory_order_release);
    }
    return buf;
  }

  void release(ThreadBuffer* buf) {
    const std::lock_guard lock(mutex);
    free_list.push_back(buf);
  }

  void mirror_counter(const std::string& track, std::uint64_t ts_ns,
                      double value) {
    const std::uint64_t cur =
        flight_counter_cursor.load(std::memory_order_relaxed);
    FlightCounterSlot& slot = flight_counters[cur % kFlightCounterSlots];
    slot.seq.fetch_add(1, std::memory_order_relaxed);  // odd: write in flight
    std::atomic_thread_fence(std::memory_order_release);
    const std::size_t n = std::min(track.size(), sizeof(slot.track) - 1);
    std::memcpy(slot.track, track.data(), n);
    slot.track[n] = '\0';
    slot.ts_ns = ts_ns;
    slot.value = value;
    slot.seq.fetch_add(1, std::memory_order_release);  // even: stable
    flight_counter_cursor.store(cur + 1, std::memory_order_release);
  }
};

namespace {

/// Thread-local lane handle: lazily acquired on the first recorded event,
/// returned to the free list when the thread exits so later threads reuse
/// the lane (and its tid) instead of growing the registry.
struct ThreadHandle {
  Tracer::Impl* impl = nullptr;
  ThreadBuffer* buf = nullptr;
  ~ThreadHandle() {
    if (buf != nullptr) impl->release(buf);
  }
};

thread_local ThreadHandle t_lane;

ThreadBuffer& current_buffer(Tracer::Impl& impl) {
  if (t_lane.buf == nullptr) {
    t_lane.impl = &impl;
    t_lane.buf = impl.acquire();
  }
  return *t_lane.buf;
}

}  // namespace

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::instance() {
  // Intentionally leaked: worker threads and static destructors may record
  // or release lanes arbitrarily late in shutdown.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::set_enabled(bool enabled) noexcept {
  if constexpr (!kTracingEnabled) return;
  impl_->enabled.store(enabled, std::memory_order_relaxed);
}

bool Tracer::enabled() const noexcept {
  if constexpr (!kTracingEnabled) return false;
  return impl_->enabled.load(std::memory_order_relaxed);
}

std::uint64_t Tracer::now_ns() noexcept {
  const auto& epoch = instance().impl_->epoch;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

void Tracer::record_span(const char* name, std::uint64_t start_ns,
                         std::uint64_t dur_ns, const char* arg_name,
                         std::uint64_t arg) {
  if (!enabled()) return;
  ThreadBuffer& buf = current_buffer(*impl_);
  const std::uint64_t c = buf.count.load(std::memory_order_relaxed);
  buf.events[c % kRingCapacity] = {name, arg_name, start_ns, dur_ns, arg};
  buf.count.store(c + 1, std::memory_order_release);
}

void Tracer::record_span_pmu(const char* name, std::uint64_t start_ns,
                             std::uint64_t dur_ns,
                             const std::uint64_t pmu[TraceEvent::kNumPmuSlots],
                             std::uint8_t pmu_mask, const char* arg_name,
                             std::uint64_t arg) {
  if (!enabled()) return;
  ThreadBuffer& buf = current_buffer(*impl_);
  const std::uint64_t c = buf.count.load(std::memory_order_relaxed);
  TraceEvent& slot = buf.events[c % kRingCapacity];
  slot = {name, arg_name, start_ns, dur_ns, arg};
  for (std::size_t i = 0; i < TraceEvent::kNumPmuSlots; ++i) {
    slot.pmu[i] = pmu[i];
  }
  slot.pmu_mask = pmu_mask;
  buf.count.store(c + 1, std::memory_order_release);
}

void Tracer::record_span_linked(const char* name, std::uint64_t start_ns,
                                std::uint64_t dur_ns, std::uint64_t qid,
                                std::uint32_t span_id, std::uint32_t parent_id,
                                const char* arg_name, std::uint64_t arg) {
  if (!enabled()) return;
  ThreadBuffer& buf = current_buffer(*impl_);
  const std::uint64_t c = buf.count.load(std::memory_order_relaxed);
  TraceEvent& slot = buf.events[c % kRingCapacity];
  slot = {name, arg_name, start_ns, dur_ns, arg};
  slot.qid = qid;
  slot.span_id = span_id;
  slot.parent_id = parent_id;
  buf.count.store(c + 1, std::memory_order_release);
}

void Tracer::record_counter_at(const std::string& track, std::uint64_t ts_ns,
                               double value) {
  if (!enabled()) return;
  const std::lock_guard lock(impl_->mutex);
  impl_->mirror_counter(track, ts_ns, value);
  if (impl_->counter_samples.size() >= kMaxCounterSamples) {
    ++impl_->dropped_counter_samples;
    return;
  }
  impl_->counter_samples.push_back({track, ts_ns, value});
}

void Tracer::record_counter(const std::string& track, double value) {
  record_counter_at(track, now_ns(), value);
}

std::vector<CounterSample> Tracer::counter_samples() const {
  const std::lock_guard lock(impl_->mutex);
  return impl_->counter_samples;
}

std::uint64_t Tracer::dropped_counter_samples() const {
  const std::lock_guard lock(impl_->mutex);
  return impl_->dropped_counter_samples;
}

std::mutex& Tracer::sampler_gate() noexcept { return impl_->sampler_gate; }

void Tracer::set_current_thread_name(std::string name) {
  if (!enabled()) return;
  ThreadBuffer& buf = current_buffer(*impl_);
  const std::lock_guard lock(impl_->mutex);
  buf.name = std::move(name);
}

void Tracer::clear() {
  const std::lock_guard gate(impl_->sampler_gate);
  const std::lock_guard lock(impl_->mutex);
  for (const auto& buf : impl_->buffers) {
    buf->count.store(0, std::memory_order_relaxed);
  }
  impl_->counter_samples.clear();
  impl_->dropped_counter_samples = 0;
}

std::size_t Tracer::recorded_events() const {
  const std::lock_guard lock(impl_->mutex);
  std::size_t total = 0;
  for (const auto& buf : impl_->buffers) {
    total += static_cast<std::size_t>(std::min<std::uint64_t>(
        buf->count.load(std::memory_order_acquire), kRingCapacity));
  }
  return total;
}

std::uint64_t Tracer::dropped_events() const {
  const std::lock_guard lock(impl_->mutex);
  std::uint64_t dropped = 0;
  for (const auto& buf : impl_->buffers) {
    const std::uint64_t c = buf->count.load(std::memory_order_acquire);
    if (c > kRingCapacity) dropped += c - kRingCapacity;
  }
  return dropped;
}

std::vector<SnapshotEvent> Tracer::snapshot() const {
  std::vector<SnapshotEvent> out;
  {
    const std::lock_guard gate(impl_->sampler_gate);
    const std::lock_guard lock(impl_->mutex);
    for (const auto& buf : impl_->buffers) {
      const std::uint64_t c = buf->count.load(std::memory_order_acquire);
      const std::uint64_t n = std::min<std::uint64_t>(c, kRingCapacity);
      for (std::uint64_t i = c - n; i < c; ++i) {
        out.push_back({buf->events[i % kRingCapacity], buf->tid, buf->name});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SnapshotEvent& a, const SnapshotEvent& b) {
              return a.event.start_ns < b.event.start_ns;
            });
  return out;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  // Quiesce a running sampler for the whole export (lock order: gate, then
  // the tracer mutex — the same order every sampling tick uses).
  const std::lock_guard gate(impl_->sampler_gate);
  const std::lock_guard lock(impl_->mutex);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  comma();
  out << R"({"ph":"M","pid":1,"tid":0,"name":"process_name",)"
      << R"("args":{"name":"eardec"}})";
  for (const auto& buf : impl_->buffers) {
    if (!buf->name.empty()) {
      comma();
      out << R"({"ph":"M","pid":1,"tid":)" << buf->tid
          << R"(,"name":"thread_name","args":{"name":")";
      write_json_escaped(out, buf->name);
      out << "\"}}";
    }
    const std::uint64_t c = buf->count.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(c, kRingCapacity);
    for (std::uint64_t i = c - n; i < c; ++i) {
      const TraceEvent& e = buf->events[i % kRingCapacity];
      comma();
      out << R"({"ph":"X","pid":1,"tid":)" << buf->tid << R"(,"name":")";
      write_json_escaped(out, e.name);
      // Trace-event timestamps are microseconds; keep ns precision via the
      // fractional part.
      out << R"(","ts":)" << static_cast<double>(e.start_ns) / 1000.0
          << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0;
      if (e.arg_name != nullptr || e.pmu_mask != 0 || e.qid != 0) {
        out << ",\"args\":{";
        bool first_arg = true;
        const auto arg_comma = [&] {
          if (!first_arg) out << ",";
          first_arg = false;
        };
        if (e.arg_name != nullptr) {
          arg_comma();
          out << "\"";
          write_json_escaped(out, e.arg_name);
          out << "\":" << e.arg;
        }
        // Span links (tools/critical_path.py stitches them into per-query
        // trees; see obs/query_trace.hpp).
        if (e.qid != 0) {
          arg_comma();
          out << "\"qid\":" << e.qid << ",\"span\":" << e.span_id
              << ",\"parent\":" << e.parent_id;
        }
        for (std::size_t s = 0; s < TraceEvent::kNumPmuSlots; ++s) {
          if ((e.pmu_mask & (1u << s)) == 0) continue;
          arg_comma();
          out << "\"" << kPmuSlotNames[s] << "\":" << e.pmu[s];
        }
        // Derived ratios, when the contributing slots are both present
        // (slot order: cycles, instructions, cache_references,
        // cache_misses, branch_misses, task_clock_ns).
        if ((e.pmu_mask & 0x3) == 0x3 && e.pmu[0] > 0) {
          arg_comma();
          out << "\"ipc\":"
              << static_cast<double>(e.pmu[1]) / static_cast<double>(e.pmu[0]);
        }
        if ((e.pmu_mask & 0xc) == 0xc && e.pmu[2] > 0) {
          arg_comma();
          out << "\"cache_miss_rate\":"
              << static_cast<double>(e.pmu[3]) / static_cast<double>(e.pmu[2]);
        }
        out << "}";
      }
      out << "}";
    }
  }
  // Counter tracks ("ph":"C"): Perfetto renders one time-series track per
  // name, above the span lanes.
  for (const CounterSample& s : impl_->counter_samples) {
    comma();
    out << R"({"ph":"C","pid":1,"tid":0,"name":")";
    write_json_escaped(out, s.track);
    out << R"(","ts":)" << static_cast<double>(s.ts_ns) / 1000.0
        << ",\"args\":{\"value\":" << s.value << "}}";
  }
  out << "\n]}\n";
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

// ---------------------------------------------------------------------------
// Flight dump: the async-signal-safe export path. Everything below uses only
// write(2) plus hand-rolled formatting — no locks, no allocation, no stdio —
// so obs/flight_recorder.hpp can call it from SIGSEGV/SIGABRT handlers.
// Events a thread is writing concurrently are tolerated: the newest slot of
// a lane may be torn, so names are copied through a sanitizer that keeps the
// JSON well-formed no matter what bytes are found.
// ---------------------------------------------------------------------------

namespace {

#ifdef __unix__

/// Buffered signal-safe writer: batches small appends into a fixed buffer
/// and flushes with write(2), retrying on EINTR.
struct FlightWriter {
  int fd;
  char buf[1024];
  std::size_t len = 0;
  bool ok = true;

  explicit FlightWriter(int fd_in) : fd(fd_in) {}

  void flush() noexcept {
    std::size_t off = 0;
    while (ok && off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        ok = false;
      }
    }
    len = 0;
  }

  void put(char c) noexcept {
    if (len == sizeof(buf)) flush();
    buf[len++] = c;
  }

  void raw(const char* s) noexcept {
    for (; *s != '\0'; ++s) put(*s);
  }

  void u64(std::uint64_t v) noexcept {
    char digits[20];
    std::size_t n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) put(digits[--n]);
  }

  /// Fixed-point double with 3 decimals (counter values are sizes/rates;
  /// snprintf is not signal-safe). Clamps non-finite/huge values.
  void fixed(double v) noexcept {
    if (!(v > -1e18 && v < 1e18)) {  // also catches NaN
      raw("0");
      return;
    }
    if (v < 0) {
      put('-');
      v = -v;
    }
    const std::uint64_t whole = static_cast<std::uint64_t>(v);
    const std::uint64_t milli =
        static_cast<std::uint64_t>((v - static_cast<double>(whole)) * 1000.0);
    u64(whole);
    put('.');
    put(static_cast<char>('0' + milli / 100 % 10));
    put(static_cast<char>('0' + milli / 10 % 10));
    put(static_cast<char>('0' + milli % 10));
  }

  /// Emits a quoted JSON string from possibly-torn memory: copies at most
  /// `cap` bytes, stops at NUL, and replaces anything that could break the
  /// JSON (quotes, backslashes, control or non-ASCII bytes) with '_'.
  void sanitized(const char* s, std::size_t cap) noexcept {
    put('"');
    for (std::size_t i = 0; s != nullptr && i < cap && s[i] != '\0'; ++i) {
      const unsigned char c = static_cast<unsigned char>(s[i]);
      put(c >= 0x20 && c < 0x7f && c != '"' && c != '\\'
              ? static_cast<char>(c)
              : '_');
    }
    put('"');
  }
};

#endif  // __unix__

}  // namespace

bool Tracer::write_flight_dump(int fd, const char* reason) const noexcept {
#if !defined(__unix__)
  (void)fd;
  (void)reason;
  return false;
#else
  if constexpr (!kTracingEnabled) return false;
  if (fd < 0) return false;
  // Cap the per-lane event and mirrored-counter walk so the dump stays
  // small and fast even with full rings (a crash handler should not spend
  // seconds formatting 8k events x 64 lanes).
  constexpr std::uint64_t kEventsPerLane = 256;
  FlightWriter w(fd);
  w.raw("{\"flight\":1,\"reason\":");
  w.sanitized(reason != nullptr ? reason : "unknown", 64);
  w.raw(",\"now_ns\":");
  w.u64(now_ns());
  w.raw(",\"lanes\":[");
  const std::uint32_t lanes =
      impl_->flight_lane_count.load(std::memory_order_acquire);
  bool first_lane = true;
  for (std::uint32_t l = 0; l < lanes && l < Impl::kMaxFlightLanes; ++l) {
    const ThreadBuffer* buf =
        impl_->flight_lanes[l].load(std::memory_order_acquire);
    if (buf == nullptr) continue;
    if (!first_lane) w.put(',');
    first_lane = false;
    w.raw("{\"tid\":");
    w.u64(buf->tid);
    w.raw(",\"events\":[");
    const std::uint64_t c = buf->count.load(std::memory_order_acquire);
    const std::uint64_t n =
        std::min<std::uint64_t>({c, kRingCapacity, kEventsPerLane});
    for (std::uint64_t i = c - n; i < c; ++i) {
      const TraceEvent& e = buf->events[i % kRingCapacity];
      if (i != c - n) w.put(',');
      w.raw("{\"name\":");
      w.sanitized(e.name, 64);
      w.raw(",\"start_ns\":");
      w.u64(e.start_ns);
      w.raw(",\"dur_ns\":");
      w.u64(e.dur_ns);
      if (e.qid != 0) {
        w.raw(",\"qid\":");
        w.u64(e.qid);
        w.raw(",\"span\":");
        w.u64(e.span_id);
        w.raw(",\"parent\":");
        w.u64(e.parent_id);
      }
      if (e.arg_name != nullptr) {
        w.raw(",\"arg_name\":");
        w.sanitized(e.arg_name, 64);
        w.raw(",\"arg\":");
        w.u64(e.arg);
      }
      w.put('}');
    }
    w.raw("]}");
  }
  w.raw("],\"counters\":[");
  const std::uint64_t cur =
      impl_->flight_counter_cursor.load(std::memory_order_acquire);
  const std::uint64_t nc =
      std::min<std::uint64_t>(cur, Impl::kFlightCounterSlots);
  bool first_counter = true;
  for (std::uint64_t i = cur - nc; i < cur; ++i) {
    const FlightCounterSlot& slot =
        impl_->flight_counters[i % Impl::kFlightCounterSlots];
    const std::uint32_t seq1 = slot.seq.load(std::memory_order_acquire);
    if ((seq1 & 1u) != 0) continue;  // writer caught mid-slot: skip
    char track[sizeof(slot.track)];
    std::memcpy(track, slot.track, sizeof(track));
    const std::uint64_t ts = slot.ts_ns;
    const double value = slot.value;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq1) continue;
    if (!first_counter) w.put(',');
    first_counter = false;
    w.raw("{\"track\":");
    w.sanitized(track, sizeof(track) - 1);
    w.raw(",\"ts_ns\":");
    w.u64(ts);
    w.raw(",\"value\":");
    w.fixed(value);
    w.put('}');
  }
  w.raw("]}\n");
  w.flush();
  return w.ok;
#endif
}

}  // namespace eardec::obs
