#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <ostream>

namespace eardec::obs {
namespace {

using Clock = std::chrono::steady_clock;

/// One thread lane. The owning thread is the only writer; `count` is the
/// publication point (slot store first, then a release store of count+1).
struct ThreadBuffer {
  std::array<TraceEvent, Tracer::kRingCapacity> events;
  std::atomic<std::uint64_t> count{0};  ///< total events ever pushed
  std::uint32_t tid = 0;                ///< registration order, stable
  std::string name;                     ///< guarded by the tracer mutex
};

/// Escapes a string for embedding in a JSON string literal. Only names we
/// control flow through here (span literals, lane labels), but keep the
/// output well-formed for anything.
void write_json_escaped(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

struct Tracer::Impl {
  Clock::time_point epoch = Clock::now();
  std::atomic<bool> enabled{false};
  mutable std::mutex mutex;  ///< guards buffers/free_list/lane names
  /// Held by the sampler across each tick and by export paths first (lock
  /// order: sampler_gate before mutex), so exports quiesce the sampler.
  mutable std::mutex sampler_gate;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::vector<ThreadBuffer*> free_list;  ///< lanes of exited threads
  std::vector<CounterSample> counter_samples;  ///< guarded by mutex
  std::uint64_t dropped_counter_samples = 0;   ///< guarded by mutex

  ThreadBuffer* acquire() {
    const std::lock_guard lock(mutex);
    if (!free_list.empty()) {
      ThreadBuffer* buf = free_list.back();
      free_list.pop_back();
      return buf;
    }
    buffers.push_back(std::make_unique<ThreadBuffer>());
    buffers.back()->tid = static_cast<std::uint32_t>(buffers.size() - 1);
    return buffers.back().get();
  }

  void release(ThreadBuffer* buf) {
    const std::lock_guard lock(mutex);
    free_list.push_back(buf);
  }
};

namespace {

/// Thread-local lane handle: lazily acquired on the first recorded event,
/// returned to the free list when the thread exits so later threads reuse
/// the lane (and its tid) instead of growing the registry.
struct ThreadHandle {
  Tracer::Impl* impl = nullptr;
  ThreadBuffer* buf = nullptr;
  ~ThreadHandle() {
    if (buf != nullptr) impl->release(buf);
  }
};

thread_local ThreadHandle t_lane;

ThreadBuffer& current_buffer(Tracer::Impl& impl) {
  if (t_lane.buf == nullptr) {
    t_lane.impl = &impl;
    t_lane.buf = impl.acquire();
  }
  return *t_lane.buf;
}

}  // namespace

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::instance() {
  // Intentionally leaked: worker threads and static destructors may record
  // or release lanes arbitrarily late in shutdown.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::set_enabled(bool enabled) noexcept {
  if constexpr (!kTracingEnabled) return;
  impl_->enabled.store(enabled, std::memory_order_relaxed);
}

bool Tracer::enabled() const noexcept {
  if constexpr (!kTracingEnabled) return false;
  return impl_->enabled.load(std::memory_order_relaxed);
}

std::uint64_t Tracer::now_ns() noexcept {
  const auto& epoch = instance().impl_->epoch;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

void Tracer::record_span(const char* name, std::uint64_t start_ns,
                         std::uint64_t dur_ns, const char* arg_name,
                         std::uint64_t arg) {
  if (!enabled()) return;
  ThreadBuffer& buf = current_buffer(*impl_);
  const std::uint64_t c = buf.count.load(std::memory_order_relaxed);
  buf.events[c % kRingCapacity] = {name, arg_name, start_ns, dur_ns, arg};
  buf.count.store(c + 1, std::memory_order_release);
}

void Tracer::record_span_pmu(const char* name, std::uint64_t start_ns,
                             std::uint64_t dur_ns,
                             const std::uint64_t pmu[TraceEvent::kNumPmuSlots],
                             std::uint8_t pmu_mask, const char* arg_name,
                             std::uint64_t arg) {
  if (!enabled()) return;
  ThreadBuffer& buf = current_buffer(*impl_);
  const std::uint64_t c = buf.count.load(std::memory_order_relaxed);
  TraceEvent& slot = buf.events[c % kRingCapacity];
  slot = {name, arg_name, start_ns, dur_ns, arg};
  for (std::size_t i = 0; i < TraceEvent::kNumPmuSlots; ++i) {
    slot.pmu[i] = pmu[i];
  }
  slot.pmu_mask = pmu_mask;
  buf.count.store(c + 1, std::memory_order_release);
}

void Tracer::record_counter_at(const std::string& track, std::uint64_t ts_ns,
                               double value) {
  if (!enabled()) return;
  const std::lock_guard lock(impl_->mutex);
  if (impl_->counter_samples.size() >= kMaxCounterSamples) {
    ++impl_->dropped_counter_samples;
    return;
  }
  impl_->counter_samples.push_back({track, ts_ns, value});
}

void Tracer::record_counter(const std::string& track, double value) {
  record_counter_at(track, now_ns(), value);
}

std::vector<CounterSample> Tracer::counter_samples() const {
  const std::lock_guard lock(impl_->mutex);
  return impl_->counter_samples;
}

std::uint64_t Tracer::dropped_counter_samples() const {
  const std::lock_guard lock(impl_->mutex);
  return impl_->dropped_counter_samples;
}

std::mutex& Tracer::sampler_gate() noexcept { return impl_->sampler_gate; }

void Tracer::set_current_thread_name(std::string name) {
  if (!enabled()) return;
  ThreadBuffer& buf = current_buffer(*impl_);
  const std::lock_guard lock(impl_->mutex);
  buf.name = std::move(name);
}

void Tracer::clear() {
  const std::lock_guard gate(impl_->sampler_gate);
  const std::lock_guard lock(impl_->mutex);
  for (const auto& buf : impl_->buffers) {
    buf->count.store(0, std::memory_order_relaxed);
  }
  impl_->counter_samples.clear();
  impl_->dropped_counter_samples = 0;
}

std::size_t Tracer::recorded_events() const {
  const std::lock_guard lock(impl_->mutex);
  std::size_t total = 0;
  for (const auto& buf : impl_->buffers) {
    total += static_cast<std::size_t>(std::min<std::uint64_t>(
        buf->count.load(std::memory_order_acquire), kRingCapacity));
  }
  return total;
}

std::uint64_t Tracer::dropped_events() const {
  const std::lock_guard lock(impl_->mutex);
  std::uint64_t dropped = 0;
  for (const auto& buf : impl_->buffers) {
    const std::uint64_t c = buf->count.load(std::memory_order_acquire);
    if (c > kRingCapacity) dropped += c - kRingCapacity;
  }
  return dropped;
}

std::vector<SnapshotEvent> Tracer::snapshot() const {
  std::vector<SnapshotEvent> out;
  {
    const std::lock_guard gate(impl_->sampler_gate);
    const std::lock_guard lock(impl_->mutex);
    for (const auto& buf : impl_->buffers) {
      const std::uint64_t c = buf->count.load(std::memory_order_acquire);
      const std::uint64_t n = std::min<std::uint64_t>(c, kRingCapacity);
      for (std::uint64_t i = c - n; i < c; ++i) {
        out.push_back({buf->events[i % kRingCapacity], buf->tid, buf->name});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SnapshotEvent& a, const SnapshotEvent& b) {
              return a.event.start_ns < b.event.start_ns;
            });
  return out;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  // Quiesce a running sampler for the whole export (lock order: gate, then
  // the tracer mutex — the same order every sampling tick uses).
  const std::lock_guard gate(impl_->sampler_gate);
  const std::lock_guard lock(impl_->mutex);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  comma();
  out << R"({"ph":"M","pid":1,"tid":0,"name":"process_name",)"
      << R"("args":{"name":"eardec"}})";
  for (const auto& buf : impl_->buffers) {
    if (!buf->name.empty()) {
      comma();
      out << R"({"ph":"M","pid":1,"tid":)" << buf->tid
          << R"(,"name":"thread_name","args":{"name":")";
      write_json_escaped(out, buf->name);
      out << "\"}}";
    }
    const std::uint64_t c = buf->count.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(c, kRingCapacity);
    for (std::uint64_t i = c - n; i < c; ++i) {
      const TraceEvent& e = buf->events[i % kRingCapacity];
      comma();
      out << R"({"ph":"X","pid":1,"tid":)" << buf->tid << R"(,"name":")";
      write_json_escaped(out, e.name);
      // Trace-event timestamps are microseconds; keep ns precision via the
      // fractional part.
      out << R"(","ts":)" << static_cast<double>(e.start_ns) / 1000.0
          << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0;
      if (e.arg_name != nullptr || e.pmu_mask != 0) {
        out << ",\"args\":{";
        bool first_arg = true;
        const auto arg_comma = [&] {
          if (!first_arg) out << ",";
          first_arg = false;
        };
        if (e.arg_name != nullptr) {
          arg_comma();
          out << "\"";
          write_json_escaped(out, e.arg_name);
          out << "\":" << e.arg;
        }
        for (std::size_t s = 0; s < TraceEvent::kNumPmuSlots; ++s) {
          if ((e.pmu_mask & (1u << s)) == 0) continue;
          arg_comma();
          out << "\"" << kPmuSlotNames[s] << "\":" << e.pmu[s];
        }
        // Derived ratios, when the contributing slots are both present
        // (slot order: cycles, instructions, cache_references,
        // cache_misses, branch_misses, task_clock_ns).
        if ((e.pmu_mask & 0x3) == 0x3 && e.pmu[0] > 0) {
          arg_comma();
          out << "\"ipc\":"
              << static_cast<double>(e.pmu[1]) / static_cast<double>(e.pmu[0]);
        }
        if ((e.pmu_mask & 0xc) == 0xc && e.pmu[2] > 0) {
          arg_comma();
          out << "\"cache_miss_rate\":"
              << static_cast<double>(e.pmu[3]) / static_cast<double>(e.pmu[2]);
        }
        out << "}";
      }
      out << "}";
    }
  }
  // Counter tracks ("ph":"C"): Perfetto renders one time-series track per
  // name, above the span lanes.
  for (const CounterSample& s : impl_->counter_samples) {
    comma();
    out << R"({"ph":"C","pid":1,"tid":0,"name":")";
    write_json_escaped(out, s.track);
    out << R"(","ts":)" << static_cast<double>(s.ts_ns) / 1000.0
        << ",\"args\":{\"value\":" << s.value << "}}";
  }
  out << "\n]}\n";
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

}  // namespace eardec::obs
