// Tail-sampled slow-query exemplar store (docs/observability.md,
// "Per-query tracing & flight recorder").
//
// Aggregate histograms say what the p99 is; exemplars say why. The SlowLog
// is a fixed-size lock-free ring of full per-query span trees, retained for
// queries whose total latency crosses a dynamic p99-tracking threshold,
// plus 1-in-N uniform samples so fast queries stay represented. The
// serving layer calls observe() with each answered query's open-loop
// latency; on a Keep verdict it copies the QueryTrace's collected spans and
// attribution components into a ring slot. Slots are claimed with an
// atomic cursor and guarded by per-slot seqlocks, so retention never
// blocks the serving path and dump_json() (the `GET /debug/slow` route and
// `eardec_cli serve --slow-log`) skips slots caught mid-write.
//
// The p99 threshold is self-calibrating: observe() feeds a log2 latency
// histogram and every 256 observations recomputes the 0.99 quantile's
// bucket lower bound into a cached atomic. Until 512 queries have been
// observed the threshold is +inf (only uniform samples retain), so cold
// caches do not flood the ring.
//
// Under EARDEC_ENABLE_TRACING=OFF the store compiles to permanent-disarmed
// stubs: arm() is a no-op, observe() always answers No, and the serving
// layer's exemplar branches are never taken.
#pragma once

#include <cstdint>
#include <string>

#include "obs/query_trace.hpp"

namespace eardec::obs {

class SlowLog {
 public:
  /// Exemplar slots retained (newest wins once the ring wraps).
  static constexpr std::size_t kRingSlots = 64;
  /// Queries observed before the p99 threshold activates.
  static constexpr std::uint64_t kWarmupObservations = 512;

  /// The process-wide store. Never destroyed (like Tracer).
  static SlowLog& instance();

  /// Retention verdict for one answered query.
  enum class Keep : std::uint8_t {
    kNo = 0,
    kSlowTail = 1,  ///< total latency >= dynamic p99 threshold
    kUniform = 2,   ///< 1-in-N uniform sample
  };

  /// Enables collection: QueryTraces constructed while armed collect their
  /// spans, and observe() starts issuing Keep verdicts. `uniform_stride`
  /// keeps every Nth observed query regardless of latency (0 = tail-only).
  /// No-op when tracing is compiled out.
  void arm(std::uint64_t uniform_stride = 1024) noexcept;
  void disarm() noexcept;
  [[nodiscard]] bool armed() const noexcept;

  /// Feeds the p99 tracker with one query's total latency and returns the
  /// retention verdict. Thread-safe, lock-free, a few relaxed atomics.
  [[nodiscard]] Keep observe(std::uint64_t total_ns) noexcept;

  /// Copies one query's exemplar (attribution + collected span tree) into
  /// the ring. `s`/`t` identify a representative query pair, `batch` the
  /// batch size it was answered in (1 = scalar path).
  void retain(const QueryTrace& trace, std::uint64_t total_ns, Keep reason,
              std::uint32_t s, std::uint32_t t, std::uint32_t batch,
              std::uint64_t epoch) noexcept;

  /// JSON dump of the ring (the `/debug/slow` response body): threshold,
  /// counts, and every stable exemplar with its span tree, newest last.
  [[nodiscard]] std::string dump_json() const;

  [[nodiscard]] std::size_t retained() const noexcept;
  [[nodiscard]] std::uint64_t observed() const noexcept;
  /// Current slow-tail threshold (UINT64_MAX while warming up / disarmed).
  [[nodiscard]] std::uint64_t threshold_ns() const noexcept;

  /// Drops all exemplars and resets the p99 tracker (keeps armed state).
  void clear() noexcept;

  struct Impl;  ///< opaque; defined in slow_log.cpp

 private:
  SlowLog();
  ~SlowLog() = delete;  // leaked singleton

  Impl* impl_;
};

}  // namespace eardec::obs
