#include "obs/sampler.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stop_token>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/pmu.hpp"
#include "obs/trace.hpp"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace eardec::obs {

double read_rss_mb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return -1.0;
  unsigned long total_pages = 0;  // NOLINT(google-runtime-int): scanf ABI
  unsigned long resident_pages = 0;
  const int matched = std::fscanf(f, "%lu %lu", &total_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2) return -1.0;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return -1.0;
  return static_cast<double>(resident_pages) * static_cast<double>(page) /
         (1024.0 * 1024.0);
#else
  return -1.0;
#endif
}

double read_peak_rss_mb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1.0;
  char line[256];
  double peak_mb = -1.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long kb = 0;  // NOLINT(google-runtime-int): scanf ABI
    if (std::sscanf(line, "VmHWM: %lu kB", &kb) == 1) {
      peak_mb = static_cast<double>(kb) / 1024.0;
      break;
    }
  }
  std::fclose(f);
  return peak_mb;
#else
  return -1.0;
#endif
}

struct Sampler::Impl {
  std::mutex lifecycle;  ///< serializes start()/stop()
  std::jthread thread;
  std::atomic<bool> running{false};
  std::atomic<std::uint64_t> ticks{0};
  Options options;  ///< written under `lifecycle` before the thread starts

  void tick() {
    Tracer& tracer = Tracer::instance();
    // One gate hold per tick: exports acquire the gate first, so a tick is
    // atomic with respect to snapshot()/write_chrome_trace()/clear().
    const std::lock_guard gate(tracer.sampler_gate());
    const std::uint64_t ts = Tracer::now_ns();
    if (options.sample_rss) {
      const double rss = read_rss_mb();
      if (rss >= 0.0) tracer.record_counter_at("rss_mb", ts, rss);
    }
    if (options.sample_pmu) {
      PmuEngine& engine = PmuEngine::instance();
      if (engine.active()) {
        const PmuSample totals = engine.totals();
        for (std::size_t s = 0; s < kNumPmuSlots; ++s) {
          if ((totals.mask & (1u << s)) == 0) continue;
          tracer.record_counter_at(std::string("pmu.") + kPmuSlotNames[s], ts,
                                   static_cast<double>(totals.v[s]));
        }
      }
    }
    auto& reg = MetricsRegistry::instance();
    for (const std::string& name : options.counters) {
      tracer.record_counter_at(name, ts,
                               static_cast<double>(reg.counter_value(name)));
    }
    ticks.fetch_add(1, std::memory_order_relaxed);
    static Counter& sampled = reg.counter("obs.sampler.samples");
    sampled.add(1);
  }

  void run(const std::stop_token& st) {
    std::mutex wake_mutex;
    std::condition_variable_any wake;
    const auto period = std::chrono::milliseconds(options.period_ms);
    while (!st.stop_requested()) {
      tick();
      std::unique_lock lk(wake_mutex);
      // Wakes early on stop_request via the stop_token overload.
      wake.wait_for(lk, st, period, [&st] { return st.stop_requested(); });
    }
    tick();  // final sample, so stop() always leaves fresh data behind
  }
};

Sampler::Sampler() : impl_(new Impl) {}

Sampler& Sampler::instance() {
  // Intentionally leaked, like the tracer and the PMU engine.
  static Sampler* sampler = new Sampler();
  return *sampler;
}

void Sampler::start() { start(Options{}); }

void Sampler::start(const Options& options) {
  const std::lock_guard lock(impl_->lifecycle);
  if (impl_->running.load(std::memory_order_relaxed)) return;
  impl_->options = options;
  if (impl_->options.period_ms == 0) impl_->options.period_ms = 1;
  impl_->running.store(true, std::memory_order_relaxed);
  impl_->thread =
      std::jthread([impl = impl_](const std::stop_token& st) { impl->run(st); });
}

bool Sampler::configure_from_env() {
  const char* v = std::getenv("EARDEC_SAMPLER");
  if (v == nullptr || *v == '\0') return false;
  const std::string s(v);
  if (s == "off" || s == "false" || s == "0") return false;
  Options options;
  char* end = nullptr;
  const long period = std::strtol(v, &end, 10);
  if (end != v && *end == '\0') {
    if (period <= 0) return false;
    options.period_ms = static_cast<std::uint32_t>(period);
  }
  // Non-numeric truthy values ("on", "auto", "true") keep the default.
  start(options);
  return true;
}

void Sampler::stop() {
  const std::lock_guard lock(impl_->lifecycle);
  if (!impl_->running.load(std::memory_order_relaxed)) return;
  impl_->thread.request_stop();
  impl_->thread.join();
  impl_->running.store(false, std::memory_order_relaxed);
}

bool Sampler::running() const noexcept {
  return impl_->running.load(std::memory_order_relaxed);
}

std::uint64_t Sampler::ticks() const noexcept {
  return impl_->ticks.load(std::memory_order_relaxed);
}

}  // namespace eardec::obs
