#include "obs/flight_recorder.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/trace.hpp"

#if defined(__unix__)
#include <csignal>
#include <fcntl.h>
#include <unistd.h>
#endif

namespace eardec::obs {

#if defined(__unix__) && EARDEC_TRACING_ENABLED

namespace {

// All handler-visible state is file-scope POD: a signal handler must not
// reach through anything that could allocate or lock.
constexpr std::size_t kMaxPath = 512;
char g_path[kMaxPath] = {};
std::atomic<bool> g_armed{false};
std::atomic<bool> g_dumping{false};  ///< reentrancy guard (nested faults)
struct sigaction g_prev_segv = {};
struct sigaction g_prev_abrt = {};

std::atomic<std::uint64_t> g_last_heartbeat_ns{0};
std::atomic<bool> g_watchdog_fired{false};
std::thread* g_watchdog = nullptr;  ///< leaked on purpose (like the Tracer)
std::atomic<bool> g_watchdog_stop{false};

bool write_dump(const char* reason) noexcept {
  if (!g_armed.load(std::memory_order_acquire)) return false;
  if (g_dumping.exchange(true, std::memory_order_acq_rel)) return false;
  const int fd = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  bool ok = false;
  if (fd >= 0) {
    ok = Tracer::instance().write_flight_dump(fd, reason);
    ::close(fd);
  }
  g_dumping.store(false, std::memory_order_release);
  return ok;
}

void on_fatal_signal(int sig) {
  write_dump(sig == SIGSEGV ? "signal:SIGSEGV" : "signal:SIGABRT");
  // Restore the previous disposition and re-raise so default crash
  // semantics (exit code, core dump) are preserved.
  struct sigaction* prev = sig == SIGSEGV ? &g_prev_segv : &g_prev_abrt;
  ::sigaction(sig, prev, nullptr);
  ::raise(sig);
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

bool FlightRecorder::arm(const std::string& path) {
  // Touch the tracer singleton now: the handler must never be the first
  // caller of instance().
  (void)Tracer::instance();
  if (path.empty()) {
    std::snprintf(g_path, sizeof(g_path), "eardec-flight-%d.json",
                  static_cast<int>(::getpid()));
  } else {
    std::snprintf(g_path, sizeof(g_path), "%s", path.c_str());
  }
  if (g_armed.load(std::memory_order_acquire)) return true;  // path updated
  struct sigaction sa = {};
  sa.sa_handler = &on_fatal_signal;
  sigemptyset(&sa.sa_mask);
  // Belt and braces vs. the explicit restore in the handler.
  sa.sa_flags = static_cast<int>(SA_RESETHAND);
  if (::sigaction(SIGSEGV, &sa, &g_prev_segv) != 0) return false;
  if (::sigaction(SIGABRT, &sa, &g_prev_abrt) != 0) {
    ::sigaction(SIGSEGV, &g_prev_segv, nullptr);
    return false;
  }
  g_armed.store(true, std::memory_order_release);
  return true;
}

bool FlightRecorder::configure_from_env() {
  const char* env = std::getenv("EARDEC_FLIGHT");
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0)) {
    return false;
  }
  return arm(env != nullptr ? env : "");
}

bool FlightRecorder::armed() const noexcept {
  return g_armed.load(std::memory_order_acquire);
}

const std::string& FlightRecorder::path() const noexcept {
  static std::string path;
  path = g_path;
  return path;
}

void FlightRecorder::start_watchdog(std::uint64_t stall_ms) {
  stop_watchdog();
  heartbeat();
  g_watchdog_stop.store(false, std::memory_order_relaxed);
  g_watchdog = new std::thread([stall_ms] {
    const std::uint64_t stall_ns = stall_ms * 1'000'000ull;
    while (!g_watchdog_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      const std::uint64_t last =
          g_last_heartbeat_ns.load(std::memory_order_relaxed);
      if (Tracer::now_ns() - last < stall_ns) continue;
      // One dump per stall episode; a resumed heartbeat re-arms.
      if (!g_watchdog_fired.exchange(true, std::memory_order_relaxed)) {
        write_dump("stall-watchdog");
      }
    }
  });
}

void FlightRecorder::stop_watchdog() {
  if (g_watchdog == nullptr) return;
  g_watchdog_stop.store(true, std::memory_order_relaxed);
  g_watchdog->join();
  delete g_watchdog;
  g_watchdog = nullptr;
}

void FlightRecorder::heartbeat() noexcept {
  g_last_heartbeat_ns.store(Tracer::now_ns(), std::memory_order_relaxed);
  g_watchdog_fired.store(false, std::memory_order_relaxed);
}

bool FlightRecorder::dump_now(const char* reason) noexcept {
  return write_dump(reason != nullptr ? reason : "manual");
}

#else  // stubs: tracing compiled out or non-POSIX host

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

bool FlightRecorder::arm(const std::string&) { return false; }
bool FlightRecorder::configure_from_env() { return false; }
bool FlightRecorder::armed() const noexcept { return false; }
const std::string& FlightRecorder::path() const noexcept {
  static const std::string empty;
  return empty;
}
void FlightRecorder::start_watchdog(std::uint64_t) {}
void FlightRecorder::stop_watchdog() {}
void FlightRecorder::heartbeat() noexcept {}
bool FlightRecorder::dump_now(const char*) noexcept { return false; }

#endif

}  // namespace eardec::obs
