// Background time-series sampler — the counter-track half of the tracing
// story (see docs/profiling.md).
//
// An opt-in thread that wakes every `period_ms` and appends one batch of
// counter samples to the tracer:
//   * "rss_mb"            — resident set size from /proc/self/statm;
//   * "pmu.<slot>"        — process-wide PMU totals (obs/pmu.hpp), one
//                           track per live counter slot;
//   * "<registry name>"   — selected MetricsRegistry counters (scheduler
//                           unit throughput by default).
// The Chrome exporter emits them as "ph":"C" events, which Perfetto
// renders as time-series tracks above the worker span lanes.
//
// Concurrency contract: every tick happens entirely under the tracer's
// sampler_gate() (gate first, tracer mutex second — the same order the
// export paths use), so snapshot()/write_chrome_trace()/clear() quiesce a
// still-running sampler instead of racing it. Samples are dropped, not
// blocked on, past Tracer::kMaxCounterSamples. Like the tracer itself, the
// sampler records nothing while tracing is disabled — ticks still run, but
// they are cheap.
//
// Wired to `eardec_cli --pmu` and the EARDEC_SAMPLER env var of the bench
// binaries ("<ms>" sets the period, "on"/"auto" picks the default,
// "off"/"0" leaves it stopped).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eardec::obs {

/// Resident set size in MiB from /proc/self/statm, or a negative value
/// when unavailable (non-Linux). Shared by the sampler's "rss_mb" counter
/// track and the stats server's scrape-time `eardec_process_rss_mb` gauge.
[[nodiscard]] double read_rss_mb();

/// Peak resident set size in MiB (VmHWM from /proc/self/status), or a
/// negative value when unavailable. The scaling bench and the CLI RSS gate
/// compare this against the Phase 0–I memory model.
[[nodiscard]] double read_peak_rss_mb();

class Sampler {
 public:
  struct Options {
    std::uint32_t period_ms = 10;
    bool sample_rss = true;
    bool sample_pmu = true;
    /// Registry counters mirrored as counter tracks each tick.
    std::vector<std::string> counters = {
        "hetero.scheduler.cpu_units",
        "hetero.scheduler.device_units",
    };
  };

  /// The process-wide sampler. Never destroyed; the thread is joined by
  /// stop(), not by a destructor.
  static Sampler& instance();

  /// Starts the sampling thread (idempotent; a running sampler keeps its
  /// current options). The first sample is taken immediately, and one
  /// final sample is taken on stop(), so even sub-period runs get data.
  void start(const Options& options);
  void start();  ///< start(Options{}) — defaults throughout

  /// Applies the EARDEC_SAMPLER env var (see header comment). Returns true
  /// when the sampler was started.
  bool configure_from_env();

  /// Requests stop and joins the sampling thread. Safe to call when not
  /// running.
  void stop();

  [[nodiscard]] bool running() const noexcept;

  /// Ticks taken since process start (monotonic; survives stop/start).
  [[nodiscard]] std::uint64_t ticks() const noexcept;

  struct Impl;  ///< opaque; defined in sampler.cpp

 private:
  Sampler();
  ~Sampler() = delete;  // leaked singleton

  Impl* impl_;
};

}  // namespace eardec::obs
