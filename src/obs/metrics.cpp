#include "obs/metrics.hpp"

#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

namespace eardec::obs {

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;  ///< guards the maps, not the instrument values
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;

  template <typename T>
  static T& find_or_create(
      std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
      std::string_view name) {
    const auto it = map.find(name);
    if (it != map.end()) return *it->second;
    return *map.emplace(std::string(name), std::make_unique<T>())
                .first->second;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry& MetricsRegistry::instance() {
  // Intentionally leaked: instruments are referenced from function-local
  // statics that may fire during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard lock(impl_->mutex);
  return Impl::find_or_create(impl_->counters, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard lock(impl_->mutex);
  return Impl::find_or_create(impl_->gauges, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard lock(impl_->mutex);
  return Impl::find_or_create(impl_->histograms, name);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const std::lock_guard lock(impl_->mutex);
  const auto it = impl_->counters.find(name);
  return it != impl_->counters.end() ? it->second->value() : 0;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const std::lock_guard lock(impl_->mutex);
  const auto it = impl_->gauges.find(name);
  return it != impl_->gauges.end() ? it->second->value() : 0.0;
}

void MetricsRegistry::reset_values() {
  const std::lock_guard lock(impl_->mutex);
  for (const auto& [name, c] : impl_->counters) c->reset();
  for (const auto& [name, g] : impl_->gauges) g->reset();
  for (const auto& [name, h] : impl_->histograms) h->reset();
}

void MetricsRegistry::write_json(std::ostream& out) const {
  const std::lock_guard lock(impl_->mutex);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : impl_->counters) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : impl_->gauges) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": " << g->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : impl_->histograms) {
    out << (first ? "" : ",") << "\n    \"" << name
        << "\": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
        << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n == 0) continue;
      out << (first_bucket ? "" : ", ") << "{\"le\": "
          << Histogram::bucket_max(i) << ", \"count\": " << n << "}";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  const std::lock_guard lock(impl_->mutex);
  out << "kind,name,field,value\n";
  for (const auto& [name, c] : impl_->counters) {
    out << "counter," << name << ",value," << c->value() << '\n';
  }
  for (const auto& [name, g] : impl_->gauges) {
    out << "gauge," << name << ",value," << g->value() << '\n';
  }
  for (const auto& [name, h] : impl_->histograms) {
    out << "histogram," << name << ",count," << h->count() << '\n';
    out << "histogram," << name << ",sum," << h->sum() << '\n';
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n == 0) continue;
      out << "histogram," << name << ",le_" << Histogram::bucket_max(i) << ','
          << n << '\n';
    }
  }
}

bool MetricsRegistry::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  if (path.ends_with(".csv")) {
    write_csv(out);
  } else {
    write_json(out);
  }
  return static_cast<bool>(out);
}

}  // namespace eardec::obs
