#include "obs/metrics.hpp"

#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <utility>

namespace eardec::obs {

double Histogram::quantile(double q) const noexcept {
  // One coherent-ish snapshot: the per-bucket loads are relaxed, so a
  // concurrent record() can land between them — acceptable for telemetry.
  std::uint64_t counts[kNumBuckets];
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  if (!(q > 0.0)) q = 0.0;  // also catches NaN
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  std::size_t last_nonempty = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    last_nonempty = i;
    const auto n = static_cast<double>(counts[i]);
    if (cum + n >= target) {
      // Fraction of this bucket's mass below the target rank, linearly
      // spread over the bucket's value range.
      const double frac = (target - cum) / n;
      const auto lo = static_cast<double>(bucket_min(i));
      const auto hi = static_cast<double>(bucket_max(i));
      return lo + frac * (hi - lo);
    }
    cum += n;
  }
  // Rounding pushed the target past the accumulated mass: clamp to the top
  // of the last populated bucket (the q = 1 answer).
  return static_cast<double>(bucket_max(last_nonempty));
}

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;  ///< guards the maps, not the instrument values
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;

  template <typename T>
  static T& find_or_create(
      std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
      std::string_view name) {
    const auto it = map.find(name);
    if (it != map.end()) return *it->second;
    return *map.emplace(std::string(name), std::make_unique<T>())
                .first->second;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry& MetricsRegistry::instance() {
  // Intentionally leaked: instruments are referenced from function-local
  // statics that may fire during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard lock(impl_->mutex);
  return Impl::find_or_create(impl_->counters, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard lock(impl_->mutex);
  return Impl::find_or_create(impl_->gauges, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard lock(impl_->mutex);
  return Impl::find_or_create(impl_->histograms, name);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const std::lock_guard lock(impl_->mutex);
  const auto it = impl_->counters.find(name);
  return it != impl_->counters.end() ? it->second->value() : 0;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const std::lock_guard lock(impl_->mutex);
  const auto it = impl_->gauges.find(name);
  return it != impl_->gauges.end() ? it->second->value() : 0.0;
}

void MetricsRegistry::reset_values() {
  const std::lock_guard lock(impl_->mutex);
  for (const auto& [name, c] : impl_->counters) c->reset();
  for (const auto& [name, g] : impl_->gauges) g->reset();
  for (const auto& [name, h] : impl_->histograms) h->reset();
}

void MetricsRegistry::write_json(std::ostream& out) const {
  const std::lock_guard lock(impl_->mutex);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : impl_->counters) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : impl_->gauges) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": " << g->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : impl_->histograms) {
    out << (first ? "" : ",") << "\n    \"" << name
        << "\": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
        << ", \"p50\": " << h->quantile(0.50)
        << ", \"p90\": " << h->quantile(0.90)
        << ", \"p99\": " << h->quantile(0.99) << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n == 0) continue;
      out << (first_bucket ? "" : ", ") << "{\"le\": "
          << Histogram::bucket_max(i) << ", \"count\": " << n << "}";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  const std::lock_guard lock(impl_->mutex);
  out << "kind,name,field,value\n";
  for (const auto& [name, c] : impl_->counters) {
    out << "counter," << name << ",value," << c->value() << '\n';
  }
  for (const auto& [name, g] : impl_->gauges) {
    out << "gauge," << name << ",value," << g->value() << '\n';
  }
  for (const auto& [name, h] : impl_->histograms) {
    out << "histogram," << name << ",count," << h->count() << '\n';
    out << "histogram," << name << ",sum," << h->sum() << '\n';
    out << "histogram," << name << ",p50," << h->quantile(0.50) << '\n';
    out << "histogram," << name << ",p90," << h->quantile(0.90) << '\n';
    out << "histogram," << name << ",p99," << h->quantile(0.99) << '\n';
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n == 0) continue;
      out << "histogram," << name << ",le_" << Histogram::bucket_max(i) << ','
          << n << '\n';
    }
  }
}

namespace {

/// Mangles a registry name into a legal Prometheus metric name:
/// `eardec_` prefix, every character outside [a-zA-Z0-9_] becomes '_'.
std::string prometheus_name(const std::string& name) {
  std::string out = "eardec_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  const std::lock_guard lock(impl_->mutex);
  out.precision(10);
  for (const auto& [name, c] : impl_->counters) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " counter\n" << p << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : impl_->gauges) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " gauge\n" << p << ' ' << g->value() << '\n';
  }
  for (const auto& [name, h] : impl_->histograms) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " histogram\n";
    // Prometheus buckets are cumulative. Snapshot the bucket counts once so
    // the le series stays monotone and agrees with +Inf/_count even while
    // other threads keep recording.
    std::uint64_t counts[Histogram::kNumBuckets];
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      counts[i] = h->bucket_count(i);
      total += counts[i];
    }
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (counts[i] == 0) continue;
      cum += counts[i];
      out << p << "_bucket{le=\"" << Histogram::bucket_max(i) << "\"} " << cum
          << '\n';
    }
    out << p << "_bucket{le=\"+Inf\"} " << total << '\n';
    out << p << "_sum " << h->sum() << '\n';
    out << p << "_count " << total << '\n';
    // Derived quantile gauges: Prometheus histograms carry no quantiles of
    // their own, and the log2 buckets make server-side estimation coarse;
    // exporting the library's own interpolated estimates keeps dashboards
    // and the JSON exporter in agreement.
    for (const auto& [suffix, q] :
         {std::pair<const char*, double>{"_p50", 0.50},
          {"_p90", 0.90},
          {"_p99", 0.99}}) {
      out << "# TYPE " << p << suffix << " gauge\n"
          << p << suffix << ' ' << h->quantile(q) << '\n';
    }
  }
}

bool MetricsRegistry::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  if (path.ends_with(".csv")) {
    write_csv(out);
  } else {
    write_json(out);
  }
  return static_cast<bool>(out);
}

}  // namespace eardec::obs
