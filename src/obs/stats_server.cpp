#include "obs/stats_server.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"

// The serving implementation rides the tracer's compile-time gate: a
// -DEARDEC_ENABLE_TRACING=OFF build ships no HTTP code at all (the CI
// tracing-off job grep-asserts the exposition strings are absent).
#if EARDEC_TRACING_ENABLED && defined(__unix__)
#define EARDEC_STATS_SERVER_IMPL 1
#else
#define EARDEC_STATS_SERVER_IMPL 0
#endif

#if EARDEC_STATS_SERVER_IMPL
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "obs/slow_log.hpp"
#endif

namespace eardec::obs {

struct StatsServer::Impl {
  std::mutex lifecycle;  ///< serializes start()/stop()
  std::atomic<bool> running{false};
  std::atomic<std::uint16_t> bound_port{0};
  std::atomic<std::uint64_t> requests{0};
  std::mutex routes_mutex;  ///< guards route_handler swaps vs. dispatch
  HttpRouteHandler route_handler;
#if EARDEC_STATS_SERVER_IMPL
  int listen_fd = -1;
  std::jthread thread;

  void serve(const std::stop_token& st);
  void handle(int fd);
#endif
};

StatsServer::StatsServer() : impl_(new Impl) {}

StatsServer& StatsServer::instance() {
  // Intentionally leaked, like the tracer / registry / sampler singletons.
  static StatsServer* server = new StatsServer();
  return *server;
}

bool StatsServer::running() const noexcept {
  return impl_->running.load(std::memory_order_relaxed);
}

std::uint16_t StatsServer::port() const noexcept {
  return impl_->bound_port.load(std::memory_order_relaxed);
}

std::uint64_t StatsServer::requests_served() const noexcept {
  return impl_->requests.load(std::memory_order_relaxed);
}

void StatsServer::set_route_handler(HttpRouteHandler handler) {
  const std::lock_guard lock(impl_->routes_mutex);
  impl_->route_handler = std::move(handler);
}

bool StatsServer::configure_from_env() {
  const char* v = std::getenv("EARDEC_STATS_PORT");
  if (v == nullptr || *v == '\0') return false;
  const std::string s(v);
  if (s == "off" || s == "false") return false;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed < 0 || parsed > 65535) {
    std::fprintf(stderr, "stats: ignoring EARDEC_STATS_PORT=%s\n", v);
    return false;
  }
  return start(static_cast<std::uint16_t>(parsed));
}

#if !EARDEC_STATS_SERVER_IMPL

bool StatsServer::start(std::uint16_t) {
#if !EARDEC_TRACING_ENABLED
  std::fprintf(stderr, "stats: unavailable (tracing compiled out)\n");
#else
  std::fprintf(stderr, "stats: unavailable (no POSIX sockets)\n");
#endif
  return false;
}

void StatsServer::stop() {}

#else  // EARDEC_STATS_SERVER_IMPL

namespace {

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone or timeout: drop the rest
    off += static_cast<std::size_t>(n);
  }
}

void respond(int fd, int code, const char* reason, const char* content_type,
             const std::string& body, bool head_only) {
  std::string head = "HTTP/1.1 " + std::to_string(code) + ' ' + reason +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  send_all(fd, head);
  if (!head_only) send_all(fd, body);
}

/// The /metrics body: the registry in Prometheus exposition format plus
/// scrape-time process gauges the registry does not carry.
std::string metrics_body() {
  auto& reg = MetricsRegistry::instance();
  static Counter& scrapes = reg.counter("obs.stats.scrapes");
  scrapes.add(1);
  std::ostringstream os;
  reg.write_prometheus(os);
  os.precision(10);
  const double rss = read_rss_mb();
  if (rss >= 0.0) {
    os << "# TYPE eardec_process_rss_mb gauge\neardec_process_rss_mb " << rss
       << '\n';
  }
  os << "# TYPE eardec_process_uptime_seconds gauge\n"
     << "eardec_process_uptime_seconds "
     << static_cast<double>(Tracer::now_ns()) / 1e9 << '\n';
  return os.str();
}

std::string stats_json_body() {
  std::ostringstream os;
  MetricsRegistry::instance().write_json(os);
  return os.str();
}

const char* reason_of(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    default: return status < 400 ? "OK" : "Error";
  }
}

/// Content-Length of the request, parsed case-insensitively from the header
/// block; 0 when absent or malformed.
std::size_t content_length_of(const std::string& headers) {
  std::string lower(headers.size(), '\0');
  for (std::size_t i = 0; i < headers.size(); ++i) {
    lower[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(headers[i])));
  }
  const std::size_t pos = lower.find("\r\ncontent-length:");
  if (pos == std::string::npos) return 0;
  const char* p = headers.c_str() + pos + 17;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(p, &end, 10);
  return end == p ? 0 : static_cast<std::size_t>(v);
}

}  // namespace

void StatsServer::Impl::handle(int fd) {
  // Read until the end of the request headers (bounded), then — POST only —
  // the Content-Length-framed body, capped at 1 MiB so a misbehaving local
  // client cannot balloon the serving thread.
  constexpr std::size_t kMaxBody = 1u << 20;
  std::string req;
  char buf[4096];
  std::size_t header_end = std::string::npos;
  while (req.size() < 8192 &&
         (header_end = req.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }
  requests.fetch_add(1, std::memory_order_relaxed);

  const std::size_t eol = req.find("\r\n");
  const std::size_t sp1 = req.find(' ');
  if (eol == std::string::npos || header_end == std::string::npos ||
      sp1 == std::string::npos || sp1 > eol) {
    respond(fd, 400, "Bad Request", "text/plain; charset=utf-8",
            "bad request\n", false);
    return;
  }
  const std::string method = req.substr(0, sp1);
  std::size_t sp2 = req.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 > eol) sp2 = eol;
  std::string path = req.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string query_string;
  const std::size_t query = path.find('?');
  if (query != std::string::npos) {
    query_string = path.substr(query + 1);
    path.resize(query);
  }

  const bool head_only = method == "HEAD";

  // The pluggable routes get first refusal — and are the only consumers of
  // request bodies, so the body is read just for them.
  HttpRouteHandler handler;
  {
    const std::lock_guard lock(routes_mutex);
    handler = route_handler;
  }
  if (handler) {
    std::string body = req.substr(header_end + 4);
    if (method == "POST") {
      const std::size_t want =
          content_length_of(req.substr(0, header_end + 2));
      if (want > kMaxBody) {
        respond(fd, 413, reason_of(413), "text/plain; charset=utf-8",
                "body too large\n", false);
        return;
      }
      while (body.size() < want) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) break;
        body.append(buf, static_cast<std::size_t>(n));
      }
      // Strict framing: a body shorter than Content-Length (client hung up
      // or lied and we burned the receive timeout) or longer (more bytes
      // than declared) is a malformed request, not a payload to truncate.
      if (body.size() != want) {
        respond(fd, 400, reason_of(400), "text/plain; charset=utf-8",
                "body does not match Content-Length\n", false);
        return;
      }
    } else {
      body.clear();
    }
    const HttpRequest request{.method = head_only ? "GET" : method,
                              .path = path,
                              .query = query_string,
                              .body = std::move(body)};
    HttpResponse response;
    if (handler(request, response)) {
      respond(fd, response.status, reason_of(response.status),
              response.content_type.c_str(), response.body, head_only);
      return;
    }
  }

  if (method != "GET" && !head_only) {
    respond(fd, 405, "Method Not Allowed", "text/plain; charset=utf-8",
            "only GET here\n", false);
    return;
  }
  if (path == "/metrics") {
    respond(fd, 200, "OK", "text/plain; version=0.0.4; charset=utf-8",
            metrics_body(), head_only);
  } else if (path == "/healthz" || path == "/") {
    respond(fd, 200, "OK", "text/plain; charset=utf-8", "ok\n", head_only);
  } else if (path == "/stats.json") {
    respond(fd, 200, "OK", "application/json; charset=utf-8",
            stats_json_body(), head_only);
  } else if (path == "/debug/slow") {
    // Slow-query exemplar ring (obs/slow_log.hpp): span trees + latency
    // attribution for tail-sampled queries.
    respond(fd, 200, "OK", "application/json; charset=utf-8",
            SlowLog::instance().dump_json() + "\n", head_only);
  } else {
    respond(fd, 404, "Not Found", "text/plain; charset=utf-8", "not found\n",
            head_only);
  }
}

void StatsServer::Impl::serve(const std::stop_token& st) {
  // Label the lane in traces (no-op while the tracer is disabled).
  Tracer::instance().set_current_thread_name("stats-server");
  while (!st.stop_requested()) {
    // Poll with a short timeout so a stop request is honored promptly
    // without closing the listening socket out from under the thread.
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = static_cast<short>(POLLIN);
    const int r = ::poll(&pfd, 1, 100);
    if (r <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    // Bounded patience with slow or stuck clients: this thread serves one
    // connection at a time, so a stalled peer must not wedge the endpoint.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    handle(conn);
    ::close(conn);
  }
}

bool StatsServer::start(std::uint16_t port) {
  const std::lock_guard lock(impl_->lifecycle);
  if (impl_->running.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "stats: already serving on port %u\n",
                 static_cast<unsigned>(
                     impl_->bound_port.load(std::memory_order_relaxed)));
    return false;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "stats: socket: %s\n", std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = static_cast<in_port_t>(htons(port));
  // Loopback only: this is a local scrape endpoint, not a public listener.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 8) != 0) {
    std::fprintf(stderr, "stats: cannot serve on port %u: %s\n",
                 static_cast<unsigned>(port),
                 std::strerror(errno));
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  std::uint16_t actual = port;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    actual = static_cast<std::uint16_t>(ntohs(bound.sin_port));
  }
  impl_->listen_fd = fd;
  impl_->bound_port.store(actual, std::memory_order_relaxed);
  impl_->running.store(true, std::memory_order_relaxed);
  impl_->thread =
      std::jthread([impl = impl_](const std::stop_token& st) { impl->serve(st); });
  std::fprintf(stderr, "stats: serving http://127.0.0.1:%u/metrics\n",
               static_cast<unsigned>(actual));
  return true;
}

void StatsServer::stop() {
  const std::lock_guard lock(impl_->lifecycle);
  if (!impl_->running.load(std::memory_order_relaxed)) return;
  impl_->thread.request_stop();
  impl_->thread.join();
  ::close(impl_->listen_fd);
  impl_->listen_fd = -1;
  impl_->bound_port.store(0, std::memory_order_relaxed);
  impl_->running.store(false, std::memory_order_relaxed);
}

#endif  // EARDEC_STATS_SERVER_IMPL

}  // namespace eardec::obs
