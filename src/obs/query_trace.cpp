#include "obs/query_trace.hpp"

#include <algorithm>

#include "obs/slow_log.hpp"

namespace eardec::obs {
namespace {

std::atomic<std::uint64_t> g_next_query_id{1};

/// Thread-local context: which query this thread is currently working for,
/// and the span id new spans attach under. Plain (non-atomic) members —
/// each thread only reads/writes its own slot.
struct TlsContext {
  QueryTrace* trace = nullptr;
  std::uint32_t parent = 0;
};

thread_local TlsContext t_query_ctx;

}  // namespace

std::uint64_t next_query_id() noexcept {
  return g_next_query_id.fetch_add(1, std::memory_order_relaxed);
}

QueryTrace::QueryTrace(std::uint64_t arrival_ns_in)
    : arrival_ns(arrival_ns_in),
      query_id_(next_query_id()),
      collect_spans_(SlowLog::instance().armed()) {}

void QueryTrace::emit(std::uint32_t span_id, std::uint32_t parent_id,
                      const char* name, std::uint64_t start_ns,
                      std::uint64_t dur_ns, const char* arg_name,
                      std::uint64_t arg) noexcept {
  Tracer::instance().record_span_linked(name, start_ns, dur_ns, query_id_,
                                        span_id, parent_id, arg_name, arg);
  if (!collect_spans_) return;
  const std::uint32_t idx =
      collected_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kMaxSpans) return;  // counted, not retained
  spans_[idx] = {name, start_ns, dur_ns, span_id, parent_id};
}

std::uint32_t QueryTrace::span_count() const noexcept {
  return std::min<std::uint32_t>(
      collected_.load(std::memory_order_relaxed),
      static_cast<std::uint32_t>(kMaxSpans));
}

QueryTrace* current_query_trace() noexcept { return t_query_ctx.trace; }

std::uint32_t current_parent_span() noexcept { return t_query_ctx.parent; }

QueryTraceScope::QueryTraceScope(QueryTrace* trace,
                                 std::uint32_t parent_span) noexcept
    : prev_trace_(t_query_ctx.trace), prev_parent_(t_query_ctx.parent) {
  t_query_ctx.trace = trace;
  t_query_ctx.parent = parent_span;
}

QueryTraceScope::~QueryTraceScope() {
  t_query_ctx.trace = prev_trace_;
  t_query_ctx.parent = prev_parent_;
}

QuerySpan::QuerySpan(const char* name, const char* arg_name,
                     std::uint64_t arg) noexcept
    : trace_(t_query_ctx.trace), name_(name), arg_name_(arg_name), arg_(arg) {
  if (trace_ == nullptr) return;
  span_id_ = trace_->allocate_span();
  parent_id_ = t_query_ctx.parent;
  t_query_ctx.parent = span_id_;
  start_ns_ = Tracer::now_ns();
}

QuerySpan::~QuerySpan() {
  if (trace_ == nullptr) return;
  t_query_ctx.parent = parent_id_;
  trace_->emit(span_id_, parent_id_, name_, start_ns_,
               Tracer::now_ns() - start_ns_, arg_name_, arg_);
}

}  // namespace eardec::obs
