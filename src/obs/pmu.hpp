// Hardware-counter self-profiling — the perf_event half of the
// observability layer (trace.hpp / metrics.hpp are the others; see
// docs/profiling.md).
//
// PmuEngine wraps perf_event_open with zero dependencies: one counter
// group per thread (cycles-led, with instructions / cache-references /
// cache-misses / branch-misses and the software task-clock as members),
// opened lazily on the first read from each thread, multiplex-scaled via
// TIME_ENABLED/TIME_RUNNING, torn down when the thread exits. Scopes read
// the group at entry and exit; the delta is attached to the trace span as
// args (plus derived IPC / cache-miss-rate), accumulated into process-wide
// totals, and folded into `pmu.<span>.{ipc,cache_miss_rate}` gauges.
//
// The whole layer degrades gracefully, in tiers:
//   * kHardware      — the full group opened; every slot live;
//   * kSoftwareOnly  — no hardware PMU exposed (VMs, some containers) but
//                      software events work: task-clock only;
//   * kPermissionDenied / kNoCounters / kUnsupported / kDisabled —
//                      every call is a cheap no-op (one relaxed load).
// Whatever happens, the `obs.pmu.available` gauge records 0/1 and
// `obs.pmu.status` records the tier, so a metrics dump always says *why*
// counters are (or are not) there.
//
// Runtime gating mirrors the tracer: nothing is probed or opened until
// PmuEngine::enable() (what `eardec_cli --pmu` and the EARDEC_PMU env var
// flip). EARDEC_PMU=off wins over any programmatic enable, so CI can force
// the fallback path.
#pragma once

#include <cstdint>

#include "obs/trace.hpp"

namespace eardec::obs {

/// Availability tier. Positive values mean counters are live.
enum class PmuStatus : int {
  kUnsupported = -3,      ///< not a Linux build: no perf_event syscall
  kNoCounters = -2,       ///< neither hardware nor software events opened
  kPermissionDenied = -1, ///< EPERM/EACCES (perf_event_paranoid, seccomp)
  kDisabled = 0,          ///< never enabled, or forced off via EARDEC_PMU
  kHardware = 1,          ///< full hardware group live
  kSoftwareOnly = 2,      ///< software events only (no PMU exposed)
};

/// Human-readable reason string ("hardware", "permission-denied", ...).
[[nodiscard]] const char* to_string(PmuStatus status) noexcept;

/// Counter slot indices; must match obs::kPmuSlotNames / TraceEvent::pmu.
enum PmuSlot : std::size_t {
  kPmuCycles = 0,
  kPmuInstructions = 1,
  kPmuCacheReferences = 2,
  kPmuCacheMisses = 3,
  kPmuBranchMisses = 4,
  kPmuTaskClockNs = 5,
  kNumPmuSlots = TraceEvent::kNumPmuSlots,
};

/// One reading of the calling thread's counter group. `mask` bit i flags
/// slot i as live (a slot can be missing when its event failed to open).
struct PmuSample {
  std::uint64_t v[kNumPmuSlots] = {};
  std::uint8_t mask = 0;
};

class PmuEngine {
 public:
  /// The process-wide engine. Never destroyed (worker threads may read
  /// counters arbitrarily late in shutdown).
  static PmuEngine& instance();

  /// Probes and arms the layer (idempotent; the probe runs once). Returns
  /// the resulting status. EARDEC_PMU=off/0/false in the environment wins:
  /// the engine stays kDisabled no matter how often enable() is called.
  /// Publishes `obs.pmu.available` / `obs.pmu.status` either way.
  PmuStatus enable(bool on = true);

  /// Applies the EARDEC_PMU env var: "off"/"0"/"false" force-disables,
  /// "1"/"on"/"true"/"auto" enable (probing as needed), unset leaves the
  /// engine alone. Returns the resulting status.
  PmuStatus configure_from_env();

  [[nodiscard]] PmuStatus status() const noexcept;

  /// True when counters are live (status > 0): the one check every hot
  /// path performs (a relaxed atomic load).
  [[nodiscard]] bool active() const noexcept;

  /// Reads the calling thread's counter group (opening it on first use).
  /// Returns false — leaving `out` empty — when inactive or the per-thread
  /// open failed.
  bool read(PmuSample& out) noexcept;

  /// Process-wide totals of every finished scope's deltas. `mask` is the
  /// union of the contributing masks.
  [[nodiscard]] PmuSample totals() const noexcept;

  /// Closes a scope opened with read(): reads the group again, records the
  /// span with the counter deltas attached (tracer gates apply), folds the
  /// deltas into totals and the `obs.pmu.*` registry counters, and updates
  /// the `pmu.<span_name>.{ipc,cache_miss_rate}` gauges. `span_name` must
  /// be a static-lifetime string.
  void finish_scope(const char* span_name, std::uint64_t start_ns,
                    std::uint64_t dur_ns, const PmuSample& begin,
                    const char* arg_name = nullptr, std::uint64_t arg = 0);

  /// Test hooks: pin the status (simulating EPERM, missing PMUs, ...)
  /// without touching perf_event, or re-arm the probe so the next enable()
  /// runs it again. Not for production callers.
  void force_status_for_test(PmuStatus status);
  void reset_for_test();

  struct Impl;  ///< opaque; defined in pmu.cpp

 private:
  PmuEngine();
  ~PmuEngine() = delete;  // leaked singleton

  Impl* impl_;
};

/// RAII PMU span: a ScopedSpan that additionally reads the thread's
/// counter group at entry/exit when the engine is active. Prefer the
/// EARDEC_TRACE_SCOPE_PMU macro, which compiles out with tracing.
class PmuScopedSpan {
 public:
  explicit PmuScopedSpan(const char* name) : PmuScopedSpan(name, nullptr, 0) {}
  PmuScopedSpan(const char* name, const char* arg_name, std::uint64_t arg);
  ~PmuScopedSpan();

  PmuScopedSpan(const PmuScopedSpan&) = delete;
  PmuScopedSpan& operator=(const PmuScopedSpan&) = delete;

 private:
  const char* name_;  // null when both the tracer and the PMU are off
  const char* arg_name_;
  std::uint64_t arg_;
  std::uint64_t start_ns_ = 0;
  PmuSample begin_;
  bool pmu_ = false;
};

}  // namespace eardec::obs

/// EARDEC_TRACE_SCOPE_PMU("name") or ("name", "arg", value): like
/// EARDEC_TRACE_SCOPE, plus PMU counter deltas as span args and derived
/// per-phase IPC / miss-rate gauges when the engine is active. Compiles
/// out with tracing (phase-level PMU attribution survives through
/// obs::ScopedPhase, which uses PmuScopedSpan directly).
#if EARDEC_TRACING_ENABLED
#define EARDEC_TRACE_SCOPE_PMU(...)                           \
  const ::eardec::obs::PmuScopedSpan EARDEC_OBS_CONCAT(       \
      eardec_obs_pmu_span_, __LINE__) {                       \
    __VA_ARGS__                                               \
  }
#else
#define EARDEC_TRACE_SCOPE_PMU(...)               \
  [[maybe_unused]] const ::eardec::obs::NullSpan  \
      EARDEC_OBS_CONCAT(eardec_obs_pmu_span_, __LINE__) {}
#endif
