// Live stats exposition — the scrape-endpoint half of the observability
// layer (metrics.hpp holds the instruments it serves; see
// docs/observability.md).
//
// StatsServer is a zero-dependency HTTP/1.1 endpoint on a background
// thread, built directly on POSIX sockets (loopback only). Three routes:
//   * GET /metrics    — Prometheus text exposition format (version 0.0.4):
//                       every registry counter/gauge/histogram (histograms
//                       with cumulative buckets, _sum/_count and derived
//                       p50/p90/p99 gauges — see
//                       MetricsRegistry::write_prometheus), plus
//                       scrape-time process gauges (RSS MiB, uptime);
//   * GET /healthz    — 200 "ok" liveness probe;
//   * GET /stats.json — the registry's JSON export (what `eardec_cli
//                       --metrics file.json` writes), served live.
// Anything else answers 404. Connections are handled serially on the
// server thread with short socket timeouts — this is a scrape endpoint
// for one Prometheus/curl client, not a traffic-serving frontend.
//
// Concurrency contract: request handling only reads the metrics registry
// (leaked-singleton instruments updated with relaxed atomics), so a scrape
// is race-free against every hot path, including thread pools being
// constructed or torn down mid-request — there is no shared state with
// worker lifecycles to sequence against. The server thread itself is
// joined by stop(); eardec_cli stops it after the optional --stats-linger
// window, bench binaries on ObservabilitySession destruction.
//
// Opt-in wiring: `eardec_cli --stats-port <p>` (plus `--stats-linger <s>`
// to keep serving after the command finishes) and the EARDEC_STATS_PORT
// env var, which every bench binary honors through ObservabilitySession.
// Port 0 binds an ephemeral port; port() reports the real one.
//
// Compile-out: under -DEARDEC_ENABLE_TRACING=OFF the whole HTTP
// implementation is compiled out along with the tracer — start() returns
// false and the binary contains no serving code (CI grep-asserts this).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "obs/trace.hpp"  // kTracingEnabled — the compile-out switch

namespace eardec::obs {

/// A parsed request handed to the pluggable route handler.
struct HttpRequest {
  std::string method;  ///< "GET", "HEAD" or "POST"
  std::string path;    ///< request path, query string stripped
  std::string query;   ///< raw query string without the '?', may be empty
  std::string body;    ///< POST body (Content-Length framed, <= 1 MiB)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Returns true when it produced a response for the request, false to fall
/// through to the built-in routes. Runs on the serving thread; it must be
/// safe against concurrent application threads on its own (the serve layer
/// achieves this by only touching immutable snapshots and atomics).
using HttpRouteHandler =
    std::function<bool(const HttpRequest&, HttpResponse&)>;

class StatsServer {
 public:
  /// True when the serving implementation is compiled in (mirrors the
  /// tracer's compile-time gate).
  static constexpr bool kCompiledIn = kTracingEnabled;

  /// The process-wide server. Never destroyed; the thread is joined by
  /// stop(), not by a destructor.
  static StatsServer& instance();

  /// Binds 127.0.0.1:<port> (0 = ephemeral) and starts the serving thread.
  /// Returns false when compiled out, already running, or the socket
  /// cannot be bound (the reason goes to stderr). Idempotent in the sense
  /// that a second start() while running is a no-op returning false.
  bool start(std::uint16_t port);

  /// Applies the EARDEC_STATS_PORT env var ("<port>"; unset/empty/"off"
  /// leaves the server stopped). Returns true when the server was started.
  bool configure_from_env();

  /// Requests stop, unblocks the accept loop, and joins the serving
  /// thread. Safe to call when not running.
  void stop();

  [[nodiscard]] bool running() const noexcept;

  /// The actually bound port (resolves port 0), or 0 when not running.
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Requests served since process start (all routes, including 404s).
  [[nodiscard]] std::uint64_t requests_served() const noexcept;

  /// Registers (nullptr clears) the pluggable route handler, consulted
  /// before the built-in routes on every request. This is also the only
  /// way POST is admitted: with no handler — or a handler that declines —
  /// non-GET/HEAD methods keep answering 405, and the built-in routes stay
  /// GET/HEAD-only. The serve layer (src/serve) registers its /query
  /// routes here, piggybacking on the one scrape endpoint. Callable
  /// whether or not the server is running; clear the handler before
  /// whatever it captures is destroyed.
  void set_route_handler(HttpRouteHandler handler);

  struct Impl;  ///< opaque; defined in stats_server.cpp

 private:
  StatsServer();
  ~StatsServer() = delete;  // leaked singleton

  Impl* impl_;
};

}  // namespace eardec::obs
