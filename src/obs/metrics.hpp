// Process-wide metrics registry — the counters half of the observability
// layer (trace.hpp holds the span tracer; see docs/observability.md).
//
// Three instrument kinds, all safe to update from any thread with relaxed
// atomics and no locks on the hot path:
//   * Counter   — monotonically increasing uint64 (CAS retries, units run);
//   * Gauge     — last-written double (phase seconds, utilization);
//   * Histogram — log2-bucketed uint64 distribution (claim batch sizes,
//                 queue depths): value v lands in bucket bit_width(v), so
//                 bucket i >= 1 covers [2^(i-1), 2^i - 1] and bucket 0 is
//                 exactly {0}.
//
// Instruments are created on first lookup and never move or disappear, so
// hot paths cache the returned reference in a function-local static and
// pay one map lookup per process:
//
//   static obs::Counter& retries =
//       obs::MetricsRegistry::instance().counter("hetero.queue.cas_retries");
//   retries.add(n);
//
// Exports: a flat JSON object (write_json) or CSV rows (write_csv), both
// wired to `eardec_cli --metrics <file>` and the EARDEC_METRICS env var of
// the bench binaries.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace eardec::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Atomic increment (CAS loop): the up/down variant set() cannot express,
  /// e.g. live-worker counts maintained from concurrent pool lifecycles.
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// Bucket 0 holds zeros; bucket i in [1, 64] holds [2^(i-1), 2^i - 1].
  static constexpr std::size_t kNumBuckets = 65;

  [[nodiscard]] static constexpr std::size_t bucket_index(
      std::uint64_t v) noexcept {
    return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
  }
  /// Smallest value the bucket admits.
  [[nodiscard]] static constexpr std::uint64_t bucket_min(
      std::size_t i) noexcept {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  /// Largest value the bucket admits (inclusive).
  [[nodiscard]] static constexpr std::uint64_t bucket_max(
      std::size_t i) noexcept {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Records the same value n times in three atomic ops instead of 3n. The
  /// serve layer uses it for batch attribution: a batched query's component
  /// durations are recorded once per query in the batch, so histogram means
  /// stay per-query comparable with the scalar path.
  void record_n(std::uint64_t v, std::uint64_t n) noexcept {
    if (n == 0) return;
    buckets_[bucket_index(v)].fetch_add(n, std::memory_order_relaxed);
    count_.fetch_add(n, std::memory_order_relaxed);
    sum_.fetch_add(v * n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Estimated q-quantile (q clamped to [0, 1]) by linear interpolation
  /// inside the owning log2 bucket — log-linear interpolation overall.
  /// Returns 0 for an empty histogram. The estimate always lands in the
  /// same bucket as the true sample quantile, so it is within a factor of
  /// two of it: for a true quantile x in bucket i, both values sit in
  /// [2^(i-1), 2^i - 1] and |estimate - x| < 2^(i-1) <= x (see
  /// docs/observability.md for the full bound). Safe to call concurrently
  /// with record(); concurrent updates make the answer approximate, not
  /// wrong.
  [[nodiscard]] double quantile(double q) const noexcept;

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

class MetricsRegistry {
 public:
  /// The process-wide registry. Never destroyed (safe from static and
  /// thread-local destructors).
  static MetricsRegistry& instance();

  /// Finds or creates the named instrument. References stay valid for the
  /// life of the process.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Current value of a named instrument, or 0 when it does not exist
  /// (reads never create instruments).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;

  /// Zeroes every instrument; names and handles survive.
  void reset_values();

  /// Flat JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Histograms carry count/sum/p50/p90/p99 plus the non-empty buckets.
  void write_json(std::ostream& out) const;
  /// CSV rows: kind,name,field,value (histograms add count/sum/p50/p90/p99
  /// rows plus one row per non-empty bucket, field = inclusive upper bound).
  void write_csv(std::ostream& out) const;
  /// Prometheus text exposition format (version 0.0.4): every instrument,
  /// names mangled to `eardec_<name>` with non-[a-zA-Z0-9_] characters
  /// replaced by '_'. Histograms emit cumulative `_bucket{le="..."}`
  /// series plus `_sum`/`_count` and derived `_p50`/`_p90`/`_p99` gauges.
  /// This is what the obs::StatsServer `/metrics` endpoint serves.
  void write_prometheus(std::ostream& out) const;
  /// Writes by extension: ".csv" -> CSV, anything else -> JSON. False if
  /// the file cannot be opened.
  bool write_file(const std::string& path) const;

 private:
  MetricsRegistry();
  ~MetricsRegistry() = delete;  // leaked singleton

  struct Impl;
  Impl* impl_;
};

}  // namespace eardec::obs
