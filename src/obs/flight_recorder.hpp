// Always-on flight recorder: crash-safe postmortems for serving and bench
// runs (docs/observability.md, "Per-query tracing & flight recorder").
//
// Once armed, the recorder installs SIGSEGV/SIGABRT handlers (chaining to
// whatever was installed before) and, on a crash, writes the newest
// trace-ring and counter-mirror contents to `eardec-flight-<pid>.json`
// through Tracer::write_flight_dump — an async-signal-safe path built on
// open(2)/write(2) and hand-rolled formatting only. An optional stall
// watchdog thread does the same when the serving loop stops calling
// heartbeat() for longer than the configured stall budget, so hung runs
// leave evidence too.
//
// Signal-safety notes: the handler never allocates, locks, or calls stdio;
// the dump walks a lock-free lane registry inside the tracer (ThreadBuffer
// allocations are stable for process lifetime) and tolerates torn reads of
// in-flight events by sanitizing names. After dumping, the previous
// handler is restored and the signal re-raised, so default crash semantics
// (core dumps, exit codes) are preserved.
//
// Under EARDEC_ENABLE_TRACING=OFF everything here compiles to no-op stubs.
#pragma once

#include <cstdint>
#include <string>

namespace eardec::obs {

class FlightRecorder {
 public:
  /// The process-wide recorder. Never destroyed.
  static FlightRecorder& instance();

  /// Installs the SIGSEGV/SIGABRT handlers and remembers the dump path
  /// ("" -> "eardec-flight-<pid>.json" in the working directory).
  /// Idempotent; later calls only update the path. No-op (returns false)
  /// when tracing is compiled out or on non-POSIX hosts.
  bool arm(const std::string& path = "");

  /// arm() unless the EARDEC_FLIGHT env var says "off"/"0". Returns
  /// whether the recorder ended up armed. This is what the benches
  /// (bench_common.hpp) and `eardec_cli serve` call.
  bool configure_from_env();

  [[nodiscard]] bool armed() const noexcept;

  /// Dump destination ("" until armed).
  [[nodiscard]] const std::string& path() const noexcept;

  /// Starts the stall watchdog: a background thread that calls dump_now
  /// ("stall-watchdog") when heartbeat() has not been called for
  /// `stall_ms`. One dump per stall episode; a later heartbeat re-arms it.
  void start_watchdog(std::uint64_t stall_ms);
  void stop_watchdog();

  /// Liveness pump for the watchdog; async-signal-safe, wait-free.
  void heartbeat() noexcept;

  /// Writes the flight file immediately (tests, the watchdog, operator
  /// tooling). Safe from signal handlers. Returns false on I/O error or
  /// when unarmed.
  bool dump_now(const char* reason) noexcept;

 private:
  FlightRecorder() = default;
  ~FlightRecorder() = delete;  // leaked singleton
};

}  // namespace eardec::obs
