// Ablation: the bit-sliced GF(2) witness kernels vs the naive
// one-BitVector-per-witness loop they replaced. Sweeps witness count ×
// cycle-vector density × device-offload threshold over a synthetic De
// Pina orthogonalization schedule (phase i updates rows i+1..f against a
// random cycle vector), with all three implementations fed the exact same
// vectors from a fixed seed:
//
//   naive          — std::vector<BitVector>, per-row dot + xor_assign
//   matrix_cpu     — WitnessMatrix blocked CPU sweep (sparse supports,
//                    word-range pruning, 4-way unrolled XOR)
//   matrix_device  — head row on the CPU, tail offloaded to the software
//                    device block-XOR kernel when the remaining row count
//                    clears the threshold
//
// Emits bench_results/mcb_gf2.json (schema_version + git_sha). `--smoke`
// shrinks the sweep to one cell per implementation for CI.
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "hetero/device.hpp"
#include "mcb/gf2.hpp"
#include "mcb/witness_matrix.hpp"

namespace {

using eardec::mcb::BitVector;
using eardec::mcb::Gf2KernelStats;
using eardec::mcb::WitnessMatrix;

/// One deterministic cycle-vector schedule, shared by every implementation
/// in a (f, density) cell so the timings compare identical work.
std::vector<BitVector> make_schedule(std::size_t f, double density,
                                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution bit(density);
  std::vector<BitVector> cis;
  cis.reserve(f);
  for (std::size_t i = 0; i < f; ++i) {
    BitVector ci(f);
    for (std::size_t b = 0; b < f; ++b) {
      if (bit(rng)) ci.set(b, true);
    }
    cis.push_back(std::move(ci));
  }
  return cis;
}

double run_naive(std::size_t f, const std::vector<BitVector>& cis) {
  std::vector<BitVector> rows;
  rows.reserve(f);
  for (std::size_t i = 0; i < f; ++i) rows.push_back(BitVector::unit(f, i));
  return eardec::bench::time_seconds([&] {
    for (std::size_t i = 0; i + 1 < f; ++i) {
      for (std::size_t j = i + 1; j < f; ++j) {
        if (cis[i].dot(rows[j])) rows[j].xor_assign(rows[i]);
      }
    }
  });
}

double run_matrix_cpu(std::size_t f, const std::vector<BitVector>& cis,
                      Gf2KernelStats& stats) {
  WitnessMatrix m(f);
  return eardec::bench::time_seconds([&] {
    for (std::size_t i = 0; i + 1 < f; ++i) {
      stats.accumulate(m.orthogonalize(i, cis[i], i + 1, f));
    }
  });
}

double run_matrix_device(std::size_t f, const std::vector<BitVector>& cis,
                         std::uint32_t threshold,
                         eardec::hetero::Device& device,
                         Gf2KernelStats& stats) {
  WitnessMatrix m(f);
  return eardec::bench::time_seconds([&] {
    for (std::size_t i = 0; i + 1 < f; ++i) {
      const std::size_t remaining = f - i - 1;
      if (remaining >= threshold && i + 2 < f) {
        stats.accumulate(m.orthogonalize(i, cis[i], i + 1, i + 2));
        stats.accumulate(
            m.orthogonalize_device(i, cis[i], i + 2, f, device));
      } else {
        stats.accumulate(m.orthogonalize(i, cis[i], i + 1, f));
      }
    }
  });
}

struct Cell {
  std::size_t f;
  double density;
  std::string impl;
  std::uint32_t device_threshold;  // 0 when the cell never offloads
  double seconds;
  Gf2KernelStats stats;
};

void emit_json(const std::vector<Cell>& cells, bool smoke) {
  const std::string path = eardec::bench::sweep_path("mcb_gf2.json");
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  eardec::bench::json_stamp(out);
  std::fprintf(out, "  \"smoke\": %s,\n  \"cells\": [\n",
               smoke ? "true" : "false");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        out,
        "    {\"witnesses\": %zu, \"density\": %.2f, \"impl\": \"%s\", "
        "\"device_threshold\": %u, \"seconds\": %.6f, "
        "\"dots\": %llu, \"sparse_dots\": %llu, \"words_xored\": %llu, "
        "\"range_skips\": %llu, \"promotions\": %llu, "
        "\"device_rows\": %llu}%s\n",
        c.f, c.density, c.impl.c_str(), c.device_threshold, c.seconds,
        static_cast<unsigned long long>(c.stats.dots),
        static_cast<unsigned long long>(c.stats.sparse_dots),
        static_cast<unsigned long long>(c.stats.words_xored),
        static_cast<unsigned long long>(c.stats.range_skips),
        static_cast<unsigned long long>(c.stats.promotions),
        static_cast<unsigned long long>(c.stats.device_rows),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const eardec::bench::ObservabilitySession obs_session;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::vector<std::size_t> counts =
      smoke ? std::vector<std::size_t>{256}
            : std::vector<std::size_t>{128, 512, 2048};
  const std::vector<double> densities =
      smoke ? std::vector<double>{0.1}
            : std::vector<double>{0.01, 0.1, 0.5};
  const std::vector<std::uint32_t> thresholds =
      smoke ? std::vector<std::uint32_t>{64}
            : std::vector<std::uint32_t>{16, 64, 256};

  eardec::hetero::Device device({.workers = 2, .warp_size = 32});
  std::vector<Cell> cells;
  std::printf("%-10s %-8s %-14s %-10s %-10s\n", "witnesses", "density",
              "impl", "threshold", "seconds");
  for (const std::size_t f : counts) {
    for (const double density : densities) {
      const auto cis = make_schedule(f, density, /*seed=*/0x6f2e);
      const auto record = [&](std::string impl, std::uint32_t threshold,
                              double seconds, Gf2KernelStats stats) {
        std::printf("%-10zu %-8.2f %-14s %-10u %10.6f\n", f, density,
                    impl.c_str(), threshold, seconds);
        cells.push_back(
            {f, density, std::move(impl), threshold, seconds, stats});
      };
      record("naive", 0, run_naive(f, cis), {});
      Gf2KernelStats cpu_stats;
      record("matrix_cpu", 0, run_matrix_cpu(f, cis, cpu_stats), cpu_stats);
      for (const std::uint32_t threshold : thresholds) {
        Gf2KernelStats dev_stats;
        record("matrix_device", threshold,
               run_matrix_device(f, cis, threshold, device, dev_stats),
               dev_stats);
      }
    }
  }
  emit_json(cells, smoke);
  return 0;
}
