// Ablation B (DESIGN.md §4): how the ear-decomposition benefit scales with
// the degree-two fraction. We sweep the fraction from 0% to 80% on a fixed
// biconnected core and time the APSP pipeline with and without the
// reduction. Expected shape: identical at 0%, monotonically widening gap —
// the paper's explanation for why as-22july06 (78% removable) gains ~10x
// while delaunay_n15 (0%) gains nothing.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "core/ear_apsp.hpp"
#include "graph/generators.hpp"

namespace {

using namespace eardec;

graph::Graph make_graph(double deg2_fraction) {
  const graph::Graph core = graph::generators::random_biconnected(150, 450, 11);
  if (deg2_fraction <= 0) return core;
  const auto extra = static_cast<graph::VertexId>(
      150.0 * deg2_fraction / (1.0 - deg2_fraction));
  return graph::generators::subdivide(core, extra, 12);
}

void BM_EarApsp(benchmark::State& state) {
  const graph::Graph g = make_graph(static_cast<double>(state.range(0)) / 100.0);
  const core::ApspOptions opts{.mode = core::ExecutionMode::Sequential,
                               .use_ear_reduction = true};
  for (auto _ : state) {
    core::EarApsp apsp(g, opts);
    benchmark::DoNotOptimize(apsp.distance(0, g.num_vertices() - 1));
  }
  state.counters["n"] = g.num_vertices();
  state.counters["deg2_pct"] = static_cast<double>(state.range(0));
}

void BM_NoEarApsp(benchmark::State& state) {
  const graph::Graph g = make_graph(static_cast<double>(state.range(0)) / 100.0);
  const core::ApspOptions opts{.mode = core::ExecutionMode::Sequential,
                               .use_ear_reduction = false};
  for (auto _ : state) {
    core::EarApsp apsp(g, opts);
    benchmark::DoNotOptimize(apsp.distance(0, g.num_vertices() - 1));
  }
  state.counters["n"] = g.num_vertices();
  state.counters["deg2_pct"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_EarApsp)->Arg(0)->Arg(20)->Arg(40)->Arg(60)->Arg(80)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NoEarApsp)->Arg(0)->Arg(20)->Arg(40)->Arg(60)->Arg(80)
    ->Unit(benchmark::kMillisecond);

}  // namespace

EARDEC_BENCH_MAIN();
