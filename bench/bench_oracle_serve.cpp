// Sustained-load benchmark of the online serving layer (src/serve): an
// open-loop harness that schedules queries as a Poisson arrival process at
// a configurable QPS target and drives them through OracleServer's scalar
// and batched paths, per query mix (same-block / cross-block / uniform).
//
// Open loop means arrival times are drawn up front from the exponential
// inter-arrival distribution and never pushed back by slow answers: when
// the server falls behind, the backlog shows up as open-loop latency
// (completion minus *scheduled* arrival) instead of silently throttling the
// offered load — the difference between "the p99 under load" and "the p99
// the server felt like serving". Service latency comes from the serving
// layer's own registry histograms (oracle.query.{scalar,batch}.latency_ns),
// so a live /metrics scrape during the run shows the same numbers.
//
// Every kSampleStride-th answer is checked bit-for-bit against a cached
// Dijkstra row on the original graph; any mismatch fails the run. On the
// integer-weighted bench dataset the closed form is exact, so bitwise
// equality is the contract, not a tolerance.
//
// Snapshot: bench_results/oracle_serve.json (schema v2, validated by
// tools/check_bench_smoke.py, diffed by tools/compare_bench.py). The full
// run sustains >= 1M queries across its cells; `--smoke` shrinks each cell
// for the CI gate. Knobs: --qps=<target per cell>, --queries=<per cell>,
// --batch=<batched-path batch size>, --mix=same_block|cross_block|uniform.
#include <array>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"

#include "graph/datasets.hpp"
#include "obs/query_trace.hpp"
#include "obs/slow_log.hpp"
#include "serve/oracle_server.hpp"
#include "sssp/dijkstra.hpp"

namespace {

using namespace eardec;

constexpr std::uint64_t kSampleStride = 401;  // prime: covers all mix slots

// --crash-after=N: raise SIGABRT after N answered queries — the injection
// point the flight-recorder CI smoke uses to prove a crash still leaves a
// parseable eardec-flight-<pid>.json behind. 0 = disabled.
std::uint64_t g_crash_after = 0;
std::uint64_t g_answered = 0;

void count_answered(std::uint64_t n) {
  if (g_crash_after == 0) return;
  g_answered += n;
  if (g_answered >= g_crash_after) {
    std::fprintf(stderr,
                 "crash-after: raising SIGABRT after %llu answered queries\n",
                 static_cast<unsigned long long>(g_answered));
    std::fflush(nullptr);
    std::raise(SIGABRT);
  }
}

const graph::Graph& bench_graph() {
  static const graph::Graph g =
      graph::datasets::by_name("cond_mat_2003").make();
  return g;
}

/// Distances from s on the original graph, computed once per source.
const std::vector<graph::Weight>& dijkstra_row(graph::VertexId s) {
  static std::unordered_map<graph::VertexId, std::vector<graph::Weight>> cache;
  auto it = cache.find(s);
  if (it == cache.end()) {
    it = cache.emplace(s, sssp::dijkstra(bench_graph(), s).dist).first;
  }
  return it->second;
}

struct Mix {
  const char* name = "";
  std::vector<serve::Query> pairs;
};

/// Stratified pair pools: `uniform` is unconditioned, the other two are
/// rejection-sampled on the engine's own route classification, so the mix
/// label states exactly which evaluation path the queries exercise.
std::vector<Mix> build_mixes(const core::EarApspEngine& eng) {
  const auto& g = bench_graph();
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<graph::VertexId> pick(0,
                                                      g.num_vertices() - 1);
  const auto sample = [&](const char* name, auto want) {
    Mix mix{name, {}};
    mix.pairs.reserve(4096);
    std::uint64_t attempts = 0;
    while (mix.pairs.size() < 4096 && ++attempts < 4096ull * 400) {
      const serve::Query q{pick(rng), pick(rng)};
      if (want(eng.route(q.s, q.t).kind)) mix.pairs.push_back(q);
    }
    if (mix.pairs.empty()) mix.pairs.push_back({0, 0});
    return mix;
  };
  std::vector<Mix> mixes;
  mixes.push_back(sample("same_block", [](core::QueryRoute::Kind k) {
    return k == core::QueryRoute::Kind::SameBlock;
  }));
  mixes.push_back(sample("cross_block", [](core::QueryRoute::Kind k) {
    return k == core::QueryRoute::Kind::CrossBlock;
  }));
  mixes.push_back(sample("uniform", [](core::QueryRoute::Kind) {
    return true;
  }));
  return mixes;
}

/// Summary of one attribution-component histogram over a cell.
struct AttrStat {
  double mean_ns = 0;
  double p50_ns = 0, p90_ns = 0, p99_ns = 0;
};

struct CellResult {
  std::string mix;
  const char* path = "";  ///< "scalar" or "batch"
  std::uint64_t queries = 0;
  std::uint64_t batch = 1;  ///< batched-path batch size (1 for scalar)
  double target_qps = 0;
  double seconds = 0;
  double qps = 0;
  double mean_ns = 0;
  double p50_ns = 0, p90_ns = 0, p99_ns = 0;              ///< service latency
  double open_mean_ns = 0;                                   ///< incl. backlog
  double open_p50_ns = 0, open_p90_ns = 0, open_p99_ns = 0;  ///< incl. backlog
  std::uint64_t sampled = 0;
  std::uint64_t mismatches = 0;
  /// Latency attribution (queue_wait/schedule/kernel/recompose/write, in
  /// obs::kAttrComponentNames order): per-query component histograms whose
  /// means sum to open_mean_ns (check_bench_smoke.py enforces 10%).
  std::array<AttrStat, obs::kNumAttrComponents> attr;
};

/// Busy-waits past the scheduled arrival (sleeping in sub-ms slices while
/// far out); returns the completion-time reference point.
void wait_until(std::uint64_t arrival_ns) {
  while (true) {
    const std::uint64_t now = obs::Tracer::now_ns();
    if (now >= arrival_ns) return;
    const std::uint64_t ahead = arrival_ns - now;
    if (ahead > 200000) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(ahead / 2));
    }
  }
}

CellResult run_cell(const serve::OracleServer& server, const Mix& mix,
                    bool batched, std::uint64_t queries, double target_qps,
                    std::uint64_t batch_size) {
  obs::Histogram& service = obs::MetricsRegistry::instance().histogram(
      batched ? "oracle.query.batch.latency_ns"
              : "oracle.query.scalar.latency_ns");
  obs::Histogram& open = obs::MetricsRegistry::instance().histogram(
      "oracle.serve.openloop.latency_ns");
  service.reset();
  open.reset();
  // Attribution components: queue_wait/schedule/kernel/recompose come from
  // the serving layer, `write` (result handoff) is recorded here from
  // QueryTrace::server_end_ns. Reset per cell so each cell's snapshot
  // block summarizes only its own queries.
  std::array<obs::Histogram*, obs::kNumAttrComponents> attr{};
  for (std::size_t i = 0; i < obs::kNumAttrComponents; ++i) {
    attr[i] = &obs::MetricsRegistry::instance().histogram(
        std::string("oracle.serve.attr.") + obs::kAttrComponentNames[i] +
        "_ns");
    attr[i]->reset();
  }
  obs::Histogram& attr_write =
      *attr[std::size_t(obs::AttrComponent::kWrite)];

  std::mt19937_64 rng(99);
  // Inter-arrival gaps of a Poisson process at the offered rate; for the
  // batched path a whole batch arrives at once, so batches arrive at
  // target_qps / batch_size.
  const double events_per_s =
      batched ? target_qps / static_cast<double>(batch_size) : target_qps;
  std::exponential_distribution<double> gap(
      events_per_s > 0 ? events_per_s : 1.0);

  std::uint64_t sampled = 0, mismatches = 0, issued = 0;
  const auto verify = [&](const serve::Query& q, graph::Weight got) {
    ++sampled;
    const graph::Weight want = dijkstra_row(q.s)[q.t];
    if (std::memcmp(&got, &want, sizeof(got)) != 0) ++mismatches;
  };

  const std::uint64_t t0 = obs::Tracer::now_ns();
  double arrival = static_cast<double>(t0);
  if (batched) {
    std::vector<serve::Query> batch;
    batch.reserve(batch_size);
    std::size_t at = 0;
    while (issued < queries) {
      batch.clear();
      while (batch.size() < batch_size && issued + batch.size() < queries) {
        batch.push_back(mix.pairs[at++ % mix.pairs.size()]);
      }
      if (target_qps > 0) {
        arrival += gap(rng) * 1e9;
        wait_until(static_cast<std::uint64_t>(arrival));
      } else {
        arrival = static_cast<double>(obs::Tracer::now_ns());
      }
      // Request context: the server derives queue_wait from the scheduled
      // arrival and reports its own end via server_end_ns, so the write
      // component below closes the chain exactly to the open-loop latency.
      obs::QueryTrace qt(static_cast<std::uint64_t>(arrival));
      std::vector<graph::Weight> answers;
      {
        const obs::QueryTraceScope qscope(&qt);
        answers = server.query_batch(batch);
      }
      const std::uint64_t done = obs::Tracer::now_ns();
      const std::uint64_t write_ns =
          qt.server_end_ns != 0 && qt.server_end_ns <= done
              ? done - qt.server_end_ns
              : 0;
      attr_write.record_n(write_ns, batch.size());
      const auto open_ns = static_cast<std::uint64_t>(
          static_cast<double>(done) - arrival);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        open.record(open_ns);
        if ((issued + i) % kSampleStride == 0) verify(batch[i], answers[i]);
      }
      issued += batch.size();
      count_answered(batch.size());
    }
  } else {
    for (; issued < queries; ++issued) {
      const serve::Query q = mix.pairs[issued % mix.pairs.size()];
      if (target_qps > 0) {
        arrival += gap(rng) * 1e9;
        wait_until(static_cast<std::uint64_t>(arrival));
      } else {
        arrival = static_cast<double>(obs::Tracer::now_ns());
      }
      obs::QueryTrace qt(static_cast<std::uint64_t>(arrival));
      graph::Weight d = 0;
      {
        const obs::QueryTraceScope qscope(&qt);
        d = server.query(q.s, q.t);
      }
      const std::uint64_t done = obs::Tracer::now_ns();
      attr_write.record(qt.server_end_ns != 0 && qt.server_end_ns <= done
                            ? done - qt.server_end_ns
                            : 0);
      open.record(
          static_cast<std::uint64_t>(static_cast<double>(done) - arrival));
      if (issued % kSampleStride == 0) verify(q, d);
      count_answered(1);
    }
  }
  const double seconds =
      static_cast<double>(obs::Tracer::now_ns() - t0) / 1e9;

  CellResult r;
  r.mix = mix.name;
  r.path = batched ? "batch" : "scalar";
  r.queries = issued;
  r.batch = batched ? batch_size : 1;
  r.target_qps = target_qps;
  r.seconds = seconds;
  r.qps = seconds > 0 ? static_cast<double>(issued) / seconds : 0.0;
  r.mean_ns = service.count() > 0 ? static_cast<double>(service.sum()) /
                                        static_cast<double>(service.count())
                                  : 0.0;
  r.p50_ns = service.quantile(0.50);
  r.p90_ns = service.quantile(0.90);
  r.p99_ns = service.quantile(0.99);
  r.open_mean_ns = open.count() > 0 ? static_cast<double>(open.sum()) /
                                          static_cast<double>(open.count())
                                    : 0.0;
  r.open_p50_ns = open.quantile(0.50);
  r.open_p90_ns = open.quantile(0.90);
  r.open_p99_ns = open.quantile(0.99);
  for (std::size_t i = 0; i < obs::kNumAttrComponents; ++i) {
    const obs::Histogram& h = *attr[i];
    r.attr[i].mean_ns = h.count() > 0 ? static_cast<double>(h.sum()) /
                                            static_cast<double>(h.count())
                                      : 0.0;
    r.attr[i].p50_ns = h.quantile(0.50);
    r.attr[i].p90_ns = h.quantile(0.90);
    r.attr[i].p99_ns = h.quantile(0.99);
  }
  r.sampled = sampled;
  r.mismatches = mismatches;
  return r;
}

void emit_json(const std::vector<CellResult>& rows, bool smoke) {
  std::filesystem::create_directories("bench_results");
  std::FILE* out = std::fopen("bench_results/oracle_serve.json", "w");
  if (out == nullptr) return;
  const auto& g = bench_graph();
  std::fprintf(out, "{\n");
  bench::json_stamp(out);
  std::fprintf(out,
               "  \"smoke\": %s,\n  \"graph\": \"cond_mat_2003\",\n"
               "  \"n\": %u,\n  \"m\": %u,\n  \"cells\": [\n",
               smoke ? "true" : "false", g.num_vertices(), g.num_edges());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CellResult& r = rows[i];
    std::fprintf(
        out,
        "    {\"mix\": \"%s\", \"path\": \"%s\", \"queries\": %llu, "
        "\"batch\": %llu, \"target_qps\": %.0f, \"seconds\": %.6f, "
        "\"qps\": %.1f, \"mean_ns\": %.1f, \"p50_ns\": %.1f, "
        "\"p90_ns\": %.1f, \"p99_ns\": %.1f, \"open_mean_ns\": %.1f, "
        "\"open_p50_ns\": %.1f, \"open_p90_ns\": %.1f, "
        "\"open_p99_ns\": %.1f, \"sampled\": %llu, "
        "\"mismatches\": %llu,\n",
        r.mix.c_str(), r.path, static_cast<unsigned long long>(r.queries),
        static_cast<unsigned long long>(r.batch), r.target_qps, r.seconds,
        r.qps, r.mean_ns, r.p50_ns, r.p90_ns, r.p99_ns, r.open_mean_ns,
        r.open_p50_ns, r.open_p90_ns, r.open_p99_ns,
        static_cast<unsigned long long>(r.sampled),
        static_cast<unsigned long long>(r.mismatches));
    std::fprintf(out, "     \"attr\": {");
    for (std::size_t c = 0; c < obs::kNumAttrComponents; ++c) {
      const AttrStat& a = r.attr[c];
      std::fprintf(out,
                   "%s\"%s\": {\"mean_ns\": %.1f, \"p50_ns\": %.1f, "
                   "\"p90_ns\": %.1f, \"p99_ns\": %.1f}",
                   c > 0 ? ", " : "", obs::kAttrComponentNames[c], a.mean_ns,
                   a.p50_ns, a.p90_ns, a.p99_ns);
    }
    std::fprintf(out, "}}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote bench_results/oracle_serve.json (%zu cells)\n",
              rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObservabilitySession obs_session;
  bool smoke = false;
  double qps = -1;
  std::uint64_t queries = 0, batch_size = 64;
  std::string only_mix;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg.starts_with("--qps=")) qps = std::stod(arg.substr(6));
    else if (arg.starts_with("--queries=")) queries = std::stoull(arg.substr(10));
    else if (arg.starts_with("--batch=")) batch_size = std::stoull(arg.substr(8));
    else if (arg.starts_with("--mix=")) only_mix = arg.substr(6);
    else if (arg.starts_with("--crash-after="))
      g_crash_after = std::stoull(arg.substr(14));
  }
  // The exemplar store rides along in the full run: the acceptance bar is
  // holding the QPS gate *with* tail sampling on, not with it compiled out.
  obs::SlowLog::instance().arm();
  if (queries == 0) queries = smoke ? 2000 : 200000;
  if (qps < 0) qps = smoke ? 50000 : 100000;
  if (batch_size == 0) batch_size = 1;

  const auto& g = bench_graph();
  serve::ServeOptions sopts;
  sopts.build = {.mode = core::ExecutionMode::Multicore, .cpu_threads = 3};
  const serve::OracleServer server(g, sopts);
  const auto snap = server.snapshot();
  std::vector<Mix> mixes = build_mixes(snap->engine());

  std::vector<CellResult> rows;
  for (const Mix& mix : mixes) {
    if (!only_mix.empty() && only_mix != mix.name) continue;
    rows.push_back(run_cell(server, mix, false, queries, qps, batch_size));
    rows.push_back(run_cell(server, mix, true, queries, qps, batch_size));
  }

  std::uint64_t total = 0, mismatches = 0;
  std::printf("=== Oracle serving under load, cond_mat_2003 "
              "(%u vertices)%s ===\n",
              g.num_vertices(), smoke ? " [smoke]" : "");
  std::printf("%-12s %-7s %9s %11s %9s %9s %9s %11s %6s %4s\n", "Mix", "Path",
              "Queries", "QPS", "p50 ns", "p99 ns", "open p99", "target",
              "sampl", "bad");
  bench::print_rule(96);
  for (const CellResult& r : rows) {
    total += r.queries;
    mismatches += r.mismatches;
    std::printf("%-12s %-7s %9llu %11.0f %9.0f %9.0f %9.0f %11.0f %6llu "
                "%4llu\n",
                r.mix.c_str(), r.path,
                static_cast<unsigned long long>(r.queries), r.qps, r.p50_ns,
                r.p99_ns, r.open_p99_ns, r.target_qps,
                static_cast<unsigned long long>(r.sampled),
                static_cast<unsigned long long>(r.mismatches));
  }
  bench::print_rule(96);
  std::printf("total queries: %llu, mismatches vs Dijkstra: %llu\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(mismatches));

  emit_json(rows, smoke);
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: %llu sampled answers differ from Dijkstra\n",
                 static_cast<unsigned long long>(mismatches));
    return 1;
  }
  return 0;
}
