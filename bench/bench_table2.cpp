// Table 2 reproduction: MCB wall time (seconds) of the four
// implementations — Sequential, Multi-Core, GPU (software device), and
// CPU+GPU (heterogeneous) — each with ('w') and without ('w/o') ear
// decomposition, on the first seven datasets. The paper's shape: the 'w'
// columns beat 'w/o' in proportion to the degree-2 fraction (as-22july06
// ~10x, c-50 and cond_mat ~1.3-1.6x, nopoly/OPF/delaunay ~1x).
//
// Besides the text table, every run emits the canonical JSON snapshot
// bench_results/table2_mcb.json (schema_version + git_sha) that CI and
// PR descriptions diff. `--smoke` restricts the sweep to the chain-rich
// as-22july06/c-50 pair and bypasses the measurement cache (see
// mcb_sweep.hpp), for fast always-fresh CI runs.
#include <cstdio>
#include <cstring>

#include "mcb_sweep.hpp"

int main(int argc, char** argv) {
  const eardec::bench::ObservabilitySession obs_session;
  using namespace eardec;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const auto rows = bench::run_mcb_sweep(smoke);

  std::printf("=== Table 2: MCB timings (seconds), w = with ears, w/o = "
              "without%s ===\n",
              smoke ? " [smoke subset]" : "");
  std::printf("%-15s", "Graph");
  for (const auto& m : bench::implementation_modes()) {
    std::printf(" | %10s w %10s w/o", m.name, "");
  }
  std::printf("\n");
  bench::print_rule(15 + 4 * 28);
  for (const auto& r : rows) {
    std::printf("%-15s", r.graph.c_str());
    for (std::size_t m = 0; m < 4; ++m) {
      std::printf(" | %12.4f %12.4f", r.seconds[m][0], r.seconds[m][1]);
    }
    std::printf("\n");
  }
  bench::print_rule(15 + 4 * 28);

  double ear_speedup[4] = {};
  for (const auto& r : rows) {
    for (std::size_t m = 0; m < 4; ++m) {
      ear_speedup[m] += r.seconds[m][1] / r.seconds[m][0];
    }
  }
  std::printf("avg speedup from ear decomposition per implementation "
              "(paper: 3.1x, 2.7x, 2.5x, 2.7x):\n");
  for (std::size_t m = 0; m < 4; ++m) {
    std::printf("  %-11s %.2fx\n", bench::implementation_modes()[m].name,
                ear_speedup[m] / static_cast<double>(rows.size()));
  }

  bench::write_mcb_sweep_json(rows, smoke,
                              bench::sweep_path("table2_mcb.json"));
  return 0;
}
