// The APSP comparison sweep behind Figure 2 (absolute time + speedup) and
// Figure 3 (MTEPS): our heterogeneous ear-decomposition pipeline against
// Banerjee et al. on the general graphs and Djidjev et al. on the planar
// ones. Measured once, cached in bench_results/apsp_sweep.csv.
#pragma once

#include <string>
#include <vector>

#include "baselines/banerjee_apsp.hpp"
#include "baselines/djidjev_apsp.hpp"
#include "bench_common.hpp"
#include "graph/datasets.hpp"

namespace eardec::bench {

struct ApspRow {
  std::string name;
  bool planar = false;
  double vertices = 0;
  double edges = 0;
  double ours_seconds = 0;
  double baseline_seconds = 0;
  const char* baseline_name = "";
};

inline std::vector<ApspRow> run_apsp_sweep() {
  SweepCache cache(sweep_path("apsp_sweep.csv"));
  std::vector<ApspRow> rows;
  const auto opts = bench_apsp_options(core::ExecutionMode::Heterogeneous);
  for (const auto& d : graph::datasets::table1()) {
    const graph::Graph g = d.make();
    ApspRow row;
    row.name = d.name;
    row.planar = d.planar;
    row.vertices = g.num_vertices();
    row.edges = g.num_edges();
    row.baseline_name = d.planar ? "Djidjev" : "Banerjee";
    row.ours_seconds = cache.get_or_measure("ours/" + d.name, [&] {
      return time_seconds([&] { core::EarApsp apsp(g, opts); });
    });
    row.baseline_seconds = cache.get_or_measure("base/" + d.name, [&] {
      return time_seconds([&] {
        if (d.planar) {
          // Both contenders produce the complete distance tables: EarApsp
          // materializes per-component tables, Djidjev the full matrix.
          // Partition count follows Djidjev et al.'s GPU discipline —
          // parts sized to a thread block's capacity (fixed part *size*,
          // so the boundary grows with the graph), scaled down with the
          // datasets (DESIGN.md §2).
          const auto parts = std::max<std::uint32_t>(
              4, g.num_vertices() / 112);
          const baselines::DjidjevApsp apsp(g, parts, opts);
          const auto full = apsp.materialize();
          volatile graph::Weight sink = full.at(0, g.num_vertices() - 1);
          (void)sink;
        } else {
          baselines::BanerjeeApsp apsp(g, opts);
        }
      });
    });
    rows.push_back(row);
  }
  cache.save();
  return rows;
}

}  // namespace eardec::bench
