// FVS ablation: the greedy peel heuristic vs the Bafna–Berman–Fujito
// 2-approximation inside the MCB pipeline. A smaller feedback vertex set
// means fewer shortest-path trees (|Z| of Algorithm 3), i.e. less label
// work per phase — at the price of a more expensive FVS computation. The
// counters show the trade.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "graph/generators.hpp"
#include "mcb/ear_mcb.hpp"
#include "mcb/fvs.hpp"

namespace {

using namespace eardec;

graph::Graph test_graph() {
  return graph::generators::subdivide(
      graph::generators::random_biconnected(120, 300, 31), 120, 32);
}

void BM_McbGreedyFvs(benchmark::State& state) {
  const graph::Graph g = test_graph();
  std::size_t fvs_size = 0;
  for (auto _ : state) {
    const auto r = mcb::minimum_cycle_basis(
        g, {.mode = core::ExecutionMode::Sequential,
            .fvs = mcb::FvsAlgorithm::GreedyPeel});
    fvs_size = r.stats.fvs_size;
    benchmark::DoNotOptimize(r.total_weight);
  }
  state.counters["fvs"] = static_cast<double>(fvs_size);
}

void BM_McbBbfFvs(benchmark::State& state) {
  const graph::Graph g = test_graph();
  std::size_t fvs_size = 0;
  for (auto _ : state) {
    const auto r = mcb::minimum_cycle_basis(
        g, {.mode = core::ExecutionMode::Sequential,
            .fvs = mcb::FvsAlgorithm::BafnaBermanFujito});
    fvs_size = r.stats.fvs_size;
    benchmark::DoNotOptimize(r.total_weight);
  }
  state.counters["fvs"] = static_cast<double>(fvs_size);
}

void BM_FvsOnlyGreedy(benchmark::State& state) {
  const graph::Graph g = test_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcb::feedback_vertex_set(g).size());
  }
}

void BM_FvsOnlyBbf(benchmark::State& state) {
  const graph::Graph g = test_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcb::feedback_vertex_set_2approx(g).size());
  }
}

BENCHMARK(BM_McbGreedyFvs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_McbBbfFvs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FvsOnlyGreedy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FvsOnlyBbf)->Unit(benchmark::kMillisecond);

}  // namespace

EARDEC_BENCH_MAIN();
