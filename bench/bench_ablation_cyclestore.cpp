// Ablation C (DESIGN.md §4): the paper's hybrid array/linked-list cycle
// store vs the two naive containers it interpolates between — a plain
// vector with tombstones (fast scans, but dead slots are still visited)
// and a std::list (removal frees the slot, but scans are cache-hostile).
//
// The workload replays the real MCB access pattern: every phase scans from
// the *front* of the weight-sorted store and removes a candidate near the
// front (light cycles are picked early), so tombstones pile up exactly
// where every subsequent scan starts. The hybrid compacts those away once
// a node is half dead; the tombstone vector wades through them forever.
// Also sweeps the MCB scan batch size end to end on a fixed graph.
#include <array>
#include <list>
#include <random>

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "graph/generators.hpp"
#include "mcb/cycle_store.hpp"
#include "mcb/ear_mcb.hpp"

namespace {

using namespace eardec;

constexpr std::uint32_t kCount = 20000;
constexpr int kRounds = 18000;

/// Rank (among live entries, from the front) of each round's removal:
/// mostly the first few live candidates (early phases hit light cycles
/// immediately), with a deep-scan tail (late phases, when the surviving
/// witnesses are dense, walk far down the weight order before the first
/// odd candidate). Both regimes occur in real runs; the deep scans are
/// what punish pointer-chasing containers.
std::vector<std::uint32_t> removal_ranks() {
  std::mt19937_64 rng(7);
  std::geometric_distribution<std::uint32_t> geo(0.25);
  std::uniform_int_distribution<std::uint32_t> deep(0, kCount / 8);
  std::bernoulli_distribution is_deep(0.10);
  std::vector<std::uint32_t> ranks(kRounds);
  for (auto& r : ranks) r = is_deep(rng) ? deep(rng) : geo(rng);
  return ranks;
}

void BM_CycleStoreHybrid(benchmark::State& state) {
  const auto ranks = removal_ranks();
  for (auto _ : state) {
    mcb::CycleStore store(kCount);
    std::array<std::uint32_t, 128> buf{};
    for (const std::uint32_t rank : ranks) {
      const std::uint32_t target = std::min<std::uint32_t>(
          rank, static_cast<std::uint32_t>(store.live()) - 1);
      auto cur = store.begin();
      std::uint32_t seen = 0;
      std::uint32_t victim = 0;
      while (true) {
        const std::size_t got = store.next_batch(cur, buf);
        if (got == 0) break;
        if (seen + got > target) {
          victim = buf[target - seen];
          break;
        }
        seen += static_cast<std::uint32_t>(got);
      }
      store.remove(victim);
    }
    benchmark::DoNotOptimize(store.live());
  }
}

void BM_VectorTombstones(benchmark::State& state) {
  const auto ranks = removal_ranks();
  constexpr std::uint32_t kDead = 0x80000000u;
  for (auto _ : state) {
    std::vector<std::uint32_t> slots(kCount);
    std::uint32_t live = kCount;
    for (std::uint32_t i = 0; i < kCount; ++i) slots[i] = i;
    for (const std::uint32_t rank : ranks) {
      const std::uint32_t target = std::min(rank, live - 1);
      std::uint32_t seen = 0;
      for (auto& s : slots) {
        if (s & kDead) continue;  // tombstones are still visited
        if (seen++ == target) {
          s |= kDead;
          --live;
          break;
        }
      }
    }
    benchmark::DoNotOptimize(slots.data());
  }
}

void BM_LinkedList(benchmark::State& state) {
  const auto ranks = removal_ranks();
  for (auto _ : state) {
    std::list<std::uint32_t> slots;
    for (std::uint32_t i = 0; i < kCount; ++i) slots.push_back(i);
    for (const std::uint32_t rank : ranks) {
      const std::uint32_t target =
          std::min<std::uint32_t>(rank,
                                  static_cast<std::uint32_t>(slots.size()) - 1);
      auto it = slots.begin();
      std::advance(it, target);
      slots.erase(it);
    }
    benchmark::DoNotOptimize(slots.size());
  }
}

void BM_McbBatchSize(benchmark::State& state) {
  const graph::Graph g = graph::generators::subdivide(
      graph::generators::random_biconnected(60, 140, 21), 60, 22);
  for (auto _ : state) {
    const auto r = mcb::minimum_cycle_basis(
        g, {.mode = core::ExecutionMode::Sequential,
            .batch_size = static_cast<std::uint32_t>(state.range(0))});
    benchmark::DoNotOptimize(r.total_weight);
  }
}

BENCHMARK(BM_CycleStoreHybrid)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VectorTombstones)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LinkedList)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_McbBatchSize)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace

EARDEC_BENCH_MAIN();
