// Scaling companion to Figure 2's planar section. At the repository's
// reduced dataset scale (~1/32 of the paper's 19K-41K vertices) the
// Djidjev baseline still wins on planar inputs: its boundary-size blowup —
// the reason the paper's full-scale planar runs favour the ear pipeline by
// 2.2x — has not kicked in yet. This bench regenerates the trend: the
// Djidjev/ours time ratio climbs steadily with n (toward the crossover),
// which is the shape statement EXPERIMENTS.md makes for the planar rows.
#include <cstdio>

#include "baselines/djidjev_apsp.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"

int main() {
  const eardec::bench::ObservabilitySession obs_session;
  using namespace eardec;
  const auto opts = bench::bench_apsp_options(core::ExecutionMode::Heterogeneous);

  std::printf("=== Scaling: ours vs Djidjev on growing planar graphs ===\n");
  std::printf("%6s %7s %6s %6s %10s %12s %16s\n", "n", "m", "parts", "|B|",
              "ours(s)", "djidjev(s)", "ratio(dj/ours)");
  bench::print_rule(70);
  for (const graph::VertexId side : {20u, 28u, 36u, 48u}) {
    graph::Graph g = graph::generators::subdivide(
        graph::generators::random_planar(side, side, 0.6, 0.12, 3),
        side * side / 6, 4);
    const auto parts =
        std::max<std::uint32_t>(4, g.num_vertices() / 112);
    const double ours = bench::time_seconds([&] { core::EarApsp a(g, opts); });
    std::size_t boundary = 0;
    const double djidjev = bench::time_seconds([&] {
      const baselines::DjidjevApsp d(g, parts, opts);
      boundary = d.boundary_size();
      const auto full = d.materialize();
      volatile graph::Weight sink = full.at(0, 1);
      (void)sink;
    });
    std::printf("%6u %7u %6u %6zu %10.3f %12.3f %16.2f\n", g.num_vertices(),
                g.num_edges(), parts, boundary, ours, djidjev, djidjev / ours);
  }
  bench::print_rule(70);
  std::printf("Shape check: the ratio increases monotonically with n — the\n"
              "boundary (|B|, growing linearly under fixed part capacity)\n"
              "progressively erodes Djidjev's small-scale advantage; the\n"
              "crossover the paper measures sits at its 25-32x larger scale.\n");
  return 0;
}
