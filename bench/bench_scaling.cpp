// Million-node ingestion scaling: the end-to-end pipeline the paper's
// memory claim is about, measured per phase at growing n.
//
//   generate   -> build_csr (parallel) -> write_edg2 -> load (mmap)
//   -> phase0 (BCC) -> phase1 (chains) -> phase1 (largest-block ears)
//
// Each phase reports nodes/sec; the run reports sampled RSS against the
// linear core::phase01_memory_model bound (docs/scaling.md describes the
// methodology). The load row doubles as the zero-copy proof: mapping the
// EDG2 file must not materialize the CSR arrays, so the RSS delta across
// the load stays far below the CSR payload size.
//
// Emits bench_results/scaling.json (schema v2); `--smoke` shrinks the size
// axis for the CI gate (tools/check_bench_smoke.py validates the shape and
// re-checks the RSS envelope from the snapshot).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "connectivity/bcc.hpp"
#include "connectivity/ear_decomposition.hpp"
#include "core/memory_model.hpp"
#include "graph/edg2.hpp"
#include "graph/generators.hpp"
#include "hetero/thread_pool.hpp"
#include "obs/sampler.hpp"
#include "reduce/chains.hpp"

namespace {

using namespace eardec;

struct PhaseRow {
  const char* name;
  double seconds = 0;
  double nodes_per_s = 0;
};

struct SizeResult {
  graph::VertexId n = 0;
  graph::EdgeId m = 0;
  std::vector<PhaseRow> phases;
  double before_load_mb = 0;  ///< RSS just before the mmap load
  double load_delta_mb = 0;   ///< RSS growth across the load (zero-copy proof)
  double peak_mb = 0;         ///< VmHWM after Phase 0-I
  double model_mb = 0;        ///< core::phase01_memory_model bound
  double model_csr_mb = 0;    ///< the CSR payload portion of the bound
};

SizeResult run_size(graph::VertexId n, hetero::ThreadPool& pool,
                    const std::filesystem::path& tmp) {
  SizeResult r;
  r.n = n;
  const auto phase = [&](const char* name, double seconds) {
    r.phases.push_back(
        {name, seconds, static_cast<double>(n) / seconds});
  };

  {
    graph::generators::ScaleEdges se;
    phase("generate", bench::time_seconds([&] {
            se = graph::generators::table1_scale_edges(n, 42);
          }));
    graph::Graph owned;
    phase("build_csr", bench::time_seconds([&] {
            owned = graph::io::build_csr_parallel(
                se.num_vertices, std::move(se.edges), std::move(se.weights),
                &pool);
          }));
    r.m = owned.num_edges();
    phase("write_edg2", bench::time_seconds([&] {
            graph::io::write_edg2_file(tmp, owned, &pool, "bench_scaling");
          }));
  }  // the owned graph and edge lists are released before the load measure

  r.before_load_mb = obs::read_rss_mb();
  graph::Graph g;
  phase("load_mmap", bench::time_seconds([&] {
          g = graph::io::read_edg2_file(tmp);
        }));
  r.load_delta_mb = obs::read_rss_mb() - r.before_load_mb;

  connectivity::BiconnectedComponents bcc;
  phase("phase0_bcc", bench::time_seconds(
                          [&] { bcc = connectivity::biconnected_components(g); }));
  phase("phase1_chains",
        bench::time_seconds([&] { (void)reduce::find_chains(g); }));
  phase("phase1_ears", bench::time_seconds([&] {
          std::uint32_t largest = 0;
          for (std::uint32_t c = 1; c < bcc.num_components; ++c) {
            if (bcc.component_edges(c).size() >
                bcc.component_edges(largest).size()) {
              largest = c;
            }
          }
          const auto view = connectivity::extract_component(g, bcc, largest);
          // The serial algorithm is the O(n + m) one; the parallel variant's
          // per-edge LCA climb is superlinear on the deep DFS trees this
          // generator's chain-heavy dominant block produces.
          (void)connectivity::ear_decomposition(view.graph);
        }));

  r.peak_mb = obs::read_peak_rss_mb();
  const core::Phase01Model model = core::phase01_memory_model(n, r.m);
  r.model_mb = model.total_mb();
  r.model_csr_mb = model.csr_mb();
  return r;
}

void emit_json(const std::vector<SizeResult>& results, bool smoke) {
  std::filesystem::create_directories("bench_results");
  std::FILE* out = std::fopen("bench_results/scaling.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n");
  eardec::bench::json_stamp(out);
  std::fprintf(out, "  \"smoke\": %s,\n  \"sizes\": [\n",
               smoke ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    std::fprintf(out, "    {\"n\": %u, \"m\": %u,\n      \"phases\": {",
                 r.n, r.m);
    for (std::size_t p = 0; p < r.phases.size(); ++p) {
      std::fprintf(out,
                   "%s\n        \"%s\": {\"seconds\": %.6f, "
                   "\"nodes_per_s\": %.1f}",
                   p == 0 ? "" : ",", r.phases[p].name, r.phases[p].seconds,
                   r.phases[p].nodes_per_s);
    }
    std::fprintf(out,
                 "\n      },\n      \"rss\": {\"before_load_mb\": %.2f, "
                 "\"load_delta_mb\": %.2f, \"peak_mb\": %.2f, "
                 "\"model_mb\": %.2f, \"model_csr_mb\": %.2f}}%s\n",
                 r.before_load_mb, r.load_delta_mb, r.peak_mb, r.model_mb,
                 r.model_csr_mb, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote bench_results/scaling.json (%zu sizes)\n",
              results.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObservabilitySession obs_session;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<graph::VertexId> sizes =
      smoke ? std::vector<graph::VertexId>{20'000, 60'000}
            : std::vector<graph::VertexId>{100'000, 300'000, 1'000'000};
  hetero::ThreadPool pool(3);
  const std::filesystem::path tmp =
      std::filesystem::temp_directory_path() / "eardec_bench_scaling.edg2";

  std::printf("=== Scaling: mmap ingestion + streaming Phase 0-I ===\n");
  std::printf("%9s %9s %12s %11s %11s %11s %9s %9s\n", "n", "m", "phase",
              "seconds", "Mnodes/s", "loadRSS", "peak(MB)", "model(MB)");
  bench::print_rule(90);

  // Min-of-3 per size: single-core scheduler noise moves few-ms phases by
  // ±25%, which is exactly the perf-regression threshold; the minimum is
  // the stable statistic for CPU-bound phases.
  constexpr int kReps = 3;
  std::vector<SizeResult> results;
  for (const graph::VertexId n : sizes) {
    // Ascending sizes: VmHWM is monotone per process, so each size's peak
    // reading is dominated by its own (largest-so-far) run.
    SizeResult best = run_size(n, pool, tmp);
    for (int rep = 1; rep < kReps; ++rep) {
      const SizeResult again = run_size(n, pool, tmp);
      for (std::size_t p = 0; p < best.phases.size(); ++p) {
        if (again.phases[p].seconds < best.phases[p].seconds) {
          best.phases[p] = again.phases[p];
        }
      }
      best.load_delta_mb = std::min(best.load_delta_mb, again.load_delta_mb);
      best.peak_mb = again.peak_mb;  // VmHWM is cumulative: last read = max
    }
    results.push_back(best);
    const SizeResult& r = results.back();
    for (const PhaseRow& p : r.phases) {
      std::printf("%9u %9u %12s %11.3f %11.2f %11s %9s %9s\n", r.n, r.m,
                  p.name, p.seconds, p.nodes_per_s / 1e6, "", "", "");
    }
    std::printf("%9u %9u %12s %11s %11s %+10.1fM %9.1f %9.1f\n", r.n, r.m,
                "(rss)", "", "", r.load_delta_mb, r.peak_mb, r.model_mb);
  }
  bench::print_rule(90);
  std::printf(
      "Zero-copy check: the load-phase RSS delta stays far below the CSR\n"
      "payload (model_csr) because the mmap'd sections fault in lazily;\n"
      "peak RSS must stay inside the linear phase01 model envelope.\n");
  std::error_code ec;
  std::filesystem::remove(tmp, ec);
  emit_json(results, smoke);
  return 0;
}
