// Figure 3 reproduction: MTEPS (million traversed edges per second,
// computed as |E| * |V| / time / 1e6 per the paper's definition) for our
// approach and the per-family baselines. Higher is better; the shape to
// reproduce is "Our Approach" leading on every dataset, with the largest
// margins on degree-2-rich graphs.
#include <cstdio>

#include "apsp_sweep.hpp"

int main() {
  const eardec::bench::ObservabilitySession obs_session;
  using namespace eardec;
  const auto rows = bench::run_apsp_sweep();

  std::printf("=== Figure 3: MTEPS (|E|*|V| / seconds / 1e6) ===\n");
  std::printf("%-18s %9s %14s %14s\n", "Graph", "Baseline", "Base MTEPS",
              "Ours MTEPS");
  bench::print_rule(60);
  for (const auto& r : rows) {
    const double work = r.edges * r.vertices / 1e6;
    std::printf("%-18s %9s %14.1f %14.1f\n", r.name.c_str(), r.baseline_name,
                work / r.baseline_seconds, work / r.ours_seconds);
  }
  bench::print_rule(60);
  std::printf("Shape check: Ours >= baseline MTEPS on every row, widest on "
              "high degree-2 fractions (as-22july06, Wordnet3, c-50).\n");
  return 0;
}
