// Figure 6 reproduction: absolute MCB runtimes of the four implementations
// side by side (the paper plots these on a log scale next to Table 2's
// data). Both 'with ears' series and the sequential 'without ears' anchor
// are shown so the plot-shape comparison is direct.
#include <cstdio>

#include "mcb_sweep.hpp"

int main() {
  const eardec::bench::ObservabilitySession obs_session;
  using namespace eardec;
  const auto rows = bench::run_mcb_sweep();

  std::printf("=== Figure 6: absolute MCB time (seconds, with ears) ===\n");
  std::printf("%-15s %12s %12s %12s %12s %14s\n", "Graph", "Sequential",
              "Multi-Core", "GPU", "CPU+GPU", "Seq w/o ears");
  bench::print_rule(82);
  for (const auto& r : rows) {
    std::printf("%-15s %12.4f %12.4f %12.4f %12.4f %14.4f\n", r.graph.c_str(),
                r.seconds[0][0], r.seconds[1][0], r.seconds[2][0],
                r.seconds[3][0], r.seconds[0][1]);
  }
  bench::print_rule(82);
  std::printf("Shape check: the w/o-ears anchor is slowest exactly on the "
              "degree-2-rich graphs (as-22july06, c-50); on one physical "
              "core the four implementations cluster together (Figure 5 "
              "note).\n");
  return 0;
}
