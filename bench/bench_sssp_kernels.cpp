// SSSP/APSP kernel comparison on the kind of reduced graphs phase II
// actually processes: binary-heap Dijkstra (the CPU kernel), the device
// frontier kernel (Harish–Narayanan), delta-stepping, and the two
// Floyd–Warshall variants for the dense-table regime.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "core/ear_apsp.hpp"
#include "graph/datasets.hpp"
#include "reduce/reduced_graph.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/device_floyd_warshall.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/frontier_sssp.hpp"

namespace {

using namespace eardec;

/// The reduced graph of the c-50 stand-in — the exact workload the
/// processing phase hands to the kernels.
const graph::Graph& reduced_graph() {
  static const graph::Graph g = [] {
    const graph::Graph full = graph::datasets::by_name("c-50").make();
    return reduce::ReducedGraph(full, reduce::ReduceMode::ForApsp).graph();
  }();
  return g;
}

void BM_DijkstraSweep(benchmark::State& state) {
  const auto& g = reduced_graph();
  sssp::DijkstraWorkspace ws(g.num_vertices());
  std::vector<graph::Weight> dist(g.num_vertices());
  for (auto _ : state) {
    for (graph::VertexId s = 0; s < g.num_vertices(); s += 8) {
      ws.distances(g, s, dist);
    }
    benchmark::DoNotOptimize(dist.data());
  }
}

void BM_FrontierSweep(benchmark::State& state) {
  const auto& g = reduced_graph();
  hetero::Device dev({.workers = 2, .warp_size = 32});
  sssp::FrontierWorkspace ws(g.num_vertices());
  std::vector<graph::Weight> dist(g.num_vertices());
  for (auto _ : state) {
    for (graph::VertexId s = 0; s < g.num_vertices(); s += 8) {
      ws.distances(g, s, dev, dist);
    }
    benchmark::DoNotOptimize(dist.data());
  }
}

void BM_DeltaSteppingSweep(benchmark::State& state) {
  const auto& g = reduced_graph();
  for (auto _ : state) {
    for (graph::VertexId s = 0; s < g.num_vertices(); s += 8) {
      benchmark::DoNotOptimize(sssp::delta_stepping(g, s));
    }
  }
}

void BM_BlockedFloydWarshall(benchmark::State& state) {
  const auto& g = reduced_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sssp::blocked_floyd_warshall(g, static_cast<graph::VertexId>(
                                            state.range(0))));
  }
}

void BM_DeviceFloydWarshall(benchmark::State& state) {
  const auto& g = reduced_graph();
  hetero::Device dev({.workers = 2, .warp_size = 32});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::device_floyd_warshall(
        g, dev, static_cast<graph::VertexId>(state.range(0))));
  }
}

BENCHMARK(BM_DijkstraSweep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FrontierSweep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DeltaSteppingSweep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BlockedFloydWarshall)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DeviceFloydWarshall)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

EARDEC_BENCH_MAIN();
