// SSSP/APSP kernel comparison on the kind of reduced graphs phase II
// actually processes: binary-heap Dijkstra (the paper's CPU kernel), the
// batched multi-source kernel, delta-stepping (workspace form, fanned out
// over a shared pool), the device frontier kernel (Harish–Narayanan), and
// the two Floyd–Warshall variants for the dense-table regime.
//
// Besides the google-benchmark timings, the binary always emits a
// machine-readable ablation into bench_results/sssp_kernels.json: full
// source sweeps per (graph, kernel, batch width k) cell, with per-source
// throughput and the multi-source frontier-round counts. This is the
// evidence behind the Auto kernel selector's thresholds (docs/sssp_perf.md)
// — the batched kernel must beat per-source Dijkstra from k >= 4 on the
// large reduced components. `--smoke` shrinks the sweep for the CI gate
// (tools/check_bench_smoke.py validates the snapshot's shape).
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "core/ear_apsp.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "reduce/reduced_graph.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/device_floyd_warshall.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/frontier_sssp.hpp"
#include "sssp/multi_source.hpp"

namespace {

using namespace eardec;

/// The reduced graph of the c-50 stand-in — the exact workload the
/// processing phase hands to the kernels.
const graph::Graph& reduced_graph() {
  static const graph::Graph g = [] {
    const graph::Graph full = graph::datasets::by_name("c-50").make();
    return reduce::ReducedGraph(full, reduce::ReduceMode::ForApsp).graph();
  }();
  return g;
}

/// Shared pool for the parallel kernel paths (sized like the phase-II
/// drain: bench_apsp_options' cpu_threads).
hetero::ThreadPool& shared_pool() {
  static hetero::ThreadPool pool(3);
  return pool;
}

void BM_DijkstraSweep(benchmark::State& state) {
  const auto& g = reduced_graph();
  sssp::DijkstraWorkspace ws(g.num_vertices());
  std::vector<graph::Weight> dist(g.num_vertices());
  for (auto _ : state) {
    for (graph::VertexId s = 0; s < g.num_vertices(); s += 8) {
      ws.distances(g, s, dist);
    }
    benchmark::DoNotOptimize(dist.data());
  }
}

void BM_MultiSourceSweep(benchmark::State& state) {
  const auto& g = reduced_graph();
  const auto k = static_cast<std::uint32_t>(state.range(0));
  sssp::MultiSourceWorkspace ws(g.num_vertices(), k);
  sssp::DistanceMatrix out(g.num_vertices());
  for (auto _ : state) {
    for (graph::VertexId s = 0; s < g.num_vertices(); s += k) {
      ws.distances(g, s, std::min<graph::VertexId>(s + k, g.num_vertices()),
                   out);
    }
    benchmark::DoNotOptimize(out.row(0).data());
  }
}

void BM_FrontierSweep(benchmark::State& state) {
  const auto& g = reduced_graph();
  hetero::Device dev({.workers = 2, .warp_size = 32});
  sssp::FrontierWorkspace ws(g.num_vertices());
  std::vector<graph::Weight> dist(g.num_vertices());
  for (auto _ : state) {
    for (graph::VertexId s = 0; s < g.num_vertices(); s += 8) {
      ws.distances(g, s, dev, dist);
    }
    benchmark::DoNotOptimize(dist.data());
  }
}

void BM_DeltaSteppingSweep(benchmark::State& state) {
  const auto& g = reduced_graph();
  // Workspace + shared pool: the per-call atomics allocation of the old
  // free-function form is gone and the light-edge rounds exercise the
  // per-slot request buffers (the path the phase-II device driver uses).
  hetero::ThreadPool* pool = state.range(0) != 0 ? &shared_pool() : nullptr;
  sssp::DeltaSteppingWorkspace ws(g.num_vertices());
  std::vector<graph::Weight> dist(g.num_vertices());
  for (auto _ : state) {
    for (graph::VertexId s = 0; s < g.num_vertices(); s += 8) {
      ws.distances(g, s, dist, 0, pool);
    }
    benchmark::DoNotOptimize(dist.data());
  }
}

void BM_BlockedFloydWarshall(benchmark::State& state) {
  const auto& g = reduced_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sssp::blocked_floyd_warshall(g, static_cast<graph::VertexId>(
                                            state.range(0))));
  }
}

void BM_DeviceFloydWarshall(benchmark::State& state) {
  const auto& g = reduced_graph();
  hetero::Device dev({.workers = 2, .warp_size = 32});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::device_floyd_warshall(
        g, dev, static_cast<graph::VertexId>(state.range(0))));
  }
}

BENCHMARK(BM_DijkstraSweep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MultiSourceSweep)->Arg(4)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FrontierSweep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DeltaSteppingSweep)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BlockedFloydWarshall)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DeviceFloydWarshall)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// JSON ablation: kernel x batch width x reduced-component size.

struct Cell {
  std::string graph;
  graph::VertexId n = 0;
  graph::EdgeId m = 0;
  const char* kernel = "";
  std::uint32_t k = 1;
  double seconds = 0;        ///< best-of-reps full source sweep
  double sources_per_s = 0;
  std::uint32_t rounds = 0;  ///< multi-source frontier rounds (last batch)
};

/// Best-of-`reps` wall clock of `sweep` (which must cover all n sources).
double best_seconds(int reps, const std::function<void()>& sweep) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    best = std::min(best, eardec::bench::time_seconds(sweep));
  }
  return best;
}

void measure_graph(const std::string& name, const graph::Graph& g, bool smoke,
                   std::vector<Cell>& cells) {
  const graph::VertexId n = g.num_vertices();
  if (n == 0) return;
  const int reps = smoke ? 2 : 3;
  const auto add = [&](const char* kernel, std::uint32_t k, double seconds,
                       std::uint32_t rounds) {
    cells.push_back({name, n, g.num_edges(), kernel, k, seconds,
                     seconds > 0 ? static_cast<double>(n) / seconds : 0.0,
                     rounds});
  };

  {
    EARDEC_TRACE_SCOPE_PMU("apsp.sssp_block");
    sssp::DijkstraWorkspace ws(n);
    std::vector<graph::Weight> dist(n);
    add("dijkstra", 1, best_seconds(reps, [&] {
          for (graph::VertexId s = 0; s < n; ++s) ws.distances(g, s, dist);
        }),
        0);
  }
  {
    EARDEC_TRACE_SCOPE_PMU("apsp.sssp_block");
    sssp::DeltaSteppingWorkspace ws(n);
    std::vector<graph::Weight> dist(n);
    add("delta", 1, best_seconds(reps, [&] {
          for (graph::VertexId s = 0; s < n; ++s) {
            ws.distances(g, s, dist, 0, &shared_pool());
          }
        }),
        0);
  }
  sssp::MultiSourceWorkspace ws;
  sssp::DistanceMatrix out(n);
  const std::vector<std::uint32_t> widths =
      smoke ? std::vector<std::uint32_t>{1, 4, 8}
            : std::vector<std::uint32_t>{1, 4, 8, 16, 32};
  for (const std::uint32_t k : widths) {
    EARDEC_TRACE_SCOPE_PMU("apsp.sssp_block");
    ws.ensure(n, k);
    // Sequence the measurement before reading last_rounds(): function
    // argument evaluation order would otherwise be free to read it first.
    const double seconds = best_seconds(reps, [&] {
      for (graph::VertexId s = 0; s < n; s += k) {
        ws.distances(g, s, std::min<graph::VertexId>(s + k, n), out);
      }
    });
    add("multi_source", k, seconds, ws.last_rounds());
  }
}

void emit_json(bool smoke) {
  std::vector<Cell> cells;
  measure_graph("c50_reduced", reduced_graph(), smoke, cells);
  {
    // Dense-chain synthetic: a subdivided biconnected graph reduced for
    // APSP — the dominant-component shape where the Auto selector must
    // pick the batched kernel.
    const graph::Graph base = graph::generators::random_biconnected(
        smoke ? 160 : 700, smoke ? 400 : 1800, 5);
    const graph::Graph full =
        graph::generators::subdivide(base, smoke ? 300 : 1400, 6);
    const graph::Graph g =
        reduce::ReducedGraph(full, reduce::ReduceMode::ForApsp).graph();
    measure_graph("biconnected_reduced", g, smoke, cells);
  }
  if (!smoke) {
    // Small-component regime: where per-source Dijkstra should stay ahead
    // and the selector's floor (kAutoMultiSourceMinVertices) comes from.
    const graph::Graph g = graph::generators::random_biconnected(16, 32, 9);
    measure_graph("small_component", g, smoke, cells);
  }

  std::filesystem::create_directories("bench_results");
  std::FILE* out = std::fopen("bench_results/sssp_kernels.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n");
  eardec::bench::json_stamp(out);
  std::fprintf(out, "  \"smoke\": %s,\n  \"cells\": [\n",
               smoke ? "true" : "false");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(out,
                 "    {\"graph\": \"%s\", \"n\": %u, \"m\": %u, "
                 "\"kernel\": \"%s\", \"k\": %u, \"seconds\": %.6f, "
                 "\"sources_per_s\": %.1f, \"rounds\": %u}%s\n",
                 c.graph.c_str(), c.n, c.m, c.kernel, c.k, c.seconds,
                 c.sources_per_s, c.rounds, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote bench_results/sssp_kernels.json (%zu cells)\n",
              cells.size());
}

}  // namespace

int main(int argc, char** argv) {
  const eardec::bench::ObservabilitySession obs;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      // Consume the flag so google-benchmark doesn't reject it.
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_json(smoke);
  return 0;
}
