// The MCB sweep behind Table 2, Figure 5, and Figure 6: wall time of the
// four implementations (sequential, multicore, device, heterogeneous),
// each with and without ear decomposition, on the first seven Table-1
// datasets (the subset the paper's MCB experiments use). Measured once,
// cached in bench_results/mcb_sweep.csv.
#pragma once

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/datasets.hpp"
#include "mcb/ear_mcb.hpp"

namespace eardec::bench {

struct McbRow {
  std::string graph;
  /// seconds[mode][0] = with ears, seconds[mode][1] = without.
  double seconds[4][2] = {};
};

inline mcb::McbOptions bench_mcb_options(core::ExecutionMode mode,
                                         bool with_ears) {
  return {.mode = mode,
          .cpu_threads = 3,
          .device = {.workers = 2, .warp_size = 32},
          .batch_size = 128,
          .use_ear_decomposition = with_ears};
}

inline std::vector<McbRow> run_mcb_sweep() {
  SweepCache cache(sweep_path("mcb_sweep.csv"));
  std::vector<McbRow> rows;
  for (const auto& d : graph::datasets::mcb_seven()) {
    const graph::Graph g = d.make_small();
    McbRow row;
    row.graph = d.name;
    const auto& modes = implementation_modes();
    for (std::size_t m = 0; m < modes.size(); ++m) {
      for (const bool with_ears : {true, false}) {
        const std::string key = d.name + "/" + modes[m].name +
                                (with_ears ? "/w" : "/wo");
        row.seconds[m][with_ears ? 0 : 1] =
            cache.get_or_measure(key, [&] {
              return time_seconds([&] {
                const auto r = mcb::minimum_cycle_basis(
                    g, bench_mcb_options(modes[m].mode, with_ears));
                (void)r;
              });
            });
      }
    }
    rows.push_back(std::move(row));
  }
  cache.save();
  return rows;
}

}  // namespace eardec::bench
