// The MCB sweep behind Table 2, Figure 5, and Figure 6: wall time of the
// four implementations (sequential, multicore, device, heterogeneous),
// each with and without ear decomposition, on the first seven Table-1
// datasets (the subset the paper's MCB experiments use). Measured once,
// cached in bench_results/mcb_sweep.csv. Smoke mode (CI) restricts the
// sweep to the two chain-rich datasets, bypasses the cache, and keeps the
// best of two repetitions so the JSON snapshot reflects the binary under
// test rather than a stale checkout.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "graph/datasets.hpp"
#include "mcb/ear_mcb.hpp"

namespace eardec::bench {

struct McbRow {
  std::string graph;
  std::uint32_t n = 0;
  std::uint32_t m = 0;
  /// seconds[mode][0] = with ears, seconds[mode][1] = without.
  double seconds[4][2] = {};
};

inline mcb::McbOptions bench_mcb_options(core::ExecutionMode mode,
                                         bool with_ears) {
  return {.mode = mode,
          .cpu_threads = 3,
          .device = {.workers = 2, .warp_size = 32},
          .batch_size = 128,
          .use_ear_decomposition = with_ears};
}

/// Chain-rich subset used by smoke mode: high degree-2 fraction, so the
/// ear-contraction and witness-offload paths both light up, and small
/// enough that two repetitions finish in CI seconds.
inline bool smoke_dataset(const std::string& name) {
  return name == "as-22july06" || name == "c-50";
}

inline std::vector<McbRow> run_mcb_sweep(bool smoke = false) {
  SweepCache cache(sweep_path("mcb_sweep.csv"));
  const int reps = smoke ? 2 : 3;
  std::vector<McbRow> rows;
  for (const auto& d : graph::datasets::mcb_seven()) {
    if (smoke && !smoke_dataset(d.name)) continue;
    const graph::Graph g = d.make_small();
    McbRow row;
    row.graph = d.name;
    row.n = g.num_vertices();
    row.m = g.num_edges();
    const auto& modes = implementation_modes();
    for (std::size_t m = 0; m < modes.size(); ++m) {
      for (const bool with_ears : {true, false}) {
        const std::string key = d.name + "/" + modes[m].name +
                                (with_ears ? "/w" : "/wo");
        const auto measure = [&] {
          double best = 1e100;
          for (int rep = 0; rep < reps; ++rep) {
            best = std::min(best, time_seconds([&] {
                     const auto r = mcb::minimum_cycle_basis(
                         g, bench_mcb_options(modes[m].mode, with_ears));
                     (void)r;
                   }));
          }
          return best;
        };
        // Smoke mode must measure the binary under test, never a stale
        // cache entry left behind by a previous revision.
        row.seconds[m][with_ears ? 0 : 1] =
            smoke ? measure() : cache.get_or_measure(key, measure);
      }
    }
    rows.push_back(std::move(row));
  }
  if (!smoke) cache.save();
  return rows;
}

/// Canonical machine-readable snapshot of the Table-2 sweep
/// (bench_results/table2_mcb.json). Mode keys are lowercase stable names;
/// per dataset we record graph size plus with/without-ears seconds so
/// successive PRs can diff both the heterogeneous speedup and the
/// Figure-5 ordering from one file.
inline void write_mcb_sweep_json(const std::vector<McbRow>& rows,
                                 bool smoke, const std::string& path) {
  static const char* kModeKeys[4] = {"sequential", "multicore", "device",
                                     "heterogeneous"};
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  json_stamp(out);
  std::fprintf(out,
               "  \"smoke\": %s,\n  \"hardware_concurrency\": %u,\n"
               "  \"datasets\": {\n",
               smoke ? "true" : "false",
               std::thread::hardware_concurrency());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const McbRow& row = rows[r];
    std::fprintf(out, "    \"%s\": {\"n\": %u, \"m\": %u, \"modes\": {\n",
                 row.graph.c_str(), row.n, row.m);
    for (std::size_t m = 0; m < 4; ++m) {
      std::fprintf(out,
                   "      \"%s\": {\"with_ears_s\": %.6f, "
                   "\"without_ears_s\": %.6f}%s\n",
                   kModeKeys[m], row.seconds[m][0], row.seconds[m][1],
                   m + 1 < 4 ? "," : "");
    }
    std::fprintf(out, "    }}%s\n", r + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace eardec::bench
