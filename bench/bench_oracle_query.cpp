// Query-side benchmark of the distance products: the compact oracle
// (formula evaluation per query), the paper-faithful full tables (pure
// lookups), and on-demand Dijkstra (what you would do without any
// preprocessing). Validates the O(1)-ish query claim that justifies
// building the oracle at all.
#include <random>

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "core/distance_oracle.hpp"
#include "graph/datasets.hpp"
#include "sssp/dijkstra.hpp"

namespace {

using namespace eardec;

const graph::Graph& bench_graph() {
  static const graph::Graph g =
      graph::datasets::by_name("cond_mat_2003").make();
  return g;
}

std::vector<std::pair<graph::VertexId, graph::VertexId>> query_mix() {
  const auto& g = bench_graph();
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<graph::VertexId> pick(0, g.num_vertices() - 1);
  std::vector<std::pair<graph::VertexId, graph::VertexId>> q(4096);
  for (auto& [s, t] : q) {
    s = pick(rng);
    t = pick(rng);
  }
  return q;
}

void BM_CompactOracleQuery(benchmark::State& state) {
  const core::DistanceOracle oracle(
      bench_graph(), {.mode = core::ExecutionMode::Multicore,
                      .cpu_threads = 3});
  const auto queries = query_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = queries[i++ & 4095];
    benchmark::DoNotOptimize(oracle.distance(s, t));
  }
}

void BM_FullTableQuery(benchmark::State& state) {
  const core::EarApsp apsp(bench_graph(),
                           {.mode = core::ExecutionMode::Multicore,
                            .cpu_threads = 3});
  const auto queries = query_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = queries[i++ & 4095];
    benchmark::DoNotOptimize(apsp.distance(s, t));
  }
}

void BM_OnDemandDijkstra(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto queries = query_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = queries[i++ & 4095];
    benchmark::DoNotOptimize(sssp::dijkstra(g, s).dist[t]);
  }
}

BENCHMARK(BM_CompactOracleQuery);
BENCHMARK(BM_FullTableQuery);
BENCHMARK(BM_OnDemandDijkstra)->Unit(benchmark::kMicrosecond);

}  // namespace

EARDEC_BENCH_MAIN();
