// Query-side benchmark of the distance products: the compact oracle
// (formula evaluation per query), the paper-faithful full tables (pure
// lookups), and on-demand Dijkstra (what you would do without any
// preprocessing). Validates the O(1)-ish query claim that justifies
// building the oracle at all.
//
// Queries are stratified by the engine's own route classification into
// three mixes — same_block (one within-block evaluation), cross_block
// (two legs + an AP-table hop) and uniform — because the compact formula's
// cost differs structurally between them: a same-block query is a 2x2 exit
// min, a cross-block query adds the tree route. One cell per method x mix.
//
// Before timing, every pair of every mix is answered by all three methods
// and compared bit for bit (the bench dataset has integer weights, so the
// closed form is exact): a disagreement fails the run. The timed loops
// then record each query individually into a log2 latency histogram, so
// the snapshot reports the tail (p50/p90/p99), not just the mean — for an
// online oracle server the p99 is the claim that matters. The same
// distributions land in the metrics registry
// (oracle.query.{compact,full_table,dijkstra}.latency_ns), so a
// `--stats-port`/EARDEC_STATS_PORT scrape during the run shows them live.
// The snapshot bench_results/oracle_query.json (schema v2, validated by
// tools/check_bench_smoke.py, diffed by tools/compare_bench.py) carries
// qps + mean/p50/p90/p99 nanoseconds per method and mix. `--smoke`
// shrinks the query counts for the CI gate.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"

#include "core/distance_oracle.hpp"
#include "graph/datasets.hpp"
#include "sssp/dijkstra.hpp"

namespace {

using namespace eardec;

const graph::Graph& bench_graph() {
  static const graph::Graph g =
      graph::datasets::by_name("cond_mat_2003").make();
  return g;
}

/// Distances from s on the original graph, computed once per source.
const std::vector<graph::Weight>& dijkstra_row(graph::VertexId s) {
  static std::unordered_map<graph::VertexId, std::vector<graph::Weight>> cache;
  auto it = cache.find(s);
  if (it == cache.end()) {
    it = cache.emplace(s, sssp::dijkstra(bench_graph(), s).dist).first;
  }
  return it->second;
}

struct Mix {
  const char* name = "";
  std::vector<std::pair<graph::VertexId, graph::VertexId>> pairs;
};

/// Stratified pair pools; same_block / cross_block are rejection-sampled
/// on the engine's route classification, uniform is unconditioned.
std::vector<Mix> build_mixes(const core::EarApspEngine& eng) {
  const auto& g = bench_graph();
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<graph::VertexId> pick(0,
                                                      g.num_vertices() - 1);
  const auto sample = [&](const char* name, auto want) {
    Mix mix{name, {}};
    mix.pairs.reserve(4096);
    std::uint64_t attempts = 0;
    while (mix.pairs.size() < 4096 && ++attempts < 4096ull * 400) {
      const graph::VertexId s = pick(rng);
      const graph::VertexId t = pick(rng);
      if (want(eng.route(s, t).kind)) mix.pairs.emplace_back(s, t);
    }
    if (mix.pairs.empty()) mix.pairs.emplace_back(0, 0);
    return mix;
  };
  std::vector<Mix> mixes;
  mixes.push_back(sample("same_block", [](core::QueryRoute::Kind k) {
    return k == core::QueryRoute::Kind::SameBlock;
  }));
  mixes.push_back(sample("cross_block", [](core::QueryRoute::Kind k) {
    return k == core::QueryRoute::Kind::CrossBlock;
  }));
  mixes.push_back(sample("uniform", [](core::QueryRoute::Kind) {
    return true;
  }));
  return mixes;
}

struct MethodResult {
  const char* method = "";
  const char* mix = "";
  std::uint64_t queries = 0;
  double seconds = 0;   ///< wall clock of the whole query loop
  double qps = 0;
  double mean_ns = 0;
  double p50_ns = 0;
  double p90_ns = 0;
  double p99_ns = 0;
};

/// Runs `queries` timed calls of `query` round-robin over the mix, each
/// recorded into the shared registry histogram for that method (visible on
/// a live /metrics scrape) and summarized from it afterwards. The
/// histogram is reset first so every method x mix cell reports its own
/// distribution.
MethodResult run_method(
    const char* method, std::uint64_t queries, const Mix& mix,
    const std::function<double(graph::VertexId, graph::VertexId)>& query) {
  obs::Histogram& lat = obs::MetricsRegistry::instance().histogram(
      std::string("oracle.query.") + method + ".latency_ns");
  lat.reset();
  volatile double sink = 0;  // keep the distance computation observable
  const auto t0 = obs::Tracer::now_ns();
  for (std::uint64_t i = 0; i < queries; ++i) {
    const auto& [s, t] = mix.pairs[i % mix.pairs.size()];
    const std::uint64_t q0 = obs::Tracer::now_ns();
    sink = query(s, t);
    lat.record(obs::Tracer::now_ns() - q0);
  }
  const double seconds = static_cast<double>(obs::Tracer::now_ns() - t0) / 1e9;
  (void)sink;

  MethodResult r;
  r.method = method;
  r.mix = mix.name;
  r.queries = queries;
  r.seconds = seconds;
  r.qps = seconds > 0 ? static_cast<double>(queries) / seconds : 0.0;
  r.mean_ns = lat.count() > 0 ? static_cast<double>(lat.sum()) /
                                    static_cast<double>(lat.count())
                              : 0.0;
  r.p50_ns = lat.quantile(0.50);
  r.p90_ns = lat.quantile(0.90);
  r.p99_ns = lat.quantile(0.99);
  return r;
}

/// Answers every pair of `mix` through all three methods and insists on
/// bitwise agreement (integer weights: rounded-double arithmetic is exact,
/// so any difference is a routing/evaluation bug, not noise).
std::uint64_t check_agreement(const Mix& mix, const core::DistanceOracle& o,
                              const core::EarApsp& apsp) {
  std::uint64_t bad = 0;
  for (const auto& [s, t] : mix.pairs) {
    const graph::Weight compact = o.distance(s, t);
    const graph::Weight full = apsp.distance(s, t);
    const graph::Weight dij = dijkstra_row(s)[t];
    if (std::memcmp(&compact, &dij, sizeof(dij)) != 0 ||
        std::memcmp(&full, &dij, sizeof(dij)) != 0) {
      if (++bad <= 5) {
        std::fprintf(stderr,
                     "disagreement (%s) d(%u,%u): compact=%.17g "
                     "full_table=%.17g dijkstra=%.17g\n",
                     mix.name, s, t, compact, full, dij);
      }
    }
  }
  return bad;
}

void emit_json(const std::vector<MethodResult>& rows, bool smoke) {
  std::filesystem::create_directories("bench_results");
  std::FILE* out = std::fopen("bench_results/oracle_query.json", "w");
  if (out == nullptr) return;
  const auto& g = bench_graph();
  std::fprintf(out, "{\n");
  bench::json_stamp(out);
  std::fprintf(out,
               "  \"smoke\": %s,\n  \"graph\": \"cond_mat_2003\",\n"
               "  \"n\": %u,\n  \"m\": %u,\n  \"cells\": [\n",
               smoke ? "true" : "false", g.num_vertices(), g.num_edges());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const MethodResult& r = rows[i];
    std::fprintf(out,
                 "    {\"method\": \"%s\", \"mix\": \"%s\", "
                 "\"queries\": %llu, "
                 "\"seconds\": %.6f, \"qps\": %.1f, \"mean_ns\": %.1f, "
                 "\"p50_ns\": %.1f, \"p90_ns\": %.1f, \"p99_ns\": %.1f}%s\n",
                 r.method, r.mix, static_cast<unsigned long long>(r.queries),
                 r.seconds, r.qps, r.mean_ns, r.p50_ns, r.p90_ns, r.p99_ns,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote bench_results/oracle_query.json (%zu cells)\n",
              rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObservabilitySession obs_session;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const auto& g = bench_graph();
  const core::ApspOptions opts{.mode = core::ExecutionMode::Multicore,
                               .cpu_threads = 3};
  const core::DistanceOracle oracle(g, opts);
  const core::EarApsp apsp(g, opts);
  const std::vector<Mix> mixes = build_mixes(oracle.engine());

  std::uint64_t disagreements = 0;
  for (const Mix& mix : mixes) disagreements += check_agreement(mix, oracle, apsp);
  if (disagreements > 0) {
    std::fprintf(stderr, "FAIL: %llu pairs disagree across methods\n",
                 static_cast<unsigned long long>(disagreements));
    return 1;
  }

  std::vector<MethodResult> rows;
  for (const Mix& mix : mixes) {
    rows.push_back(run_method(
        "compact", smoke ? 5000 : 100000, mix,
        [&](graph::VertexId s, graph::VertexId t) {
          return oracle.distance(s, t);
        }));
    rows.push_back(run_method(
        "full_table", smoke ? 5000 : 100000, mix,
        [&](graph::VertexId s, graph::VertexId t) {
          return apsp.distance(s, t);
        }));
    rows.push_back(run_method(
        "dijkstra", smoke ? 100 : 1000, mix,
        [&](graph::VertexId s, graph::VertexId t) {
          return sssp::dijkstra(g, s).dist[t];
        }));
  }

  std::printf("=== Oracle query latency, cond_mat_2003 (%u vertices)%s ===\n",
              g.num_vertices(), smoke ? " [smoke]" : "");
  std::printf("%-12s %-12s %10s %12s %10s %10s %10s %10s\n", "Method", "Mix",
              "Queries", "QPS", "mean ns", "p50 ns", "p90 ns", "p99 ns");
  bench::print_rule(12 + 13 + 6 * 11 + 12);
  for (const MethodResult& r : rows) {
    std::printf("%-12s %-12s %10llu %12.0f %10.0f %10.0f %10.0f %10.0f\n",
                r.method, r.mix, static_cast<unsigned long long>(r.queries),
                r.qps, r.mean_ns, r.p50_ns, r.p90_ns, r.p99_ns);
  }
  bench::print_rule(12 + 13 + 6 * 11 + 12);
  std::printf("agreement: every mix pair bit-identical across all three "
              "methods\n");

  emit_json(rows, smoke);
  return 0;
}
