// Query-side benchmark of the distance products: the compact oracle
// (formula evaluation per query), the paper-faithful full tables (pure
// lookups), and on-demand Dijkstra (what you would do without any
// preprocessing). Validates the O(1)-ish query claim that justifies
// building the oracle at all.
//
// Every query is timed individually into a log2 latency histogram, so the
// snapshot reports the tail (p50/p90/p99), not just the mean — for an
// online oracle server the p99 is the claim that matters. The same
// distributions land in the metrics registry
// (oracle.query.{compact,full_table,dijkstra}.latency_ns), so a
// `--stats-port`/EARDEC_STATS_PORT scrape during the run shows them live.
// The snapshot bench_results/oracle_query.json (schema v2, validated by
// tools/check_bench_smoke.py, diffed by tools/compare_bench.py) carries
// qps + mean/p50/p90/p99 nanoseconds per method. `--smoke` shrinks the
// query counts for the CI gate.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"

#include "core/distance_oracle.hpp"
#include "graph/datasets.hpp"
#include "sssp/dijkstra.hpp"

namespace {

using namespace eardec;

const graph::Graph& bench_graph() {
  static const graph::Graph g =
      graph::datasets::by_name("cond_mat_2003").make();
  return g;
}

std::vector<std::pair<graph::VertexId, graph::VertexId>> query_mix() {
  const auto& g = bench_graph();
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<graph::VertexId> pick(0, g.num_vertices() - 1);
  std::vector<std::pair<graph::VertexId, graph::VertexId>> q(4096);
  for (auto& [s, t] : q) {
    s = pick(rng);
    t = pick(rng);
  }
  return q;
}

struct MethodResult {
  const char* method = "";
  std::uint64_t queries = 0;
  double seconds = 0;   ///< wall clock of the whole query loop
  double qps = 0;
  double mean_ns = 0;
  double p50_ns = 0;
  double p90_ns = 0;
  double p99_ns = 0;
};

/// Runs `queries` timed calls of `query` round-robin over the mix, each
/// recorded into the shared registry histogram for that method (visible on
/// a live /metrics scrape) and summarized from it afterwards.
MethodResult run_method(
    const char* method, std::uint64_t queries,
    const std::vector<std::pair<graph::VertexId, graph::VertexId>>& mix,
    const std::function<double(graph::VertexId, graph::VertexId)>& query) {
  obs::Histogram& lat = obs::MetricsRegistry::instance().histogram(
      std::string("oracle.query.") + method + ".latency_ns");
  volatile double sink = 0;  // keep the distance computation observable
  const auto t0 = obs::Tracer::now_ns();
  for (std::uint64_t i = 0; i < queries; ++i) {
    const auto& [s, t] = mix[i & (mix.size() - 1)];
    const std::uint64_t q0 = obs::Tracer::now_ns();
    sink = query(s, t);
    lat.record(obs::Tracer::now_ns() - q0);
  }
  const double seconds = static_cast<double>(obs::Tracer::now_ns() - t0) / 1e9;
  (void)sink;

  MethodResult r;
  r.method = method;
  r.queries = queries;
  r.seconds = seconds;
  r.qps = seconds > 0 ? static_cast<double>(queries) / seconds : 0.0;
  r.mean_ns = lat.count() > 0 ? static_cast<double>(lat.sum()) /
                                    static_cast<double>(lat.count())
                              : 0.0;
  r.p50_ns = lat.quantile(0.50);
  r.p90_ns = lat.quantile(0.90);
  r.p99_ns = lat.quantile(0.99);
  return r;
}

void emit_json(const std::vector<MethodResult>& rows, bool smoke) {
  std::filesystem::create_directories("bench_results");
  std::FILE* out = std::fopen("bench_results/oracle_query.json", "w");
  if (out == nullptr) return;
  const auto& g = bench_graph();
  std::fprintf(out, "{\n");
  bench::json_stamp(out);
  std::fprintf(out,
               "  \"smoke\": %s,\n  \"graph\": \"cond_mat_2003\",\n"
               "  \"n\": %u,\n  \"m\": %u,\n  \"cells\": [\n",
               smoke ? "true" : "false", g.num_vertices(), g.num_edges());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const MethodResult& r = rows[i];
    std::fprintf(out,
                 "    {\"method\": \"%s\", \"queries\": %llu, "
                 "\"seconds\": %.6f, \"qps\": %.1f, \"mean_ns\": %.1f, "
                 "\"p50_ns\": %.1f, \"p90_ns\": %.1f, \"p99_ns\": %.1f}%s\n",
                 r.method, static_cast<unsigned long long>(r.queries),
                 r.seconds, r.qps, r.mean_ns, r.p50_ns, r.p90_ns, r.p99_ns,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote bench_results/oracle_query.json (%zu methods)\n",
              rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObservabilitySession obs_session;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const auto& g = bench_graph();
  const auto mix = query_mix();
  const core::ApspOptions opts{.mode = core::ExecutionMode::Multicore,
                               .cpu_threads = 3};
  std::vector<MethodResult> rows;

  {
    const core::DistanceOracle oracle(g, opts);
    rows.push_back(run_method(
        "compact", smoke ? 5000 : 100000, mix,
        [&](graph::VertexId s, graph::VertexId t) {
          return oracle.distance(s, t);
        }));
  }
  {
    const core::EarApsp apsp(g, opts);
    rows.push_back(run_method(
        "full_table", smoke ? 5000 : 100000, mix,
        [&](graph::VertexId s, graph::VertexId t) {
          return apsp.distance(s, t);
        }));
  }
  rows.push_back(run_method(
      "dijkstra", smoke ? 100 : 1000, mix,
      [&](graph::VertexId s, graph::VertexId t) {
        return sssp::dijkstra(g, s).dist[t];
      }));

  std::printf("=== Oracle query latency, cond_mat_2003 (%u vertices)%s ===\n",
              g.num_vertices(), smoke ? " [smoke]" : "");
  std::printf("%-12s %10s %12s %10s %10s %10s %10s\n", "Method", "Queries",
              "QPS", "mean ns", "p50 ns", "p90 ns", "p99 ns");
  bench::print_rule(12 + 6 * 11 + 12);
  for (const MethodResult& r : rows) {
    std::printf("%-12s %10llu %12.0f %10.0f %10.0f %10.0f %10.0f\n", r.method,
                static_cast<unsigned long long>(r.queries), r.qps, r.mean_ns,
                r.p50_ns, r.p90_ns, r.p99_ns);
  }
  bench::print_rule(12 + 6 * 11 + 12);

  emit_json(rows, smoke);
  return 0;
}
