// Table 1 reproduction: structural profile and memory footprint of every
// dataset. Columns mirror the paper — |V|, |E|, #BCCs, largest BCC as a
// percentage of |E|, percentage of vertices removed by the ear contraction,
// and the memory of the block layout ("Our's") vs the dense n^2 table
// ("Max"). Paper values (at the original 10K-131K scale) are printed
// underneath each measured row for the shape comparison; absolute sizes
// differ by the documented ~32x scale-down (DESIGN.md §2).
#include <cstdio>

#include "bench_common.hpp"
#include "connectivity/bcc.hpp"
#include "core/distance_oracle.hpp"
#include "graph/datasets.hpp"

int main() {
  const eardec::bench::ObservabilitySession obs_session;
  using namespace eardec;
  std::printf("=== Table 1: dataset structure and memory ===\n");
  std::printf("%-18s %7s %7s %6s %9s %9s %9s %9s\n", "Graph", "|V|", "|E|",
              "#BCC", "LrgBCC%", "Removed%", "Ours(MB)", "Max(MB)");
  bench::print_rule(84);

  for (const auto& d : graph::datasets::table1()) {
    const graph::Graph g = d.make();
    const auto bcc = connectivity::biconnected_components(g);
    std::size_t largest_edges = 0;
    for (std::uint32_t c = 0; c < bcc.num_components; ++c) {
      largest_edges = std::max(largest_edges, bcc.component_edges(c).size());
    }
    const core::DistanceOracle oracle(
        g, bench::bench_apsp_options(core::ExecutionMode::Multicore));
    graph::VertexId removed = 0;
    for (std::uint32_t c = 0; c < oracle.engine().num_components(); ++c) {
      removed += oracle.engine().reduced(c).num_removed();
    }
    std::printf("%-18s %7u %7u %6u %8.2f%% %8.2f%% %9.2f %9.2f\n",
                d.name.c_str(), g.num_vertices(), g.num_edges(),
                bcc.num_components,
                100.0 * static_cast<double>(largest_edges) / g.num_edges(),
                100.0 * removed / static_cast<double>(g.num_vertices()),
                oracle.memory().ours_mb(), oracle.memory().full_mb());
    std::printf("%-18s %7.0f %7.0f %6d %8.2f%% %8.2f%% %9.0f %9.0f\n",
                "  (paper)", d.paper.vertices, d.paper.edges, d.paper.bccs,
                d.paper.largest_bcc_pct, d.paper.removed_pct,
                d.paper.ours_memory_mb, d.paper.max_memory_mb);
  }
  bench::print_rule(84);
  std::printf("Shape check: memory ratio Ours/Max tracks the paper "
              "(large savings exactly on the BCC-rich, degree-2-rich "
              "graphs: as-22july06, Wordnet3, soc-sign-epinions).\n");
  return 0;
}
