// Figure 5 reproduction: relative speedup of the Multi-Core, GPU, and
// CPU+GPU MCB implementations over the Sequential one (with ear
// decomposition). The paper reports averages of 3x, 9x, and 11x on a
// 20-core Xeon + Tesla K40c; this container exposes one physical core, so
// the measured values show the *ordering* (hetero >= device >= multicore
// >= 1) rather than those magnitudes — see EXPERIMENTS.md.
#include <cstdio>

#include "mcb_sweep.hpp"

int main() {
  const eardec::bench::ObservabilitySession obs_session;
  using namespace eardec;
  const auto rows = bench::run_mcb_sweep();

  std::printf("=== Figure 5: speedup over Sequential (with ears) ===\n");
  std::printf("%-15s %12s %12s %12s\n", "Graph", "Multi-Core", "GPU",
              "CPU+GPU");
  bench::print_rule(56);
  double sums[3] = {};
  for (const auto& r : rows) {
    const double seq = r.seconds[0][0];
    std::printf("%-15s %11.2fx %11.2fx %11.2fx\n", r.graph.c_str(),
                seq / r.seconds[1][0], seq / r.seconds[2][0],
                seq / r.seconds[3][0]);
    for (int m = 0; m < 3; ++m) sums[m] += seq / r.seconds[m + 1][0];
  }
  bench::print_rule(56);
  std::printf("%-15s %11.2fx %11.2fx %11.2fx   (paper: 3x, 9x, 11x)\n",
              "average", sums[0] / static_cast<double>(rows.size()),
              sums[1] / static_cast<double>(rows.size()),
              sums[2] / static_cast<double>(rows.size()));
  std::printf("note: this container exposes ONE physical core, so ratios\n"
              "near 1.0 are the ceiling — they show the parallel paths add\n"
              "only bounded overhead while computing identical bases; the\n"
              "paper's 3x/9x/11x need its 20-core + K40c platform. See\n"
              "EXPERIMENTS.md for the full discussion.\n");
  return 0;
}
