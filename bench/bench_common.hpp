// Shared support for the table/figure harnesses: wall-clock timing, fixed
// execution configurations matching the paper's four implementations, and
// a CSV cache so figure binaries derived from the same sweep (Table 2 /
// Figure 5 / Figure 6) measure once and render thrice.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/ear_apsp.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/pmu.hpp"
#include "obs/sampler.hpp"
#include "obs/stats_server.hpp"
#include "obs/trace.hpp"

namespace eardec::bench {

/// Bumped whenever the shape of a bench_results/*.json file changes, so the
/// plotting/diffing scripts can reject snapshots they don't understand.
/// v2: every snapshot carries a "pmu" provenance block (availability tier +
/// counter totals from obs/pmu.hpp).
inline constexpr int kBenchSchemaVersion = 2;

/// Git revision the binary was built from (baked in by bench/CMakeLists.txt;
/// "unknown" outside a git checkout).
inline const char* build_git_sha() {
#ifdef EARDEC_GIT_SHA
  return EARDEC_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Writes the provenance header fields of a bench_results/*.json object.
/// Call immediately after printing the opening `{`. Since schema v2 this
/// includes the "pmu" block — availability tier plus whole-run counter
/// totals — so every snapshot says what the hardware was doing (or why we
/// could not ask it).
inline void json_stamp(std::FILE* out) {
  std::fprintf(out, "  \"schema_version\": %d,\n  \"git_sha\": \"%s\",\n",
               kBenchSchemaVersion, build_git_sha());
  const obs::PmuEngine& pmu = obs::PmuEngine::instance();
  const obs::PmuStatus status = pmu.status();
  std::fprintf(out,
               "  \"pmu\": {\n"
               "    \"available\": %d,\n"
               "    \"status\": \"%s\",\n",
               static_cast<int>(status) > 0 ? 1 : 0, obs::to_string(status));
  const obs::PmuSample totals = pmu.totals();
  for (std::size_t s = 0; s < obs::kNumPmuSlots; ++s) {
    std::fprintf(out, "    \"%s\": %llu,\n", obs::kPmuSlotNames[s],
                 static_cast<unsigned long long>(totals.v[s]));
  }
  const double cycles = static_cast<double>(totals.v[obs::kPmuCycles]);
  const double refs = static_cast<double>(totals.v[obs::kPmuCacheReferences]);
  std::fprintf(
      out,
      "    \"ipc\": %.4f,\n    \"cache_miss_rate\": %.4f\n  },\n",
      cycles > 0.0
          ? static_cast<double>(totals.v[obs::kPmuInstructions]) / cycles
          : 0.0,
      refs > 0.0
          ? static_cast<double>(totals.v[obs::kPmuCacheMisses]) / refs
          : 0.0);
}

/// Opt-in observability for every bench binary: set EARDEC_TRACE and/or
/// EARDEC_METRICS to file paths and the session records a Chrome trace /
/// metrics dump of the whole run, written on destruction (i.e. at the end
/// of main). EARDEC_PMU arms the hardware-counter engine ("1"/"auto";
/// "off" pins it disabled) and EARDEC_SAMPLER starts the background
/// counter-track sampler ("<ms>" or "auto"). EARDEC_STATS_PORT serves the
/// registry live over HTTP for the duration of the run. No env vars ->
/// zero behavior change.
class ObservabilitySession {
 public:
  ObservabilitySession() {
    const char* trace = std::getenv("EARDEC_TRACE");
    const char* metrics = std::getenv("EARDEC_METRICS");
    if (trace != nullptr) trace_path_ = trace;
    if (metrics != nullptr) metrics_path_ = metrics;
    if (!trace_path_.empty()) obs::Tracer::instance().set_enabled(true);
    obs::PmuEngine::instance().configure_from_env();
    obs::Sampler::instance().configure_from_env();
    obs::StatsServer::instance().configure_from_env();
    // Flight recorder: always-armed crash telemetry (EARDEC_FLIGHT=off
    // opts out; any other value overrides the eardec-flight-<pid>.json
    // default path). A SIGSEGV/SIGABRT mid-run leaves the newest trace
    // ring + counter mirror behind instead of nothing.
    obs::FlightRecorder::instance().configure_from_env();
  }

  ~ObservabilitySession() {
    obs::StatsServer::instance().stop();
    // Stop the sampler before exporting: exports would quiesce it anyway,
    // but stopping first also captures its final sample.
    obs::Sampler::instance().stop();
    if (!trace_path_.empty() &&
        !obs::Tracer::instance().write_chrome_trace_file(trace_path_)) {
      std::fprintf(stderr, "bench: cannot write trace %s\n",
                   trace_path_.c_str());
    }
    if (!metrics_path_.empty() &&
        !obs::MetricsRegistry::instance().write_file(metrics_path_)) {
      std::fprintf(stderr, "bench: cannot write metrics %s\n",
                   metrics_path_.c_str());
    }
  }

  ObservabilitySession(const ObservabilitySession&) = delete;
  ObservabilitySession& operator=(const ObservabilitySession&) = delete;

 private:
  std::string trace_path_;
  std::string metrics_path_;
};

inline double time_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The paper's four implementations (Table 2 / Figures 5-6 columns).
struct NamedMode {
  const char* name;
  core::ExecutionMode mode;
};

inline const std::vector<NamedMode>& implementation_modes() {
  static const std::vector<NamedMode> modes = {
      {"Sequential", core::ExecutionMode::Sequential},
      {"Multi-Core", core::ExecutionMode::Multicore},
      {"GPU", core::ExecutionMode::DeviceOnly},
      {"CPU+GPU", core::ExecutionMode::Heterogeneous},
  };
  return modes;
}

/// Execution options used by every bench (one physical core in this
/// container: thread counts model the paper's structure, not its scale).
inline core::ApspOptions bench_apsp_options(core::ExecutionMode mode) {
  return {.mode = mode,
          .cpu_threads = 3,
          .device = {.workers = 2, .warp_size = 32},
          .sources_per_unit = 16};
}

/// Flat key -> value cache of measured seconds, persisted as CSV so the
/// sibling figure binaries reuse one sweep.
class SweepCache {
 public:
  explicit SweepCache(std::string path) : path_(std::move(path)) {
    std::ifstream in(path_);
    std::string line;
    while (std::getline(in, line)) {
      const auto comma = line.rfind(',');
      if (comma == std::string::npos) continue;
      values_[line.substr(0, comma)] = std::stod(line.substr(comma + 1));
    }
  }

  /// Returns the cached value or measures it (and schedules a save).
  double get_or_measure(const std::string& key,
                        const std::function<double()>& measure) {
    const auto it = values_.find(key);
    if (it != values_.end()) return it->second;
    const double v = measure();
    values_[key] = v;
    dirty_ = true;
    return v;
  }

  void save() {
    if (!dirty_) return;
    std::ofstream out(path_);
    for (const auto& [k, v] : values_) {
      out << k << ',' << v << '\n';
    }
    dirty_ = false;
  }

  ~SweepCache() { save(); }

 private:
  std::string path_;
  std::map<std::string, double> values_;
  bool dirty_ = false;
};

/// Directory for cached sweeps, created on demand next to the binaries.
inline std::string sweep_path(const std::string& file) {
  std::filesystem::create_directories("bench_results");
  return "bench_results/" + file;
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace eardec::bench

/// Drop-in replacement for BENCHMARK_MAIN(): identical run loop, but the
/// whole run sits inside an ObservabilitySession so EARDEC_TRACE /
/// EARDEC_METRICS work for every bench binary. Only valid in files that
/// include <benchmark/benchmark.h>.
#define EARDEC_BENCH_MAIN()                                               \
  int main(int argc, char** argv) {                                       \
    const ::eardec::bench::ObservabilitySession eardec_bench_obs;         \
    ::benchmark::Initialize(&argc, argv);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::benchmark::RunSpecifiedBenchmarks();                                \
    ::benchmark::Shutdown();                                              \
    return 0;                                                             \
  }                                                                       \
  int main(int, char**)
