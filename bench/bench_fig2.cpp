// Figure 2 reproduction: absolute APSP time of "Our Approach" vs the
// Banerjee et al. baseline (general graphs) and the Djidjev et al.
// baseline (planar graphs), with per-dataset and average speedups. The
// paper reports 1.7x average over Banerjee and 2.2x over Djidjev.
#include <cstdio>

#include "apsp_sweep.hpp"

int main() {
  const eardec::bench::ObservabilitySession obs_session;
  using namespace eardec;
  const auto rows = bench::run_apsp_sweep();

  std::printf("=== Figure 2: APSP absolute time and speedup ===\n");
  std::printf("%-18s %9s %12s %12s %9s\n", "Graph", "Baseline", "Base(s)",
              "Ours(s)", "Speedup");
  bench::print_rule(66);
  double general_sum = 0, planar_sum = 0;
  int general_n = 0, planar_n = 0;
  for (const auto& r : rows) {
    const double speedup = r.baseline_seconds / r.ours_seconds;
    std::printf("%-18s %9s %12.4f %12.4f %8.2fx\n", r.name.c_str(),
                r.baseline_name, r.baseline_seconds, r.ours_seconds, speedup);
    if (r.planar) {
      planar_sum += speedup;
      ++planar_n;
    } else {
      general_sum += speedup;
      ++general_n;
    }
  }
  bench::print_rule(66);
  std::printf("average speedup vs Banerjee (general): %.2fx  (paper: 1.7x)\n",
              general_sum / general_n);
  std::printf("average speedup vs Djidjev  (planar) : %.2fx  (paper: 2.2x)\n",
              planar_sum / planar_n);
  std::printf("note: the planar rows are scale-limited — at 1/32 of the\n"
              "paper's sizes Djidjev's boundary blowup has not engaged; see\n"
              "bench_scaling for the ratio's upward trend with n, and\n"
              "EXPERIMENTS.md for the discussion.\n");
  return 0;
}
