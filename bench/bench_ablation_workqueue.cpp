// Ablation A (DESIGN.md §4): the dynamic double-ended work queue vs a
// static split of the same work units between CPU threads and the device.
// Work units are deliberately skewed (one dominant biconnected component
// plus a long tail of small ones, as in the real datasets) — the regime
// where a static split strands one side idle and the paper's queue wins.
// Also sweeps the device batch size.
#include <atomic>
#include <thread>

#include <benchmark/benchmark.h>

#include "hetero/scheduler.hpp"
#include "hetero/work_queue.hpp"

namespace {

using namespace eardec::hetero;

/// Skewed synthetic units: sizes follow the BCC-size distribution of a
/// block-tree graph (one heavy unit, geometric tail). spin(size) emulates
/// size-proportional work.
std::vector<WorkUnit> skewed_units(std::uint32_t count) {
  std::vector<WorkUnit> units;
  units.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t size = i == 0 ? 4000 : 1 + 400 / (i + 1);
    units.push_back({i, size});
  }
  return units;
}

void spin_for(std::uint64_t size) {
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < size * 50; ++i) acc += i;
  benchmark::DoNotOptimize(acc);
}

void BM_DynamicQueue(benchmark::State& state) {
  for (auto _ : state) {
    WorkQueue q(skewed_units(64));
    run_heterogeneous(
        q,
        {.cpu_threads = 2,
         .cpu_batch = 1,
         .device_batch = static_cast<std::size_t>(state.range(0))},
        [](const WorkUnit& u) { spin_for(u.size); },
        [](const WorkUnit& u) { spin_for(u.size / 4); });  // device 4x faster
  }
}

void BM_StaticSplit(benchmark::State& state) {
  for (auto _ : state) {
    // Same units, pre-assigned: first half (by heavy order) to the device,
    // second half to the CPU threads — no stealing across the boundary.
    auto units = skewed_units(64);
    WorkQueue order(units);
    const auto device_share = order.take_heavy(32);
    const auto cpu_share = order.take_light(32);
    std::thread device([&] {
      for (const auto& u : device_share) spin_for(u.size / 4);
    });
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> cpus;
    for (int t = 0; t < 2; ++t) {
      cpus.emplace_back([&] {
        while (true) {
          const std::size_t i = next.fetch_add(1);
          if (i >= cpu_share.size()) return;
          spin_for(cpu_share[i].size);
        }
      });
    }
    device.join();
    for (auto& t : cpus) t.join();
  }
}

BENCHMARK(BM_DynamicQueue)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StaticSplit)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
