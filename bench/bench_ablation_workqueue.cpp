// Ablation A (DESIGN.md §4): the dynamic double-ended work queue vs a
// static split of the same work units between CPU threads and the device.
// Work units are deliberately skewed (one dominant biconnected component
// plus a long tail of small ones, as in the real datasets) — the regime
// where a static split strands one side idle and the paper's queue wins.
// Also sweeps the device batch size.
//
// Besides the google-benchmark timings, the binary always emits a
// machine-readable snapshot into bench_results/phase2_workqueue.json:
// Phase-II wall clock and units/sec per execution mode on a skewed
// block-tree APSP workload, plus the CPU/device unit split, claim counts
// and utilization from SchedulerStats. Successive PRs diff these files to
// track the Phase-II throughput trajectory (the seed's numbers live in
// bench_results/phase2_workqueue_seed.json, the pre-kernel-overhaul ones
// in bench_results/phase2_workqueue_main.json).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/ear_apsp.hpp"
#include "graph/generators.hpp"
#include "hetero/scheduler.hpp"
#include "hetero/work_queue.hpp"

namespace {

using namespace eardec::hetero;

/// Skewed synthetic units: sizes follow the BCC-size distribution of a
/// block-tree graph (one heavy unit, geometric tail). spin(size) emulates
/// size-proportional work.
std::vector<WorkUnit> skewed_units(std::uint32_t count) {
  std::vector<WorkUnit> units;
  units.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t size = i == 0 ? 4000 : 1 + 400 / (i + 1);
    units.push_back({i, size});
  }
  return units;
}

void spin_for(std::uint64_t size) {
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < size * 50; ++i) acc += i;
  benchmark::DoNotOptimize(acc);
}

void BM_DynamicQueue(benchmark::State& state) {
  for (auto _ : state) {
    WorkQueue q(skewed_units(64));
    run_heterogeneous(
        q,
        {.cpu_threads = 2,
         .cpu_batch = 1,
         .device_batch = static_cast<std::size_t>(state.range(0))},
        [](const WorkUnit& u, unsigned) { spin_for(u.size); },
        [](const WorkUnit& u, unsigned) { spin_for(u.size / 4); });
    // device 4x faster
  }
}

void BM_StaticSplit(benchmark::State& state) {
  for (auto _ : state) {
    // Same units, pre-assigned: first half (by heavy order) to the device,
    // second half to the CPU threads — no stealing across the boundary.
    auto units = skewed_units(64);
    WorkQueue order(units);
    const auto device_share = order.take_heavy(32);
    const auto cpu_share = order.take_light(32);
    std::thread device([&] {
      for (const auto& u : device_share) spin_for(u.size / 4);
    });
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> cpus;
    for (int t = 0; t < 2; ++t) {
      cpus.emplace_back([&] {
        while (true) {
          const std::size_t i = next.fetch_add(1);
          if (i >= cpu_share.size()) return;
          spin_for(cpu_share[i].size);
        }
      });
    }
    device.join();
    for (auto& t : cpus) t.join();
  }
}

BENCHMARK(BM_DynamicQueue)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StaticSplit)->Arg(0)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// JSON snapshot: Phase-II throughput per execution mode.

namespace core = eardec::core;
namespace gen = eardec::graph::generators;
using Clock = std::chrono::steady_clock;

struct ModeSnapshot {
  const char* name;
  core::ExecutionMode mode;
  double total_s = 0;
  core::PhaseTimings timings;
  SchedulerStats stats;
};

void emit_json() {
  gen::BlockTreeParams params;
  params.num_blocks = 96;
  params.largest_block = 1400;
  params.small_block_min = 6;
  params.small_block_max = 40;
  params.intra_degree = 3.0;
  params.pendants = 64;
  const eardec::graph::Graph base = gen::block_tree(params, 7);
  const eardec::graph::Graph g = gen::subdivide(base, 6000, 11);

  ModeSnapshot snapshots[] = {
      {"sequential", core::ExecutionMode::Sequential, 0, {}, {}},
      {"multicore", core::ExecutionMode::Multicore, 0, {}, {}},
      {"device", core::ExecutionMode::DeviceOnly, 0, {}, {}},
      {"heterogeneous", core::ExecutionMode::Heterogeneous, 0, {}, {}},
  };
  for (ModeSnapshot& snap : snapshots) {
    core::ApspOptions opts;
    opts.mode = snap.mode;
    opts.cpu_threads = 4;
    opts.device = {.workers = 2, .warp_size = 32};
    opts.sources_per_unit = 8;
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = Clock::now();
      const core::EarApsp apsp(g, opts);
      const double total =
          std::chrono::duration<double>(Clock::now() - t0).count();
      if (total < best) {
        best = total;
        snap.total_s = total;
        snap.timings = apsp.timings();
        snap.stats = apsp.engine().scheduler_stats();
      }
    }
  }

  std::filesystem::create_directories("bench_results");
  std::FILE* out = std::fopen("bench_results/phase2_workqueue.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n");
  eardec::bench::json_stamp(out);
  std::fprintf(out, "  \"graph\": {\"n\": %u, \"m\": %u},\n  \"modes\": {\n",
               g.num_vertices(), g.num_edges());
  bool first = true;
  for (const ModeSnapshot& snap : snapshots) {
    const std::uint64_t units =
        snap.stats.cpu_units + snap.stats.device_units;
    const double process = snap.timings.process;
    std::fprintf(
        out,
        "%s    \"%s\": {\"total_s\": %.6f, \"decompose_s\": %.6f, "
        "\"reduce_s\": %.6f, \"process_s\": %.6f, \"postprocess_s\": %.6f, "
        "\"ap_table_s\": %.6f, \"units\": %llu, \"units_per_s\": %.1f, "
        "\"cpu_units\": %llu, \"device_units\": %llu, "
        "\"cpu_claims\": %llu, \"device_claims\": %llu, "
        "\"queue_contention\": %llu, \"utilization\": %.4f}",
        first ? "" : ",\n", snap.name, snap.total_s, snap.timings.decompose,
        snap.timings.reduce, process, snap.timings.postprocess,
        snap.timings.ap_table, static_cast<unsigned long long>(units),
        process > 0 ? static_cast<double>(units) / process : 0.0,
        static_cast<unsigned long long>(snap.stats.cpu_units),
        static_cast<unsigned long long>(snap.stats.device_units),
        static_cast<unsigned long long>(snap.stats.cpu_claims),
        static_cast<unsigned long long>(snap.stats.device_claims),
        static_cast<unsigned long long>(snap.stats.queue_contention),
        snap.stats.utilization());
    first = false;
  }
  std::fprintf(out, "\n  }\n}\n");
  std::fclose(out);
  std::printf("wrote bench_results/phase2_workqueue.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  const eardec::bench::ObservabilitySession obs;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_json();
  return 0;
}
