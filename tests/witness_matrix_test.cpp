// The bit-sliced GF(2) witness kernels vs the naive BitVector loop they
// replaced: randomized batched dot/XOR equivalence, sparse<->dense
// promotion round-trips, the word-range early-exit, and the device
// block-XOR sweep (sync and async). Labelled `hetero` so CI's TSan job
// watches the async CPU/device overlap path.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "hetero/device.hpp"
#include "mcb/gf2.hpp"
#include "mcb/witness_matrix.hpp"

namespace {

using eardec::mcb::BitVector;
using eardec::mcb::Gf2KernelStats;
using eardec::mcb::WitnessMatrix;
using eardec::mcb::WitnessView;

/// The pre-overhaul scalar model: f unit BitVectors, per-vector dot/xor.
struct ScalarModel {
  std::vector<BitVector> rows;

  explicit ScalarModel(std::size_t f) {
    rows.reserve(f);
    for (std::size_t i = 0; i < f; ++i) {
      rows.push_back(BitVector::unit(f, i));
    }
  }

  void orthogonalize(std::size_t pivot, const BitVector& ci,
                     std::size_t begin, std::size_t end) {
    for (std::size_t j = begin; j < end; ++j) {
      if (j == pivot) continue;
      if (ci.dot(rows[j])) rows[j].xor_assign(rows[pivot]);
    }
  }
};

BitVector random_vector(std::size_t bits, double density,
                        std::mt19937_64& rng) {
  BitVector v(bits);
  std::bernoulli_distribution bit(density);
  for (std::size_t i = 0; i < bits; ++i) {
    if (bit(rng)) v.set(i, true);
  }
  return v;
}

void expect_rows_equal(const WitnessMatrix& m, const ScalarModel& model,
                       std::size_t f) {
  for (std::size_t j = 0; j < f; ++j) {
    for (std::size_t i = 0; i < f; ++i) {
      ASSERT_EQ(m.get(j, i), model.rows[j].get(i))
          << "row " << j << " bit " << i;
    }
    if (m.row_sparse(j)) {
      // A sparse row's support list must be exactly its set bits, sorted.
      const WitnessView view = m.view(j);
      ASSERT_TRUE(view.has_support());
      std::vector<std::uint32_t> expected;
      for (std::size_t i = 0; i < f; ++i) {
        if (model.rows[j].get(i)) {
          expected.push_back(static_cast<std::uint32_t>(i));
        }
      }
      const auto got = view.support();
      ASSERT_EQ(std::vector<std::uint32_t>(got.begin(), got.end()), expected)
          << "row " << j;
    }
  }
}

TEST(WitnessMatrix, StartsAsSparseIdentity) {
  WitnessMatrix m(130);
  EXPECT_EQ(m.rows(), 130u);
  EXPECT_EQ(m.words_per_row(), 3u);
  for (std::size_t i = 0; i < 130; ++i) {
    EXPECT_TRUE(m.row_sparse(i));
    EXPECT_EQ(m.support_size(i), 1u);
    EXPECT_EQ(m.popcount(i), 1u);
    EXPECT_TRUE(m.get(i, i));
  }
}

TEST(WitnessMatrix, DotMatchesBitVector) {
  std::mt19937_64 rng(11);
  WitnessMatrix m(190);
  ScalarModel model(190);
  // Densify some rows first so both sparse and dense dots are exercised.
  for (std::size_t round = 0; round < 40; ++round) {
    const auto ci = random_vector(190, 0.3, rng);
    const std::size_t pivot = round % 150;
    m.orthogonalize(pivot, ci, pivot + 1, 190);
    model.orthogonalize(pivot, ci, pivot + 1, 190);
  }
  for (std::size_t trial = 0; trial < 50; ++trial) {
    const auto v = random_vector(190, 0.2, rng);
    for (std::size_t j = 0; j < 190; ++j) {
      ASSERT_EQ(m.dot(j, v), model.rows[j].dot(v)) << "row " << j;
    }
  }
}

TEST(WitnessMatrix, RandomizedOrthogonalizeMatchesScalarLoop) {
  for (const std::uint64_t seed : {1ull, 7ull, 2026ull}) {
    std::mt19937_64 rng(seed);
    for (const std::size_t f : {5ull, 64ull, 65ull, 200ull}) {
      WitnessMatrix m(f);
      ScalarModel model(f);
      std::uniform_real_distribution<double> density(0.01, 0.6);
      for (std::size_t i = 0; i + 1 < f; ++i) {
        const auto ci = random_vector(f, density(rng), rng);
        const auto st = m.orthogonalize(i, ci, i + 1, f);
        model.orthogonalize(i, ci, i + 1, f);
        EXPECT_LE(st.dots + st.range_skips, f - i - 1);
      }
      expect_rows_equal(m, model, f);
    }
  }
}

TEST(WitnessMatrix, SparsePromotionRoundTrip) {
  // Repeatedly XOR dense pivots into a sparse row: the row must promote
  // exactly once, keep bit-identical content, and never demote back.
  std::mt19937_64 rng(3);
  const std::size_t f = 96;
  WitnessMatrix m(f);
  ScalarModel model(f);
  Gf2KernelStats total;
  for (std::size_t round = 0; round < 60; ++round) {
    const auto ci = random_vector(f, 0.5, rng);
    const std::size_t pivot = round % (f - 1);
    total.accumulate(m.orthogonalize(pivot, ci, pivot + 1, f));
    model.orthogonalize(pivot, ci, pivot + 1, f);
  }
  expect_rows_equal(m, model, f);
  EXPECT_GT(total.promotions, 0u);
  std::size_t dense = 0;
  for (std::size_t j = 0; j < f; ++j) {
    if (!m.row_sparse(j)) ++dense;
  }
  // Promotions counts each one-way densification exactly once.
  EXPECT_EQ(total.promotions, dense);
}

TEST(WitnessMatrix, SparseMergesStaySparseBelowCrossover) {
  // Two sparse rows merging below the crossover must keep their support
  // lists (symmetric difference), with no promotion.
  WitnessMatrix m(128, /*crossover=*/8);
  BitVector ci(128);
  ci.set(5, true);  // <C, e_5> = 1, so row 5 gets the pivot XORed in
  const auto st = m.orthogonalize(2, ci, 5, 6);
  EXPECT_EQ(st.rows_updated, 1u);
  EXPECT_EQ(st.promotions, 0u);
  EXPECT_TRUE(m.row_sparse(5));
  EXPECT_EQ(m.support_size(5), 2u);  // {2, 5}
  EXPECT_TRUE(m.get(5, 2));
  EXPECT_TRUE(m.get(5, 5));
}

TEST(WitnessMatrix, DisjointRangeEarlyExitTouchesNothing) {
  WitnessMatrix m(512);
  // All rows still unit vectors; ci lives in word 0 only, rows 256.. in
  // words 4+. The sweep must skip them without a single inner product.
  BitVector ci(512);
  ci.set(3, true);
  const auto st = m.orthogonalize(3, ci, 300, 512);
  EXPECT_EQ(st.dots, 0u);
  EXPECT_EQ(st.range_skips, 212u);
  EXPECT_EQ(st.rows_updated, 0u);
  EXPECT_EQ(st.words_xored, 0u);
}

TEST(WitnessMatrix, SelfPairIsSkipped) {
  WitnessMatrix m(64);
  BitVector ci(64);
  ci.set(7, true);
  // Range deliberately includes the pivot: row 7 must survive unzeroed.
  const auto st = m.orthogonalize(7, ci, 0, 64);
  EXPECT_TRUE(m.get(7, 7));
  EXPECT_EQ(m.popcount(7), 1u);
  // Every other row j gained bit 7 iff <ci, e_j> = 1, i.e. never (ci only
  // hits bit 7, which only row 7 carries) — except none; all unit rows
  // with j != 7 have a zero product.
  EXPECT_EQ(st.rows_updated, 0u);
}

TEST(WitnessMatrix, EmptyCycleVectorIsANoOp) {
  WitnessMatrix m(100);
  const BitVector ci(100);  // all zero
  const auto st = m.orthogonalize(0, ci, 1, 100);
  EXPECT_EQ(st.dots, 0u);
  EXPECT_EQ(st.range_skips, 99u);
}

TEST(WitnessMatrix, DeviceSweepMatchesCpuSweep) {
  std::mt19937_64 rng(17);
  const std::size_t f = 170;
  eardec::hetero::Device device({.workers = 2, .warp_size = 4});
  WitnessMatrix dev_m(f);
  ScalarModel model(f);
  for (std::size_t i = 0; i + 1 < f; ++i) {
    const auto ci = random_vector(f, 0.25, rng);
    if (i + 2 < f) {
      // Head row on the CPU, tail on the device — the heterogeneous split.
      dev_m.orthogonalize(i, ci, i + 1, i + 2);
      const auto st = dev_m.orthogonalize_device(i, ci, i + 2, f, device);
      EXPECT_EQ(st.device_rows, f - i - 2);
    } else {
      dev_m.orthogonalize(i, ci, i + 1, f);
    }
    model.orthogonalize(i, ci, i + 1, f);
  }
  expect_rows_equal(dev_m, model, f);
  EXPECT_GT(device.kernels_launched(), 0u);
}

TEST(WitnessMatrix, AsyncDeviceSweepJoinsWithSameResult) {
  std::mt19937_64 rng(23);
  const std::size_t f = 140;
  eardec::hetero::Device device({.workers = 2, .warp_size = 8});
  WitnessMatrix m(f);
  ScalarModel model(f);
  std::optional<WitnessMatrix::PendingDeviceUpdate> pending;
  for (std::size_t i = 0; i + 1 < f; ++i) {
    const auto ci = random_vector(f, 0.3, rng);
    if (pending) pending->join();
    pending.reset();
    if (i + 2 < f) {
      m.orthogonalize(i, ci, i + 1, i + 2);
      pending = m.orthogonalize_device_async(i, ci, i + 2, f, device);
    } else {
      m.orthogonalize(i, ci, i + 1, f);
    }
    model.orthogonalize(i, ci, i + 1, f);
  }
  if (pending) pending->join();
  expect_rows_equal(m, model, f);
}

TEST(WitnessMatrix, AsyncSweepOnOneWorkerDeviceDoesNotDeadlock) {
  // The async driver occupies the device's only worker; the fan-out must
  // degrade to a serial block loop instead of queueing helpers forever.
  eardec::hetero::Device device({.workers = 1, .warp_size = 32});
  const std::size_t f = 80;
  WitnessMatrix m(f);
  ScalarModel model(f);
  BitVector ci(f);
  for (std::size_t i = 0; i < f; i += 3) ci.set(i, true);
  auto pending = m.orthogonalize_device_async(0, ci, 1, f, device);
  const auto st = pending.join();
  model.orthogonalize(0, ci, 1, f);
  EXPECT_EQ(st.device_rows, f - 1);
  expect_rows_equal(m, model, f);
}

TEST(WitnessMatrix, StatsAccumulate) {
  Gf2KernelStats a;
  a.dots = 3;
  a.words_xored = 10;
  a.promotions = 1;
  Gf2KernelStats b;
  b.dots = 2;
  b.device_rows = 7;
  a.accumulate(b);
  EXPECT_EQ(a.dots, 5u);
  EXPECT_EQ(a.words_xored, 10u);
  EXPECT_EQ(a.device_rows, 7u);
  EXPECT_EQ(a.promotions, 1u);
}

}  // namespace
