// Concurrency + correctness suite for the online serving layer
// (src/serve). Runs under the `hetero` ctest label, so CI exercises every
// test here under ThreadSanitizer: N reader threads hammering a snapshot
// while the stats endpoint is scraped, snapshot swaps under load (readers
// pinned to the old epoch finish on it — no use-after-free, no torn
// answers), and bitwise determinism of the batched path across reruns,
// engines, and execution modes.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_oracle.hpp"
#include "obs/metrics.hpp"
#include "obs/query_trace.hpp"
#include "obs/stats_server.hpp"
#include "obs/trace.hpp"
#include "serve/http_routes.hpp"
#include "serve/oracle_server.hpp"
#include "testing/families.hpp"

#if defined(__unix__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace {

using namespace eardec;
using graph::VertexId;
using graph::Weight;

graph::Graph test_graph(std::uint64_t seed, std::uint32_t size = 40) {
  // block_cut: articulation-heavy, so all four route kinds occur.
  return eardec::testing::family("block_cut").make(seed, size);
}

std::vector<serve::Query> all_pairs(const graph::Graph& g) {
  std::vector<serve::Query> q;
  q.reserve(static_cast<std::size_t>(g.num_vertices()) * g.num_vertices());
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    for (VertexId t = 0; t < g.num_vertices(); ++t) q.push_back({s, t});
  }
  return q;
}

bool bitwise_equal(const std::vector<Weight>& a,
                   const std::vector<Weight>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(Weight)) == 0);
}

TEST(OracleServer, ScalarPathMatchesCompactOracle) {
  const graph::Graph g = test_graph(11);
  const serve::OracleServer server(g, {});
  const core::DistanceOracle reference(
      g, {.mode = core::ExecutionMode::Sequential});
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      const Weight got = server.query(s, t);
      const Weight want = reference.distance(s, t);
      EXPECT_EQ(std::memcmp(&got, &want, sizeof(Weight)), 0)
          << "d(" << s << "," << t << ") got " << got << " want " << want;
    }
  }
}

TEST(OracleServer, BatchMatchesScalarBitwiseAcrossEnginesAndModes) {
  const graph::Graph g = test_graph(23);
  const std::vector<serve::Query> queries = all_pairs(g);

  // Scalar reference from one server; every engine x mode combination
  // must reproduce it bit for bit.
  const serve::OracleServer scalar_server(
      g, {.build = {.mode = core::ExecutionMode::Sequential}});
  std::vector<Weight> expected;
  expected.reserve(queries.size());
  for (const serve::Query& q : queries) {
    expected.push_back(scalar_server.query(q.s, q.t));
  }

  const core::ExecutionMode modes[] = {core::ExecutionMode::Sequential,
                                       core::ExecutionMode::Multicore,
                                       core::ExecutionMode::Heterogeneous};
  const serve::BatchEngine engines[] = {serve::BatchEngine::Tables,
                                        serve::BatchEngine::Recompute};
  for (const auto mode : modes) {
    for (const auto engine : engines) {
      serve::ServeOptions opts;
      opts.build = {.mode = mode, .cpu_threads = 3};
      opts.batch_engine = engine;
      opts.legs_per_unit = 9;  // multiple units per block
      const serve::OracleServer server(g, opts);
      const std::vector<Weight> got = server.query_batch(queries);
      EXPECT_TRUE(bitwise_equal(got, expected))
          << "mode " << static_cast<int>(mode) << " engine "
          << static_cast<int>(engine);
    }
  }
}

TEST(OracleServer, IdenticalBatchRerunsAreBitwiseIdentical) {
  const graph::Graph g = test_graph(5);
  serve::ServeOptions opts;
  opts.build = {.mode = core::ExecutionMode::Multicore, .cpu_threads = 4};
  opts.batch_engine = serve::BatchEngine::Recompute;
  opts.legs_per_unit = 3;  // many tiny units: maximal drain nondeterminism
  const serve::OracleServer server(g, opts);
  const std::vector<serve::Query> queries = all_pairs(g);
  const std::vector<Weight> first = server.query_batch(queries);
  for (int rerun = 0; rerun < 5; ++rerun) {
    EXPECT_TRUE(bitwise_equal(server.query_batch(queries), first))
        << "rerun " << rerun;
  }
}

TEST(OracleServer, BatchHandlesEmptyAndTrivialQueries) {
  const graph::Graph g = test_graph(3);
  const serve::OracleServer server(g, {});
  EXPECT_TRUE(server.query_batch({}).empty());
  const std::vector<serve::Query> trivial{{0, 0}, {1, 1}};
  const std::vector<Weight> out = server.query_batch(trivial);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
}

TEST(OracleServer, BatchRejectsOutOfRangeVertices) {
  const graph::Graph g = test_graph(3);
  const serve::OracleServer server(g, {});
  const std::vector<serve::Query> bad{{0, g.num_vertices()}};
  EXPECT_THROW((void)server.query_batch(bad), std::out_of_range);
  EXPECT_THROW((void)server.query(g.num_vertices(), 0), std::out_of_range);
}

// The latency-attribution contract (docs/observability.md): with a
// QueryTrace installed, the serving path fills server_end_ns and the four
// server-side components so they chain gaplessly from the scheduled
// arrival — component sums must equal server_end_ns - arrival exactly,
// and each attr histogram must have seen one observation per query.
TEST(OracleServer, QueryTraceAttributionChainsGaplessly) {
  if (!obs::kTracingEnabled) GTEST_SKIP() << "tracing compiled out";
  const graph::Graph g = test_graph(13);
  const serve::OracleServer server(g, {});
  auto& reg = obs::MetricsRegistry::instance();
  obs::Histogram* attr[4] = {
      &reg.histogram("oracle.serve.attr.queue_wait_ns"),
      &reg.histogram("oracle.serve.attr.schedule_ns"),
      &reg.histogram("oracle.serve.attr.kernel_ns"),
      &reg.histogram("oracle.serve.attr.recompose_ns"),
  };
  for (obs::Histogram* h : attr) h->reset();

  const std::vector<serve::Query> queries = {{0, 1}, {2, 3}, {5, 9}, {1, 1}};
  const std::uint64_t arrival = obs::Tracer::now_ns();
  obs::QueryTrace qt(arrival);
  std::vector<Weight> batched;
  {
    const obs::QueryTraceScope scope(&qt);
    batched = server.query_batch(queries);
  }
  const std::uint64_t done = obs::Tracer::now_ns();

  ASSERT_EQ(batched.size(), queries.size());
  ASSERT_NE(qt.server_end_ns, 0u);
  EXPECT_GE(qt.server_end_ns, arrival);
  EXPECT_LE(qt.server_end_ns, done);
  std::uint64_t component_sum = 0;
  for (std::size_t i = 0; i < 4; ++i) component_sum += qt.attr_ns[i];
  EXPECT_EQ(component_sum, qt.server_end_ns - arrival);
  // The write component is the caller's; the server must leave it alone.
  EXPECT_EQ(qt.attr_ns[std::size_t(obs::AttrComponent::kWrite)], 0u);
  for (obs::Histogram* h : attr) EXPECT_EQ(h->count(), queries.size());

  // The scalar path fills the same contract with batch-only components 0.
  obs::QueryTrace scalar_qt(obs::Tracer::now_ns());
  {
    const obs::QueryTraceScope scope(&scalar_qt);
    (void)server.query(0, 5);
  }
  ASSERT_NE(scalar_qt.server_end_ns, 0u);
  std::uint64_t scalar_sum = 0;
  for (std::size_t i = 0; i < 4; ++i) scalar_sum += scalar_qt.attr_ns[i];
  EXPECT_EQ(scalar_sum, scalar_qt.server_end_ns - scalar_qt.arrival_ns);
}

// The epoch-swap contract under load: readers pin a snapshot and their
// answers stay bit-identical to that epoch's reference even while newer
// epochs are published; the published epoch only moves forward. TSan
// (label hetero) holds the shared_ptr swap to being data-race-free and the
// drained old snapshots to being freed exactly once.
TEST(OracleServer, SnapshotSwapUnderLoadKeepsReadersConsistent) {
  constexpr int kEpochs = 4;
  constexpr int kReaders = 4;
  std::vector<graph::Graph> graphs;
  std::vector<std::vector<Weight>> expected(kEpochs);
  for (int k = 0; k < kEpochs; ++k) {
    graphs.push_back(test_graph(100 + static_cast<std::uint64_t>(k), 30));
    // The closed form is deterministic per graph, so an independently
    // built oracle is the per-epoch bitwise reference.
    const core::DistanceOracle ref(graphs.back(),
                                   {.mode = core::ExecutionMode::Sequential});
    const VertexId n = graphs.back().num_vertices();
    for (VertexId s = 0; s < n; ++s) {
      for (VertexId t = 0; t < n; ++t) {
        expected[static_cast<std::size_t>(k)].push_back(ref.distance(s, t));
      }
    }
  }

  serve::OracleServer server(graphs[0], {});
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(r) + 1);
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = server.snapshot();
        const std::uint64_t e = snap->epoch();
        if (e < last_epoch) ++failures;  // epoch must be monotone
        last_epoch = e;
        const auto& want = expected[e - 1];
        const VertexId n = snap->graph().num_vertices();
        for (int i = 0; i < 64; ++i) {
          const auto s = static_cast<VertexId>(rng() % n);
          const auto t = static_cast<VertexId>(rng() % n);
          const Weight got = snap->query(s, t);
          const Weight ref = want[static_cast<std::size_t>(s) * n + t];
          if (std::memcmp(&got, &ref, sizeof(Weight)) != 0) ++failures;
        }
      }
    });
  }
  for (int k = 1; k < kEpochs; ++k) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.rebuild(graphs[static_cast<std::size_t>(k)]);
    EXPECT_EQ(server.epoch(), static_cast<std::uint64_t>(k) + 1);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0u);
}

#if defined(__unix__)

/// One blocking HTTP/1.1 request against 127.0.0.1:<port>; returns the
/// full response (headers + body), or "" on connection failure.
std::string http_request(std::uint16_t port, const char* method,
                         const std::string& path,
                         const std::string& body = "") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return "";
  }
  std::string req = std::string(method) + " " + path +
                    " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n";
  if (!body.empty()) {
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  req += "\r\n" + body;
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

class ServeHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::StatsServer::kCompiledIn) {
      GTEST_SKIP() << "stats server compiled out";
    }
    g_ = test_graph(77);
    server_ = std::make_unique<serve::OracleServer>(g_, serve::ServeOptions{});
    serve::register_query_routes(*server_);
    auto& stats = obs::StatsServer::instance();
    stats.stop();
    ASSERT_TRUE(stats.start(0));
    port_ = stats.port();
    ASSERT_NE(port_, 0u);
  }
  void TearDown() override {
    // Join the serving thread before the handler's target dies.
    obs::StatsServer::instance().stop();
    serve::unregister_query_routes();
    server_.reset();
  }

  graph::Graph g_;
  std::unique_ptr<serve::OracleServer> server_;
  std::uint16_t port_ = 0;
};

TEST_F(ServeHttpTest, SingleQueryAnswersJsonWithExactDistance) {
  const std::string resp = http_request(port_, "GET", "/query?s=0&t=5");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  const std::string want =
      "\"distance\": \"" + serve::format_distance(server_->query(0, 5)) +
      "\"";
  EXPECT_NE(resp.find(want), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"epoch\": 1"), std::string::npos);
}

TEST_F(ServeHttpTest, BatchPostAnswersAllPairsInOrder) {
  const std::string resp =
      http_request(port_, "POST", "/query/batch", "0 1\n2 3\n0 0\n");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"count\": 3"), std::string::npos);
  const std::string want = "\"" + serve::format_distance(server_->query(0, 1)) +
                           "\", \"" +
                           serve::format_distance(server_->query(2, 3)) +
                           "\", \"0\"";
  EXPECT_NE(resp.find(want), std::string::npos) << resp;
}

TEST_F(ServeHttpTest, MalformedRequestsAnswer400) {
  EXPECT_NE(http_request(port_, "GET", "/query?s=1").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(http_request(port_, "GET", "/query?s=a&t=b").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(http_request(port_, "GET", "/query?s=1&t=999999999")
                .find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(
      http_request(port_, "POST", "/query/batch", "0 1 2").find("HTTP/1.1 400"),
      std::string::npos);
  EXPECT_NE(
      http_request(port_, "POST", "/query/batch", "x y").find("HTTP/1.1 400"),
      std::string::npos);
  // GET on the batch route is a usage error, not a fall-through.
  EXPECT_NE(http_request(port_, "GET", "/query/batch").find("HTTP/1.1 400"),
            std::string::npos);
}

TEST_F(ServeHttpTest, BuiltInRoutesStillWorkWithHandlerRegistered) {
  EXPECT_NE(http_request(port_, "GET", "/healthz").find("HTTP/1.1 200"),
            std::string::npos);
  EXPECT_NE(http_request(port_, "GET", "/metrics").find("oracle_serve_epoch"),
            std::string::npos);
  EXPECT_NE(http_request(port_, "GET", "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  // POST to a route the handler declines still answers 405.
  EXPECT_NE(http_request(port_, "POST", "/metrics").find("HTTP/1.1 405"),
            std::string::npos);
}

// The headline TSan scenario: reader threads hammer scalar and batched
// queries, a rebuilder swaps snapshots, and the HTTP side serves /query
// and /metrics scrapes — all concurrently.
TEST_F(ServeHttpTest, ReadersScrapesAndSwapsRaceFreely) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> failures{0};
  const std::vector<serve::Query> batch = {{0, 1}, {2, 3}, {4, 5}, {1, 0}};

  std::vector<std::thread> workers;
  for (int r = 0; r < 3; ++r) {
    workers.emplace_back([&, r] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(r) + 9);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto n = server_->snapshot()->graph().num_vertices();
        const auto s = static_cast<VertexId>(rng() % n);
        const auto t = static_cast<VertexId>(rng() % n);
        (void)server_->query(s, t);
        const auto answers = server_->query_batch(batch);
        if (answers.size() != batch.size()) ++failures;
      }
    });
  }
  std::thread rebuilder([&] {
    for (int k = 0; k < 3 && !stop.load(std::memory_order_relaxed); ++k) {
      server_->rebuild(test_graph(200 + static_cast<std::uint64_t>(k)));
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  for (int round = 0; round < 15; ++round) {
    const std::string one = http_request(port_, "GET", "/query?s=0&t=3");
    if (one.find("HTTP/1.1 200") == std::string::npos) ++failures;
    const std::string many =
        http_request(port_, "POST", "/query/batch", "0 1\n2 3\n");
    if (many.find("\"count\": 2") == std::string::npos) ++failures;
    const std::string metrics = http_request(port_, "GET", "/metrics");
    if (metrics.find("eardec_oracle_serve_queries") == std::string::npos) {
      ++failures;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  rebuilder.join();
  for (auto& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GE(server_->epoch(), 1u);
}

#endif  // defined(__unix__)

}  // namespace
